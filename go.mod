module cacqr

go 1.21
