package cacqr

import (
	"fmt"
	"sync"
	"testing"
)

func findChild(sp SpanData, name string) (SpanData, bool) {
	for _, c := range sp.Children {
		if c.Name == name {
			return c, true
		}
	}
	return SpanData{}, false
}

func attrInt(t *testing.T, sp SpanData, key string) int64 {
	t.Helper()
	v, ok := sp.Attrs[key].(int64)
	if !ok {
		t.Fatalf("span %s: attr %q = %v (%T), want int64", sp.Name, key, sp.Attrs[key], sp.Attrs[key])
	}
	return v
}

// checkRunSpan walks execute → run → rank spans and returns the run
// span, asserting the structural contract shared by both transports.
func checkRunSpan(t *testing.T, root SpanData, transport string, wantRanks int) SpanData {
	t.Helper()
	exec, ok := findChild(root, "execute")
	if !ok {
		t.Fatalf("no execute stage under root: %+v", names(root.Children))
	}
	run, ok := findChild(exec, "run")
	if !ok {
		t.Fatalf("no run span under execute: %+v", names(exec.Children))
	}
	if got := run.Attrs["transport"]; got != transport {
		t.Fatalf("run transport = %v, want %s", got, transport)
	}
	ranks := 0
	for _, c := range run.Children {
		if c.Kind == "rank" {
			ranks++
		}
	}
	if ranks != wantRanks {
		t.Fatalf("run has %d rank spans, want %d", ranks, wantRanks)
	}
	return run
}

func names(cs []SpanData) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

// A traced Submit on the simulated transport must produce the full
// span tree of the ISSUE's acceptance criteria: request stages
// (condest → plan → gate → execute) whose durations account for the
// end-to-end latency, an execute→run→rank hierarchy, and kernel stage
// plus collective spans under every rank.
func TestTracedSubmitSim(t *testing.T) {
	tracer := NewTracer(TracerOptions{})
	srv, err := NewServer(ServerOptions{
		Procs: 8, BatchWindow: -1,
		Options: Options{Tracer: tracer},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := srv.Submit(SubmitRequest{A: RandomMatrix(1024, 64, 42), CondEst: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("traced submit returned no TraceID")
	}
	td, ok := tracer.Get(res.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", res.TraceID)
	}
	root := td.Root
	if root.Name != "factorize" {
		t.Fatalf("root span = %q", root.Name)
	}
	if got := attrInt(t, root, "m"); got != 1024 {
		t.Fatalf("root m = %d", got)
	}
	if got := root.Attrs["variant"]; got != string(res.Plan.Variant) {
		t.Fatalf("root variant = %v, plan says %s", got, res.Plan.Variant)
	}
	if got := root.Attrs["cache_hit"]; got != false {
		t.Fatalf("cold request marked cache_hit=%v", got)
	}

	// Every request stage must be present, in order.
	wantStages := []string{"condest", "plan", "gate", "execute"}
	if got := names(root.Children); len(got) != len(wantStages) {
		t.Fatalf("root children = %v, want %v", got, wantStages)
	}
	var sum int64
	for i, name := range wantStages {
		c := root.Children[i]
		if c.Name != name || c.Kind != "stage" {
			t.Fatalf("root child %d = %s/%s, want stage/%s", i, c.Kind, c.Name, name)
		}
		sum += c.Duration
	}
	// The stages are sequential and wrap all real work, so their sum
	// must essentially be the end-to-end latency: no more than the root
	// (they nest inside it), and missing at most the between-stage
	// bookkeeping. Typically >98%; the slack absorbs scheduler noise on
	// loaded CI machines.
	if sum > root.Duration {
		t.Fatalf("stage sum %dns exceeds root %dns", sum, root.Duration)
	}
	if sum < root.Duration*80/100 {
		t.Fatalf("stages cover %dns of %dns end-to-end (<80%%): untraced gap in the request path",
			sum, root.Duration)
	}

	run := checkRunSpan(t, root, "sim", res.Plan.Procs)
	// Each rank must carry kernel stage spans and collective spans with
	// payload bytes and peer counts.
	for _, rank := range run.Children {
		if rank.Kind != "rank" {
			continue
		}
		stages, colls := 0, 0
		for _, c := range rank.Children {
			switch c.Kind {
			case "stage":
				stages++
			case "collective":
				if attrInt(t, c, "bytes") < 0 || attrInt(t, c, "peers") < 2 {
					t.Fatalf("%s collective %s attrs = %v", rank.Name, c.Name, c.Attrs)
				}
				colls++
			}
		}
		if stages == 0 || colls == 0 {
			t.Fatalf("%s: %d stage and %d collective spans, want both > 0 (children %v)",
				rank.Name, stages, colls, names(rank.Children))
		}
		if attrInt(t, rank, "words") <= 0 {
			t.Fatalf("%s: no words charged: %v", rank.Name, rank.Attrs)
		}
	}

	// A warm repeat must be marked as a cache hit on its root span.
	res2, err := srv.Submit(SubmitRequest{A: RandomMatrix(1024, 64, 43), CondEst: 10})
	if err != nil {
		t.Fatal(err)
	}
	td2, ok := tracer.Get(res2.TraceID)
	if !ok {
		t.Fatal("second trace not retained")
	}
	if !res2.PlanCacheHit || td2.Root.Attrs["cache_hit"] != true {
		t.Fatalf("warm request: PlanCacheHit=%v root attrs=%v", res2.PlanCacheHit, td2.Root.Attrs)
	}
}

// Without a tracer every request is untraced: no TraceID, no overhead
// beyond nil checks.
func TestUntracedSubmitHasNoTraceID(t *testing.T) {
	srv, err := NewServer(ServerOptions{Procs: 4, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.Submit(SubmitRequest{A: RandomMatrix(256, 16, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" {
		t.Fatalf("untraced submit returned TraceID %q", res.TraceID)
	}
}

// On the TCP backend the rank spans carry real wire bytes, collected
// from the workers' counters: their sum must equal the run's
// total_bytes (the transport.Stats aggregate) exactly, and the maximum
// must be the per-processor byte cost the result reports.
func TestTracedSubmitTCPBytesMatchCounters(t *testing.T) {
	addrs := startLocalWorkers(t, 3)
	tracer := NewTracer(TracerOptions{})
	srv, err := NewServer(ServerOptions{
		Procs: 4, BatchWindow: -1,
		Options: Options{Transport: TCPTransport(addrs...), Tracer: tracer},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := srv.Submit(SubmitRequest{A: RandomMatrix(512, 32, 11), CondEst: 100})
	if err != nil {
		t.Fatal(err)
	}
	td, ok := tracer.Get(res.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", res.TraceID)
	}
	run := checkRunSpan(t, td.Root, "tcp", res.Plan.Procs)

	var sum, max int64
	for _, rank := range run.Children {
		if rank.Kind != "rank" {
			continue
		}
		b := attrInt(t, rank, "bytes")
		if b <= 0 {
			t.Fatalf("%s: wire bytes = %d, want > 0 on TCP", rank.Name, b)
		}
		sum += b
		if b > max {
			max = b
		}
	}
	if total := attrInt(t, run, "total_bytes"); sum != total {
		t.Fatalf("sum of rank span bytes %d != run total_bytes %d", sum, total)
	}
	if max != res.Stats.Bytes {
		t.Fatalf("max rank span bytes %d != reported per-processor bytes %d", max, res.Stats.Bytes)
	}
}

// Satellite: transport counters under concurrent collectives. Several
// Submits run at once over the same TCP worker pool, each traced; every
// trace's per-rank byte attribution must still sum to exactly its own
// run's transport.Counters total — concurrency must not bleed one
// run's accounting into another's.
func TestConcurrentTCPRunsKeepCountersSeparate(t *testing.T) {
	addrs := startLocalWorkers(t, 3)
	tracer := NewTracer(TracerOptions{})
	srv, err := NewServer(ServerOptions{
		Procs: 4, BatchWindow: -1,
		Options: Options{Transport: TCPTransport(addrs...), Tracer: tracer},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Shapes tall enough that the planner picks a multi-rank plan (a
	// single-rank run moves no wire bytes and would test nothing).
	shapes := []int{512, 640, 768, 896}
	ids := make([]string, len(shapes))
	procs := make([]int, len(shapes))
	var wg sync.WaitGroup
	errs := make([]error, len(shapes))
	for i, m := range shapes {
		wg.Add(1)
		go func(i, m int) {
			defer wg.Done()
			res, err := srv.Submit(SubmitRequest{A: RandomMatrix(m, 32, int64(i)), CondEst: 10})
			if err != nil {
				errs[i] = err
				return
			}
			if res.TraceID == "" {
				errs[i] = fmt.Errorf("shape %d: no trace id", m)
				return
			}
			ids[i] = res.TraceID
			procs[i] = res.Plan.Procs
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	seen := map[string]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("trace id %s reused across concurrent requests", id)
		}
		seen[id] = true
		td, ok := tracer.Get(id)
		if !ok {
			t.Fatalf("trace %s not retained", id)
		}
		if procs[i] < 2 {
			t.Fatalf("request %d (m=%d): planner chose %d ranks; the test needs wire traffic", i, shapes[i], procs[i])
		}
		run := checkRunSpan(t, td.Root, "tcp", procs[i])
		var sum int64
		for _, rank := range run.Children {
			if rank.Kind == "rank" {
				sum += attrInt(t, rank, "bytes")
			}
		}
		if total := attrInt(t, run, "total_bytes"); sum != total || sum <= 0 {
			t.Fatalf("request %d (m=%d): rank byte sum %d vs total_bytes %d", i, shapes[i], sum, total)
		}
	}
}
