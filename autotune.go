package cacqr

import (
	"fmt"

	"cacqr/internal/plan"
)

// Plan is one priced candidate from the autotuning planner: an algorithm
// variant, its grid, the modeled α-β-γ cost and per-rank memory
// footprint, the predicted time on the planning machine, and a
// human-readable rationale.
type Plan = plan.Plan

// Variant names an algorithm the planner can select.
type Variant = plan.Variant

// The planner's algorithm variants.
const (
	VariantSequential  = plan.Sequential
	Variant1DCQR2      = plan.OneD
	VariantCACQR2      = plan.CACQR2
	VariantPanelCACQR2 = plan.PanelCACQR2
	VariantTSQR        = plan.TSQR
	VariantPGEQRF      = plan.PGEQRF
)

// planRequest translates the public knobs into a planner request.
func planRequest(m, n, procs int, opts Options) plan.Request {
	req := plan.Request{
		M: m, N: n, Procs: procs,
		MemBudget:        opts.MemBudget,
		InverseDepth:     opts.InverseDepth,
		BaseSize:         opts.BaseSize,
		IncludeBaselines: opts.IncludeBaselines,
	}
	if opts.PlanMachine != nil {
		req.Machine = *opts.PlanMachine
	}
	return req
}

// PlanGrid enumerates every feasible algorithm variant and grid for an
// m×n matrix on up to procs simulated ranks and returns them ranked by
// predicted time under the planning machine (Options.PlanMachine, nil =
// Stampede2). Options.MemBudget, when > 0, rejects plans whose modeled
// per-rank footprint exceeds that many bytes. The cost predictions are
// the same validated recurrences the simulated runtime is tested
// against, so the winning plan's Cost is what a run will actually
// charge (plus the final gather).
func PlanGrid(m, n, procs int, opts Options) ([]Plan, error) {
	if err := checkWorkers(opts); err != nil {
		return nil, err
	}
	return plan.Enumerate(planRequest(m, n, procs, opts))
}

// AutoFactorize factors A = Q·R on up to procs simulated ranks, letting
// the planner choose the algorithm variant and grid: it ranks every
// feasible candidate with the validated cost model and dispatches to the
// winner (CA-CQR2 on its c×d×c grid, the panel variant, 1D-CQR2,
// sequential, or the TSQR fallback for extreme shapes). The executed
// plan is recorded in Result.Plan. Options.PanelWidth is ignored — the
// planner owns that choice; InverseDepth and BaseSize are forwarded to
// both the model and the run.
func AutoFactorize(a *Dense, procs int, opts Options) (*Result, error) {
	if err := checkWorkers(opts); err != nil {
		return nil, err
	}
	best, err := plan.Best(planRequest(a.Rows, a.Cols, procs, opts))
	if err != nil {
		return nil, err
	}
	return FactorizePlan(a, best, opts)
}

// FactorizePlan executes one planner-produced plan (from PlanGrid)
// without re-running the enumeration — the path for callers that want
// to inspect or re-rank the candidate list before committing, or to
// reuse a cached plan across same-shaped matrices. The executed plan is
// recorded in Result.Plan. Baseline reference rows are not executable.
func FactorizePlan(a *Dense, p Plan, opts Options) (*Result, error) {
	if err := checkWorkers(opts); err != nil {
		return nil, err
	}
	res, err := dispatch(a, p, opts)
	if err != nil {
		return nil, err
	}
	res.Plan = &p
	return res, nil
}

// dispatch executes a planner-selected variant.
func dispatch(a *Dense, p Plan, opts Options) (*Result, error) {
	opts.PanelWidth = 0
	switch p.Variant {
	case plan.Sequential:
		return Factorize1D(a, 1, opts)
	case plan.OneD:
		return Factorize1D(a, p.Procs, opts)
	case plan.CACQR2:
		return FactorizeOnGrid(a, GridSpec{C: p.C, D: p.D}, opts)
	case plan.PanelCACQR2:
		opts.PanelWidth = p.PanelWidth
		return FactorizeOnGrid(a, GridSpec{C: p.C, D: p.D}, opts)
	case plan.TSQR:
		return FactorizeTSQR(a, p.Procs, 0, opts)
	default:
		return nil, fmt.Errorf("cacqr: plan variant %q is not executable", p.Variant)
	}
}

// checkWorkers rejects a negative Workers knob up front — every
// simulated entry point shares this validation, so misuse is an error,
// never a panic.
func checkWorkers(opts Options) error {
	if opts.Workers < 0 {
		return fmt.Errorf("cacqr: negative Workers %d (0 = per-rank serial)", opts.Workers)
	}
	return nil
}
