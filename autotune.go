package cacqr

import (
	"fmt"
	"math"

	"cacqr/internal/lin"
	"cacqr/internal/plan"
)

// Plan is one priced candidate from the autotuning planner: an algorithm
// variant, its grid, the modeled α-β-γ cost and per-rank memory
// footprint, the predicted time on the planning machine, and a
// human-readable rationale.
type Plan = plan.Plan

// Variant names an algorithm the planner can select.
type Variant = plan.Variant

// The planner's algorithm variants.
const (
	VariantSequential  = plan.Sequential
	Variant1DCQR2      = plan.OneD
	VariantCACQR2      = plan.CACQR2
	VariantPanelCACQR2 = plan.PanelCACQR2
	VariantTSQR        = plan.TSQR
	VariantShiftedCQR3 = plan.ShiftedCQR3
	VariantPGEQRF      = plan.PGEQRF
	VariantStreamTSQR  = plan.StreamTSQR
)

// condEstIters bounds the power-iteration condition estimator
// AutoFactorize runs when Options.CondEst is unset: one n×n Gram SYRK
// plus O(iters·n²) matvec work — cheap next to the 4mn² factorization
// that follows.
const condEstIters = 50

// planRequest translates the public knobs into a planner request.
func planRequest(m, n, procs int, opts Options) plan.Request {
	req := plan.Request{
		M: m, N: n, Procs: procs,
		MemBudget:        opts.MemBudget,
		InverseDepth:     opts.InverseDepth,
		BaseSize:         opts.BaseSize,
		IncludeBaselines: opts.IncludeBaselines,
		CondEst:          opts.CondEst,
	}
	if opts.PlanMachine != nil {
		req.Machine = *opts.PlanMachine
	}
	return req
}

// PlanGrid enumerates every feasible algorithm variant and grid for an
// m×n matrix on up to procs simulated ranks and returns them ranked by
// predicted time under the planning machine (Options.PlanMachine, nil =
// Stampede2). Options.MemBudget, when > 0, rejects plans whose modeled
// per-rank footprint exceeds that many bytes; Options.CondEst, when
// set, rejects variants whose predicted ‖QᵀQ−I‖ at that κ exceeds 1e-8
// (PlanGrid never sees the matrix, so an unset hint means "assume
// well-conditioned" — AutoFactorize is the entry point that estimates
// it for you). The cost predictions are the same validated recurrences
// the simulated runtime is tested against, so the winning plan's Cost
// is what a run will actually charge (plus the final gather). Every
// returned row — the PGEQRF baseline and blocked-TSQR rows included —
// is executable via FactorizePlan. One caveat on the baseline: the
// PGEQRF row's Cost models the factorization only (the object the
// paper compares against); executing it also pays the explicit-Q
// output path (see FactorizePGEQRF), which shows up in measured Stats
// but is not priced, so the exact measured == predicted + gather
// contract holds for the CQR-family and TSQR rows, not PGEQRF.
func PlanGrid(m, n, procs int, opts Options) ([]Plan, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	return plan.Enumerate(planRequest(m, n, procs, opts))
}

// AutoFactorize factors A = Q·R on up to procs simulated ranks, letting
// the planner choose the algorithm variant and grid: it ranks every
// feasible candidate with the validated cost model and dispatches to
// the winner (CA-CQR2 on its c×d×c grid, the panel variant, 1D-CQR2,
// sequential, ShiftedCQR3, or the TSQR fallback for extreme shapes).
// The choice is condition-aware: Options.CondEst — or, when unset, a
// cheap power-iteration estimate of κ₂(A) measured from the matrix —
// gates out variants that would lose orthogonality at that conditioning
// (κ ≳ 10⁷ leaves the plain CholeskyQR2 family for ShiftedCQR3/TSQR).
// The executed plan is recorded in Result.Plan and the routing hint in
// Result.CondEst. Options.PanelWidth is ignored — the planner owns that
// choice; InverseDepth and BaseSize are forwarded to both the model and
// the run.
func AutoFactorize(a *Dense, procs int, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	//lint:ignore floatcompare 0 is the unset sentinel for CondEst, never a computed estimate
	if opts.CondEst == 0 {
		opts.CondEst = lin.EstimateCond(a.toLin(), condEstIters)
	}
	best, err := plan.Best(planRequest(a.Rows, a.Cols, procs, opts))
	if err != nil {
		return nil, err
	}
	res, err := FactorizePlan(a, best, opts)
	if err != nil {
		return nil, err
	}
	res.CondEst = opts.CondEst
	return res, nil
}

// FactorizePlan executes one planner-produced plan (from PlanGrid)
// without re-running the enumeration — the path for callers that want
// to inspect or re-rank the candidate list before committing, or to
// reuse a cached plan across same-shaped matrices. Every variant the
// planner prices is dispatchable here, including the PGEQRF baseline
// and the blocked (panelWidth > 0) TSQR rows. The executed plan is
// recorded in Result.Plan.
func FactorizePlan(a *Dense, p Plan, opts Options) (*Result, error) {
	if err := checkOptions(opts); err != nil {
		return nil, err
	}
	res, err := dispatch(a, p, opts)
	if err != nil {
		return nil, err
	}
	res.Plan = &p
	return res, nil
}

// dispatch executes a planner-selected variant.
func dispatch(a *Dense, p Plan, opts Options) (*Result, error) {
	opts.PanelWidth = 0
	switch p.Variant {
	case plan.Sequential:
		return Factorize1D(a, 1, opts)
	case plan.OneD:
		return Factorize1D(a, p.Procs, opts)
	case plan.ShiftedCQR3:
		return FactorizeShifted1D(a, p.Procs, opts)
	case plan.CACQR2:
		return FactorizeOnGrid(a, GridSpec{C: p.C, D: p.D}, opts)
	case plan.PanelCACQR2:
		opts.PanelWidth = p.PanelWidth
		return FactorizeOnGrid(a, GridSpec{C: p.C, D: p.D}, opts)
	case plan.TSQR:
		return FactorizeTSQR(a, p.Procs, p.PanelWidth, opts)
	case plan.PGEQRF:
		return FactorizePGEQRF(a, p.D, p.C, p.PanelWidth, opts)
	case plan.StreamTSQR:
		// Out-of-core dispatch for an already-in-memory matrix: stream it
		// panel by panel anyway, so peak *additional* memory stays at one
		// panel plus the R-chain and the budget the planner honored is
		// respected by the execution too.
		opts.PanelRows = p.PanelWidth
		sink := SinkToDense()
		res, err := FactorizeStreaming(SourceFromDense(a), sink, opts)
		if err != nil {
			return nil, err
		}
		return res, nil
	default:
		return nil, fmt.Errorf("cacqr: plan variant %q is not executable", p.Variant)
	}
}

// checkOptions rejects malformed knobs up front — a negative Workers
// count or a negative/NaN condition estimate. Every simulated entry
// point shares this validation, so misuse is an error, never a panic.
// An unset CondEst (0) is valid: AutoFactorize responds by measuring a
// cheap power-iteration estimate from the matrix itself.
func checkOptions(opts Options) error {
	if opts.Workers < 0 {
		return fmt.Errorf("cacqr: negative Workers %d (0 = per-rank serial)", opts.Workers)
	}
	if math.IsNaN(opts.CondEst) || opts.CondEst < 0 {
		return fmt.Errorf("cacqr: invalid CondEst %g (want ≥ 0; 0 = let AutoFactorize estimate it)", opts.CondEst)
	}
	if opts.PanelRows < 0 {
		return fmt.Errorf("cacqr: negative PanelRows %d (0 = default)", opts.PanelRows)
	}
	return nil
}
