package cacqr

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// The acceptance contract: fused SubmitBatch results match per-request
// Submit results to 1e-13, item for item, Q, R, and X alike.
func TestSubmitBatchMatchesPerRequestSubmit(t *testing.T) {
	const nb = 24
	reqs := make([]SubmitRequest, nb)
	for i := range reqs {
		a := RandomMatrix(512, 32, int64(300+i))
		b := make([]float64, a.Rows)
		for j := range b {
			b[j] = float64(j%17) - 8
		}
		reqs[i] = SubmitRequest{A: a, B: b, Procs: 8, CondEst: 10}
	}

	batched := newTestServer(t, ServerOptions{Procs: 8})
	items := batched.SubmitBatch(reqs)

	serial := newTestServer(t, ServerOptions{Procs: 8})
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		if !it.Result.Fused {
			t.Fatalf("item %d did not take the fused path (plan %v)", i, it.Result.Plan.Variant)
		}
		want, err := serial.Submit(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(it.Result.Q.Data, want.Q.Data); d > 1e-13 {
			t.Fatalf("item %d: fused Q differs from per-request Q by %g", i, d)
		}
		if d := maxAbsDiff(it.Result.R.Data, want.R.Data); d > 1e-13 {
			t.Fatalf("item %d: fused R differs from per-request R by %g", i, d)
		}
		if d := maxAbsDiff(it.Result.X, want.X); d > 1e-10 {
			t.Fatalf("item %d: fused X differs from per-request X by %g", i, d)
		}
		if o := OrthogonalityError(it.Result.Q); o > 1e-10 {
			t.Fatalf("item %d: fused orthogonality %g", i, o)
		}
		if r := ResidualNorm(reqs[i].A, it.Result.Q, it.Result.R); r > 1e-10 {
			t.Fatalf("item %d: fused residual %g", i, r)
		}
	}

	st := batched.Stats()
	if st.FusedBatches < 1 || st.FusedRequests != nb {
		t.Fatalf("fused accounting: %+v", st)
	}
	if len(st.Latencies) == 0 {
		t.Fatal("no latency histograms recorded")
	}
}

func maxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// Mixed batches: invalid and ill-conditioned members get their own
// errors without failing the healthy ones; mixed shapes form separate
// fused groups.
func TestSubmitBatchIsolatesFailuresAndMixedShapes(t *testing.T) {
	s := newTestServer(t, ServerOptions{Procs: 8})
	reqs := []SubmitRequest{
		{A: RandomMatrix(256, 16, 1), CondEst: 10},
		{A: nil}, // invalid
		{A: RandomMatrix(128, 8, 2), CondEst: 10},         // different key
		{A: RandomMatrix(256, 16, 3), B: []float64{1, 2}}, // bad rhs length
		{A: RandomMatrix(256, 16, 4), CondEst: 10},        // same key as [0]
	}
	items := s.SubmitBatch(reqs)
	if items[1].Err == nil || items[3].Err == nil {
		t.Fatalf("invalid items must error: %v / %v", items[1].Err, items[3].Err)
	}
	for _, i := range []int{0, 2, 4} {
		if items[i].Err != nil {
			t.Fatalf("healthy item %d: %v", i, items[i].Err)
		}
		if o := OrthogonalityError(items[i].Result.Q); o > 1e-10 {
			t.Fatalf("item %d orthogonality %g", i, o)
		}
	}
	if items[0].Result.Plan.Variant == items[2].Result.Plan.Variant &&
		items[0].Result.Plan.Procs == items[2].Result.Plan.Procs &&
		reqs[0].A.Rows == reqs[2].A.Rows {
		t.Fatal("distinct shapes collapsed into one group")
	}
}

// An empty batch is a no-op, not a panic.
func TestSubmitBatchEmpty(t *testing.T) {
	s := newTestServer(t, ServerOptions{})
	if items := s.SubmitBatch(nil); len(items) != 0 {
		t.Fatalf("empty batch returned %d items", len(items))
	}
}

// Overload through the public API: a batch that cannot fit the pending
// bound is refused whole with ErrOverloaded — promptly, without
// queueing — and the server keeps serving afterwards.
func TestServerOverloadPublicAPI(t *testing.T) {
	s := newTestServer(t, ServerOptions{Procs: 4, MaxPending: 2})
	t0 := time.Now()
	items := s.SubmitBatch([]SubmitRequest{
		{A: RandomMatrix(64, 4, 7)}, {A: RandomMatrix(64, 4, 8)}, {A: RandomMatrix(64, 4, 9)},
	})
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("overload refusal took %v, want prompt", d)
	}
	for i, it := range items {
		if !errors.Is(it.Err, ErrOverloaded) {
			t.Fatalf("item %d of oversized batch: err = %v, want ErrOverloaded", i, it.Err)
		}
	}
	if st := s.Stats(); st.Overloaded < 1 {
		t.Fatalf("overload not counted: %+v", st)
	}
	// Nothing admitted was dropped, and the server still serves.
	if _, err := s.Submit(SubmitRequest{A: RandomMatrix(64, 4, 10)}); err != nil {
		t.Fatalf("post-overload submit: %v", err)
	}
}

// FuseWindow Submit: concurrent same-key submissions coalesce into one
// fused execution and still return correct per-request factors.
func TestSubmitFuseWindowCoalesces(t *testing.T) {
	s := newTestServer(t, ServerOptions{Procs: 8, FuseWindow: 20 * time.Millisecond})
	const n = 6
	var wg sync.WaitGroup
	results := make([]*SubmitResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(SubmitRequest{A: RandomMatrix(256, 16, int64(500+i)), CondEst: 10})
		}(i)
	}
	wg.Wait()
	fusedCount := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if o := OrthogonalityError(results[i].Q); o > 1e-10 {
			t.Fatalf("request %d orthogonality %g", i, o)
		}
		if results[i].Fused {
			fusedCount++
		}
	}
	if fusedCount != n {
		t.Fatalf("%d of %d coalesced requests took the fused path", fusedCount, n)
	}
	st := s.Stats()
	if st.FusedRequests != n || st.FusedBatches >= n {
		t.Fatalf("expected coalescence (batches < requests): %+v", st)
	}
}

// The full public-API concurrency mix under -race: Submit, SubmitBatch,
// Stats, and Close racing a mid-flight batch.
func TestServerConcurrentSubmitBatchStatsClose(t *testing.T) {
	s, err := NewServer(ServerOptions{Procs: 4, BatchWindow: -1, FuseWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				a := RandomMatrix(64+32*(g%2), 8, int64(g*100+i))
				if i%2 == 0 {
					s.Submit(SubmitRequest{A: a, CondEst: 10})
				} else {
					s.SubmitBatch([]SubmitRequest{{A: a, CondEst: 10}, {A: RandomMatrix(a.Rows, 8, int64(i)), CondEst: 10}})
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.Stats()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		s.Close() // close while batches are in flight
	}()
	wg.Wait()
	s.Close()
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("pending = %d after close", st.Pending)
	}
}
