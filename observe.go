package cacqr

// The public face of internal/obs: type aliases so external importers
// can construct tracers and registries, hand them to ServerOptions, and
// consume span trees and metric snapshots without reaching into an
// internal package.

import (
	"cacqr/internal/obs"
	"cacqr/internal/plan"
)

// Tracer samples requests into per-request span trees and aggregates
// finished trees into a metrics Registry. A nil *Tracer is the disabled
// tracer: every operation on it no-ops, which is the ~zero-overhead
// default. Create with NewTracer and hand to Options.Tracer.
type Tracer = obs.Tracer

// TracerOptions configure NewTracer: sampling rate (trace 1 in
// SampleEvery requests), how many finished traces to retain for
// TraceByID, the per-trace span cap, and the Metrics registry the
// aggregated series land in.
type TracerOptions = obs.TracerOptions

// Metrics is the counter/gauge/histogram registry behind /metrics:
// Prometheus text exposition via WritePrometheus, JSON folding via
// Snapshot.
type Metrics = obs.Registry

// TraceData is the JSON-ready span tree of one retained trace, served
// by cacqrd's /v1/trace/{id}.
type TraceData = obs.TraceData

// SpanData is one node of a TraceData tree.
type SpanData = obs.SpanData

// NewTracer builds a Tracer (zero options = sample every request,
// retain 64 traces, 4096 spans per trace, a fresh Metrics registry).
func NewTracer(o TracerOptions) *Tracer { return obs.NewTracer(o) }

// NewMetrics builds an empty Metrics registry, for callers that want to
// share one registry between a Tracer and their own series.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// KappaBucket maps a condition estimate to its per-decade plan-cache
// bucket — the same bucketing plan keys and the kappa_bucket metric
// label use, exported so log consumers can group by it.
func KappaBucket(cond float64) int { return plan.KappaBucket(cond) }
