package cacqr

import (
	"math"
	"path/filepath"
	"testing"
)

func maxDenseDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	return maxAbsDiff(a.Data, b.Data)
}

// Public-API acceptance: streaming a matrix through the out-of-core
// path must reproduce the in-core CholeskyQR2 factors while holding far
// less than the full matrix resident.
func TestFactorizeStreamingMatchesInCore(t *testing.T) {
	const m, n = 4096, 32
	a := RandomMatrix(m, n, 21)
	qRef, rRef, err := CholeskyQR2(a)
	if err != nil {
		t.Fatal(err)
	}
	sink := SinkToDense()
	res, err := FactorizeStreaming(SourceFromDense(a), sink, Options{PanelRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDenseDiff(res.R, rRef); d > 1e-13*float64(m) {
		t.Errorf("R mismatch: %g", d)
	}
	if d := maxDenseDiff(res.Q, qRef); d > 1e-12 {
		t.Errorf("Q mismatch: %g", d)
	}
	if res.Stream == nil {
		t.Fatal("no stream accounting on a streamed run")
	}
	if res.Stream.Panels != m/512 {
		t.Errorf("Panels = %d, want %d", res.Stream.Panels, m/512)
	}
	full := int64(8 * m * n)
	if res.Stream.MaxResidentBytes >= full {
		t.Errorf("resident %d B ≥ full matrix %d B — streaming bought nothing",
			res.Stream.MaxResidentBytes, full)
	}
	if want, err := ModelStreamTSQRMemory(m, n, 512); err != nil || res.Stream.MaxResidentBytes > want {
		t.Errorf("resident %d B exceeds modeled %d B (err %v)", res.Stream.MaxResidentBytes, want, err)
	}
}

// A generator source streams the same deterministic matrix RandomMatrix
// materializes — so factoring one must give the same R without the
// matrix ever existing in memory.
func TestFactorizeStreamingFromGenerator(t *testing.T) {
	const m, n = 3000, 24
	src, err := SourceFromGenerator(m, n, 77)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FactorizeStreaming(src, nil, Options{PanelRows: 700})
	if err != nil {
		t.Fatal(err)
	}
	if res.Q != nil {
		t.Error("R-only run returned a Q")
	}
	_, rRef, err := CholeskyQR2(RandomMatrix(m, n, 77))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDenseDiff(res.R, rRef); d > 1e-13*float64(m) {
		t.Errorf("R mismatch vs materialized generator: %g", d)
	}
}

// File-backed round trip through the public wrappers.
func TestStreamingFileRoundTrip(t *testing.T) {
	const m, n = 1500, 16
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.mat")
	a := RandomMatrix(m, n, 5)
	if err := WriteMatrixFile(aPath, SourceFromDense(a), 400); err != nil {
		t.Fatal(err)
	}
	src, err := SourceFromFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	sink := SinkToDense()
	res, err := FactorizeStreaming(src, sink, Options{PanelRows: 400})
	if err != nil {
		t.Fatal(err)
	}
	if e := OrthogonalityError(res.Q); e > 1e-13 {
		t.Errorf("orthogonality %g", e)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-14 {
		t.Errorf("residual %g", e)
	}
}

// The routing acceptance: AutoFactorize must go out-of-core exactly
// when the memory budget rejects every in-core variant — the choice is
// a pure function of MemBudget.
func TestAutoFactorizeStreamRouting(t *testing.T) {
	const m, n = 8192, 32
	a := RandomMatrix(m, n, 13)

	// No budget: in-core, no stream accounting.
	res, err := AutoFactorize(a, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant == VariantStreamTSQR || res.Stream != nil {
		t.Fatalf("streamed with no memory pressure: %v", res.Plan)
	}

	// Find the smallest in-core footprint the planner knows for this
	// shape, then budget below it.
	plans, err := PlanGrid(m, n, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minInCore := plans[0].MemBytes()
	for _, p := range plans {
		if p.MemBytes() < minInCore {
			minInCore = p.MemBytes()
		}
	}
	budget := minInCore / 2
	res, err = AutoFactorize(a, 1, Options{MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant != VariantStreamTSQR {
		t.Fatalf("plan under budget %d = %v, want stream-tsqr", budget, res.Plan)
	}
	if res.Stream == nil {
		t.Fatal("streamed run carries no stream accounting")
	}
	if res.Stream.MaxResidentBytes > budget {
		t.Errorf("execution resident %d B broke the %d B budget the planner promised",
			res.Stream.MaxResidentBytes, budget)
	}
	_, rRef, err := CholeskyQR2(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDenseDiff(res.R, rRef); d > 1e-13*float64(m) {
		t.Errorf("streamed R mismatch: %g", d)
	}
	if e := OrthogonalityError(res.Q); e > 1e-13 {
		t.Errorf("streamed Q orthogonality %g", e)
	}
}

// Server routing: SubmitStream under a tight budget streams (plan row,
// stream accounting, cache reuse); without any budget it materializes
// and runs in core.
func TestServerSubmitStream(t *testing.T) {
	const m, n = 8192, 32
	srv, err := NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plans, err := PlanGrid(m, n, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget := plans[0].MemBytes()
	for _, p := range plans {
		if p.MemBytes() < budget {
			budget = p.MemBytes()
		}
	}
	budget /= 2

	mkSrc := func() *MatrixSource {
		src, err := SourceFromGenerator(m, n, 99)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}

	sink := SinkToDense()
	res, err := srv.SubmitStream(StreamRequest{Source: mkSrc(), Sink: sink, MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Variant != VariantStreamTSQR {
		t.Fatalf("plan = %v, want stream-tsqr", res.Plan)
	}
	if res.Stream == nil || res.Stream.MaxResidentBytes > budget {
		t.Fatalf("stream accounting missing or over budget: %+v", res.Stream)
	}
	q, err := sink.Dense()
	if err != nil {
		t.Fatal(err)
	}
	aRef := RandomMatrix(m, n, 99)
	if e := ResidualNorm(aRef, q, res.R); e > 1e-13 {
		t.Errorf("residual %g", e)
	}
	if res.Q == nil {
		t.Error("dense-sink SubmitStream did not surface Q")
	}

	// Same key again: the plan must come from the cache.
	res2, err := srv.SubmitStream(StreamRequest{Source: mkSrc(), MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanCacheHit {
		t.Error("second same-key stream request missed the plan cache")
	}
	if res2.Q != nil {
		t.Error("sink-less stream request returned a Q")
	}

	// No budget anywhere: the source fits, so it is materialized and
	// factored in core.
	res3, err := srv.SubmitStream(StreamRequest{Source: mkSrc()})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Plan.Variant == VariantStreamTSQR || res3.Stream != nil {
		t.Fatalf("no-budget SubmitStream streamed anyway: %v", res3.Plan)
	}
	_, rRef, err := CholeskyQR2(aRef)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDenseDiff(res3.R, rRef); d > 1e-13*float64(m) {
		t.Errorf("materialized R mismatch: %g", d)
	}
}
