package cacqr

// One benchmark per paper table and figure (regeneration cost of each
// artifact), plus real-execution benchmarks of the distributed algorithms
// at laptop scale and ablation benches for the design knobs DESIGN.md
// calls out (InverseDepth, CFR3D base size, grid shape).
//
// Run with: go test -bench=. -benchmem

import (
	"testing"

	"cacqr/internal/bench"
	"cacqr/internal/core"
	"cacqr/internal/costmodel"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/pgeqrf"
	"cacqr/internal/simmpi"
	"cacqr/internal/tsqr"
)

// --- Table regeneration benches ---

func BenchmarkTable1Exponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2CFR3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable34OneDCQR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table34(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable56CACQR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table56(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure regeneration benches ---

func BenchmarkFig1aStrongScalingSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := bench.Fig1a(); len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig1bWeakScalingSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := bench.Fig1b(); len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig2Trace1DCQR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2Trace(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3TraceCACQR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig3Trace(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4BlueWatersWeak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figs := bench.Fig4(); len(figs) != 3 {
			b.Fatal("wrong panel count")
		}
	}
}

func BenchmarkFig5Stampede2Weak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figs := bench.Fig5(); len(figs) != 4 {
			b.Fatal("wrong panel count")
		}
	}
}

func BenchmarkFig6BlueWatersStrong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figs := bench.Fig6(); len(figs) != 2 {
			b.Fatal("wrong panel count")
		}
	}
}

func BenchmarkFig7Stampede2Strong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if figs := bench.Fig7(); len(figs) != 4 {
			b.Fatal("wrong panel count")
		}
	}
}

func BenchmarkAccuracySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.Accuracy(); len(out) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// --- Real-execution benches of the algorithms on the simulated runtime ---

func benchGridRun(b *testing.B, c, d, m, n, inv int) {
	b.Helper()
	a := lin.RandomMatrix(m, n, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := simmpi.Run(c*d*c, func(p *simmpi.Proc) error {
			g, err := grid.New(p.World(), c, d)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
			if err != nil {
				return err
			}
			_, _, err = core.CACQR2(g, ad.Local, m, n, core.Params{InverseDepth: inv})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCACQR2Grid1x8(b *testing.B) { benchGridRun(b, 1, 8, 256, 16, 0) }
func BenchmarkRunCACQR2Grid2x4(b *testing.B) { benchGridRun(b, 2, 4, 256, 16, 0) }
func BenchmarkRunCACQR2Grid2x8(b *testing.B) { benchGridRun(b, 2, 8, 256, 16, 0) }
func BenchmarkRunCACQR2Grid4x4(b *testing.B) { benchGridRun(b, 4, 4, 256, 16, 0) }

func BenchmarkRunOneDCQR2(b *testing.B) {
	const p, m, n = 8, 256, 16
	a := lin.RandomMatrix(m, n, 43)
	for i := 0; i < b.N; i++ {
		_, err := simmpi.Run(p, func(pr *simmpi.Proc) error {
			local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
			_, _, err := core.OneDCQR2(pr.World(), local, m, n, 0)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPGEQRF(b *testing.B) {
	const pr, pc, m, n, nb = 4, 2, 256, 32, 8
	a := lin.RandomMatrix(m, n, 44)
	for i := 0; i < b.N; i++ {
		_, err := simmpi.Run(pr*pc, func(p *simmpi.Proc) error {
			g, err := pgeqrf.NewGrid(p.World(), pr, pc)
			if err != nil {
				return err
			}
			am, err := pgeqrf.NewMatrix(g, a, nb)
			if err != nil {
				return err
			}
			_, err = pgeqrf.Factor(am)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialCQR2(b *testing.B) {
	a := lin.RandomMatrix(512, 32, 45)
	for i := 0; i < b.N; i++ {
		if _, _, err := core.CholeskyQR2(a, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialHouseholder(b *testing.B) {
	a := lin.RandomMatrix(512, 32, 46)
	for i := 0; i < b.N; i++ {
		if _, _, err := lin.QR(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGemm256(b *testing.B) {
	x := lin.RandomMatrix(256, 256, 47)
	y := lin.RandomMatrix(256, 256, 48)
	c := lin.NewMatrix(256, 256)
	b.SetBytes(3 * 256 * 256 * 8)
	for i := 0; i < b.N; i++ {
		lin.Gemm(false, false, 1, x, y, 0, c)
	}
}

func BenchmarkRunPanelCACQR2(b *testing.B) {
	const c, d, m, n, pw = 2, 2, 64, 32, 8
	a := lin.RandomMatrix(m, n, 49)
	for i := 0; i < b.N; i++ {
		_, err := simmpi.Run(c*d*c, func(p *simmpi.Proc) error {
			g, err := grid.New(p.World(), c, d)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
			if err != nil {
				return err
			}
			_, _, err = core.PanelCACQR2(g, ad.Local, m, n, pw, core.Params{})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTSQR(b *testing.B) {
	const p, m, n = 8, 256, 16
	a := lin.RandomMatrix(m, n, 50)
	for i := 0; i < b.N; i++ {
		_, err := simmpi.Run(p, func(pr *simmpi.Proc) error {
			local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
			_, _, err := tsqr.Factor(pr.World(), local, m, n, 1)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := bench.ExtTSQR(); len(f.Series) == 0 {
			b.Fatal("empty TSQR figure")
		}
		if f := bench.ExtPanel(); len(f.Series) == 0 {
			b.Fatal("empty panel figure")
		}
		if f := bench.ExtMemory(); len(f.Series) == 0 {
			b.Fatal("empty memory figure")
		}
		if f := bench.ExtTrend(); len(f.Series) == 0 {
			b.Fatal("empty trend figure")
		}
	}
}

func BenchmarkMiniStrongRealExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.MiniStrong(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGemmParallel512(b *testing.B) {
	x := lin.RandomMatrix(512, 512, 51)
	y := lin.RandomMatrix(512, 512, 52)
	c := lin.NewMatrix(512, 512)
	b.SetBytes(3 * 512 * 512 * 8)
	for i := 0; i < b.N; i++ {
		lin.GemmParallel(0, false, false, 1, x, y, 0, c)
	}
}

// --- Ablation benches (design knobs from DESIGN.md §5) ---

func BenchmarkAblationInverseDepth0(b *testing.B) { benchGridRun(b, 2, 4, 256, 32, 0) }
func BenchmarkAblationInverseDepth1(b *testing.B) { benchGridRun(b, 2, 4, 256, 32, 1) }
func BenchmarkAblationInverseDepth2(b *testing.B) { benchGridRun(b, 2, 4, 256, 32, 2) }

func BenchmarkAblationBaseSize(b *testing.B) {
	// Model-level n_o sweep: synchronization vs bandwidth (§II-D).
	for i := 0; i < b.N; i++ {
		for base := 8; base <= 512; base *= 4 {
			c := costmodel.CFR3D(4096, 8, costmodel.CFR3DOptions{BaseSize: base})
			if c.Msgs == 0 {
				b.Fatal("empty cost")
			}
		}
	}
}

func BenchmarkAblationGridShape(b *testing.B) {
	// Model-level c sweep at fixed P: the Table I interpolation.
	const m, n, p = 1 << 21, 1 << 12, 1 << 16
	for i := 0; i < b.N; i++ {
		for c := 1; c*c*c <= p; c *= 2 {
			d := p / (c * c)
			if d < c || d%c != 0 {
				continue
			}
			if _, err := costmodel.CACQR2(m, n, costmodel.CACQRParams{C: c, D: d}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
