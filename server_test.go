package cacqr

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, o ServerOptions) *Server {
	t.Helper()
	if o.BatchWindow == 0 {
		o.BatchWindow = -1 // tests don't want admission latency
	}
	s, err := NewServer(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestServerFactorizeAndCacheHit(t *testing.T) {
	s := newTestServer(t, ServerOptions{Procs: 8})
	a := RandomMatrix(256, 8, 21)
	first, err := s.Submit(SubmitRequest{A: a})
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanCacheHit {
		t.Fatal("cold request reported a cache hit")
	}
	if first.Plan == nil || first.Q == nil || first.R == nil {
		t.Fatalf("incomplete result: %+v", first)
	}
	if o := OrthogonalityError(first.Q); o > 1e-10 {
		t.Fatalf("orthogonality %g", o)
	}
	if r := ResidualNorm(a, first.Q, first.R); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
	// A same-shaped (different values) matrix reuses the cached plan.
	second, err := s.Submit(SubmitRequest{A: RandomMatrix(256, 8, 22)})
	if err != nil {
		t.Fatal(err)
	}
	if !second.PlanCacheHit {
		t.Fatal("same-key request missed the plan cache")
	}
	if second.Plan.Variant != first.Plan.Variant || second.Plan.Procs != first.Plan.Procs {
		t.Fatalf("cached plan differs: %v vs %v", second.Plan, first.Plan)
	}
	st := s.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.Planned != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate())
	}
}

func TestServerSolveMatchesDirectPath(t *testing.T) {
	s := newTestServer(t, ServerOptions{Procs: 8})
	a, b, xTrue := buildSystem(128, 8, 23)
	res, err := s.Submit(SubmitRequest{A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.X {
		if math.Abs(res.X[j]-xTrue[j]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", j, res.X[j], xTrue[j])
		}
	}
	if res.CondEst <= 0 {
		t.Fatalf("condition estimate not recorded: %g", res.CondEst)
	}
}

func TestServerConditionAwareRoutingPerBucket(t *testing.T) {
	s := newTestServer(t, ServerOptions{Procs: 8})
	m, n := 256, 8
	// Well-conditioned and ill-conditioned requests of the same shape
	// must land on DIFFERENT cache lines and different variants.
	well, err := s.Submit(SubmitRequest{A: RandomMatrix(m, n, 24)})
	if err != nil {
		t.Fatal(err)
	}
	ill, err := s.Submit(SubmitRequest{A: RandomWithCond(m, n, 1e10, 25), CondEst: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if ill.PlanCacheHit {
		t.Fatal("κ=1e10 request reused the well-conditioned plan line")
	}
	switch well.Plan.Variant {
	case VariantSequential, Variant1DCQR2, VariantCACQR2, VariantPanelCACQR2:
	default:
		t.Fatalf("well-conditioned plan variant %s", well.Plan.Variant)
	}
	switch ill.Plan.Variant {
	case VariantShiftedCQR3, VariantTSQR:
	default:
		t.Fatalf("ill-conditioned plan variant %s", ill.Plan.Variant)
	}
	if o := OrthogonalityError(ill.Q); o > 1e-8 {
		t.Fatalf("ill-conditioned factors lost orthogonality: %g", o)
	}
	// Same decade (κ-bucket 10 covers (1e9, 1e10]), different κ: shares
	// the ill bucket's cached plan.
	again, err := s.Submit(SubmitRequest{A: RandomWithCond(m, n, 4e9, 26), CondEst: 4e9})
	if err != nil {
		t.Fatal(err)
	}
	if !again.PlanCacheHit {
		t.Fatal("κ=4e9 should hit the κ=1e10 bucket's plan")
	}
	// An unhinted ill-conditioned request measures its own κ and still
	// routes off the plain family.
	measured, err := s.Submit(SubmitRequest{A: RandomWithCond(m, n, 1e10, 27)})
	if err != nil {
		t.Fatal(err)
	}
	if measured.CondEst < 1e8 {
		t.Fatalf("measured κ = %g, want ≳ 1e8", measured.CondEst)
	}
	if o := OrthogonalityError(measured.Q); o > 1e-8 {
		t.Fatalf("unhinted ill-conditioned factors lost orthogonality: %g", o)
	}
}

func TestServerConcurrentMixedTraffic(t *testing.T) {
	s := newTestServer(t, ServerOptions{Procs: 8, RankBudget: 16})
	type workload struct {
		m, n int
		cond float64
	}
	loads := []workload{
		{128, 8, 0},
		{256, 8, 0},
		{256, 16, 0},
		{128, 8, 1e10},
		{256, 16, 1e10},
	}
	const rounds = 4
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i, w := range loads {
			wg.Add(1)
			go func(w workload, seed int64) {
				defer wg.Done()
				var a *Dense
				if w.cond > 1 {
					a = RandomWithCond(w.m, w.n, w.cond, seed)
				} else {
					a = RandomMatrix(w.m, w.n, seed)
				}
				b := make([]float64, w.m)
				for i := range b {
					b[i] = 1
				}
				res, err := s.Submit(SubmitRequest{A: a, B: b, CondEst: w.cond})
				if err != nil {
					t.Errorf("%dx%d κ=%g: %v", w.m, w.n, w.cond, err)
					return
				}
				for _, v := range res.X {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("%dx%d κ=%g: non-finite solution", w.m, w.n, w.cond)
						return
					}
				}
			}(w, int64(100+r*len(loads)+i))
		}
	}
	wg.Wait()
	st := s.Stats()
	want := int64(len(loads) * rounds)
	if st.Requests != want {
		t.Fatalf("requests %d, want %d", st.Requests, want)
	}
	// 5 distinct keys: everything beyond the 5 cold lookups must have
	// been amortized (cache hit or batch join).
	if st.Planned != int64(len(loads)) {
		t.Fatalf("planned %d, want %d: %+v", st.Planned, len(loads), st)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("no amortization under repeated traffic: %+v", st)
	}
	if st.InFlightRanks != 0 {
		t.Fatalf("rank tokens leaked: %+v", st)
	}
}

func TestServerEviction(t *testing.T) {
	s := newTestServer(t, ServerOptions{Procs: 4, CacheEntries: 2})
	shapes := [][2]int{{128, 8}, {256, 8}, {512, 8}}
	for i, sh := range shapes {
		if _, err := s.Submit(SubmitRequest{A: RandomMatrix(sh[0], sh[1], int64(30+i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("eviction accounting: %+v", st)
	}
	// The first shape was evicted: resubmitting plans again.
	res, err := s.Submit(SubmitRequest{A: RandomMatrix(128, 8, 33)})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Fatal("evicted key reported a hit")
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(ServerOptions{Options: Options{Workers: -1}}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := NewServer(ServerOptions{Options: Options{CondEst: 10}}); err == nil {
		t.Fatal("server-wide CondEst accepted")
	}
	if _, err := NewServer(ServerOptions{Procs: -4}); err == nil {
		t.Fatal("negative default budget accepted")
	}
	s := newTestServer(t, ServerOptions{})
	if _, err := s.Submit(SubmitRequest{}); err == nil {
		t.Fatal("nil matrix accepted")
	}
	a := RandomMatrix(64, 8, 34)
	if _, err := s.Submit(SubmitRequest{A: a, B: make([]float64, 5)}); err == nil {
		t.Fatal("mismatched rhs accepted")
	}
	if _, err := s.Submit(SubmitRequest{A: a, CondEst: -3}); err == nil {
		t.Fatal("negative CondEst accepted")
	}
	if _, err := s.Submit(SubmitRequest{A: a, Procs: -1}); err == nil {
		t.Fatal("negative procs accepted")
	}
	// Rank-deficient solve must error, not return garbage.
	dead, b := rankDeficient(64, 8, 35)
	if _, err := s.Submit(SubmitRequest{A: dead, B: b}); err == nil {
		t.Fatal("rank-deficient solve accepted")
	}
}

func TestServerCloseDrains(t *testing.T) {
	s, err := NewServer(ServerOptions{Procs: 4, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s.Submit(SubmitRequest{A: RandomMatrix(128, 8, seed)}) //nolint:errcheck
		}(int64(40 + i))
	}
	time.Sleep(time.Millisecond)
	s.Close()
	wg.Wait()
	if _, err := s.Submit(SubmitRequest{A: RandomMatrix(128, 8, 44)}); err == nil {
		t.Fatal("post-Close Submit accepted")
	}
}
