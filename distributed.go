package cacqr

// The shared execution path of every distributed entry point. Each
// Factorize* driver validates its shape, builds a wireJob describing the
// run, and hands it to runDistributed, which executes the same rank body
// on the transport the Options select: the simulated goroutine runtime
// (default — exact α-β-γ accounting) or real OS worker processes over
// TCP (internal/transport/tcpnet — measured traffic and wall-clock).

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"

	"cacqr/internal/core"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/obs"
	"cacqr/internal/pgeqrf"
	"cacqr/internal/simmpi"
	"cacqr/internal/transport"
	"cacqr/internal/transport/tcpnet"
	"cacqr/internal/tsqr"
)

// Transport selects how the distributed entry points execute. The zero
// value of Options (a nil *Transport) means the simulated runtime.
type Transport struct {
	tcp     bool
	workers []string
}

// SimTransport runs the job on the simulated goroutine runtime — one
// goroutine per rank, exact α-β-γ cost accounting. This is the default.
func SimTransport() *Transport { return &Transport{} }

// TCPTransport runs the job across real OS processes: the calling
// process acts as rank 0 and each worker address (a `cacqrd worker`
// listener, or any process inside ServeWorker) hosts one further rank.
// A job on np ranks uses the first np−1 workers; fewer available
// workers than ranks is an error. Costs are measured, not modeled:
// Msgs/Words count actual traffic, Bytes counts raw wire bytes.
func TCPTransport(workers ...string) *Transport {
	return &Transport{tcp: true, workers: append([]string(nil), workers...)}
}

func (t *Transport) isTCP() bool { return t != nil && t.tcp }

// variant names the five distributed algorithms a wireJob can carry.
const (
	variantGrid      = "grid"
	variant1D        = "1d"
	variantShifted1D = "shifted1d"
	variantTSQR      = "tsqr"
	variantPGEQRF    = "pgeqrf"
)

// wireJob is the transport-independent description of one distributed
// factorization: enough for any rank — local goroutine or remote
// process — to run its share. Fields are exported for gob.
type wireJob struct {
	Variant string
	M, N    int

	Procs int // 1D family: rank count
	C, D  int // grid variant: the c×d×c spec

	PR, PC, NB int // pgeqrf: process grid and panel width

	PanelWidth   int // grid panel variant / blocked TSQR width
	InverseDepth int
	BaseSize     int
	Workers      int
}

// procs returns the job's rank count.
func (job wireJob) procs() int {
	switch job.Variant {
	case variantGrid:
		return job.C * job.D * job.C
	case variantPGEQRF:
		return job.PR * job.PC
	default:
		return job.Procs
	}
}

// localInput stages rank's input block for job. The grid variant
// returns nil: it scatters from rank 0 through the transport itself,
// exactly as a cluster would load it.
func localInput(job wireJob, global *lin.Matrix, rank int) (*lin.Matrix, error) {
	switch job.Variant {
	case variantGrid:
		return nil, nil
	case variantPGEQRF:
		return pgeqrf.LocalBlock(global, rank, job.PR, job.PC, job.NB)
	default:
		rows := job.M / job.Procs
		return global.View(rank*rows, 0, rows, job.N).Clone(), nil
	}
}

// jobPayload is the gob blob shipped to a TCP worker: the job spec plus
// the rank's staged input block (absent for the grid variant).
type jobPayload struct {
	Job        wireJob
	Rows, Cols int
	Data       []float64
}

func encodeJobPayload(job wireJob, local *lin.Matrix) ([]byte, error) {
	pl := jobPayload{Job: job}
	if local != nil {
		pl.Rows, pl.Cols = local.Rows, local.Cols
		pl.Data = dist.Flatten(local)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pl); err != nil {
		return nil, fmt.Errorf("cacqr: encoding worker payload: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeJobPayload(payload []byte) (wireJob, *lin.Matrix, error) {
	var pl jobPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&pl); err != nil {
		return wireJob{}, nil, fmt.Errorf("cacqr: bad worker payload: %w", err)
	}
	var local *lin.Matrix
	if pl.Rows != 0 || pl.Cols != 0 {
		var err error
		local, err = dist.Unflatten(pl.Rows, pl.Cols, pl.Data)
		if err != nil {
			return wireJob{}, nil, fmt.Errorf("cacqr: bad worker payload: %w", err)
		}
	}
	return pl.Job, local, nil
}

// jobBody returns one rank's share of job — the single algorithm
// dispatch behind every execution context: each simulated rank, the TCP
// coordinator (rank 0), and each TCP worker.
//
// local is the rank's staged input block (nil to derive it from
// globalAtRoot, or for the grid variant, which scatters through the
// transport). globalAtRoot is the full matrix where present — every
// simulated rank shares the closure view, the TCP coordinator holds its
// own; TCP workers have neither. sink, when non-nil, receives the
// gathered global factors on rank 0.
func jobBody(job wireJob, local *lin.Matrix, globalAtRoot *lin.Matrix, sink func(q, r *lin.Matrix)) func(p transport.Proc) error {
	return func(p transport.Proc) error {
		if local == nil && job.Variant != variantGrid {
			var err error
			local, err = localInput(job, globalAtRoot, p.Rank())
			if err != nil {
				return err
			}
		}
		emit := func(q, r *lin.Matrix) {
			if sink != nil && p.Rank() == 0 {
				sink(q, r)
			}
		}
		m, n := job.M, job.N
		switch job.Variant {
		case variantGrid:
			g, err := grid.New(p.World(), job.C, job.D)
			if err != nil {
				return err
			}
			// Scatter from the grid's rank 0 across slice z=0, then
			// replicate across depth: the faithful cluster loading path.
			var rootGlobal *lin.Matrix
			if g.Slice.Index() == 0 && g.Z == 0 {
				rootGlobal = globalAtRoot
			}
			var ad *dist.Matrix
			if g.Z == 0 {
				ad, err = dist.Scatter(g.Slice, 0, rootGlobal, m, n, job.D, job.C)
				if err != nil {
					return err
				}
			}
			var flat []float64
			if g.Z == 0 {
				flat = dist.Flatten(ad.Local)
			}
			flat, err = g.ZComm.Bcast(0, flat)
			if err != nil {
				return err
			}
			blk, err := dist.Unflatten(m/job.D, n/job.C, flat)
			if err != nil {
				return err
			}
			ad = &dist.Matrix{M: m, N: n, PR: job.D, PC: job.C, Row: g.Y, Col: g.X, Local: blk}
			prm := core.Params{InverseDepth: job.InverseDepth, BaseSize: job.BaseSize, Workers: job.Workers}
			var qL, rL *lin.Matrix
			if job.PanelWidth > 0 {
				qL, rL, err = core.PanelCACQR2(g, ad.Local, m, n, job.PanelWidth, prm)
			} else {
				qL, rL, err = core.CACQR2(g, ad.Local, m, n, prm)
			}
			if err != nil {
				return err
			}
			qG, err := dist.Gather(g.Slice, qL, m, n, job.D, job.C)
			if err != nil {
				return err
			}
			rG, err := dist.Gather(g.Cube.Slice, rL, n, n, job.C, job.C)
			if err != nil {
				return err
			}
			emit(qG, rG)
			return nil

		case variant1D, variantShifted1D:
			var qL, rL *lin.Matrix
			var err error
			if job.Variant == variant1D {
				qL, rL, err = core.OneDCQR2(p.World(), local, m, n, job.Workers)
			} else {
				qL, rL, err = core.OneDShiftedCQR3(p.World(), local, m, n, job.Workers)
			}
			if err != nil {
				return err
			}
			qG, err := allgatherQ(p, qL, m, n)
			if err != nil {
				return err
			}
			emit(qG, rL)
			return nil

		case variantTSQR:
			var qL, rL *lin.Matrix
			var err error
			if job.PanelWidth > 0 {
				qL, rL, err = tsqr.BlockedFactor(p.World(), local, m, n, job.PanelWidth, job.Workers)
			} else {
				qL, rL, err = tsqr.Factor(p.World(), local, m, n, job.Workers)
			}
			if err != nil {
				return err
			}
			qG, err := allgatherQ(p, qL, m, n)
			if err != nil {
				return err
			}
			emit(qG, rL)
			return nil

		case variantPGEQRF:
			g, err := pgeqrf.NewGrid(p.World(), job.PR, job.PC)
			if err != nil {
				return err
			}
			am, err := pgeqrf.NewMatrixLocal(g, local, m, n, job.NB)
			if err != nil {
				return err
			}
			f, err := pgeqrf.Factor(am)
			if err != nil {
				return err
			}
			rG, err := f.GatherR()
			if err != nil {
				return err
			}
			// Explicit Q = Q·[Iₙ; 0]: apply the reflectors to this rank's
			// block of the identity's first n columns (rows are cyclic over
			// the pr process rows; process columns compute redundantly).
			mloc := am.Local.Rows
			e := lin.NewMatrix(mloc, n)
			for li := 0; li < mloc; li++ {
				if gi := li*job.PR + g.Row; gi < n {
					e.Set(li, gi, 1)
				}
			}
			qL, err := f.ApplyQ(e)
			if err != nil {
				return err
			}
			// Assemble the global Q: process column 0 contributes its rows,
			// everyone else zeros, and a world Allreduce replicates the sum
			// (the same output-path pattern as GatherR).
			contrib := lin.NewMatrix(m, n)
			if g.Col == 0 {
				for li := 0; li < mloc; li++ {
					gi := li*job.PR + g.Row
					for j := 0; j < n; j++ {
						contrib.Set(gi, j, qL.At(li, j))
					}
				}
			}
			qFlat, err := g.World.Allreduce(dist.Flatten(contrib))
			if err != nil {
				return err
			}
			qG, err := dist.Unflatten(m, n, qFlat)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				lin.NormalizeSigns(qG, rG)
			}
			emit(qG, rG)
			return nil
		}
		return fmt.Errorf("cacqr: unknown job variant %q", job.Variant)
	}
}

// allgatherQ assembles the global m×n Q from each rank's row block over
// the 1D world communicator — the shared gather tail of the 1D
// execution paths (Factorize1D, FactorizeTSQR).
func allgatherQ(p transport.Proc, qL *lin.Matrix, m, n int) (*lin.Matrix, error) {
	flat, err := p.World().Allgather(dist.Flatten(qL))
	if err != nil {
		return nil, err
	}
	return dist.Unflatten(m, n, flat)
}

// runTimeout resolves the Options.Timeout default shared by both
// transports.
func runTimeout(opts Options) time.Duration {
	if opts.Timeout == 0 {
		return 10 * time.Minute
	}
	return opts.Timeout
}

// runDistributed executes job on the transport Options select and
// assembles the Result. The callers have already validated shapes.
func runDistributed(job wireJob, global *lin.Matrix, opts Options) (*Result, error) {
	var q, r *lin.Matrix
	sink := func(qG, rG *lin.Matrix) { q, r = qG, rG }

	var st *transport.Stats
	var err error
	if opts.Transport.isTCP() {
		st, err = runTCP(job, global, opts, sink)
	} else {
		st, err = runSim(job, global, opts, sink)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Q: fromLin(q),
		R: fromLin(r),
		Stats: CostStats{
			Msgs: st.MaxMsgs, Words: st.MaxWords, Flops: st.MaxFlops,
			Bytes: st.MaxBytes, Time: st.Time,
		},
	}, nil
}

// startRunSpans opens the trace structure of one distributed run under
// the span carried by opts.ctx: a "run" child plus one kind-"rank" span
// per live local rank (liveRanks of them; TCP workers are remote and
// get theirs synthesized from counters post-run). When the request is
// untraced everything here is nil and the run pays nil checks only.
func startRunSpans(opts Options, job wireJob, transportName string, liveRanks int) (*obs.Span, []*obs.Span) {
	spans := make([]*obs.Span, job.procs())
	run := obs.FromContext(opts.ctx).Child("run")
	run.SetStr("transport", transportName)
	run.SetStr("variant", job.Variant)
	run.SetInt("procs", int64(job.procs()))
	for i := 0; i < liveRanks && i < len(spans); i++ {
		spans[i] = run.Rank(fmt.Sprintf("rank-%d", i))
	}
	return run, spans
}

// finishRunSpans closes the run's spans, attributing each rank its
// measured transport counters — msgs/words/flops in the paper's α-β-γ
// units, wire bytes on real backends — and the run its totals, so a
// trace's per-collective byte counts can be checked against
// transport.Counters.
func finishRunSpans(run *obs.Span, spans []*obs.Span, st *transport.Stats) {
	if st != nil {
		for i := range spans {
			// A nil slot is not "untraced" here but "remote rank": TCP
			// workers never produced a local span, so synthesize one from
			// the counters the coordinator collected (zero duration —
			// remote stage timings are not shipped back).
			//lint:ignore obssafety nil marks a remote rank needing a synthesized span, not the untraced path
			if spans[i] == nil && i < len(st.PerRank) {
				spans[i] = run.Rank(fmt.Sprintf("rank-%d", i))
			}
			if i < len(st.PerRank) {
				c := st.PerRank[i]
				spans[i].SetInt("msgs", c.Msgs)
				spans[i].SetInt("words", c.Words)
				spans[i].SetInt("flops", c.Flops)
				spans[i].SetInt("bytes", c.Bytes)
				spans[i].SetFloat("time", c.Time)
			}
		}
		run.SetInt("total_msgs", st.TotalMsgs)
		run.SetInt("total_words", st.TotalWords)
		run.SetInt("total_bytes", st.TotalBytes)
	}
	for _, sp := range spans {
		sp.End()
	}
	run.End()
}

// runSim executes job on the simulated runtime. A context on the
// Options adds cancellation alongside the watchdog timeout; a span on
// it records the run, with every rank wrapped by transport.Traced so
// collectives and kernel stages land under per-rank spans.
func runSim(job wireJob, global *lin.Matrix, opts Options, sink func(q, r *lin.Matrix)) (*transport.Stats, error) {
	sopts := simmpi.Options{Timeout: runTimeout(opts)}
	if opts.ctx != nil {
		sopts.Cancel = opts.ctx.Done()
	}
	run, rankSpans := startRunSpans(opts, job, "sim", job.procs())
	st, err := simmpi.RunWithOptions(job.procs(), sopts, func(p *simmpi.Proc) error {
		return jobBody(job, nil, global, sink)(transport.Traced(p, rankSpans[p.Rank()]))
	})
	finishRunSpans(run, rankSpans, st)
	if err != nil && errors.Is(err, simmpi.ErrCanceled) && opts.ctx != nil && opts.ctx.Err() != nil {
		err = opts.ctx.Err()
	}
	return st, err
}

// runTCP executes job across real worker processes: this process is
// rank 0, the first np−1 configured workers host ranks 1..np−1. Input
// blocks ship inside each worker's job payload, out of band of the
// charged transport operations.
func runTCP(job wireJob, global *lin.Matrix, opts Options, sink func(q, r *lin.Matrix)) (*transport.Stats, error) {
	np := job.procs()
	workers := opts.Transport.workers
	if len(workers) < np-1 {
		return nil, fmt.Errorf("cacqr: job needs %d ranks but the TCP transport has a coordinator plus only %d workers", np, len(workers))
	}
	payloads := make([][]byte, np)
	for rank := 1; rank < np; rank++ {
		local, err := localInput(job, global, rank)
		if err != nil {
			return nil, err
		}
		payloads[rank], err = encodeJobPayload(job, local)
		if err != nil {
			return nil, err
		}
	}
	local0, err := localInput(job, global, 0)
	if err != nil {
		return nil, err
	}
	parent := opts.ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithTimeout(parent, runTimeout(opts))
	defer cancel()
	// Only rank 0 runs in this process, so only it gets a live span;
	// worker ranks get theirs synthesized from the counters the
	// coordinator collects over the control connections.
	run, rankSpans := startRunSpans(opts, job, "tcp", 1)
	coord := &tcpnet.Coordinator{Workers: workers[:np-1]}
	st, err := coord.Run(ctx,
		func(rank int) []byte { return payloads[rank] },
		func(p transport.Proc) error {
			return jobBody(job, local0, global, sink)(transport.Traced(p, rankSpans[0]))
		})
	finishRunSpans(run, rankSpans, st)
	return st, err
}

// ServeWorker turns the calling process into a factorization worker: it
// accepts jobs on ln and runs each assigned rank until the listener is
// closed. This is the body of `cacqrd worker`; embedders can serve on a
// listener of their own. It returns nil when ln is closed.
func ServeWorker(ln net.Listener) error {
	return tcpnet.Serve(ln, func(p transport.Proc, payload []byte) error {
		job, local, err := decodeJobPayload(payload)
		if err != nil {
			return err
		}
		return jobBody(job, local, nil, nil)(p)
	})
}
