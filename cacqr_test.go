package cacqr

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"strings"
	"testing"
)

func TestDenseRoundTrip(t *testing.T) {
	d, err := FromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if d.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", d.At(1, 2))
	}
	d.Set(0, 1, 9)
	if d.At(0, 1) != 9 {
		t.Fatal("Set failed")
	}
	if _, err := FromData(2, 2, []float64{1}); err == nil {
		t.Fatal("bad FromData accepted")
	}
}

func TestCholeskyQR2Public(t *testing.T) {
	a := RandomMatrix(40, 8, 1)
	q, r, err := CholeskyQR2(a)
	if err != nil {
		t.Fatal(err)
	}
	if e := OrthogonalityError(q); e > 1e-12 {
		t.Fatalf("orthogonality %g", e)
	}
	if e := ResidualNorm(a, q, r); e > 1e-13 {
		t.Fatalf("residual %g", e)
	}
}

func TestShiftedCQR3Public(t *testing.T) {
	a := RandomWithCond(60, 10, 1e10, 2)
	q, r, err := ShiftedCQR3(a)
	if err != nil {
		t.Fatal(err)
	}
	if e := OrthogonalityError(q); e > 1e-10 {
		t.Fatalf("orthogonality %g", e)
	}
	_ = r
}

func TestHouseholderQRPublic(t *testing.T) {
	a := RandomMatrix(12, 12, 3)
	q, r, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if e := ResidualNorm(a, q, r); e > 1e-12 {
		t.Fatalf("residual %g", e)
	}
}

func TestFactorizeOnGrid(t *testing.T) {
	a := RandomMatrix(32, 8, 4)
	res, err := FactorizeOnGrid(a, GridSpec{C: 2, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := OrthogonalityError(res.Q); e > 1e-11 {
		t.Fatalf("orthogonality %g", e)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-11 {
		t.Fatalf("residual %g", e)
	}
	if res.Stats.Msgs == 0 || res.Stats.Words == 0 || res.Stats.Flops == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
	// The measured cost must equal the model's prediction — the public
	// API exposes the same validated quantities.
	model, err := ModelCACQR2(32, 8, GridSpec{C: 2, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// FactorizeOnGrid adds two gathers on top of the algorithm; the
	// algorithm cost is a lower bound and the bulk of the total.
	if res.Stats.Msgs < model.Msgs || res.Stats.Words < model.Words {
		t.Fatalf("measured (%d,%d) below model (%d,%d)",
			res.Stats.Msgs, res.Stats.Words, model.Msgs, model.Words)
	}
	if res.Stats.Flops != model.TotalFlops() {
		t.Fatalf("measured flops %d != model %d", res.Stats.Flops, model.TotalFlops())
	}
}

func TestFactorizeOnGridValidation(t *testing.T) {
	a := RandomMatrix(8, 4, 5)
	if _, err := FactorizeOnGrid(a, GridSpec{C: 0, D: 1}, Options{}); err == nil {
		t.Fatal("c=0 accepted")
	}
	if _, err := FactorizeOnGrid(a, GridSpec{C: 2, D: 3}, Options{}); err == nil {
		t.Fatal("c∤d accepted")
	}
	if _, err := FactorizeOnGrid(a, GridSpec{C: 4, D: 2}, Options{}); err == nil {
		t.Fatal("d<c accepted")
	}
}

func TestFactorizeOnGrid1D(t *testing.T) {
	a := RandomMatrix(64, 4, 6)
	res, err := FactorizeOnGrid(a, GridSpec{C: 1, D: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-11 {
		t.Fatalf("residual %g", e)
	}
}

func TestModelPrediction(t *testing.T) {
	c, err := ModelCACQR2(1<<21, 1<<12, GridSpec{C: 8, D: 1024}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gf := PredictGFlopsPerNode(Stampede2, c, 1<<21, 1<<12, 1024)
	if gf < 10 || gf > 2000 {
		t.Fatalf("implausible prediction %g GF/s/node", gf)
	}
	s, err := ModelPGEQRF(1<<21, 1<<12, 16384, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	sgf := PredictGFlopsPerNode(Stampede2, s, 1<<21, 1<<12, 1024)
	if gf < sgf {
		t.Fatalf("CA-CQR2 (%g) should beat the baseline (%g) at 1024 nodes", gf, sgf)
	}
	if !strings.Contains(Stampede2.Name, "Stampede") {
		t.Fatal("machine export broken")
	}
}

func TestFactorizeOnGridPanelVariant(t *testing.T) {
	a := RandomMatrix(32, 16, 8)
	res, err := FactorizeOnGrid(a, GridSpec{C: 2, D: 4}, Options{PanelWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e := OrthogonalityError(res.Q); e > 1e-10 {
		t.Fatalf("orthogonality %g", e)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-10 {
		t.Fatalf("residual %g", e)
	}
	// The panel variant must spend fewer flops than whole-matrix CQR2 on
	// near-square inputs.
	plain, err := FactorizeOnGrid(a, GridSpec{C: 2, D: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Flops >= plain.Stats.Flops {
		t.Fatalf("panel flops %d not below plain %d", res.Stats.Flops, plain.Stats.Flops)
	}
	// Invalid widths are rejected.
	if _, err := FactorizeOnGrid(a, GridSpec{C: 2, D: 4}, Options{PanelWidth: 3}); err == nil {
		t.Fatal("c∤PanelWidth accepted")
	}
}

func TestFactorizeTSQRPublic(t *testing.T) {
	// Plain TSQR on an ill-conditioned matrix (where CholeskyQR2 would
	// need the shifted variant).
	a := RandomWithCond(64, 8, 1e10, 9)
	res, err := FactorizeTSQR(a, 4, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := OrthogonalityError(res.Q); e > 1e-10 {
		t.Fatalf("orthogonality %g", e)
	}
	if e := ResidualNorm(a, res.Q, res.R); e > 1e-10 {
		t.Fatalf("residual %g", e)
	}

	// Blocked variant when local blocks are shorter than n.
	b := RandomMatrix(64, 24, 10)
	res, err = FactorizeTSQR(b, 8, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := ResidualNorm(b, res.Q, res.R); e > 1e-10 {
		t.Fatalf("blocked residual %g", e)
	}

	// Validation: indivisible m.
	if _, err := FactorizeTSQR(RandomMatrix(10, 2, 1), 4, 0, Options{}); err == nil {
		t.Fatal("indivisible m accepted")
	}
}

func TestGridSpecProcs(t *testing.T) {
	if p := (GridSpec{C: 2, D: 4}).Procs(); p != 16 {
		t.Fatalf("Procs = %d", p)
	}
}

func TestPublicMatchesSequentialReference(t *testing.T) {
	a := RandomMatrix(48, 8, 7)
	q1, r1, err := CholeskyQR2(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FactorizeOnGrid(a, GridSpec{C: 2, D: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Data {
		if math.Abs(r1.Data[i]-res.R.Data[i]) > 1e-9 {
			t.Fatalf("R element %d differs: %g vs %g", i, r1.Data[i], res.R.Data[i])
		}
	}
	_ = q1
}

// TestWorkersKnobIsDeterministic: the Options.Workers knob may only
// change wall-clock, never results or measured costs — the parallel
// kernels are bitwise identical to the serial ones.
func TestWorkersKnobIsDeterministic(t *testing.T) {
	a := RandomMatrix(128, 16, 7)
	spec := GridSpec{C: 2, D: 4}
	base, err := FactorizeOnGrid(a, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		got, err := FactorizeOnGrid(a, spec, Options{Workers: w})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		for i := range got.Q.Data {
			if got.Q.Data[i] != base.Q.Data[i] {
				t.Fatalf("Workers=%d: Q differs at %d", w, i)
			}
		}
		for i := range got.R.Data {
			if got.R.Data[i] != base.R.Data[i] {
				t.Fatalf("Workers=%d: R differs at %d", w, i)
			}
		}
		if got.Stats != base.Stats {
			t.Fatalf("Workers=%d: measured costs changed: %+v vs %+v", w, got.Stats, base.Stats)
		}
	}

	tq, err := FactorizeTSQR(a, 4, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tq4, err := FactorizeTSQR(a, 4, 0, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tq.Q.Data {
		if tq.Q.Data[i] != tq4.Q.Data[i] {
			t.Fatalf("TSQR Workers=4: Q differs at %d", i)
		}
	}
}
