// Command cacqrlint runs cacqr's custom static-analysis suite
// (internal/analysis) over package patterns and exits non-zero on any
// diagnostic. CI's lint job runs it over ./...; run it locally the
// same way:
//
//	go run ./cmd/cacqrlint ./...
//
// The suite enforces the repo's load-bearing conventions — the Workers
// knob, bitwise-deterministic generators, nil-safe obs spans,
// mutex-guarded serve state, tolerance-based float comparison, and %w
// error wrapping. `cacqrlint -list` describes each analyzer; a file
// opts out of one with
//
//	//lint:allow <analyzer> <justification>
//
// and a single line with
//
//	//lint:ignore <analyzer> <justification>
//
// Unknown analyzer names and missing justifications in directives are
// themselves diagnostics.
//
// The tool is built on the standard library's go/ast + go/types (the
// module takes no dependencies), so it shells out to `go list` for
// package enumeration and must run from inside the module.
package main

import (
	"flag"
	"fmt"
	"os"

	"cacqr/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cacqrlint [-list] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cacqrlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cacqrlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
