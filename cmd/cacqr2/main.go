// Command cacqr2 factors a random m×n matrix with CA-CQR2 on a simulated
// c×d×c processor grid, verifies the result, and reports the measured
// per-processor α-β-γ costs alongside the analytic model's prediction.
//
//	cacqr2 -m 1024 -n 32 -c 2 -d 4 [-inv 0] [-base 0] [-cond 1e4] [-seed 1]
//
// With -grid auto the cost-model planner chooses the algorithm variant
// and grid over up to -p simulated ranks (optionally under a per-rank
// -mem byte budget), prints the top-3 ranked plans, and executes the
// winner. The choice is condition-aware: pass a κ₂(A) hint with
// -condest, or let the CLI measure one by power iteration — an
// ill-conditioned matrix (try -cond 1e10) is routed off the plain
// CholeskyQR2 family onto shifted-cqr3 or tsqr:
//
//	cacqr2 -grid auto -m 4096 -n 256 -p 64 [-mem 4000000] [-condest 1e10]
//
// With -stream the matrix is factored out-of-core by the streaming
// TSQR — row panels through CholeskyQR2, R factors merged through a
// chain of small QRs, Q written in a second pass — and the run reports
// its peak resident footprint next to what materializing would cost:
//
//	cacqr2 -stream -m 262144 -n 64 [-panel-rows 4096]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
)

import cacqr "cacqr"

func main() {
	m := flag.Int("m", 1024, "matrix rows")
	n := flag.Int("n", 32, "matrix columns")
	c := flag.Int("c", 2, "grid parameter c (grid is c x d x c)")
	d := flag.Int("d", 4, "grid parameter d")
	gridMode := flag.String("grid", "", `"auto" lets the planner choose variant and grid (ignores -c/-d)`)
	streamMode := flag.Bool("stream", false, "factor out-of-core with the streaming TSQR instead of a grid (two panel passes; reports peak resident memory)")
	panelRows := flag.Int("panel-rows", 0, "rows per streamed panel with -stream (0 = default)")
	procs := flag.Int("p", 16, "processor budget for -grid auto")
	mem := flag.Int64("mem", 0, "per-rank memory budget in bytes for -grid auto (0 = unlimited)")
	baselines := flag.Bool("baselines", false, "with -grid auto, rank the PGEQRF baseline as a reference row")
	inv := flag.Int("inv", 0, "InverseDepth (top CFR3D levels without explicit inverse)")
	base := flag.Int("base", 0, "CFR3D base-case size n_o (0 = default n/c²)")
	cond := flag.Float64("cond", 0, "condition number of the test matrix (0 = generic random)")
	condEst := flag.Float64("condest", 0, "condition hint for -grid auto routing (0 = estimate it from the matrix)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var a *cacqr.Dense
	if *cond > 1 {
		a = cacqr.RandomWithCond(*m, *n, *cond, *seed)
	} else {
		a = cacqr.RandomMatrix(*m, *n, *seed)
	}
	opts := cacqr.Options{InverseDepth: *inv, BaseSize: *base, MemBudget: *mem,
		IncludeBaselines: *baselines, CondEst: *condEst}

	var res *cacqr.Result
	var err error
	switch {
	case *streamMode && *gridMode != "":
		err = fmt.Errorf("-stream is its own mode; drop -grid")
	case *streamMode:
		res, err = runStream(a, *panelRows, opts)
	case *gridMode == "auto":
		res, err = runAuto(a, *procs, opts)
	case *gridMode == "":
		spec := cacqr.GridSpec{C: *c, D: *d}
		fmt.Printf("CA-CQR2: %d x %d matrix on a %dx%dx%d grid (%d simulated ranks), InverseDepth=%d\n",
			*m, *n, spec.C, spec.D, spec.C, spec.Procs(), *inv)
		res, err = cacqr.FactorizeOnGrid(a, spec, opts)
	default:
		err = fmt.Errorf("unknown -grid mode %q (want \"auto\" or empty)", *gridMode)
	}
	if err != nil {
		log.Fatalf("factorization failed: %v", err)
	}

	orth := cacqr.OrthogonalityError(res.Q)
	resid := cacqr.ResidualNorm(a, res.Q, res.R)
	fmt.Printf("  orthogonality ‖QᵀQ−I‖_F = %.3e\n", orth)
	fmt.Printf("  residual ‖A−QR‖/‖A‖     = %.3e\n", resid)
	if orth > 1e-10 || resid > 1e-10 {
		fmt.Fprintln(os.Stderr, "warning: factorization accuracy degraded (ill-conditioned input?)")
	}

	fmt.Printf("\nmeasured per-processor cost (critical path):\n")
	fmt.Printf("  α (message latencies): %d\n", res.Stats.Msgs)
	fmt.Printf("  β (words moved):       %d\n", res.Stats.Words)
	fmt.Printf("  γ (flops):             %d\n", res.Stats.Flops)
	fmt.Printf("  virtual time:          %.3g s (generic machine)\n", res.Stats.Time)

	if *gridMode == "auto" || *streamMode {
		return // the plan table / stream report already showed the model
	}
	model, err := cacqr.ModelCACQR2(*m, *n, cacqr.GridSpec{C: *c, D: *d}, opts)
	if err == nil {
		fmt.Printf("\nanalytic model (algorithm only, excluding the final gather):\n")
		fmt.Printf("  α=%d β=%d γ=%d\n", model.Msgs, model.Words, model.TotalFlops())
		s2 := cacqr.Stampede2
		nodes := (*c) * (*d) * (*c) / s2.PPN
		if nodes > 0 {
			fmt.Printf("  on %s at %d nodes: %.1f GF/s/node\n",
				s2.Name, nodes, cacqr.PredictGFlopsPerNode(s2, model, *m, *n, nodes))
		}
	}
}

// runStream factors the matrix through the out-of-core streaming TSQR:
// panel CQR2 factorizations chained through n×n merge QRs, Q written in
// a second pass. The matrix here is already resident (the CLI built
// it), so the point of the report is the footprint the same run would
// have had against a file- or generator-backed source: one panel plus
// the R-chain instead of m·n words.
func runStream(a *cacqr.Dense, panelRows int, opts cacqr.Options) (*cacqr.Result, error) {
	opts.PanelRows = panelRows
	m, n := a.Rows, a.Cols
	fmt.Printf("streaming TSQR: %d x %d matrix, out-of-core in row panels\n", m, n)
	sink := cacqr.SinkToDense()
	res, err := cacqr.FactorizeStreaming(cacqr.SourceFromDense(a), sink, opts)
	if err != nil {
		return nil, err
	}
	st := res.Stream
	fmt.Printf("  panels:         %d × %d rows (%d shifted)\n", st.Panels, st.PanelRows, st.ShiftedPanels)
	fmt.Printf("  peak resident:  %d bytes (materialized matrix: %d)\n", st.MaxResidentBytes, int64(8*m*n))
	fmt.Printf("  panel IO:       %d B read, %d B written\n", st.ReadBytes, st.WrittenBytes)
	if model, err := cacqr.ModelStreamTSQR(m, n, st.PanelRows, true); err == nil {
		fmt.Printf("  model:          γ=%d flops, %d B of IO\n", model.TotalFlops(), model.IOBytes)
	}
	return res, nil
}

// runAuto estimates κ₂ when no -condest hint was given (the same
// measurement AutoFactorize would make internally, surfaced so the
// table explains why the CQR2 family may be absent), prints the
// planner's top-3 ranked plans, and executes the best non-baseline row
// through FactorizePlan — one enumeration, so the printed ranking and
// the executed plan can never diverge.
func runAuto(a *cacqr.Dense, procs int, opts cacqr.Options) (*cacqr.Result, error) {
	m, n := a.Rows, a.Cols
	// Condition-aware routing: use the caller's hint, or measure one —
	// the same estimate AutoFactorize would make internally, surfaced
	// here so the table explains why the CQR2 family may be absent.
	//lint:ignore floatcompare 0 is the unset sentinel for CondEst, never a computed estimate
	if opts.CondEst == 0 {
		opts.CondEst = cacqr.EstimateCondition(a)
		fmt.Printf("estimated κ₂(A) ≈ %.3g (power iteration; +Inf = rank-deficient)\n", opts.CondEst)
	} else {
		fmt.Printf("using condition hint κ₂(A) = %.3g\n", opts.CondEst)
	}
	fmt.Printf("planning: %d x %d matrix, ≤%d simulated ranks", m, n, procs)
	if opts.MemBudget > 0 {
		fmt.Printf(", ≤%d bytes/rank", opts.MemBudget)
	}
	fmt.Println()

	plans, err := cacqr.PlanGrid(m, n, procs, opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("\n%-4s %-14s %-10s %6s %12s %12s %14s %12s\n",
		"rank", "variant", "grid", "ranks", "α (msgs)", "β (words)", "γ (flops)", "pred. time")
	for i, p := range plans {
		if i == 3 {
			break
		}
		note := ""
		if p.Variant == cacqr.VariantPGEQRF {
			note = " [baseline]"
		}
		fmt.Printf("%-4d %-14s %-10s %6d %12d %12d %14d %11.3gs%s\n",
			i+1, p.Variant, p.GridString(), p.Procs, p.Cost.Msgs, p.Cost.Words, p.Cost.TotalFlops(), p.Seconds, note)
		fmt.Printf("     · %s (%d words/rank)\n", p.Rationale, p.MemWords)
	}
	// Pick the best non-baseline row, matching AutoFactorize's policy:
	// the PGEQRF reference is dispatchable (run it via FactorizePlan
	// yourself if you want the baseline's factors), but auto mode never
	// silently executes it. Say so when a baseline out-ranks the winner.
	winner := -1
	for i, p := range plans {
		if p.Executable && p.Variant != cacqr.VariantPGEQRF {
			winner = i
			break
		}
	}
	if winner < 0 {
		return nil, fmt.Errorf("no executable plan in the ranking")
	}
	if winner > 0 && plans[0].Variant == cacqr.VariantPGEQRF {
		fmt.Printf("\n(the PGEQRF baseline out-ranks the winner; auto mode executes CQR-family plans only)\n")
	}

	// Execute the table's own winner — no second enumeration, so the
	// printed ranking can never diverge from the executed plan.
	res, err := cacqr.FactorizePlan(a, plans[winner], opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("\nexecuting winner: %s on %s (%d ranks)\n",
		res.Plan.Variant, res.Plan.GridString(), res.Plan.Procs)
	return res, nil
}
