// Command cacqr2 factors a random m×n matrix with CA-CQR2 on a simulated
// c×d×c processor grid, verifies the result, and reports the measured
// per-processor α-β-γ costs alongside the analytic model's prediction.
//
//	cacqr2 -m 1024 -n 32 -c 2 -d 4 [-inv 0] [-base 0] [-cond 1e4] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
)

import cacqr "cacqr"

func main() {
	m := flag.Int("m", 1024, "matrix rows")
	n := flag.Int("n", 32, "matrix columns")
	c := flag.Int("c", 2, "grid parameter c (grid is c x d x c)")
	d := flag.Int("d", 4, "grid parameter d")
	inv := flag.Int("inv", 0, "InverseDepth (top CFR3D levels without explicit inverse)")
	base := flag.Int("base", 0, "CFR3D base-case size n_o (0 = default n/c²)")
	cond := flag.Float64("cond", 0, "condition number of the test matrix (0 = generic random)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	spec := cacqr.GridSpec{C: *c, D: *d}
	var a *cacqr.Dense
	if *cond > 1 {
		a = cacqr.RandomWithCond(*m, *n, *cond, *seed)
	} else {
		a = cacqr.RandomMatrix(*m, *n, *seed)
	}

	fmt.Printf("CA-CQR2: %d x %d matrix on a %dx%dx%d grid (%d simulated ranks), InverseDepth=%d\n",
		*m, *n, spec.C, spec.D, spec.C, spec.Procs(), *inv)

	res, err := cacqr.FactorizeOnGrid(a, spec, cacqr.Options{InverseDepth: *inv, BaseSize: *base})
	if err != nil {
		log.Fatalf("factorization failed: %v", err)
	}

	orth := cacqr.OrthogonalityError(res.Q)
	resid := cacqr.ResidualNorm(a, res.Q, res.R)
	fmt.Printf("  orthogonality ‖QᵀQ−I‖_F = %.3e\n", orth)
	fmt.Printf("  residual ‖A−QR‖/‖A‖     = %.3e\n", resid)
	if orth > 1e-10 || resid > 1e-10 {
		fmt.Fprintln(os.Stderr, "warning: factorization accuracy degraded (ill-conditioned input?)")
	}

	fmt.Printf("\nmeasured per-processor cost (critical path):\n")
	fmt.Printf("  α (message latencies): %d\n", res.Stats.Msgs)
	fmt.Printf("  β (words moved):       %d\n", res.Stats.Words)
	fmt.Printf("  γ (flops):             %d\n", res.Stats.Flops)
	fmt.Printf("  virtual time:          %.3g s (generic machine)\n", res.Stats.Time)

	model, err := cacqr.ModelCACQR2(*m, *n, spec, cacqr.Options{InverseDepth: *inv, BaseSize: *base})
	if err == nil {
		fmt.Printf("\nanalytic model (algorithm only, excluding the final gather):\n")
		fmt.Printf("  α=%d β=%d γ=%d\n", model.Msgs, model.Words, model.TotalFlops())
		s2 := cacqr.Stampede2
		nodes := spec.Procs() / s2.PPN
		if nodes > 0 {
			fmt.Printf("  on %s at %d nodes: %.1f GF/s/node\n",
				s2.Name, nodes, cacqr.PredictGFlopsPerNode(s2, model, *m, *n, nodes))
		}
	}
}
