// Command paperfigs regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	paperfigs                 # everything
//	paperfigs -exp fig7       # one experiment family
//	paperfigs -list           # list experiment ids
//
// Scaling figures come from the cost model (validated against
// instrumented runs of the real algorithms — see internal/costmodel's
// tests); tables and traces execute the real distributed algorithms on
// the simulated MPI runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cacqr/internal/bench"
)

type experiment struct {
	id   string
	desc string
	run  func() (string, error)
}

var csvOut bool

func figToString(f *bench.Figure) string {
	if csvOut {
		return "# " + f.ID + " — " + f.Title + "\n" + f.RenderCSV()
	}
	return f.Render()
}

func figsToString(figs []*bench.Figure) string {
	var b strings.Builder
	for _, f := range figs {
		b.WriteString(figToString(f))
		b.WriteByte('\n')
	}
	return b.String()
}

func experiments() []experiment {
	return []experiment{
		{"table1", "Table I: asymptotic cost scaling exponents", func() (string, error) { return bench.Table1(), nil }},
		{"table2", "Table II: per-line costs of CFR3D", bench.Table2},
		{"table34", "Tables III-IV: per-line costs of 1D-CQR/CQR2", bench.Table34},
		{"table56", "Tables V-VI: per-line costs of CA-CQR/CQR2", bench.Table56},
		{"fig1a", "Figure 1(a): strong-scaling best variants, Stampede2", func() (string, error) { return figToString(bench.Fig1a()), nil }},
		{"fig1b", "Figure 1(b): weak-scaling best variants, Stampede2", func() (string, error) { return figToString(bench.Fig1b()), nil }},
		{"fig2", "Figure 2: 1D-CQR algorithm steps (real run)", bench.Fig2Trace},
		{"fig3", "Figure 3: CA-CQR algorithm steps (real run)", bench.Fig3Trace},
		{"fig4", "Figure 4: weak scaling, Blue Waters", func() (string, error) { return figsToString(bench.Fig4()), nil }},
		{"fig5", "Figure 5: weak scaling, Stampede2", func() (string, error) { return figsToString(bench.Fig5()), nil }},
		{"fig6", "Figure 6: strong scaling, Blue Waters", func() (string, error) { return figsToString(bench.Fig6()), nil }},
		{"fig7", "Figure 7: strong scaling, Stampede2", func() (string, error) { return figsToString(bench.Fig7()), nil }},
		{"accuracy", "Extension: orthogonality vs condition number", func() (string, error) { return bench.Accuracy(), nil }},
		{"tsqr", "Extension: 1D-CQR2 vs binary-tree TSQR", func() (string, error) { return figToString(bench.ExtTSQR()), nil }},
		{"panel", "Extension: panel-wise CA-CQR2 (paper §V proposal)", func() (string, error) { return figToString(bench.ExtPanel()), nil }},
		{"memory", "Extension: memory footprint vs replication c", func() (string, error) { return figToString(bench.ExtMemory()), nil }},
		{"trend", "Extension: speedup vs flops-to-bandwidth ratio", func() (string, error) { return figToString(bench.ExtTrend()), nil }},
		{"ministrong", "Extension: real-execution strong scaling at laptop scale", func() (string, error) {
			f, err := bench.MiniStrong()
			if err != nil {
				return "", err
			}
			return figToString(f), nil
		}},
	}
}

func main() {
	expFlag := flag.String("exp", "all", "experiment id to run (see -list)")
	listFlag := flag.Bool("list", false, "list experiment ids and exit")
	flag.BoolVar(&csvOut, "csv", false, "emit figures as CSV instead of aligned text")
	flag.Parse()

	exps := experiments()
	if *listFlag {
		for _, e := range exps {
			fmt.Printf("%-9s %s\n", e.id, e.desc)
		}
		return
	}
	ran := false
	for _, e := range exps {
		if *expFlag != "all" && e.id != *expFlag {
			continue
		}
		ran = true
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "paperfigs: unknown experiment %q (use -list)\n", *expFlag)
		os.Exit(1)
	}
}
