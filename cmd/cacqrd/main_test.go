package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	cacqr "cacqr"
)

func newTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := cacqr.NewServer(cacqr.ServerOptions{Procs: 8, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(buildMux(srv, nil, 1<<24, true))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// /stats must carry the admission, fusing, and latency fields — with
// "latencies" an empty JSON object (not null) on a fresh daemon, and a
// per-key {"count","p50","p95","p99"} summary once traffic has flowed.
func TestStatsJSONShape(t *testing.T) {
	ts := newTestDaemon(t)

	st := getJSON(t, ts.URL+"/stats")
	for _, field := range []string{
		"requests", "hits", "misses", "evictions", "entries", "planned",
		"batched", "in_flight_ranks", "rank_budget", "hit_rate",
		"pending", "max_pending", "overloaded", "fused_batches",
		"fused_requests", "latencies",
	} {
		if _, ok := st[field]; !ok {
			t.Fatalf("/stats missing %q: %v", field, st)
		}
	}
	lat, ok := st["latencies"].(map[string]any)
	if !ok {
		t.Fatalf(`fresh "latencies" = %v (%T), want empty object`, st["latencies"], st["latencies"])
	}
	if len(lat) != 0 {
		t.Fatalf("fresh daemon already has latency keys: %v", lat)
	}

	// Drive one factorization, then the key's summary must appear.
	body, _ := json.Marshal(map[string]any{
		"m": 256, "n": 16, "procs": 8, "condest": 10,
		"gen": map[string]any{"seed": 7},
	})
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factorize status %d", resp.StatusCode)
	}

	st = getJSON(t, ts.URL+"/stats")
	lat, _ = st["latencies"].(map[string]any)
	if len(lat) != 1 {
		t.Fatalf("after one request, latencies has %d keys: %v", len(lat), lat)
	}
	for _, summary := range lat {
		m, ok := summary.(map[string]any)
		if !ok {
			t.Fatalf("latency summary = %v (%T)", summary, summary)
		}
		for _, q := range []string{"count", "p50", "p95", "p99"} {
			if _, ok := m[q]; !ok {
				t.Fatalf("latency summary missing %q: %v", q, m)
			}
		}
		if m["count"].(float64) != 1 {
			t.Fatalf("count = %v, want 1", m["count"])
		}
		if m["p50"].(float64) <= 0 || m["p50"].(float64) != m["p99"].(float64) {
			t.Fatalf("single-sample quantiles inconsistent: %v", m)
		}
	}
	if st["max_pending"].(float64) <= 0 {
		t.Fatalf("max_pending = %v, want the resolved default bound", st["max_pending"])
	}
}

// An overloaded daemon sheds load with 503, not a hung connection.
func TestOverloadedMapsTo503(t *testing.T) {
	// MaxPending 1 plus a long fuse window: one in-process Submit opens a
	// fuse window and holds the only pending slot until Close drains it —
	// a deterministic way to saturate the daemon from a test.
	srv, err := cacqr.NewServer(cacqr.ServerOptions{
		Procs: 8, BatchWindow: -1, MaxPending: 1, FuseWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(buildMux(srv, nil, 1<<24, true))
	t.Cleanup(ts.Close)

	done := make(chan error, 1)
	go func() {
		_, err := srv.Submit(cacqr.SubmitRequest{A: cacqr.RandomMatrix(64, 4, 1)})
		done <- err
	}()
	deadline := time.After(10 * time.Second)
	for srv.Stats().Pending == 0 {
		select {
		case <-deadline:
			t.Fatal("holding request never admitted")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	body, _ := json.Marshal(map[string]any{
		"m": 64, "n": 4, "gen": map[string]any{"seed": 2},
	})
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated daemon returned %d, want 503", resp.StatusCode)
	}

	srv.Close() // drains the held fuse window
	if err := <-done; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
}

func newTracedDaemon(t *testing.T) (*httptest.Server, *cacqr.Tracer) {
	t.Helper()
	tracer := cacqr.NewTracer(cacqr.TracerOptions{})
	srv, err := cacqr.NewServer(cacqr.ServerOptions{
		Procs: 8, BatchWindow: -1,
		Options: cacqr.Options{Tracer: tracer},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	registerServeMetrics(tracer.Metrics(), srv)
	ts := httptest.NewServer(buildMux(srv, tracer, 1<<24, true))
	t.Cleanup(ts.Close)
	return ts, tracer
}

func postFactorize(t *testing.T, ts *httptest.Server, body map[string]any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// One traced request end to end through the daemon: the response names
// its trace, /v1/trace/{id} returns the span tree, and /metrics carries
// the aggregated series in Prometheus text format.
func TestTraceAndMetricsEndpoints(t *testing.T) {
	ts, _ := newTracedDaemon(t)

	resp, out := postFactorize(t, ts, map[string]any{
		"m": 512, "n": 32, "procs": 8, "condest": 10,
		"gen": map[string]any{"seed": 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factorize status %d: %v", resp.StatusCode, out)
	}
	id, _ := out["trace_id"].(string)
	if id == "" {
		t.Fatalf("traced daemon response has no trace_id: %v", out)
	}

	// The span tree must be retrievable by that id.
	trace := getJSON(t, ts.URL+"/v1/trace/"+id)
	if trace["id"] != id {
		t.Fatalf("trace id = %v, want %s", trace["id"], id)
	}
	root, ok := trace["root"].(map[string]any)
	if !ok || root["name"] != "factorize" {
		t.Fatalf("trace root = %v", trace["root"])
	}
	kids, _ := root["children"].([]any)
	if len(kids) == 0 {
		t.Fatal("trace root has no stage children")
	}

	// An unknown id is a JSON 404, not a panic or empty 200.
	r404, err := http.Get(ts.URL + "/v1/trace/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id returned %d, want 404", r404.StatusCode)
	}

	// /metrics: aggregated tracer series plus the serve gauges.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE cacqr_stage_seconds summary",
		`cacqr_stage_seconds{stage="execute"`,
		"cacqr_requests_total{",
		`outcome="ok"`,
		"cacqr_request_trace_seconds_count 1",
		"cacqr_serve_requests_total 1",
		"cacqr_plan_cache_misses_total 1",
		"# TYPE cacqr_serve_pending gauge",
		"cacqr_plan_cache_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// The daemon mints a request id when the client sends none and echoes
// the client's own when it does.
func TestRequestIDHeader(t *testing.T) {
	ts, _ := newTracedDaemon(t)

	resp, _ := postFactorize(t, ts, map[string]any{
		"m": 64, "n": 4, "gen": map[string]any{"seed": 1},
	})
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Fatal("no X-Request-Id on response")
	}

	b, _ := json.Marshal(map[string]any{"m": 64, "n": 4, "gen": map[string]any{"seed": 1}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/factorize", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "caller-abc-123")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "caller-abc-123" {
		t.Fatalf("X-Request-Id = %q, want the caller's id echoed", got)
	}
}

// /stats must fold in the new accounting fields and the metrics
// snapshot when tracing is on.
func TestStatsCarriesMetricsSnapshot(t *testing.T) {
	ts, _ := newTracedDaemon(t)
	postFactorize(t, ts, map[string]any{
		"m": 256, "n": 16, "condest": 10, "gen": map[string]any{"seed": 9},
	})

	st := getJSON(t, ts.URL+"/stats")
	for _, field := range []string{"lookups", "leads", "fuse_occupancy", "metrics"} {
		if _, ok := st[field]; !ok {
			t.Fatalf("/stats missing %q: %v", field, st)
		}
	}
	if st["lookups"].(float64) != st["hits"].(float64)+st["misses"].(float64) {
		t.Fatalf("stats invariant broken: %v", st)
	}
	metrics, ok := st["metrics"].(map[string]any)
	if !ok {
		t.Fatalf(`/stats "metrics" = %T`, st["metrics"])
	}
	found := false
	for k := range metrics {
		if strings.HasPrefix(k, "cacqr_requests_total") {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics snapshot lacks cacqr_requests_total series: %v", metrics)
	}
}
