package main

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	cacqr "cacqr"
)

func newTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := cacqr.NewServer(cacqr.ServerOptions{Procs: 8, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(buildMux(srv, nil, 1<<24, true))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// /stats must carry the admission, fusing, and latency fields — with
// "latencies" an empty JSON object (not null) on a fresh daemon, and a
// per-key {"count","p50","p95","p99"} summary once traffic has flowed.
func TestStatsJSONShape(t *testing.T) {
	ts := newTestDaemon(t)

	st := getJSON(t, ts.URL+"/stats")
	for _, field := range []string{
		"requests", "hits", "misses", "evictions", "entries", "planned",
		"batched", "in_flight_ranks", "rank_budget", "hit_rate",
		"pending", "max_pending", "overloaded", "fused_batches",
		"fused_requests", "latencies",
	} {
		if _, ok := st[field]; !ok {
			t.Fatalf("/stats missing %q: %v", field, st)
		}
	}
	lat, ok := st["latencies"].(map[string]any)
	if !ok {
		t.Fatalf(`fresh "latencies" = %v (%T), want empty object`, st["latencies"], st["latencies"])
	}
	if len(lat) != 0 {
		t.Fatalf("fresh daemon already has latency keys: %v", lat)
	}

	// Drive one factorization, then the key's summary must appear.
	body, _ := json.Marshal(map[string]any{
		"m": 256, "n": 16, "procs": 8, "condest": 10,
		"gen": map[string]any{"seed": 7},
	})
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factorize status %d", resp.StatusCode)
	}

	st = getJSON(t, ts.URL+"/stats")
	lat, _ = st["latencies"].(map[string]any)
	if len(lat) != 1 {
		t.Fatalf("after one request, latencies has %d keys: %v", len(lat), lat)
	}
	for _, summary := range lat {
		m, ok := summary.(map[string]any)
		if !ok {
			t.Fatalf("latency summary = %v (%T)", summary, summary)
		}
		for _, q := range []string{"count", "p50", "p95", "p99"} {
			if _, ok := m[q]; !ok {
				t.Fatalf("latency summary missing %q: %v", q, m)
			}
		}
		if m["count"].(float64) != 1 {
			t.Fatalf("count = %v, want 1", m["count"])
		}
		if m["p50"].(float64) <= 0 || m["p50"].(float64) != m["p99"].(float64) {
			t.Fatalf("single-sample quantiles inconsistent: %v", m)
		}
	}
	if st["max_pending"].(float64) <= 0 {
		t.Fatalf("max_pending = %v, want the resolved default bound", st["max_pending"])
	}
}

// An overloaded daemon sheds load with 503, not a hung connection.
func TestOverloadedMapsTo503(t *testing.T) {
	// MaxPending 1 plus a long fuse window: one in-process Submit opens a
	// fuse window and holds the only pending slot until Close drains it —
	// a deterministic way to saturate the daemon from a test.
	srv, err := cacqr.NewServer(cacqr.ServerOptions{
		Procs: 8, BatchWindow: -1, MaxPending: 1, FuseWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(buildMux(srv, nil, 1<<24, true))
	t.Cleanup(ts.Close)

	done := make(chan error, 1)
	go func() {
		_, err := srv.Submit(cacqr.SubmitRequest{A: cacqr.RandomMatrix(64, 4, 1)})
		done <- err
	}()
	deadline := time.After(10 * time.Second)
	for srv.Stats().Pending == 0 {
		select {
		case <-deadline:
			t.Fatal("holding request never admitted")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	body, _ := json.Marshal(map[string]any{
		"m": 64, "n": 4, "gen": map[string]any{"seed": 2},
	})
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated daemon returned %d, want 503", resp.StatusCode)
	}

	srv.Close() // drains the held fuse window
	if err := <-done; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
}

func newTracedDaemon(t *testing.T) (*httptest.Server, *cacqr.Tracer) {
	t.Helper()
	tracer := cacqr.NewTracer(cacqr.TracerOptions{})
	srv, err := cacqr.NewServer(cacqr.ServerOptions{
		Procs: 8, BatchWindow: -1,
		Options: cacqr.Options{Tracer: tracer},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	registerServeMetrics(tracer.Metrics(), srv)
	ts := httptest.NewServer(buildMux(srv, tracer, 1<<24, true))
	t.Cleanup(ts.Close)
	return ts, tracer
}

func postFactorize(t *testing.T, ts *httptest.Server, body map[string]any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// One traced request end to end through the daemon: the response names
// its trace, /v1/trace/{id} returns the span tree, and /metrics carries
// the aggregated series in Prometheus text format.
func TestTraceAndMetricsEndpoints(t *testing.T) {
	ts, _ := newTracedDaemon(t)

	resp, out := postFactorize(t, ts, map[string]any{
		"m": 512, "n": 32, "procs": 8, "condest": 10,
		"gen": map[string]any{"seed": 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factorize status %d: %v", resp.StatusCode, out)
	}
	id, _ := out["trace_id"].(string)
	if id == "" {
		t.Fatalf("traced daemon response has no trace_id: %v", out)
	}

	// The span tree must be retrievable by that id.
	trace := getJSON(t, ts.URL+"/v1/trace/"+id)
	if trace["id"] != id {
		t.Fatalf("trace id = %v, want %s", trace["id"], id)
	}
	root, ok := trace["root"].(map[string]any)
	if !ok || root["name"] != "factorize" {
		t.Fatalf("trace root = %v", trace["root"])
	}
	kids, _ := root["children"].([]any)
	if len(kids) == 0 {
		t.Fatal("trace root has no stage children")
	}

	// An unknown id is a JSON 404, not a panic or empty 200.
	r404, err := http.Get(ts.URL + "/v1/trace/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id returned %d, want 404", r404.StatusCode)
	}

	// /metrics: aggregated tracer series plus the serve gauges.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE cacqr_stage_seconds summary",
		`cacqr_stage_seconds{stage="execute"`,
		"cacqr_requests_total{",
		`outcome="ok"`,
		"cacqr_request_trace_seconds_count 1",
		"cacqr_serve_requests_total 1",
		"cacqr_plan_cache_misses_total 1",
		"# TYPE cacqr_serve_pending gauge",
		"cacqr_plan_cache_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// The daemon mints a request id when the client sends none and echoes
// the client's own when it does.
func TestRequestIDHeader(t *testing.T) {
	ts, _ := newTracedDaemon(t)

	resp, _ := postFactorize(t, ts, map[string]any{
		"m": 64, "n": 4, "gen": map[string]any{"seed": 1},
	})
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Fatal("no X-Request-Id on response")
	}

	b, _ := json.Marshal(map[string]any{"m": 64, "n": 4, "gen": map[string]any{"seed": 1}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/factorize", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "caller-abc-123")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "caller-abc-123" {
		t.Fatalf("X-Request-Id = %q, want the caller's id echoed", got)
	}
}

// /stats must fold in the new accounting fields and the metrics
// snapshot when tracing is on.
func TestStatsCarriesMetricsSnapshot(t *testing.T) {
	ts, _ := newTracedDaemon(t)
	postFactorize(t, ts, map[string]any{
		"m": 256, "n": 16, "condest": 10, "gen": map[string]any{"seed": 9},
	})

	st := getJSON(t, ts.URL+"/stats")
	for _, field := range []string{"lookups", "leads", "fuse_occupancy", "metrics"} {
		if _, ok := st[field]; !ok {
			t.Fatalf("/stats missing %q: %v", field, st)
		}
	}
	if st["lookups"].(float64) != st["hits"].(float64)+st["misses"].(float64) {
		t.Fatalf("stats invariant broken: %v", st)
	}
	metrics, ok := st["metrics"].(map[string]any)
	if !ok {
		t.Fatalf(`/stats "metrics" = %T`, st["metrics"])
	}
	found := false
	for k := range metrics {
		if strings.HasPrefix(k, "cacqr_requests_total") {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics snapshot lacks cacqr_requests_total series: %v", metrics)
	}
}

// The body cap must always stand: shape-derived when -max-elems bounds
// the resident set, the 1 GiB default when the daemon is "unlimited".
// Before the fix, -max-elems 0 installed no MaxBytesReader at all.
func TestBodyCapAlwaysInstalled(t *testing.T) {
	if got := bodyCap(1 << 24); got != 32*(1<<24)+1<<20 {
		t.Fatalf("bounded cap = %d", got)
	}
	if got := bodyCap(0); got != defaultBodyCap {
		t.Fatalf("unlimited daemon cap = %d, want defaultBodyCap %d", got, defaultBodyCap)
	}
}

// A body past the cap is a clean 413, not a generic 400 or a decoder
// left to allocate without bound.
func TestOversizedBodyIs413(t *testing.T) {
	srv, err := cacqr.NewServer(cacqr.ServerOptions{Procs: 4, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	const maxElems = 4 // cap = 128 B + 1 MiB
	ts := httptest.NewServer(buildMux(srv, nil, maxElems, true))
	t.Cleanup(ts.Close)

	// Leading whitespace forces the decoder to read through the whole
	// body before the value; the cap must trip first.
	big := bytes.Repeat([]byte(" "), int(bodyCap(maxElems))+4096)
	copy(big[len(big)-40:], `{"m":2,"n":2,"gen":{"seed":1}}`)
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %d, want 413", resp.StatusCode)
	}
}

// Non-finite and negative gen.cond are 400s. Before the fix they
// compared false against "> 1" and silently produced an unconditioned
// random matrix the caller never asked for.
func TestGenCondValidation(t *testing.T) {
	for _, cond := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3} {
		if _, err := buildMatrix(request{M: 64, N: 4, Gen: &genSpec{Seed: 1, Cond: cond}}, 1<<24); err == nil {
			t.Errorf("gen.cond %g accepted", cond)
		}
	}
	// 0 (omitted) and targets ≥ 1 stay valid.
	for _, cond := range []float64{0, 1, 1e6} {
		if _, err := buildMatrix(request{M: 64, N: 4, Gen: &genSpec{Seed: 1, Cond: cond}}, 1<<24); err != nil {
			t.Errorf("gen.cond %g rejected: %v", cond, err)
		}
	}

	// Over the wire: a negative cond is a 400 (NaN is not JSON).
	ts := newTestDaemon(t)
	resp, out := postFactorize(t, ts, map[string]any{
		"m": 64, "n": 4, "gen": map[string]any{"seed": 1, "cond": -5},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative cond returned %d (%v), want 400", resp.StatusCode, out)
	}
}

// An over--max-elems generator request is served out-of-core: the
// daemon streams it under a budget of maxElems elements instead of
// rejecting it, and the answer matches the in-core factorization.
func TestOverLimitGenStreams(t *testing.T) {
	srv, err := cacqr.NewServer(cacqr.ServerOptions{Procs: 4, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	const maxElems = 1 << 16
	ts := httptest.NewServer(buildMux(srv, nil, maxElems, true))
	t.Cleanup(ts.Close)

	const m, n, seed = 16384, 8, 42 // m·n = 2·maxElems
	resp, out := postFactorize(t, ts, map[string]any{
		"m": m, "n": n, "gen": map[string]any{"seed": seed}, "want_factors": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("over-limit gen returned %d: %v", resp.StatusCode, out)
	}
	if out["streamed"] != true {
		t.Fatalf("response not marked streamed: %v", out)
	}
	if v, _ := out["variant"].(string); v != string(cacqr.VariantStreamTSQR) {
		t.Fatalf("variant = %q, want stream-tsqr", v)
	}
	if p, _ := out["panels"].(float64); p < 2 {
		t.Fatalf("panels = %v, want a real panel schedule", out["panels"])
	}
	resident, _ := out["resident_bytes"].(float64)
	if resident <= 0 || int64(resident) > 8*maxElems {
		t.Fatalf("resident_bytes = %v, want within the %d B budget", resident, 8*maxElems)
	}
	if _, hasQ := out["q"]; hasQ {
		t.Fatal("streamed response returned a Q")
	}
	rVals, _ := out["r"].([]any)
	if len(rVals) != n*n {
		t.Fatalf("streamed R has %d values, want %d", len(rVals), n*n)
	}
	_, rRef, err := cacqr.CholeskyQR2(cacqr.RandomMatrix(m, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rVals {
		if d := math.Abs(v.(float64) - rRef.Data[i]); d > 1e-13*float64(m) {
			t.Fatalf("R[%d] off by %g", i, d)
		}
	}

	// Same key again: the stream plan must come from the cache.
	resp2, out2 := postFactorize(t, ts, map[string]any{
		"m": m, "n": n, "gen": map[string]any{"seed": seed},
	})
	if resp2.StatusCode != http.StatusOK || out2["plan_cache_hit"] != true {
		t.Fatalf("repeat streamed request: status %d, cache hit %v", resp2.StatusCode, out2["plan_cache_hit"])
	}
}

// The streaming route has hard edges that stay 400s: inline data past
// the bound (the body IS the matrix), solves (need a pass over Q), and
// exact-κ generation (materializes the whole matrix).
func TestOverLimitRejections(t *testing.T) {
	srv, err := cacqr.NewServer(cacqr.ServerOptions{Procs: 4, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	const maxElems = 1 << 10
	mux := buildMux(srv, nil, maxElems, true)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	post := func(path string, body map[string]any) int {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	over := map[string]any{"m": 4096, "n": 8} // 32768 > 1024
	data := make([]float64, 64)               // wrong length is fine: shape check fires first
	if code := post("/v1/factorize", merge(over, "data", data)); code != http.StatusBadRequest {
		t.Errorf("over-limit inline data: %d, want 400", code)
	}
	if code := post("/v1/solve", merge(over, "gen", map[string]any{"seed": 1}, "b", make([]float64, 4096))); code != http.StatusBadRequest {
		t.Errorf("over-limit solve: %d, want 400", code)
	}
	if code := post("/v1/factorize", merge(over, "gen", map[string]any{"seed": 1, "cond": 1e8})); code != http.StatusBadRequest {
		t.Errorf("over-limit exact-κ gen: %d, want 400", code)
	}
	if code := post("/v1/factorize", merge(over, "gen", map[string]any{"seed": 1, "cond": -2})); code != http.StatusBadRequest {
		t.Errorf("over-limit negative cond: %d, want 400", code)
	}
}

func merge(base map[string]any, kv ...any) map[string]any {
	out := map[string]any{}
	for k, v := range base {
		out[k] = v
	}
	for i := 0; i < len(kv); i += 2 {
		out[kv[i].(string)] = kv[i+1]
	}
	return out
}
