package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	cacqr "cacqr"
)

func newTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := cacqr.NewServer(cacqr.ServerOptions{Procs: 8, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(buildMux(srv, 1<<24))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// /stats must carry the admission, fusing, and latency fields — with
// "latencies" an empty JSON object (not null) on a fresh daemon, and a
// per-key {"count","p50","p95","p99"} summary once traffic has flowed.
func TestStatsJSONShape(t *testing.T) {
	ts := newTestDaemon(t)

	st := getJSON(t, ts.URL+"/stats")
	for _, field := range []string{
		"requests", "hits", "misses", "evictions", "entries", "planned",
		"batched", "in_flight_ranks", "rank_budget", "hit_rate",
		"pending", "max_pending", "overloaded", "fused_batches",
		"fused_requests", "latencies",
	} {
		if _, ok := st[field]; !ok {
			t.Fatalf("/stats missing %q: %v", field, st)
		}
	}
	lat, ok := st["latencies"].(map[string]any)
	if !ok {
		t.Fatalf(`fresh "latencies" = %v (%T), want empty object`, st["latencies"], st["latencies"])
	}
	if len(lat) != 0 {
		t.Fatalf("fresh daemon already has latency keys: %v", lat)
	}

	// Drive one factorization, then the key's summary must appear.
	body, _ := json.Marshal(map[string]any{
		"m": 256, "n": 16, "procs": 8, "condest": 10,
		"gen": map[string]any{"seed": 7},
	})
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factorize status %d", resp.StatusCode)
	}

	st = getJSON(t, ts.URL+"/stats")
	lat, _ = st["latencies"].(map[string]any)
	if len(lat) != 1 {
		t.Fatalf("after one request, latencies has %d keys: %v", len(lat), lat)
	}
	for _, summary := range lat {
		m, ok := summary.(map[string]any)
		if !ok {
			t.Fatalf("latency summary = %v (%T)", summary, summary)
		}
		for _, q := range []string{"count", "p50", "p95", "p99"} {
			if _, ok := m[q]; !ok {
				t.Fatalf("latency summary missing %q: %v", q, m)
			}
		}
		if m["count"].(float64) != 1 {
			t.Fatalf("count = %v, want 1", m["count"])
		}
		if m["p50"].(float64) <= 0 || m["p50"].(float64) != m["p99"].(float64) {
			t.Fatalf("single-sample quantiles inconsistent: %v", m)
		}
	}
	if st["max_pending"].(float64) <= 0 {
		t.Fatalf("max_pending = %v, want the resolved default bound", st["max_pending"])
	}
}

// An overloaded daemon sheds load with 503, not a hung connection.
func TestOverloadedMapsTo503(t *testing.T) {
	// MaxPending 1 plus a long fuse window: one in-process Submit opens a
	// fuse window and holds the only pending slot until Close drains it —
	// a deterministic way to saturate the daemon from a test.
	srv, err := cacqr.NewServer(cacqr.ServerOptions{
		Procs: 8, BatchWindow: -1, MaxPending: 1, FuseWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(buildMux(srv, 1<<24))
	t.Cleanup(ts.Close)

	done := make(chan error, 1)
	go func() {
		_, err := srv.Submit(cacqr.SubmitRequest{A: cacqr.RandomMatrix(64, 4, 1)})
		done <- err
	}()
	deadline := time.After(10 * time.Second)
	for srv.Stats().Pending == 0 {
		select {
		case <-deadline:
			t.Fatal("holding request never admitted")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	body, _ := json.Marshal(map[string]any{
		"m": 64, "n": 4, "gen": map[string]any{"seed": 2},
	})
	resp, err := http.Post(ts.URL+"/v1/factorize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated daemon returned %d, want 503", resp.StatusCode)
	}

	srv.Close() // drains the held fuse window
	if err := <-done; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
}
