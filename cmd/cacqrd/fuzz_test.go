package main

import (
	"bytes"
	"testing"
)

// FuzzFactorizeRequest drives the daemon's request-validation surface —
// JSON decode plus buildMatrix — with arbitrary bodies. The contract:
// malformed input errors, it never panics, and a matrix that does
// materialize honors both the declared shape and the -max-elems bound
// (one hostile body must not OOM the daemon out from under every other
// client).
func FuzzFactorizeRequest(f *testing.F) {
	seeds := []string{
		`{"m":4,"n":2,"gen":{"seed":7}}`,
		`{"m":4,"n":2,"data":[1,2,3,4,5,6,7,8]}`,
		`{"m":4,"n":2,"gen":{"seed":1,"cond":100}}`,
		`{"m":4,"n":2,"gen":{"seed":1,"cond":1e308}}`,
		`{"m":4,"n":2,"data":[1,2],"gen":{"seed":1}}`,
		`{"m":-1,"n":2,"gen":{"seed":1}}`,
		`{"m":4,"n":0}`,
		`{"m":1000000000,"n":1000000000,"gen":{"seed":1}}`,
		`{"m":4,"n":2,"b":[1,0,0,1],"data":[1,0,0,1,0,0,0,0]}`,
		`{"m":4,"n":2,"gen":{"seed":1,"cond":"NaN"}}`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	const maxElems = 1 << 12
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeRequest(bytes.NewReader(body))
		if err != nil {
			return // malformed JSON must error, never panic
		}
		a, err := buildMatrix(req, maxElems)
		if err != nil {
			return // rejected shapes/specs must error, never panic
		}
		if a.Rows != req.M || a.Cols != req.N {
			t.Fatalf("built %dx%d for a %dx%d request", a.Rows, a.Cols, req.M, req.N)
		}
		if int64(a.Rows)*int64(a.Cols) > maxElems {
			t.Fatalf("%dx%d matrix exceeds the %d-element bound", a.Rows, a.Cols, maxElems)
		}
	})
}
