// Command cacqrd is the factorization daemon: cacqr.Server behind
// JSON-over-HTTP. It accepts factorization and least-squares requests of
// arbitrary shapes, plans each with the condition-aware planner, caches
// plans per (shape, procs, machine, memory budget, κ-bucket), batches
// same-key bursts through one plan lookup, and executes under a global
// simulated-rank budget.
//
//	cacqrd [-addr :8377] [-procs 16] [-cache 128] [-rank-budget 256]
//	       [-window 2ms] [-max-pending 1024] [-fuse-window 0]
//	       [-mem 0] [-machine stampede2] [-workers 0]
//	       [-transport sim] [-tcp-workers host:port,...]
//	       [-trace-sample-rate 1] [-trace-retain 64]
//	       [-pprof-addr ""] [-quiet]
//	cacqrd worker [-listen :8378]
//
// -max-pending bounds admitted-but-unfinished requests: past it the
// daemon sheds load with HTTP 503 instead of queueing without bound.
// -max-elems bounds what one request may hold resident, not what it may
// ask for: a generator-backed factorization past the bound is served
// out-of-core through the streaming TSQR under a memory budget of
// maxElems elements (the response carries "streamed": true with panel
// accounting, returns R on want_factors, and never returns Q), while an
// inline-"data" request past it is refused — 413 when the body cap
// trips, 400 on shape. The body cap always stands, even at
// -max-elems 0.
// -fuse-window, when positive, coalesces concurrent same-key requests
// into one fused batched execution (the streaming form of SubmitBatch).
//
// -transport selects where distributed ranks run: "sim" (default) uses
// the simulated goroutine runtime with exact α-β-γ accounting;
// "tcp" runs each plan's ranks across the real OS worker processes
// named by -tcp-workers (comma-separated `cacqrd worker` listen
// addresses — the daemon itself is rank 0, and a plan on P ranks uses
// the first P−1 workers). The `worker` subcommand is that other side:
// a process that serves ranks over TCP until terminated.
//
// Observability: -trace-sample-rate N samples 1 in N requests into a
// per-request span tree (1 = every request, 0 = tracing off); sampled
// responses carry "trace_id" and the tree is retrievable at
// /v1/trace/{id} while it stays in the -trace-retain ring. /metrics
// exposes the aggregated series in Prometheus text format, and
// -pprof-addr starts a separate net/http/pprof listener. Every request
// logs one structured line to stderr (suppress with -quiet) and echoes
// an X-Request-Id header (the caller's, or a generated one).
//
// Endpoints:
//
//	POST /v1/factorize   {"m","n","data"|"gen","procs","condest","want_factors"}
//	POST /v1/solve       same, plus "b" (length m)
//	GET  /healthz        liveness probe
//	GET  /stats          plan-cache, admission, fusing, per-key latency
//	                     (p50/p95/p99), and aggregated metric counters
//	GET  /metrics        Prometheus text exposition
//	GET  /v1/trace/{id}  span tree of a recent sampled request
//
// A request supplies the matrix either inline ("data": row-major values,
// length m·n) or as a deterministic generator ("gen": {"seed","cond"}),
// which keeps load-test payloads O(1). Responses carry the executed
// plan, whether it was served from the plan cache, the condition
// estimate the routing used, measured α-β-γ costs, and — for solves —
// the solution x. examples/serving is a ready-made traffic driver.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	cacqr "cacqr"
	"cacqr/internal/hist"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		runWorker(os.Args[2:])
		return
	}
	var (
		addr       = flag.String("addr", ":8377", "listen address")
		procs      = flag.Int("procs", 16, "default per-request planning budget (simulated ranks)")
		cache      = flag.Int("cache", 0, "plan-cache entries (0 = default 128)")
		rankBudget = flag.Int("rank-budget", 0, "global simulated-rank execution budget (0 = default 256)")
		window     = flag.Duration("window", 0, "same-key batch window (0 = default 2ms)")
		maxPending = flag.Int("max-pending", 0, "pending-request bound before shedding load with 503 (0 = default 1024)")
		fuseWindow = flag.Duration("fuse-window", 0, "same-key fused-execution window (0 = per-request execution)")
		mem        = flag.Int64("mem", 0, "per-rank memory budget in bytes (0 = unlimited)")
		maxElems   = flag.Int64("max-elems", 1<<24, "largest m·n a request may hold resident: bigger \"gen\" factorizations are served out-of-core (streamed), bigger inline \"data\" requests are refused (0 = no bound, streaming never engages)")
		machine    = flag.String("machine", "stampede2", `planning machine ("stampede2" or "bluewaters")`)
		workers    = flag.Int("workers", 0, "per-rank kernel goroutines (0 = serial)")
		transport  = flag.String("transport", "sim", `rank transport: "sim" (goroutine ranks) or "tcp" (real worker processes)`)
		tcpWorkers = flag.String("tcp-workers", "", "comma-separated `cacqrd worker` addresses (tcp transport only)")
		sampleRate = flag.Int("trace-sample-rate", 1, "trace 1 in N requests (1 = every request, 0 = tracing off)")
		retain     = flag.Int("trace-retain", 0, "finished traces kept for /v1/trace/{id} (0 = default 64)")
		pprofAddr  = flag.String("pprof-addr", "", "separate net/http/pprof listen address (empty = no pprof)")
		quiet      = flag.Bool("quiet", false, "suppress per-request log lines")
	)
	flag.Parse()

	opts := cacqr.Options{MemBudget: *mem, Workers: *workers}
	var tracer *cacqr.Tracer
	if *sampleRate > 0 {
		tracer = cacqr.NewTracer(cacqr.TracerOptions{SampleEvery: *sampleRate, Retain: *retain})
		opts.Tracer = tracer
	}
	switch *transport {
	case "sim":
		if *tcpWorkers != "" {
			log.Fatalf("-tcp-workers needs -transport tcp")
		}
	case "tcp":
		addrs := strings.Split(*tcpWorkers, ",")
		var clean []string
		for _, a := range addrs {
			if a = strings.TrimSpace(a); a != "" {
				clean = append(clean, a)
			}
		}
		if len(clean) == 0 {
			log.Fatalf("-transport tcp needs -tcp-workers (comma-separated worker addresses)")
		}
		opts.Transport = cacqr.TCPTransport(clean...)
	default:
		log.Fatalf("unknown -transport %q", *transport)
	}
	switch *machine {
	case "stampede2":
		opts.PlanMachine = &cacqr.Stampede2
	case "bluewaters":
		opts.PlanMachine = &cacqr.BlueWaters
	default:
		log.Fatalf("unknown -machine %q", *machine)
	}
	srv, err := cacqr.NewServer(cacqr.ServerOptions{
		Procs:        *procs,
		CacheEntries: *cache,
		RankBudget:   *rankBudget,
		BatchWindow:  *window,
		MaxPending:   *maxPending,
		FuseWindow:   *fuseWindow,
		Options:      opts,
	})
	if err != nil {
		log.Fatalf("cacqrd: %v", err)
	}
	registerServeMetrics(tracer.Metrics(), srv)
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: buildMux(srv, tracer, *maxElems, *quiet)}
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("cacqrd: shutting down")
		// Drain in-flight HTTP responses before retiring the server —
		// a request whose factorization completes should get its reply,
		// not a connection reset.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck
		srv.Close()
		close(done)
	}()
	log.Printf("cacqrd: serving on %s (procs=%d machine=%s transport=%s)", *addr, *procs, *machine, *transport)
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("cacqrd: %v", err)
	}
	<-done
}

// runWorker is the `cacqrd worker` subcommand: one OS process serving
// factorization ranks over TCP until terminated.
func runWorker(args []string) {
	fs := flag.NewFlagSet("cacqrd worker", flag.ExitOnError)
	listen := fs.String("listen", ":8378", "rank-serving listen address")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cacqrd worker: %v", err)
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("cacqrd worker: shutting down")
		ln.Close()
	}()
	log.Printf("cacqrd worker: serving ranks on %s", ln.Addr())
	if err := cacqr.ServeWorker(ln); err != nil {
		log.Fatalf("cacqrd worker: %v", err)
	}
}

// buildMux wires the daemon's endpoints onto a fresh mux — separated
// from main so handler tests can drive it through httptest. tracer may
// be nil (tracing off): /metrics then serves an empty exposition and
// /v1/trace/{id} always 404s.
func buildMux(srv *cacqr.Server, tracer *cacqr.Tracer, maxElems int64, quiet bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsJSON(srv.Stats(), tracer))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		tracer.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/v1/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
		td, ok := tracer.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no retained trace %q (tracing off, never sampled, or evicted from the ring)", id))
			return
		}
		writeJSON(w, http.StatusOK, td)
	})
	mux.HandleFunc("/v1/factorize", handle(srv, false, maxElems, quiet))
	mux.HandleFunc("/v1/solve", handle(srv, true, maxElems, quiet))
	return mux
}

// servePprof runs the net/http/pprof handlers on their own listener —
// an explicit mux, not DefaultServeMux, so profiling exposure is a
// deliberate, separately-addressed choice.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("cacqrd: pprof on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("cacqrd: pprof listener: %v", err)
	}
}

// registerServeMetrics exposes the serve layer's live state and ledger
// through the metrics registry at scrape time — no double bookkeeping,
// and the lookup-ledger invariants (lookups = hits + misses) hold
// within one scrape because ServerStats snapshots under one lock.
func registerServeMetrics(m *cacqr.Metrics, srv *cacqr.Server) {
	gauge := func(name, help string, get func(cacqr.ServerStats) float64) {
		m.GaugeFunc(name, help, func() float64 { return get(srv.Stats()) })
	}
	counter := func(name, help string, get func(cacqr.ServerStats) float64) {
		m.CounterFunc(name, help, func() float64 { return get(srv.Stats()) })
	}
	counter("cacqr_serve_requests_total", "Request units admitted.",
		func(st cacqr.ServerStats) float64 { return float64(st.Requests) })
	counter("cacqr_plan_cache_lookups_total", "Plan-resolution attempts in request units.",
		func(st cacqr.ServerStats) float64 { return float64(st.Lookups) })
	counter("cacqr_plan_cache_hits_total", "Plan lookups served from the cache.",
		func(st cacqr.ServerStats) float64 { return float64(st.Hits) })
	counter("cacqr_plan_cache_misses_total", "Plan lookups that missed the cache.",
		func(st cacqr.ServerStats) float64 { return float64(st.Misses) })
	counter("cacqr_plan_cache_evictions_total", "Plans evicted from the LRU.",
		func(st cacqr.ServerStats) float64 { return float64(st.Evictions) })
	counter("cacqr_serve_overloaded_total", "Requests refused at admission.",
		func(st cacqr.ServerStats) float64 { return float64(st.Overloaded) })
	counter("cacqr_serve_fused_requests_total", "Request units executed inside fused batches.",
		func(st cacqr.ServerStats) float64 { return float64(st.FusedRequests) })
	gauge("cacqr_serve_pending", "Request units admitted and unfinished (queue depth).",
		func(st cacqr.ServerStats) float64 { return float64(st.Pending) })
	gauge("cacqr_serve_in_flight_ranks", "Simulated-rank tokens currently held.",
		func(st cacqr.ServerStats) float64 { return float64(st.InFlightRanks) })
	gauge("cacqr_serve_fuse_occupancy", "Payloads waiting in open fuse windows.",
		func(st cacqr.ServerStats) float64 { return float64(st.FuseOccupancy) })
	gauge("cacqr_plan_cache_entries", "Current plan-cache population.",
		func(st cacqr.ServerStats) float64 { return float64(st.Entries) })
}

// request is the wire form of one factorize/solve call.
type request struct {
	M           int       `json:"m"`
	N           int       `json:"n"`
	Data        []float64 `json:"data,omitempty"` // row-major, length m·n
	Gen         *genSpec  `json:"gen,omitempty"`
	B           []float64 `json:"b,omitempty"` // solve only
	Procs       int       `json:"procs,omitempty"`
	CondEst     float64   `json:"condest,omitempty"`
	WantFactors bool      `json:"want_factors,omitempty"`
}

// genSpec asks for the deterministic generator instead of inline data.
type genSpec struct {
	Seed int64   `json:"seed"`
	Cond float64 `json:"cond,omitempty"` // >1: prescribed κ₂
}

// response is the wire form of the outcome.
type response struct {
	Variant      string    `json:"variant"`
	Grid         string    `json:"grid"`
	Procs        int       `json:"procs"`
	PlanCacheHit bool      `json:"plan_cache_hit"`
	CondEst      float64   `json:"cond_est"`
	Msgs         int64     `json:"msgs_per_proc"`
	Words        int64     `json:"words_per_proc"`
	Flops        int64     `json:"flops_per_proc"`
	Bytes        int64     `json:"bytes_per_proc,omitempty"` // wire bytes (tcp transport only)
	SimSeconds   float64   `json:"sim_seconds"`
	WallSeconds  float64   `json:"wall_seconds"`
	TraceID      string    `json:"trace_id,omitempty"` // set when the request was sampled
	X            []float64 `json:"x,omitempty"`
	Q            []float64 `json:"q,omitempty"`
	R            []float64 `json:"r,omitempty"`
	// Out-of-core runs only: the request exceeded -max-elems and was
	// served by the streaming TSQR instead of being rejected. Q is never
	// returned for a streamed run (it is as big as the input); R is n×n
	// and small.
	Streamed      bool  `json:"streamed,omitempty"`
	Panels        int   `json:"panels,omitempty"`
	PanelRows     int   `json:"panel_rows,omitempty"`
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
}

// reqSeq numbers generated request IDs within this daemon process.
var reqSeq atomic.Int64

// requestID echoes the caller's X-Request-Id or mints one, and stamps
// it on the response so every reply — success or error — is correlatable
// with the daemon's log line for it.
func requestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = fmt.Sprintf("req-%06d", reqSeq.Add(1))
	}
	w.Header().Set("X-Request-Id", id)
	return id
}

// defaultBodyCap bounds the request body when -max-elems is 0 and no
// shape-derived limit exists. 1 GiB of JSON is far past any sane
// request; the point is that *some* cap always stands between a client
// and the decoder's allocator.
const defaultBodyCap = 1 << 30

// bodyCap is the request-body limit handle installs before decoding:
// the inline-"data" path is ~25 bytes per JSON float, so
// 32·maxElems (+ slack for "b" and the envelope) caps what one request
// can make the decoder allocate. With -max-elems 0 there is no shape
// bound, but the body is still capped at defaultBodyCap — before this
// existed an unlimited daemon would buffer a body of any size, which is
// exactly the OOM the flag was meant to guard.
func bodyCap(maxElems int64) int64 {
	if maxElems > 0 {
		return 32*maxElems + 1<<20
	}
	return defaultBodyCap
}

func handle(srv *cacqr.Server, solve bool, maxElems int64, quiet bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := requestID(w, r)
		start := time.Now()
		logLine := func(req request, res *cacqr.SubmitResult, err error) {
			if quiet {
				return
			}
			variant, kappaBucket, hit, fused, traceID := "-", "-", false, false, "-"
			if res != nil {
				variant = string(res.Plan.Variant)
				kappaBucket = fmt.Sprintf("%d", cacqr.KappaBucket(res.CondEst))
				hit, fused = res.PlanCacheHit, res.Fused
				if res.TraceID != "" {
					traceID = res.TraceID
				}
			}
			outcome := "ok"
			if err != nil {
				outcome = fmt.Sprintf("error=%q", err)
			}
			log.Printf("request id=%s shape=%dx%d variant=%s kappa_bucket=%s cache_hit=%t fused=%t trace=%s dur=%s %s",
				id, req.M, req.N, variant, kappaBucket, hit, fused, traceID,
				time.Since(start).Round(time.Microsecond), outcome)
		}
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, bodyCap(maxElems))
		req, err := decodeRequest(r.Body)
		if err != nil {
			code := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = http.StatusRequestEntityTooLarge
			}
			writeError(w, code, fmt.Errorf("bad request body: %w", err))
			logLine(req, nil, err)
			return
		}
		if maxElems > 0 && req.Gen != nil && req.Data == nil &&
			req.M >= 1 && req.N >= 1 && int64(req.M) > maxElems/int64(req.N) {
			// An over--max-elems generator request streams instead of
			// being rejected: the matrix never needs to be resident, so
			// the flag's OOM guard is honored by running out-of-core
			// under a budget of maxElems elements rather than by
			// refusing the work.
			if solve {
				err := fmt.Errorf("shape %dx%d exceeds -max-elems %d and solve cannot stream: x = R⁻¹·Qᵀb needs a pass over Q the streaming path does not keep", req.M, req.N, maxElems)
				writeError(w, http.StatusBadRequest, err)
				logLine(req, nil, err)
				return
			}
			if err := checkGenCond(req.Gen.Cond); err != nil {
				writeError(w, http.StatusBadRequest, err)
				logLine(req, nil, err)
				return
			}
			if req.Gen.Cond > 1 {
				err := fmt.Errorf("gen.cond %g needs the exact-κ generator, which materializes the whole %dx%d matrix — beyond -max-elems %d; omit cond (or set ≤ 1) for streamable generation", req.Gen.Cond, req.M, req.N, maxElems)
				writeError(w, http.StatusBadRequest, err)
				logLine(req, nil, err)
				return
			}
			src, err := cacqr.SourceFromGenerator(req.M, req.N, req.Gen.Seed)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				logLine(req, nil, err)
				return
			}
			res, err := srv.SubmitStreamCtx(r.Context(), cacqr.StreamRequest{
				Source:    src,
				CondEst:   req.CondEst,
				MemBudget: 8 * maxElems,
			})
			logLine(req, res, err)
			if err != nil {
				code := http.StatusUnprocessableEntity
				if errors.Is(err, cacqr.ErrOverloaded) {
					code = http.StatusServiceUnavailable
				}
				writeError(w, code, err)
				return
			}
			out := response{
				Variant:      string(res.Plan.Variant),
				Grid:         res.Plan.GridString(),
				Procs:        res.Plan.Procs,
				PlanCacheHit: res.PlanCacheHit,
				CondEst:      res.CondEst,
				Flops:        res.Stats.Flops,
				Bytes:        res.Stats.Bytes,
				SimSeconds:   res.Stats.Time,
				WallSeconds:  time.Since(start).Seconds(),
				TraceID:      res.TraceID,
				Streamed:     true,
			}
			if res.Stream != nil {
				out.Panels = res.Stream.Panels
				out.PanelRows = res.Stream.PanelRows
				out.ResidentBytes = res.Stream.MaxResidentBytes
			}
			if req.WantFactors {
				// R is n×n and small; Q is as big as the input and is
				// deliberately never returned for a streamed run.
				out.R = res.R.Data
			}
			writeJSON(w, http.StatusOK, out)
			return
		}
		a, err := buildMatrix(req, maxElems)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			logLine(req, nil, err)
			return
		}
		sub := cacqr.SubmitRequest{A: a, Procs: req.Procs, CondEst: req.CondEst}
		if solve {
			if req.B == nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("solve needs \"b\" (length m)"))
				logLine(req, nil, fmt.Errorf("missing b"))
				return
			}
			sub.B = req.B
		}
		res, err := srv.SubmitCtx(r.Context(), sub)
		logLine(req, res, err)
		if err != nil {
			code := http.StatusUnprocessableEntity
			if errors.Is(err, cacqr.ErrOverloaded) {
				// Shed load visibly: clients should back off, not queue.
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, err)
			return
		}
		out := response{
			Variant:      string(res.Plan.Variant),
			Grid:         res.Plan.GridString(),
			Procs:        res.Plan.Procs,
			PlanCacheHit: res.PlanCacheHit,
			CondEst:      res.CondEst,
			Msgs:         res.Stats.Msgs,
			Words:        res.Stats.Words,
			Flops:        res.Stats.Flops,
			Bytes:        res.Stats.Bytes,
			SimSeconds:   res.Stats.Time,
			WallSeconds:  time.Since(start).Seconds(),
			TraceID:      res.TraceID,
			X:            res.X,
		}
		if req.WantFactors {
			out.Q, out.R = res.Q.Data, res.R.Data
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// decodeRequest parses one factorize/solve wire body. The caller caps
// the reader (http.MaxBytesReader); everything beyond JSON
// well-formedness — shape bounds, data/gen exclusivity, generator
// κ targets — is buildMatrix's job, so the two compose into the full
// request-validation surface (and fuzz as one unit).
func decodeRequest(body io.Reader) (request, error) {
	var req request
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return req, err
	}
	return req, nil
}

// buildMatrix materializes the request's matrix from inline data or the
// deterministic generator, refusing shapes beyond the -max-elems bound
// before anything is allocated — one oversized "gen" request must not
// OOM the daemon out from under every other client.
func buildMatrix(req request, maxElems int64) (*cacqr.Dense, error) {
	if req.M < 1 || req.N < 1 {
		return nil, fmt.Errorf("invalid shape %dx%d", req.M, req.N)
	}
	if maxElems > 0 && int64(req.M) > maxElems/int64(req.N) {
		return nil, fmt.Errorf("shape %dx%d exceeds the daemon's -max-elems bound of %d", req.M, req.N, maxElems)
	}
	switch {
	case req.Data != nil && req.Gen != nil:
		return nil, fmt.Errorf(`give "data" or "gen", not both`)
	case req.Data != nil:
		return cacqr.FromData(req.M, req.N, req.Data)
	case req.Gen != nil:
		if err := checkGenCond(req.Gen.Cond); err != nil {
			return nil, err
		}
		if req.Gen.Cond > 1 {
			return cacqr.RandomWithCond(req.M, req.N, req.Gen.Cond, req.Gen.Seed), nil
		}
		return cacqr.RandomMatrix(req.M, req.N, req.Gen.Seed), nil
	default:
		return nil, fmt.Errorf(`matrix missing: give "data" (row-major, length m·n) or "gen" {"seed","cond"}`)
	}
}

// checkGenCond rejects generator condition targets the dispatch above
// would otherwise misread: NaN, ±Inf, and negative values are not a
// κ₂ — before this check they silently compared false against "> 1"
// and fell through to the unconditioned generator, returning a matrix
// the caller did not ask for. Zero (omitted) and values in [0, 1] mean
// "no target": κ₂ ≥ 1 always, so plain RandomMatrix serves those.
func checkGenCond(cond float64) error {
	if math.IsNaN(cond) || math.IsInf(cond, 0) || cond < 0 {
		return fmt.Errorf("invalid gen.cond %g (want a finite target κ ≥ 1, or 0/omitted for an unconditioned random matrix)", cond)
	}
	return nil
}

// statsJSON flattens ServerStats for the wire, adding the derived rate.
// "latencies" maps plan-key strings to {"count","sum","p50","p95","p99"}
// (seconds, nearest-rank over the retained window); it is an empty
// object until the first request completes. When tracing is on,
// "metrics" folds in the registry's aggregated series.
func statsJSON(st cacqr.ServerStats, tracer *cacqr.Tracer) map[string]any {
	if st.Latencies == nil {
		st.Latencies = map[string]hist.Summary{}
	}
	out := map[string]any{
		"requests":        st.Requests,
		"lookups":         st.Lookups,
		"hits":            st.Hits,
		"misses":          st.Misses,
		"evictions":       st.Evictions,
		"entries":         st.Entries,
		"planned":         st.Planned,
		"batched":         st.Batched,
		"leads":           st.Leads,
		"in_flight_ranks": st.InFlightRanks,
		"rank_budget":     st.RankBudget,
		"hit_rate":        st.HitRate(),
		"pending":         st.Pending,
		"max_pending":     st.MaxPending,
		"overloaded":      st.Overloaded,
		"fused_batches":   st.FusedBatches,
		"fused_requests":  st.FusedRequests,
		"fuse_occupancy":  st.FuseOccupancy,
		"latencies":       st.Latencies,
	}
	if m := tracer.Metrics().Snapshot(); m != nil {
		out["metrics"] = m
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
