// Command bench runs the reproducible performance suite (internal/perf)
// and writes BENCH_results.json: ns/op, GFLOP/s, and per-processor
// communication for a fixed set of paper-shape factorizations and the
// level-3 kernels under them.
//
// CI runs it as
//
//	go run ./cmd/bench -quick -o BENCH_results.json -baseline BENCH_baseline.json
//
// which fails (exit 1) when any case regresses more than -tolerance
// versus the checked-in baseline. Regenerate the baseline on a quiet
// machine with
//
//	go run ./cmd/bench -quick -o BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cacqr/internal/perf"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "run the smaller CI-sized suite")
		out       = flag.String("o", "BENCH_results.json", "path for the JSON report")
		baseline  = flag.String("baseline", "", "baseline report to gate against (empty = no gating)")
		tolerance = flag.Float64("tolerance", 1.25, "allowed ns/op ratio vs baseline before failing")
		workers   = flag.Int("workers", 0, "Options.Workers for the factorization cases (0 = per-rank serial)")
	)
	flag.Parse()
	if err := run(*quick, *out, *baseline, *tolerance, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(quick bool, out, baseline string, tolerance float64, workers int) error {
	rep, err := perf.RunSuite(quick, workers, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases, quick=%v)\n", out, len(rep.Results), quick)

	if baseline == "" {
		return nil
	}
	base, err := readReport(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	// ns/op gates only mean something on comparable hardware; flag
	// cross-machine comparisons loudly so a red (or green) gate on a
	// different host is read with the right suspicion.
	if base.NumCPU != rep.NumCPU || base.GOARCH != rep.GOARCH {
		fmt.Printf("warning: baseline host differs (baseline %s/%d cpu vs current %s/%d cpu); ns/op comparison is approximate — consider regenerating %s on this machine\n",
			base.GOARCH, base.NumCPU, rep.GOARCH, rep.NumCPU, baseline)
	}
	regs, missing := perf.Compare(base, rep, tolerance)
	for _, name := range missing {
		fmt.Printf("warning: baseline case %q not in current suite\n", name)
	}
	if len(missing) == len(base.Results) && len(base.Results) > 0 {
		return fmt.Errorf("no baseline case matches the current suite (baseline quick=%v, run quick=%v?)", base.Quick, rep.Quick)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Printf("REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d case(s) regressed more than %.0f%% vs %s", len(regs), (tolerance-1)*100, baseline)
	}
	fmt.Printf("no regressions vs %s (tolerance %.2fx)\n", baseline, tolerance)
	return nil
}

func readReport(path string) (*perf.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep perf.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Schema != perf.Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, perf.Schema)
	}
	return &rep, nil
}
