package bench

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"testing"

	"cacqr/internal/costmodel"
)

func TestWeakProgressionReproducesPaperAxis(t *testing.T) {
	// §IV-C: progression 1 used 3x as often as progression 2 yields the
	// shared x-axis (2,1),(1,2),(2,2),(4,2),(8,2),(4,4),(8,4).
	steps := WeakProgression(7)
	want := []struct{ a, b int }{{2, 1}, {1, 2}, {2, 2}, {4, 2}, {8, 2}, {4, 4}, {8, 4}}
	if len(steps) != len(want) {
		t.Fatalf("got %d steps", len(steps))
	}
	for i, w := range want {
		if steps[i].A != w.a || steps[i].B != w.b {
			t.Fatalf("step %d: got (%d,%d), want (%d,%d)", i, steps[i].A, steps[i].B, w.a, w.b)
		}
	}
	// Rule accounting: 2 of the first 8 applications are rule 2.
	long := WeakProgression(8)
	rule2 := 0
	for _, s := range long {
		if s.Rule == 2 {
			rule2++
		}
	}
	if rule2 != 2 {
		t.Fatalf("rule 2 used %d of 8 times, want 2 (1:3 ratio)", rule2)
	}
}

func TestWeakProgressionKeepsWorkPerProcessorConstant(t *testing.T) {
	// mn²/P must be invariant along the progression (the weak-scaling
	// contract): m ~ a, n ~ b, P ~ a·b².
	const bm, bn, nf = 131072, 8192, 8
	steps := WeakProgression(7)
	ref := float64(bm) * float64(bn) * float64(bn) / float64(nf)
	for _, st := range steps {
		m := float64(bm * st.A)
		n := float64(bn * st.B)
		p := float64(nf * st.A * st.B * st.B)
		if got := m * n * n / p; got != ref {
			t.Fatalf("(%d,%d): mn²/P = %g, want %g", st.A, st.B, got, ref)
		}
	}
}

func TestMaterializeWeak(t *testing.T) {
	ws, err := MaterializeWeak(costmodel.Stampede2, 131072, 8192, 8, 8, WeakProgression(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 7 {
		t.Fatalf("got %d workloads", len(ws))
	}
	for _, w := range ws {
		if w.C*w.C*w.D != w.Procs {
			t.Fatalf("grid %dx%dx%d does not fill P=%d", w.C, w.D, w.C, w.Procs)
		}
		if w.GFlops <= 0 {
			t.Fatalf("workload (%d,%d) has no performance estimate", w.Step.A, w.Step.B)
		}
		// Grid tracks the matrix: c = c0·b.
		if w.C != 8*w.Step.B {
			t.Fatalf("c=%d should equal 8·b=%d", w.C, 8*w.Step.B)
		}
	}
	// Weak scaling: performance per node stays within a 2x band across
	// the progression (the paper's curves are near-flat).
	lo, hi := ws[0].GFlops, ws[0].GFlops
	for _, w := range ws {
		if w.GFlops < lo {
			lo = w.GFlops
		}
		if w.GFlops > hi {
			hi = w.GFlops
		}
	}
	if hi/lo > 2 {
		t.Fatalf("weak scaling not flat: [%.1f, %.1f]", lo, hi)
	}
}

func TestExtPanelFigure(t *testing.T) {
	f := ExtPanel()
	if len(f.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(f.Series))
	}
	over := f.Series[0]
	last := len(f.Ticks) - 1
	// Whole-matrix CQR2 overhead on a square matrix is large (~5-6x);
	// narrow panels must approach Householder's count within ~2x.
	if over.Y[last] < 3 {
		t.Fatalf("whole-matrix overhead %.2f implausibly low", over.Y[last])
	}
	if over.Y[0] > 2 {
		t.Fatalf("narrow-panel overhead %.2f did not drop below 2x", over.Y[0])
	}
	// Overhead must be monotone in panel width.
	for i := 1; i < len(over.Y); i++ {
		if over.Valid[i] && over.Valid[i-1] && over.Y[i] < over.Y[i-1]-1e-9 {
			t.Fatalf("overhead not monotone at tick %d", i)
		}
	}
}

func TestExtMemoryFigure(t *testing.T) {
	f := ExtMemory()
	if len(f.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(f.Series))
	}
	// The tall-skinny series grows with c (replication overhead).
	tall := f.Series[0]
	for i := 1; i < len(tall.Y); i++ {
		if tall.Y[i] <= tall.Y[i-1] {
			t.Fatalf("tall-skinny memory not growing with c at tick %d", i)
		}
	}
	// The square-ish series has an interior minimum (Gram term first).
	sq := f.Series[1]
	minAt := 0
	for i, v := range sq.Y {
		if v < sq.Y[minAt] {
			minAt = i
		}
	}
	if minAt == 0 {
		t.Fatal("square-ish memory should not be minimized at c=1")
	}
}

func TestMiniStrongFigure(t *testing.T) {
	f, err := MiniStrong()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(f.Series))
	}
	gamma := f.Series[1]
	// Compute time must fall monotonically with P (work is divided).
	for i := 1; i < len(gamma.Y); i++ {
		if gamma.Y[i] >= gamma.Y[i-1] {
			t.Fatalf("gamma not decreasing at tick %d: %v", i, gamma.Y)
		}
	}
	// Synchronization on c=2 grids exceeds the 1D grids' (CFR3D's
	// recursion tree costs latency).
	alpha := f.Series[2]
	if alpha.Y[3] <= alpha.Y[2] {
		t.Fatalf("c=2 grid should pay more latency than 1D: %v", alpha.Y)
	}
}

func TestExtTrendFigure(t *testing.T) {
	f := ExtTrend()
	if len(f.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(f.Series))
	}
	s2, bw := f.Series[0], f.Series[1]
	for i := range f.Ticks {
		if !s2.Valid[i] || !bw.Valid[i] {
			t.Fatalf("missing point at tick %d", i)
		}
		// The §IV architectural claim: the speedup on the
		// high-flops-to-bandwidth machine strictly exceeds the
		// low-ratio machine's, on every shape.
		if s2.Y[i] <= bw.Y[i] {
			t.Fatalf("tick %d: Stampede2 speedup %.2f not above BlueWaters %.2f", i, s2.Y[i], bw.Y[i])
		}
	}
	// And on Stampede2 CA-CQR2 wins outright at 1024 nodes.
	for i := range f.Ticks {
		if s2.Y[i] < 1.5 {
			t.Fatalf("tick %d: Stampede2 speedup %.2f below 1.5", i, s2.Y[i])
		}
	}
}

func TestExtTSQRFigure(t *testing.T) {
	f := ExtTSQR()
	if len(f.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(f.Series))
	}
	// CQR2 must beat TSQR increasingly as P grows (the log P critical
	// path), and CA-CQR2's best grid must never lose to plain 1D-CQR2.
	var cqr2, ts, ca *Series
	for i := range f.Series {
		switch f.Series[i].Label {
		case "1D-CQR2":
			cqr2 = &f.Series[i]
		case "TSQR":
			ts = &f.Series[i]
		case "CA-CQR2(best c)":
			ca = &f.Series[i]
		}
	}
	last := len(f.Ticks) - 1
	if cqr2.Y[last] <= ts.Y[last] {
		t.Fatalf("1D-CQR2 (%.1f) should beat TSQR (%.1f) at the largest scale", cqr2.Y[last], ts.Y[last])
	}
	firstRatio := cqr2.Y[0] / ts.Y[0]
	lastRatio := cqr2.Y[last] / ts.Y[last]
	if lastRatio <= firstRatio {
		t.Fatalf("CQR2 advantage should grow with P: %.2f -> %.2f", firstRatio, lastRatio)
	}
	// CA-CQR2 at c=1 is the 1D algorithm modulo the (1/3 vs 1)·n³ final
	// triangular product, so "best c" tracks 1D-CQR2 within 1%.
	for i := range ca.Y {
		if ca.Valid[i] && cqr2.Valid[i] && ca.Y[i] < 0.99*cqr2.Y[i] {
			t.Fatalf("best CA-CQR2 (%.2f) below 1D-CQR2 (%.2f) at tick %d", ca.Y[i], cqr2.Y[i], i)
		}
	}
}
