package bench

import (
	"fmt"

	"cacqr/internal/costmodel"
)

// Weak-scaling workload generation following the paper's §IV-C protocol:
// two alternating progressions that keep local matrix dimensions and the
// leading-order flop cost mn² per processor constant,
//
//	progression 1: m ← 2m, d ← 2d, pr ← 2pr  (n, c, pc fixed)
//	progression 2: m ← m/2, d ← d/2, n ← 2n, c ← 2c (pr fixed)
//
// with progression 1 employed three times as often as progression 2.
// Starting from (a, b) = (1, 1) this produces the x-axis sequence the
// paper's weak-scaling figures share: (2,1), (1,2), (2,2), (4,2), (8,2),
// (4,4), (8,4), where m scales with a and n with b (N = nodeFactor·a·b²).

// WeakStep is one point of the weak-scaling progression: the (a, b)
// multipliers and the progression rule that produced it.
type WeakStep struct {
	A, B int
	Rule int // 1 or 2; 0 for the starting point
}

// WeakProgression generates steps of the §IV-C protocol after the
// starting point (1,1), applying rule 1 three times as often as rule 2.
// The first `count` generated steps are returned.
func WeakProgression(count int) []WeakStep {
	a, b := 1, 1
	var out []WeakStep
	for i := 0; len(out) < count; i++ {
		// Pattern per 4 steps: 1, 2, 1, 1 — rule 1 used 3x as often.
		rule := 1
		if i%4 == 1 {
			rule = 2
		}
		if rule == 1 {
			a *= 2
		} else {
			a /= 2
			if a < 1 {
				a = 1
			}
			b *= 2
		}
		out = append(out, WeakStep{A: a, B: b, Rule: rule})
	}
	return out
}

// WeakWorkload materializes a progression step into a concrete problem:
// matrix dimensions, node count, process count, and a matching CA-CQR2
// grid for a machine and a base shape (bm × bn at nodeFactor nodes per
// unit ab²).
type WeakWorkload struct {
	Step   WeakStep
	M, N   int
	Nodes  int
	Procs  int
	C, D   int // matched grid: d/c held constant along rule 1
	GFlops float64
}

// MaterializeWeak builds the workload sequence for a machine, base shape
// and initial grid c0 (at a=b=1). It mirrors the paper's rule: rule 1
// doubles d, rule 2 doubles c (halving d), so the grid tracks the matrix.
func MaterializeWeak(mach costmodel.Machine, bm, bn, nodeFactor, c0 int, steps []WeakStep) ([]WeakWorkload, error) {
	var out []WeakWorkload
	for _, st := range steps {
		w := WeakWorkload{Step: st}
		w.M, w.N = bm*st.A, bn*st.B
		w.Nodes = nodeFactor * st.A * st.B * st.B
		w.Procs = mach.PPN * w.Nodes
		w.C = c0 * st.B
		if w.C*w.C > w.Procs {
			return nil, fmt.Errorf("bench: grid c=%d too large for P=%d", w.C, w.Procs)
		}
		w.D = w.Procs / (w.C * w.C)
		if w.C*w.C*w.D != w.Procs || w.D%w.C != 0 && w.D >= w.C {
			// Non-factoring grids are skipped by the caller.
		}
		cost, err := costmodel.CACQR2(w.M, w.N, costmodel.CACQRParams{C: w.C, D: w.D})
		if err != nil {
			return nil, err
		}
		w.GFlops = mach.GFlopsPerNode(cost, w.M, w.N, w.Nodes)
		out = append(out, w)
	}
	return out, nil
}
