package bench

import (
	"fmt"

	"cacqr/internal/costmodel"
)

// ExtTrend quantifies the paper's §IV architectural argument directly:
// the same workloads evaluated on both machine models, reporting the
// best-variant CA-CQR2/ScaLAPACK speedup side by side. Stampede2's
// flops-to-injection-bandwidth ratio is ~8× Blue Waters', and the
// speedup is correspondingly larger there — "CA-CQR2 is better-fit for
// massively-parallel execution on newer architectures as it reduces
// communication at the cost of computation".
func ExtTrend() *Figure {
	const nodes = 1024
	shapes := []struct{ m, n int }{
		{1 << 19, 1 << 13}, {1 << 21, 1 << 12}, {1 << 23, 1 << 11}, {1 << 25, 1 << 10},
	}
	f := &Figure{
		ID:     "ExtTrend",
		Title:  fmt.Sprintf("Best-variant CA-CQR2/ScaLAPACK speedup at %d nodes, by machine", nodes),
		XLabel: "matrix (m x n)",
		YLabel: "speedup (x)",
	}
	s2 := Series{Label: fmt.Sprintf("Stampede2 (%.0f flops/byte)",
		costmodel.Stampede2.PeakNodeFlops/costmodel.Stampede2.InjBandwidth)}
	bw := Series{Label: fmt.Sprintf("BlueWaters (%.0f flops/byte)",
		costmodel.BlueWaters.PeakNodeFlops/costmodel.BlueWaters.InjBandwidth)}
	for _, sh := range shapes {
		f.Ticks = append(f.Ticks, fmt.Sprintf("2^%d x 2^%d", log2(sh.m), log2(sh.n)))
		for _, pair := range []struct {
			mach *costmodel.Machine
			s    *Series
		}{{&costmodel.Stampede2, &s2}, {&costmodel.BlueWaters, &bw}} {
			procs := pair.mach.PPN * nodes
			cq, _ := bestCACQR2(*pair.mach, sh.m, sh.n, procs, nodes)
			sc, _ := bestScaLAPACK(*pair.mach, sh.m, sh.n, procs, nodes)
			if cq > 0 && sc > 0 {
				pair.s.AddPoint(cq/sc, true)
			} else {
				pair.s.AddPoint(0, false)
			}
		}
	}
	f.Series = append(f.Series, s2, bw)
	f.Notes = append(f.Notes,
		"the speedup is consistently larger on the machine with the higher flops-to-bandwidth ratio,",
		"the §IV trend that makes communication avoidance increasingly valuable.")
	return f
}
