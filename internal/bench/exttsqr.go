package bench

import (
	"fmt"

	"cacqr/internal/costmodel"
)

// ExtTSQR is an extension figure beyond the paper: 1D-CQR2 against the
// communication-optimal binary-tree TSQR (the paper's references [4],[5])
// in the tall-skinny weak-scaling regime, on the Stampede2 model. It
// quantifies the tradeoff the paper's introduction cites: CholeskyQR2
// needs a logarithmic factor less synchronization, while TSQR is
// unconditionally stable.
func ExtTSQR() *Figure {
	mach := costmodel.Stampede2
	const mloc, n = 1 << 15, 512
	f := &Figure{
		ID:     "ExtTSQR",
		Title:  fmt.Sprintf("Tall-skinny weak scaling: 1D-CQR2 vs TSQR, %d local rows x %d cols (%s)", mloc, n, mach.Name),
		XLabel: "Nodes(N)",
		YLabel: "Gigaflops/s/Node",
	}
	cqr2 := Series{Label: "1D-CQR2"}
	ts := Series{Label: "TSQR"}
	caBest := Series{Label: "CA-CQR2(best c)"}
	var nodes []int
	for nd := 2; nd <= 512; nd *= 4 {
		nodes = append(nodes, nd)
		f.Ticks = append(f.Ticks, fmt.Sprintf("%d", nd))
	}
	for _, nd := range nodes {
		p := mach.PPN * nd
		m := mloc * p

		if c, err := costmodel.OneDCQR2(m, n, p); err == nil {
			cqr2.AddPoint(mach.GFlopsPerNode(c, m, n, nd), true)
		} else {
			cqr2.AddPoint(0, false)
		}
		if c, err := costmodel.TSQR(m, n, p); err == nil {
			ts.AddPoint(mach.GFlopsPerNode(c, m, n, nd), true)
		} else {
			ts.AddPoint(0, false)
		}
		best := 0.0
		for c := 1; c*c*c <= p; c *= 2 {
			d := p / (c * c)
			if d < c || d%c != 0 || m%d != 0 || n%c != 0 {
				continue
			}
			if cost, err := costmodel.CACQR2(m, n, costmodel.CACQRParams{C: c, D: d}); err == nil {
				if gf := mach.GFlopsPerNode(cost, m, n, nd); gf > best {
					best = gf
				}
			}
		}
		caBest.AddPoint(best, best > 0)
	}
	f.Series = append(f.Series, cqr2, ts, caBest)

	last := len(nodes) - 1
	if ts.Y[last] > 0 {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"at N=%d: 1D-CQR2/TSQR = %.2fx (TSQR pays a log P chain of small factorizations; CQR2 pays redundant n^3 work once)",
			nodes[last], cqr2.Y[last]/ts.Y[last]))
	}
	return f
}
