package bench

import (
	"fmt"
	"time"

	"cacqr/internal/core"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// MiniStrong is a strong-scaling study executed for real (no model): the
// same matrix factored by CA-CQR2 on growing simulated grids, reporting
// the measured critical-path virtual time and its α/β/γ decomposition.
// At this laptop scale the paper's qualitative story is already visible:
// compute time falls with P while the synchronization term grows, so
// speedup saturates — the small-scale shadow of Figures 6–7.
func MiniStrong() (*Figure, error) {
	const m, n = 2048, 32
	// Machine with a visible but not overwhelming latency term.
	cost := simmpi.CostParams{Alpha: 5e-7, Beta: 2e-9, Gamma: 5e-11}
	grids := []struct{ c, d int }{{1, 1}, {1, 2}, {1, 4}, {2, 2}, {2, 4}, {2, 8}}

	f := &Figure{
		ID:     "MiniStrong",
		Title:  fmt.Sprintf("Real-execution strong scaling of CA-CQR2, %dx%d matrix", m, n),
		XLabel: "grid (c,d) [P]",
		YLabel: "microseconds (virtual)",
	}
	total := Series{Label: "time(us)"}
	comp := Series{Label: "gamma(us)"}
	sync := Series{Label: "alpha(us)"}

	a := lin.RandomMatrix(m, n, 77)
	for _, gr := range grids {
		p := gr.c * gr.c * gr.d
		f.Ticks = append(f.Ticks, fmt.Sprintf("(%d,%d) [%d]", gr.c, gr.d, p))
		st, err := simmpi.RunWithOptions(p, simmpi.Options{Cost: cost, Timeout: 120 * time.Second}, func(pr *simmpi.Proc) error {
			g, err := grid.New(pr.World(), gr.c, gr.d)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, gr.d, gr.c, g.Y, g.X)
			if err != nil {
				return err
			}
			_, _, err = core.CACQR2(g, ad.Local, m, n, core.Params{})
			return err
		})
		if err != nil {
			return nil, err
		}
		total.AddPoint(st.Time*1e6, true)
		comp.AddPoint(float64(st.MaxFlops)*cost.Gamma*1e6, true)
		sync.AddPoint(float64(st.MaxMsgs)*cost.Alpha*1e6, true)
	}
	f.Series = append(f.Series, total, comp, sync)
	f.Notes = append(f.Notes,
		"gamma falls with P while alpha grows with grid complexity: the latency/compute",
		"crossover that drives the paper's choice of c at every node count.")
	return f, nil
}
