// Package bench regenerates every table and figure of the paper's
// evaluation: the asymptotic cost table (Table I), the per-line cost
// tables (Tables II–VI), the algorithm-illustration traces (Figures 2–3),
// and the strong/weak scaling studies on the Stampede2 and Blue Waters
// machine models (Figures 1, 4, 5, 6, 7), plus the accuracy experiment
// supporting the paper's §I stability discussion.
//
// Scaling figures are produced by the validated cost model evaluated at
// the paper's scale; traces and table validations execute the real
// distributed algorithms on the simmpi runtime.
package bench
