package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"cacqr/internal/cfr3d"
	"cacqr/internal/core"
	"cacqr/internal/costmodel"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// Table generators. Table I is reproduced as numeric scaling-exponent
// fits against the paper's asymptotic formulas; Tables II–VI are
// reproduced as per-line cost decompositions for a concrete
// configuration, cross-checked against an instrumented run of the real
// algorithm (model total must equal measured counters exactly).

// slope fits the least-squares log-log slope of ys against xs.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Table1 checks the asymptotic rows of Table I by fitting scaling
// exponents of the modeled costs against P (or c).
func Table1() string {
	var b strings.Builder
	b.WriteString("## Table I — asymptotic cost scaling (model exponent fits)\n")
	b.WriteString("# algorithm        cost      formula            fitted exponent   expected\n")

	row := func(name, comp, formula string, got, want float64) {
		fmt.Fprintf(&b, "%-17s %-9s %-18s %+.3f            %+.3f\n", name, comp, formula, got, want)
	}

	// MM3D on an n³ problem over P = e³: β ~ P^{-2/3}, γ ~ P^{-1}.
	{
		n := 1 << 12
		var ps, words, flops []float64
		for e := 2; e <= 32; e *= 2 {
			c := costmodel.MM3D(int64(n/e), int64(n/e), int64(n/e), e)
			ps = append(ps, float64(e*e*e))
			words = append(words, float64(c.Words))
			flops = append(flops, float64(c.TotalFlops()))
		}
		row("MM3D", "bandwidth", "(mn+nk+mk)/P^2/3", slope(ps, words), -2.0/3)
		row("MM3D", "flops", "mnk/P", slope(ps, flops), -1.0)
	}

	// CFR3D with n_o = n/P^{2/3}: α ~ P^{2/3}·logP, β ~ n²/P^{2/3}, γ ~ n³/P.
	{
		n := 1 << 12
		var ps, msgs, words, flops []float64
		for e := 2; e <= 16; e *= 2 {
			c := costmodel.CFR3D(n, e, costmodel.CFR3DOptions{})
			ps = append(ps, float64(e*e*e))
			msgs = append(msgs, float64(c.Msgs))
			words = append(words, float64(c.Words))
			flops = append(flops, float64(c.TotalFlops()))
		}
		row("CFR3D", "latency", "P^2/3*logP", slope(ps, msgs), 2.0/3)
		row("CFR3D", "bandwidth", "n^2/P^2/3", slope(ps, words), -2.0/3)
		row("CFR3D", "flops", "n^3/P", slope(ps, flops), -1.0)
	}

	// 1D-CQR: β ~ n² independent of P; γ dominated by mn²/P + n³.
	{
		m, n := 1<<22, 1<<8
		var ps, words []float64
		for p := 2; p <= 64; p *= 2 {
			c, err := costmodel.OneDCQR(m, n, p)
			if err != nil {
				continue
			}
			ps = append(ps, float64(p))
			words = append(words, float64(c.Words))
		}
		row("1D-CQR", "bandwidth", "n^2", slope(ps, words), 0.0)
	}

	// 3D-CQR (c = d = P^{1/3}) on m = n: β ~ mn/P^{2/3}.
	{
		n := 1 << 12
		var ps, words []float64
		for c := 2; c <= 16; c *= 2 {
			cc, err := costmodel.CACQR(n, n, costmodel.CACQRParams{C: c, D: c})
			if err != nil {
				continue
			}
			ps = append(ps, float64(c*c*c))
			words = append(words, float64(cc.Words))
		}
		row("3D-CQR", "bandwidth", "mn/P^2/3", slope(ps, words), -2.0/3)
	}

	// CA-CQR with the optimal grid m/d = n/c: β ~ (mn²/P)^{2/3} — fit
	// against P with the matched grid shape.
	{
		m, n := 1<<18, 1<<10
		var ps, words []float64
		for c := 2; c <= 16; c *= 2 {
			d := c * m / n
			p := c * c * d
			cc, err := costmodel.CACQR(m, n, costmodel.CACQRParams{C: c, D: d})
			if err != nil {
				continue
			}
			ps = append(ps, float64(p))
			words = append(words, float64(cc.Words))
		}
		row("CA-CQR(m/d=n/c)", "bandwidth", "(mn^2/P)^2/3", slope(ps, words), -2.0/3)
	}

	b.WriteString("# CA-CQR2 attains the same asymptotic costs as CA-CQR (×2 + lower-order MM3D).\n")
	return b.String()
}

// renderLines prints a per-line cost decomposition sorted by line number.
func renderLines(title string, lines map[string]Cost2, measured simmpi.Counters, model costmodel.Cost) string {
	var b strings.Builder
	b.WriteString(title)
	keys := make([]string, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lineNum(keys[i]) < lineNum(keys[j]) })
	b.WriteString("# line  operation              α-units      β-words        γ-flops\n")
	for _, k := range keys {
		c := lines[k]
		parts := strings.SplitN(k, ":", 2)
		fmt.Fprintf(&b, "  %-5s %-20s %9d  %11d  %13d\n", parts[0], parts[1], c.Msgs, c.Words, c.TotalFlops())
	}
	fmt.Fprintf(&b, "# model total:    α=%d β=%d γ=%d\n", model.Msgs, model.Words, model.TotalFlops())
	fmt.Fprintf(&b, "# measured run:   α=%d β=%d γ=%d (per-rank maxima; must equal model)\n",
		measured.Msgs, measured.Words, measured.Flops)
	return b.String()
}

// Cost2 aliases the model cost for the renderer.
type Cost2 = costmodel.Cost

func lineNum(key string) int {
	var n int
	fmt.Sscanf(key, "%d:", &n)
	return n
}

// Table2 reproduces Table II: the per-line costs of CFR3D, for n=32 on a
// 2×2×2 cube, validated against an instrumented run.
func Table2() (string, error) {
	const e, n, base = 2, 32, 4
	lines := costmodel.CFR3DLines(n, e, costmodel.CFR3DOptions{BaseSize: base})
	model := costmodel.CFR3D(n, e, costmodel.CFR3DOptions{BaseSize: base})

	a := lin.RandomSPD(n, 1)
	measured, err := measureRun(e*e*e, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), e)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, e, e, cb.Y, cb.X)
		if err != nil {
			return err
		}
		_, err = cfr3d.Factor(cb, ad.Local, n, cfr3d.Options{BaseSize: base})
		return err
	})
	if err != nil {
		return "", err
	}
	title := fmt.Sprintf("## Table II — per-line costs of CFR3D (Algorithm 3), n=%d, P=%d, n_o=%d\n", n, e*e*e, base)
	return renderLines(title, lines, measured, model), nil
}

// Table34 reproduces Tables III and IV: per-line costs of 1D-CQR and
// 1D-CQR2 for m=64, n=8, P=4, validated against instrumented runs.
func Table34() (string, error) {
	const p, m, n = 4, 64, 8
	mloc, nn := int64(m/p), int64(n)
	lines := map[string]Cost2{
		"1:Syrk":      {Flops: mloc * nn * nn},
		"2:Allreduce": costmodel.Allreduce(nn*nn, p),
		"3:CholInv":   {Flops: 2*nn*nn*nn/3 + nn*nn*nn/3},
		"4:MM(Q)":     {Flops: mloc * nn * nn},
	}
	model, err := costmodel.OneDCQR(m, n, p)
	if err != nil {
		return "", err
	}
	a := lin.RandomMatrix(m, n, 2)
	measured, err := measureRun(p, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		_, _, err := core.OneDCQR(pr.World(), local, m, n, 0)
		return err
	})
	if err != nil {
		return "", err
	}
	out := renderLines(fmt.Sprintf("## Table III — per-line costs of 1D-CQR (Algorithm 6), m=%d n=%d P=%d\n", m, n, p),
		lines, measured, model)

	model2, err := costmodel.OneDCQR2(m, n, p)
	if err != nil {
		return "", err
	}
	measured2, err := measureRun(p, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		_, _, err := core.OneDCQR2(pr.World(), local, m, n, 0)
		return err
	})
	if err != nil {
		return "", err
	}
	lines2 := map[string]Cost2{
		"1:1D-CQR(A)":  model,
		"2:1D-CQR(Q1)": model,
		"3:MM(R2*R1)":  {Flops: nn * nn * nn / 3},
	}
	out += renderLines(fmt.Sprintf("## Table IV — per-line costs of 1D-CQR2 (Algorithm 7), m=%d n=%d P=%d\n", m, n, p),
		lines2, measured2, model2)
	return out, nil
}

// Table56 reproduces Tables V and VI: per-line costs of CA-CQR and
// CA-CQR2 for m=32, n=8 on a 2×4×2 grid, validated against instrumented
// runs.
func Table56() (string, error) {
	const c, d, m, n = 2, 4, 32, 8
	mloc, nloc := int64(m/d), int64(n/c)
	cfr := costmodel.CFR3D(n, c, costmodel.CFR3DOptions{})
	lines := map[string]Cost2{
		"1:Bcast(A)":       costmodel.Bcast(mloc*nloc, c),
		"2:MM(WtA)":        {Flops: mloc * nloc * nloc},
		"3:Reduce":         costmodel.Reduce(nloc*nloc, c),
		"4:Allreduce":      costmodel.Allreduce(nloc*nloc, d/c),
		"5:Bcast(Z,depth)": costmodel.Bcast(nloc*nloc, c),
		"7:CFR3D":          cfr,
		"8:MM3D(Q)+Transp": costmodel.Transpose(nloc*nloc, c*c).Add(costmodel.MM3DTri(mloc, nloc, nloc, c)).Add(costmodel.Transpose(nloc*nloc, c*c)),
	}
	model, err := costmodel.CACQR(m, n, costmodel.CACQRParams{C: c, D: d})
	if err != nil {
		return "", err
	}
	a := lin.RandomMatrix(m, n, 3)
	stats, err := measureRunStats(c*d*c, func(p *simmpi.Proc) error {
		g, err := grid.New(p.World(), c, d)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		_, _, err = core.CACQR(g, ad.Local, m, n, core.Params{})
		return err
	})
	if err != nil {
		return "", err
	}
	measured := simmpi.Counters{Msgs: stats.MaxMsgs, Words: stats.MaxWords, Flops: stats.MaxFlops}
	out := renderLines(fmt.Sprintf("## Table V — per-line costs of CA-CQR (Algorithm 8), m=%d n=%d grid %dx%dx%d\n", m, n, c, d, c),
		lines, measured, model)
	// The implementation runs each step under a phase label, so the
	// measured per-line costs are available too — and equal the model.
	out += "# measured per line (phase instrumentation):\n"
	keys := make([]string, 0, len(stats.Phases))
	for k := range stats.Phases {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lineNum(keys[i]) < lineNum(keys[j]) })
	for _, k := range keys {
		ph := stats.Phases[k]
		parts := strings.SplitN(k, ":", 2)
		out += fmt.Sprintf("  %-5s %-20s %9d  %11d  %13d\n", parts[0], parts[1], ph.Msgs, ph.Words, ph.Flops)
	}

	model2, err := costmodel.CACQR2(m, n, costmodel.CACQRParams{C: c, D: d})
	if err != nil {
		return "", err
	}
	measured2, err := measureRun(c*d*c, func(p *simmpi.Proc) error {
		g, err := grid.New(p.World(), c, d)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		_, _, err = core.CACQR2(g, ad.Local, m, n, core.Params{})
		return err
	})
	if err != nil {
		return "", err
	}
	lines2 := map[string]Cost2{
		"1:CA-CQR(A)":   model,
		"2:CA-CQR(Q1)":  model,
		"4:MM3D(R2*R1)": costmodel.MM3DTri(nloc, nloc, nloc, c),
	}
	out += renderLines(fmt.Sprintf("## Table VI — per-line costs of CA-CQR2 (Algorithm 9), m=%d n=%d grid %dx%dx%d\n", m, n, c, d, c),
		lines2, measured2, model2)
	return out, nil
}

// measureRun executes body and returns the per-rank maximum counters.
func measureRun(np int, body func(*simmpi.Proc) error) (simmpi.Counters, error) {
	st, err := measureRunStats(np, body)
	if err != nil {
		return simmpi.Counters{}, err
	}
	return simmpi.Counters{Msgs: st.MaxMsgs, Words: st.MaxWords, Flops: st.MaxFlops, Time: st.Time}, nil
}

// measureRunStats executes body under unit α-β-γ costs and returns the
// full run statistics (including per-phase counters).
func measureRunStats(np int, body func(*simmpi.Proc) error) (*simmpi.Stats, error) {
	return simmpi.RunWithOptions(np, simmpi.Options{
		Cost:    simmpi.CostParams{Alpha: 1, Beta: 1, Gamma: 1},
		Timeout: 120 * time.Second,
	}, body)
}
