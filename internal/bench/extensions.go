package bench

import (
	"fmt"

	"cacqr/internal/costmodel"
)

// ExtPanel is an extension figure for the paper's §V subpanel proposal:
// the flop overhead of CA-CQR2 relative to Householder's 2mn² − ⅔n³ as a
// function of panel width, for a square matrix (the worst case for
// whole-matrix CholeskyQR2), along with the latency price.
func ExtPanel() *Figure {
	const m, n = 1 << 13, 1 << 13
	prm := costmodel.CACQRParams{C: 8, D: 8} // P = 512
	f := &Figure{
		ID:     "ExtPanel",
		Title:  fmt.Sprintf("Panel-wise CA-CQR2 on a %dx%d matrix, 8x8x8 grid (paper §V proposal)", m, n),
		XLabel: "panel width b",
		YLabel: "flop overhead vs Householder (x) / α-units (k)",
	}
	over := Series{Label: "flops/HH"}
	lat := Series{Label: "alpha(k)"}
	hh := float64(2*int64(m)*int64(n)*int64(n) - 2*int64(n)*int64(n)*int64(n)/3)
	procs := int64(prm.C * prm.C * prm.D)
	for b := n / 32; b <= n; b *= 2 {
		f.Ticks = append(f.Ticks, fmt.Sprintf("%d", b))
		c, err := costmodel.PanelCACQR2(m, n, b, prm)
		if err != nil {
			over.AddPoint(0, false)
			lat.AddPoint(0, false)
			continue
		}
		over.AddPoint(float64(c.TotalFlops())*float64(procs)/hh, true)
		lat.AddPoint(float64(c.Msgs)/1000, true)
	}
	f.Series = append(f.Series, over, lat)
	first, last := over.Y[0], over.Y[len(over.Y)-1]
	f.Notes = append(f.Notes, fmt.Sprintf(
		"narrow panels cut the flop overhead from %.2fx (whole-matrix CQR2) to %.2fx at the cost of more synchronization",
		last, first))
	return f
}

// ExtMemory is an extension figure for the §IV memory claim: per-process
// footprint versus the replication parameter c at fixed P, for a
// tall-skinny and a square-ish matrix.
func ExtMemory() *Figure {
	const p = 1 << 12
	f := &Figure{
		ID:     "ExtMemory",
		Title:  fmt.Sprintf("CA-CQR2 per-process memory (words) vs c, P=%d", p),
		XLabel: "c",
		YLabel: "words per process",
	}
	shapes := []struct {
		label string
		m, n  int
	}{
		{"tall 2^24 x 2^6", 1 << 24, 1 << 6},
		{"square-ish 2^20 x 2^12", 1 << 20, 1 << 12},
	}
	for c := 1; c <= 16; c *= 2 {
		f.Ticks = append(f.Ticks, fmt.Sprintf("%d", c))
	}
	for _, sh := range shapes {
		s := Series{Label: sh.label}
		for c := 1; c <= 16; c *= 2 {
			d := p / (c * c)
			mem, err := costmodel.CACQR2Memory(sh.m, sh.n, costmodel.CACQRParams{C: c, D: d})
			s.AddPoint(float64(mem), err == nil)
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes,
		"the matrix-copy term mn/(dc) = c*mn/P grows with replication c (the paper's memory-for-communication trade);",
		"the Gram term n^2/c^2 shrinks, so square-ish shapes have a footprint-minimizing c.")
	return f
}
