package bench

import (
	"fmt"

	"cacqr/internal/costmodel"
)

// Scaling-figure generators. Grid variants follow the paper's legends:
// CA-CQR2 curves are labeled (d, c, InverseDepth) for strong scaling and
// (d/c, InverseDepth) for weak scaling; ScaLAPACK curves are labeled
// (pr, BlockSize). Gigaflops/s/node uses the Householder flop count
// 2mn² − (2/3)n³, exactly as §IV-C normalizes.

// cacqr2Point evaluates one CA-CQR2 configuration, reporting ok=false for
// grid shapes that do not divide the problem.
func cacqr2Point(mach costmodel.Machine, m, n, c, d, inv, nodes int) (float64, bool) {
	if c < 1 || d < c || d%c != 0 || m%d != 0 || n%c != 0 {
		return 0, false
	}
	if n/c < 1 || m/d < 1 {
		return 0, false
	}
	cost, err := costmodel.CACQR2(m, n, costmodel.CACQRParams{C: c, D: d, InverseDepth: inv})
	if err != nil {
		return 0, false
	}
	return mach.GFlopsPerNode(cost, m, n, nodes), true
}

// sclaPoint evaluates one PGEQRF configuration.
func sclaPoint(mach costmodel.Machine, m, n, pr, pc, nb, nodes int) (float64, bool) {
	if pr < 1 || pc < 1 || m%pr != 0 || n%nb != 0 || pc*nb > n || pr > m {
		return 0, false
	}
	cost, err := costmodel.PGEQRF(m, n, pr, pc, nb)
	if err != nil {
		return 0, false
	}
	return mach.GFlopsPerNode(cost, m, n, nodes), true
}

// bestCACQR2 sweeps c (and InverseDepth ∈ {0,1}) for the best
// configuration at a node count, as the paper's Figure 1 does.
func bestCACQR2(mach costmodel.Machine, m, n, procs, nodes int) (float64, string) {
	best, lbl := 0.0, ""
	for c := 1; c*c*c <= procs; c *= 2 {
		d := procs / (c * c)
		for inv := 0; inv <= 1; inv++ {
			if v, ok := cacqr2Point(mach, m, n, c, d, inv, nodes); ok && v > best {
				best, lbl = v, fmt.Sprintf("c=%d,inv=%d", c, inv)
			}
		}
	}
	return best, lbl
}

// bestScaLAPACK sweeps pr and nb for the best baseline configuration.
func bestScaLAPACK(mach costmodel.Machine, m, n, procs, nodes int) (float64, string) {
	best, lbl := 0.0, ""
	for _, nb := range []int{16, 32, 64} {
		for pr := 1; pr <= procs && pr <= m; pr *= 2 {
			pc := procs / pr
			if pc < 1 {
				continue
			}
			if v, ok := sclaPoint(mach, m, n, pr, pc, nb, nodes); ok && v > best {
				best, lbl = v, fmt.Sprintf("pr=%d,nb=%d", pr, nb)
			}
		}
	}
	return best, lbl
}

// strongVariant is one legend entry of a strong-scaling panel.
type strongVariant struct {
	// CA-CQR2: DMult·N = d (DDiv divides), fixed c and InverseDepth.
	// ScaLAPACK: PrMult·N = pr (PrDiv divides), block size NB.
	IsCQR2        bool
	DMult, DDiv   int
	C, Inv        int
	PrMult, PrDiv int
	NB            int
}

func (v strongVariant) label(scla bool) string {
	frac := func(mult, div int) string {
		if div > 1 {
			return fmt.Sprintf("N/%d", div)
		}
		return fmt.Sprintf("%dN", mult)
	}
	if v.IsCQR2 {
		return fmt.Sprintf("CA-CQR2-(%s,%d,%d)", frac(v.DMult, v.DDiv), v.C, v.Inv)
	}
	return fmt.Sprintf("ScaLAPACK-(%s,%d)", frac(v.PrMult, v.PrDiv), v.NB)
}

// strongPanel builds one strong-scaling panel for an m×n matrix on a
// machine, over the given node counts, with the paper's legend variants.
func strongPanel(id string, mach costmodel.Machine, m, n int, nodes []int, variants []strongVariant) *Figure {
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Strong scaling, %d x %d (%s)", m, n, mach.Name),
		XLabel: "Nodes(N)",
		YLabel: "Gigaflops/s/Node",
	}
	for _, nd := range nodes {
		f.Ticks = append(f.Ticks, fmt.Sprintf("%d", nd))
	}
	for _, v := range variants {
		s := Series{Label: v.label(!v.IsCQR2)}
		for _, nd := range nodes {
			procs := mach.PPN * nd
			if v.IsCQR2 {
				d := v.DMult * nd / v.DDiv
				if d < 1 || v.C*v.C*d != procs {
					s.AddPoint(0, false)
					continue
				}
				y, ok := cacqr2Point(mach, m, n, v.C, d, v.Inv, nd)
				s.AddPoint(y, ok)
			} else {
				pr := v.PrMult * nd / v.PrDiv
				if pr < 1 || procs%pr != 0 {
					s.AddPoint(0, false)
					continue
				}
				y, ok := sclaPoint(mach, m, n, pr, procs/pr, v.NB, nd)
				s.AddPoint(y, ok)
			}
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// cqr2StrongVariantsFor builds the CA-CQR2 legend entries for a strong
// panel: for each feasible c at the smallest node count, d = P/c².
func cqr2StrongVariantsFor(mach costmodel.Machine, cs []int, invs []int, baseNodes int) []strongVariant {
	var out []strongVariant
	p0 := mach.PPN * baseNodes
	for i, c := range cs {
		d0 := p0 / (c * c)
		inv := 0
		if i < len(invs) {
			inv = invs[i]
		}
		v := strongVariant{IsCQR2: true, C: c, Inv: inv, DDiv: 1}
		if d0 >= baseNodes {
			v.DMult = d0 / baseNodes
		} else {
			v.DDiv = baseNodes / d0
			v.DMult = 1
		}
		out = append(out, v)
	}
	return out
}

// Fig7 regenerates the paper's Figure 7: strong scaling on Stampede2 for
// the four matrix shapes, nodes 64–1024, with legend variants mirroring
// the paper's (d, c, InverseDepth) tuples.
func Fig7() []*Figure {
	mach := costmodel.Stampede2
	nodes := []int{64, 128, 256, 512, 1024}
	panels := []struct {
		id   string
		m, n int
		cs   []int
		invs []int
		scla []strongVariant
	}{
		{"Fig7a", 1 << 19, 1 << 13, []int{8, 16}, []int{0, 0}, []strongVariant{
			{PrMult: 8, PrDiv: 1, NB: 16}, {PrMult: 4, PrDiv: 1, NB: 32}}},
		{"Fig7b", 1 << 21, 1 << 12, []int{4, 8, 2}, []int{0, 0, 0}, []strongVariant{
			{PrMult: 64, PrDiv: 1, NB: 64}, {PrMult: 16, PrDiv: 1, NB: 32}}},
		{"Fig7c", 1 << 23, 1 << 11, []int{1, 2, 4}, []int{0, 0, 0}, []strongVariant{
			{PrMult: 32, PrDiv: 1, NB: 32}, {PrMult: 64, PrDiv: 1, NB: 32}}},
		{"Fig7d", 1 << 25, 1 << 10, []int{1, 2}, []int{0, 0}, []strongVariant{
			{PrMult: 64, PrDiv: 1, NB: 16}, {PrMult: 64, PrDiv: 1, NB: 32}}},
	}
	var figs []*Figure
	for _, p := range panels {
		variants := cqr2StrongVariantsFor(mach, p.cs, p.invs, nodes[0])
		variants = append(variants, p.scla...)
		fig := strongPanel(p.id, mach, p.m, p.n, nodes, variants)
		addStrongNotes(fig, mach, p.m, p.n, nodes)
		figs = append(figs, fig)
	}
	return figs
}

// Fig6 regenerates Figure 6: strong scaling on Blue Waters.
func Fig6() []*Figure {
	mach := costmodel.BlueWaters
	nodes := []int{32, 64, 128, 256, 512, 1024, 2048}
	panels := []struct {
		id   string
		m, n int
		cs   []int
		invs []int
		scla []strongVariant
	}{
		{"Fig6a", 1 << 20, 1 << 12, []int{4, 2, 8}, []int{0, 0, 2}, []strongVariant{
			{PrMult: 8, PrDiv: 1, NB: 32}, {PrMult: 8, PrDiv: 1, NB: 64}, {PrMult: 4, PrDiv: 1, NB: 32}}},
		{"Fig6b", 1 << 22, 1 << 11, []int{1, 2, 4}, []int{0, 0, 0}, []strongVariant{
			{PrMult: 16, PrDiv: 1, NB: 32}, {PrMult: 16, PrDiv: 1, NB: 64}, {PrMult: 8, PrDiv: 1, NB: 32}}},
	}
	var figs []*Figure
	for _, p := range panels {
		variants := cqr2StrongVariantsFor(mach, p.cs, p.invs, nodes[0])
		variants = append(variants, p.scla...)
		fig := strongPanel(p.id, mach, p.m, p.n, nodes, variants)
		addStrongNotes(fig, mach, p.m, p.n, nodes)
		figs = append(figs, fig)
	}
	return figs
}

func addStrongNotes(f *Figure, mach costmodel.Machine, m, n int, nodes []int) {
	last := len(nodes) - 1
	cq, cqLbl := f.Best(last, "CA-CQR2")
	sc, scLbl := f.Best(last, "ScaLAPACK")
	if sc > 0 {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"at N=%d: best CA-CQR2 %.1f (%s) vs best ScaLAPACK %.1f (%s): ratio %.2fx",
			nodes[last], cq, cqLbl, sc, scLbl, cq/sc))
	}
}

// weakStep is one (a, b) point of the paper's weak-scaling x axis.
type weakStep struct{ a, b int }

var weakSteps = []weakStep{{2, 1}, {1, 2}, {2, 2}, {4, 2}, {8, 2}, {4, 4}, {8, 4}}

// weakPanel builds one weak-scaling panel: m = bm·a, n = bn·b,
// N = nodeFactor·a·b². CA-CQR2 variants are labeled by the legend ratio
// d/c = x·a/b with c = c0·b/x^{1/3} as in the paper's legends;
// ScaLAPACK variants by (pr = prMult·a·b, nb).
func weakPanel(id string, mach costmodel.Machine, bm, bn, nodeFactor int,
	xs []int, invs []int, prMults []int, nbs []int) *Figure {
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Weak scaling, %d*a x %d*b (%s)", bm, bn, mach.Name),
		XLabel: "(a,b)",
		YLabel: "Gigaflops/s/Node",
	}
	for _, st := range weakSteps {
		f.Ticks = append(f.Ticks, fmt.Sprintf("(%d,%d)", st.a, st.b))
	}
	for i, x := range xs {
		inv := 0
		if i < len(invs) {
			inv = invs[i]
		}
		s := Series{Label: fmt.Sprintf("CA-CQR2-(%da/b,%d)", x, inv)}
		for _, st := range weakSteps {
			nodesN := nodeFactor * st.a * st.b * st.b
			procs := mach.PPN * nodesN
			m, n := bm*st.a, bn*st.b
			// d/c = x·a/b and c²·d = P ⇒ c³ = P·b/(x·a).
			c := icbrt(procs * st.b / (x * st.a))
			if c < 1 {
				s.AddPoint(0, false)
				continue
			}
			d := procs / (c * c)
			if c*c*d != procs {
				s.AddPoint(0, false)
				continue
			}
			y, ok := cacqr2Point(mach, m, n, c, d, inv, nodesN)
			s.AddPoint(y, ok)
		}
		f.Series = append(f.Series, s)
	}
	for i, prMult := range prMults {
		nb := nbs[i%len(nbs)]
		s := Series{Label: fmt.Sprintf("ScaLAPACK-(%dab,%d)", prMult, nb)}
		for _, st := range weakSteps {
			nodesN := nodeFactor * st.a * st.b * st.b
			procs := mach.PPN * nodesN
			m, n := bm*st.a, bn*st.b
			pr := prMult * st.a * st.b
			if pr < 1 || procs%pr != 0 {
				s.AddPoint(0, false)
				continue
			}
			y, ok := sclaPoint(mach, m, n, pr, procs/pr, nb, nodesN)
			s.AddPoint(y, ok)
		}
		f.Series = append(f.Series, s)
	}
	last := len(weakSteps) - 1
	cq, cqLbl := f.Best(last, "CA-CQR2")
	sc, scLbl := f.Best(last, "ScaLAPACK")
	if sc > 0 {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"at (8,4): best CA-CQR2 %.1f (%s) vs best ScaLAPACK %.1f (%s): ratio %.2fx",
			cq, cqLbl, sc, scLbl, cq/sc))
	}
	return f
}

// icbrt returns the integer cube root when exact, else 0.
func icbrt(v int) int {
	for c := 1; c*c*c <= v; c++ {
		if c*c*c == v {
			return c
		}
	}
	return 0
}

// Fig5 regenerates Figure 5: weak scaling on Stampede2 (N = 8ab²,
// 64 processes/node).
func Fig5() []*Figure {
	mach := costmodel.Stampede2
	panels := []struct {
		id     string
		bm, bn int
		xs     []int
		invs   []int
	}{
		{"Fig5a", 131072, 8192, []int{1, 8, 64}, []int{0, 0, 0}},
		{"Fig5b", 262144, 4096, []int{1, 8, 64}, []int{0, 0, 0}},
		{"Fig5c", 524288, 2048, []int{8, 64, 64}, []int{0, 0, 1}},
		{"Fig5d", 1048576, 1024, []int{64, 64, 512}, []int{0, 1, 0}},
	}
	var figs []*Figure
	for _, p := range panels {
		figs = append(figs, weakPanel(p.id, mach, p.bm, p.bn, 8, p.xs, p.invs,
			[]int{256, 128, 64}, []int{32, 32, 32}))
	}
	return figs
}

// Fig4 regenerates Figure 4: weak scaling on Blue Waters (N = 16ab²,
// 16 processes/node).
func Fig4() []*Figure {
	mach := costmodel.BlueWaters
	panels := []struct {
		id     string
		bm, bn int
		xs     []int
		invs   []int
	}{
		{"Fig4a", 65536, 2048, []int{4, 32, 256}, []int{0, 0, 0}},
		{"Fig4b", 262144, 1024, []int{4, 32, 256}, []int{0, 0, 0}},
		{"Fig4c", 1048576, 512, []int{32, 256, 512}, []int{0, 0, 0}},
	}
	var figs []*Figure
	for _, p := range panels {
		figs = append(figs, weakPanel(p.id, mach, p.bm, p.bn, 16, p.xs, p.invs,
			[]int{256, 128, 64}, []int{32, 64, 32}))
	}
	return figs
}

// Fig1a regenerates Figure 1(a): the best-variant strong-scaling summary
// on Stampede2 across the four Figure 7 shapes.
func Fig1a() *Figure {
	mach := costmodel.Stampede2
	nodes := []int{64, 128, 256, 512, 1024}
	sizes := []struct{ m, n int }{
		{1 << 25, 1 << 10}, {1 << 23, 1 << 11}, {1 << 21, 1 << 12}, {1 << 19, 1 << 13},
	}
	f := &Figure{
		ID:     "Fig1a",
		Title:  "QR strong scaling, best variants (Stampede2)",
		XLabel: "Nodes",
		YLabel: "Gigaflops/s/Node",
	}
	for _, nd := range nodes {
		f.Ticks = append(f.Ticks, fmt.Sprintf("%d", nd))
	}
	for _, sz := range sizes {
		sq := Series{Label: fmt.Sprintf("ScaLAPACK 2^%d x 2^%d", log2(sz.m), log2(sz.n))}
		cq := Series{Label: fmt.Sprintf("CA-CQR2 2^%d x 2^%d", log2(sz.m), log2(sz.n))}
		for _, nd := range nodes {
			procs := mach.PPN * nd
			s, _ := bestScaLAPACK(mach, sz.m, sz.n, procs, nd)
			c, _ := bestCACQR2(mach, sz.m, sz.n, procs, nd)
			sq.AddPoint(s, s > 0)
			cq.AddPoint(c, c > 0)
		}
		f.Series = append(f.Series, sq, cq)
	}
	for _, sz := range sizes {
		procs := mach.PPN * 1024
		s, _ := bestScaLAPACK(mach, sz.m, sz.n, procs, 1024)
		c, _ := bestCACQR2(mach, sz.m, sz.n, procs, 1024)
		if s > 0 {
			f.Notes = append(f.Notes, fmt.Sprintf("2^%d x 2^%d at N=1024: CA-CQR2/ScaLAPACK = %.2fx",
				log2(sz.m), log2(sz.n), c/s))
		}
	}
	return f
}

// Fig1b regenerates Figure 1(b): the best-variant weak-scaling summary on
// Stampede2 (the four Figure 5 shape progressions).
func Fig1b() *Figure {
	mach := costmodel.Stampede2
	shapes := []struct {
		cMul, dMul int // size multipliers: m = 131072·a·c̃, n = 1024·b·d̃
	}{
		{8, 1}, {4, 2}, {2, 4}, {1, 8},
	}
	f := &Figure{
		ID:     "Fig1b",
		Title:  "QR weak scaling 131072*a*c x 1024*b*d, best variants (Stampede2)",
		XLabel: "(a,b)",
		YLabel: "Gigaflops/s/Node",
	}
	for _, st := range weakSteps {
		f.Ticks = append(f.Ticks, fmt.Sprintf("(%d,%d)", st.a, st.b))
	}
	for _, sh := range shapes {
		sq := Series{Label: fmt.Sprintf("ScaLAPACK c=%d,d=%d", sh.cMul, sh.dMul)}
		cq := Series{Label: fmt.Sprintf("CA-CQR2 c=%d,d=%d", sh.cMul, sh.dMul)}
		for _, st := range weakSteps {
			nodesN := 8 * st.a * st.b * st.b
			procs := mach.PPN * nodesN
			m, n := 131072*st.a*sh.cMul, 1024*st.b*sh.dMul
			s, _ := bestScaLAPACK(mach, m, n, procs, nodesN)
			c, _ := bestCACQR2(mach, m, n, procs, nodesN)
			sq.AddPoint(s, s > 0)
			cq.AddPoint(c, c > 0)
		}
		f.Series = append(f.Series, sq, cq)
	}
	return f
}

func log2(v int) int {
	l := 0
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}
