package bench

import (
	"strings"
	"testing"
)

// These tests pin the reproduction's shape criteria (DESIGN.md §4): who
// wins, by roughly what factor, and where crossovers fall. They guard the
// calibrated machine models against regressions.

func ratioAtLastTick(t *testing.T, f *Figure) float64 {
	t.Helper()
	last := len(f.Ticks) - 1
	cq, _ := f.Best(last, "CA-CQR2")
	sc, _ := f.Best(last, "ScaLAPACK")
	if sc <= 0 {
		t.Fatalf("%s: no ScaLAPACK point at last tick", f.ID)
	}
	return cq / sc
}

func TestFig7StrongScalingShape(t *testing.T) {
	figs := Fig7()
	if len(figs) != 4 {
		t.Fatalf("want 4 panels, got %d", len(figs))
	}
	// Criterion 1: CA-CQR2 beats ScaLAPACK at N=1024 on every panel by
	// a healthy factor (paper: 2.6x, 3.3x, 3.1x, 2.7x; we accept ≥1.5x
	// with the two column-heavy panels ≥2x).
	for i, f := range figs {
		r := ratioAtLastTick(t, f)
		if r < 1.5 {
			t.Errorf("%s: ratio %.2f at N=1024, want ≥ 1.5", f.ID, r)
		}
		if i < 2 && r < 2.0 {
			t.Errorf("%s: ratio %.2f at N=1024, want ≥ 2.0 for column-heavy shapes", f.ID, r)
		}
	}
	// Criterion: larger-c grids overtake smaller-c grids as N grows
	// (crossovers). In Fig7b, the c=4 variant starts above the c=8
	// variant and ends below it.
	for _, f := range figs {
		if f.ID != "Fig7b" {
			continue
		}
		var c4, c8 *Series
		for i := range f.Series {
			if strings.Contains(f.Series[i].Label, ",4,") {
				c4 = &f.Series[i]
			}
			if strings.Contains(f.Series[i].Label, ",8,") {
				c8 = &f.Series[i]
			}
		}
		if c4 == nil || c8 == nil {
			t.Fatal("Fig7b missing c=4 or c=8 series")
		}
		last := len(f.Ticks) - 1
		if !(c4.Y[0] > c8.Y[0]) {
			t.Errorf("Fig7b: c=4 should lead at N=64 (%.1f vs %.1f)", c4.Y[0], c8.Y[0])
		}
		if !(c8.Y[last] > c4.Y[last]) {
			t.Errorf("Fig7b: c=8 should lead at N=1024 (%.1f vs %.1f)", c8.Y[last], c4.Y[last])
		}
	}
}

func TestFig6BlueWatersShape(t *testing.T) {
	figs := Fig6()
	for _, f := range figs {
		// Criterion 3: on Blue Waters ScaLAPACK wins at small node
		// counts.
		cq, _ := f.Best(0, "CA-CQR2")
		sc, _ := f.Best(0, "ScaLAPACK")
		if cq >= sc {
			t.Errorf("%s: CA-CQR2 %.1f should trail ScaLAPACK %.1f at N=32", f.ID, cq, sc)
		}
		// ...but catches up by N=2048 (paper: "performance difference is
		// small"; our model reaches parity or better).
		if r := ratioAtLastTick(t, f); r < 0.95 {
			t.Errorf("%s: ratio %.2f at N=2048, want ≥ 0.95 (near-parity)", f.ID, r)
		}
	}
	// Criterion 4: crossovers between c grids on Fig6b: c=1 declines
	// fastest; by the last tick the ordering among CA-CQR2 variants is
	// c=4 > c=2 > c=1.
	for _, f := range figs {
		if f.ID != "Fig6b" {
			continue
		}
		val := func(substr string, tick int) float64 {
			for _, s := range f.Series {
				if strings.Contains(s.Label, substr) {
					return s.Y[tick]
				}
			}
			t.Fatalf("missing series %s", substr)
			return 0
		}
		last := len(f.Ticks) - 1
		c1, c2, c4 := val(",1,", last), val(",2,", last), val(",4,", last)
		if !(c4 > c2 && c2 > c1) {
			t.Errorf("Fig6b at N=2048: want c=4 > c=2 > c=1, got %.1f, %.1f, %.1f", c4, c2, c1)
		}
		// At the first tick c=1 is competitive (within 10%) with c=4.
		if val(",1,", 0) < 0.8*val(",4,", 0) {
			t.Errorf("Fig6b at N=32: c=1 should be competitive")
		}
	}
}

func TestFig5WeakScalingShape(t *testing.T) {
	figs := Fig5()
	if len(figs) != 4 {
		t.Fatalf("want 4 panels, got %d", len(figs))
	}
	// Criterion 2: CA-CQR2 wins weak scaling at (8,4) on every panel
	// (paper band 1.1–1.9x; our calibration lands 1.5–2.5x).
	for _, f := range figs {
		r := ratioAtLastTick(t, f)
		if r < 1.1 || r > 3.0 {
			t.Errorf("%s: weak-scaling ratio %.2f at (8,4), want within [1.1, 3.0]", f.ID, r)
		}
	}
}

func TestFig4BlueWatersWeakShape(t *testing.T) {
	figs := Fig4()
	if len(figs) != 3 {
		t.Fatalf("want 3 panels, got %d", len(figs))
	}
	for _, f := range figs {
		// ScaLAPACK leads at the first tick on Blue Waters — except on
		// the extreme tall-skinny panel (c), where the near-1D CQR2
		// variants are in CholeskyQR2's home regime and the model lets
		// them edge ahead.
		cq, _ := f.Best(0, "CA-CQR2")
		sc, _ := f.Best(0, "ScaLAPACK")
		limit := 1.15
		if f.ID == "Fig4c" {
			limit = 1.3
		}
		if cq > limit*sc {
			t.Errorf("%s: CA-CQR2 %.1f should not dominate ScaLAPACK %.1f at (2,1) on Blue Waters", f.ID, cq, sc)
		}
		// Small-c variants must not be suited to many columns: within
		// panel (a), the largest d/c (smallest c) series is worst.
		if f.ID == "Fig4a" {
			last := len(f.Ticks) - 1
			big, _ := f.Best(last, "CA-CQR2-(4a/b")
			small, _ := f.Best(last, "CA-CQR2-(256a/b")
			if small >= big {
				t.Errorf("Fig4a: c too small should hurt with many columns (%.1f vs %.1f)", small, big)
			}
		}
	}
}

func TestFig1SummariesConsistent(t *testing.T) {
	a := Fig1a()
	if len(a.Series) != 8 {
		t.Fatalf("Fig1a should carry 4 size pairs, got %d series", len(a.Series))
	}
	for _, s := range a.Series {
		for i, ok := range s.Valid {
			if !ok {
				t.Errorf("Fig1a: %s missing point %d", s.Label, i)
			}
		}
	}
	b := Fig1b()
	if len(b.Series) != 8 {
		t.Fatalf("Fig1b should carry 4 shape pairs, got %d series", len(b.Series))
	}
	// Weak-scaling advantage at (8,4) within the paper's qualitative
	// band on every shape.
	last := len(b.Ticks) - 1
	for i := 0; i+1 < len(b.Series); i += 2 {
		sc, cq := b.Series[i].Y[last], b.Series[i+1].Y[last]
		if cq < sc {
			t.Errorf("Fig1b: CA-CQR2 (%.1f) should beat ScaLAPACK (%.1f) for %s", cq, sc, b.Series[i].Label)
		}
	}
}

func TestTable1ExponentFits(t *testing.T) {
	out := Table1()
	if !strings.Contains(out, "MM3D") || !strings.Contains(out, "CA-CQR") {
		t.Fatal("Table1 missing rows")
	}
	// The MM3D bandwidth row must fit its exponent essentially exactly.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "MM3D") && strings.Contains(line, "bandwidth") {
			if !strings.Contains(line, "-0.667") {
				t.Fatalf("MM3D bandwidth exponent drifted: %s", line)
			}
		}
	}
}

func TestTablesMatchInstrumentedRuns(t *testing.T) {
	// Each table generator embeds a model-vs-run cross check; rendering
	// must succeed and report equal totals.
	for name, gen := range map[string]func() (string, error){
		"table2": Table2, "table34": Table34, "table56": Table56,
	} {
		out, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, "must equal model") {
			t.Fatalf("%s: missing cross-check section", name)
		}
		if err := checkTotalsEqual(out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// checkTotalsEqual parses consecutive "model total" / "measured run"
// lines and verifies the α/β/γ triples agree.
func checkTotalsEqual(out string) error {
	lines := strings.Split(out, "\n")
	for i := 0; i+1 < len(lines); i++ {
		if strings.Contains(lines[i], "model total:") {
			m := strings.SplitN(lines[i], ":", 2)[1]
			r := strings.SplitN(lines[i+1], ":", 2)[1]
			m = strings.TrimSpace(m)
			r = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(r), "(per-rank maxima; must equal model)"))
			if strings.TrimSpace(m) != strings.TrimSpace(r) {
				return &mismatchError{m, r}
			}
		}
	}
	return nil
}

type mismatchError struct{ model, run string }

func (e *mismatchError) Error() string {
	return "model total " + e.model + " != measured " + e.run
}

func TestTracesVerify(t *testing.T) {
	if _, err := Fig2Trace(); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig3Trace(); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracySweep(t *testing.T) {
	out := Accuracy()
	if !strings.Contains(out, "1e+09") {
		t.Fatal("accuracy sweep missing rows")
	}
	// CQR must fail (or degrade) by 1e+11 while sCQR3 keeps machine
	// precision — check the narrative markers.
	if !strings.Contains(out, "failed") {
		t.Fatal("expected CQR/CQR2 failure at extreme conditioning")
	}
}

func TestRenderCSV(t *testing.T) {
	f := &Figure{ID: "X", Title: "t", XLabel: "x,axis", YLabel: "y", Ticks: []string{"a", "b"}}
	s := Series{Label: `quo"ted`}
	s.AddPoint(1.5, true)
	s.AddPoint(0, false)
	f.Series = append(f.Series, s)
	out := f.RenderCSV()
	want := "\"x,axis\",\"quo\"\"ted\"\na,1.5\nb,\n"
	if out != want {
		t.Fatalf("CSV output:\n%q\nwant:\n%q", out, want)
	}
}

func TestRenderStable(t *testing.T) {
	f := &Figure{ID: "X", Title: "t", XLabel: "x", YLabel: "y", Ticks: []string{"1", "2"}}
	s := Series{Label: "s"}
	s.AddPoint(1.0, true)
	s.AddPoint(0, false)
	f.Series = append(f.Series, s)
	out := f.Render()
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "-") {
		t.Fatalf("render wrong:\n%s", out)
	}
}
