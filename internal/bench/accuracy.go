package bench

import (
	"fmt"
	"strings"

	"cacqr/internal/core"
	"cacqr/internal/lin"
)

// Accuracy reproduces the stability story of the paper's §I as a κ(A)
// sweep: one CholeskyQR pass loses orthogonality like κ², CholeskyQR2
// restores it to machine precision up to κ ≈ 1/√ε, Householder QR and
// shifted CholeskyQR3 are accurate throughout. This supports the paper's
// claim that CQR2 matches Householder accuracy in its stated regime.
func Accuracy() string {
	const m, n = 120, 16
	conds := []float64{1e1, 1e3, 1e5, 1e7, 1e9, 1e11}

	var b strings.Builder
	b.WriteString("## Accuracy — orthogonality error ‖QᵀQ−I‖_F vs condition number (m=120, n=16)\n")
	b.WriteString("# kappa        CQR          CQR2         sCQR3        Householder  residual(CQR2)\n")
	for _, k := range conds {
		a := lin.RandomWithCond(m, n, k, int64(k))
		row := fmt.Sprintf("%8.0e", k)

		if q, _, err := core.CholeskyQR(a, 0); err == nil {
			row += fmt.Sprintf("  %11.2e", lin.OrthogonalityError(q))
		} else {
			row += "       failed"
		}
		var resid float64 = -1
		if q, r, err := core.CholeskyQR2(a, 0); err == nil {
			row += fmt.Sprintf("  %11.2e", lin.OrthogonalityError(q))
			resid = lin.ResidualNorm(a, q, r)
		} else {
			row += "       failed"
		}
		if q, _, err := core.ShiftedCQR3(a, 0); err == nil {
			row += fmt.Sprintf("  %11.2e", lin.OrthogonalityError(q))
		} else {
			row += "       failed"
		}
		if q, _, err := lin.QR(a); err == nil {
			row += fmt.Sprintf("  %11.2e", lin.OrthogonalityError(q))
		}
		if resid >= 0 {
			row += fmt.Sprintf("  %11.2e", resid)
		} else {
			row += "            -"
		}
		b.WriteString(row + "\n")
	}
	b.WriteString("# CQR2 is Householder-accurate while kappa <~ 1/sqrt(eps) ~ 1e8; shifted CQR3 extends to ~1/eps.\n")
	return b.String()
}
