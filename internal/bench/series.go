package bench

import (
	"fmt"
	"strings"
)

// Series is one labeled line of a figure: Y values over the shared X axis
// of the owning figure. NaN-free; missing points are omitted by leaving
// Valid false.
type Series struct {
	Label string
	Y     []float64
	Valid []bool
}

// Figure is a regenerated plot: an X axis (as printable tick labels) and
// one or more series, with free-form notes recording shape checks.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Ticks  []string
	Series []Series
	Notes  []string
}

// AddPoint appends a point to series i (growing Valid/Y in lockstep).
func (s *Series) AddPoint(y float64, ok bool) {
	s.Y = append(s.Y, y)
	s.Valid = append(s.Valid, ok)
}

// Render formats the figure as an aligned text table, one row per X tick
// and one column per series — the same rows/series the paper plots.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "#  y-axis: %s\n", f.YLabel)

	width := len(f.XLabel)
	for _, t := range f.Ticks {
		if len(t) > width {
			width = len(t)
		}
	}
	cols := make([]int, len(f.Series))
	for i, s := range f.Series {
		cols[i] = len(s.Label)
		if cols[i] < 8 {
			cols[i] = 8
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, f.XLabel)
	for i, s := range f.Series {
		fmt.Fprintf(&b, "  %*s", cols[i], s.Label)
	}
	b.WriteByte('\n')
	for r, tick := range f.Ticks {
		fmt.Fprintf(&b, "%-*s", width+2, tick)
		for i, s := range f.Series {
			if r < len(s.Y) && s.Valid[r] {
				fmt.Fprintf(&b, "  %*.1f", cols[i], s.Y[r])
			} else {
				fmt.Fprintf(&b, "  %*s", cols[i], "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// RenderCSV formats the figure as CSV (one row per tick, one column per
// series) for downstream plotting tools. Missing points are empty cells.
func (f *Figure) RenderCSV() string {
	var b strings.Builder
	b.WriteString(csvQuote(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvQuote(s.Label))
	}
	b.WriteByte('\n')
	for r, tick := range f.Ticks {
		b.WriteString(csvQuote(tick))
		for _, s := range f.Series {
			b.WriteByte(',')
			if r < len(s.Y) && s.Valid[r] {
				fmt.Fprintf(&b, "%g", s.Y[r])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// csvQuote quotes a field when it contains separators or quotes.
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Best returns the maximum valid value of row r across series whose label
// has the given prefix, with the winning label.
func (f *Figure) Best(r int, prefix string) (float64, string) {
	best, lbl := 0.0, ""
	for _, s := range f.Series {
		if !strings.HasPrefix(s.Label, prefix) {
			continue
		}
		if r < len(s.Y) && s.Valid[r] && s.Y[r] > best {
			best, lbl = s.Y[r], s.Label
		}
	}
	return best, lbl
}
