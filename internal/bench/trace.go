package bench

import (
	"fmt"
	"strings"
	"time"

	"cacqr/internal/core"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// Figures 2 and 3 of the paper are illustrations of the algorithm steps.
// We reproduce them as execution traces of real runs: each step of the
// algorithm reported with the communicator it uses and the data shape it
// moves, from rank 0's perspective, plus end-to-end verification.

// Fig2Trace runs 1D-CQR on P=4 ranks (m=16, n=4) and narrates the steps
// of Figure 2.
func Fig2Trace() (string, error) {
	const p, m, n = 4, 16, 4
	a := lin.RandomMatrix(m, n, 1)
	var b strings.Builder
	b.WriteString("## Figure 2 — steps of the 1D-CQR algorithm (real run, P=4, A is 16x4)\n")
	fmt.Fprintf(&b, "step 1: each rank owns a %dx%d row block of A\n", m/p, n)
	fmt.Fprintf(&b, "step 2: local Syrk: X = A_iᵀ·A_i (%dx%d)\n", n, n)
	fmt.Fprintf(&b, "step 3: Allreduce over the 1D grid sums X into Z = AᵀA (%d words)\n", n*n)
	fmt.Fprintf(&b, "step 4: every rank redundantly computes Rᵀ, R⁻ᵀ = CholInv(Z)\n")
	fmt.Fprintf(&b, "step 5: local MM: Q_i = A_i·R⁻¹ — Q distributed like A, R everywhere\n")

	var resErr error
	_, err := simmpi.RunWithOptions(p, simmpi.Options{Timeout: 60 * time.Second}, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		q, r, err := core.OneDCQR(pr.World(), local, m, n, 0)
		if err != nil {
			return err
		}
		if pr.Rank() == 0 {
			qr := lin.MatMul(q, r)
			if !qr.EqualWithin(a.View(0, 0, m/p, n), 1e-10) {
				resErr = fmt.Errorf("trace verification failed")
			}
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if resErr != nil {
		return "", resErr
	}
	b.WriteString("verified: A_i = Q_i·R on every rank\n")
	return b.String(), nil
}

// Fig3Trace runs CA-CQR on a 2×4×2 grid (m=32, n=8) and narrates the
// steps of Figure 3.
func Fig3Trace() (string, error) {
	const c, d, m, n = 2, 4, 32, 8
	a := lin.RandomMatrix(m, n, 2)
	var b strings.Builder
	b.WriteString("## Figure 3 — steps of CA-CQR over a tunable 2x4x2 grid (real run, A is 32x8)\n")
	fmt.Fprintf(&b, "step 1: Bcast A along Π[:,y,z] from root x=z (%d words per rank)\n", (m/d)*(n/c))
	fmt.Fprintf(&b, "step 2: local MM: X = Wᵀ·A (%dx%d partial Gram block)\n", n/c, n/c)
	fmt.Fprintf(&b, "step 3: Reduce within contiguous y-groups of %d onto root offset z\n", c)
	fmt.Fprintf(&b, "step 4: Allreduce across the %d strided y-groups\n", d/c)
	fmt.Fprintf(&b, "step 5: Bcast along depth Π[x,y,:] from root z = y mod %d\n", c)
	fmt.Fprintf(&b, "step 6: %d simultaneous CFR3D instances over %dx%dx%d subcubes\n", d/c, c, c, c)
	fmt.Fprintf(&b, "step 7: MM3D computes Q = A·R⁻¹ within each subcube\n")

	var resErr error
	_, err := simmpi.RunWithOptions(c*d*c, simmpi.Options{Timeout: 120 * time.Second}, func(p *simmpi.Proc) error {
		g, err := grid.New(p.World(), c, d)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		qL, rL, err := core.CACQR(g, ad.Local, m, n, core.Params{})
		if err != nil {
			return err
		}
		q, err := dist.Gather(g.Slice, qL, m, n, d, c)
		if err != nil {
			return err
		}
		r, err := dist.Gather(g.Cube.Slice, rL, n, n, c, c)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if e := lin.ResidualNorm(a, q, r); e > 1e-9 {
				resErr = fmt.Errorf("trace verification failed: residual %g", e)
			}
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if resErr != nil {
		return "", resErr
	}
	b.WriteString("verified: A = Q·R with Q distributed like A, R on every subcube slice\n")
	return b.String(), nil
}
