package dist

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// errMentions checks err is non-nil and mentions substr, so the error
// paths stay actionable, not just present. It returns rather than fails
// so rank-goroutine bodies can report through RunWithOptions (t.Fatal
// must not be called off the test goroutine).
func errMentions(err error, substr string) error {
	if err == nil {
		return fmt.Errorf("expected an error mentioning %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		return fmt.Errorf("error %q does not mention %q", err.Error(), substr)
	}
	return nil
}

// wantErr is errMentions for tests running on the test goroutine.
func wantErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err := errMentions(err, substr); err != nil {
		t.Fatal(err)
	}
}

func TestFromGlobalRejectsNonDivisible(t *testing.T) {
	a := lin.NewMatrix(10, 6)
	_, err := FromGlobal(a, 4, 2, 0, 0) // 4 ∤ 10
	wantErr(t, err, "not divisible")
	_, err = FromGlobal(a, 2, 4, 0, 0) // 4 ∤ 6
	wantErr(t, err, "not divisible")
}

func TestFromGlobalRejectsBadGrid(t *testing.T) {
	a := lin.NewMatrix(4, 4)
	_, err := FromGlobal(a, 0, 2, 0, 0)
	wantErr(t, err, "invalid")
	_, err = FromGlobal(a, 2, 2, 2, 0) // row out of range
	wantErr(t, err, "outside")
	_, err = FromGlobal(a, 2, 2, 0, -1) // col out of range
	wantErr(t, err, "outside")
	_, err = FromGlobal(nil, 2, 2, 0, 0)
	wantErr(t, err, "nil")
}

func TestFromGlobalDegenerateGrid(t *testing.T) {
	// A 1×1 grid owns everything: the local block is the whole matrix.
	a := indexedMatrix(3, 5)
	d, err := FromGlobal(a, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Local.Equal(a) {
		t.Fatal("1×1 grid block differs from the global matrix")
	}
}

func TestUnflattenRejectsLengthMismatch(t *testing.T) {
	_, err := Unflatten(2, 3, make([]float64, 5))
	wantErr(t, err, "5 values")
	_, err = Unflatten(2, 3, make([]float64, 7))
	wantErr(t, err, "7 values")
	_, err = Unflatten(-1, 3, nil)
	wantErr(t, err, "negative")
}

func TestUnflattenEmpty(t *testing.T) {
	m, err := Unflatten(0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.Cols != 4 {
		t.Fatalf("empty unflatten gave %dx%d", m.Rows, m.Cols)
	}
}

func TestAssembleGlobalRejectsBadPieces(t *testing.T) {
	ok := []*lin.Matrix{lin.NewMatrix(2, 2), lin.NewMatrix(2, 2)}
	_, err := AssembleGlobal(4, 2, 2, 1, ok[:1]) // wrong count
	wantErr(t, err, "pieces")
	_, err = AssembleGlobal(4, 2, 2, 1, []*lin.Matrix{ok[0], nil}) // nil piece
	wantErr(t, err, "nil piece")
	_, err = AssembleGlobal(4, 2, 2, 1, []*lin.Matrix{ok[0], lin.NewMatrix(1, 2)}) // wrong shape
	wantErr(t, err, "want 2x2")
	_, err = AssembleGlobal(5, 2, 2, 1, ok) // non-divisible global
	wantErr(t, err, "not divisible")
}

func TestScatterRejectsBadSetup(t *testing.T) {
	_, err := simmpi.RunWithOptions(2, simmpi.Options{Timeout: 30 * time.Second}, func(p *simmpi.Proc) error {
		comm := p.World()
		a := lin.NewMatrix(4, 4)

		// Grid does not match the communicator size: local error on every
		// rank, no communication attempted.
		_, err := Scatter(comm, 0, a, 4, 4, 2, 2)
		if err := errMentions(err, "want 4"); err != nil {
			return err
		}

		// Non-divisible dimensions: rejected before any traffic.
		_, err = Scatter(comm, 0, a, 3, 4, 2, 1)
		if err := errMentions(err, "not divisible"); err != nil {
			return err
		}

		// Root out of range.
		_, err = Scatter(comm, 5, a, 4, 4, 2, 1)
		if err := errMentions(err, "root 5"); err != nil {
			return err
		}

		// Root without a matrix, or with the wrong shape. Only rank 0
		// exercises these: they fail locally before any send, and rank 1
		// never posts a receive for them.
		if comm.Index() == 0 {
			_, err = Scatter(comm, 0, nil, 4, 4, 2, 1)
			if err := errMentions(err, "no global matrix"); err != nil {
				return err
			}
			_, err = Scatter(comm, 0, lin.NewMatrix(4, 2), 4, 4, 2, 1)
			if err := errMentions(err, "declared as"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherRejectsBadSetup(t *testing.T) {
	_, err := simmpi.RunWithOptions(2, simmpi.Options{Timeout: 30 * time.Second}, func(p *simmpi.Proc) error {
		comm := p.World()
		_, err := Gather(comm, lin.NewMatrix(2, 4), 4, 4, 2, 2) // wrong comm size
		if err := errMentions(err, "want 4"); err != nil {
			return err
		}
		_, err = Gather(comm, lin.NewMatrix(2, 4), 5, 4, 2, 1) // non-divisible
		if err := errMentions(err, "not divisible"); err != nil {
			return err
		}
		_, err = Gather(comm, lin.NewMatrix(3, 3), 4, 4, 2, 1) // wrong local shape
		if err := errMentions(err, "want 2x4"); err != nil {
			return err
		}
		_, err = Gather(comm, nil, 4, 4, 2, 1) // nil local
		if err := errMentions(err, "nil local"); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankScatterGather(t *testing.T) {
	// The 1×1 grid on one rank: both collectives degenerate to copies.
	a := indexedMatrix(4, 6)
	_, err := simmpi.RunWithOptions(1, simmpi.Options{Timeout: 30 * time.Second}, func(p *simmpi.Proc) error {
		d, err := Scatter(p.World(), 0, a, 4, 6, 1, 1)
		if err != nil {
			return err
		}
		if !d.Local.Equal(a) {
			return fmt.Errorf("1×1 scatter altered the matrix")
		}
		g, err := Gather(p.World(), d.Local, 4, 6, 1, 1)
		if err != nil {
			return err
		}
		if !g.Equal(a) {
			return fmt.Errorf("1×1 gather altered the matrix")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
