package dist

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"fmt"
	"testing"
	"time"

	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// shapes × grids exercised by the round-trip properties: square, tall,
// wide, and uneven shapes against every grid extent from degenerate 1×1
// up to c×d grids with c ≠ d both ways. Only divisible combinations are
// run; the rejection of the rest is covered in edge_test.go.
var (
	propShapes = []struct{ m, n int }{
		{1, 1}, {4, 4}, {8, 8},
		{64, 8}, {48, 4}, {12, 20}, {6, 10}, {30, 6},
	}
	propGrids = []struct{ pr, pc int }{
		{1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 2}, {2, 4}, {3, 2}, {4, 4}, {6, 2},
	}
)

// indexedMatrix returns an m×n matrix whose (i, j) element encodes its
// global coordinates, so any misplaced element is detected exactly.
func indexedMatrix(m, n int) *lin.Matrix {
	a := lin.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i*1000+j))
		}
	}
	return a
}

func TestFromGlobalCyclicIndexing(t *testing.T) {
	// The defining property of the layout: local (i, j) on rank (row, col)
	// is global (i·pr + row, j·pc + col).
	const m, n, pr, pc = 12, 8, 3, 2
	a := indexedMatrix(m, n)
	for row := 0; row < pr; row++ {
		for col := 0; col < pc; col++ {
			d, err := FromGlobal(a, pr, pc, row, col)
			if err != nil {
				t.Fatal(err)
			}
			if d.M != m || d.N != n || d.PR != pr || d.PC != pc || d.Row != row || d.Col != col {
				t.Fatalf("metadata %+v does not echo the call", d)
			}
			if d.Local.Rows != m/pr || d.Local.Cols != n/pc {
				t.Fatalf("local block %dx%d, want %dx%d", d.Local.Rows, d.Local.Cols, m/pr, n/pc)
			}
			for i := 0; i < d.Local.Rows; i++ {
				for j := 0; j < d.Local.Cols; j++ {
					if got, want := d.Local.At(i, j), a.At(i*pr+row, j*pc+col); got != want {
						t.Fatalf("rank (%d,%d) local (%d,%d) = %g, want global (%d,%d) = %g",
							row, col, i, j, got, i*pr+row, j*pc+col, want)
					}
				}
			}
		}
	}
}

func TestFromGlobalCopies(t *testing.T) {
	a := indexedMatrix(4, 4)
	d, err := FromGlobal(a, 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Local.Set(0, 0, -1)
	if a.At(0, 0) == -1 {
		t.Fatal("FromGlobal aliases the global matrix")
	}
}

func TestFromGlobalAssembleGlobalIdentity(t *testing.T) {
	// Property: extracting every rank's block and reassembling is the
	// identity, for all shape × grid combinations the layout admits.
	for _, s := range propShapes {
		for _, g := range propGrids {
			if s.m%g.pr != 0 || s.n%g.pc != 0 {
				continue
			}
			t.Run(fmt.Sprintf("%dx%d_on_%dx%d", s.m, s.n, g.pr, g.pc), func(t *testing.T) {
				a := indexedMatrix(s.m, s.n)
				pieces := make([]*lin.Matrix, g.pr*g.pc)
				for row := 0; row < g.pr; row++ {
					for col := 0; col < g.pc; col++ {
						d, err := FromGlobal(a, g.pr, g.pc, row, col)
						if err != nil {
							t.Fatal(err)
						}
						pieces[row*g.pc+col] = d.Local
					}
				}
				back, err := AssembleGlobal(s.m, s.n, g.pr, g.pc, pieces)
				if err != nil {
					t.Fatal(err)
				}
				if !back.Equal(a) {
					t.Fatalf("round trip altered the matrix:\n got %v\nwant %v", back, a)
				}
			})
		}
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	a := indexedMatrix(6, 5)
	b, err := Unflatten(6, 5, Flatten(a))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(a) {
		t.Fatal("Flatten/Unflatten round trip altered the matrix")
	}
}

func TestFlattenStridedView(t *testing.T) {
	// Flatten must compact a view whose stride exceeds its width.
	a := indexedMatrix(8, 8)
	v := a.View(2, 3, 4, 2)
	flat := Flatten(v)
	if len(flat) != 8 {
		t.Fatalf("flattened view has %d elements, want 8", len(flat))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			if flat[i*2+j] != a.At(2+i, 3+j) {
				t.Fatalf("flat[%d] = %g, want %g", i*2+j, flat[i*2+j], a.At(2+i, 3+j))
			}
		}
	}
}

func TestUnflattenCopiesWire(t *testing.T) {
	// Collective results can alias a sender's buffer (Bcast on the root
	// returns the input slice); Unflatten must not alias the wire data.
	flat := []float64{1, 2, 3, 4}
	m, err := Unflatten(2, 2, flat)
	if err != nil {
		t.Fatal(err)
	}
	flat[0] = -1
	if m.At(0, 0) == -1 {
		t.Fatal("Unflatten aliases the wire slice")
	}
}

func TestScatterGatherIdentity(t *testing.T) {
	// Property: Scatter from a root then Gather is the identity, every
	// rank's scattered block matches FromGlobal, and the gathered matrix
	// arrives on every rank — across tall, square, and uneven shapes.
	for _, tc := range []struct{ m, n, pr, pc int }{
		{4, 4, 1, 1},   // degenerate 1×1 grid
		{64, 8, 4, 2},  // tall
		{8, 8, 2, 2},   // square
		{12, 20, 3, 2}, // uneven, wide
		{30, 6, 6, 2},  // tall, c ≠ d
	} {
		t.Run(fmt.Sprintf("%dx%d_on_%dx%d", tc.m, tc.n, tc.pr, tc.pc), func(t *testing.T) {
			a := indexedMatrix(tc.m, tc.n)
			procs := tc.pr * tc.pc
			_, err := simmpi.RunWithOptions(procs, simmpi.Options{Timeout: 60 * time.Second}, func(p *simmpi.Proc) error {
				comm := p.World()
				var global *lin.Matrix
				if comm.Index() == 0 {
					global = a
				}
				d, err := Scatter(comm, 0, global, tc.m, tc.n, tc.pr, tc.pc)
				if err != nil {
					return err
				}
				want, err := FromGlobal(a, tc.pr, tc.pc, comm.Index()/tc.pc, comm.Index()%tc.pc)
				if err != nil {
					return err
				}
				if !d.Local.Equal(want.Local) {
					return fmt.Errorf("rank %d: scattered block differs from FromGlobal", comm.Index())
				}
				back, err := Gather(comm, d.Local, tc.m, tc.n, tc.pr, tc.pc)
				if err != nil {
					return err
				}
				if back == nil || !back.Equal(a) {
					return fmt.Errorf("rank %d: gathered matrix differs from the original", comm.Index())
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScatterFromNonZeroRoot(t *testing.T) {
	const m, n, pr, pc = 8, 6, 2, 3
	a := indexedMatrix(m, n)
	root := pr*pc - 1
	_, err := simmpi.RunWithOptions(pr*pc, simmpi.Options{Timeout: 60 * time.Second}, func(p *simmpi.Proc) error {
		comm := p.World()
		var global *lin.Matrix
		if comm.Index() == root {
			global = a
		}
		d, err := Scatter(comm, root, global, m, n, pr, pc)
		if err != nil {
			return err
		}
		want, err := FromGlobal(a, pr, pc, comm.Index()/pc, comm.Index()%pc)
		if err != nil {
			return err
		}
		if !d.Local.Equal(want.Local) {
			return fmt.Errorf("rank %d: wrong block from root %d", comm.Index(), root)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
