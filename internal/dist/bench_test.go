package dist

import (
	"fmt"
	"testing"
	"time"

	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// Benchmarks for the pack/unpack hot path at the paper's evaluation
// shapes (§VI factors 65536×512-class matrices on Stampede2). Later PRs
// optimizing the strided copies in FromGlobal/AssembleGlobal should beat
// these numbers without changing the round-trip tests.

var benchShapes = []struct {
	m, n   int
	pr, pc int
}{
	{65536, 512, 8, 4}, // paper-scale tall matrix on a d=8, c=4 slice
	{16384, 128, 4, 2}, // mid-size
	{1024, 1024, 4, 4}, // square
}

func BenchmarkFlatten(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(fmt.Sprintf("%dx%d", s.m/s.pr, s.n/s.pc), func(b *testing.B) {
			local := lin.RandomMatrix(s.m/s.pr, s.n/s.pc, 1)
			b.SetBytes(int64(local.Rows*local.Cols) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Flatten(local)
			}
		})
	}
}

func BenchmarkFlattenStrided(b *testing.B) {
	// The view path: stride > cols forces the row-by-row copy.
	for _, s := range benchShapes {
		b.Run(fmt.Sprintf("%dx%d", s.m/s.pr, s.n/s.pc), func(b *testing.B) {
			backing := lin.RandomMatrix(s.m/s.pr, s.n/s.pc+8, 1)
			local := backing.View(0, 0, s.m/s.pr, s.n/s.pc)
			b.SetBytes(int64(local.Rows*local.Cols) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Flatten(local)
			}
		})
	}
}

func BenchmarkUnflatten(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(fmt.Sprintf("%dx%d", s.m/s.pr, s.n/s.pc), func(b *testing.B) {
			flat := Flatten(lin.RandomMatrix(s.m/s.pr, s.n/s.pc, 1))
			b.SetBytes(int64(len(flat)) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Unflatten(s.m/s.pr, s.n/s.pc, flat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFromGlobal(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(fmt.Sprintf("%dx%d_on_%dx%d", s.m, s.n, s.pr, s.pc), func(b *testing.B) {
			global := lin.RandomMatrix(s.m, s.n, 1)
			b.SetBytes(int64(s.m/s.pr*s.n/s.pc) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := FromGlobal(global, s.pr, s.pc, 1%s.pr, 1%s.pc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAssembleGlobal(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(fmt.Sprintf("%dx%d_on_%dx%d", s.m, s.n, s.pr, s.pc), func(b *testing.B) {
			global := lin.RandomMatrix(s.m, s.n, 1)
			pieces := make([]*lin.Matrix, s.pr*s.pc)
			for r := range pieces {
				d, err := FromGlobal(global, s.pr, s.pc, r/s.pc, r%s.pc)
				if err != nil {
					b.Fatal(err)
				}
				pieces[r] = d.Local
			}
			b.SetBytes(int64(s.m*s.n) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AssembleGlobal(s.m, s.n, s.pr, s.pc, pieces); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGather(b *testing.B) {
	// End-to-end collective: every rank allgathers and reassembles the
	// full matrix. Smaller than paper scale — the simulated runtime holds
	// P copies of the global matrix in flight — but the same code path.
	for _, s := range []struct{ m, n, pr, pc int }{
		{8192, 64, 4, 2},
		{2048, 128, 2, 2},
	} {
		b.Run(fmt.Sprintf("%dx%d_on_%dx%d", s.m, s.n, s.pr, s.pc), func(b *testing.B) {
			global := lin.RandomMatrix(s.m, s.n, 1)
			b.SetBytes(int64(s.m*s.n) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := simmpi.RunWithOptions(s.pr*s.pc, simmpi.Options{Timeout: 120 * time.Second}, func(p *simmpi.Proc) error {
					d, err := FromGlobal(global, s.pr, s.pc, p.Rank()/s.pc, p.Rank()%s.pc)
					if err != nil {
						return err
					}
					_, err = Gather(p.World(), d.Local, s.m, s.n, s.pr, s.pc)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
