package dist

import (
	"fmt"

	"cacqr/internal/lin"
)

// Flatten copies a matrix (possibly a strided view) into the contiguous
// row-major []float64 wire format that simmpi collectives transport. The
// result has length Rows·Cols and shares no storage with m.
func Flatten(m *lin.Matrix) []float64 {
	out := make([]float64, m.Rows*m.Cols)
	if m.Stride == m.Cols {
		copy(out, m.Data[:m.Rows*m.Cols])
		return out
	}
	for i := 0; i < m.Rows; i++ {
		copy(out[i*m.Cols:(i+1)*m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// Unflatten interprets a wire-format slice as a rows × cols row-major
// matrix. The data is copied so the matrix owns its storage: collective
// results can alias a caller's send buffer (simmpi's Bcast returns the
// root's own slice on the root). The length must match exactly.
func Unflatten(rows, cols int, flat []float64) (*lin.Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("dist: Unflatten to negative shape %dx%d", rows, cols)
	}
	if len(flat) != rows*cols {
		return nil, fmt.Errorf("dist: Unflatten got %d values for a %dx%d matrix (want %d)", len(flat), rows, cols, rows*cols)
	}
	return lin.FromSlice(rows, cols, flat), nil
}
