package dist

import (
	"fmt"

	"cacqr/internal/lin"
	"cacqr/internal/transport"
)

// tagScatter tags Scatter's point-to-point sends. It lives well below the
// collectives' internal tag block (-1000…) so user tags never collide.
const tagScatter = -1100

// Scatter distributes the m × n matrix held by comm member root across
// the pr × pc process grid laid over comm in row-major order (member
// r ↔ grid coordinates (r/pc, r%pc), the ordering of a grid slice
// communicator). Every member receives its cyclic block, root included;
// only root reads global — other members pass nil. Root is charged one
// α + (m/pr)·(n/pc)·β send per non-root member, the cost of a
// straightforward MPI_Scatterv.
func Scatter(comm transport.Comm, root int, global *lin.Matrix, m, n, pr, pc int) (*Matrix, error) {
	if err := checkGrid(m, n, pr, pc); err != nil {
		return nil, err
	}
	if comm.Size() != pr*pc {
		return nil, fmt.Errorf("dist: scatter over %d ranks onto a %dx%d process grid (want %d)", comm.Size(), pr, pc, pr*pc)
	}
	if root < 0 || root >= comm.Size() {
		return nil, fmt.Errorf("dist: scatter root %d out of range %d", root, comm.Size())
	}
	me := comm.Index()
	if me == root {
		if global == nil {
			return nil, fmt.Errorf("dist: scatter root %d holds no global matrix", root)
		}
		if global.Rows != m || global.Cols != n {
			return nil, fmt.Errorf("dist: scatter of a %dx%d matrix declared as %dx%d", global.Rows, global.Cols, m, n)
		}
		var own *Matrix
		for r := 0; r < comm.Size(); r++ {
			blk, err := FromGlobal(global, pr, pc, r/pc, r%pc)
			if err != nil {
				return nil, err
			}
			if r == root {
				own = blk
				continue
			}
			// FromGlobal's block is compact (Stride == Cols) and Send
			// copies the payload, so its Data is already wire format.
			if err := comm.Send(r, tagScatter, blk.Local.Data); err != nil {
				return nil, err
			}
		}
		return own, nil
	}
	flat, err := comm.Recv(root, tagScatter)
	if err != nil {
		return nil, err
	}
	local, err := Unflatten(m/pr, n/pc, flat)
	if err != nil {
		return nil, err
	}
	return &Matrix{M: m, N: n, PR: pr, PC: pc, Row: me / pc, Col: me % pc, Local: local}, nil
}

// Gather reassembles the m × n global matrix from the cyclic blocks held
// by comm's members (member r ↔ grid coordinates (r/pc, r%pc)) and
// returns it on every member — an allgather, which is how the grid
// algorithms' callers verify factors on every rank without a second
// broadcast. local must be this rank's (m/pr) × (n/pc) block. The cost is
// the transport's Allgather of the full matrix: log₂P·α + m·n·δ(P)·β.
func Gather(comm transport.Comm, local *lin.Matrix, m, n, pr, pc int) (*lin.Matrix, error) {
	if err := checkGrid(m, n, pr, pc); err != nil {
		return nil, err
	}
	if comm.Size() != pr*pc {
		return nil, fmt.Errorf("dist: gather over %d ranks from a %dx%d process grid (want %d)", comm.Size(), pr, pc, pr*pc)
	}
	lr, lc := m/pr, n/pc
	if local == nil || local.Rows != lr || local.Cols != lc {
		got := "nil"
		if local != nil {
			got = fmt.Sprintf("%dx%d", local.Rows, local.Cols)
		}
		return nil, fmt.Errorf("dist: gather of a %s local block, want %dx%d", got, lr, lc)
	}
	flat, err := comm.Allgather(Flatten(local))
	if err != nil {
		return nil, err
	}
	blk := lr * lc
	if len(flat) != blk*comm.Size() {
		return nil, fmt.Errorf("dist: gathered %d values, want %d", len(flat), blk*comm.Size())
	}
	pieces := make([]*lin.Matrix, comm.Size())
	for r := range pieces {
		p, err := Unflatten(lr, lc, flat[r*blk:(r+1)*blk])
		if err != nil {
			return nil, err
		}
		pieces[r] = p
	}
	return AssembleGlobal(m, n, pr, pc, pieces)
}
