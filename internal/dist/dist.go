// Package dist implements the cyclic data distribution that the CA-CQR2
// reproduction's grid algorithms are written against: an M × N global
// matrix spread over a PR × PC process grid so that the rank at grid
// coordinates (row, col) owns every global element (i, j) with
//
//	i ≡ row (mod PR)  and  j ≡ col (mod PC),
//
// stored locally at (i/PR, j/PC). The layout is the rectangular analogue
// of the block-cyclic distributions of CAQR/TSQR (Demmel, Grigori,
// Hoemmen & Langou, arXiv:0808.2664, with block size 1) and of the 3D
// grid distribution of Ballard et al. (arXiv:1805.05278); the paper's
// Algorithms 1–3 and 8–9 all assume it.
//
// Cyclic ownership has two properties the algorithms lean on:
//
//   - Quadrants commute with distribution: the local block of a global
//     quadrant is the matching quadrant of the local block (whenever the
//     quadrant dimensions stay divisible by the grid extents), which is
//     what lets CFR3D recurse on views of its local block.
//   - Transposes stay cyclic: rank (row, col)'s block of Aᵀ is the local
//     transpose of rank (col, row)'s block of A, which is what makes the
//     paper's pairwise Transpose collective a single exchange.
//
// The package provides three layers:
//
//   - Pure layout arithmetic: FromGlobal extracts one rank's block,
//     AssembleGlobal inverts it, and the pair is an exact identity.
//   - Wire format: Flatten/Unflatten convert between *lin.Matrix (which
//     may be a strided view) and the contiguous row-major []float64 that
//     simmpi collectives move.
//   - Collectives: Scatter distributes a global matrix from a root rank
//     and Gather reassembles it on every rank, both built on
//     internal/simmpi primitives so their α-β cost is accounted like any
//     other communication.
//
// All functions reject shapes the layout cannot represent exactly: the
// grid extents must divide the matrix dimensions (the paper's m mod d = 0,
// n mod c = 0 requirement). There is no padding path — callers pick grids
// that divide their matrices, as the seed algorithms do.
package dist

import (
	"fmt"

	"cacqr/internal/lin"
)

// Matrix is one rank's view of a cyclically distributed global matrix.
type Matrix struct {
	M, N     int         // global dimensions
	PR, PC   int         // process-grid extents (rows × cols of ranks)
	Row, Col int         // this rank's grid coordinates
	Local    *lin.Matrix // the (M/PR) × (N/PC) local block
}

// checkGrid validates a process-grid shape against global dimensions.
func checkGrid(m, n, pr, pc int) error {
	if pr < 1 || pc < 1 {
		return fmt.Errorf("dist: invalid %dx%d process grid", pr, pc)
	}
	if m < 0 || n < 0 {
		return fmt.Errorf("dist: negative global dimensions %dx%d", m, n)
	}
	if m%pr != 0 || n%pc != 0 {
		return fmt.Errorf("dist: %dx%d matrix not divisible by %dx%d process grid (need pr | m and pc | n)", m, n, pr, pc)
	}
	return nil
}

// FromGlobal extracts the cyclic block of global owned by the rank at
// (row, col) on a pr × pc process grid: local element (i, j) is global
// element (i·pr + row, j·pc + col). The block is a copy; mutating it does
// not affect global. The grid extents must divide the global dimensions.
func FromGlobal(global *lin.Matrix, pr, pc, row, col int) (*Matrix, error) {
	if global == nil {
		return nil, fmt.Errorf("dist: FromGlobal of a nil matrix")
	}
	if err := checkGrid(global.Rows, global.Cols, pr, pc); err != nil {
		return nil, err
	}
	if row < 0 || row >= pr || col < 0 || col >= pc {
		return nil, fmt.Errorf("dist: grid coordinates (%d,%d) outside %dx%d grid", row, col, pr, pc)
	}
	lr, lc := global.Rows/pr, global.Cols/pc
	local := lin.NewMatrix(lr, lc)
	for i := 0; i < lr; i++ {
		src := global.Data[(i*pr+row)*global.Stride+col:]
		dst := local.Data[i*local.Stride : i*local.Stride+lc]
		for j := range dst {
			dst[j] = src[j*pc]
		}
	}
	return &Matrix{
		M: global.Rows, N: global.Cols,
		PR: pr, PC: pc,
		Row: row, Col: col,
		Local: local,
	}, nil
}

// AssembleGlobal reassembles the m × n global matrix from the pr·pc
// per-rank cyclic blocks, given in row-major grid order: pieces[r·pc + c]
// is the block of the rank at grid coordinates (r, c) — the ordering of a
// grid slice communicator (index y·pc + x). It is the exact inverse of
// FromGlobal over every rank.
func AssembleGlobal(m, n, pr, pc int, pieces []*lin.Matrix) (*lin.Matrix, error) {
	if err := checkGrid(m, n, pr, pc); err != nil {
		return nil, err
	}
	if len(pieces) != pr*pc {
		return nil, fmt.Errorf("dist: %d pieces for a %dx%d process grid, want %d", len(pieces), pr, pc, pr*pc)
	}
	lr, lc := m/pr, n/pc
	for r, p := range pieces {
		if p == nil {
			return nil, fmt.Errorf("dist: nil piece for rank %d", r)
		}
		if p.Rows != lr || p.Cols != lc {
			return nil, fmt.Errorf("dist: piece %d is %dx%d, want %dx%d", r, p.Rows, p.Cols, lr, lc)
		}
	}
	global := lin.NewMatrix(m, n)
	for row := 0; row < pr; row++ {
		for col := 0; col < pc; col++ {
			p := pieces[row*pc+col]
			for i := 0; i < lr; i++ {
				src := p.Data[i*p.Stride : i*p.Stride+lc]
				dst := global.Data[(i*pr+row)*global.Stride+col:]
				for j, v := range src {
					dst[j*pc] = v
				}
			}
		}
	}
	return global, nil
}
