package tsqr

import (
	"fmt"

	"cacqr/internal/dist"
	"cacqr/internal/lin"
	"cacqr/internal/transport"
)

// tags for tree traffic.
const (
	tagUp   = 100
	tagDown = 101
)

// Factor computes the reduced QR factorization of the m×n matrix whose
// m/P × n row block on this rank is aLocal (m ≥ n, blocked row
// distribution, P a power of two). It returns this rank's block of the
// explicit orthonormal factor and the replicated n×n R.
//
// Up-sweep: local Householder QR, then log₂P pairwise rounds combining
// [R_i; R_j] by 2n×n QR factorizations. Down-sweep: the tree's Q factors
// are pushed back so every rank can assemble its explicit Q block.
// Per-processor cost: 2·log₂P messages, ~2·log₂P·n² words, and
// 2(m/P)n² + O(n³·log P) flops.
//
// workers bounds the goroutines each rank's local level-3 kernels may
// use (≤ 1 = serial, the right default for simulated grids). Results are
// identical for any value.
func Factor(comm transport.Comm, aLocal *lin.Matrix, m, n, workers int) (qLocal, r *lin.Matrix, err error) {
	if workers < 1 {
		workers = 1
	}
	p := comm.Size()
	if m%p != 0 {
		return nil, nil, fmt.Errorf("tsqr: m=%d not divisible by P=%d", m, p)
	}
	if p&(p-1) != 0 {
		return nil, nil, fmt.Errorf("tsqr: P=%d must be a power of two", p)
	}
	if aLocal.Rows != m/p || aLocal.Cols != n {
		return nil, nil, fmt.Errorf("tsqr: local block %dx%d, want %dx%d", aLocal.Rows, aLocal.Cols, m/p, n)
	}
	if m/p < n {
		return nil, nil, fmt.Errorf("tsqr: local block %dx%d is not tall (need m/P ≥ n)", m/p, n)
	}
	proc := comm.Proc()
	rank := comm.Index()

	// Local QR of the m/P × n block.
	qLoc, rCur, err := lin.QR(aLocal)
	if err != nil {
		return nil, nil, err
	}
	if err := proc.Compute(lin.HouseholderQRFlops(aLocal.Rows, n)); err != nil {
		return nil, nil, err
	}

	// Up-sweep: at level k the survivors are ranks ≡ 0 (mod 2^{k+1});
	// each receives its partner's R, stacks and refactors, remembering
	// the 2n×n tree Q for the down-sweep.
	type treeNode struct {
		q *lin.Matrix // 2n×n orthonormal factor of the stacked QR
	}
	var path []treeNode
	levels := 0
	for s := 1; s < p; s <<= 1 {
		levels++
	}
	active := true
	for k := 0; k < levels; k++ {
		if !active {
			continue
		}
		step := 1 << k
		if rank%(2*step) == 0 {
			partner := rank + step
			flat, err := comm.Recv(partner, tagUp+k)
			if err != nil {
				return nil, nil, err
			}
			rPartner, err := dist.Unflatten(n, n, flat)
			if err != nil {
				return nil, nil, err
			}
			stacked := lin.NewMatrix(2*n, n)
			stacked.View(0, 0, n, n).CopyFrom(rCur)
			stacked.View(n, 0, n, n).CopyFrom(rPartner)
			qk, rNext, err := lin.QR(stacked)
			if err != nil {
				return nil, nil, err
			}
			if err := proc.Compute(lin.HouseholderQRFlops(2*n, n)); err != nil {
				return nil, nil, err
			}
			path = append(path, treeNode{q: qk})
			rCur = rNext
		} else {
			survivor := rank - step
			if err := comm.Send(survivor, tagUp+k, dist.Flatten(rCur)); err != nil {
				return nil, nil, err
			}
			active = false
		}
	}

	// Down-sweep: rank 0 starts with B = I; at each level the survivor
	// splits its tree Q into top/bottom n×n blocks, keeps Q_top·B and
	// sends Q_bot·B to the partner. Afterwards Q_local·B is this rank's
	// block of the explicit Q.
	var b *lin.Matrix
	if rank == 0 {
		b = lin.Identity(n)
	}
	for k := levels - 1; k >= 0; k-- {
		step := 1 << k
		if rank%(2*step) == 0 && rank+step < p {
			// Pop this level's tree node (pushed in ascending order).
			node := path[len(path)-1]
			path = path[:len(path)-1]
			top := node.q.View(0, 0, n, n)
			bot := node.q.View(n, 0, n, n)
			bTop := lin.MatMulParallel(workers, top.Clone(), b)
			bBot := lin.MatMulParallel(workers, bot.Clone(), b)
			if err := proc.Compute(2 * lin.GemmFlops(n, n, n)); err != nil {
				return nil, nil, err
			}
			if err := comm.Send(rank+step, tagDown+k, dist.Flatten(bBot)); err != nil {
				return nil, nil, err
			}
			b = bTop
		} else if rank%(2*step) == step {
			flat, err := comm.Recv(rank-step, tagDown+k)
			if err != nil {
				return nil, nil, err
			}
			b, err = dist.Unflatten(n, n, flat)
			if err != nil {
				return nil, nil, err
			}
		}
	}

	// Broadcast the final R from rank 0 so every rank returns it (the
	// same contract as 1D-CQR2).
	var rRoot []float64
	if rank == 0 {
		rRoot = dist.Flatten(rCur)
	}
	rFlat, err := comm.Bcast(0, rRoot)
	if err != nil {
		return nil, nil, err
	}
	rOut, err := dist.Unflatten(n, n, rFlat)
	if err != nil {
		return nil, nil, err
	}

	q := lin.MatMulParallel(workers, qLoc, b)
	if err := proc.Compute(lin.GemmFlops(aLocal.Rows, n, n)); err != nil {
		return nil, nil, err
	}

	// Normalize signs so R has a non-negative diagonal, making the
	// result directly comparable with the CholeskyQR family.
	lin.NormalizeSigns(q, rOut)
	return q, rOut, nil
}
