package tsqr

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func runTSQR(t *testing.T, p, m, n int, a *lin.Matrix) *simmpi.Stats {
	t.Helper()
	st, err := simmpi.RunWithOptions(p, simmpi.Options{Timeout: 120 * time.Second}, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		q, r, err := Factor(pr.World(), local, m, n, 1)
		if err != nil {
			return err
		}
		if !r.IsUpperTriangular(1e-12) {
			return errors.New("R not upper triangular")
		}
		// Local block equation.
		if !lin.MatMul(q, r).EqualWithin(a.View(pr.Rank()*(m/p), 0, m/p, n), 1e-9) {
			return errors.New("local residual too large")
		}
		// Assemble Q and verify orthogonality + global residual.
		flat, err := pr.World().Allgather(dist.Flatten(q))
		if err != nil {
			return err
		}
		qFull, err := dist.Unflatten(m, n, flat)
		if err != nil {
			return err
		}
		if e := lin.OrthogonalityError(qFull); e > 1e-11 {
			return fmt.Errorf("orthogonality %g", e)
		}
		if e := lin.ResidualNorm(a, qFull, r); e > 1e-11 {
			return fmt.Errorf("residual %g", e)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFactorAcrossRankCounts(t *testing.T) {
	for _, tc := range []struct{ p, m, n int }{
		{1, 16, 4},
		{2, 16, 4},
		{4, 32, 4},
		{8, 64, 8},
		{16, 128, 4},
	} {
		t.Run(fmt.Sprintf("P%d_%dx%d", tc.p, tc.m, tc.n), func(t *testing.T) {
			a := lin.RandomMatrix(tc.m, tc.n, int64(tc.p))
			runTSQR(t, tc.p, tc.m, tc.n, a)
		})
	}
}

func TestFactorMatchesSequentialR(t *testing.T) {
	const p, m, n = 4, 64, 8
	a := lin.RandomMatrix(m, n, 7)
	_, rSeq, err := lin.QR(a)
	if err != nil {
		t.Fatal(err)
	}
	_, err = simmpi.RunWithOptions(p, simmpi.Options{Timeout: 60 * time.Second}, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		_, r, err := Factor(pr.World(), local, m, n, 1)
		if err != nil {
			return err
		}
		if !r.EqualWithin(rSeq, 1e-9) {
			return errors.New("R differs from sequential Householder")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFactorIllConditionedStable(t *testing.T) {
	// TSQR's selling point: unconditional stability where CholeskyQR2
	// fails (κ ≈ 1e10 ⇒ κ² overflows double precision's 1/ε).
	const p, m, n = 4, 128, 8
	a := lin.RandomWithCond(m, n, 1e10, 3)
	runTSQR(t, p, m, n, a)
}

func TestFactorValidation(t *testing.T) {
	_, err := simmpi.RunWithOptions(3, simmpi.Options{Timeout: 30 * time.Second}, func(pr *simmpi.Proc) error {
		// Non-power-of-two P.
		if _, _, err := Factor(pr.World(), lin.NewMatrix(4, 2), 12, 2, 1); err == nil {
			return errors.New("P=3 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = simmpi.RunWithOptions(2, simmpi.Options{Timeout: 30 * time.Second}, func(pr *simmpi.Proc) error {
		// m not divisible.
		if _, _, err := Factor(pr.World(), lin.NewMatrix(3, 2), 7, 2, 1); err == nil {
			return errors.New("indivisible m accepted")
		}
		// Local block not tall enough.
		if _, _, err := Factor(pr.World(), lin.NewMatrix(2, 4), 4, 4, 1); err == nil {
			return errors.New("short local block accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommunicationScalesLogarithmically(t *testing.T) {
	// Words per rank should grow like n²·log P (tree depth), not n²·P.
	const m, n = 256, 8
	a := lin.RandomMatrix(m, n, 9)
	words := map[int]int64{}
	for _, p := range []int{2, 4, 8, 16} {
		st, err := simmpi.RunWithOptions(p, simmpi.Options{
			Cost:    simmpi.CostParams{Alpha: 1, Beta: 1},
			Timeout: 60 * time.Second,
		}, func(pr *simmpi.Proc) error {
			local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
			_, _, err := Factor(pr.World(), local, m, n, 1)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		words[p] = st.MaxWords
	}
	// Rank 0 is the busiest: its words grow by about one n² tree level
	// plus the extra bcast share per doubling — far below 2x per
	// doubling (linear growth).
	for p := 4; p <= 16; p *= 2 {
		growth := float64(words[p]) / float64(words[p/2])
		if growth > 1.8 {
			t.Fatalf("P=%d: words grew %.2fx per doubling (not logarithmic): %v", p, growth, words)
		}
	}
}
