package tsqr

import (
	"fmt"

	"cacqr/internal/dist"
	"cacqr/internal/lin"
	"cacqr/internal/transport"
)

// BlockedFactor lifts TSQR's m/P ≥ n restriction by processing the
// columns in panels of width b (m/P ≥ b suffices): each panel is factored
// by the reduction-tree TSQR, then the trailing columns receive a
// reorthogonalized block-Gram-Schmidt (BGS2) update, applied twice per
// the classical "twice is enough" rule so cross-panel orthogonality
// stays at O(ε):
//
//	R_k,rest  = Q_kᵀ · A_rest     (local product + Allreduce over rows)
//	A_rest   -= Q_k · R_k,rest    (local)
//	(repeat once, accumulating into R_k,rest)
//
// This is the structure of communication-avoiding 2D QR algorithms
// (the paper's reference [5]) restricted to a 1D row distribution, and
// doubles as a second stable baseline next to PGEQRF.
//
// Returns this rank's m/P × n block of Q and the replicated n×n R.
// workers is threaded to the per-panel Factor calls and the local BGS2
// products (≤ 1 = serial).
func BlockedFactor(comm transport.Comm, aLocal *lin.Matrix, m, n, b, workers int) (qLocal, r *lin.Matrix, err error) {
	if workers < 1 {
		workers = 1
	}
	p := comm.Size()
	if b < 1 || n%b != 0 {
		return nil, nil, fmt.Errorf("tsqr: panel width %d must divide n=%d", b, n)
	}
	if m%p != 0 || aLocal.Rows != m/p || aLocal.Cols != n {
		return nil, nil, fmt.Errorf("tsqr: local block %dx%d for m=%d n=%d P=%d", aLocal.Rows, aLocal.Cols, m, n, p)
	}
	if m/p < b {
		return nil, nil, fmt.Errorf("tsqr: local rows %d below panel width %d", m/p, b)
	}
	proc := comm.Proc()

	work := aLocal.Clone()
	q := lin.NewMatrix(aLocal.Rows, n)
	r = lin.NewMatrix(n, n)

	np := n / b
	for k := 0; k < np; k++ {
		panel := work.View(0, k*b, work.Rows, b).Clone()
		qk, rkk, err := Factor(comm, panel, m, b, workers)
		if err != nil {
			return nil, nil, fmt.Errorf("tsqr: panel %d: %w", k, err)
		}
		q.View(0, k*b, q.Rows, b).CopyFrom(qk)
		r.View(k*b, k*b, b, b).CopyFrom(rkk)

		rest := n - (k+1)*b
		if rest == 0 {
			continue
		}
		restView := work.View(0, (k+1)*b, work.Rows, rest)

		// BGS2: project and update twice, accumulating the coefficients.
		rkRest := lin.NewMatrix(b, rest)
		for pass := 0; pass < 2; pass++ {
			partial := lin.NewMatrix(b, rest)
			lin.GemmParallel(workers, true, false, 1, qk, restView, 0, partial)
			if err := proc.Compute(lin.GemmFlops(b, rest, qk.Rows)); err != nil {
				return nil, nil, err
			}
			flat, err := comm.Allreduce(dist.Flatten(partial))
			if err != nil {
				return nil, nil, err
			}
			coeff, err := dist.Unflatten(b, rest, flat)
			if err != nil {
				return nil, nil, err
			}
			rkRest.Add(coeff)
			lin.GemmParallel(workers, false, false, -1, qk, coeff, 1, restView)
			if err := proc.Compute(lin.GemmFlops(qk.Rows, rest, b)); err != nil {
				return nil, nil, err
			}
		}
		r.View(k*b, (k+1)*b, b, rest).CopyFrom(rkRest)
	}
	return q, r, nil
}
