package tsqr

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func runBlocked(t *testing.T, p, m, n, b int, a *lin.Matrix) {
	t.Helper()
	_, err := simmpi.RunWithOptions(p, simmpi.Options{Timeout: 240 * time.Second}, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		q, r, err := BlockedFactor(pr.World(), local, m, n, b, 1)
		if err != nil {
			return err
		}
		if !r.IsUpperTriangular(1e-11 * (1 + lin.MaxAbs(r))) {
			return errors.New("R not upper triangular")
		}
		flat, err := pr.World().Allgather(dist.Flatten(q))
		if err != nil {
			return err
		}
		qFull, err := dist.Unflatten(m, n, flat)
		if err != nil {
			return err
		}
		if e := lin.OrthogonalityError(qFull); e > 1e-10 {
			return fmt.Errorf("orthogonality %g", e)
		}
		if e := lin.ResidualNorm(a, qFull, r); e > 1e-10 {
			return fmt.Errorf("residual %g", e)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockedFactorShapes(t *testing.T) {
	for _, tc := range []struct{ p, m, n, b int }{
		{2, 16, 8, 4},  // m/P = 8 ≥ b = 4 < n = 8: plain TSQR impossible
		{4, 32, 16, 4}, // several panels
		{4, 32, 8, 8},  // single panel (degenerates to TSQR)
		{8, 64, 24, 4}, // n beyond any single rank's rows? m/P=8 < n=24
		{1, 12, 12, 3}, // sequential, square
	} {
		t.Run(fmt.Sprintf("P%d_%dx%d_b%d", tc.p, tc.m, tc.n, tc.b), func(t *testing.T) {
			a := lin.RandomMatrix(tc.m, tc.n, int64(tc.p*tc.b))
			runBlocked(t, tc.p, tc.m, tc.n, tc.b, a)
		})
	}
}

func TestBlockedFactorWidensTSQRRange(t *testing.T) {
	// n = 24 with m/P = 8: Factor must reject, BlockedFactor must work.
	const p, m, n, b = 8, 64, 24, 4
	a := lin.RandomMatrix(m, n, 7)
	_, err := simmpi.RunWithOptions(p, simmpi.Options{Timeout: 120 * time.Second}, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		if _, _, err := Factor(pr.World(), local, m, n, 1); err == nil {
			return errors.New("plain TSQR accepted m/P < n")
		}
		_, _, err := BlockedFactor(pr.World(), local, m, n, b, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockedFactorMatchesSequentialR(t *testing.T) {
	const p, m, n, b = 4, 32, 8, 4
	a := lin.RandomMatrix(m, n, 11)
	_, rSeq, err := lin.QR(a)
	if err != nil {
		t.Fatal(err)
	}
	_, err = simmpi.RunWithOptions(p, simmpi.Options{Timeout: 120 * time.Second}, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		_, r, err := BlockedFactor(pr.World(), local, m, n, b, 1)
		if err != nil {
			return err
		}
		if !r.EqualWithin(rSeq, 1e-9*(1+lin.MaxAbs(rSeq))) {
			return errors.New("R differs from sequential Householder")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockedFactorIllConditioned(t *testing.T) {
	// Stability carries over from the TSQR panels: κ=1e10 still yields
	// an orthonormal Q (where CholeskyQR2 would fail).
	const p, m, n, b = 4, 64, 8, 4
	a := lin.RandomWithCond(m, n, 1e10, 13)
	runBlocked(t, p, m, n, b, a)
}

func TestBlockedFactorValidation(t *testing.T) {
	_, err := simmpi.RunWithOptions(2, simmpi.Options{Timeout: 30 * time.Second}, func(pr *simmpi.Proc) error {
		if _, _, err := BlockedFactor(pr.World(), lin.NewMatrix(4, 6), 8, 6, 4, 1); err == nil {
			return errors.New("b∤n accepted")
		}
		if _, _, err := BlockedFactor(pr.World(), lin.NewMatrix(2, 4), 4, 4, 4, 1); err == nil {
			return errors.New("m/P < b accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
