// Package tsqr implements the communication-optimal Tall-Skinny QR
// factorization (Demmel et al., the paper's reference [5]) over a 1D
// processor grid: a binary-reduction tree of small Householder
// factorizations. It is the established alternative to CholeskyQR2 in the
// tall-skinny regime — unconditionally stable, but with a deeper critical
// path (the log P tree of QR factorizations versus CQR2's single
// Allreduce), which is exactly the tradeoff the paper's reference [4]
// quantifies.
//
// Factor is the classic m/P ≥ n tree; BlockedFactor is the blocked
// variant that only needs m/P ≥ b for a chosen panel width b.
package tsqr
