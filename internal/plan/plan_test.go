package plan

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"strings"
	"testing"

	"cacqr/internal/costmodel"
)

// bruteForce minimizes the validated cost model directly, scanning the
// same candidate space as Enumerate but through its own loops over the
// costmodel API, keeping the first strict minimum in canonical order.
// It is the test's independent referee for the Best property.
func bruteForce(t *testing.T, req Request) (Plan, bool) {
	t.Helper()
	mach := req.Machine
	if mach.PeakNodeFlops == 0 {
		mach = costmodel.Stampede2
	}
	var best Plan
	found := false
	consider := func(p Plan, mem int64, err error) {
		if err != nil {
			return
		}
		p.MemWords = mem
		if req.MemBudget > 0 && 8*mem > req.MemBudget {
			return
		}
		p.Seconds = mach.Time(p.Cost)
		if !found || p.Seconds < best.Seconds {
			best, found = p, true
		}
	}

	// Sequential.
	if c, err := costmodel.OneDCQR2(req.M, req.N, 1); err == nil {
		mem, merr := costmodel.OneDCQR2Memory(req.M, req.N, 1)
		consider(Plan{Variant: Sequential, C: 1, D: 1, Procs: 1, Cost: c}, mem, merr)
	}
	// 1D-CQR2.
	for p := 2; p <= req.Procs; p++ {
		if req.M%p != 0 {
			continue
		}
		c, err := costmodel.OneDCQR2(req.M, req.N, p)
		if err != nil {
			continue
		}
		mem, merr := costmodel.OneDCQR2Memory(req.M, req.N, p)
		consider(Plan{Variant: OneD, C: 1, D: p, Procs: p, Cost: c}, mem, merr)
	}
	// CA-CQR2 grids and panel widths.
	for c := 2; c*c*c <= req.Procs; c++ {
		if req.N%c != 0 {
			continue
		}
		for d := c; c*d*c <= req.Procs; d += c {
			if req.M%d != 0 {
				continue
			}
			prm := costmodel.CACQRParams{C: c, D: d, BaseSize: req.BaseSize, InverseDepth: req.InverseDepth}
			if cc, err := costmodel.CACQR2(req.M, req.N, prm); err == nil {
				mem, merr := costmodel.CACQR2Memory(req.M, req.N, prm)
				consider(Plan{Variant: CACQR2, C: c, D: d, Procs: c * d * c, Cost: cc}, mem, merr)
			}
			for b := c; b < req.N; b += c {
				if req.N%b != 0 {
					continue
				}
				pc, err := costmodel.PanelCACQR2(req.M, req.N, b, prm)
				if err != nil {
					continue
				}
				mem, merr := costmodel.PanelCACQR2Memory(req.M, req.N, b, prm)
				consider(Plan{Variant: PanelCACQR2, C: c, D: d, PanelWidth: b, Procs: c * d * c, Cost: pc}, mem, merr)
			}
		}
	}
	// ShiftedCQR3.
	for p := 1; p <= req.Procs; p++ {
		if req.M%p != 0 {
			continue
		}
		c, err := costmodel.OneDShiftedCQR3(req.M, req.N, p)
		if err != nil {
			continue
		}
		mem, merr := costmodel.OneDShiftedCQR3Memory(req.M, req.N, p)
		consider(Plan{Variant: ShiftedCQR3, C: 1, D: p, Procs: p, Cost: c}, mem, merr)
	}
	// TSQR.
	for p := 2; p <= req.Procs; p *= 2 {
		if req.M%p != 0 || req.M/p < req.N {
			continue
		}
		c, err := costmodel.TSQR(req.M, req.N, p)
		if err != nil {
			continue
		}
		mem, merr := costmodel.TSQRMemory(req.M, req.N, p)
		consider(Plan{Variant: TSQR, C: 1, D: p, Procs: p, Cost: c}, mem, merr)
	}
	// Blocked TSQR, exactly where the plain tree is infeasible.
	for p := 2; p <= req.Procs; p *= 2 {
		if req.M%p != 0 || req.M/p >= req.N {
			continue
		}
		for b := 1; b < req.N && b <= req.M/p; b++ {
			if req.N%b != 0 {
				continue
			}
			c, err := costmodel.BlockedTSQR(req.M, req.N, b, p)
			if err != nil {
				continue
			}
			mem, merr := costmodel.BlockedTSQRMemory(req.M, req.N, b, p)
			consider(Plan{Variant: TSQR, C: 1, D: p, PanelWidth: b, Procs: p, Cost: c}, mem, merr)
		}
	}
	return best, found
}

// sweep covers the paper's regimes: very tall (1D territory), tall,
// moderately rectangular, and near-square, over 1D-friendly and
// cube-friendly processor counts, including a non-power-of-two.
var sweep = []struct {
	m, n, procs int
}{
	{1 << 16, 32, 64},
	{1 << 16, 32, 8},
	{1 << 14, 256, 64},
	{1 << 14, 256, 16},
	{4096, 1024, 64},
	{4096, 1024, 128},
	{2048, 2048, 8},
	{2048, 2048, 64},
	{1 << 15, 64, 27},
	{1 << 13, 512, 250},
	{960, 96, 54},
	{1 << 20, 64, 512},
}

func TestBestMatchesBruteForce(t *testing.T) {
	for _, tc := range sweep {
		req := Request{M: tc.m, N: tc.n, Procs: tc.procs}
		want, ok := bruteForce(t, req)
		if !ok {
			t.Fatalf("%dx%d p=%d: brute force found nothing", tc.m, tc.n, tc.procs)
		}
		got, err := Best(req)
		if err != nil {
			t.Fatalf("%dx%d p=%d: %v", tc.m, tc.n, tc.procs, err)
		}
		if got.Variant != want.Variant || got.C != want.C || got.D != want.D ||
			got.PanelWidth != want.PanelWidth || got.Procs != want.Procs {
			t.Fatalf("%dx%d p=%d: Best = %v, brute force = %v", tc.m, tc.n, tc.procs, got, want)
		}
		if got.Seconds != want.Seconds {
			t.Fatalf("%dx%d p=%d: Best seconds %g != brute force %g", tc.m, tc.n, tc.procs, got.Seconds, want.Seconds)
		}
	}
}

func TestBestMatchesBruteForceOnBlueWaters(t *testing.T) {
	// Machine constants shift the α-β-γ tradeoff; the property must hold
	// for both paper platforms.
	for _, tc := range sweep[:6] {
		req := Request{M: tc.m, N: tc.n, Procs: tc.procs, Machine: costmodel.BlueWaters}
		want, ok := bruteForce(t, req)
		if !ok {
			t.Fatalf("%dx%d p=%d: brute force found nothing", tc.m, tc.n, tc.procs)
		}
		got, err := Best(req)
		if err != nil {
			t.Fatalf("%dx%d p=%d: %v", tc.m, tc.n, tc.procs, err)
		}
		if got.Variant != want.Variant || got.C != want.C || got.D != want.D || got.PanelWidth != want.PanelWidth {
			t.Fatalf("%dx%d p=%d: Best = %v, brute force = %v", tc.m, tc.n, tc.procs, got, want)
		}
	}
}

func TestMemoryBudgetNeverExceeded(t *testing.T) {
	for _, tc := range sweep {
		req := Request{M: tc.m, N: tc.n, Procs: tc.procs}
		plans, err := Enumerate(req)
		if err != nil {
			t.Fatal(err)
		}
		// Budget squeezed to the median plan's footprint: every returned
		// plan must fit, and Best under the budget must again equal the
		// budget-aware brute force.
		budget := plans[len(plans)/2].MemBytes()
		req.MemBudget = budget
		got, err := Enumerate(req)
		if err != nil {
			t.Fatalf("%dx%d p=%d budget %d: %v", tc.m, tc.n, tc.procs, budget, err)
		}
		for _, p := range got {
			if p.MemBytes() > budget {
				t.Fatalf("%dx%d p=%d: plan %v exceeds budget %d", tc.m, tc.n, tc.procs, p, budget)
			}
		}
		want, ok := bruteForce(t, req)
		if !ok {
			t.Fatalf("budgeted brute force found nothing")
		}
		best, err := Best(req)
		if err != nil {
			t.Fatal(err)
		}
		if best.Variant != want.Variant || best.C != want.C || best.D != want.D || best.PanelWidth != want.PanelWidth {
			t.Fatalf("%dx%d p=%d budget %d: Best = %v, brute force = %v", tc.m, tc.n, tc.procs, budget, best, want)
		}
	}
}

func TestRankingIsSorted(t *testing.T) {
	plans, err := Enumerate(Request{M: 4096, N: 256, Procs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 3 {
		t.Fatalf("only %d plans for a shape with many feasible grids", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Seconds < plans[i-1].Seconds {
			t.Fatalf("ranking not sorted at %d: %g after %g", i, plans[i].Seconds, plans[i-1].Seconds)
		}
	}
	// MaxPlans caps the list from the top.
	capped, err := Enumerate(Request{M: 4096, N: 256, Procs: 64, MaxPlans: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 || capped[0] != plans[0] {
		t.Fatalf("MaxPlans cap broken: %d plans, first %v vs %v", len(capped), capped[0], plans[0])
	}
}

func TestVeryTallPrefersOneDRegime(t *testing.T) {
	// The paper's 1D regime: m ≫ n on a modest machine-sized p. The
	// planner must pick a c = 1 family member, not a replicated grid.
	best, err := Best(Request{M: 1 << 20, N: 16, Procs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if best.C != 1 {
		t.Fatalf("very tall matrix chose c=%d (%v)", best.C, best)
	}
}

func TestNearSquareRaisesC(t *testing.T) {
	// §IV: as the matrix approaches square, the best c moves from 1
	// toward d. Compare the best grid-family c across aspect ratios at
	// fixed p; the near-square shape must use strictly more replication.
	tall, err := Best(Request{M: 1 << 20, N: 16, Procs: 4096})
	if err != nil {
		t.Fatal(err)
	}
	square, err := Best(Request{M: 1 << 13, N: 1 << 12, Procs: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if square.C <= tall.C {
		t.Fatalf("near-square c=%d not above tall c=%d (%v vs %v)", square.C, tall.C, square, tall)
	}
}

func TestPGEQRFReferenceRow(t *testing.T) {
	req := Request{M: 4096, N: 256, Procs: 64, IncludeBaselines: true}
	plans, err := Enumerate(req)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Plan
	for i := range plans {
		if plans[i].Variant == PGEQRF {
			ref = &plans[i]
		}
	}
	if ref == nil {
		t.Fatal("no PGEQRF reference row with IncludeBaselines")
	}
	if !ref.Executable {
		t.Fatal("PGEQRF row no longer executable (every priced row must dispatch)")
	}
	best, err := Best(req)
	if err != nil {
		t.Fatal(err)
	}
	if best.Variant == PGEQRF {
		t.Fatal("Best returned the baseline reference")
	}
}

func TestEnumerateErrors(t *testing.T) {
	if _, err := Enumerate(Request{M: 8, N: 16, Procs: 4}); err == nil {
		t.Fatal("m < n accepted")
	}
	if _, err := Enumerate(Request{M: 0, N: 0, Procs: 4}); err == nil {
		t.Fatal("empty shape accepted")
	}
	if _, err := Enumerate(Request{M: 64, N: 8, Procs: 0}); err == nil {
		t.Fatal("zero procs accepted")
	}
	// A budget below even the sequential footprint leaves nothing.
	if _, err := Enumerate(Request{M: 64, N: 8, Procs: 4, MemBudget: 8}); err == nil {
		t.Fatal("infeasible budget accepted")
	}
}

func TestPlanStringsAreInformative(t *testing.T) {
	best, err := Best(Request{M: 4096, N: 256, Procs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if best.Rationale == "" {
		t.Fatal("empty rationale")
	}
	s := best.String()
	if !strings.Contains(s, string(best.Variant)) || !strings.Contains(s, "α=") {
		t.Fatalf("String() missing variant or cost: %q", s)
	}
}
