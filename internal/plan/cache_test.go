package plan

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"testing"

	"cacqr/internal/costmodel"
)

func TestKappaBucketBoundaries(t *testing.T) {
	cases := []struct {
		cond float64
		want int
	}{
		{0, 0},         // unknown
		{1, 0},         // perfectly conditioned
		{1.0000001, 1}, // just past the no-information edge
		{10, 1},        // decade edges are inclusive on the right
		{10.0001, 2},   // …and exclusive on the left
		{1e7, 7},       // the CQR2-family routing decade
		{1.0001e7, 8},  //
		{9.9e9, 10},    // interior of a decade
		{1e16, 16},     // last finite bucket edge
		{1.1e16, MaxKappaBucket},
		{math.Inf(1), MaxKappaBucket}, // rank-deficient estimate
		{math.NaN(), MaxKappaBucket},  // conservative for garbage
		{-5, MaxKappaBucket},          // …including negative estimates
	}
	for _, c := range cases {
		if got := KappaBucket(c.cond); got != c.want {
			t.Errorf("KappaBucket(%g) = %d, want %d", c.cond, got, c.want)
		}
	}
}

func TestBucketCeilCoversBucket(t *testing.T) {
	// Every κ must land in a bucket whose ceiling is ≥ κ, so planning at
	// the ceiling is conservative for the whole bucket.
	for _, cond := range []float64{1.5, 42, 9.99e6, 1e7, 3e9, 5e12, 1e16, 7e16} {
		b := KappaBucket(cond)
		if ceil := BucketCeil(b); ceil < cond {
			t.Errorf("BucketCeil(%d) = %g < κ = %g", b, ceil, cond)
		}
	}
	if BucketCeil(0) != 0 {
		t.Errorf("BucketCeil(0) = %g, want 0 (no information)", BucketCeil(0))
	}
}

// TestBucketEdgePlanValidInsideBucket is the serving-layer contract:
// a plan produced at the bucket's upper edge must pass the condition
// gate at every κ inside the bucket. PredictOrthogonality is monotone in
// κ for every variant, so checking the edge against interior points over
// the routing-relevant decades suffices.
func TestBucketEdgePlanValidInsideBucket(t *testing.T) {
	m, n := 4096, 64
	variants := []struct {
		v  Variant
		pw int
	}{{Sequential, 0}, {OneD, 0}, {CACQR2, 0}, {ShiftedCQR3, 0}, {TSQR, 0}, {TSQR, 8}, {PGEQRF, 8}}
	for b := 1; b <= MaxKappaBucket; b++ {
		edge := BucketCeil(b)
		interior := []float64{edge / 9, edge / 2, edge}
		for _, va := range variants {
			atEdge := PredictOrthogonality(va.v, m, n, va.pw, edge)
			for _, k := range interior {
				if KappaBucket(k) != b {
					continue // κ/9 can fall into the previous bucket
				}
				if got := PredictOrthogonality(va.v, m, n, va.pw, k); got > atEdge {
					t.Errorf("bucket %d: %s(b=%d) loss at κ=%g is %g > edge loss %g",
						b, va.v, va.pw, k, got, atEdge)
				}
			}
		}
	}
}

func TestKeyForBucketsAndNormalizes(t *testing.T) {
	base := Request{M: 8192, N: 64, Procs: 16}
	// Same decade → same key; different decade → different key.
	a := base
	a.CondEst = 2e9
	b := base
	b.CondEst = 9e9
	if KeyFor(a) != KeyFor(b) {
		t.Errorf("κ=2e9 and κ=9e9 should share a cache key: %v vs %v", KeyFor(a), KeyFor(b))
	}
	c := base
	c.CondEst = 2e10
	if KeyFor(a) == KeyFor(c) {
		t.Errorf("κ=2e9 and κ=2e10 must not share a cache key")
	}
	// The zero machine and an explicit Stampede2 plan identically, so
	// they must share a key.
	d := base
	d.Machine = costmodel.Stampede2
	if KeyFor(base) != KeyFor(d) {
		t.Errorf("zero machine and explicit Stampede2 should share a key")
	}
	e := base
	e.Machine = costmodel.BlueWaters
	if KeyFor(base) == KeyFor(e) {
		t.Errorf("different machines must not share a key")
	}
	// Shape, budget, and legend knobs all separate keys.
	for _, mut := range []func(*Request){
		func(r *Request) { r.M *= 2 },
		func(r *Request) { r.N *= 2 },
		func(r *Request) { r.Procs *= 2 },
		func(r *Request) { r.MemBudget = 1 << 20 },
		func(r *Request) { r.InverseDepth = 1 },
		func(r *Request) { r.BaseSize = 16 },
	} {
		q := base
		mut(&q)
		if KeyFor(base) == KeyFor(q) {
			t.Errorf("mutated request %+v should not share the base key", q)
		}
	}
}

// TestBucketedRequestPlans asserts the bucketed request is actually
// plannable and routes the way the raw request would: a κ=3e9 request
// (bucket 10, planned at κ=1e10) must leave the plain CholeskyQR2 family
// exactly like a raw κ=3e9 request does.
func TestBucketedRequestPlans(t *testing.T) {
	req := Request{M: 4096, N: 64, Procs: 8, CondEst: 3e9}
	bp, err := Best(Bucketed(req))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Best(req)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Variant == OneD || bp.Variant == Sequential || bp.Variant == CACQR2 || bp.Variant == PanelCACQR2 {
		t.Fatalf("bucketed κ=3e9 plan chose the plain CQR2 family: %v", bp)
	}
	if bp.Variant != rp.Variant {
		t.Errorf("bucketed plan variant %s differs from raw plan variant %s", bp.Variant, rp.Variant)
	}
}
