package plan

import (
	"fmt"
	"math"
	"sort"

	"cacqr/internal/costmodel"
)

// Enumerate prices every feasible plan for the request and returns them
// ranked by predicted time (ascending; ties keep the canonical
// enumeration order: Sequential, 1D-CQR2 by rank count, ShiftedCQR3 by
// rank count, CA-CQR2 by (c, d), the panel variant by (c, d, b), TSQR
// by rank count, blocked TSQR by (p, b)). Plans whose modeled per-rank
// footprint exceeds the memory budget, or whose predicted orthogonality
// loss at Request.CondEst exceeds Request.OrthTol, are rejected. An
// empty request, a NaN/negative CondEst, or a request with no feasible
// plan is an error.
func Enumerate(req Request) ([]Plan, error) {
	if req.M < 1 || req.N < 1 {
		return nil, fmt.Errorf("plan: invalid shape %dx%d", req.M, req.N)
	}
	if req.M < req.N {
		return nil, fmt.Errorf("plan: CholeskyQR requires m ≥ n, got %dx%d", req.M, req.N)
	}
	if req.Procs < 1 {
		return nil, fmt.Errorf("plan: invalid processor budget %d", req.Procs)
	}
	if math.IsNaN(req.CondEst) || req.CondEst < 0 {
		return nil, fmt.Errorf("plan: invalid condition estimate %g (want ≥ 0; 0 = unknown)", req.CondEst)
	}
	mach := req.Machine
	if mach == (costmodel.Machine{}) {
		mach = costmodel.Stampede2
	} else if err := checkMachine(mach); err != nil {
		return nil, err
	}
	orthTol := req.OrthTol
	if orthTol <= 0 {
		orthTol = DefaultOrthTol
	}

	var plans []Plan
	rejectedByCond := false
	add := func(p Plan) {
		if req.MemBudget > 0 && p.MemBytes() > req.MemBudget {
			return
		}
		p.PredOrth = PredictOrthogonality(p.Variant, req.M, req.N, p.PanelWidth, req.CondEst)
		if req.CondEst > 1 && p.PredOrth > orthTol {
			rejectedByCond = true
			return
		}
		p.Seconds = mach.Time(p.Cost)
		plans = append(plans, p)
	}

	for _, p := range sequentialCandidates(req) {
		add(p)
	}
	for _, p := range oneDCandidates(req) {
		add(p)
	}
	for _, p := range shiftedCandidates(req) {
		add(p)
	}
	for _, p := range gridCandidates(req) {
		add(p)
	}
	for _, p := range tsqrCandidates(req) {
		add(p)
	}
	for _, p := range blockedTSQRCandidates(req) {
		add(p)
	}
	if req.IncludeBaselines {
		if p, ok := pgeqrfReference(req, mach); ok {
			add(p)
		}
	}
	// Out-of-core fallback: when a finite memory budget rejected every
	// in-core variant, the streaming TSQR rows — whose footprint is one
	// panel plus the R-reduction chain, not the whole matrix — are
	// enumerated. They never compete with in-core rows (2–3 extra passes
	// over the data on the disk tier always lose), so the routing is
	// driven purely by MemBudget.
	if len(plans) == 0 && req.MemBudget > 0 {
		for _, p := range streamCandidates(req) {
			add(p)
		}
	}
	if len(plans) == 0 {
		if rejectedByCond {
			return nil, fmt.Errorf("plan: no variant meets ‖QᵀQ−I‖ ≤ %g at κ≈%g for %dx%d on ≤%d ranks",
				orthTol, req.CondEst, req.M, req.N, req.Procs)
		}
		return nil, fmt.Errorf("plan: no feasible plan for %dx%d on ≤%d ranks (budget %d bytes)",
			req.M, req.N, req.Procs, req.MemBudget)
	}
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].Seconds < plans[j].Seconds })
	if req.MaxPlans > 0 && len(plans) > req.MaxPlans {
		plans = plans[:req.MaxPlans]
	}
	return plans, nil
}

// Best returns the top-ranked executable plan. Baseline reference rows
// are never considered.
func Best(req Request) (Plan, error) {
	req.IncludeBaselines = false
	req.MaxPlans = 0
	plans, err := Enumerate(req)
	if err != nil {
		return Plan{}, err
	}
	return plans[0], nil
}

// checkMachine rejects a partially-specified machine instead of
// silently falling back to a default: every field Machine.Time divides
// by must be positive, and latency must not be negative.
func checkMachine(m costmodel.Machine) error {
	if m.AlphaSec < 0 || m.InjBandwidth <= 0 || m.PeakNodeFlops <= 0 || m.PPN <= 0 ||
		m.Duplex <= 0 || m.GemmEff <= 0 || m.UpdateEff <= 0 || m.PanelEff <= 0 {
		return fmt.Errorf("plan: machine %q is incompletely specified (need positive bandwidth, peak, PPN, duplex, and efficiency factors)", m.Name)
	}
	return nil
}

func sequentialCandidates(req Request) []Plan {
	cost, err := costmodel.OneDCQR2(req.M, req.N, 1)
	if err != nil {
		return nil
	}
	mem, err := costmodel.OneDCQR2Memory(req.M, req.N, 1)
	if err != nil {
		return nil
	}
	return []Plan{{
		Variant: Sequential, C: 1, D: 1, Procs: 1, Cost: cost, MemWords: mem,
		Rationale:  "single rank: no communication, CholeskyQR2's ~4mn² flops",
		Executable: true,
	}}
}

// oneDCandidates enumerates 1D-CQR2 over every rank count 2..Procs that
// divides m. More ranks cut the dominant 4mn²/p flop term but pay an
// extra log p latency in the Gram Allreduce, so the optimum can be
// interior when n² is large relative to mn/p.
func oneDCandidates(req Request) []Plan {
	var out []Plan
	for p := 2; p <= req.Procs; p++ {
		if req.M%p != 0 {
			continue
		}
		cost, err := costmodel.OneDCQR2(req.M, req.N, p)
		if err != nil {
			continue
		}
		mem, err := costmodel.OneDCQR2Memory(req.M, req.N, p)
		if err != nil {
			continue
		}
		out = append(out, Plan{
			Variant: OneD, C: 1, D: p, Procs: p, Cost: cost, MemWords: mem,
			Rationale:  fmt.Sprintf("c=1 tall-skinny regime: n²-word Gram Allreduce over %d ranks, no replication", p),
			Executable: true,
		})
	}
	return out
}

// shiftedCandidates enumerates the three-pass shifted CholeskyQR3 over
// every 1D rank count (p = 1 is the sequential case). At ~1.5× the
// CholeskyQR2 cost it never outranks the plain family on well-behaved
// inputs; its reason to exist is the condition gate — when CondEst puts
// κ(A) beyond the CQR2 family's ε^{-1/2} regime, these rows (and the
// Householder baselines) are all that survive.
func shiftedCandidates(req Request) []Plan {
	var out []Plan
	for p := 1; p <= req.Procs; p++ {
		if req.M%p != 0 {
			continue
		}
		cost, err := costmodel.OneDShiftedCQR3(req.M, req.N, p)
		if err != nil {
			continue
		}
		mem, err := costmodel.OneDShiftedCQR3Memory(req.M, req.N, p)
		if err != nil {
			continue
		}
		out = append(out, Plan{
			Variant: ShiftedCQR3, C: 1, D: p, Procs: p, Cost: cost, MemWords: mem,
			Rationale:  fmt.Sprintf("shifted CholeskyQR3 over %d ranks: stable far beyond CQR2's κ≈1e7 ceiling at ~1.5× the flops", p),
			Executable: true,
		})
	}
	return out
}

// gridCandidates enumerates the c × d × c family with c ≥ 2: c | d,
// c·d·c ≤ Procs, d | m, c | n (the divisibility the cyclic layout and
// the subcube CFR3D require). For each feasible grid it also prices the
// §V panel variant at every width b with c | b, b | n, b < n.
func gridCandidates(req Request) []Plan {
	var out []Plan
	for c := 2; c*c*c <= req.Procs; c++ {
		if req.N%c != 0 {
			continue
		}
		for d := c; c*d*c <= req.Procs; d += c {
			if req.M%d != 0 {
				continue
			}
			prm := costmodel.CACQRParams{C: c, D: d, BaseSize: req.BaseSize, InverseDepth: req.InverseDepth}
			cost, err := costmodel.CACQR2(req.M, req.N, prm)
			if err != nil {
				continue
			}
			mem, err := costmodel.CACQR2Memory(req.M, req.N, prm)
			if err != nil {
				continue
			}
			out = append(out, Plan{
				Variant: CACQR2, C: c, D: d, Procs: c * d * c, Cost: cost, MemWords: mem,
				Rationale:  fmt.Sprintf("c=%d replicates the Gram work to cut words/rank ~√c at %d× memory, d=%d row blocks", c, c, d),
				Executable: true,
			})
			out = append(out, panelCandidates(req, c, d)...)
		}
	}
	return out
}

func panelCandidates(req Request, c, d int) []Plan {
	var out []Plan
	prm := costmodel.CACQRParams{C: c, D: d, BaseSize: req.BaseSize, InverseDepth: req.InverseDepth}
	for b := c; b < req.N; b += c {
		if req.N%b != 0 {
			continue
		}
		cost, err := costmodel.PanelCACQR2(req.M, req.N, b, prm)
		if err != nil {
			continue
		}
		mem, err := costmodel.PanelCACQR2Memory(req.M, req.N, b, prm)
		if err != nil {
			continue
		}
		out = append(out, Plan{
			Variant: PanelCACQR2, C: c, D: d, PanelWidth: b, Procs: c * d * c, Cost: cost, MemWords: mem,
			Rationale:  fmt.Sprintf("width-%d panels cut the flop overhead toward Householder's 2mn² at %d extra synchronizations", b, req.N/b-1),
			Executable: true,
		})
	}
	return out
}

// tsqrCandidates enumerates the binary-tree baseline over power-of-two
// rank counts with m divisible and local blocks still tall (m/p ≥ n).
func tsqrCandidates(req Request) []Plan {
	var out []Plan
	for p := 2; p <= req.Procs; p *= 2 {
		if req.M%p != 0 || req.M/p < req.N {
			continue
		}
		cost, err := costmodel.TSQR(req.M, req.N, p)
		if err != nil {
			continue
		}
		mem, err := costmodel.TSQRMemory(req.M, req.N, p)
		if err != nil {
			continue
		}
		out = append(out, Plan{
			Variant: TSQR, C: 1, D: p, Procs: p, Cost: cost, MemWords: mem,
			Rationale:  fmt.Sprintf("binary-tree Householder over %d ranks: unconditionally stable, log p small QRs on the critical path", p),
			Executable: true,
		})
	}
	return out
}

// blockedTSQRCandidates enumerates the blocked (BGS2) TSQR variant over
// power-of-two rank counts where the plain tree is infeasible (m/p < n)
// — its reason to exist is lifting that restriction to m/p ≥ b. Panel
// widths run over the divisors of n that still fit a local block.
func blockedTSQRCandidates(req Request) []Plan {
	var out []Plan
	for p := 2; p <= req.Procs; p *= 2 {
		if req.M%p != 0 || req.M/p >= req.N {
			continue
		}
		for b := 1; b < req.N && b <= req.M/p; b++ {
			if req.N%b != 0 {
				continue
			}
			cost, err := costmodel.BlockedTSQR(req.M, req.N, b, p)
			if err != nil {
				continue
			}
			mem, err := costmodel.BlockedTSQRMemory(req.M, req.N, b, p)
			if err != nil {
				continue
			}
			out = append(out, Plan{
				Variant: TSQR, C: 1, D: p, PanelWidth: b, Procs: p, Cost: cost, MemWords: mem,
				Rationale:  fmt.Sprintf("blocked TSQR over %d ranks: width-%d panels lift the m/p ≥ n restriction (BGS2 cross-panel loss O(ε·κ))", p, b),
				Executable: true,
			})
		}
	}
	return out
}

// streamCandidates enumerates the out-of-core streaming TSQR on one
// rank over doubling panel heights b = n, 2n, 4n, … ≤ m. Taller panels
// amortize the per-panel n³-ish overheads and shorten the R-merge
// chain, so among the rows that fit the budget the tallest feasible
// panel ranks cheapest; the memory gate picks the workable ones.
func streamCandidates(req Request) []Plan {
	var out []Plan
	for b := req.N; ; b *= 2 {
		if b > req.M {
			break
		}
		cost, err := costmodel.StreamTSQR(req.M, req.N, b, true)
		if err != nil {
			continue
		}
		mem, err := costmodel.StreamTSQRMemory(req.M, req.N, b)
		if err != nil {
			continue
		}
		out = append(out, Plan{
			Variant: StreamTSQR, C: 1, D: 1, PanelWidth: b, Procs: 1,
			Cost: cost, MemWords: mem,
			Rationale:  fmt.Sprintf("out-of-core: no in-core variant fits the budget; stream %d-row panels, resident ≈ panel + R-chain", b),
			Executable: true,
		})
	}
	return out
}

// pgeqrfReference prices the ScaLAPACK-style baseline and returns only
// the cheapest configuration found as a reference row (executable via
// FactorizePlan, never preferred by Best): pr over divisors of m, pc
// over powers of two with pr·pc ≤ Procs, and nb over divisors of n up
// to 64.
func pgeqrfReference(req Request, mach costmodel.Machine) (Plan, bool) {
	var best Plan
	found := false
	for pr := 1; pr <= req.Procs; pr++ {
		if req.M%pr != 0 {
			continue
		}
		for pc := 1; pr*pc <= req.Procs; pc *= 2 {
			for nb := 1; nb <= 64 && nb <= req.N; nb++ {
				if req.N%nb != 0 {
					continue
				}
				cost, err := costmodel.PGEQRF(req.M, req.N, pr, pc, nb)
				if err != nil {
					continue
				}
				mem, err := costmodel.PGEQRFMemory(req.M, req.N, pr, pc, nb)
				if err != nil {
					continue
				}
				p := Plan{
					Variant: PGEQRF, C: pc, D: pr, PanelWidth: nb, Procs: pr * pc,
					Cost: cost, MemWords: mem,
					Rationale:  fmt.Sprintf("ScaLAPACK-style reference on a %d×%d grid, nb=%d", pr, pc, nb),
					Executable: true,
				}
				p.Seconds = mach.Time(p.Cost)
				if !found || p.Seconds < best.Seconds {
					best, found = p, true
				}
			}
		}
	}
	return best, found
}
