package plan

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"strings"
	"testing"

	"cacqr/internal/lin"
	"cacqr/internal/testmat"
)

// Condition-aware routing tests: the planner must move κ ≳ 10⁷ inputs
// off the plain CholeskyQR2 family (whose Gram matrix squares κ) and
// onto ShiftedCQR3 or the Householder-based variants, per the κ-sweep
// property tests in internal/core that establish where each variant
// actually holds up.

func isCQR2Family(v Variant) bool {
	switch v {
	case Sequential, OneD, CACQR2, PanelCACQR2:
		return true
	}
	return false
}

func TestCondSweepRouting(t *testing.T) {
	// At every κ of the standard sweep, the winner must be a variant
	// whose predicted orthogonality meets the tolerance — CQR2-family
	// below the ε^{-1/2} threshold, ShiftedCQR3/TSQR above it.
	const m, n, procs = 1024, 64, 16
	for _, kappa := range testmat.Kappas {
		best, err := Best(Request{M: m, N: n, Procs: procs, CondEst: kappa})
		if err != nil {
			t.Fatalf("κ=%g: %v", kappa, err)
		}
		if kappa <= 1e5 {
			if !isCQR2Family(best.Variant) {
				t.Fatalf("κ=%g: well-conditioned input routed to %v", kappa, best)
			}
		} else {
			if isCQR2Family(best.Variant) {
				t.Fatalf("κ=%g: ill-conditioned input routed to the CQR2 family: %v", kappa, best)
			}
		}
		if best.PredOrth > DefaultOrthTol {
			t.Fatalf("κ=%g: winner predicts orth %g over tolerance: %v", kappa, best.PredOrth, best)
		}
	}
}

func TestCondRoutingThresholds(t *testing.T) {
	const m, n, procs = 1024, 64, 16
	// κ=1e10: inside ShiftedCQR3's regime and cheaper than TSQR — the
	// shifted variant must win outright.
	best, err := Best(Request{M: m, N: n, Procs: procs, CondEst: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if best.Variant != ShiftedCQR3 {
		t.Fatalf("κ=1e10 chose %v, want shifted-cqr3", best)
	}
	// κ=1e15: beyond one-shift territory at this shape — only the
	// Householder-based variants survive the gate.
	best, err = Best(Request{M: m, N: n, Procs: procs, CondEst: 1e15})
	if err != nil {
		t.Fatal(err)
	}
	if best.Variant != TSQR {
		t.Fatalf("κ=1e15 chose %v, want tsqr", best)
	}
	// No hint: every variant competes on time alone, exactly as before
	// this planner became condition-aware.
	unhinted, err := Best(Request{M: m, N: n, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	hinted1, err := Best(Request{M: m, N: n, Procs: procs, CondEst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if unhinted.Variant != hinted1.Variant || unhinted.Seconds != hinted1.Seconds {
		t.Fatalf("κ=1 (%v) diverges from no hint (%v)", hinted1, unhinted)
	}
}

func TestCondGateUsesEstimatorMeasurement(t *testing.T) {
	// The intended composition: measure κ from a generated matrix with
	// the cheap estimator, feed it to the planner, and land off the
	// CQR2 family — no hand-chosen CondEst anywhere.
	const m, n = 256, 32
	a := testmat.WithCond(m, n, 1e9, 21)
	est := lin.EstimateCond(a, 50)
	if est < 1e7 {
		t.Fatalf("estimator missed the ill-conditioning: %g", est)
	}
	best, err := Best(Request{M: m, N: n, Procs: 8, CondEst: est})
	if err != nil {
		t.Fatal(err)
	}
	if isCQR2Family(best.Variant) {
		t.Fatalf("estimated κ=%g still routed to %v", est, best)
	}
}

func TestCondEstValidation(t *testing.T) {
	if _, err := Enumerate(Request{M: 64, N: 8, Procs: 4, CondEst: -1}); err == nil {
		t.Fatal("negative CondEst accepted")
	}
	if _, err := Enumerate(Request{M: 64, N: 8, Procs: 4, CondEst: math.NaN()}); err == nil {
		t.Fatal("NaN CondEst accepted")
	}
	// +Inf is a legitimate estimator outcome (numerically singular
	// Gram): it must route to the unconditionally stable variants, not
	// error.
	best, err := Best(Request{M: 1024, N: 64, Procs: 16, CondEst: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if best.Variant != TSQR && best.Variant != PGEQRF {
		t.Fatalf("κ=+Inf chose %v", best)
	}
}

func TestCondGateCanRejectEverything(t *testing.T) {
	// A processor budget of 1 has no Householder-based candidate (TSQR
	// needs p ≥ 2), so an extreme κ leaves nothing — and the error must
	// say why.
	_, err := Enumerate(Request{M: 64, N: 8, Procs: 1, CondEst: 1e15})
	if err == nil {
		t.Fatal("impossible tolerance satisfied")
	}
	if !strings.Contains(err.Error(), "QᵀQ") {
		t.Fatalf("unhelpful gating error: %v", err)
	}
}

func TestOrthTolKnob(t *testing.T) {
	// A caller content with 1e-2 orthogonality can keep the cheap CQR2
	// family where the default tolerance would reject it... but not
	// where the factorization outright breaks down.
	const m, n, procs = 1024, 64, 16
	best, err := Best(Request{M: m, N: n, Procs: procs, CondEst: 4e6, OrthTol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if !isCQR2Family(best.Variant) {
		t.Fatalf("loose tolerance still rejected the CQR2 family: %v", best)
	}
	best, err = Best(Request{M: m, N: n, Procs: procs, CondEst: 1e12, OrthTol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if isCQR2Family(best.Variant) {
		t.Fatalf("breakdown regime admitted the CQR2 family: %v", best)
	}
}

func TestPredictOrthogonalityShape(t *testing.T) {
	// Monotone in κ, unconditionally small for the Householder family,
	// and the shifted gate widens the regime by orders of magnitude.
	for _, v := range []Variant{Sequential, OneD, CACQR2, PanelCACQR2, ShiftedCQR3, TSQR, PGEQRF} {
		prev := 0.0
		for _, k := range []float64{1, 1e4, 1e8, 1e12, 1e16} {
			o := PredictOrthogonality(v, 1024, 64, 0, k)
			if o < prev {
				t.Fatalf("%s: prediction not monotone at κ=%g", v, k)
			}
			prev = o
		}
	}
	if o := PredictOrthogonality(TSQR, 1024, 64, 0, 1e16); o > 1e-13 {
		t.Fatalf("TSQR predicted %g at κ=1e16", o)
	}
	if o := PredictOrthogonality(OneD, 1024, 64, 0, 1e10); o < 1 {
		t.Fatalf("CQR2 family predicted %g at κ=1e10, want breakdown", o)
	}
	if o := PredictOrthogonality(ShiftedCQR3, 1024, 64, 0, 1e10); o > 1e-12 {
		t.Fatalf("ShiftedCQR3 predicted %g at κ=1e10", o)
	}
}

func TestBlockedTSQRGatedByBGS2Bound(t *testing.T) {
	// The blocked variant's BGS2 updates lose orthogonality as O(ε·κ)
	// — measured e2e at ~5e-11 for κ=1e12 — so unlike the plain tree it
	// must NOT survive the gate at high κ. 256×64 on 8 ranks has
	// blocked rows (m/p = 32 < n) and plain rows (p ≤ 4).
	if o := PredictOrthogonality(TSQR, 256, 64, 16, 1e12); o < 1e-8 {
		t.Fatalf("blocked TSQR predicted %g at κ=1e12, want ≳ ε·κ", o)
	}
	if o := PredictOrthogonality(TSQR, 256, 64, 16, 1e3); o > 1e-12 {
		t.Fatalf("blocked TSQR predicted %g at κ=1e3", o)
	}
	plans, err := Enumerate(Request{M: 256, N: 64, Procs: 8, CondEst: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Variant == TSQR && p.PanelWidth > 0 {
			t.Fatalf("blocked TSQR row survived the κ=1e12 gate: %v", p)
		}
	}
}

func TestBlockedTSQRRowsOnlyWherePlainInfeasible(t *testing.T) {
	// 256×64 on 8 ranks: plain TSQR feasible at p ∈ {2, 4} (m/p ≥ n)
	// but not p = 8 (m/p = 32 < 64) — blocked rows must appear exactly
	// there, with b | n and b ≤ m/p.
	plans, err := Enumerate(Request{M: 256, N: 64, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	sawBlocked := false
	for _, p := range plans {
		if p.Variant != TSQR {
			continue
		}
		if p.PanelWidth == 0 {
			if 256/p.Procs < 64 {
				t.Fatalf("plain TSQR row with short local blocks: %v", p)
			}
			continue
		}
		sawBlocked = true
		if p.Procs != 8 {
			t.Fatalf("blocked row where plain is feasible: %v", p)
		}
		if 64%p.PanelWidth != 0 || p.PanelWidth > 256/p.Procs {
			t.Fatalf("infeasible blocked row: %v", p)
		}
	}
	if !sawBlocked {
		t.Fatal("no blocked TSQR rows at the shape built for them")
	}
}
