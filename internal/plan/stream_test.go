package plan

import (
	"strings"
	"testing"

	"cacqr/internal/costmodel"
)

// The out-of-core routing contract: with an unlimited (or adequate)
// budget the planner never proposes streaming; once the budget rejects
// every in-core variant it must fall back to stream-tsqr rows; and a
// budget too small even for one panel plus the R-chain is still an
// error. The choice is driven purely by MemBudget.
func TestStreamFallbackRouting(t *testing.T) {
	const m, n = 1 << 15, 64
	seqMem, err := costmodel.OneDCQR2Memory(m, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The stream footprint 4bn + (m/b)·3n² + … is minimized at an
	// intermediate panel height (tiny panels pay a long R-chain), so the
	// floor is the min over the enumerated doubling heights.
	minStream := int64(0)
	for b := n; b <= m; b *= 2 {
		w, err := costmodel.StreamTSQRMemory(m, n, b)
		if err != nil {
			t.Fatal(err)
		}
		if minStream == 0 || w < minStream {
			minStream = w
		}
	}
	if 8*minStream >= 8*seqMem {
		t.Fatalf("test shape broken: smallest stream footprint %d ≥ in-core %d", minStream, seqMem)
	}

	// Unlimited budget: in-core wins, no streaming row anywhere.
	plans, err := Enumerate(Request{M: m, N: n, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Variant == StreamTSQR {
			t.Errorf("stream row enumerated with no memory pressure: %v", p)
		}
	}

	// Adequate finite budget: same story.
	plans, err = Enumerate(Request{M: m, N: n, Procs: 1, MemBudget: 8 * seqMem})
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].Variant != StreamTSQR {
		// expected: in-core best
	} else {
		t.Errorf("stream row preferred despite in-core fitting: %v", plans[0])
	}

	// Budget between the stream floor and the in-core floor: streaming
	// is the only road, and every surviving row must honor the budget.
	budget := 8 * seqMem / 2
	if budget <= 8*minStream {
		t.Fatalf("test shape broken: fallback budget %d below stream floor %d", budget, 8*minStream)
	}
	best, err := Best(Request{M: m, N: n, Procs: 1, MemBudget: budget})
	if err != nil {
		t.Fatalf("no fallback plan under budget %d: %v", budget, err)
	}
	if best.Variant != StreamTSQR {
		t.Fatalf("best under pressure = %v, want stream-tsqr", best)
	}
	if best.MemBytes() > budget {
		t.Errorf("stream plan footprint %d exceeds budget %d", best.MemBytes(), budget)
	}
	if best.PanelWidth < n {
		t.Errorf("stream plan panel rows %d < n=%d", best.PanelWidth, n)
	}
	if !strings.Contains(best.Rationale, "out-of-core") {
		t.Errorf("rationale does not explain the fallback: %q", best.Rationale)
	}
	if best.Cost.IOBytes == 0 || best.Cost.IOOps == 0 {
		t.Errorf("stream plan carries no I/O cost: %+v", best.Cost)
	}

	// Under pressure every surviving row is a budget-honoring stream row.
	plans, err = Enumerate(Request{M: m, N: n, Procs: 1, MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Variant != StreamTSQR {
			t.Fatalf("non-stream row %v survived an over-budget in-core enumeration", p)
		}
		if p.MemBytes() > budget {
			t.Errorf("stream row %v exceeds budget %d", p, budget)
		}
	}

	// Starvation: below even one panel's footprint there is no plan.
	if _, err := Enumerate(Request{M: m, N: n, Procs: 1, MemBudget: 64}); err == nil {
		t.Error("expected error for budget below the streaming floor")
	}
}

// Streaming panels escalate to ShiftedCQR3 on demand, so the stream
// rows must survive condition estimates that kill the plain CholeskyQR2
// family — the daemon's route for huge ill-conditioned gen requests is
// planned, not rejected.
func TestStreamSurvivesCondGate(t *testing.T) {
	const m, n = 1 << 15, 64
	seqMem, err := costmodel.OneDCQR2Memory(m, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Best(Request{M: m, N: n, Procs: 1, MemBudget: 8 * seqMem / 2, CondEst: 1e9})
	if err != nil {
		t.Fatalf("κ=1e9 under memory pressure: %v", err)
	}
	if best.Variant != StreamTSQR {
		t.Fatalf("best = %v, want stream-tsqr", best)
	}
	if best.PredOrth > DefaultOrthTol {
		t.Errorf("predicted orthogonality %g exceeds tolerance", best.PredOrth)
	}
}

// The stream cost rows price their I/O on the disk tier: a machine with
// a slower disk must predict a longer streaming time for the same cost.
func TestStreamCostUsesDiskTier(t *testing.T) {
	cost, err := costmodel.StreamTSQR(1<<15, 64, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	fast := costmodel.Stampede2
	slow := fast
	slow.DiskBandwidth = fast.DiskBandwidth / 10
	slow.DeltaSec = fast.DeltaSec * 10
	if slow.Time(cost) <= fast.Time(cost) {
		t.Errorf("10× slower disk not reflected: %g ≤ %g", slow.Time(cost), fast.Time(cost))
	}
	none := fast
	none.DeltaSec, none.DiskBandwidth = 0, 0
	if none.Time(cost) >= fast.Time(cost) {
		t.Errorf("machine without a disk tier should price I/O as free")
	}
}
