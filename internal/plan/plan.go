// Package plan is the autotuning planner between the validated cost
// model and the execution paths: given a matrix shape, a processor
// budget, a machine model, and a per-rank memory budget, it enumerates
// every feasible algorithm variant and grid — the paper's tunable
// c × d × c CA-CQR2 family (Tables I–VI), the 1D and sequential
// CholeskyQR2 special cases, the §V panel variant, and the TSQR
// baseline — prices each candidate with internal/costmodel, and returns
// a ranked list of plans.
//
// The point is the paper's central tension: the right (c, d) depends on
// the matrix aspect ratio, the processor count, and the machine's
// α-β-γ constants. Very tall matrices want c = 1 (the 1D algorithm);
// near-square matrices on bandwidth-starved machines want c → d (the 3D
// algorithm); everything in between interpolates. The planner automates
// the choice the paper's experiments made by hand.
//
// Predictions reuse the exact recurrences that the costmodel tests
// validate against instrumented runs, so a plan's Cost is the cost the
// simulated runtime will actually charge (up to the final gather).
package plan

import (
	"fmt"
	"math"

	"cacqr/internal/costmodel"
	"cacqr/internal/lin"
)

// Variant names an algorithm the planner can select.
type Variant string

const (
	// Sequential is CholeskyQR2 on a single rank (no communication).
	Sequential Variant = "seq-cqr2"
	// OneD is 1D-CQR2 (Algorithm 7): row blocks over p ranks, c = 1.
	OneD Variant = "1d-cqr2"
	// CACQR2 is the paper's Algorithm 9 on a c × d × c grid with c ≥ 2.
	CACQR2 Variant = "ca-cqr2"
	// PanelCACQR2 is the §V panel-wise variant on a c × d × c grid.
	PanelCACQR2 Variant = "panel-ca-cqr2"
	// TSQR is the binary-tree Householder baseline (power-of-two ranks).
	// Rows with PanelWidth > 0 are the blocked variant (BGS2 panel
	// updates), which lifts the m/p ≥ n restriction to m/p ≥ b and is
	// enumerated exactly where plain TSQR is infeasible.
	TSQR Variant = "tsqr"
	// ShiftedCQR3 is the three-pass shifted CholeskyQR3 (Fukaya et al.)
	// on a 1D grid: ~1.5× OneD's cost, stable to κ ≈ 1/ε where the
	// CholeskyQR2 family breaks down at κ ≈ ε^{-1/2}. The
	// condition-aware router's fallback for ill-conditioned inputs.
	ShiftedCQR3 Variant = "shifted-cqr3"
	// PGEQRF is the ScaLAPACK-style 2D Householder baseline, priced as a
	// reference row (Request.IncludeBaselines) that the ranking never
	// prefers for execution — Best skips baselines — but which
	// FactorizePlan can now dispatch like any other row.
	PGEQRF Variant = "pgeqrf"
	// StreamTSQR is the out-of-core sequential TSQR (internal/stream):
	// one rank streams row panels of PanelWidth... rows through in-core
	// CholeskyQR2, merging R factors through a chain of small stacked
	// QRs, so the resident footprint is one panel plus the chain instead
	// of the whole matrix. It pays 2–3 full passes over the data on the
	// disk tier, so the planner enumerates it strictly as a fallback:
	// only when no in-core variant fits the memory budget.
	StreamTSQR Variant = "stream-tsqr"
)

// Request describes one planning problem.
type Request struct {
	// M, N is the global matrix shape (m ≥ n).
	M, N int
	// Procs is the maximum number of simulated ranks available. Plans
	// may use fewer (grids must satisfy c·d·c ≤ Procs).
	Procs int
	// Machine supplies the α-β-γ constants used for ranking. The zero
	// value selects costmodel.Stampede2, the paper's primary platform.
	Machine costmodel.Machine
	// MemBudget is the per-rank memory budget in bytes (8-byte words
	// from the footprint model). 0 means unlimited. Plans whose modeled
	// per-rank footprint exceeds the budget are rejected.
	MemBudget int64
	// InverseDepth and BaseSize are forwarded to the CA-CQR2 cost
	// recurrences (the paper's legend knobs).
	InverseDepth, BaseSize int
	// IncludeBaselines adds the PGEQRF reference row to the ranking so
	// CLI tables can show the baseline the paper beats. The row is
	// executable via FactorizePlan, but Best never selects it.
	IncludeBaselines bool
	// MaxPlans caps the ranked list (0 = no cap). Best ignores it.
	MaxPlans int
	// CondEst is the caller's 2-norm condition-number estimate for the
	// matrix (κ₂(A)). When > 1, variants whose predicted orthogonality
	// loss ‖QᵀQ−I‖ at that κ exceeds OrthTol are rejected — this is the
	// paper-§VII routing: κ ≳ 10⁷ inputs leave the plain CholeskyQR2
	// family for ShiftedCQR3 or TSQR. 0 (or 1) means "no information":
	// every numerically plausible variant competes on predicted time
	// alone. Negative or NaN values are rejected as errors.
	CondEst float64
	// OrthTol is the acceptable predicted ‖QᵀQ−I‖ under CondEst
	// (0 = the default 1e-8). Only consulted when CondEst > 1.
	OrthTol float64
}

// DefaultOrthTol is the predicted-orthogonality acceptance threshold
// used when Request.OrthTol is unset.
const DefaultOrthTol = 1e-8

// machine epsilon for float64, the ε of the stability bounds.
const eps = lin.Eps

// PredictOrthogonality returns the modeled orthogonality loss ‖QᵀQ−I‖
// of a variant for an m×n matrix at condition number cond, per the
// CholeskyQR literature's bounds (panelWidth is the plan row's
// PanelWidth — it distinguishes the blocked TSQR from the plain tree):
//
//   - CholeskyQR2 family: O(ε) while κ²·ε ≲ 1/64 (κ ≲ 8.4e6, the §I
//     criterion); beyond that the Gram matrix loses numerical
//     definiteness and the factorization breaks down entirely (returned
//     as 1 — no useful orthogonality).
//   - ShiftedCQR3 (Fukaya et al.): the shifted first pass maps κ(A) to
//     κ(Q₁) ≈ √(11(mn+n(n+1))ε)·κ(A), which must itself land inside
//     CholeskyQR2's regime — O(ε) while that holds (κ ≲ 1e12 at test
//     shapes, shrinking slowly with mn), 1 beyond.
//   - Plain TSQR and PGEQRF (Householder): unconditionally O(ε).
//   - StreamTSQR: each panel escalates to ShiftedCQR3 on demand and the
//     R-merge chain is Householder, so the loss tracks ShiftedCQR3's
//     bound.
//   - Blocked TSQR (panelWidth > 0): each panel's tree QR is stable,
//     but the cross-panel BGS2 updates lose orthogonality with the
//     conditioning — O(ε·κ), the classical reorthogonalized
//     block-Gram-Schmidt bound (the κ-sweep e2e tests measure well
//     under it, e.g. ~5e-11 at κ=1e12).
//
// cond ≤ 1 (including the "unknown" zero value) is treated as a
// perfectly conditioned matrix.
func PredictOrthogonality(v Variant, m, n, panelWidth int, cond float64) float64 {
	if cond <= 1 {
		cond = 1
	}
	// Stable-regime floor: an n×n near-identity Gram matrix with
	// O(ε)-sized entries has Frobenius norm Θ(√n·ε) or more, so a bare
	// 8ε would understate what healthy runs actually measure.
	floor := 8 * math.Sqrt(float64(n)) * eps
	cqr2Loss := func(kappa float64) float64 {
		d := kappa * kappa * eps // one-pass loss κ²ε
		if d >= 1.0/64 {
			return 1
		}
		return floor * (1 + d) * (1 + d)
	}
	switch v {
	case TSQR:
		if panelWidth > 0 {
			return math.Max(floor, cond*eps) // BGS2 cross-panel loss
		}
		return floor
	case PGEQRF:
		return floor
	case ShiftedCQR3, StreamTSQR:
		shrink := math.Sqrt(11 * float64(m*n+n*(n+1)) * eps)
		return cqr2Loss(shrink * cond)
	default: // the plain CholeskyQR2 family
		return cqr2Loss(cond)
	}
}

// Plan is one priced candidate.
type Plan struct {
	Variant Variant
	// C, D are the grid parameters for the CA-CQR2 family (C = 1 for
	// OneD and Sequential; unused for TSQR).
	C, D int
	// PanelWidth is the panel width b: the §V subpanel width for
	// PanelCACQR2, the BGS2 panel width for blocked TSQR rows, the
	// ScaLAPACK nb for PGEQRF rows (0 = unblocked), and the panel row
	// count for StreamTSQR rows (where the "panel" is b×n of rows, not
	// columns).
	PanelWidth int
	// Procs is the number of ranks the plan actually uses: c·d·c for
	// the grid family, the 1D rank count otherwise.
	Procs int
	// Cost is the modeled per-processor critical-path cost.
	Cost costmodel.Cost
	// Seconds is Machine.Time(Cost), the ranking key.
	Seconds float64
	// MemWords is the modeled peak per-rank footprint in 8-byte words;
	// MemBytes = 8 · MemWords.
	MemWords int64
	// Rationale is a one-line human-readable justification.
	Rationale string
	// PredOrth is the modeled orthogonality loss ‖QᵀQ−I‖ of this
	// variant at the request's CondEst (the ~8√n·ε stable-regime floor
	// when no hint was given).
	PredOrth float64
	// Executable reports whether FactorizePlan can dispatch this plan.
	// Every row the planner currently produces is executable — PGEQRF
	// and the blocked-TSQR rows included; the field is retained so
	// callers can keep gating on it.
	Executable bool
}

// MemBytes is the modeled peak per-rank footprint in bytes.
func (p Plan) MemBytes() int64 { return 8 * p.MemWords }

// GridString renders the processor layout: "c×d×c" for the grid family,
// "p=…" for the 1D family.
func (p Plan) GridString() string {
	switch p.Variant {
	case CACQR2, PanelCACQR2:
		return fmt.Sprintf("%d×%d×%d", p.C, p.D, p.C)
	case PGEQRF:
		return fmt.Sprintf("%d×%d", p.D, p.C)
	default:
		return fmt.Sprintf("p=%d", p.Procs)
	}
}

func (p Plan) String() string {
	s := fmt.Sprintf("%s %s: %.3g s (α=%d β=%d γ=%d, %d words/rank)",
		p.Variant, p.GridString(), p.Seconds, p.Cost.Msgs, p.Cost.Words, p.Cost.TotalFlops(), p.MemWords)
	if p.PanelWidth > 0 {
		s += fmt.Sprintf(" b=%d", p.PanelWidth)
	}
	return s
}
