// Package plan is the autotuning planner between the validated cost
// model and the execution paths: given a matrix shape, a processor
// budget, a machine model, and a per-rank memory budget, it enumerates
// every feasible algorithm variant and grid — the paper's tunable
// c × d × c CA-CQR2 family (Tables I–VI), the 1D and sequential
// CholeskyQR2 special cases, the §V panel variant, and the TSQR
// baseline — prices each candidate with internal/costmodel, and returns
// a ranked list of plans.
//
// The point is the paper's central tension: the right (c, d) depends on
// the matrix aspect ratio, the processor count, and the machine's
// α-β-γ constants. Very tall matrices want c = 1 (the 1D algorithm);
// near-square matrices on bandwidth-starved machines want c → d (the 3D
// algorithm); everything in between interpolates. The planner automates
// the choice the paper's experiments made by hand.
//
// Predictions reuse the exact recurrences that the costmodel tests
// validate against instrumented runs, so a plan's Cost is the cost the
// simulated runtime will actually charge (up to the final gather).
package plan

import (
	"fmt"

	"cacqr/internal/costmodel"
)

// Variant names an algorithm the planner can select.
type Variant string

const (
	// Sequential is CholeskyQR2 on a single rank (no communication).
	Sequential Variant = "seq-cqr2"
	// OneD is 1D-CQR2 (Algorithm 7): row blocks over p ranks, c = 1.
	OneD Variant = "1d-cqr2"
	// CACQR2 is the paper's Algorithm 9 on a c × d × c grid with c ≥ 2.
	CACQR2 Variant = "ca-cqr2"
	// PanelCACQR2 is the §V panel-wise variant on a c × d × c grid.
	PanelCACQR2 Variant = "panel-ca-cqr2"
	// TSQR is the binary-tree Householder baseline (power-of-two ranks).
	TSQR Variant = "tsqr"
	// PGEQRF is the ScaLAPACK-style 2D Householder baseline. It is
	// priced only as a reference row (Request.IncludeBaselines); the
	// planner never selects it for execution.
	PGEQRF Variant = "pgeqrf"
)

// Request describes one planning problem.
type Request struct {
	// M, N is the global matrix shape (m ≥ n).
	M, N int
	// Procs is the maximum number of simulated ranks available. Plans
	// may use fewer (grids must satisfy c·d·c ≤ Procs).
	Procs int
	// Machine supplies the α-β-γ constants used for ranking. The zero
	// value selects costmodel.Stampede2, the paper's primary platform.
	Machine costmodel.Machine
	// MemBudget is the per-rank memory budget in bytes (8-byte words
	// from the footprint model). 0 means unlimited. Plans whose modeled
	// per-rank footprint exceeds the budget are rejected.
	MemBudget int64
	// InverseDepth and BaseSize are forwarded to the CA-CQR2 cost
	// recurrences (the paper's legend knobs).
	InverseDepth, BaseSize int
	// IncludeBaselines adds non-executable PGEQRF reference rows to the
	// ranking so CLI tables can show the baseline the paper beats.
	IncludeBaselines bool
	// MaxPlans caps the ranked list (0 = no cap). Best ignores it.
	MaxPlans int
}

// Plan is one priced candidate.
type Plan struct {
	Variant Variant
	// C, D are the grid parameters for the CA-CQR2 family (C = 1 for
	// OneD and Sequential; unused for TSQR).
	C, D int
	// PanelWidth is the §V panel width b (PanelCACQR2 only).
	PanelWidth int
	// Procs is the number of ranks the plan actually uses: c·d·c for
	// the grid family, the 1D rank count otherwise.
	Procs int
	// Cost is the modeled per-processor critical-path cost.
	Cost costmodel.Cost
	// Seconds is Machine.Time(Cost), the ranking key.
	Seconds float64
	// MemWords is the modeled peak per-rank footprint in 8-byte words;
	// MemBytes = 8 · MemWords.
	MemWords int64
	// Rationale is a one-line human-readable justification.
	Rationale string
	// Executable reports whether AutoFactorize can dispatch this plan
	// (false only for PGEQRF reference rows).
	Executable bool
}

// MemBytes is the modeled peak per-rank footprint in bytes.
func (p Plan) MemBytes() int64 { return 8 * p.MemWords }

// GridString renders the processor layout: "c×d×c" for the grid family,
// "p=…" for the 1D family.
func (p Plan) GridString() string {
	switch p.Variant {
	case CACQR2, PanelCACQR2:
		return fmt.Sprintf("%d×%d×%d", p.C, p.D, p.C)
	case PGEQRF:
		return fmt.Sprintf("%d×%d", p.D, p.C)
	default:
		return fmt.Sprintf("p=%d", p.Procs)
	}
}

func (p Plan) String() string {
	s := fmt.Sprintf("%s %s: %.3g s (α=%d β=%d γ=%d, %d words/rank)",
		p.Variant, p.GridString(), p.Seconds, p.Cost.Msgs, p.Cost.Words, p.Cost.TotalFlops(), p.MemWords)
	if p.PanelWidth > 0 {
		s += fmt.Sprintf(" b=%d", p.PanelWidth)
	}
	return s
}
