package plan

import (
	"fmt"
	"math"

	"cacqr/internal/costmodel"
)

// κ-bucketing: a serving layer cannot cache one plan per exact condition
// estimate — two requests with κ = 3.1e9 and κ = 4.7e9 would never share
// a cache line even though every variant's stability verdict is the same
// for both. Buckets are decades of log₁₀κ, and a cached plan is made
// valid for its whole bucket by planning at the bucket's UPPER edge
// (BucketCeil): per the Fukaya et al. shifted-CholeskyQR3 bound (and the
// §I CholeskyQR2 criterion) PredictOrthogonality is monotonically
// non-decreasing in κ for every variant, so a plan that survives the
// condition gate at the edge survives everywhere inside the bucket.

// MaxKappaBucket is the last finite bucket: κ > 10¹⁶ (beyond 1/ε, i.e.
// numerically rank-deficient, including a +Inf estimate) all lands here,
// where only the unconditionally stable Householder variants survive.
const MaxKappaBucket = 17

// KappaBucket maps a condition estimate to its cache bucket: 0 for
// "unknown or perfectly conditioned" (κ ≤ 1, the planner's no-information
// value), b for κ in (10^(b-1), 10^b] with b = 1..16, and MaxKappaBucket
// for anything beyond 10¹⁶ — +Inf (a rank-deficient estimate) included.
// NaN and negative values are the caller's validation problem; they map
// to MaxKappaBucket, the most conservative routing.
func KappaBucket(cond float64) int {
	if math.IsNaN(cond) || cond < 0 {
		return MaxKappaBucket
	}
	if cond <= 1 {
		return 0
	}
	if cond > 1e16 {
		return MaxKappaBucket
	}
	b := int(math.Ceil(math.Log10(cond)))
	if b < 1 {
		b = 1
	}
	if b >= MaxKappaBucket {
		return MaxKappaBucket
	}
	return b
}

// BucketCeil is the condition estimate a cached plan for bucket b must
// be planned at: the bucket's upper edge, so the plan's condition gate
// holds for every κ inside the bucket. Bucket 0 returns 0 (the planner's
// "no information" value); MaxKappaBucket returns 1e17, beyond 1/ε, so
// only the unconditionally stable variants survive.
func BucketCeil(b int) float64 {
	switch {
	case b <= 0:
		return 0
	case b >= MaxKappaBucket:
		return 1e17
	default:
		return math.Pow(10, float64(b))
	}
}

// CacheKey identifies the set of requests that may share one cached
// plan: the matrix shape, the processor budget, the planning machine,
// the per-rank memory budget, the CA-CQR2 legend knobs, and the
// κ-bucket. Two requests with equal keys get identical plans from
// Enumerate/Best when planned at the bucket's edge, so a serving layer
// can answer the second from cache. The zero Machine and an explicit
// Stampede2 normalize to the same key (Enumerate treats them
// identically).
type CacheKey struct {
	M, N, Procs            int
	Machine                costmodel.Machine
	MemBudget              int64
	InverseDepth, BaseSize int
	KappaBucket            int
}

// KeyFor derives the cache key of a request, bucketing its CondEst.
func KeyFor(req Request) CacheKey {
	mach := req.Machine
	if mach == (costmodel.Machine{}) {
		mach = costmodel.Stampede2
	}
	return CacheKey{
		M: req.M, N: req.N, Procs: req.Procs,
		Machine:      mach,
		MemBudget:    req.MemBudget,
		InverseDepth: req.InverseDepth,
		BaseSize:     req.BaseSize,
		KappaBucket:  KappaBucket(req.CondEst),
	}
}

// Bucketed returns the request a cached plan for this key must be
// produced from: the same request with CondEst replaced by the bucket's
// upper edge. Plans from the bucketed request are valid for every
// request mapping to the same key.
func Bucketed(req Request) Request {
	req.CondEst = BucketCeil(KappaBucket(req.CondEst))
	return req
}

func (k CacheKey) String() string {
	return fmt.Sprintf("%dx%d p≤%d %s mem=%d inv=%d base=%d κ-bucket=%d",
		k.M, k.N, k.Procs, k.Machine.Name, k.MemBudget, k.InverseDepth, k.BaseSize, k.KappaBucket)
}
