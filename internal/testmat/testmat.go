// Package testmat generates dense test matrices with exactly prescribed
// spectra for the numerical-robustness test suites: the κ-sweep property
// tests in internal/core, the condition-aware routing tests in
// internal/plan, and the public e2e dispatch tests all draw from here,
// so every layer measures orthogonality loss against the same inputs.
//
// Matrices are built by scaled SVD composition: A = U·diag(σ)·Vᵀ with
// Householder-random orthonormal U (m×n) and V (n×n), so the singular
// values — and therefore κ₂(A) = σ_max/σ_min — are exact by
// construction up to roundoff. This is the standard construction the
// CholeskyQR2 literature uses for its κ-vs-orthogonality figures
// (Fukaya et al., the paper's reference [3]).
package testmat

import (
	"math"

	"cacqr/internal/lin"
)

// Kappas is the standard condition-number sweep the robustness suites
// cover: from comfortably inside CholeskyQR2's κ ≲ ε^{-1/2} regime
// (1e2, 1e5), through its breakdown (1e8), into territory only
// ShiftedCQR3 (1e12) and the Householder-based algorithms (1e15) can
// handle.
var Kappas = []float64{1e2, 1e5, 1e8, 1e12, 1e15}

// GeometricSpectrum returns n singular values geometrically spaced from
// 1 down to 1/cond, the decay profile whose condition number is exactly
// cond.
func GeometricSpectrum(n int, cond float64) []float64 {
	if cond < 1 {
		panic("testmat: condition number must be >= 1")
	}
	sigma := make([]float64, n)
	for j := range sigma {
		if n == 1 {
			sigma[j] = 1
			continue
		}
		t := float64(j) / float64(n-1)
		sigma[j] = math.Pow(cond, -t)
	}
	return sigma
}

// WithSpectrum returns an m×n matrix (m ≥ n) with exactly the given
// singular values, as U·diag(sigma)·Vᵀ from seeded random orthonormal
// factors. len(sigma) must be n.
func WithSpectrum(m, n int, sigma []float64, seed int64) *lin.Matrix {
	if len(sigma) != n {
		panic("testmat: need one singular value per column")
	}
	u := lin.RandomOrthonormal(m, n, seed)
	v := lin.RandomOrthonormal(n, n, seed+1)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			u.Data[i*u.Stride+j] *= sigma[j]
		}
	}
	out := lin.NewMatrix(m, n)
	lin.Gemm(false, true, 1, u, v, 0, out)
	return out
}

// WithCond returns an m×n matrix whose 2-norm condition number is cond,
// with geometrically decaying singular values in [1/cond, 1].
func WithCond(m, n int, cond float64, seed int64) *lin.Matrix {
	return WithSpectrum(m, n, GeometricSpectrum(n, cond), seed)
}

// Flatten returns the matrix's row-major data as a fresh slice — the
// bridge to the public cacqr.FromData constructor for e2e tests (which
// cannot import the root package's internals without a cycle).
func Flatten(m *lin.Matrix) []float64 {
	out := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out[i*m.Cols:(i+1)*m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// Measure reports the two robustness metrics for a computed
// factorization of a: the orthogonality loss ‖QᵀQ−I‖_F and the relative
// residual ‖A−QR‖_F/‖A‖_F.
func Measure(a, q, r *lin.Matrix) (orth, resid float64) {
	return lin.OrthogonalityError(q), lin.ResidualNorm(a, q, r)
}
