package testmat

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"testing"

	"cacqr/internal/lin"
)

func TestWithCondHitsPrescribedKappa(t *testing.T) {
	// The generator's whole point: κ₂ is exact by construction, and the
	// estimator (Gram route below ~1e8, Householder-QR fallback above)
	// must recover it within a few percent across the entire sweep.
	for _, kappa := range append([]float64{1, 1e7}, Kappas...) {
		a := WithCond(192, 24, kappa, 3)
		got := lin.TwoNormCond(a)
		if got < kappa*0.9 || got > kappa*1.1 {
			t.Fatalf("κ=%g: estimator measured %g", kappa, got)
		}
	}
}

func TestWithSpectrumSingularValuesExact(t *testing.T) {
	// A = U·diag(σ)·Vᵀ with orthonormal factors: ‖A‖_F² = Σσ² exactly
	// (up to roundoff), and the extremes are recovered by the estimator.
	sigma := []float64{4, 2, 1, 0.5}
	a := WithSpectrum(64, 4, sigma, 11)
	var want float64
	for _, s := range sigma {
		want += s * s
	}
	got := lin.FrobeniusNorm(a)
	if math.Abs(got*got-want) > 1e-12*want {
		t.Fatalf("‖A‖_F² = %g, want %g", got*got, want)
	}
	if k := lin.TwoNormCond(a); math.Abs(k-8) > 1e-6 {
		t.Fatalf("κ = %g, want 8", k)
	}
}

func TestGeometricSpectrum(t *testing.T) {
	s := GeometricSpectrum(5, 1e4)
	if s[0] != 1 || math.Abs(s[4]-1e-4) > 1e-19 {
		t.Fatalf("spectrum endpoints %g..%g, want 1..1e-4", s[0], s[4])
	}
	for i := 1; i < len(s); i++ {
		if s[i] >= s[i-1] {
			t.Fatalf("spectrum not decreasing at %d", i)
		}
	}
	if one := GeometricSpectrum(1, 1e4); one[0] != 1 {
		t.Fatalf("n=1 spectrum %v", one)
	}
}

func TestPanics(t *testing.T) {
	assertPanics(t, "cond < 1", func() { WithCond(8, 2, 0.5, 1) })
	assertPanics(t, "sigma length", func() { WithSpectrum(8, 2, []float64{1}, 1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	f()
}

func TestFlattenRoundTrip(t *testing.T) {
	a := WithCond(6, 3, 10, 5)
	flat := Flatten(a)
	if len(flat) != 18 {
		t.Fatalf("flat length %d", len(flat))
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			if flat[i*3+j] != a.At(i, j) {
				t.Fatalf("element (%d,%d) mismatch", i, j)
			}
		}
	}
}
