package simmpi

import "fmt"

// Collectives with the butterfly-schedule costs of the paper's §II-B:
//
//	Transpose(n, P):  δ(P)·(α + n·β)          (pairwise swap — SendRecv)
//	Bcast(n, P):      2·log₂P·α + 2n·δ(P)·β   (scatter + allgather)
//	Reduce(n, P):     2·log₂P·α + 2n·δ(P)·β   (reduce-scatter + gather)
//	Allreduce(n, P):  2·log₂P·α + 2n·δ(P)·β   (reduce-scatter + allgather)
//	Allgather(n, P):  log₂P·α + n·δ(P)·β      (recursive doubling, n = total)
//	Barrier(P):       log₂P·α                 (dissemination)
//
// Data movement itself uses the zero-cost raw transport (clock causality is
// still enforced); each participant then charges the formula cost, so the
// Msgs/Words counters report exactly the per-processor α and β cost units
// the paper's Tables I–VI are written in. Collectives synchronize: no rank
// leaves before every rank has entered (clock-wise), matching how the paper
// composes collective costs along the critical path.

// internal tags; user tags share the space but collectives allocate a
// fresh op sequence per call through per-comm FIFO ordering, so matching
// is unambiguous.
const (
	tagGather = -1000 - iota
	tagSpread
	tagBarrier
)

// delta is the paper's δ(x): 0 for x ≤ 1, 1 otherwise.
func delta(p int) int64 {
	if p <= 1 {
		return 0
	}
	return 1
}

// log2Ceil returns ⌈log₂ p⌉ (0 for p ≤ 1).
func log2Ceil(p int) int64 {
	var l int64
	for v := 1; v < p; v <<= 1 {
		l++
	}
	return l
}

// Barrier blocks until every member has entered, charging log₂P·α.
func (c *Comm) Barrier() error {
	if _, err := c.fanInOut(0, nil, nil); err != nil {
		return err
	}
	c.proc.ChargeComm(log2Ceil(c.Size()), 0)
	return nil
}

// Bcast distributes root's data to every member and returns it. Non-root
// callers pass nil. Charges 2·log₂P·α + 2n·δ(P)·β to every member.
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("simmpi: bcast root %d out of range %d", root, c.Size())
	}
	if c.Size() == 1 {
		return data, nil
	}
	out, err := c.fanInOut(root, nil, func(msgs [][]float64) []float64 { return data })
	if err != nil {
		return nil, err
	}
	n := int64(len(out))
	c.proc.ChargeComm(2*log2Ceil(c.Size()), 2*n*delta(c.Size()))
	return out, nil
}

// Reduce sums the members' equal-length vectors onto root. It returns the
// reduction on root and nil elsewhere. Charges 2·log₂P·α + 2n·δ(P)·β.
func (c *Comm) Reduce(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("simmpi: reduce root %d out of range %d", root, c.Size())
	}
	n := int64(len(data))
	if c.Size() == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out, nil
	}
	var result []float64
	_, err := c.fanInOut(root, data, func(msgs [][]float64) []float64 {
		result = sumVectors(msgs, len(data))
		return nil // nothing to spread
	})
	if err != nil {
		return nil, err
	}
	c.proc.ChargeComm(2*log2Ceil(c.Size()), 2*n*delta(c.Size()))
	if c.Index() == root {
		return result, nil
	}
	return nil, nil
}

// Allreduce sums the members' equal-length vectors and returns the result
// on every member. Charges 2·log₂P·α + 2n·δ(P)·β.
func (c *Comm) Allreduce(data []float64) ([]float64, error) {
	n := int64(len(data))
	if c.Size() == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out, nil
	}
	out, err := c.fanInOut(0, data, func(msgs [][]float64) []float64 {
		return sumVectors(msgs, len(data))
	})
	if err != nil {
		return nil, err
	}
	c.proc.ChargeComm(2*log2Ceil(c.Size()), 2*n*delta(c.Size()))
	return out, nil
}

// Allgather concatenates the members' (possibly unequal) blocks in rank
// order and returns the concatenation on every member. Charges
// log₂P·α + N·δ(P)·β where N is the total concatenated length, matching
// the paper's T_Allgather(n, P) with n the full gathered size.
func (c *Comm) Allgather(data []float64) ([]float64, error) {
	if c.Size() == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out, nil
	}
	out, err := c.fanInOut(0, data, func(msgs [][]float64) []float64 {
		var total int
		for _, m := range msgs {
			total += len(m)
		}
		cat := make([]float64, 0, total)
		for _, m := range msgs {
			cat = append(cat, m...)
		}
		return cat
	})
	if err != nil {
		return nil, err
	}
	c.proc.ChargeComm(log2Ceil(c.Size()), int64(len(out))*delta(c.Size()))
	return out, nil
}

// Transpose swaps payloads with a partner rank (the paper's Transpose
// collective over Π[y,x,z]); the exchange costs δ(P)·(α + n·β) via
// SendRecv. When partner == self it is free and returns the input.
func (c *Comm) Transpose(partner int, data []float64) ([]float64, error) {
	if partner == c.Index() {
		out := make([]float64, len(data))
		copy(out, data)
		return out, nil
	}
	return c.SendRecv(partner, tagSpread, data)
}

// fanInOut is the internal data plane shared by the collectives: gather
// every member's contribution at root, apply combine there, and spread the
// result back to all members. Clock causality makes this synchronizing
// (every output clock ≥ every input clock — the root's max-propagation);
// cost is charged separately by each collective's formula. combine runs
// only on root; msgs arrive in member order. A nil combine gathers only.
func (c *Comm) fanInOut(root int, contrib []float64, combine func([][]float64) []float64) ([]float64, error) {
	p := c.Size()
	if c.Index() == root {
		msgs := make([][]float64, p)
		msgs[root] = contrib
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			m, err := c.recvRaw(i, tagGather)
			if err != nil {
				return nil, err
			}
			msgs[i] = m
		}
		var out []float64
		if combine != nil {
			out = combine(msgs)
		}
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			if err := c.sendRaw(i, tagSpread, out); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := c.sendRaw(root, tagGather, contrib); err != nil {
		return nil, err
	}
	return c.recvRaw(root, tagSpread)
}

func sumVectors(msgs [][]float64, n int) []float64 {
	out := make([]float64, n)
	for _, m := range msgs {
		if len(m) != n {
			panic(fmt.Sprintf("simmpi: reduction length mismatch: %d vs %d", len(m), n))
		}
		for i, v := range m {
			out[i] += v
		}
	}
	return out
}
