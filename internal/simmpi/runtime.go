package simmpi

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cacqr/internal/transport"
)

// CostParams are the α-β-γ machine parameters used by the virtual clock.
// Alpha is seconds per message, Beta seconds per 8-byte word, Gamma seconds
// per floating point operation.
type CostParams struct {
	Alpha float64
	Beta  float64
	Gamma float64
}

// DefaultCost is a generic machine with α ≫ β ≫ γ, reflecting the paper's
// assumption about current architectures.
var DefaultCost = CostParams{Alpha: 1e-6, Beta: 1e-9, Gamma: 1e-11}

// Options configure a run.
type Options struct {
	// Cost sets the virtual-clock machine parameters. Zero value means
	// DefaultCost.
	Cost CostParams
	// Timeout aborts the run if wall-clock time exceeds it (guards tests
	// against deadlock). Zero means no watchdog.
	Timeout time.Duration
	// Cancel, when non-nil, aborts the run as soon as the channel is
	// closed — how a context cancellation (an HTTP client disconnect, a
	// deadline) reaches into an in-flight simulated run. The run
	// returns ErrCanceled.
	Cancel <-chan struct{}
	// FailRank, when FailEnabled, makes rank FailRank return an injected
	// error the first time it calls Compute, exercising abort paths.
	FailEnabled bool
	FailRank    int
}

// ErrAborted is returned by communication calls on surviving ranks after
// another rank has failed.
var ErrAborted = errors.New("simmpi: run aborted")

// ErrTimeout is returned when the watchdog fires before all ranks finish.
var ErrTimeout = errors.New("simmpi: watchdog timeout (likely deadlock)")

// ErrCanceled is returned when Options.Cancel fires before all ranks
// finish.
var ErrCanceled = errors.New("simmpi: run canceled")

// ErrInjectedFailure is the error produced by Options.FailEnabled.
var ErrInjectedFailure = errors.New("simmpi: injected rank failure")

// Stats summarizes a completed run. It is the backend-independent
// transport.Stats: for the simulated runtime, Time is virtual seconds
// and Msgs/Words/Flops are exact α-β-γ cost units (Bytes stays 0 — no
// real bytes move between goroutine ranks).
type Stats = transport.Stats

// Counters are one rank's accumulated cost measures (the
// backend-independent transport.Counters).
type Counters = transport.Counters

// message is an in-flight point-to-point payload.
type message struct {
	commID    int
	src       int // global rank
	tag       int
	data      []float64
	sendStart float64 // sender's clock when the send began
}

// mailbox is one rank's incoming message queue with condition-variable
// matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []message
	aborted bool
}

// runtime is the shared state of one Run invocation.
type rt struct {
	p     int
	cost  CostParams
	boxes []*mailbox
	reg   commRegistry

	abortOnce sync.Once
	abortErr  error
}

func (r *rt) abort(err error) {
	r.abortOnce.Do(func() {
		r.abortErr = err
		for _, b := range r.boxes {
			b.mu.Lock()
			b.aborted = true
			b.cond.Broadcast()
			b.mu.Unlock()
		}
	})
}

// Proc is the handle a rank's body uses for all communication and cost
// accounting. It is not safe for concurrent use by multiple goroutines.
type Proc struct {
	rank int
	rt   *rt

	clock    float64
	msgs     int64
	words    int64
	flops    int64
	failArm  bool
	world    *Comm
	failErr  error
	finished bool

	phase  string
	phases map[string]Counters
}

// SetPhase labels subsequent cost charges with a phase name (e.g. an
// algorithm line number) and returns the previous label so callers can
// restore it. Per-phase counters appear in Stats.Phases, letting tests
// compare measured per-line costs against the model's per-line tables.
// An empty label disables phase accounting for the following charges.
func (p *Proc) SetPhase(label string) (prev string) {
	prev = p.phase
	p.phase = label
	return prev
}

// chargePhase accumulates a charge into the current phase, if any.
func (p *Proc) chargePhase(msgs, words, flops int64) {
	if p.phase == "" {
		return
	}
	if p.phases == nil {
		p.phases = make(map[string]Counters)
	}
	c := p.phases[p.phase]
	c.Msgs += msgs
	c.Words += words
	c.Flops += flops
	p.phases[p.phase] = c
}

// Rank returns this process's global rank in [0, P).
func (p *Proc) Rank() int { return p.rank }

// Size returns the total number of ranks in the run.
func (p *Proc) Size() int { return p.rt.p }

// World returns the communicator containing every rank.
func (p *Proc) World() transport.Comm { return p.world }

// Clock returns the rank's current virtual time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// Counters returns a snapshot of the rank's cost counters.
func (p *Proc) Counters() Counters {
	return Counters{Msgs: p.msgs, Words: p.words, Flops: p.flops, Time: p.clock}
}

// ChargeComm charges communication cost to the virtual clock and the
// per-rank counters: alphaUnits message latencies and words words moved.
// Collectives use it to charge exactly the butterfly-schedule formulas of
// the paper's §II-B, so the Msgs and Words counters are per-processor α
// and β cost units in the paper's sense.
func (p *Proc) ChargeComm(alphaUnits, words int64) {
	if alphaUnits < 0 || words < 0 {
		panic("simmpi: negative communication charge")
	}
	p.msgs += alphaUnits
	p.words += words
	p.clock += float64(alphaUnits)*p.rt.cost.Alpha + float64(words)*p.rt.cost.Beta
	p.chargePhase(alphaUnits, words, 0)
}

// Compute charges flops floating point operations to the virtual clock.
// It is how algorithms account for local BLAS-style work. It returns an
// injected failure when the run was configured with one (tests of abort
// paths); production algorithms propagate the error.
func (p *Proc) Compute(flops int64) error {
	if p.failArm {
		p.failArm = false
		p.failErr = fmt.Errorf("%w (rank %d)", ErrInjectedFailure, p.rank)
		return p.failErr
	}
	if flops < 0 {
		panic("simmpi: negative flop count")
	}
	p.flops += flops
	p.clock += float64(flops) * p.rt.cost.Gamma
	p.chargePhase(0, 0, flops)
	return nil
}

// AdvanceClock adds dt seconds of non-flop local work (used by tests).
func (p *Proc) AdvanceClock(dt float64) { p.clock += dt }

// Run executes body on p ranks with default options and returns run
// statistics. The first error returned by any body aborts the run and is
// returned.
func Run(p int, body func(*Proc) error) (*Stats, error) {
	return RunWithOptions(p, Options{}, body)
}

// RunWithOptions executes body on p ranks under the given options.
func RunWithOptions(np int, opts Options, body func(*Proc) error) (*Stats, error) {
	if np <= 0 {
		return nil, fmt.Errorf("simmpi: invalid rank count %d", np)
	}
	cost := opts.Cost
	if cost == (CostParams{}) {
		cost = DefaultCost
	}
	r := &rt{p: np, cost: cost, boxes: make([]*mailbox, np)}
	for i := range r.boxes {
		b := &mailbox{}
		b.cond = sync.NewCond(&b.mu)
		r.boxes[i] = b
	}

	procs := make([]*Proc, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	wg.Add(np)

	worldRanks := make([]int, np)
	for i := range worldRanks {
		worldRanks[i] = i
	}

	for i := 0; i < np; i++ {
		pr := &Proc{rank: i, rt: r}
		pr.world = &Comm{proc: pr, id: 0, ranks: worldRanks, index: i}
		if opts.FailEnabled && opts.FailRank == i {
			pr.failArm = true
		}
		procs[i] = pr
		go func(pr *Proc) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					buf := make([]byte, 4096)
					n := runtime.Stack(buf, false)
					errs[pr.rank] = fmt.Errorf("simmpi: rank %d panicked: %v\n%s", pr.rank, rec, buf[:n])
					r.abort(errs[pr.rank])
				}
				pr.finished = true
			}()
			if err := body(pr); err != nil {
				errs[pr.rank] = err
				r.abort(err)
			}
		}(pr)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	var watchdog <-chan time.Time
	if opts.Timeout > 0 {
		t := time.NewTimer(opts.Timeout)
		defer t.Stop()
		watchdog = t.C
	}
	select {
	case <-done:
	case <-watchdog:
		r.abort(ErrTimeout)
		<-done
	case <-opts.Cancel:
		r.abort(ErrCanceled)
		<-done
	}

	// The abort cause is the root error; ranks that merely observed the
	// abort report ErrAborted, which would mask it.
	firstErr := r.abortErr
	if firstErr == nil {
		for _, e := range errs {
			if e != nil {
				firstErr = e
				break
			}
		}
	}

	st := &Stats{PerRank: make([]Counters, np)}
	for _, pr := range procs {
		for label, c := range pr.phases {
			if st.Phases == nil {
				st.Phases = make(map[string]Counters)
			}
			agg := st.Phases[label]
			if c.Msgs > agg.Msgs {
				agg.Msgs = c.Msgs
			}
			if c.Words > agg.Words {
				agg.Words = c.Words
			}
			if c.Flops > agg.Flops {
				agg.Flops = c.Flops
			}
			st.Phases[label] = agg
		}
	}
	for i, pr := range procs {
		c := pr.Counters()
		st.PerRank[i] = c
		if c.Time > st.Time {
			st.Time = c.Time
		}
		if c.Msgs > st.MaxMsgs {
			st.MaxMsgs = c.Msgs
		}
		if c.Words > st.MaxWords {
			st.MaxWords = c.Words
		}
		if c.Flops > st.MaxFlops {
			st.MaxFlops = c.Flops
		}
		st.TotalMsgs += c.Msgs
		st.TotalWords += c.Words
		st.TotalFlops += c.Flops
	}
	if firstErr != nil {
		return st, firstErr
	}
	return st, nil
}
