package simmpi

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestReduceLengthMismatchSurfaces(t *testing.T) {
	// Mismatched reduction lengths are a programming error; the runtime
	// must turn the panic into a run error, not a crash or deadlock.
	_, err := RunWithOptions(2, Options{Timeout: 10 * time.Second}, func(p *Proc) error {
		buf := make([]float64, 2+p.Rank()) // lengths differ across ranks
		_, err := p.World().Allreduce(buf)
		return err
	})
	if err == nil {
		t.Fatal("mismatched reduction lengths accepted")
	}
}

func TestSubgroupIndexOutOfRangeSurfaces(t *testing.T) {
	_, err := RunWithOptions(2, Options{Timeout: 10 * time.Second}, func(p *Proc) error {
		p.World().Subgroup([]int{0, 5})
		return nil
	})
	if err == nil {
		t.Fatal("out-of-range subgroup index accepted")
	}
}

func TestClockAccessors(t *testing.T) {
	_, err := RunWithOptions(1, Options{Cost: CostParams{Gamma: 2}}, func(p *Proc) error {
		if p.Clock() != 0 {
			return errors.New("fresh clock not zero")
		}
		if err := p.Compute(5); err != nil {
			return err
		}
		if p.Clock() != 10 {
			return fmt.Errorf("clock %v after 5 flops at γ=2", p.Clock())
		}
		p.AdvanceClock(1.5)
		if p.Clock() != 11.5 {
			return fmt.Errorf("clock %v after advance", p.Clock())
		}
		c := p.Counters()
		if c.Flops != 5 || c.Time != 11.5 {
			return fmt.Errorf("counters %+v", c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldAccessors(t *testing.T) {
	_, err := Run(3, func(p *Proc) error {
		w := p.World()
		if w.Size() != 3 || w.Index() != p.Rank() {
			return errors.New("world accessors wrong")
		}
		if w.GlobalRank(2) != 2 {
			return errors.New("GlobalRank wrong")
		}
		if w.Proc() != p {
			return errors.New("Proc accessor wrong")
		}
		if p.Size() != 3 {
			return errors.New("Size wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplitDeterminism(t *testing.T) {
	// Splitting twice along different axes must wire up consistently on
	// every rank: a 2D decomposition where row and column sums check out.
	_, err := RunWithOptions(6, Options{Timeout: 30 * time.Second}, func(p *Proc) error {
		// 2 rows x 3 cols; rank = row*3 + col.
		row, col := p.Rank()/3, p.Rank()%3
		rowComm, err := p.World().Split(row, col)
		if err != nil {
			return err
		}
		colComm, err := p.World().Split(col, row)
		if err != nil {
			return err
		}
		rs, err := rowComm.Allreduce([]float64{float64(p.Rank())})
		if err != nil {
			return err
		}
		cs, err := colComm.Allreduce([]float64{float64(p.Rank())})
		if err != nil {
			return err
		}
		wantRow := float64(3*row*3 + 3) // sum of {3r, 3r+1, 3r+2}
		wantCol := float64(col + col + 3)
		if rs[0] != wantRow || cs[0] != wantCol {
			return fmt.Errorf("rank %d: row sum %v (want %v), col sum %v (want %v)",
				p.Rank(), rs[0], wantRow, cs[0], wantCol)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhaseAccounting(t *testing.T) {
	st, err := RunWithOptions(2, Options{Cost: CostParams{Alpha: 1, Beta: 1, Gamma: 1}}, func(p *Proc) error {
		// Unlabeled work is not phase-attributed.
		if err := p.Compute(5); err != nil {
			return err
		}
		prev := p.SetPhase("compute")
		if prev != "" {
			return errors.New("fresh phase not empty")
		}
		if err := p.Compute(int64(10 * (p.Rank() + 1))); err != nil {
			return err
		}
		p.SetPhase("talk")
		if _, err := p.World().Allreduce([]float64{1, 2}); err != nil {
			return err
		}
		p.SetPhase("")
		p.ChargeComm(1, 1) // not attributed
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Phases) != 2 {
		t.Fatalf("phases: %v", st.Phases)
	}
	if c := st.Phases["compute"]; c.Flops != 20 || c.Msgs != 0 {
		t.Fatalf("compute phase %+v (want per-rank max flops 20)", c)
	}
	if c := st.Phases["talk"]; c.Msgs != 2 || c.Words != 4 || c.Flops != 0 {
		t.Fatalf("talk phase %+v", c)
	}
	// Unattributed work appears in totals but no phase.
	if st.MaxFlops != 25 {
		t.Fatalf("MaxFlops %d", st.MaxFlops)
	}
}

func TestManyRanksSmoke(t *testing.T) {
	// 512 goroutine ranks with a world allreduce: the runtime must scale
	// to the largest grids the test suite uses.
	const p = 512
	st, err := RunWithOptions(p, Options{Timeout: 60 * time.Second}, func(pr *Proc) error {
		v, err := pr.World().Allreduce([]float64{1})
		if err != nil {
			return err
		}
		if v[0] != p {
			return fmt.Errorf("allreduce %v", v[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxMsgs != 2*log2Ceil(p) {
		t.Fatalf("allreduce α %d, want %d", st.MaxMsgs, 2*log2Ceil(p))
	}
}
