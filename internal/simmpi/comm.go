package simmpi

import (
	"fmt"
	"sort"
	"sync"

	"cacqr/internal/transport"
)

// Comm is an ordered group of ranks, analogous to an MPI communicator.
// Point-to-point operations address peers by their index within the
// communicator; collectives run over all members. Comm values are
// per-rank handles onto the same logical communicator, identified by a
// run-unique id used for message matching.
type Comm struct {
	proc  *Proc
	id    int
	ranks []int // global ranks of members, in communicator order
	index int   // this rank's position within ranks

	nsplits int // per-member count of child communicators created
}

// commRegistry assigns run-unique ids to communicators. All members of a
// parent communicator derive the same key for the same collective split,
// so they agree on the child's id without extra communication.
type commRegistry struct {
	mu   sync.Mutex
	ids  map[string]int
	next int
}

func (r *rt) commID(key string) int {
	reg := &r.reg
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.ids == nil {
		reg.ids = make(map[string]int)
		reg.next = 1
	}
	if id, ok := reg.ids[key]; ok {
		return id
	}
	id := reg.next
	reg.next++
	reg.ids[key] = id
	return id
}

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.ranks) }

// Index returns this rank's position within the communicator.
func (c *Comm) Index() int { return c.index }

// GlobalRank returns the global rank of member i.
func (c *Comm) GlobalRank(i int) int { return c.ranks[i] }

// Proc returns the owning process handle.
func (c *Comm) Proc() transport.Proc { return c.proc }

// Split partitions the communicator: members passing the same color form a
// new communicator, ordered by key (ties broken by parent index). Like
// MPI_Comm_split, it must be called by every member. Returns this rank's
// handle on its new communicator.
func (c *Comm) Split(color, key int) (transport.Comm, error) {
	// Exchange (color, key) among all members via an allgather so every
	// rank can compute every group deterministically. This mirrors how
	// MPI implementations realize split, and charges the proper cost.
	local := []float64{float64(color), float64(key), float64(c.index)}
	all, err := c.Allgather(local)
	if err != nil {
		return nil, err
	}
	type entry struct{ color, key, index int }
	entries := make([]entry, c.Size())
	for i := 0; i < c.Size(); i++ {
		entries[i] = entry{int(all[3*i]), int(all[3*i+1]), int(all[3*i+2])}
	}
	var group []entry
	for _, e := range entries {
		if e.color == color {
			group = append(group, e)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].index < group[j].index
	})
	ranks := make([]int, len(group))
	idx := -1
	for i, e := range group {
		ranks[i] = c.ranks[e.index]
		if e.index == c.index {
			idx = i
		}
	}
	seq := c.nsplits
	c.nsplits++
	id := c.proc.rt.commID(fmt.Sprintf("%d/%d/%d", c.id, seq, color))
	return &Comm{proc: c.proc, id: id, ranks: ranks, index: idx}, nil
}

// Subgroup creates a communicator from an explicit ordered list of parent
// indices. Every parent member must call it with an identical list;
// members not in the list receive a nil communicator. Unlike Split this
// performs no communication: the list is already globally known, which is
// how the CA-CQR2 grid builds its row/column/depth/subcube communicators
// from arithmetic on coordinates.
func (c *Comm) Subgroup(indices []int) transport.Comm {
	seq := c.nsplits
	c.nsplits++
	key := fmt.Sprintf("%d/%d/g%v", c.id, seq, indices)
	id := c.proc.rt.commID(key)
	idx := -1
	ranks := make([]int, len(indices))
	for i, pi := range indices {
		if pi < 0 || pi >= len(c.ranks) {
			panic(fmt.Sprintf("simmpi: Subgroup index %d out of range", pi))
		}
		ranks[i] = c.ranks[pi]
		if pi == c.index {
			idx = i
		}
	}
	if idx == -1 {
		return nil
	}
	return &Comm{proc: c.proc, id: id, ranks: ranks, index: idx}
}

// Send transfers data to communicator member dst with the given tag. The
// send is buffered (asynchronous): it enqueues immediately. The sender is
// charged α + len(data)·β on its virtual clock.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if err := c.sendRaw(dst, tag, data); err != nil {
		return err
	}
	c.proc.ChargeComm(1, int64(len(data)))
	return nil
}

// Recv blocks until a message from communicator member src with the given
// tag arrives and returns its payload. The receiver is charged
// α + words·β, and its clock can never run ahead of the matching send's
// start time.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	m, err := c.match(src, tag)
	if err != nil {
		return nil, err
	}
	if m.sendStart > c.proc.clock {
		c.proc.clock = m.sendStart
	}
	c.proc.ChargeComm(1, int64(len(m.data)))
	return m.data, nil
}

// SendRecv exchanges messages with a partner (both directions, same tag).
// It models a full-duplex pairwise exchange and charges a single
// α + max(sent, received)·β — the cost of one butterfly round and of the
// paper's Transpose collective. It is safe against deadlock because the
// underlying transport is buffered.
func (c *Comm) SendRecv(partner, tag int, data []float64) ([]float64, error) {
	if err := c.sendRaw(partner, tag, data); err != nil {
		return nil, err
	}
	got, err := c.recvRaw(partner, tag)
	if err != nil {
		return nil, err
	}
	w := int64(len(data))
	if r := int64(len(got)); r > w {
		w = r
	}
	c.proc.ChargeComm(1, w)
	return got, nil
}

// sendRaw moves data without charging communication cost; the payload
// carries the sender's clock so receivers cannot run ahead of causality.
// Collectives use raw transport for data movement and charge their cost
// by formula via ChargeComm.
func (c *Comm) sendRaw(dst, tag int, data []float64) error {
	if dst < 0 || dst >= len(c.ranks) {
		return fmt.Errorf("simmpi: send to invalid rank %d of %d", dst, len(c.ranks))
	}
	p := c.proc
	payload := make([]float64, len(data))
	copy(payload, data)
	box := p.rt.boxes[c.ranks[dst]]
	box.mu.Lock()
	if box.aborted {
		box.mu.Unlock()
		return ErrAborted
	}
	box.queue = append(box.queue, message{commID: c.id, src: p.rank, tag: tag, data: payload, sendStart: p.clock})
	box.cond.Signal()
	box.mu.Unlock()
	return nil
}

// recvRaw receives without charging cost, advancing the local clock to the
// sender's clock if it is ahead (synchronization without charge).
func (c *Comm) recvRaw(src, tag int) ([]float64, error) {
	m, err := c.match(src, tag)
	if err != nil {
		return nil, err
	}
	if m.sendStart > c.proc.clock {
		c.proc.clock = m.sendStart
	}
	return m.data, nil
}

// match blocks until a message with the given source and tag is available
// on this communicator and dequeues it.
func (c *Comm) match(src, tag int) (message, error) {
	if src < 0 || src >= len(c.ranks) {
		return message{}, fmt.Errorf("simmpi: recv from invalid rank %d of %d", src, len(c.ranks))
	}
	p := c.proc
	srcGlobal := c.ranks[src]
	box := p.rt.boxes[p.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		if box.aborted {
			return message{}, ErrAborted
		}
		for i, m := range box.queue {
			if m.commID == c.id && m.src == srcGlobal && m.tag == tag {
				box.queue = append(box.queue[:i], box.queue[i+1:]...)
				return m, nil
			}
		}
		box.cond.Wait()
	}
}
