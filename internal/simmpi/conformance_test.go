package simmpi_test

import (
	"testing"
	"time"

	"cacqr/internal/simmpi"
	"cacqr/internal/transport"
	"cacqr/internal/transport/conformancetest"
)

// TestTransportConformance runs the backend-independent transport
// contract against the simulated runtime.
func TestTransportConformance(t *testing.T) {
	conformancetest.Run(t, func(np int, timeout time.Duration, body func(p transport.Proc) error) (*transport.Stats, error) {
		return simmpi.RunWithOptions(np, simmpi.Options{Timeout: timeout}, func(p *simmpi.Proc) error {
			return body(p)
		})
	})
}
