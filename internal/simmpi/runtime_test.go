package simmpi

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestRunBasicRanks(t *testing.T) {
	seen := make([]bool, 8)
	st, err := Run(8, func(p *Proc) error {
		if p.Size() != 8 {
			return fmt.Errorf("size %d", p.Size())
		}
		seen[p.Rank()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("rank %d never ran", i)
		}
	}
	if st.Time != 0 || st.TotalMsgs != 0 {
		t.Fatalf("idle run accumulated cost: %+v", st)
	}
}

func TestRunRejectsBadRankCount(t *testing.T) {
	if _, err := Run(0, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("expected error for P=0")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	st, err := RunWithOptions(2, Options{Cost: CostParams{Gamma: 2}}, func(p *Proc) error {
		return p.Compute(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Time != 20 {
		t.Fatalf("clock = %v, want 20", st.Time)
	}
	if st.MaxFlops != 10 || st.TotalFlops != 20 {
		t.Fatalf("flop counters wrong: %+v", st)
	}
}

func TestSendRecvDelivers(t *testing.T) {
	_, err := Run(2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send(1, 7, []float64{1, 2, 3})
		}
		got, err := w.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			return fmt.Errorf("payload %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufferIndependence(t *testing.T) {
	_, err := Run(2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			buf := []float64{42}
			if err := w.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = -1 // must not corrupt the in-flight message
			return nil
		}
		got, err := w.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			return fmt.Errorf("message corrupted: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags must match out of arrival order.
	_, err := Run(2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			if err := w.Send(1, 1, []float64{1}); err != nil {
				return err
			}
			return w.Send(1, 2, []float64{2})
		}
		got2, err := w.Recv(0, 2)
		if err != nil {
			return err
		}
		got1, err := w.Recv(0, 1)
		if err != nil {
			return err
		}
		if got1[0] != 1 || got2[0] != 2 {
			return fmt.Errorf("tag matching wrong: %v %v", got1, got2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerTag(t *testing.T) {
	_, err := Run(2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				if err := w.Send(1, 0, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 10; i++ {
			got, err := w.Recv(0, 0)
			if err != nil {
				return err
			}
			if got[0] != float64(i) {
				return fmt.Errorf("out of order: got %v want %d", got[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockCausality(t *testing.T) {
	// A receiver's clock must never be behind the sender's send-start.
	cost := CostParams{Alpha: 1, Beta: 0, Gamma: 1}
	st, err := RunWithOptions(2, Options{Cost: cost}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			if err := p.Compute(100); err != nil { // clock = 100
				return err
			}
			return w.Send(1, 0, []float64{1}) // clock = 101
		}
		if _, err := w.Recv(0, 0); err != nil { // clock = max(0,100)+1 = 101
			return err
		}
		if p.Clock() < 100 {
			return fmt.Errorf("receiver clock %v ran ahead of causality", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Time != 101 {
		t.Fatalf("critical path %v, want 101", st.Time)
	}
}

func TestSendRecvExchangeChargesOneRound(t *testing.T) {
	cost := CostParams{Alpha: 1, Beta: 1}
	st, err := RunWithOptions(2, Options{Cost: cost}, func(p *Proc) error {
		w := p.World()
		got, err := w.SendRecv(1-p.Rank(), 5, []float64{float64(p.Rank())})
		if err != nil {
			return err
		}
		if got[0] != float64(1-p.Rank()) {
			return fmt.Errorf("exchange payload %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One α + one word·β per rank.
	if st.MaxMsgs != 1 || st.MaxWords != 1 {
		t.Fatalf("exchange charged msgs=%d words=%d, want 1,1", st.MaxMsgs, st.MaxWords)
	}
	if st.Time != 2 {
		t.Fatalf("exchange time %v, want 2", st.Time)
	}
}

func TestInvalidPeerErrors(t *testing.T) {
	_, err := Run(2, func(p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		if err := p.World().Send(5, 0, nil); err == nil {
			return errors.New("send to invalid rank succeeded")
		}
		if _, err := p.World().Recv(-1, 0); err == nil {
			return errors.New("recv from invalid rank succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogBreaksDeadlock(t *testing.T) {
	start := time.Now()
	_, err := RunWithOptions(2, Options{Timeout: 200 * time.Millisecond}, func(p *Proc) error {
		// Both ranks receive; nobody sends: a deadlock.
		_, err := p.World().Recv(1-p.Rank(), 0)
		return err
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("watchdog took too long")
	}
}

func TestInjectedFailureAborts(t *testing.T) {
	_, err := RunWithOptions(4, Options{FailEnabled: true, FailRank: 2, Timeout: 5 * time.Second}, func(p *Proc) error {
		if err := p.Compute(1); err != nil {
			return err
		}
		// Everyone else blocks on a collective that rank 2 never joins.
		_, err := p.World().Allreduce([]float64{1})
		return err
	})
	if !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("got %v, want injected failure", err)
	}
}

func TestPanicInBodyIsReported(t *testing.T) {
	_, err := RunWithOptions(3, Options{Timeout: 5 * time.Second}, func(p *Proc) error {
		if p.Rank() == 1 {
			panic("boom")
		}
		_, err := p.World().Allreduce([]float64{1})
		return err
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
}

func TestPerRankCounters(t *testing.T) {
	st, err := Run(3, func(p *Proc) error {
		return p.Compute(int64(p.Rank()) * 100)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerRank) != 3 {
		t.Fatalf("PerRank len %d", len(st.PerRank))
	}
	for i, c := range st.PerRank {
		if c.Flops != int64(i)*100 {
			t.Fatalf("rank %d flops %d", i, c.Flops)
		}
	}
	if st.MaxFlops != 200 || st.TotalFlops != 300 {
		t.Fatalf("aggregates wrong: %+v", st)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	_, err := RunWithOptions(1, Options{Timeout: time.Second}, func(p *Proc) error {
		p.ChargeComm(-1, 0)
		return nil
	})
	if err == nil {
		t.Fatal("negative charge not rejected")
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	// The virtual time of a fixed communication pattern must not depend
	// on goroutine scheduling.
	run := func() float64 {
		st, err := Run(8, func(p *Proc) error {
			w := p.World()
			if err := p.Compute(int64(p.Rank()+1) * 50); err != nil {
				return err
			}
			v, err := w.Allreduce([]float64{float64(p.Rank())})
			if err != nil {
				return err
			}
			if v[0] != 28 {
				return fmt.Errorf("allreduce sum %v", v[0])
			}
			_, err = w.Allgather([]float64{float64(p.Rank())})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Time
	}
	t0 := run()
	for i := 0; i < 10; i++ {
		if ti := run(); math.Abs(ti-t0) > 1e-15 {
			t.Fatalf("virtual time varies across runs: %v vs %v", t0, ti)
		}
	}
}
