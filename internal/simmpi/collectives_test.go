package simmpi

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"cacqr/internal/transport"
)

// collectiveCost runs body on p ranks with α=1, β=1 and returns the
// per-rank maximum (msgs, words) charges — the α and β cost units the
// paper's formulas predict.
func collectiveCost(t *testing.T, p int, body func(*Proc) error) (int64, int64) {
	t.Helper()
	st, err := RunWithOptions(p, Options{Cost: CostParams{Alpha: 1, Beta: 1}, Timeout: 30 * time.Second}, body)
	if err != nil {
		t.Fatal(err)
	}
	return st.MaxMsgs, st.MaxWords
}

func TestBcastDelivers(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7, 8} {
		_, err := Run(p, func(pr *Proc) error {
			var in []float64
			if pr.Rank() == 0 {
				in = []float64{3, 1, 4}
			}
			out, err := pr.World().Bcast(0, in)
			if err != nil {
				return err
			}
			if len(out) != 3 || out[0] != 3 || out[1] != 1 || out[2] != 4 {
				return fmt.Errorf("rank %d got %v", pr.Rank(), out)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	_, err := Run(4, func(pr *Proc) error {
		var in []float64
		if pr.Rank() == 2 {
			in = []float64{9}
		}
		out, err := pr.World().Bcast(2, in)
		if err != nil {
			return err
		}
		if out[0] != 9 {
			return fmt.Errorf("got %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastCostFormula(t *testing.T) {
	// T_Bcast(n, P) = 2·log₂P·α + 2n·δ(P)·β.
	for _, tc := range []struct{ p, n int }{{2, 10}, {4, 16}, {8, 5}, {16, 1}} {
		msgs, words := collectiveCost(t, tc.p, func(pr *Proc) error {
			var in []float64
			if pr.Rank() == 0 {
				in = make([]float64, tc.n)
			}
			_, err := pr.World().Bcast(0, in)
			return err
		})
		wantMsgs := 2 * log2Ceil(tc.p)
		wantWords := 2 * int64(tc.n) * delta(tc.p)
		if msgs != wantMsgs || words != wantWords {
			t.Fatalf("P=%d n=%d: cost (%d,%d), want (%d,%d)", tc.p, tc.n, msgs, words, wantMsgs, wantWords)
		}
	}
}

func TestReduceSums(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		_, err := Run(p, func(pr *Proc) error {
			out, err := pr.World().Reduce(0, []float64{float64(pr.Rank()), 1})
			if err != nil {
				return err
			}
			if pr.Rank() == 0 {
				wantSum := float64(p*(p-1)) / 2
				if out[0] != wantSum || out[1] != float64(p) {
					return fmt.Errorf("reduce got %v", out)
				}
			} else if out != nil {
				return errors.New("non-root received reduction")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestReduceCostFormula(t *testing.T) {
	for _, tc := range []struct{ p, n int }{{2, 8}, {8, 32}} {
		msgs, words := collectiveCost(t, tc.p, func(pr *Proc) error {
			_, err := pr.World().Reduce(0, make([]float64, tc.n))
			return err
		})
		if msgs != 2*log2Ceil(tc.p) || words != 2*int64(tc.n) {
			t.Fatalf("P=%d n=%d: cost (%d,%d)", tc.p, tc.n, msgs, words)
		}
	}
}

func TestAllreduceMatchesReducePlusBcast(t *testing.T) {
	f := func(seed int64) bool {
		vals := make([]float64, 4)
		rng := seed
		for i := range vals {
			rng = rng*6364136223846793005 + 1442695040888963407
			vals[i] = float64(rng % 1000)
		}
		var fromAllreduce, fromReduceBcast []float64
		_, err := Run(4, func(pr *Proc) error {
			in := []float64{vals[pr.Rank()]}
			ar, err := pr.World().Allreduce(in)
			if err != nil {
				return err
			}
			red, err := pr.World().Reduce(0, in)
			if err != nil {
				return err
			}
			bc, err := pr.World().Bcast(0, red)
			if err != nil {
				return err
			}
			if pr.Rank() == 3 {
				fromAllreduce, fromReduceBcast = ar, bc
			}
			return nil
		})
		if err != nil {
			return false
		}
		return fromAllreduce[0] == fromReduceBcast[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceCostFormula(t *testing.T) {
	for _, tc := range []struct{ p, n int }{{2, 4}, {4, 100}, {16, 7}} {
		msgs, words := collectiveCost(t, tc.p, func(pr *Proc) error {
			_, err := pr.World().Allreduce(make([]float64, tc.n))
			return err
		})
		if msgs != 2*log2Ceil(tc.p) || words != 2*int64(tc.n) {
			t.Fatalf("P=%d n=%d: cost (%d,%d)", tc.p, tc.n, msgs, words)
		}
	}
}

func TestAllgatherConcatenatesInRankOrder(t *testing.T) {
	_, err := Run(4, func(pr *Proc) error {
		// Unequal block sizes: rank r contributes r+1 copies of r.
		in := make([]float64, pr.Rank()+1)
		for i := range in {
			in[i] = float64(pr.Rank())
		}
		out, err := pr.World().Allgather(in)
		if err != nil {
			return err
		}
		want := []float64{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
		if len(out) != len(want) {
			return fmt.Errorf("len %d", len(out))
		}
		for i := range want {
			if out[i] != want[i] {
				return fmt.Errorf("rank %d: out[%d]=%v want %v", pr.Rank(), i, out[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherCostFormula(t *testing.T) {
	// T_Allgather(n, P) = log₂P·α + n·δ(P)·β, n the total gathered size.
	for _, tc := range []struct{ p, blk int }{{2, 5}, {8, 3}, {16, 2}} {
		msgs, words := collectiveCost(t, tc.p, func(pr *Proc) error {
			_, err := pr.World().Allgather(make([]float64, tc.blk))
			return err
		})
		total := int64(tc.p * tc.blk)
		if msgs != log2Ceil(tc.p) || words != total {
			t.Fatalf("P=%d blk=%d: cost (%d,%d), want (%d,%d)", tc.p, tc.blk, msgs, words, log2Ceil(tc.p), total)
		}
	}
}

func TestTransposeSwaps(t *testing.T) {
	_, err := Run(2, func(pr *Proc) error {
		out, err := pr.World().Transpose(1-pr.Rank(), []float64{float64(pr.Rank())})
		if err != nil {
			return err
		}
		if out[0] != float64(1-pr.Rank()) {
			return fmt.Errorf("transpose got %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransposeSelfIsFree(t *testing.T) {
	st, err := RunWithOptions(1, Options{Cost: CostParams{Alpha: 1, Beta: 1}}, func(pr *Proc) error {
		out, err := pr.World().Transpose(0, []float64{42})
		if err != nil {
			return err
		}
		if out[0] != 42 {
			return fmt.Errorf("self transpose %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxMsgs != 0 || st.MaxWords != 0 {
		t.Fatalf("self transpose charged (%d,%d)", st.MaxMsgs, st.MaxWords)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	st, err := RunWithOptions(4, Options{Cost: CostParams{Alpha: 1, Gamma: 1}}, func(pr *Proc) error {
		if err := pr.Compute(int64(pr.Rank()) * 10); err != nil {
			return err
		}
		if err := pr.World().Barrier(); err != nil {
			return err
		}
		// After a barrier everyone's clock must be at least the slowest
		// entrant's (30) — charged 2α by the dissemination rounds.
		if pr.Clock() < 30 {
			return fmt.Errorf("rank %d clock %v below barrier bound", pr.Rank(), pr.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxMsgs != log2Ceil(4) {
		t.Fatalf("barrier charged %d α, want %d", st.MaxMsgs, log2Ceil(4))
	}
}

func TestCollectiveOnSingleRankIsFree(t *testing.T) {
	st, err := RunWithOptions(1, Options{Cost: CostParams{Alpha: 1, Beta: 1}}, func(pr *Proc) error {
		w := pr.World()
		if _, err := w.Bcast(0, []float64{1}); err != nil {
			return err
		}
		if _, err := w.Allreduce([]float64{1}); err != nil {
			return err
		}
		if _, err := w.Allgather([]float64{1}); err != nil {
			return err
		}
		if _, err := w.Reduce(0, []float64{1}); err != nil {
			return err
		}
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxMsgs != 0 || st.MaxWords != 0 {
		t.Fatalf("P=1 collectives charged (%d,%d)", st.MaxMsgs, st.MaxWords)
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	_, err := RunWithOptions(2, Options{Timeout: 5 * time.Second}, func(pr *Proc) error {
		_, err := pr.World().Bcast(7, nil)
		return err
	})
	if err == nil {
		t.Fatal("invalid root accepted")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 1024: 10}
	for p, want := range cases {
		if got := log2Ceil(p); got != want {
			t.Fatalf("log2Ceil(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestAllreduceAssociativityUnderSplit(t *testing.T) {
	// Sum over the world equals the sum of subgroup sums allreduced over
	// a representative comm — exercises Split + nested collectives.
	_, err := Run(8, func(pr *Proc) error {
		w := pr.World()
		half, err := w.Split(pr.Rank()/4, pr.Rank())
		if err != nil {
			return err
		}
		local, err := half.Allreduce([]float64{float64(pr.Rank())})
		if err != nil {
			return err
		}
		want := 6.0 // 0+1+2+3
		if pr.Rank() >= 4 {
			want = 22.0 // 4+5+6+7
		}
		if math.Abs(local[0]-want) > 0 {
			return fmt.Errorf("rank %d half-sum %v want %v", pr.Rank(), local[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOrderingByKey(t *testing.T) {
	_, err := Run(4, func(pr *Proc) error {
		// Reverse ordering via descending keys.
		c, err := pr.World().Split(0, -pr.Rank())
		if err != nil {
			return err
		}
		if c.Size() != 4 {
			return fmt.Errorf("size %d", c.Size())
		}
		wantIndex := 3 - pr.Rank()
		if c.Index() != wantIndex {
			return fmt.Errorf("rank %d index %d want %d", pr.Rank(), c.Index(), wantIndex)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubgroupCommunicates(t *testing.T) {
	_, err := Run(6, func(pr *Proc) error {
		w := pr.World()
		evens := w.Subgroup([]int{0, 2, 4})
		odds := w.Subgroup([]int{1, 3, 5})
		var mine transport.Comm
		if pr.Rank()%2 == 0 {
			mine = evens
			if odds != nil {
				return errors.New("even rank got odd comm")
			}
		} else {
			mine = odds
			if evens != nil {
				return errors.New("odd rank got even comm")
			}
		}
		sum, err := mine.Allreduce([]float64{float64(pr.Rank())})
		if err != nil {
			return err
		}
		want := 6.0 // 0+2+4
		if pr.Rank()%2 == 1 {
			want = 9.0 // 1+3+5
		}
		if sum[0] != want {
			return fmt.Errorf("rank %d sum %v want %v", pr.Rank(), sum[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
