// Package simmpi is the MPI substitute for the CA-CQR2 reproduction: a
// message-passing runtime in which every rank is a goroutine, point-to-point
// messages are matched by (communicator, source, tag), and collectives use
// the butterfly schedules the paper's §II-B cost analysis assumes.
//
// Each rank carries a virtual clock in the α-β-γ model. Local computation
// advances the clock by flops·γ; every message hop advances both endpoints
// by α + words·β, and a receiver can never complete a receive before the
// sender started the matching send. The maximum clock over all ranks at the
// end of a run is the critical-path execution time — precisely the quantity
// the paper's cost analysis bounds — while raw counters (messages, words,
// flops, per rank) let tests check the per-line cost tables.
//
// Entry points: Run/RunWithOptions spawn a world of ranks and return the
// aggregated Stats; Comm carries point-to-point operations (Send, Recv,
// SendRecv), communicator construction (Split, Subgroup), and the
// collectives (Barrier, Bcast, Reduce, Allreduce, Allgather, Transpose).
package simmpi
