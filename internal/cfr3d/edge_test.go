package cfr3d

import (
	"fmt"
	"testing"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func TestFactorMinimumSize(t *testing.T) {
	// n = E: one element per rank, immediate base case.
	const e = 2
	a := lin.RandomSPD(e, 3)
	runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
		ad, err := dist.FromGlobal(a, e, e, cb.Y, cb.X)
		if err != nil {
			return err
		}
		res, err := Factor(cb, ad.Local, e, Options{})
		if err != nil {
			return err
		}
		return checkFactor(a, cb, res, true)
	})
}

func TestFactorSequentialWithInverseDepth(t *testing.T) {
	// e = 1 (sequential cube): InverseDepth must be harmless because the
	// default base size equals n (no recursion happens).
	a := lin.RandomSPD(16, 5)
	runCube(t, 1, func(p *simmpi.Proc, cb *grid.Cube) error {
		res, err := Factor(cb, a.Clone(), 16, Options{InverseDepth: 3})
		if err != nil {
			return err
		}
		return checkFactor(a, cb, res, true)
	})
}

func TestFactorSequentialDeepRecursion(t *testing.T) {
	// e = 1 with a tiny explicit base size: pure recursion without any
	// communication must still match the sequential factorization.
	for _, inv := range []int{0, 1, 4} {
		inv := inv
		t.Run(fmt.Sprintf("inv%d", inv), func(t *testing.T) {
			a := lin.RandomSPD(32, 7)
			runCube(t, 1, func(p *simmpi.Proc, cb *grid.Cube) error {
				res, err := Factor(cb, a.Clone(), 32, Options{BaseSize: 2, InverseDepth: inv})
				if err != nil {
					return err
				}
				return checkFactor(a, cb, res, inv == 0)
			})
		})
	}
}

func TestFactorDeepInverseDepthLCorrect(t *testing.T) {
	// Regression: with InverseDepth ≥ 2, L21 = A21·L11⁻ᵀ must be applied
	// by blocked substitution because the sub-call's Y11 has unformed
	// off-diagonal blocks. A direct multiply by the incomplete inverse
	// silently corrupts L (masked downstream by CholeskyQR2's
	// self-correction).
	for _, tc := range []struct{ e, n, base, inv int }{
		{2, 16, 4, 2},
		{2, 32, 4, 2},
		{2, 32, 4, 3},
		{2, 32, 8, 5}, // deeper than the recursion itself
	} {
		t.Run(fmt.Sprintf("e%d_n%d_inv%d", tc.e, tc.n, tc.inv), func(t *testing.T) {
			a := lin.RandomSPD(tc.n, int64(tc.n+tc.inv))
			runCube(t, tc.e, func(p *simmpi.Proc, cb *grid.Cube) error {
				ad, err := dist.FromGlobal(a, tc.e, tc.e, cb.Y, cb.X)
				if err != nil {
					return err
				}
				res, err := Factor(cb, ad.Local, tc.n, Options{BaseSize: tc.base, InverseDepth: tc.inv})
				if err != nil {
					return err
				}
				return checkFactor(a, cb, res, false)
			})
		})
	}
}

func TestFactorLargeBaseEqualsCholInv(t *testing.T) {
	// base ≥ n: the whole factorization is one redundant base case and
	// the flop count is exactly CholFlops + TriInvFlops.
	const e, n = 2, 8
	a := lin.RandomSPD(n, 9)
	st, err := simmpi.RunWithOptions(e*e*e, simmpi.Options{
		Cost:    simmpi.CostParams{Alpha: 1, Beta: 1, Gamma: 1},
		Timeout: 60 * time.Second,
	}, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), e)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, e, e, cb.Y, cb.X)
		if err != nil {
			return err
		}
		_, err = Factor(cb, ad.Local, n, Options{BaseSize: n})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxFlops != lin.CholFlops(n)+lin.TriInvFlops(n) {
		t.Fatalf("flops %d, want %d", st.MaxFlops, lin.CholFlops(n)+lin.TriInvFlops(n))
	}
	// One slice Allgather of the full matrix.
	if st.MaxWords != int64(n*n) {
		t.Fatalf("words %d, want %d", st.MaxWords, n*n)
	}
}
