// Package cfr3d implements the paper's Algorithms 2–3: a recursive 3D
// Cholesky factorization that simultaneously produces the lower factor L
// (A = L·Lᵀ) and its inverse Y = L⁻¹, over a cubic processor grid with
// cyclic data distribution.
//
// The recursion halves the matrix until the base-case dimension n_o, at
// which point the panel is Allgathered over the 2D slice and factored
// redundantly by every rank (Algorithm 3 lines 1–3). n_o trades
// synchronization (more levels → more latency) against bandwidth; the
// paper's bandwidth-minimizing choice is n_o = n/P^{2/3}.
//
// InverseDepth reproduces the paper's legend parameter of the same name:
// recursion levels shallower than InverseDepth skip lines 12–14 (the
// explicit formation of Y21 = −Y22·L21·Y11), leaving Y block-diagonal at
// those levels. CA-CQR then applies R⁻¹ by blocked substitution with the
// inverted diagonal blocks, trading two MM3D calls per level for cheaper,
// smaller multiplies (§III-A's "alternate strategy").
package cfr3d

import (
	"fmt"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/mm3d"
)

// Options tune the factorization.
type Options struct {
	// BaseSize is n_o, the dimension at which recursion stops. 0 selects
	// the paper's bandwidth-optimal max(E, n/E²) for an edge-E cube.
	BaseSize int
	// InverseDepth is the number of top recursion levels that skip the
	// formation of the off-diagonal inverse block Y21.
	InverseDepth int
	// Workers bounds the goroutines each rank's local level-3 kernels
	// may use (≤ 1 = serial, the right default when many simulated ranks
	// already share the host). Results are identical for any value.
	Workers int
}

// Result carries the distributed factors.
type Result struct {
	// L is the cyclic local block of the lower-triangular factor.
	L *lin.Matrix
	// Y is the cyclic local block of L⁻¹ (block-diagonal only above
	// InverseDepth).
	Y *lin.Matrix
	// N is the global dimension.
	N int
	// InverseDepth echoes the option used, which consumers of Y need in
	// order to know which off-diagonal blocks were formed.
	InverseDepth int
	// BaseSize echoes the resolved n_o.
	BaseSize int
}

// Factor runs CFR3D on the SPD matrix whose cyclic local block is aLocal
// (n × n globally, distributed over the cube's slice and replicated
// across slices).
func Factor(cb *grid.Cube, aLocal *lin.Matrix, n int, opts Options) (*Result, error) {
	if n%cb.E != 0 {
		return nil, fmt.Errorf("cfr3d: dimension %d not divisible by cube edge %d", n, cb.E)
	}
	if aLocal.Rows != n/cb.E || aLocal.Cols != n/cb.E {
		return nil, fmt.Errorf("cfr3d: local block %dx%d does not match n=%d on edge-%d cube",
			aLocal.Rows, aLocal.Cols, n, cb.E)
	}
	base := opts.BaseSize
	if base <= 0 {
		base = n / (cb.E * cb.E)
		if base < cb.E {
			base = cb.E
		}
	}
	if base%cb.E != 0 && base != n {
		// The base-case Allgather reassembles an n_o×n_o cyclic panel, so
		// E must divide n_o. Round up.
		base += cb.E - base%cb.E
	}
	if opts.InverseDepth < 0 {
		return nil, fmt.Errorf("cfr3d: negative InverseDepth %d", opts.InverseDepth)
	}
	l, y, err := factor(cb, aLocal, n, base, 0, opts.InverseDepth, opts.Workers)
	if err != nil {
		return nil, err
	}
	return &Result{L: l, Y: y, N: n, InverseDepth: opts.InverseDepth, BaseSize: base}, nil
}

// factor is the recursive body; depth counts levels from the top.
func factor(cb *grid.Cube, aLocal *lin.Matrix, n, base, depth, invDepth, workers int) (lLocal, yLocal *lin.Matrix, err error) {
	// Base case also triggers when the matrix can no longer be halved
	// cleanly over the grid (n/2 must stay divisible by E).
	if n <= base || (n/2)%cb.E != 0 || n%2 != 0 {
		return baseCase(cb, aLocal, n)
	}
	p := cb.Comm.Proc()
	half := aLocal.Rows / 2
	a11 := aLocal.View(0, 0, half, half)
	a21 := aLocal.View(half, 0, half, half)
	a22 := aLocal.View(half, half, half, half)

	// Line 5: recurse on A11.
	l11, y11, err := factor(cb, a11.Clone(), n/2, base, depth+1, invDepth, workers)
	if err != nil {
		return nil, nil, err
	}

	// Lines 6–7: L21 = A21·L11⁻ᵀ. When InverseDepth leaves the top
	// levels of Y11 unformed (the sub-call skipped its Y21 blocks for
	// invDepth − depth − 1 levels), apply the inverse by blocked
	// substitution down to the levels where Y11 is complete.
	l21, err := applyLinvT(cb, a21.Clone(), l11, y11, invDepth-depth-1, workers)
	if err != nil {
		return nil, nil, err
	}

	// Lines 8–9: U = L21·L21ᵀ.
	x, err := mm3d.Transpose(cb, l21)
	if err != nil {
		return nil, nil, err
	}
	u, err := mm3d.Multiply(cb, l21, x, workers)
	if err != nil {
		return nil, nil, err
	}

	// Line 10: Z = A22 − U (local axpy).
	z := a22.Clone()
	z.Sub(u)
	if err := p.Compute(lin.AxpyFlops(z.Rows, z.Cols)); err != nil {
		return nil, nil, err
	}

	// Line 11: recurse on the Schur complement.
	l22, y22, err := factor(cb, z, n/2, base, depth+1, invDepth, workers)
	if err != nil {
		return nil, nil, err
	}

	// Lines 12–14: Y21 = −Y22·(L21·Y11), skipped above InverseDepth.
	var y21 *lin.Matrix
	if depth >= invDepth {
		u2, err := mm3d.Multiply(cb, l21, y11, workers)
		if err != nil {
			return nil, nil, err
		}
		negY22 := y22.Clone()
		negY22.Scale(-1)
		if err := p.Compute(int64(negY22.Rows) * int64(negY22.Cols)); err != nil {
			return nil, nil, err
		}
		y21, err = mm3d.Multiply(cb, negY22, u2, workers)
		if err != nil {
			return nil, nil, err
		}
	} else {
		y21 = lin.NewMatrix(half, half)
	}

	lOut := assembleLowerQuadrants(l11, l21, l22)
	yOut := assembleLowerQuadrants(y11, y21, y22)
	return lOut, yOut, nil
}

// applyLinvT computes X = A·Lᵀ⁻¹ for lower-triangular L whose inverse Y
// is complete except for the off-diagonal blocks of its top k recursion
// levels. At k ≤ 0 this is the direct multiply by Y11ᵀ (Algorithm 3
// lines 6–7); otherwise it is the blocked substitution
//
//	X₁ = A₁·Laᵀ⁻¹,  X₂ = (A₂ − X₁·L₂₁ᵀ)·Lbᵀ⁻¹
//
// which costs one extra (smaller) MM3D and transpose per level — the
// flops-for-synchronization trade of the paper's InverseDepth knob.
func applyLinvT(cb *grid.Cube, a, l, y *lin.Matrix, k, workers int) (*lin.Matrix, error) {
	if k <= 0 || l.Rows < 2 || l.Rows%2 != 0 {
		w, err := mm3d.Transpose(cb, y)
		if err != nil {
			return nil, err
		}
		return mm3d.Multiply(cb, a, w, workers)
	}
	p := cb.Comm.Proc()
	half := l.Rows / 2
	la := l.View(0, 0, half, half).Clone()
	l21 := l.View(half, 0, half, half).Clone()
	lb := l.View(half, half, half, half).Clone()
	ya := y.View(0, 0, half, half).Clone()
	yb := y.View(half, half, half, half).Clone()

	a1 := a.View(0, 0, a.Rows, half).Clone()
	a2 := a.View(0, half, a.Rows, half).Clone()

	x1, err := applyLinvT(cb, a1, la, ya, k-1, workers)
	if err != nil {
		return nil, err
	}
	lt, err := mm3d.Transpose(cb, l21)
	if err != nil {
		return nil, err
	}
	t, err := mm3d.Multiply(cb, x1, lt, workers)
	if err != nil {
		return nil, err
	}
	a2.Sub(t)
	if err := p.Compute(lin.AxpyFlops(a2.Rows, a2.Cols)); err != nil {
		return nil, err
	}
	x2, err := applyLinvT(cb, a2, lb, yb, k-1, workers)
	if err != nil {
		return nil, err
	}
	out := lin.NewMatrix(a.Rows, a.Cols)
	out.View(0, 0, a.Rows, half).CopyFrom(x1)
	out.View(0, half, a.Rows, half).CopyFrom(x2)
	return out, nil
}

// baseCase Allgathers the panel over the slice, factors it redundantly,
// and keeps this rank's cyclic pieces (Algorithm 3 lines 1–3).
func baseCase(cb *grid.Cube, aLocal *lin.Matrix, n int) (lLocal, yLocal *lin.Matrix, err error) {
	p := cb.Comm.Proc()
	e := cb.E
	var t *lin.Matrix
	if e == 1 {
		t = aLocal
	} else {
		flat, err := cb.Slice.Allgather(dist.Flatten(aLocal))
		if err != nil {
			return nil, nil, err
		}
		blk := aLocal.Rows * aLocal.Cols
		pieces := make([]*lin.Matrix, e*e)
		for i := range pieces {
			m, err := dist.Unflatten(aLocal.Rows, aLocal.Cols, flat[i*blk:(i+1)*blk])
			if err != nil {
				return nil, nil, err
			}
			pieces[i] = m
		}
		// Slice ordering is y-major (index y·E + x), matching
		// AssembleGlobal's row-major piece layout with row=y, col=x.
		t, err = dist.AssembleGlobal(n, n, e, e, pieces)
		if err != nil {
			return nil, nil, err
		}
	}

	lFull, yFull, err := lin.CholInv(t)
	if err != nil {
		return nil, nil, err
	}
	if err := p.Compute(lin.CholFlops(n) + lin.TriInvFlops(n)); err != nil {
		return nil, nil, err
	}
	if e == 1 {
		return lFull, yFull, nil
	}
	lDist, err := dist.FromGlobal(lFull, e, e, cb.Y, cb.X)
	if err != nil {
		return nil, nil, err
	}
	yDist, err := dist.FromGlobal(yFull, e, e, cb.Y, cb.X)
	if err != nil {
		return nil, nil, err
	}
	return lDist.Local, yDist.Local, nil
}

// assembleLowerQuadrants packs [b11 0; b21 b22] into one local block.
func assembleLowerQuadrants(b11, b21, b22 *lin.Matrix) *lin.Matrix {
	h := b11.Rows
	out := lin.NewMatrix(2*h, 2*h)
	out.View(0, 0, h, h).CopyFrom(b11)
	out.View(h, 0, h, h).CopyFrom(b21)
	out.View(h, h, h, h).CopyFrom(b22)
	return out
}
