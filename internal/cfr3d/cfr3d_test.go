package cfr3d

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"fmt"
	"testing"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func runCube(t *testing.T, e int, body func(p *simmpi.Proc, cb *grid.Cube) error) *simmpi.Stats {
	t.Helper()
	st, err := simmpi.RunWithOptions(e*e*e, simmpi.Options{Timeout: 120 * time.Second}, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), e)
		if err != nil {
			return err
		}
		return body(p, cb)
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// checkFactor verifies the distributed factors against the sequential
// Cholesky of the same matrix (the factor with positive diagonal is
// unique, so blocks must agree to roundoff).
func checkFactor(a *lin.Matrix, cb *grid.Cube, res *Result, wantFullY bool) error {
	n := a.Rows
	lSeq, err := lin.Cholesky(a)
	if err != nil {
		return err
	}
	wantL, err := dist.FromGlobal(lSeq, cb.E, cb.E, cb.Y, cb.X)
	if err != nil {
		return err
	}
	tol := 1e-8
	if !res.L.EqualWithin(wantL.Local, tol) {
		return fmt.Errorf("L mismatch on rank (%d,%d,%d)", cb.X, cb.Y, cb.Z)
	}
	if wantFullY {
		ySeq, err := lin.TriInverse(lSeq, lin.Lower)
		if err != nil {
			return err
		}
		wantY, err := dist.FromGlobal(ySeq, cb.E, cb.E, cb.Y, cb.X)
		if err != nil {
			return err
		}
		if !res.Y.EqualWithin(wantY.Local, tol) {
			return fmt.Errorf("Y mismatch on rank (%d,%d,%d)", cb.X, cb.Y, cb.Z)
		}
	}
	_ = n
	return nil
}

func TestFactorMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ e, n, base int }{
		{1, 8, 2},   // pure recursion, sequential grid
		{1, 16, 16}, // pure base case
		{2, 8, 2},
		{2, 16, 4},
		{2, 16, 16}, // base case at top level (no recursion)
		{4, 16, 4},
	} {
		t.Run(fmt.Sprintf("e%d_n%d_base%d", tc.e, tc.n, tc.base), func(t *testing.T) {
			a := lin.RandomSPD(tc.n, int64(tc.n+tc.e))
			runCube(t, tc.e, func(p *simmpi.Proc, cb *grid.Cube) error {
				ad, err := dist.FromGlobal(a, cb.E, cb.E, cb.Y, cb.X)
				if err != nil {
					return err
				}
				res, err := Factor(cb, ad.Local, tc.n, Options{BaseSize: tc.base})
				if err != nil {
					return err
				}
				return checkFactor(a, cb, res, true)
			})
		})
	}
}

func TestFactorDefaultBaseSize(t *testing.T) {
	const e, n = 2, 32
	a := lin.RandomSPD(n, 5)
	runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
		ad, err := dist.FromGlobal(a, cb.E, cb.E, cb.Y, cb.X)
		if err != nil {
			return err
		}
		res, err := Factor(cb, ad.Local, n, Options{})
		if err != nil {
			return err
		}
		// Paper default n_o = n/E² = 8.
		if res.BaseSize != n/(e*e) {
			return fmt.Errorf("default base size %d, want %d", res.BaseSize, n/(e*e))
		}
		return checkFactor(a, cb, res, true)
	})
}

func TestFactorInverseDepth(t *testing.T) {
	// With InverseDepth=1 the top-level Y21 must be zero while L is
	// complete and the two diagonal half-inverses are exact.
	const e, n, base = 2, 16, 4
	a := lin.RandomSPD(n, 7)
	runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
		ad, err := dist.FromGlobal(a, cb.E, cb.E, cb.Y, cb.X)
		if err != nil {
			return err
		}
		res, err := Factor(cb, ad.Local, n, Options{BaseSize: base, InverseDepth: 1})
		if err != nil {
			return err
		}
		if err := checkFactor(a, cb, res, false); err != nil {
			return err
		}
		// Assemble Y globally over the slice and inspect blocks.
		flat, err := cb.Slice.Allgather(dist.Flatten(res.Y))
		if err != nil {
			return err
		}
		blk := res.Y.Rows * res.Y.Cols
		pieces := make([]*lin.Matrix, e*e)
		for i := range pieces {
			pieces[i], err = dist.Unflatten(res.Y.Rows, res.Y.Cols, flat[i*blk:(i+1)*blk])
			if err != nil {
				return err
			}
		}
		yGlob, err := dist.AssembleGlobal(n, n, e, e, pieces)
		if err != nil {
			return err
		}
		// Top-level off-diagonal block must be exactly zero.
		y21 := yGlob.View(n/2, 0, n/2, n/2)
		if lin.MaxAbs(y21) != 0 {
			return fmt.Errorf("Y21 formed despite InverseDepth=1")
		}
		// Diagonal blocks must invert the corresponding L blocks.
		lSeq, err := lin.Cholesky(a)
		if err != nil {
			return err
		}
		l11 := lSeq.View(0, 0, n/2, n/2).Clone()
		y11 := yGlob.View(0, 0, n/2, n/2).Clone()
		if !lin.MatMul(l11, y11).EqualWithin(lin.Identity(n/2), 1e-8) {
			return fmt.Errorf("Y11 is not L11⁻¹")
		}
		return nil
	})
}

func TestFactorRejectsBadShapes(t *testing.T) {
	_, err := simmpi.RunWithOptions(8, simmpi.Options{Timeout: 30 * time.Second}, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), 2)
		if err != nil {
			return err
		}
		// n not divisible by E.
		if _, err := Factor(cb, lin.NewMatrix(3, 3), 7, Options{}); err == nil {
			return fmt.Errorf("indivisible dimension accepted")
		}
		// Local block mismatched with n.
		if _, err := Factor(cb, lin.NewMatrix(3, 3), 8, Options{}); err == nil {
			return fmt.Errorf("mismatched local block accepted")
		}
		// Negative InverseDepth.
		if _, err := Factor(cb, lin.NewMatrix(4, 4), 8, Options{InverseDepth: -1}); err == nil {
			return fmt.Errorf("negative InverseDepth accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFactorIndefiniteFails(t *testing.T) {
	// A non-SPD matrix must surface ErrNotPositiveDefinite from the base
	// case on every rank, not deadlock.
	const e, n = 2, 8
	a := lin.Identity(n)
	a.Set(5, 5, -1)
	_, err := simmpi.RunWithOptions(e*e*e, simmpi.Options{Timeout: 60 * time.Second}, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), e)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, cb.E, cb.E, cb.Y, cb.X)
		if err != nil {
			return err
		}
		_, err = Factor(cb, ad.Local, n, Options{BaseSize: 4})
		if err == nil {
			return fmt.Errorf("indefinite matrix factored")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBaseSizeRounding(t *testing.T) {
	// A base size not divisible by E must be rounded up, not crash.
	const e, n = 2, 16
	a := lin.RandomSPD(n, 11)
	runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
		ad, err := dist.FromGlobal(a, cb.E, cb.E, cb.Y, cb.X)
		if err != nil {
			return err
		}
		res, err := Factor(cb, ad.Local, n, Options{BaseSize: 3})
		if err != nil {
			return err
		}
		if res.BaseSize%e != 0 {
			return fmt.Errorf("base size %d not aligned", res.BaseSize)
		}
		return checkFactor(a, cb, res, true)
	})
}

func TestSmallerBaseSizeCostsMoreLatency(t *testing.T) {
	// Deeper recursion (smaller n_o) must raise the α cost and lower or
	// keep the per-rank flop count — the §II-D tradeoff.
	const e, n = 2, 32
	a := lin.RandomSPD(n, 13)
	run := func(base int) *simmpi.Stats {
		return runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
			ad, err := dist.FromGlobal(a, cb.E, cb.E, cb.Y, cb.X)
			if err != nil {
				return err
			}
			_, err = Factor(cb, ad.Local, n, Options{BaseSize: base})
			return err
		})
	}
	deep := run(4)
	shallow := run(32)
	if deep.MaxMsgs <= shallow.MaxMsgs {
		t.Fatalf("deeper recursion should cost more latency: %d vs %d", deep.MaxMsgs, shallow.MaxMsgs)
	}
	if deep.MaxFlops >= shallow.MaxFlops {
		t.Fatalf("deeper recursion should cost fewer redundant flops: %d vs %d", deep.MaxFlops, shallow.MaxFlops)
	}
}

func TestInverseDepthSavesWork(t *testing.T) {
	// Skipping Y21 formation must strictly reduce flops and words.
	const e, n = 2, 32
	a := lin.RandomSPD(n, 17)
	run := func(inv int) *simmpi.Stats {
		return runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
			ad, err := dist.FromGlobal(a, cb.E, cb.E, cb.Y, cb.X)
			if err != nil {
				return err
			}
			_, err = Factor(cb, ad.Local, n, Options{BaseSize: 4, InverseDepth: inv})
			return err
		})
	}
	full := run(0)
	lazy := run(2)
	if lazy.MaxFlops >= full.MaxFlops {
		t.Fatalf("InverseDepth did not reduce flops: %d vs %d", lazy.MaxFlops, full.MaxFlops)
	}
	if lazy.MaxWords >= full.MaxWords {
		t.Fatalf("InverseDepth did not reduce words: %d vs %d", lazy.MaxWords, full.MaxWords)
	}
}
