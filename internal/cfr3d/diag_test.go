package cfr3d

import (
	"testing"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func TestDiagInverseDepth2L(t *testing.T) {
	const e, n, base = 2, 16, 4
	a := lin.RandomSPD(n, 7)
	_, err := simmpi.Run(e*e*e, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), e)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, e, e, cb.Y, cb.X)
		if err != nil {
			return err
		}
		res, err := Factor(cb, ad.Local, n, Options{BaseSize: base, InverseDepth: 2})
		if err != nil {
			return err
		}
		return checkFactor(a, cb, res, false)
	})
	if err != nil {
		t.Fatal(err)
	}
}
