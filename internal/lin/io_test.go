package lin

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixIORoundTrip(t *testing.T) {
	for _, sh := range []struct{ r, c int }{{0, 0}, {1, 1}, {3, 5}, {8, 2}} {
		m := RandomMatrix(sh.r, sh.c, int64(sh.r*10+sh.c))
		var buf bytes.Buffer
		if err := WriteMatrix(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMatrix(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(m) {
			t.Fatalf("%dx%d round trip failed", sh.r, sh.c)
		}
	}
}

func TestMatrixIOExactPrecision(t *testing.T) {
	// The 17-digit format must round-trip doubles bit-exactly,
	// including awkward values.
	m := FromSlice(1, 4, []float64{math.Pi, 1.0 / 3.0, 2.2250738585072014e-308, -1e300})
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if back.Data[i] != m.Data[i] {
			t.Fatalf("value %d not bit-exact: %v vs %v", i, back.Data[i], m.Data[i])
		}
	}
}

func TestMatrixIOComments(t *testing.T) {
	in := "% a comment\n%%matrix dense\n% another\n2 2\n1 2\n3 4\n"
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 4 {
		t.Fatalf("parsed %v", m)
	}
}

func TestMatrixIOErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":    "%%wrong\n1 1\n0\n",
		"bad dims":      "%%matrix dense\nx y\n",
		"negative dims": "%%matrix dense\n-1 2\n",
		"short row":     "%%matrix dense\n1 3\n1 2\n",
		"bad value":     "%%matrix dense\n1 1\nzzz\n",
		"truncated":     "%%matrix dense\n2 1\n1\n",
		"empty":         "",
	}
	for name, in := range cases {
		if _, err := ReadMatrix(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestMatrixIOViewsWriteCompactly(t *testing.T) {
	big := RandomMatrix(6, 6, 9)
	v := big.View(1, 1, 3, 2)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, v); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualWithin(v.Clone(), 0) {
		t.Fatal("view round trip failed")
	}
}

func TestMatrixIOProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := RandomMatrix(4, 3, seed)
		var buf bytes.Buffer
		if err := WriteMatrix(&buf, m); err != nil {
			return false
		}
		back, err := ReadMatrix(&buf)
		return err == nil && back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
