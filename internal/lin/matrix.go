package lin

//lint:allow floatcompare exact zero tests are structural fast paths and bit-identity is the kernel contract, not data tolerance checks

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. Data holds Rows*Cols elements;
// element (i, j) lives at Data[i*Stride+j]. Stride ≥ Cols allows views
// into larger matrices without copying.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// ErrShape reports incompatible matrix dimensions.
var ErrShape = errors.New("lin: incompatible matrix shapes")

// ErrNotPositiveDefinite reports a Cholesky failure: a non-positive pivot
// was encountered, meaning the input is not (numerically) symmetric
// positive definite.
var ErrNotPositiveDefinite = errors.New("lin: matrix is not positive definite")

// ErrSingular reports a singular triangular factor.
var ErrSingular = errors.New("lin: matrix is singular")

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("lin: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromSlice builds an r×c matrix from row-major data. The slice is copied.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("lin: FromSlice got %d elements for %dx%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("lin: At(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("lin: Set(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	m.Data[i*m.Stride+j] = v
}

// Clone returns a deep copy with a compact stride.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Stride:i*out.Stride+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], src.Data[i*src.Stride:i*src.Stride+src.Cols])
	}
}

// View returns a view of the r×c submatrix whose top-left corner is (i, j).
// The view shares storage with m.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("lin: View(%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i*m.Stride+j:]}
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Stride+i] = m.Data[i*m.Stride+j]
		}
	}
	return out
}

// Equal reports whether m and n have the same shape and elements.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.Data[i*m.Stride+j] != n.Data[i*n.Stride+j] {
				return false
			}
		}
	}
	return true
}

// EqualWithin reports whether m and n agree elementwise within tol.
func (m *Matrix) EqualWithin(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if math.Abs(m.Data[i*m.Stride+j]-n.Data[i*n.Stride+j]) > tol {
				return false
			}
		}
	}
	return true
}

// Add computes m += x.
func (m *Matrix) Add(x *Matrix) {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		xi := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		for j := range mi {
			mi[j] += xi[j]
		}
	}
}

// Sub computes m -= x.
func (m *Matrix) Sub(x *Matrix) {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		xi := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		for j := range mi {
			mi[j] -= xi[j]
		}
	}
}

// Scale computes m *= a.
func (m *Matrix) Scale(a float64) {
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range mi {
			mi[j] *= a
		}
	}
}

// Axpy computes m += a*x (the paper's axpy building block, 2mn flops).
func (m *Matrix) Axpy(a float64, x *Matrix) {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		xi := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		for j := range mi {
			mi[j] += a * xi[j]
		}
	}
}

// IsUpperTriangular reports whether every element strictly below the
// diagonal is at most tol in magnitude.
func (m *Matrix) IsUpperTriangular(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < i && j < m.Cols; j++ {
			if math.Abs(m.Data[i*m.Stride+j]) > tol {
				return false
			}
		}
	}
	return true
}

// IsLowerTriangular reports whether every element strictly above the
// diagonal is at most tol in magnitude.
func (m *Matrix) IsLowerTriangular(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.Data[i*m.Stride+j]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	const maxDim = 8
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < maxDim; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols && j < maxDim; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.Data[i*m.Stride+j])
		}
		if m.Cols > maxDim {
			b.WriteString(" ...")
		}
	}
	if m.Rows > maxDim {
		b.WriteString("; ...")
	}
	b.WriteByte(']')
	return b.String()
}
