package lin

// Naive triple-loop reference kernels. These are the ground truth the
// blocked and parallel kernels are property-tested against, and the
// baseline the BenchmarkGEMM* suite measures the blocked kernels'
// speedup over. Test-only: they must never ship in the library proper.

// naiveGemm computes C = beta*C + alpha*op(A)*op(B) with the textbook
// i-j-l loop nest and no blocking.
func naiveGemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	m, k := a.Rows, a.Cols
	if transA {
		m, k = k, m
	}
	n := b.Cols
	if transB {
		n = b.Rows
	}
	at := func(i, l int) float64 {
		if transA {
			return a.Data[l*a.Stride+i]
		}
		return a.Data[i*a.Stride+l]
	}
	bt := func(l, j int) float64 {
		if transB {
			return b.Data[j*b.Stride+l]
		}
		return b.Data[l*b.Stride+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += at(i, l) * bt(l, j)
			}
			c.Data[i*c.Stride+j] = beta*c.Data[i*c.Stride+j] + alpha*sum
		}
	}
}

// naiveSyrk computes C = beta*C + alpha*AᵀA elementwise.
func naiveSyrk(alpha float64, a *Matrix, beta float64, c *Matrix) {
	n := a.Cols
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for l := 0; l < a.Rows; l++ {
				sum += a.Data[l*a.Stride+i] * a.Data[l*a.Stride+j]
			}
			c.Data[i*c.Stride+j] = beta*c.Data[i*c.Stride+j] + alpha*sum
		}
	}
}

// maxRelDiff returns max |got−want| / max(1, max|want|): an absolute
// comparison for O(1)-magnitude data that degrades gracefully when
// accumulated sums grow past 1.
func maxRelDiff(got, want *Matrix) float64 {
	var maxAbs, maxDiff float64
	for i := 0; i < want.Rows; i++ {
		for j := 0; j < want.Cols; j++ {
			w := want.Data[i*want.Stride+j]
			g := got.Data[i*got.Stride+j]
			if a := abs(w); a > maxAbs {
				maxAbs = a
			}
			if d := abs(g - w); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxAbs < 1 {
		maxAbs = 1
	}
	return maxDiff / maxAbs
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// wellCondTriangular returns a unit-diagonal-dominant n×n triangular
// matrix (lower when tri == Lower) whose solves stay well conditioned.
func wellCondTriangular(n int, tri Triangle, seed int64) *Matrix {
	t := RandomMatrix(n, n, seed)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				t.Data[i*t.Stride+j] = 2 + abs(t.Data[i*t.Stride+j])
			case tri == Lower && j > i, tri == Upper && j < i:
				t.Data[i*t.Stride+j] = 0
			default:
				t.Data[i*t.Stride+j] *= 0.5 / float64(n)
			}
		}
	}
	return t
}
