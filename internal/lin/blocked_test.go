package lin

import (
	"runtime"
	"sync"
	"testing"
)

// workerCounts are the knob settings every parallel kernel is checked
// under: serial, a fixed fan-out, and whatever the host offers.
func workerCounts() []int {
	return []int{1, 4, runtime.NumCPU()}
}

// Shapes deliberately not multiples of the 48-element tile or the 16-row
// scheduling grain; the last one is large enough to clear the parallel
// flop cutoff so the pool path actually runs.
var gemmShapes = []struct{ m, k, n int }{
	{67, 53, 131},
	{97, 200, 49},
	{130, 33, 70},
	{701, 90, 311},
}

func TestBlockedGemmMatchesNaive(t *testing.T) {
	const tol = 1e-13
	for _, sh := range gemmShapes {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				ar, ac := sh.m, sh.k
				if ta {
					ar, ac = ac, ar
				}
				br, bc := sh.k, sh.n
				if tb {
					br, bc = bc, br
				}
				a := RandomMatrix(ar, ac, 101)
				b := RandomMatrix(br, bc, 102)
				c0 := RandomMatrix(sh.m, sh.n, 103)

				want := c0.Clone()
				naiveGemm(ta, tb, 1.25, a, b, 0.5, want)
				got := c0.Clone()
				Gemm(ta, tb, 1.25, a, b, 0.5, got)
				if d := maxRelDiff(got, want); d > tol {
					t.Errorf("blocked Gemm(%v,%v) %dx%dx%d: rel diff %.3g vs naive", ta, tb, sh.m, sh.k, sh.n, d)
				}
				for _, w := range workerCounts() {
					gp := c0.Clone()
					GemmParallel(w, ta, tb, 1.25, a, b, 0.5, gp)
					if !gp.Equal(got) {
						t.Errorf("GemmParallel(workers=%d, %v,%v) %dx%dx%d not bitwise equal to serial", w, ta, tb, sh.m, sh.k, sh.n)
					}
				}
			}
		}
	}
}

func TestBlockedSyrkMatchesNaive(t *testing.T) {
	const tol = 1e-13
	for _, sh := range []struct{ m, n int }{{67, 53}, {150, 131}, {2001, 121}} {
		a := RandomMatrix(sh.m, sh.n, 104)
		// Syrk accumulates a Gram matrix: it mirrors the upper triangle
		// over the lower, so the beta-scaled input must be symmetric.
		c0 := RandomMatrix(sh.n, sh.n, 105)
		for i := 0; i < sh.n; i++ {
			for j := i + 1; j < sh.n; j++ {
				c0.Set(j, i, c0.At(i, j))
			}
		}

		want := c0.Clone()
		naiveSyrk(0.75, a, 2, want)
		got := c0.Clone()
		Syrk(0.75, a, 2, got)
		if d := maxRelDiff(got, want); d > tol {
			t.Errorf("blocked Syrk %dx%d: rel diff %.3g vs naive", sh.m, sh.n, d)
		}
		for _, w := range workerCounts() {
			gp := c0.Clone()
			SyrkParallel(w, 0.75, a, 2, gp)
			if !gp.Equal(got) {
				t.Errorf("SyrkParallel(workers=%d) %dx%d not bitwise equal to serial", w, sh.m, sh.n)
			}
		}
	}
}

// trsmVariants are the solve variants the serial kernel implements.
var trsmVariants = []struct {
	side  Side
	tri   Triangle
	trans bool
}{
	{Right, Upper, false},
	{Right, Lower, false},
	{Right, Lower, true},
	{Left, Lower, false},
	{Left, Upper, false},
	{Left, Lower, true},
}

func TestBlockedTrsmSolvesAgainstNaive(t *testing.T) {
	const tol = 1e-13
	for _, sh := range []struct{ rhs, n int }{{67, 53}, {131, 97}, {1501, 130}} {
		for _, v := range trsmVariants {
			tm := wellCondTriangular(sh.n, v.tri, 106)
			br, bc := sh.rhs, sh.n
			if v.side == Left {
				br, bc = sh.n, sh.rhs
			}
			b0 := RandomMatrix(br, bc, 107)

			x := b0.Clone()
			Trsm(v.side, v.tri, v.trans, tm, x)
			// Reconstruct B from the solution with the naive multiply:
			// side Right solves X·op(T) = B, side Left op(T)·X = B.
			back := NewMatrix(br, bc)
			if v.side == Right {
				naiveGemm(false, v.trans, 1, x, tm, 0, back)
			} else {
				naiveGemm(v.trans, false, 1, tm, x, 0, back)
			}
			if d := maxRelDiff(back, b0); d > tol {
				t.Errorf("Trsm(side=%v,tri=%v,trans=%v) rhs=%d n=%d: residual %.3g", v.side, v.tri, v.trans, sh.rhs, sh.n, d)
			}
			for _, w := range workerCounts() {
				xp := b0.Clone()
				TrsmParallel(w, v.side, v.tri, v.trans, tm, xp)
				if !xp.Equal(x) {
					t.Errorf("TrsmParallel(workers=%d, side=%v,tri=%v,trans=%v) not bitwise equal to serial", w, v.side, v.tri, v.trans)
				}
			}
		}
	}
}

func TestBlockedTrmmMatchesNaive(t *testing.T) {
	const tol = 1e-13
	variants := []struct {
		side  Side
		tri   Triangle
		trans bool
	}{
		{Right, Upper, false}, {Right, Lower, false}, {Right, Upper, true}, {Right, Lower, true},
		{Left, Upper, false}, {Left, Lower, false}, {Left, Upper, true}, {Left, Lower, true},
	}
	for _, sh := range []struct{ rhs, n int }{{67, 53}, {1501, 130}} {
		for _, v := range variants {
			tm := wellCondTriangular(sh.n, v.tri, 108)
			br, bc := sh.rhs, sh.n
			if v.side == Left {
				br, bc = sh.n, sh.rhs
			}
			b0 := RandomMatrix(br, bc, 109)

			want := NewMatrix(br, bc)
			if v.side == Right {
				naiveGemm(false, v.trans, 1, b0, tm, 0, want)
			} else {
				naiveGemm(v.trans, false, 1, tm, b0, 0, want)
			}
			got := b0.Clone()
			Trmm(v.side, v.tri, v.trans, tm, got)
			if d := maxRelDiff(got, want); d > tol {
				t.Errorf("Trmm(side=%v,tri=%v,trans=%v) rhs=%d n=%d: rel diff %.3g vs naive", v.side, v.tri, v.trans, sh.rhs, sh.n, d)
			}
			for _, w := range workerCounts() {
				gp := b0.Clone()
				TrmmParallel(w, v.side, v.tri, v.trans, tm, gp)
				if !gp.Equal(got) {
					t.Errorf("TrmmParallel(workers=%d, side=%v,tri=%v,trans=%v) not bitwise equal to serial", w, v.side, v.tri, v.trans)
				}
			}
		}
	}
}

// TestPoolConcurrentCallers mimics the simmpi runtime: many goroutine
// "ranks" issuing parallel kernels against the one shared pool at once.
func TestPoolConcurrentCallers(t *testing.T) {
	a := RandomMatrix(701, 90, 110)
	b := RandomMatrix(90, 311, 111)
	want := MatMul(a, b)
	var wg sync.WaitGroup
	errs := make([]bool, 8)
	for r := 0; r < len(errs); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				if !MatMulParallel(4, a, b).Equal(want) {
					errs[r] = true
				}
			}
		}(r)
	}
	wg.Wait()
	for r, bad := range errs {
		if bad {
			t.Fatalf("rank %d saw a wrong parallel product under contention", r)
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 15, 16, 17, 1000} {
		for _, w := range []int{0, 1, 3, 64} {
			hits := make([]int32, n)
			var mu sync.Mutex
			parallelFor(w, n, 7, func(lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
				mu.Unlock()
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}
