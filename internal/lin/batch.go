package lin

// Strided-batch kernels: the throughput layer for floods of same-shape
// small/medium problems. Millions-of-users traffic is rarely one 2^22-row
// matrix — it is hundreds of 512×32 regressions or Kalman updates per
// batch window — and dispatching each through its own kernel invocation
// pays the goroutine hand-off cost per matrix. A Slab packs a whole batch
// into one contiguous 3-D allocation [batch][rows][cols], and the Batch*
// kernels sweep it with ONE worker-pool dispatch: the pool's dynamic
// chunk claiming spreads items over workers, while each item runs the
// serial blocked kernel on its own lane. Per item the floating-point
// operation sequence is exactly the serial kernel's, so batched results
// are bitwise equal to per-item serial calls for any worker count — the
// same contract the parallel kernels in parallel.go keep.

// Slab is a dense stack of Batch same-shape row-major matrices: item i
// occupies Data[i*Rows*Cols : (i+1)*Rows*Cols]. The zero value is an
// empty slab.
type Slab struct {
	Batch, Rows, Cols int
	Data              []float64
}

// NewSlab returns a zeroed batch of b r×c matrices.
func NewSlab(b, r, c int) *Slab {
	if b < 0 || r < 0 || c < 0 {
		panic(ErrShape)
	}
	return &Slab{Batch: b, Rows: r, Cols: c, Data: make([]float64, b*r*c)}
}

// SlabFrom packs same-shape matrices into a new slab (data is copied).
// An empty input yields an empty slab.
func SlabFrom(items []*Matrix) *Slab {
	if len(items) == 0 {
		return &Slab{}
	}
	r, c := items[0].Rows, items[0].Cols
	s := NewSlab(len(items), r, c)
	for i, m := range items {
		if m.Rows != r || m.Cols != c {
			panic(ErrShape)
		}
		s.Item(i).CopyFrom(m)
	}
	return s
}

// Item returns a view of item i sharing the slab's storage.
func (s *Slab) Item(i int) *Matrix {
	if i < 0 || i >= s.Batch {
		panic(ErrShape)
	}
	sz := s.Rows * s.Cols
	return &Matrix{Rows: s.Rows, Cols: s.Cols, Stride: s.Cols, Data: s.Data[i*sz : (i+1)*sz]}
}

// Items unpacks the slab into freshly allocated matrices.
func (s *Slab) Items() []*Matrix {
	out := make([]*Matrix, s.Batch)
	for i := range out {
		out[i] = s.Item(i).Clone()
	}
	return out
}

// BatchApply runs f(i) for every item index in [0, batch) using up to
// workers goroutines (0 = GOMAXPROCS) through the shared worker pool —
// one dispatch for the whole batch. f must not panic (a panic on a pool
// worker is unrecoverable) and must touch only its own item's state.
func BatchApply(workers, batch int, f func(i int)) {
	parallelFor(workers, batch, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// BatchSYRK computes C_i = beta*C_i + alpha*A_iᵀA_i for every item in one
// pool dispatch: the fused Gram stage of batched CholeskyQR. a is
// [batch][m][n], c must be [batch][n][n]. Each item runs the serial Syrk,
// so results are bitwise identical to per-item serial calls.
func BatchSYRK(workers int, alpha float64, a *Slab, beta float64, c *Slab) {
	if c.Batch != a.Batch || c.Rows != a.Cols || c.Cols != a.Cols {
		panic(ErrShape)
	}
	BatchApply(workers, a.Batch, func(i int) {
		Syrk(alpha, a.Item(i), beta, c.Item(i))
	})
}

// BatchGEMM computes C_i = beta*C_i + alpha*op(A_i)*op(B_i) for every
// item in one pool dispatch. Shapes are validated once for the whole
// slab (items are same-shape by construction); each item then runs the
// serial blocked Gemm, so results are bitwise identical to per-item
// serial calls.
func BatchGEMM(workers int, transA, transB bool, alpha float64, a, b *Slab, beta float64, c *Slab) {
	if a.Batch != b.Batch || a.Batch != c.Batch {
		panic(ErrShape)
	}
	if a.Batch == 0 {
		return
	}
	checkGemmShapes(transA, transB, a.Item(0), b.Item(0), c.Item(0))
	BatchApply(workers, a.Batch, func(i int) {
		Gemm(transA, transB, alpha, a.Item(i), b.Item(i), beta, c.Item(i))
	})
}

// BatchTRSM solves the per-item triangular systems in place — B_i :=
// B_i·T_i⁻¹ (Right) or T_i⁻¹·B_i (Left) — in one pool dispatch: the
// batched back-substitution stage of fused least-squares solves. t is
// [batch][n][n], b conforms on the chosen side. Validation (shape,
// nonsingular diagonals, implemented variant) runs up front for every
// item so the pooled per-item solves cannot panic; results are bitwise
// identical to per-item serial Trsm calls.
func BatchTRSM(workers int, side Side, tri Triangle, transT bool, t, b *Slab) {
	if t.Batch != b.Batch {
		panic(ErrShape)
	}
	for i := 0; i < t.Batch; i++ {
		checkTrsm(side, tri, transT, t.Item(i), b.Item(i))
	}
	BatchApply(workers, t.Batch, func(i int) {
		Trsm(side, tri, transT, t.Item(i), b.Item(i))
	})
}
