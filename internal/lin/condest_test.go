package lin

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"testing"
)

func TestEstimateCondMatchesTwoNormCond(t *testing.T) {
	a := RandomWithCond(128, 16, 1e5, 3)
	full := TwoNormCond(a)
	cheap := EstimateCond(a, 50)
	if math.Abs(cheap-full)/full > 0.05 {
		t.Fatalf("50-iteration estimate %g vs converged %g", cheap, full)
	}
	// Power iteration converges from below: the cheap estimate must
	// never overshoot the converged one by more than roundoff.
	if cheap > full*(1+1e-9) {
		t.Fatalf("cheap estimate %g above converged %g", cheap, full)
	}
}

func TestEstimateCondQRFallbackResolvesHighKappa(t *testing.T) {
	// κ² beyond 1/ε: the Gram route's Cholesky fails, and the estimator
	// must fall back to the Householder-QR path and still resolve κ to
	// a few percent — the condition-aware planner needs to distinguish
	// ShiftedCQR3's regime (κ ≲ 1e12) from true TSQR territory.
	for _, kappa := range []float64{1e10, 1e12, 1e14} {
		a := RandomWithCond(128, 16, kappa, 3)
		got := EstimateCond(a, 50)
		if got < kappa*0.9 || got > kappa*1.1 {
			t.Fatalf("κ=%g estimate %g", kappa, got)
		}
	}
}

func TestEstimateCondRankDeficient(t *testing.T) {
	// A rank-deficient matrix (a duplicated column) has σ_min = 0; in
	// floating point the QR fallback sees a roundoff-sized R diagonal,
	// so the estimate lands at ≳ 1/ε (or +Inf when the diagonal
	// underflows to exactly zero — the zero-matrix case below). Either
	// way it is far beyond every variant's regime, which is what the
	// routing needs.
	a := RandomMatrix(64, 8, 7)
	for i := 0; i < a.Rows; i++ {
		a.Set(i, 7, a.At(i, 0))
	}
	if got := EstimateCond(a, 50); !math.IsInf(got, 1) && got < 1e14 {
		t.Fatalf("rank-deficient estimate %g, want ≳ 1/ε or +Inf", got)
	}
}

func TestEstimateCondDegenerateInputs(t *testing.T) {
	if got := EstimateCond(NewMatrix(0, 0), 10); got != 0 {
		t.Fatalf("empty matrix estimate %g", got)
	}
	// Iteration floor: even iters < 1 must produce a finite positive
	// estimate for a well-conditioned matrix.
	a := RandomWithCond(64, 8, 10, 5)
	if got := EstimateCond(a, 0); got < 1 || math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("iters=0 estimate %g", got)
	}
	// The zero matrix has a zero Gram: Cholesky fails, κ = +Inf.
	if got := EstimateCond(NewMatrix(16, 4), 10); !math.IsInf(got, 1) {
		t.Fatalf("zero matrix estimate %g, want +Inf", got)
	}
}
