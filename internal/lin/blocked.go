package lin

//lint:allow floatcompare exact zero tests are structural fast paths and bit-identity is the kernel contract, not data tolerance checks

// Goroutine-parallel variants of the cache-blocked level-3 kernels. Each
// partitions the output into disjoint row or column ranges and runs the
// serial blocked kernel (or its exact loop body) on views, scheduled on
// the shared worker pool in parallel.go. Per output element the
// floating-point operation sequence is identical to the serial kernel, so
// parallel results are bitwise equal to serial ones for any worker count.
//
// Flop accounting is unchanged: callers charge the same GemmFlops /
// SyrkFlops / TrsmFlops amounts whether they invoke the serial or the
// parallel entry point — parallelism changes wall-clock, not the model.

// parallelFlopCutoff is the approximate flop count below which goroutine
// hand-off costs more than it saves and the kernels stay serial.
const parallelFlopCutoff = 1 << 21

// GemmParallel computes C = beta*C + alpha*op(A)*op(B) using up to
// workers goroutines (0 = GOMAXPROCS). Output rows are partitioned in
// blockSize chunks claimed dynamically from the shared pool; each chunk
// is a serial Gemm on disjoint views, so the result is bitwise identical
// to the serial kernel.
func GemmParallel(workers int, transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	workers = resolveWorkers(workers)
	k := a.Cols
	if transA {
		k = a.Rows
	}
	if workers == 1 || GemmFlops(c.Rows, c.Cols, k) < parallelFlopCutoff {
		Gemm(transA, transB, alpha, a, b, beta, c)
		return
	}
	// The serial kernel's own validation, run before entering the pool
	// (a panic on a pool worker is unrecoverable); the per-chunk calls
	// then cannot fail.
	checkGemmShapes(transA, transB, a, b, c)
	parallelFor(workers, c.Rows, blockSize, func(lo, hi int) {
		var aView *Matrix
		if transA {
			// Rows of op(A) are columns of A.
			aView = a.View(0, lo, a.Rows, hi-lo)
		} else {
			aView = a.View(lo, 0, hi-lo, a.Cols)
		}
		Gemm(transA, transB, alpha, aView, b, beta, c.View(lo, 0, hi-lo, c.Cols))
	})
}

// MatMulParallel returns A·B computed with GemmParallel.
func MatMulParallel(workers int, a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	GemmParallel(workers, false, false, 1, a, b, 0, c)
	return c
}

// checkGemmShapes is the shape validation shared by Gemm and
// GemmParallel.
func checkGemmShapes(transA, transB bool, a, b, c *Matrix) {
	ar, ac := a.Rows, a.Cols
	if transA {
		ar, ac = ac, ar
	}
	br, bc := b.Rows, b.Cols
	if transB {
		br, bc = bc, br
	}
	if ac != br || c.Rows != ar || c.Cols != bc {
		panic(ErrShape)
	}
}

// SyrkParallel computes C = beta*C + alpha*AᵀA (both halves written) using
// up to workers goroutines. Rows of C's upper triangle are claimed in
// small chunks so the triangular workload self-balances; each chunk runs
// the serial accumulation restricted to its row range, making the result
// bitwise identical to Syrk.
func SyrkParallel(workers int, alpha float64, a *Matrix, beta float64, c *Matrix) {
	workers = resolveWorkers(workers)
	if workers == 1 || SyrkFlops(a.Rows, a.Cols) < parallelFlopCutoff {
		Syrk(alpha, a, beta, c)
		return
	}
	n := a.Cols
	if c.Rows != n || c.Cols != n {
		panic(ErrShape)
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			c.Scale(beta)
		}
	}
	// Row i of the upper triangle costs n−i updates per A row; a grain of
	// 16 rows with dynamic claiming keeps the load even.
	parallelFor(workers, n, 16, func(lo, hi int) {
		syrkRows(alpha, a, c, lo, hi)
	})
	// Mirror the strict upper triangle; row ranges write disjoint columns
	// of the lower triangle, so this parallelizes cleanly too.
	parallelFor(workers, n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				c.Data[j*c.Stride+i] = c.Data[i*c.Stride+j]
			}
		}
	})
}

// SyrkNewParallel returns AᵀA computed with SyrkParallel.
func SyrkNewParallel(workers int, a *Matrix) *Matrix {
	c := NewMatrix(a.Cols, a.Cols)
	SyrkParallel(workers, 1, a, 0, c)
	return c
}

// TrsmParallel is Trsm using up to workers goroutines. With side == Right
// the rows of B are independent solves; with side == Left its columns
// are. Either way the serial kernel runs on disjoint views, so results
// are bitwise identical to Trsm.
func TrsmParallel(workers int, side Side, tri Triangle, transT bool, t, b *Matrix) {
	workers = resolveWorkers(workers)
	n := t.Rows
	rhs := b.Rows
	if side == Left {
		rhs = b.Cols
	}
	if workers == 1 || TrsmFlops(rhs, n) < parallelFlopCutoff {
		Trsm(side, tri, transT, t, b)
		return
	}
	// The serial kernel's own validation, run before entering the pool
	// (a panic on a pool worker is unrecoverable); the per-chunk calls
	// then cannot fail.
	checkTrsm(side, tri, transT, t, b)
	if side == Right {
		parallelFor(workers, b.Rows, 16, func(lo, hi int) {
			Trsm(side, tri, transT, t, b.View(lo, 0, hi-lo, b.Cols))
		})
		return
	}
	parallelFor(workers, b.Cols, 16, func(lo, hi int) {
		Trsm(side, tri, transT, t, b.View(0, lo, b.Rows, hi-lo))
	})
}

// TrmmParallel is Trmm using up to workers goroutines, partitioned like
// TrsmParallel (rows for side == Right, columns for side == Left) and
// bitwise identical to the serial kernel.
func TrmmParallel(workers int, side Side, tri Triangle, transT bool, t, b *Matrix) {
	workers = resolveWorkers(workers)
	n := t.Rows
	rhs := b.Rows
	if side == Left {
		rhs = b.Cols
	}
	if workers == 1 || TrsmFlops(rhs, n) < parallelFlopCutoff {
		Trmm(side, tri, transT, t, b)
		return
	}
	checkTrxmShapes(side, t, b)
	if side == Right {
		parallelFor(workers, b.Rows, 16, func(lo, hi int) {
			Trmm(side, tri, transT, t, b.View(lo, 0, hi-lo, b.Cols))
		})
		return
	}
	parallelFor(workers, b.Cols, 16, func(lo, hi int) {
		Trmm(side, tri, transT, t, b.View(0, lo, b.Rows, hi-lo))
	})
}
