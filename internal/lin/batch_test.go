package lin

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"runtime"
	"testing"
)

// batchWorkerCounts mirrors the ISSUE's Workers sweep: serial, a small
// fixed fan-out, and the host's core count.
func batchWorkerCounts() []int {
	return []int{1, 4, runtime.NumCPU()}
}

// randomSlab fills a batch of distinct deterministic matrices.
func randomSlab(b, r, c int, seed int64) *Slab {
	s := NewSlab(b, r, c)
	for i := 0; i < b; i++ {
		s.Item(i).CopyFrom(RandomMatrix(r, c, seed+int64(i)))
	}
	return s
}

func TestSlabPackUnpackRoundTrip(t *testing.T) {
	items := []*Matrix{RandomMatrix(7, 5, 1), RandomMatrix(7, 5, 2), RandomMatrix(7, 5, 3)}
	s := SlabFrom(items)
	if s.Batch != 3 || s.Rows != 7 || s.Cols != 5 {
		t.Fatalf("slab shape %dx%dx%d", s.Batch, s.Rows, s.Cols)
	}
	for i, m := range s.Items() {
		if !m.Equal(items[i]) {
			t.Fatalf("item %d lost in pack/unpack", i)
		}
	}
	// Item views alias the slab; writes must land in Data.
	s.Item(1).Set(0, 0, 42)
	if s.Data[7*5] != 42 {
		t.Fatal("Item view does not alias slab storage")
	}
	if got := SlabFrom(nil); got.Batch != 0 || len(got.Data) != 0 {
		t.Fatalf("empty SlabFrom: %+v", got)
	}
}

func TestSlabFromRejectsMixedShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-shape SlabFrom did not panic")
		}
	}()
	SlabFrom([]*Matrix{NewMatrix(4, 2), NewMatrix(3, 2)})
}

// The core bitwise contract: every Batch* kernel must produce exactly
// the serial per-item kernel's bits across uneven batch sizes, shapes,
// and worker counts — the same promise parallel.go makes for single
// matrices, extended to the batch dimension.
func TestBatchSYRKBitwiseMatchesSerial(t *testing.T) {
	for _, batch := range []int{1, 3, 17, 64} {
		for _, sh := range []struct{ m, n int }{{8, 3}, {64, 16}, {129, 31}, {512, 32}} {
			a := randomSlab(batch, sh.m, sh.n, 100)
			c0 := randomSlab(batch, sh.n, sh.n, 900)
			for _, w := range batchWorkerCounts() {
				got := NewSlab(batch, sh.n, sh.n)
				copy(got.Data, c0.Data)
				BatchSYRK(w, 1.25, a, 0.5, got)
				for i := 0; i < batch; i++ {
					want := c0.Item(i).Clone()
					Syrk(1.25, a.Item(i), 0.5, want)
					if !got.Item(i).Equal(want) {
						t.Fatalf("batch=%d shape=%dx%d workers=%d item %d differs from serial Syrk",
							batch, sh.m, sh.n, w, i)
					}
				}
			}
		}
	}
}

func TestBatchGEMMBitwiseMatchesSerial(t *testing.T) {
	for _, batch := range []int{1, 5, 33} {
		for _, sh := range []struct{ m, k, n int }{{16, 16, 16}, {65, 17, 9}, {512, 32, 32}} {
			for _, ta := range []bool{false, true} {
				for _, tb := range []bool{false, true} {
					ar, ac := sh.m, sh.k
					if ta {
						ar, ac = ac, ar
					}
					br, bc := sh.k, sh.n
					if tb {
						br, bc = bc, br
					}
					a := randomSlab(batch, ar, ac, 200)
					b := randomSlab(batch, br, bc, 300)
					c0 := randomSlab(batch, sh.m, sh.n, 400)
					for _, w := range batchWorkerCounts() {
						got := NewSlab(batch, sh.m, sh.n)
						copy(got.Data, c0.Data)
						BatchGEMM(w, ta, tb, 1.5, a, b, 0.25, got)
						for i := 0; i < batch; i++ {
							want := c0.Item(i).Clone()
							Gemm(ta, tb, 1.5, a.Item(i), b.Item(i), 0.25, want)
							if !got.Item(i).Equal(want) {
								t.Fatalf("batch=%d %dx%dx%d trans=%v,%v workers=%d item %d differs",
									batch, sh.m, sh.k, sh.n, ta, tb, w, i)
							}
						}
					}
				}
			}
		}
	}
}

func TestBatchTRSMBitwiseMatchesSerial(t *testing.T) {
	cases := []struct {
		side Side
		tri  Triangle
	}{{Right, Upper}, {Left, Upper}, {Left, Lower}}
	for _, batch := range []int{1, 4, 19} {
		for _, sh := range []struct{ m, n int }{{12, 4}, {96, 32}, {33, 7}} {
			for _, cs := range cases {
				tSlab := NewSlab(batch, sh.n, sh.n)
				for i := 0; i < batch; i++ {
					tSlab.Item(i).CopyFrom(wellCondTriangular(sh.n, cs.tri, int64(500+i)))
				}
				br, bc := sh.m, sh.n
				if cs.side == Left {
					br, bc = sh.n, sh.m
				}
				b0 := randomSlab(batch, br, bc, 600)
				for _, w := range batchWorkerCounts() {
					got := NewSlab(batch, br, bc)
					copy(got.Data, b0.Data)
					BatchTRSM(w, cs.side, cs.tri, false, tSlab, got)
					for i := 0; i < batch; i++ {
						want := b0.Item(i).Clone()
						Trsm(cs.side, cs.tri, false, tSlab.Item(i), want)
						if !got.Item(i).Equal(want) {
							t.Fatalf("batch=%d %v/%v %dx%d workers=%d item %d differs",
								batch, cs.side, cs.tri, sh.m, sh.n, w, i)
						}
					}
				}
			}
		}
	}
}

func TestBatchTRSMRejectsSingularUpFront(t *testing.T) {
	tSlab := NewSlab(2, 3, 3)
	tSlab.Item(0).CopyFrom(wellCondTriangular(3, Upper, 1))
	// Item 1 has a zero pivot: validation must panic before any pooled
	// work starts (a pool-worker panic would be unrecoverable).
	b := randomSlab(2, 4, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("singular batched TRSM did not panic")
		}
	}()
	BatchTRSM(2, Right, Upper, false, tSlab, b)
}

func TestBatchApplyCoversEveryItemOnce(t *testing.T) {
	for _, batch := range []int{0, 1, 7, 100} {
		counts := make([]int32, batch)
		BatchApply(4, batch, func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("batch=%d item %d visited %d times", batch, i, c)
			}
		}
	}
}
