// Package lin provides the dense linear algebra substrate used by the
// CA-CQR2 reproduction: a row-major float64 matrix type and the
// BLAS/LAPACK-style kernels the paper's algorithms depend on (GEMM, SYRK,
// TRSM, TRMM, Cholesky, triangular inverse, Householder QR, norms, and
// random matrix generators).
//
// Everything is written from scratch on the standard library. The level-3
// kernels are cache-blocked (48×48 tiles, four-wide unrolled
// contractions) and have goroutine-parallel variants (GemmParallel,
// SyrkParallel, TrsmParallel, TrmmParallel) that schedule disjoint output
// ranges onto a shared worker pool; parallel results are bitwise
// identical to serial, so worker counts never change numerics. The
// reproduction's cost model separates flop counts (which these kernels
// match exactly, serial or parallel) from flop rates (which belong to
// the machine model). Each kernel family has a matching *Flops counter
// (flops.go) that the distributed algorithms charge to their rank's
// virtual clock.
package lin
