package lin

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix text I/O in a MatrixMarket-inspired dense format:
//
//	%%matrix dense
//	<rows> <cols>
//	<row 0, space-separated>
//	...
//
// Lines starting with % are comments. The format is self-describing and
// diff-friendly, which is what a reproduction's artifacts need.

const ioHeader = "%%matrix dense"

// WriteMatrix serializes m to w.
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n", ioHeader, m.Rows, m.Cols); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(m.Data[i*m.Stride+j], 'g', 17, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrix parses a matrix written by WriteMatrix.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	line, err := nextContentLine(sc)
	if err != nil {
		return nil, fmt.Errorf("lin: reading header: %w", err)
	}
	if line != ioHeader {
		return nil, fmt.Errorf("lin: bad header %q", line)
	}
	line, err = nextContentLine(sc)
	if err != nil {
		return nil, fmt.Errorf("lin: reading dimensions: %w", err)
	}
	var rows, cols int
	if _, err := fmt.Sscanf(line, "%d %d", &rows, &cols); err != nil {
		return nil, fmt.Errorf("lin: bad dimensions %q: %w", line, err)
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("lin: negative dimensions %dx%d", rows, cols)
	}
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		line, err = nextContentLine(sc)
		if err != nil {
			return nil, fmt.Errorf("lin: reading row %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != cols {
			return nil, fmt.Errorf("lin: row %d has %d values, want %d", i, len(fields), cols)
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("lin: row %d col %d: %w", i, j, err)
			}
			m.Data[i*m.Stride+j] = v
		}
	}
	return m, nil
}

// nextContentLine returns the next non-empty, non-comment line.
func nextContentLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || (strings.HasPrefix(line, "%") && line != ioHeader) {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
