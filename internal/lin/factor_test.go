package lin

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 64} {
		a := RandomSPD(n, int64(n))
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !l.IsLowerTriangular(0) {
			t.Fatalf("n=%d: L not lower triangular", n)
		}
		llt := NewMatrix(n, n)
		Gemm(false, true, 1, l, l, 0, llt)
		if !llt.EqualWithin(a, 1e-9*float64(n)) {
			t.Fatalf("n=%d: LLᵀ ≠ A", n)
		}
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				t.Fatalf("n=%d: nonpositive diagonal", n)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := Identity(3)
	a.Set(1, 1, -1)
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
	// Zero matrix: first pivot is 0, not positive.
	if _, err := Cholesky(NewMatrix(2, 2)); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomSPD(8, seed)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		llt := NewMatrix(8, 8)
		Gemm(false, true, 1, l, l, 0, llt)
		return llt.EqualWithin(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTriInverseLower(t *testing.T) {
	for _, n := range []int{1, 2, 6, 33} {
		l := randomLower(n, int64(100+n))
		y, err := TriInverse(l, Lower)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !y.IsLowerTriangular(1e-14) {
			t.Fatalf("n=%d: L⁻¹ not lower triangular", n)
		}
		prod := MatMul(l, y)
		if !prod.EqualWithin(Identity(n), 1e-9) {
			t.Fatalf("n=%d: L·L⁻¹ ≠ I", n)
		}
	}
}

func TestTriInverseUpper(t *testing.T) {
	for _, n := range []int{1, 3, 12} {
		u := randomUpper(n, int64(200+n))
		y, err := TriInverse(u, Upper)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !y.IsUpperTriangular(1e-14) {
			t.Fatalf("n=%d: U⁻¹ not upper triangular", n)
		}
		prod := MatMul(y, u)
		if !prod.EqualWithin(Identity(n), 1e-9) {
			t.Fatalf("n=%d: U⁻¹·U ≠ I", n)
		}
	}
}

func TestTriInverseSingular(t *testing.T) {
	l := Identity(3)
	l.Set(2, 2, 0)
	if _, err := TriInverse(l, Lower); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestCholInv(t *testing.T) {
	a := RandomSPD(10, 42)
	l, y, err := CholInv(a)
	if err != nil {
		t.Fatal(err)
	}
	// L·Y = I and (Y·A·Yᵀ) = I (whitening property used by CholeskyQR).
	if !MatMul(l, y).EqualWithin(Identity(10), 1e-9) {
		t.Fatal("L·L⁻¹ ≠ I")
	}
	way := MatMul(MatMul(y, a), y.T())
	if !way.EqualWithin(Identity(10), 1e-8) {
		t.Fatal("L⁻¹·A·L⁻ᵀ ≠ I")
	}
}

func TestHouseholderQRFactors(t *testing.T) {
	for _, sh := range []struct{ m, n int }{{1, 1}, {4, 4}, {10, 4}, {50, 12}, {64, 64}} {
		a := RandomMatrix(sh.m, sh.n, int64(sh.m*31+sh.n))
		q, r, err := QR(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", sh.m, sh.n, err)
		}
		if q.Rows != sh.m || q.Cols != sh.n || r.Rows != sh.n || r.Cols != sh.n {
			t.Fatalf("%dx%d: bad output shapes", sh.m, sh.n)
		}
		if !r.IsUpperTriangular(1e-13) {
			t.Fatalf("%dx%d: R not upper triangular", sh.m, sh.n)
		}
		for i := 0; i < sh.n; i++ {
			if r.At(i, i) < 0 {
				t.Fatalf("%dx%d: R diagonal not normalized non-negative", sh.m, sh.n)
			}
		}
		if e := OrthogonalityError(q); e > 1e-12*float64(sh.m) {
			t.Fatalf("%dx%d: ‖QᵀQ−I‖ = %g", sh.m, sh.n, e)
		}
		if e := ResidualNorm(a, q, r); e > 1e-13*float64(sh.m) {
			t.Fatalf("%dx%d: residual %g", sh.m, sh.n, e)
		}
	}
}

func TestQRRejectsUnderdetermined(t *testing.T) {
	if _, _, err := QR(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestQRZeroColumn(t *testing.T) {
	// A rank-deficient input should still produce Q·R = A even though Q
	// is not fully determined.
	a := NewMatrix(5, 3)
	for i := 0; i < 5; i++ {
		a.Set(i, 0, float64(i+1))
		// middle column zero
		a.Set(i, 2, float64((i*i)%7))
	}
	q, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if e := ResidualNorm(a, q, r); e > 1e-12 {
		t.Fatalf("residual %g on rank-deficient input", e)
	}
}

func TestOrthogonalityErrorOnExactQ(t *testing.T) {
	q := RandomOrthonormal(30, 8, 5)
	if e := OrthogonalityError(q); e > 1e-12 {
		t.Fatalf("orthogonality error %g on Householder Q", e)
	}
}

func TestRandomWithCondHitsTarget(t *testing.T) {
	for _, cond := range []float64{1, 1e2, 1e5, 1e8} {
		a := RandomWithCond(60, 12, cond, 99)
		got := TwoNormCond(a)
		if cond == 1 {
			if math.Abs(got-1) > 1e-6 {
				t.Fatalf("κ=1: measured %g", got)
			}
			continue
		}
		if got < cond/3 || got > cond*3 {
			t.Fatalf("target κ=%g, measured %g", cond, got)
		}
	}
}

func TestRandomOrthonormalIsOrthonormal(t *testing.T) {
	q := RandomOrthonormal(40, 10, 123)
	if e := OrthogonalityError(q); e > 1e-12 {
		t.Fatalf("orthogonality error %g", e)
	}
}

func TestRandomMatrixDeterministic(t *testing.T) {
	a := RandomMatrix(4, 4, 7)
	b := RandomMatrix(4, 4, 7)
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
	c := RandomMatrix(4, 4, 8)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestTwoNormCondIdentity(t *testing.T) {
	if k := TwoNormCond(Identity(6)); math.Abs(k-1) > 1e-9 {
		t.Fatalf("κ(I) = %g", k)
	}
}
