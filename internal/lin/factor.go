package lin

//lint:allow floatcompare exact zero tests are structural fast paths and bit-identity is the kernel contract, not data tolerance checks

import "math"

// LAPACK-analog factorizations: Cholesky, triangular inverse, the combined
// CholInv the paper's Algorithm 2 needs at its base case, and Householder
// QR (used both as the accuracy reference and by the PGEQRF baseline).

// Cholesky overwrites nothing; it returns the lower-triangular L with
// A = L·Lᵀ for symmetric positive definite A ((1/3)n³ flops; the paper
// charges (2/3)n³ counting multiplies and adds). The strictly upper part
// of the result is zero. Fails with ErrNotPositiveDefinite when a pivot
// is not strictly positive.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.Data[i*a.Stride+j]
			li := l.Data[i*l.Stride : i*l.Stride+j]
			lj := l.Data[j*l.Stride : j*l.Stride+j]
			for k := range li {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Data[i*l.Stride+j] = math.Sqrt(sum)
			} else {
				l.Data[i*l.Stride+j] = sum / l.Data[j*l.Stride+j]
			}
		}
	}
	return l, nil
}

// TriInverse returns the inverse of a triangular matrix T ((1/3)n³ flops).
// tri states which half of T carries the data; the other half is ignored.
func TriInverse(t *Matrix, tri Triangle) (*Matrix, error) {
	if t.Rows != t.Cols {
		return nil, ErrShape
	}
	n := t.Rows
	for i := 0; i < n; i++ {
		if t.Data[i*t.Stride+i] == 0 {
			return nil, ErrSingular
		}
	}
	inv := NewMatrix(n, n)
	if tri == Lower {
		// Column-by-column forward substitution: L X = I.
		for j := 0; j < n; j++ {
			inv.Data[j*inv.Stride+j] = 1 / t.Data[j*t.Stride+j]
			for i := j + 1; i < n; i++ {
				var sum float64
				for k := j; k < i; k++ {
					sum += t.Data[i*t.Stride+k] * inv.Data[k*inv.Stride+j]
				}
				inv.Data[i*inv.Stride+j] = -sum / t.Data[i*t.Stride+i]
			}
		}
	} else {
		// U X = I via backward substitution.
		for j := n - 1; j >= 0; j-- {
			inv.Data[j*inv.Stride+j] = 1 / t.Data[j*t.Stride+j]
			for i := j - 1; i >= 0; i-- {
				var sum float64
				for k := i + 1; k <= j; k++ {
					sum += t.Data[i*t.Stride+k] * inv.Data[k*inv.Stride+j]
				}
				inv.Data[i*inv.Stride+j] = -sum / t.Data[i*t.Stride+i]
			}
		}
	}
	return inv, nil
}

// CholInv is the paper's sequential CholInv building block: it factors the
// SPD matrix A = L·Lᵀ and also returns Y = L⁻¹. The paper charges
// (2/3)n³ flops for the factorization plus (1/3)n³ for the inverse
// (asymptotically absorbed). This is the redundant base-case computation
// of Algorithm 3.
func CholInv(a *Matrix) (l, y *Matrix, err error) {
	l, err = Cholesky(a)
	if err != nil {
		return nil, nil, err
	}
	y, err = TriInverse(l, Lower)
	if err != nil {
		return nil, nil, err
	}
	return l, y, nil
}

// QRFactors holds the compact output of Householder QR: the upper
// triangle of QR.R (n×n) and the Householder vectors/taus needed to apply
// or form Q.
type QRFactors struct {
	// V is m×n; column j holds the j-th Householder vector with an
	// implicit unit in position j (entries above j are zero).
	V *Matrix
	// Tau holds the n Householder coefficients.
	Tau []float64
	// R is the n×n upper-triangular factor.
	R *Matrix
}

// HouseholderQR computes the reduced QR factorization of an m×n matrix
// (m ≥ n) by Householder reflections (2mn² − (2/3)n³ flops — the flop
// count the paper's Gigaflops/s figures are normalized by). The input is
// not modified.
func HouseholderQR(a *Matrix) (*QRFactors, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, ErrShape
	}
	w := a.Clone()
	v := NewMatrix(m, n)
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the reflector for column k from w[k:m, k].
		var normx float64
		for i := k; i < m; i++ {
			x := w.Data[i*w.Stride+k]
			normx += x * x
		}
		normx = math.Sqrt(normx)
		x0 := w.Data[k*w.Stride+k]
		if normx == 0 {
			tau[k] = 0
			v.Data[k*v.Stride+k] = 1
			continue
		}
		beta := -math.Copysign(normx, x0)
		v.Data[k*v.Stride+k] = 1
		scale := x0 - beta
		for i := k + 1; i < m; i++ {
			v.Data[i*v.Stride+k] = w.Data[i*w.Stride+k] / scale
		}
		tau[k] = (beta - x0) / beta
		w.Data[k*w.Stride+k] = beta
		for i := k + 1; i < m; i++ {
			w.Data[i*w.Stride+k] = 0
		}
		// Apply (I − tau v vᵀ) to the trailing columns.
		for j := k + 1; j < n; j++ {
			var dot float64
			dot = w.Data[k*w.Stride+j]
			for i := k + 1; i < m; i++ {
				dot += v.Data[i*v.Stride+k] * w.Data[i*w.Stride+j]
			}
			t := tau[k] * dot
			w.Data[k*w.Stride+j] -= t
			for i := k + 1; i < m; i++ {
				w.Data[i*w.Stride+j] -= t * v.Data[i*v.Stride+k]
			}
		}
	}
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Data[i*r.Stride+j] = w.Data[i*w.Stride+j]
		}
	}
	return &QRFactors{V: v, Tau: tau, R: r}, nil
}

// FormQ explicitly forms the m×n orthonormal factor from the compact
// representation.
func (f *QRFactors) FormQ() *Matrix {
	m, n := f.V.Rows, f.V.Cols
	q := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		q.Data[j*q.Stride+j] = 1
	}
	// Q = H_0 H_1 ... H_{n-1} · [I; 0]; apply reflectors in reverse.
	for k := n - 1; k >= 0; k-- {
		if f.Tau[k] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += f.V.Data[i*f.V.Stride+k] * q.Data[i*q.Stride+j]
			}
			t := f.Tau[k] * dot
			for i := k; i < m; i++ {
				q.Data[i*q.Stride+j] -= t * f.V.Data[i*f.V.Stride+k]
			}
		}
	}
	return q
}

// QR computes the reduced factorization A = Q·R with Q m×n orthonormal
// and R n×n upper triangular, normalizing signs so that R has a
// non-negative diagonal (making the factorization unique and comparable
// across algorithms).
func QR(a *Matrix) (q, r *Matrix, err error) {
	f, err := HouseholderQR(a)
	if err != nil {
		return nil, nil, err
	}
	q = f.FormQ()
	r = f.R
	NormalizeSigns(q, r)
	return q, r, nil
}

// NormalizeSigns flips, in place, each row i of R with a negative
// diagonal entry together with column i of Q. Q·R is unchanged, and R
// gains the non-negative diagonal that makes a reduced QR factorization
// unique — the convention every factorization in this repository
// returns, so results from Householder, TSQR, PGEQRF, and the
// CholeskyQR family (whose R is non-negative by construction) are
// directly comparable.
func NormalizeSigns(q, r *Matrix) {
	for i := 0; i < r.Rows; i++ {
		if r.Data[i*r.Stride+i] < 0 {
			for j := i; j < r.Cols; j++ {
				r.Data[i*r.Stride+j] = -r.Data[i*r.Stride+j]
			}
			for k := 0; k < q.Rows; k++ {
				q.Data[k*q.Stride+i] = -q.Data[k*q.Stride+i]
			}
		}
	}
}
