package lin

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveMul is the reference triple loop every blocked kernel is checked
// against.
func naiveMul(transA, transB bool, a, b *Matrix) *Matrix {
	if transA {
		a = a.T()
	}
	if transB {
		b = b.T()
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestGemmAllVariantsMatchNaive(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 3, 9},
		{blockSize, blockSize, blockSize},
		{blockSize + 3, blockSize - 1, 2*blockSize + 5},
		{1, 60, 1}, {60, 1, 60},
	}
	for _, sh := range shapes {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				ar, ac := sh.m, sh.k
				if ta {
					ar, ac = ac, ar
				}
				br, bc := sh.k, sh.n
				if tb {
					br, bc = bc, br
				}
				a := RandomMatrix(ar, ac, 11)
				b := RandomMatrix(br, bc, 22)
				want := naiveMul(ta, tb, a, b)
				got := NewMatrix(sh.m, sh.n)
				Gemm(ta, tb, 1, a, b, 0, got)
				if !got.EqualWithin(want, 1e-11) {
					t.Fatalf("Gemm(%v,%v) %dx%dx%d mismatch", ta, tb, sh.m, sh.k, sh.n)
				}
			}
		}
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	a := RandomMatrix(4, 3, 1)
	b := RandomMatrix(3, 5, 2)
	c0 := RandomMatrix(4, 5, 3)

	// C = 2*A*B + 3*C0 computed two ways.
	c := c0.Clone()
	Gemm(false, false, 2, a, b, 3, c)
	want := naiveMul(false, false, a, b)
	want.Scale(2)
	scaled := c0.Clone()
	scaled.Scale(3)
	want.Add(scaled)
	if !c.EqualWithin(want, 1e-12) {
		t.Fatal("alpha/beta combination wrong")
	}

	// beta=0 must overwrite even when C holds NaN-free garbage.
	c = RandomMatrix(4, 5, 9)
	Gemm(false, false, 1, a, b, 0, c)
	if !c.EqualWithin(naiveMul(false, false, a, b), 1e-12) {
		t.Fatal("beta=0 did not overwrite C")
	}

	// alpha=0, beta=1 must leave C untouched.
	c = c0.Clone()
	Gemm(false, false, 0, a, b, 1, c)
	if !c.Equal(c0) {
		t.Fatal("alpha=0 modified C")
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm(false, false, 1, NewMatrix(2, 3), NewMatrix(4, 2), 0, NewMatrix(2, 2))
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomMatrix(4, 3, seed)
		b := RandomMatrix(3, 5, seed+1)
		c := RandomMatrix(5, 2, seed+2)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.EqualWithin(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSyrkMatchesGemm(t *testing.T) {
	for _, sh := range []struct{ m, n int }{{1, 1}, {5, 3}, {3, 5}, {64, 17}, {100, 48}} {
		a := RandomMatrix(sh.m, sh.n, 7)
		want := naiveMul(true, false, a, a)
		got := SyrkNew(a)
		if !got.EqualWithin(want, 1e-11) {
			t.Fatalf("Syrk %dx%d mismatch", sh.m, sh.n)
		}
		// Result must be exactly symmetric (mirrored, not recomputed).
		for i := 0; i < sh.n; i++ {
			for j := 0; j < sh.n; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("Syrk asymmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestSyrkAccumulate(t *testing.T) {
	a := RandomMatrix(6, 4, 5)
	c := RandomMatrix(4, 4, 6)
	// Symmetrize c first so beta-scaling keeps it symmetric.
	sym := SyrkNew(c)
	got := sym.Clone()
	Syrk(2, a, 0.5, got)
	want := naiveMul(true, false, a, a)
	want.Scale(2)
	half := sym.Clone()
	half.Scale(0.5)
	want.Add(half)
	if !got.EqualWithin(want, 1e-11) {
		t.Fatal("Syrk alpha/beta accumulation wrong")
	}
}

func TestTrsmRightUpper(t *testing.T) {
	// B·U⁻¹ then ·U must restore B.
	u := randomUpper(6, 31)
	b := RandomMatrix(9, 6, 32)
	x := b.Clone()
	Trsm(Right, Upper, false, u, x)
	Trmm(Right, Upper, false, u, x)
	if !x.EqualWithin(b, 1e-10) {
		t.Fatal("Trsm/Trmm Right Upper not inverse operations")
	}
}

func TestTrsmLeftLower(t *testing.T) {
	l := randomLower(5, 33)
	b := RandomMatrix(5, 7, 34)
	x := b.Clone()
	Trsm(Left, Lower, false, l, x)
	// L·x must equal b.
	Trmm(Left, Lower, false, l, x)
	if !x.EqualWithin(b, 1e-10) {
		t.Fatal("Trsm Left Lower wrong")
	}
}

func TestTrsmLeftUpper(t *testing.T) {
	u := randomUpper(5, 43)
	b := RandomMatrix(5, 4, 44)
	x := b.Clone()
	Trsm(Left, Upper, false, u, x)
	Trmm(Left, Upper, false, u, x)
	if !x.EqualWithin(b, 1e-10) {
		t.Fatal("Trsm Left Upper wrong")
	}
}

func TestTrsmRightLower(t *testing.T) {
	l := randomLower(5, 53)
	b := RandomMatrix(6, 5, 54)
	x := b.Clone()
	Trsm(Right, Lower, false, l, x)
	Trmm(Right, Lower, false, l, x)
	if !x.EqualWithin(b, 1e-10) {
		t.Fatal("Trsm Right Lower wrong")
	}
}

func TestTrsmTransposedVariants(t *testing.T) {
	l := randomLower(6, 63)
	lt := l.T()

	// Left Lower transT ≡ Left Upper with Lᵀ.
	b := RandomMatrix(6, 3, 64)
	x1 := b.Clone()
	Trsm(Left, Lower, true, l, x1)
	x2 := b.Clone()
	Trsm(Left, Upper, false, lt, x2)
	if !x1.EqualWithin(x2, 1e-10) {
		t.Fatal("Left Lower transposed solve mismatch")
	}

	// Right Lower transT ≡ Right Upper with Lᵀ.
	c := RandomMatrix(4, 6, 65)
	y1 := c.Clone()
	Trsm(Right, Lower, true, l, y1)
	y2 := c.Clone()
	Trsm(Right, Upper, false, lt, y2)
	if !y1.EqualWithin(y2, 1e-10) {
		t.Fatal("Right Lower transposed solve mismatch")
	}
}

func TestTrsmSingularPanics(t *testing.T) {
	u := Identity(3)
	u.Set(1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on singular triangular solve")
		}
	}()
	Trsm(Right, Upper, false, u, NewMatrix(2, 3))
}

func TestTrmmMatchesGemmWithTriangularOperand(t *testing.T) {
	u := randomUpper(5, 71)
	l := randomLower(5, 72)
	b := RandomMatrix(5, 5, 73)

	cases := []struct {
		side Side
		tri  Triangle
		t    *Matrix
		want *Matrix
	}{
		{Right, Upper, u, naiveMul(false, false, b, u)},
		{Right, Lower, l, naiveMul(false, false, b, l)},
		{Left, Upper, u, naiveMul(false, false, u, b)},
		{Left, Lower, l, naiveMul(false, false, l, b)},
	}
	for _, c := range cases {
		got := b.Clone()
		Trmm(c.side, c.tri, false, c.t, got)
		if !got.EqualWithin(c.want, 1e-11) {
			t.Fatalf("Trmm side=%v tri=%v mismatch", c.side, c.tri)
		}
	}
}

func TestTrmmTransposedVariants(t *testing.T) {
	u := randomUpper(5, 81)
	l := randomLower(5, 82)
	b := RandomMatrix(5, 5, 83)

	cases := []struct {
		side Side
		tri  Triangle
		t    *Matrix
		want *Matrix
	}{
		{Right, Lower, l, naiveMul(false, true, b, l)}, // B·Lᵀ
		{Right, Upper, u, naiveMul(false, true, b, u)}, // B·Uᵀ
		{Left, Lower, l, naiveMul(true, false, l, b)},  // Lᵀ·B
		{Left, Upper, u, naiveMul(true, false, u, b)},  // Uᵀ·B
	}
	for _, c := range cases {
		got := b.Clone()
		Trmm(c.side, c.tri, true, c.t, got)
		if !got.EqualWithin(c.want, 1e-11) {
			t.Fatalf("Trmm side=%v tri=%v transT mismatch", c.side, c.tri)
		}
	}
}

func TestTrmmTransposeConsistency(t *testing.T) {
	// Multiplying by Lᵀ (transT) must equal multiplying by the explicit
	// transpose as an Upper operand, for both sides.
	l := randomLower(6, 91)
	lt := l.T()
	b := RandomMatrix(6, 6, 92)

	x1 := b.Clone()
	Trmm(Left, Lower, true, l, x1)
	x2 := b.Clone()
	Trmm(Left, Upper, false, lt, x2)
	if !x1.EqualWithin(x2, 1e-12) {
		t.Fatal("Left Lᵀ inconsistent with explicit transpose")
	}

	y1 := b.Clone()
	Trmm(Right, Lower, true, l, y1)
	y2 := b.Clone()
	Trmm(Right, Upper, false, lt, y2)
	if !y1.EqualWithin(y2, 1e-12) {
		t.Fatal("Right Lᵀ inconsistent with explicit transpose")
	}
}

// randomUpper returns a well-conditioned random upper-triangular matrix.
func randomUpper(n int, seed int64) *Matrix {
	m := RandomMatrix(n, n, seed)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			m.Set(i, j, 0)
		}
		m.Set(i, i, 2+math.Abs(m.At(i, i)))
	}
	return m
}

// randomLower returns a well-conditioned random lower-triangular matrix.
func randomLower(n int, seed int64) *Matrix {
	return randomUpper(n, seed).T()
}
