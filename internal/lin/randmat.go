package lin

import (
	"math"
	"math/rand"
)

// Random matrix generators. The paper's performance experiments use
// unspecified random matrices; RandomMatrix reproduces that workload
// deterministically from a seed. The accuracy experiments additionally
// need matrices with a prescribed 2-norm condition number, which
// RandomWithCond builds as Q₁·Σ·Q₂ᵀ from Householder-random orthonormal
// factors and a geometric singular-value ladder.

// RandomMatrix returns an m×n matrix with i.i.d. entries uniform on
// [-1, 1), from a deterministic seed.
func RandomMatrix(m, n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := NewMatrix(m, n)
	for i := range out.Data {
		out.Data[i] = 2*rng.Float64() - 1
	}
	return out
}

// RandomSPD returns an n×n symmetric positive definite matrix AᵀA + n·I
// built from a random A, safe for Cholesky at any size.
func RandomSPD(n int, seed int64) *Matrix {
	a := RandomMatrix(n, n, seed)
	spd := SyrkNew(a)
	for i := 0; i < n; i++ {
		spd.Data[i*spd.Stride+i] += float64(n)
	}
	return spd
}

// RandomOrthonormal returns an m×n matrix (m ≥ n) with orthonormal
// columns, obtained as the Q factor of a random Gaussian-ish matrix.
func RandomOrthonormal(m, n int, seed int64) *Matrix {
	a := RandomMatrix(m, n, seed)
	q, _, err := QR(a)
	if err != nil {
		panic(err) // random matrices are full rank with probability 1
	}
	return q
}

// RandomWithCond returns an m×n matrix (m ≥ n) whose 2-norm condition
// number is cond, with singular values geometrically spaced in
// [1/cond, 1].
func RandomWithCond(m, n int, cond float64, seed int64) *Matrix {
	if cond < 1 {
		panic("lin: condition number must be >= 1")
	}
	u := RandomOrthonormal(m, n, seed)
	v := RandomOrthonormal(n, n, seed+1)
	// Scale columns of U by the singular values, then multiply by Vᵀ.
	for j := 0; j < n; j++ {
		var sigma float64
		if n == 1 {
			sigma = 1
		} else {
			t := float64(j) / float64(n-1)
			sigma = math.Pow(cond, -t)
		}
		for i := 0; i < m; i++ {
			u.Data[i*u.Stride+j] *= sigma
		}
	}
	out := NewMatrix(m, n)
	Gemm(false, true, 1, u, v, 0, out)
	return out
}
