package lin

//lint:allow workersknob this file IS the sanctioned worker pool the knob dispatches through

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shared-memory parallelism for the level-3 kernels. The distributed
// algorithms charge flops to the simulated machine model and do not need
// wall-clock speed, but a production library should still use the host's
// cores for large local multiplies. All parallel kernels partition the
// OUTPUT into disjoint row (or column) ranges and run the serial blocked
// kernel on views, so every output element is computed by exactly the
// same sequence of floating-point operations as the serial code — results
// are bitwise identical to the serial kernels for any worker count.
//
// Work is scheduled on a process-wide pool of GOMAXPROCS goroutines
// shared by every kernel invocation (including concurrent invocations
// from different simmpi ranks). Chunks are claimed dynamically through an
// atomic cursor, so triangular workloads (SYRK, TRSM) balance themselves
// without static partition arithmetic. The submitting goroutine always
// works through the chunk list itself: a saturated pool degrades to
// serial execution instead of deadlocking or queueing unboundedly.

// forJob is one parallelFor invocation: a body, an iteration space broken
// into grain-sized chunks, and an atomic cursor the participants race on.
type forJob struct {
	body  func(lo, hi int)
	n     int   // iteration-space size
	grain int   // chunk size
	next  int64 // atomic cursor over chunk indices
	wg    sync.WaitGroup
}

// run claims chunks until the iteration space is exhausted.
func (j *forJob) run() {
	for {
		c := atomic.AddInt64(&j.next, 1) - 1
		lo := int(c) * j.grain
		if lo >= j.n {
			return
		}
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.body(lo, hi)
	}
}

var (
	poolOnce  sync.Once
	poolQueue chan *forJob
)

// poolInit lazily starts the shared workers on first parallel call.
func poolInit() {
	n := runtime.GOMAXPROCS(0)
	poolQueue = make(chan *forJob, 8*n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range poolQueue {
				j.run()
				j.wg.Done()
			}
		}()
	}
}

// parallelFor runs body over [0, n) in grain-sized chunks on up to
// workers goroutines (0 = GOMAXPROCS), including the caller. body must
// not panic: a panic on a pool worker cannot be recovered by the caller,
// so kernels validate shapes before entering the pool.
func parallelFor(workers, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if grain < 1 {
		grain = 1
	}
	if chunks := (n + grain - 1) / grain; workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	poolOnce.Do(poolInit)
	j := &forJob{body: body, n: n, grain: grain}
	j.wg.Add(workers - 1)
	for h := 0; h < workers-1; h++ {
		select {
		case poolQueue <- j:
		default:
			// Pool saturated; the caller's own loop still covers every
			// chunk, so shedding the helper only loses parallelism.
			j.wg.Done()
		}
	}
	j.run()
	j.wg.Wait()
}

// resolveWorkers maps the public knob onto a concrete goroutine count:
// 0 (or negative) means GOMAXPROCS.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}
