package lin

import (
	"runtime"
	"sync"
)

// Shared-memory parallel kernels. The distributed algorithms charge flops
// to the simulated machine model and do not need wall-clock speed, but a
// production library should still use the host's cores for large local
// multiplies: GemmParallel partitions the output rows across goroutines,
// each running the serial blocked kernel on disjoint views, so results
// are bitwise identical to the serial Gemm.

// GemmParallel computes C = beta*C + alpha*op(A)*op(B) using up to
// workers goroutines (0 = GOMAXPROCS). Falls back to the serial kernel
// for small outputs where goroutine overhead dominates.
func GemmParallel(workers int, transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const minRowsPerWorker = 64
	if workers == 1 || c.Rows < 2*minRowsPerWorker {
		Gemm(transA, transB, alpha, a, b, 0+beta, c)
		return
	}
	if c.Rows/minRowsPerWorker < workers {
		workers = c.Rows / minRowsPerWorker
	}

	var wg sync.WaitGroup
	chunk := (c.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		if r0 >= c.Rows {
			break
		}
		rows := chunk
		if r0+rows > c.Rows {
			rows = c.Rows - r0
		}
		wg.Add(1)
		go func(r0, rows int) {
			defer wg.Done()
			var aView *Matrix
			if transA {
				// Rows of op(A) are columns of A.
				aView = a.View(0, r0, a.Rows, rows)
			} else {
				aView = a.View(r0, 0, rows, a.Cols)
			}
			cView := c.View(r0, 0, rows, c.Cols)
			Gemm(transA, transB, alpha, aView, b, beta, cView)
		}(r0, rows)
	}
	wg.Wait()
}

// MatMulParallel returns A·B computed with GemmParallel.
func MatMulParallel(workers int, a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	GemmParallel(workers, false, false, 1, a, b, 0, c)
	return c
}
