package lin

import (
	"testing"
	"testing/quick"
)

func TestGemmParallelMatchesSerial(t *testing.T) {
	for _, sh := range []struct{ m, k, n int }{
		{16, 16, 16},    // below the parallel threshold
		{200, 64, 48},   // parallel path
		{300, 32, 300},  // wide output
		{129, 129, 129}, // odd sizes
	} {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				ar, ac := sh.m, sh.k
				if ta {
					ar, ac = ac, ar
				}
				br, bc := sh.k, sh.n
				if tb {
					br, bc = bc, br
				}
				a := RandomMatrix(ar, ac, 31)
				b := RandomMatrix(br, bc, 32)
				want := NewMatrix(sh.m, sh.n)
				Gemm(ta, tb, 1.5, a, b, 0, want)
				got := NewMatrix(sh.m, sh.n)
				GemmParallel(4, ta, tb, 1.5, a, b, 0, got)
				if !got.Equal(want) {
					t.Fatalf("parallel Gemm(%v,%v) %dx%dx%d differs from serial", ta, tb, sh.m, sh.k, sh.n)
				}
			}
		}
	}
}

func TestGemmParallelBeta(t *testing.T) {
	a := RandomMatrix(256, 32, 33)
	b := RandomMatrix(32, 64, 34)
	c0 := RandomMatrix(256, 64, 35)
	want := c0.Clone()
	Gemm(false, false, 2, a, b, 0.5, want)
	got := c0.Clone()
	GemmParallel(3, false, false, 2, a, b, 0.5, got)
	if !got.Equal(want) {
		t.Fatal("parallel beta accumulation differs from serial")
	}
}

func TestGemmParallelWorkerCounts(t *testing.T) {
	a := RandomMatrix(256, 40, 36)
	b := RandomMatrix(40, 30, 37)
	want := MatMul(a, b)
	for _, w := range []int{0, 1, 2, 7, 64} {
		got := MatMulParallel(w, a, b)
		if !got.Equal(want) {
			t.Fatalf("workers=%d differs", w)
		}
	}
}

func TestGemmParallelProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomMatrix(180, 20, seed)
		b := RandomMatrix(20, 25, seed+1)
		return MatMulParallel(4, a, b).Equal(MatMul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
