package lin

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("bad shape %dx%d stride %d", m.Rows, m.Cols, m.Stride)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestFromSliceRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
	// The slice must be copied, not aliased.
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromSlice aliased its input")
	}
}

func TestFromSliceBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if id.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestAtSetBounds(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.At(-1, 0) },
		func() { m.At(0, 2) },
		func() { m.Set(2, 0, 1) },
		func() { m.Set(0, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := NewMatrix(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 7)
	if m.At(1, 1) != 7 {
		t.Fatal("view write did not reach parent")
	}
	if v.Stride != m.Stride {
		t.Fatal("view should preserve parent stride")
	}
	// A clone of the view must be compact and independent.
	c := v.Clone()
	c.Set(0, 0, 8)
	if m.At(1, 1) != 7 {
		t.Fatal("clone aliased the parent")
	}
	if c.Stride != 2 {
		t.Fatalf("clone stride = %d, want compact 2", c.Stride)
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	m := NewMatrix(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.View(1, 1, 3, 1)
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		m := RandomMatrix(5, 7, seed)
		return m.Equal(m.T().T())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleAxpy(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	s := a.Clone()
	s.Add(b)
	if !s.Equal(FromSlice(2, 2, []float64{6, 8, 10, 12})) {
		t.Fatalf("Add: %v", s)
	}
	s.Sub(b)
	if !s.Equal(a) {
		t.Fatalf("Sub did not undo Add: %v", s)
	}
	s.Scale(2)
	if !s.Equal(FromSlice(2, 2, []float64{2, 4, 6, 8})) {
		t.Fatalf("Scale: %v", s)
	}
	s = a.Clone()
	s.Axpy(-1, b)
	if !s.Equal(FromSlice(2, 2, []float64{-4, -4, -4, -4})) {
		t.Fatalf("Axpy: %v", s)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 2).Add(NewMatrix(2, 3))
}

func TestEqualWithin(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{1 + 1e-12, 2 - 1e-12})
	if !a.EqualWithin(b, 1e-10) {
		t.Fatal("should be equal within 1e-10")
	}
	if a.EqualWithin(b, 1e-14) {
		t.Fatal("should differ at 1e-14")
	}
	if a.EqualWithin(NewMatrix(2, 1), 1) {
		t.Fatal("shape mismatch must not be equal")
	}
}

func TestTriangularPredicates(t *testing.T) {
	u := FromSlice(3, 3, []float64{1, 2, 3, 0, 4, 5, 0, 0, 6})
	if !u.IsUpperTriangular(0) {
		t.Fatal("u should be upper triangular")
	}
	if u.IsLowerTriangular(0) {
		t.Fatal("u should not be lower triangular")
	}
	l := u.T()
	if !l.IsLowerTriangular(0) || l.IsUpperTriangular(0) {
		t.Fatal("l triangularity wrong")
	}
	// Diagonal matrices are both.
	d := Identity(3)
	if !d.IsUpperTriangular(0) || !d.IsLowerTriangular(0) {
		t.Fatal("identity should be both")
	}
}

func TestZero(t *testing.T) {
	m := RandomMatrix(3, 3, 1)
	m.Zero()
	if FrobeniusNorm(m) != 0 {
		t.Fatal("Zero left nonzero entries")
	}
}

func TestCopyFromRespectsViews(t *testing.T) {
	parent := NewMatrix(4, 4)
	v := parent.View(1, 1, 2, 2)
	src := FromSlice(2, 2, []float64{1, 2, 3, 4})
	v.CopyFrom(src)
	if parent.At(1, 1) != 1 || parent.At(2, 2) != 4 {
		t.Fatalf("CopyFrom through view failed: %v", parent)
	}
	if parent.At(0, 0) != 0 || parent.At(3, 3) != 0 {
		t.Fatal("CopyFrom wrote outside the view")
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	for _, m := range []*Matrix{NewMatrix(0, 0), NewMatrix(1, 1), RandomMatrix(10, 10, 3)} {
		if s := m.String(); s == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -5, 3, 2})
	if MaxAbs(m) != 5 {
		t.Fatalf("MaxAbs = %v", MaxAbs(m))
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if math.Abs(FrobeniusNorm(m)-5) > 1e-15 {
		t.Fatalf("‖(3,4)‖ = %v", FrobeniusNorm(m))
	}
}
