package lin

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"errors"
	"math"
	"testing"
)

func TestApplyQTProducesR(t *testing.T) {
	// Qᵀ·A = [R; 0], the defining identity of the factored form.
	a := RandomMatrix(12, 5, 61)
	f, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Clone()
	if err := f.ApplyQT(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i < 5 {
				want = f.R.At(i, j)
			}
			if math.Abs(w.At(i, j)-want) > 1e-12 {
				t.Fatalf("QᵀA[%d][%d] = %g, want %g", i, j, w.At(i, j), want)
			}
		}
	}
}

func TestApplyQInvertsApplyQT(t *testing.T) {
	a := RandomMatrix(16, 6, 62)
	f, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	b := RandomMatrix(16, 3, 63)
	w := b.Clone()
	if err := f.ApplyQT(w); err != nil {
		t.Fatal(err)
	}
	if err := f.ApplyQ(w); err != nil {
		t.Fatal(err)
	}
	if !w.EqualWithin(b, 1e-12) {
		t.Fatal("Q·(Qᵀ·B) ≠ B")
	}
}

func TestApplyQMatchesExplicitQ(t *testing.T) {
	a := RandomMatrix(10, 4, 64)
	f, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	q := f.FormQ()
	// Apply Q to [I_n; 0] and compare with the explicit Q.
	b := NewMatrix(10, 4)
	for j := 0; j < 4; j++ {
		b.Set(j, j, 1)
	}
	if err := f.ApplyQ(b); err != nil {
		t.Fatal(err)
	}
	if !b.EqualWithin(q, 1e-12) {
		t.Fatal("implicit Q differs from explicit Q")
	}
}

func TestApplyQShapeChecks(t *testing.T) {
	a := RandomMatrix(8, 3, 65)
	f, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ApplyQT(NewMatrix(7, 1)); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v", err)
	}
	if err := f.ApplyQ(NewMatrix(9, 1)); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v", err)
	}
}

func TestLeastSquaresFromFactors(t *testing.T) {
	a := RandomMatrix(30, 4, 66)
	xTrue := []float64{2, -1, 0.5, 3}
	b := make([]float64, 30)
	for i := 0; i < 30; i++ {
		for j := 0; j < 4; j++ {
			b[i] += a.At(i, j) * xTrue[j]
		}
	}
	f, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.LeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range x {
		if math.Abs(x[j]-xTrue[j]) > 1e-11 {
			t.Fatalf("x[%d] = %g, want %g", j, x[j], xTrue[j])
		}
	}
	// b must not be modified.
	if b[0] == 0 && b[1] == 0 {
		t.Fatal("suspicious rhs")
	}
	if _, err := f.LeastSquares(make([]float64, 7)); !errors.Is(err, ErrShape) {
		t.Fatalf("got %v", err)
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	a := NewMatrix(6, 2)
	for i := 0; i < 6; i++ {
		a.Set(i, 0, 1) // second column identically zero
	}
	f, err := HouseholderQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LeastSquares(make([]float64, 6)); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v", err)
	}
}
