package lin

import (
	"runtime"
	"strconv"
	"testing"
)

// Kernel benchmarks at the acceptance shape 1024×1024×64 (tall-ish
// output, short contraction — the Gram/apply shape CholeskyQR lives on).
// BenchmarkGEMMNaive is the pre-blocking baseline the blocked kernels
// are gated against; run the family with
//
//	go test ./internal/lin -bench BenchmarkGEMM

func benchGemm(b *testing.B, m, n, k int, kernel func(a, x, c *Matrix)) {
	b.Helper()
	a := RandomMatrix(m, k, 61)
	x := RandomMatrix(k, n, 62)
	c := NewMatrix(m, n)
	b.SetBytes(int64(m*k+k*n+m*n) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(a, x, c)
	}
	gflops := float64(GemmFlops(m, n, k)) / 1e9
	b.ReportMetric(gflops*float64(b.N)/b.Elapsed().Seconds(), "GFLOP/s")
}

func BenchmarkGEMMNaive1024x1024x64(b *testing.B) {
	benchGemm(b, 1024, 1024, 64, func(a, x, c *Matrix) {
		naiveGemm(false, false, 1, a, x, 0, c)
	})
}

func BenchmarkGEMMBlocked1024x1024x64(b *testing.B) {
	benchGemm(b, 1024, 1024, 64, func(a, x, c *Matrix) {
		Gemm(false, false, 1, a, x, 0, c)
	})
}

func BenchmarkGEMMParallel1024x1024x64(b *testing.B) {
	benchGemm(b, 1024, 1024, 64, func(a, x, c *Matrix) {
		GemmParallel(0, false, false, 1, a, x, 0, c)
	})
}

func BenchmarkGEMMParallel1024Workers(b *testing.B) {
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		b.Run(strconv.Itoa(w), func(b *testing.B) {
			benchGemm(b, 1024, 1024, 64, func(a, x, c *Matrix) {
				GemmParallel(w, false, false, 1, a, x, 0, c)
			})
		})
	}
}

func BenchmarkSYRKBlocked2048x256(b *testing.B) {
	a := RandomMatrix(2048, 256, 63)
	c := NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Syrk(1, a, 0, c)
	}
}

func BenchmarkSYRKParallel2048x256(b *testing.B) {
	a := RandomMatrix(2048, 256, 63)
	c := NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyrkParallel(0, 1, a, 0, c)
	}
}

func BenchmarkTRSMBlocked2048x256(b *testing.B) {
	t := wellCondTriangular(256, Upper, 64)
	rhs := RandomMatrix(2048, 256, 65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := rhs.Clone()
		b.StartTimer()
		Trsm(Right, Upper, false, t, x)
	}
}

func BenchmarkTRSMParallel2048x256(b *testing.B) {
	t := wellCondTriangular(256, Upper, 64)
	rhs := RandomMatrix(2048, 256, 65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := rhs.Clone()
		b.StartTimer()
		TrsmParallel(0, Right, Upper, false, t, x)
	}
}
