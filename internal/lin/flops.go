package lin

// Flop-count helpers matching the sequential cost conventions of the
// paper's §II-A. Distributed algorithms charge these amounts to the
// simmpi virtual clock alongside the corresponding kernel call, so the
// measured γ cost is exactly the model's.

// GemmFlops is the cost of an m×k by k×n multiply: 2mnk.
func GemmFlops(m, n, k int) int64 { return 2 * int64(m) * int64(n) * int64(k) }

// SyrkFlops is the cost of AᵀA for m×n A: mn² (symmetry halves it).
func SyrkFlops(m, n int) int64 { return int64(m) * int64(n) * int64(n) }

// CholFlops is the cost of an n×n Cholesky factorization: (2/3)n³ per
// the paper's T_Chol.
func CholFlops(n int) int64 { return 2 * int64(n) * int64(n) * int64(n) / 3 }

// TriInvFlops is the cost of inverting an n×n triangular matrix: (1/3)n³.
func TriInvFlops(n int) int64 { return int64(n) * int64(n) * int64(n) / 3 }

// TrsmFlops is the cost of a triangular solve against an m×n right-hand
// side: mn² multiply-adds counted as 2 each ⇒ m·n².
func TrsmFlops(m, n int) int64 { return int64(m) * int64(n) * int64(n) }

// AxpyFlops is the cost of C ← aX + Y on m×n operands: 2mn.
func AxpyFlops(m, n int) int64 { return 2 * int64(m) * int64(n) }

// HouseholderQRFlops is the Householder QR cost the paper normalizes its
// Gigaflops/s plots by: 2mn² − (2/3)n³.
func HouseholderQRFlops(m, n int) int64 {
	return 2*int64(m)*int64(n)*int64(n) - 2*int64(n)*int64(n)*int64(n)/3
}

// CQR2Flops is the critical-path flop count of all CholeskyQR2 variants
// per the paper's §IV: 4mn² + (5/3)n³.
func CQR2Flops(m, n int) int64 {
	return 4*int64(m)*int64(n)*int64(n) + 5*int64(n)*int64(n)*int64(n)/3
}
