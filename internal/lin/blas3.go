package lin

//lint:allow floatcompare exact zero tests are structural fast paths and bit-identity is the kernel contract, not data tolerance checks

// Level-3 kernels: GEMM, SYRK, TRSM, TRMM. All are cache-blocked with a
// fixed tile size; correctness, not peak rate, is the goal (the cost model
// owns rates). Each kernel documents its flop count so instrumentation in
// the distributed algorithms can charge the α-β-γ model exactly.

// blockSize is the tile edge used by the blocked kernels. 48 keeps three
// f64 tiles (~55 KB) inside a typical 256 KB L2 while staying friendly to
// small matrices.
const blockSize = 48

// Triangle selects the triangular half of a matrix an operation refers to.
type Triangle int

// Triangular halves.
const (
	Lower Triangle = iota
	Upper
)

// Side selects whether a triangular operand appears on the left or right.
type Side int

// Operand sides.
const (
	Left Side = iota
	Right
)

// Gemm computes C = beta*C + alpha*op(A)*op(B), with op controlled by
// transA and transB. It performs 2*m*n*k flops for the inner product part
// (m, n the shape of C, k the contraction length).
func Gemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	checkGemmShapes(transA, transB, a, b, c)
	ar, ac := a.Rows, a.Cols
	if transA {
		ar, ac = ac, ar
	}
	bc := b.Cols
	if transB {
		bc = b.Rows
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			c.Scale(beta)
		}
	}
	if alpha == 0 || ar == 0 || bc == 0 || ac == 0 {
		return
	}
	switch {
	case !transA && !transB:
		gemmNN(alpha, a, b, c)
	case !transA && transB:
		gemmNT(alpha, a, b, c)
	case transA && !transB:
		gemmTN(alpha, a, b, c)
	default:
		gemmTT(alpha, a, b, c)
	}
}

// gemmNN: C += alpha * A * B, blocked over (i, k, j). The contraction is
// unrolled four-wide so each pass reads four rows of B against one
// read-modify-write of the C row, quartering the C traffic that
// dominates this shape.
func gemmNN(alpha float64, a, b, c *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for ii := 0; ii < m; ii += blockSize {
		iMax := min(ii+blockSize, m)
		for kk := 0; kk < k; kk += blockSize {
			kMax := min(kk+blockSize, k)
			for jj := 0; jj < n; jj += blockSize {
				jMax := min(jj+blockSize, n)
				for i := ii; i < iMax; i++ {
					ci := c.Data[i*c.Stride+jj : i*c.Stride+jMax]
					ai := a.Data[i*a.Stride : i*a.Stride+kMax]
					l := kk
					for ; l+3 < kMax; l += 4 {
						av0 := alpha * ai[l]
						av1 := alpha * ai[l+1]
						av2 := alpha * ai[l+2]
						av3 := alpha * ai[l+3]
						b0 := b.Data[l*b.Stride+jj : l*b.Stride+jMax]
						b1 := b.Data[(l+1)*b.Stride+jj : (l+1)*b.Stride+jMax]
						b2 := b.Data[(l+2)*b.Stride+jj : (l+2)*b.Stride+jMax]
						b3 := b.Data[(l+3)*b.Stride+jj : (l+3)*b.Stride+jMax]
						for j := range ci {
							ci[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
						}
					}
					for ; l < kMax; l++ {
						av := alpha * ai[l]
						if av == 0 {
							continue
						}
						bl := b.Data[l*b.Stride+jj : l*b.Stride+jMax]
						for j := range ci {
							ci[j] += av * bl[j]
						}
					}
				}
			}
		}
	}
}

// gemmNT: C += alpha * A * Bᵀ — dot products of rows of A with rows of B.
func gemmNT(alpha float64, a, b, c *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Rows
	for ii := 0; ii < m; ii += blockSize {
		iMax := min(ii+blockSize, m)
		for jj := 0; jj < n; jj += blockSize {
			jMax := min(jj+blockSize, n)
			for kk := 0; kk < k; kk += blockSize {
				kMax := min(kk+blockSize, k)
				for i := ii; i < iMax; i++ {
					ai := a.Data[i*a.Stride+kk : i*a.Stride+kMax]
					for j := jj; j < jMax; j++ {
						bj := b.Data[j*b.Stride+kk : j*b.Stride+kMax]
						var sum float64
						for l := range ai {
							sum += ai[l] * bj[l]
						}
						c.Data[i*c.Stride+j] += alpha * sum
					}
				}
			}
		}
	}
}

// gemmTN: C += alpha * Aᵀ * B — rows of B scaled by columns of A, with
// the same four-wide contraction unroll as gemmNN (one C-row pass per
// four B rows).
func gemmTN(alpha float64, a, b, c *Matrix) {
	m, k, n := a.Cols, a.Rows, b.Cols
	for kk := 0; kk < k; kk += blockSize {
		kMax := min(kk+blockSize, k)
		for ii := 0; ii < m; ii += blockSize {
			iMax := min(ii+blockSize, m)
			for jj := 0; jj < n; jj += blockSize {
				jMax := min(jj+blockSize, n)
				for i := ii; i < iMax; i++ {
					ci := c.Data[i*c.Stride+jj : i*c.Stride+jMax]
					l := kk
					for ; l+3 < kMax; l += 4 {
						av0 := alpha * a.Data[l*a.Stride+i]
						av1 := alpha * a.Data[(l+1)*a.Stride+i]
						av2 := alpha * a.Data[(l+2)*a.Stride+i]
						av3 := alpha * a.Data[(l+3)*a.Stride+i]
						b0 := b.Data[l*b.Stride+jj : l*b.Stride+jMax]
						b1 := b.Data[(l+1)*b.Stride+jj : (l+1)*b.Stride+jMax]
						b2 := b.Data[(l+2)*b.Stride+jj : (l+2)*b.Stride+jMax]
						b3 := b.Data[(l+3)*b.Stride+jj : (l+3)*b.Stride+jMax]
						for j := range ci {
							ci[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
						}
					}
					for ; l < kMax; l++ {
						av := alpha * a.Data[l*a.Stride+i]
						if av == 0 {
							continue
						}
						bl := b.Data[l*b.Stride+jj : l*b.Stride+jMax]
						for j := range ci {
							ci[j] += av * bl[j]
						}
					}
				}
			}
		}
	}
}

// gemmTT: C += alpha * Aᵀ * Bᵀ.
func gemmTT(alpha float64, a, b, c *Matrix) {
	m, k, n := a.Cols, a.Rows, b.Rows
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += a.Data[l*a.Stride+i] * b.Data[j*b.Stride+l]
			}
			c.Data[i*c.Stride+j] += alpha * sum
		}
	}
}

// MatMul returns A*B as a new matrix (the paper's MM building block;
// 2*m*n*k flops).
func MatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	Gemm(false, false, 1, a, b, 0, c)
	return c
}

// Syrk computes C = beta*C + alpha*AᵀA into the full symmetric matrix C
// (both halves are written, since the distributed algorithms communicate
// full matrices). A is m×n, C is n×n; the paper charges m*n² flops.
func Syrk(alpha float64, a *Matrix, beta float64, c *Matrix) {
	n := a.Cols
	if c.Rows != n || c.Cols != n {
		panic(ErrShape)
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			c.Scale(beta)
		}
	}
	// Accumulate the upper triangle with blocked updates, then mirror.
	syrkRows(alpha, a, c, 0, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.Data[j*c.Stride+i] = c.Data[i*c.Stride+j]
		}
	}
}

// syrkRows accumulates rows [lo, hi) of the upper triangle of C += α·AᵀA.
// Shared verbatim by Syrk and SyrkParallel so serial and parallel results
// are bitwise identical. The contraction over A's rows is unrolled
// four-wide, matching gemmNN's single pass over each C row per four A
// rows.
func syrkRows(alpha float64, a, c *Matrix, lo, hi int) {
	n := a.Cols
	for kk := 0; kk < a.Rows; kk += blockSize {
		kMax := min(kk+blockSize, a.Rows)
		for i := lo; i < hi; i++ {
			ci := c.Data[i*c.Stride : i*c.Stride+n]
			l := kk
			for ; l+3 < kMax; l += 4 {
				r0 := a.Data[l*a.Stride : l*a.Stride+n]
				r1 := a.Data[(l+1)*a.Stride : (l+1)*a.Stride+n]
				r2 := a.Data[(l+2)*a.Stride : (l+2)*a.Stride+n]
				r3 := a.Data[(l+3)*a.Stride : (l+3)*a.Stride+n]
				av0 := alpha * r0[i]
				av1 := alpha * r1[i]
				av2 := alpha * r2[i]
				av3 := alpha * r3[i]
				for j := i; j < n; j++ {
					ci[j] += av0*r0[j] + av1*r1[j] + av2*r2[j] + av3*r3[j]
				}
			}
			for ; l < kMax; l++ {
				row := a.Data[l*a.Stride : l*a.Stride+n]
				av := alpha * row[i]
				if av == 0 {
					continue
				}
				for j := i; j < n; j++ {
					ci[j] += av * row[j]
				}
			}
		}
	}
}

// SyrkNew returns AᵀA.
func SyrkNew(a *Matrix) *Matrix {
	c := NewMatrix(a.Cols, a.Cols)
	Syrk(1, a, 0, c)
	return c
}

// Trsm solves a triangular system in place against the rows or columns of
// B: with side == Right and tri == Upper it computes B = B * T⁻¹ (the
// CholeskyQR "Q = A R⁻¹" step); with side == Left and tri == Lower it
// computes B = T⁻¹ * B. transT applies the solve with Tᵀ. m*n² flops for
// Right (B m×n), n²m for Left.
func Trsm(side Side, tri Triangle, transT bool, t, b *Matrix) {
	checkTrsm(side, tri, transT, t, b)
	n := t.Rows
	switch {
	case side == Right && tri == Upper && !transT:
		// B := B U⁻¹: forward substitution across columns of each row.
		for r := 0; r < b.Rows; r++ {
			row := b.Data[r*b.Stride : r*b.Stride+n]
			for j := 0; j < n; j++ {
				v := row[j]
				for k := 0; k < j; k++ {
					v -= row[k] * t.Data[k*t.Stride+j]
				}
				row[j] = v / t.Data[j*t.Stride+j]
			}
		}
	case side == Right && tri == Lower && !transT:
		// B := B L⁻¹: backward substitution.
		for r := 0; r < b.Rows; r++ {
			row := b.Data[r*b.Stride : r*b.Stride+n]
			for j := n - 1; j >= 0; j-- {
				v := row[j]
				for k := j + 1; k < n; k++ {
					v -= row[k] * t.Data[k*t.Stride+j]
				}
				row[j] = v / t.Data[j*t.Stride+j]
			}
		}
	case side == Left && tri == Lower && !transT:
		// B := L⁻¹ B.
		for i := 0; i < n; i++ {
			d := t.Data[i*t.Stride+i]
			bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
			for k := 0; k < i; k++ {
				lv := t.Data[i*t.Stride+k]
				if lv == 0 {
					continue
				}
				bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
				for j := range bi {
					bi[j] -= lv * bk[j]
				}
			}
			for j := range bi {
				bi[j] /= d
			}
		}
	case side == Left && tri == Upper && !transT:
		// B := U⁻¹ B.
		for i := n - 1; i >= 0; i-- {
			d := t.Data[i*t.Stride+i]
			bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
			for k := i + 1; k < n; k++ {
				uv := t.Data[i*t.Stride+k]
				if uv == 0 {
					continue
				}
				bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
				for j := range bi {
					bi[j] -= uv * bk[j]
				}
			}
			for j := range bi {
				bi[j] /= d
			}
		}
	case side == Left && tri == Lower && transT:
		// B := L⁻ᵀ B — Lᵀ is upper triangular; back substitution.
		for i := n - 1; i >= 0; i-- {
			d := t.Data[i*t.Stride+i]
			bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
			for j := range bi {
				bi[j] /= d
			}
			for k := 0; k < i; k++ {
				lv := t.Data[i*t.Stride+k] // (Lᵀ)[k][i]
				if lv == 0 {
					continue
				}
				bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
				for j := range bk {
					bk[j] -= lv * bi[j]
				}
			}
		}
	case side == Right && tri == Lower && transT:
		// B := B L⁻ᵀ — Lᵀ upper: forward substitution over columns.
		for r := 0; r < b.Rows; r++ {
			row := b.Data[r*b.Stride : r*b.Stride+n]
			for j := 0; j < n; j++ {
				v := row[j]
				for k := 0; k < j; k++ {
					v -= row[k] * t.Data[j*t.Stride+k] // (Lᵀ)[k][j] = L[j][k]
				}
				row[j] = v / t.Data[j*t.Stride+j]
			}
		}
	default:
		panic("lin: Trsm variant not implemented")
	}
}

// Trmm computes B = T*B (side == Left) or B = B*T (side == Right) in
// place for triangular T. transT multiplies by Tᵀ instead. n²m flops.
func Trmm(side Side, tri Triangle, transT bool, t, b *Matrix) {
	checkTrxmShapes(side, t, b)
	n := t.Rows
	switch {
	case side == Right && tri == Upper && !transT:
		// B := B U. Process columns right-to-left so inputs stay live.
		for r := 0; r < b.Rows; r++ {
			row := b.Data[r*b.Stride : r*b.Stride+n]
			for j := n - 1; j >= 0; j-- {
				v := row[j] * t.Data[j*t.Stride+j]
				for k := 0; k < j; k++ {
					v += row[k] * t.Data[k*t.Stride+j]
				}
				row[j] = v
			}
		}
	case side == Left && tri == Lower && !transT:
		// B := L B. Process rows bottom-up.
		for i := n - 1; i >= 0; i-- {
			bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
			d := t.Data[i*t.Stride+i]
			for j := range bi {
				bi[j] *= d
			}
			for k := 0; k < i; k++ {
				lv := t.Data[i*t.Stride+k]
				if lv == 0 {
					continue
				}
				bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
				for j := range bi {
					bi[j] += lv * bk[j]
				}
			}
		}
	case side == Left && tri == Upper && !transT:
		// B := U B. Top-down.
		for i := 0; i < n; i++ {
			bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
			d := t.Data[i*t.Stride+i]
			for j := range bi {
				bi[j] *= d
			}
			for k := i + 1; k < n; k++ {
				uv := t.Data[i*t.Stride+k]
				if uv == 0 {
					continue
				}
				bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
				for j := range bi {
					bi[j] += uv * bk[j]
				}
			}
		}
	case side == Right && tri == Lower && !transT:
		// B := B L. Left-to-right columns.
		for r := 0; r < b.Rows; r++ {
			row := b.Data[r*b.Stride : r*b.Stride+n]
			for j := 0; j < n; j++ {
				v := row[j] * t.Data[j*t.Stride+j]
				for k := j + 1; k < n; k++ {
					v += row[k] * t.Data[k*t.Stride+j]
				}
				row[j] = v
			}
		}
	case side == Right && tri == Lower && transT:
		// B := B Lᵀ — Lᵀ is upper with (Lᵀ)[k][j] = L[j][k];
		// right-to-left columns.
		for r := 0; r < b.Rows; r++ {
			row := b.Data[r*b.Stride : r*b.Stride+n]
			for j := n - 1; j >= 0; j-- {
				v := row[j] * t.Data[j*t.Stride+j]
				for k := 0; k < j; k++ {
					v += row[k] * t.Data[j*t.Stride+k]
				}
				row[j] = v
			}
		}
	case side == Right && tri == Upper && transT:
		// B := B Uᵀ — Uᵀ is lower with (Uᵀ)[k][j] = U[j][k];
		// left-to-right columns.
		for r := 0; r < b.Rows; r++ {
			row := b.Data[r*b.Stride : r*b.Stride+n]
			for j := 0; j < n; j++ {
				v := row[j] * t.Data[j*t.Stride+j]
				for k := j + 1; k < n; k++ {
					v += row[k] * t.Data[j*t.Stride+k]
				}
				row[j] = v
			}
		}
	case side == Left && tri == Lower && transT:
		// B := Lᵀ B — Lᵀ upper: top-down rows.
		for i := 0; i < n; i++ {
			bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
			d := t.Data[i*t.Stride+i]
			for j := range bi {
				bi[j] *= d
			}
			for k := i + 1; k < n; k++ {
				lv := t.Data[k*t.Stride+i] // (Lᵀ)[i][k]
				if lv == 0 {
					continue
				}
				bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
				for j := range bi {
					bi[j] += lv * bk[j]
				}
			}
		}
	case side == Left && tri == Upper && transT:
		// B := Uᵀ B — Uᵀ lower: bottom-up rows.
		for i := n - 1; i >= 0; i-- {
			bi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
			d := t.Data[i*t.Stride+i]
			for j := range bi {
				bi[j] *= d
			}
			for k := 0; k < i; k++ {
				uv := t.Data[k*t.Stride+i] // (Uᵀ)[i][k]
				if uv == 0 {
					continue
				}
				bk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
				for j := range bi {
					bi[j] += uv * bk[j]
				}
			}
		}
	default:
		panic("lin: Trmm variant not implemented")
	}
}

// checkTrxmShapes validates the operand shapes shared by Trsm and Trmm:
// square T and a conforming B on the chosen side.
func checkTrxmShapes(side Side, t, b *Matrix) {
	if t.Rows != t.Cols {
		panic(ErrShape)
	}
	if side == Right && b.Cols != t.Rows || side == Left && b.Rows != t.Rows {
		panic(ErrShape)
	}
}

// checkTrsm is Trsm's full validation: shapes, a nonsingular diagonal,
// and an implemented variant (the transposed solves exist for Lower
// only). Shared with TrsmParallel, whose pooled serial calls must be
// guaranteed panic-free — a panic on a pool worker cannot be recovered
// by the caller.
func checkTrsm(side Side, tri Triangle, transT bool, t, b *Matrix) {
	checkTrxmShapes(side, t, b)
	for i := 0; i < t.Rows; i++ {
		if t.Data[i*t.Stride+i] == 0 {
			panic(ErrSingular)
		}
	}
	if tri == Upper && transT {
		panic("lin: Trsm variant not implemented")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
