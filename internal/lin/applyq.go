package lin

//lint:allow floatcompare exact zero tests are structural fast paths and bit-identity is the kernel contract, not data tolerance checks

// Implicit application of the Householder Q factor. Forming Q explicitly
// costs 2mn² flops and m×n storage; applying it to a k-column block costs
// only ~4mnk, which is what solvers want for k ≪ n.

// ApplyQT overwrites B (m×k) with Qᵀ·B, applying the stored reflectors
// forward: H_{n-1}···H_0·B.
func (f *QRFactors) ApplyQT(b *Matrix) error {
	m, n := f.V.Rows, f.V.Cols
	if b.Rows != m {
		return ErrShape
	}
	for j := 0; j < n; j++ {
		f.applyReflector(j, b)
	}
	return nil
}

// ApplyQ overwrites B (m×k) with Q·B, applying the reflectors in reverse:
// H_0···H_{n-1}·B.
func (f *QRFactors) ApplyQ(b *Matrix) error {
	m, n := f.V.Rows, f.V.Cols
	if b.Rows != m {
		return ErrShape
	}
	for j := n - 1; j >= 0; j-- {
		f.applyReflector(j, b)
	}
	return nil
}

// applyReflector applies H_j = I − τ_j·v_j·v_jᵀ to B in place.
// (Householder reflectors are symmetric, so H = Hᵀ.)
func (f *QRFactors) applyReflector(j int, b *Matrix) {
	tau := f.Tau[j]
	if tau == 0 {
		return
	}
	m := f.V.Rows
	for col := 0; col < b.Cols; col++ {
		var dot float64
		for i := j; i < m; i++ {
			dot += f.V.Data[i*f.V.Stride+j] * b.Data[i*b.Stride+col]
		}
		t := tau * dot
		for i := j; i < m; i++ {
			b.Data[i*b.Stride+col] -= t * f.V.Data[i*f.V.Stride+j]
		}
	}
}

// LeastSquares solves min ‖A·x − b‖₂ from the factored form: it applies
// Qᵀ to a copy of b and back-substitutes against R. b has length m; the
// solution has length n.
func (f *QRFactors) LeastSquares(b []float64) ([]float64, error) {
	m, n := f.V.Rows, f.V.Cols
	if len(b) != m {
		return nil, ErrShape
	}
	rhs := FromSlice(m, 1, append([]float64(nil), b...))
	if err := f.ApplyQT(rhs); err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		s := rhs.At(j, 0)
		for k := j + 1; k < n; k++ {
			s -= f.R.At(j, k) * x[k]
		}
		d := f.R.At(j, j)
		if d == 0 {
			return nil, ErrSingular
		}
		x[j] = s / d
	}
	return x, nil
}
