package lin

//lint:allow floatcompare exact zero tests are structural fast paths and bit-identity is the kernel contract, not data tolerance checks

import "math"

// Norms and error metrics used by the correctness tests and the accuracy
// experiments (orthogonality loss ‖QᵀQ−I‖ and residual ‖A−QR‖ as
// functions of κ(A), per the paper's §I stability discussion).

// Eps is float64 machine epsilon (2⁻⁵²), the ε of every stability bound
// in this repository: the §I criterion κ ≲ ε^{-1/2}, Fukaya et al.'s
// shift s = 11(mn+n(n+1))·ε·‖A‖², and the planner's orthogonality gate
// all share this one constant so they can never desynchronize.
const Eps = 2.220446049250313e-16

// FrobeniusNorm returns ‖M‖_F.
func FrobeniusNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, v := range row {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// MaxAbs returns max |m_ij|.
func MaxAbs(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, v := range row {
			if a := math.Abs(v); a > s {
				s = a
			}
		}
	}
	return s
}

// OrthogonalityError returns ‖QᵀQ − I‖_F, the forward-error metric the
// CholeskyQR2 literature uses (Θ(κ²ε) for one CholeskyQR pass, O(ε) after
// the second pass when κ(A) ≲ ε^{-1/2}).
func OrthogonalityError(q *Matrix) float64 {
	g := SyrkNew(q)
	for i := 0; i < g.Rows; i++ {
		g.Data[i*g.Stride+i] -= 1
	}
	return FrobeniusNorm(g)
}

// ResidualNorm returns ‖A − Q·R‖_F / ‖A‖_F, the backward-error metric
// (CholeskyQR is backward stable, so this stays O(ε) even when
// orthogonality degrades).
func ResidualNorm(a, q, r *Matrix) float64 {
	qr := MatMul(q, r)
	qr.Sub(a)
	na := FrobeniusNorm(a)
	if na == 0 {
		return FrobeniusNorm(qr)
	}
	return FrobeniusNorm(qr) / na
}

// TwoNormCond estimates the 2-norm condition number κ₂(A) = σ_max/σ_min
// by power iteration on AᵀA and inverse iteration via the Cholesky
// factor. Adequate for validating the conditioned-matrix generator; not
// a general-purpose SVD.
func TwoNormCond(a *Matrix) float64 { return EstimateCond(a, 200) }

// EstimateCond is the cheap condition-number estimator behind
// TwoNormCond, with a caller-chosen iteration count (the planner uses
// ~50 iterations: one n×n Gram SYRK plus O(iters·n²) matvec work, cheap
// next to any factorization of the same matrix). The Gram route can
// only resolve κ ≲ ε^{-1/2} — beyond that its Cholesky factor fails —
// so when it saturates the estimator falls back to a Householder QR of
// A (backward stable, 2mn² flops, paid only on the ill-conditioned
// path) and inverse-iterates against R, resolving κ up to ~1/ε. +Inf
// therefore means genuinely rank-deficient, not merely "worse than
// 1e8". Power iteration converges from below, so the estimate is a
// (usually tight) lower bound on κ₂(A).
func EstimateCond(a *Matrix, iters int) float64 {
	if iters < 1 {
		iters = 1
	}
	g := SyrkNew(a) // AᵀA, spectrum = squared singular values
	n := g.Rows
	if n == 0 {
		return 0
	}
	smax := math.Sqrt(powerIterate(g, iters))
	// σ_min via power iteration on (AᵀA)⁻¹ using the Cholesky factor.
	l, err := Cholesky(g)
	if err != nil {
		return qrEstimateCond(a, iters, smax)
	}
	// (AᵀA)⁻¹ x = L⁻ᵀ L⁻¹ x.
	x := onesVector(n)
	var lam float64
	for it := 0; it < iters; it++ {
		Trsm(Left, Lower, false, l, x)
		Trsm(Left, Lower, true, l, x)
		lam = FrobeniusNorm(x)
		if lam == 0 {
			return math.Inf(1)
		}
		x.Scale(1 / lam)
	}
	smin := math.Sqrt(1 / lam)
	return smax / smin
}

// qrEstimateCond resolves condition numbers beyond the Gram route's
// ~ε^{-1/2} ceiling: a Householder QR of A shares A's singular values
// through R, and inverse iteration on (RᵀR)⁻¹ needs only triangular
// solves — no Cholesky of the squared spectrum. smax is the already
// converged largest singular value from the Gram power iteration
// (accurate regardless of κ). Returns +Inf only for a numerically
// rank-deficient R.
func qrEstimateCond(a *Matrix, iters int, smax float64) float64 {
	f, err := HouseholderQR(a)
	if err != nil {
		return math.Inf(1)
	}
	// Work with L = Rᵀ (same singular values) so the solves use the
	// implemented Lower-triangular Trsm variants, exactly like the
	// Cholesky-based path above.
	l := f.R.T()
	n := l.Rows
	for i := 0; i < n; i++ {
		if l.At(i, i) == 0 {
			return math.Inf(1)
		}
	}
	x := onesVector(n)
	var lam float64
	for it := 0; it < iters; it++ {
		// (RᵀR)⁻¹ x = (L Lᵀ)⁻¹ x = L⁻ᵀ (L⁻¹ x).
		Trsm(Left, Lower, false, l, x)
		Trsm(Left, Lower, true, l, x)
		lam = FrobeniusNorm(x)
		if lam == 0 || math.IsInf(lam, 0) || math.IsNaN(lam) {
			return math.Inf(1)
		}
		x.Scale(1 / lam)
	}
	smin := math.Sqrt(1 / lam)
	if smin == 0 {
		return math.Inf(1)
	}
	return smax / smin
}

func powerIterate(g *Matrix, iters int) float64 {
	n := g.Rows
	x := onesVector(n)
	y := NewMatrix(n, 1)
	var lam float64
	for it := 0; it < iters; it++ {
		Gemm(false, false, 1, g, x, 0, y)
		lam = FrobeniusNorm(y)
		if lam == 0 {
			return 0
		}
		y.Scale(1 / lam)
		x, y = y, x
	}
	return lam
}

func onesVector(n int) *Matrix {
	x := NewMatrix(n, 1)
	for i := range x.Data {
		x.Data[i] = 1
	}
	x.Scale(1 / math.Sqrt(float64(n)))
	return x
}
