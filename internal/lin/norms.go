package lin

import "math"

// Norms and error metrics used by the correctness tests and the accuracy
// experiments (orthogonality loss ‖QᵀQ−I‖ and residual ‖A−QR‖ as
// functions of κ(A), per the paper's §I stability discussion).

// FrobeniusNorm returns ‖M‖_F.
func FrobeniusNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, v := range row {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// MaxAbs returns max |m_ij|.
func MaxAbs(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, v := range row {
			if a := math.Abs(v); a > s {
				s = a
			}
		}
	}
	return s
}

// OrthogonalityError returns ‖QᵀQ − I‖_F, the forward-error metric the
// CholeskyQR2 literature uses (Θ(κ²ε) for one CholeskyQR pass, O(ε) after
// the second pass when κ(A) ≲ ε^{-1/2}).
func OrthogonalityError(q *Matrix) float64 {
	g := SyrkNew(q)
	for i := 0; i < g.Rows; i++ {
		g.Data[i*g.Stride+i] -= 1
	}
	return FrobeniusNorm(g)
}

// ResidualNorm returns ‖A − Q·R‖_F / ‖A‖_F, the backward-error metric
// (CholeskyQR is backward stable, so this stays O(ε) even when
// orthogonality degrades).
func ResidualNorm(a, q, r *Matrix) float64 {
	qr := MatMul(q, r)
	qr.Sub(a)
	na := FrobeniusNorm(a)
	if na == 0 {
		return FrobeniusNorm(qr)
	}
	return FrobeniusNorm(qr) / na
}

// TwoNormCond estimates the 2-norm condition number κ₂(A) = σ_max/σ_min
// by power iteration on AᵀA and inverse iteration via the R factor of a
// Householder QR. Adequate for validating the conditioned-matrix
// generator; not a general-purpose SVD.
func TwoNormCond(a *Matrix) float64 {
	g := SyrkNew(a) // AᵀA, spectrum = squared singular values
	n := g.Rows
	if n == 0 {
		return 0
	}
	smax := math.Sqrt(powerIterate(g, 200))
	// σ_min via power iteration on (AᵀA)⁻¹ using the Cholesky factor.
	l, err := Cholesky(g)
	if err != nil {
		return math.Inf(1)
	}
	// (AᵀA)⁻¹ x = L⁻ᵀ L⁻¹ x.
	x := onesVector(n)
	var lam float64
	for it := 0; it < 200; it++ {
		Trsm(Left, Lower, false, l, x)
		Trsm(Left, Lower, true, l, x)
		lam = FrobeniusNorm(x)
		if lam == 0 {
			return math.Inf(1)
		}
		x.Scale(1 / lam)
	}
	smin := math.Sqrt(1 / lam)
	return smax / smin
}

func powerIterate(g *Matrix, iters int) float64 {
	n := g.Rows
	x := onesVector(n)
	y := NewMatrix(n, 1)
	var lam float64
	for it := 0; it < iters; it++ {
		Gemm(false, false, 1, g, x, 0, y)
		lam = FrobeniusNorm(y)
		if lam == 0 {
			return 0
		}
		y.Scale(1 / lam)
		x, y = y, x
	}
	return lam
}

func onesVector(n int) *Matrix {
	x := NewMatrix(n, 1)
	for i := range x.Data {
		x.Data[i] = 1
	}
	x.Scale(1 / math.Sqrt(float64(n)))
	return x
}
