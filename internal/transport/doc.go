// Package transport defines the pluggable communication API every
// distributed algorithm in this repository is written against: a Comm
// interface of MPI-flavored point-to-point and collective operations
// plus a Proc handle for rank identity and cost accounting.
//
// Two backends implement it:
//
//   - internal/simmpi: the in-process simulated runtime. P ranks are
//     goroutines in one process; communication charges the paper's
//     exact α-β-γ butterfly-schedule formulas on a virtual clock, so a
//     run doubles as a cost measurement. This is the default backend
//     and the one the validated cost model is tested against.
//   - internal/transport/tcpnet: the real inter-process backend.
//     P ranks are OS processes connected by a full mesh of TCP
//     connections (a coordinator that assigns ranks plus cacqrd
//     worker processes); counters report actual messages and bytes
//     moved, and every blocking operation honors a job deadline.
//
// The interface is deliberately small — Send/Recv/SendRecv, the
// collectives of the paper's §II-B (Barrier, Bcast, Reduce, Allreduce,
// Allgather, Transpose), communicator construction (Split, Subgroup),
// and cost accounting (Compute, ChargeComm, Counters) — exactly what
// CQR2/ShiftedCQR3, TSQR, PGEQRF, MM3D and CFR3D consume. The
// conformance suite in internal/transport/conformancetest pins the
// semantics both backends must share.
package transport
