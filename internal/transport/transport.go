package transport

// Comm is an ordered group of ranks, analogous to an MPI communicator.
// Point-to-point operations address peers by their index within the
// communicator; collectives run over all members and must be called by
// every member. A Comm value is one rank's handle onto the logical
// communicator; it is not safe for concurrent use by multiple
// goroutines of the same rank.
type Comm interface {
	// Size returns the number of members.
	Size() int
	// Index returns this rank's position within the communicator.
	Index() int
	// GlobalRank returns the global rank of member i.
	GlobalRank(i int) int
	// Proc returns the owning process handle.
	Proc() Proc

	// Split partitions the communicator MPI_Comm_split-style: members
	// passing the same color form a new communicator ordered by key
	// (ties broken by parent index). Every member must call it.
	Split(color, key int) (Comm, error)
	// Subgroup creates a communicator from an explicit ordered list of
	// parent indices, without communication. Every parent member must
	// call it with an identical list; non-members receive nil.
	Subgroup(indices []int) Comm

	// Send transfers data to communicator member dst with the given
	// tag. Sends are buffered: they enqueue without waiting for the
	// matching Recv.
	Send(dst, tag int, data []float64) error
	// Recv blocks until a message from member src with the given tag
	// arrives and returns its payload.
	Recv(src, tag int) ([]float64, error)
	// SendRecv exchanges messages with a partner (both directions,
	// same tag) without deadlocking.
	SendRecv(partner, tag int, data []float64) ([]float64, error)

	// Barrier blocks until every member has entered.
	Barrier() error
	// Bcast distributes root's data to every member and returns it on
	// all of them. Non-root callers pass nil.
	Bcast(root int, data []float64) ([]float64, error)
	// Reduce sums the members' equal-length vectors onto root: the
	// reduction on root, nil elsewhere.
	Reduce(root int, data []float64) ([]float64, error)
	// Allreduce sums the members' equal-length vectors and returns the
	// result on every member.
	Allreduce(data []float64) ([]float64, error)
	// Allgather concatenates the members' (possibly unequal) blocks in
	// member order and returns the concatenation on every member.
	Allgather(data []float64) ([]float64, error)
	// Transpose swaps payloads with a partner member (the paper's
	// pairwise Transpose collective). partner == self returns the
	// input.
	Transpose(partner int, data []float64) ([]float64, error)
}

// Proc is the handle a rank's body uses for identity and cost
// accounting. It is not safe for concurrent use by multiple goroutines.
type Proc interface {
	// Rank returns this process's global rank in [0, P).
	Rank() int
	// Size returns the total number of ranks in the run.
	Size() int
	// World returns the communicator containing every rank.
	World() Comm
	// Compute charges flops floating point operations — how algorithms
	// account for local BLAS-style work. Backends may return an error
	// to abort the rank (injected failures, cancellation).
	Compute(flops int64) error
	// ChargeComm charges communication cost: alphaUnits message
	// latencies and words 8-byte words moved. Collectives use it so
	// the Msgs/Words counters report per-processor α and β cost units.
	ChargeComm(alphaUnits, words int64)
	// SetPhase labels subsequent cost charges with a phase name and
	// returns the previous label. Backends that do not track phases
	// may ignore the label.
	SetPhase(label string) (prev string)
	// Counters returns a snapshot of the rank's accumulated costs.
	Counters() Counters
}

// Counters are one rank's accumulated cost measures. For the simulated
// backend, Msgs/Words/Flops are the paper's α-β-γ cost units and Time
// is virtual seconds; for real backends they count actual messages,
// 8-byte words and wall-clock seconds, and Bytes reports raw bytes on
// the wire (framing included; 0 for simulated runs, which move no real
// bytes).
type Counters struct {
	Msgs  int64
	Words int64
	Flops int64
	Bytes int64
	Time  float64
}

// Stats summarizes a completed distributed run in backend-independent
// form. Every backend's runner returns one.
type Stats struct {
	// Time is the critical-path time: the maximum rank clock (virtual
	// seconds for simmpi, wall seconds for real backends).
	Time float64
	// MaxMsgs, MaxWords, MaxFlops, MaxBytes are per-rank maxima — the
	// per-processor cost measures used throughout the paper.
	MaxMsgs  int64
	MaxWords int64
	MaxFlops int64
	MaxBytes int64
	// TotalMsgs, TotalWords, TotalFlops, TotalBytes aggregate over all
	// ranks.
	TotalMsgs  int64
	TotalWords int64
	TotalFlops int64
	TotalBytes int64
	// PerRank holds the final counters of every rank.
	PerRank []Counters
	// Phases holds per-phase per-rank maxima for charges made under
	// Proc.SetPhase labels (empty when no phases were set or the
	// backend does not track them).
	Phases map[string]Counters
}

// Accumulate folds one rank's counters into the summary maxima and
// totals (PerRank is the caller's to fill).
func (s *Stats) Accumulate(c Counters) {
	if c.Time > s.Time {
		s.Time = c.Time
	}
	if c.Msgs > s.MaxMsgs {
		s.MaxMsgs = c.Msgs
	}
	if c.Words > s.MaxWords {
		s.MaxWords = c.Words
	}
	if c.Flops > s.MaxFlops {
		s.MaxFlops = c.Flops
	}
	if c.Bytes > s.MaxBytes {
		s.MaxBytes = c.Bytes
	}
	s.TotalMsgs += c.Msgs
	s.TotalWords += c.Words
	s.TotalFlops += c.Flops
	s.TotalBytes += c.Bytes
}
