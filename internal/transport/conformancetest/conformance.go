// Package conformancetest is the shared contract test for transport
// backends: one suite of communicator semantics — point-to-point
// ordering, tag matching, every collective, Split/Subgroup derivation,
// deadline behavior — run verbatim against the simulated runtime and
// the TCP mesh. A backend that passes here is interchangeable under
// every distributed algorithm in the repository.
package conformancetest

//lint:allow floatcompare conformance asserts payloads arrive bit-identical across transports

import (
	"fmt"
	"math"
	"testing"
	"time"

	"cacqr/internal/transport"
)

// Runner executes body on np ranks over the backend under test and
// returns the run's statistics. timeout bounds the whole run (the
// deadline subtest relies on it firing).
type Runner func(np int, timeout time.Duration, body func(p transport.Proc) error) (*transport.Stats, error)

// Run exercises the full Comm/Proc contract against the backend.
func Run(t *testing.T, run Runner) {
	t.Helper()

	ok := func(t *testing.T, np int, body func(p transport.Proc) error) *transport.Stats {
		t.Helper()
		st, err := run(np, 20*time.Second, body)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return st
	}

	t.Run("SendRecvFIFO", func(t *testing.T) {
		// Messages with the same (src, tag) arrive in send order.
		ok(t, 2, func(p transport.Proc) error {
			w := p.World()
			if p.Rank() == 0 {
				for i := 0; i < 5; i++ {
					if err := w.Send(1, 7, []float64{float64(i)}); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < 5; i++ {
				got, err := w.Recv(0, 7)
				if err != nil {
					return err
				}
				if len(got) != 1 || got[0] != float64(i) {
					return fmt.Errorf("message %d: got %v", i, got)
				}
			}
			return nil
		})
	})

	t.Run("TagMatching", func(t *testing.T) {
		// A recv on one tag must not consume a pending message on
		// another, regardless of arrival order.
		ok(t, 2, func(p transport.Proc) error {
			w := p.World()
			if p.Rank() == 0 {
				if err := w.Send(1, 1, []float64{1}); err != nil {
					return err
				}
				return w.Send(1, 2, []float64{2})
			}
			got2, err := w.Recv(0, 2)
			if err != nil {
				return err
			}
			got1, err := w.Recv(0, 1)
			if err != nil {
				return err
			}
			if got1[0] != 1 || got2[0] != 2 {
				return fmt.Errorf("tag mismatch: tag1=%v tag2=%v", got1, got2)
			}
			return nil
		})
	})

	t.Run("SendToSelf", func(t *testing.T) {
		ok(t, 2, func(p transport.Proc) error {
			w := p.World()
			me := w.Index()
			if err := w.Send(me, 3, []float64{float64(me) + 0.5}); err != nil {
				return err
			}
			got, err := w.Recv(me, 3)
			if err != nil {
				return err
			}
			if got[0] != float64(me)+0.5 {
				return fmt.Errorf("self-send: got %v", got)
			}
			return nil
		})
	})

	t.Run("SendRecvExchange", func(t *testing.T) {
		// Pairwise full-duplex exchange must not deadlock and must
		// deliver both directions.
		ok(t, 4, func(p transport.Proc) error {
			w := p.World()
			partner := w.Index() ^ 1
			got, err := w.SendRecv(partner, 9, []float64{float64(w.Index())})
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != float64(partner) {
				return fmt.Errorf("exchange with %d: got %v", partner, got)
			}
			return nil
		})
	})

	t.Run("Barrier", func(t *testing.T) {
		ok(t, 3, func(p transport.Proc) error {
			for i := 0; i < 3; i++ {
				if err := p.World().Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	})

	t.Run("Bcast", func(t *testing.T) {
		for _, root := range []int{0, 2} {
			root := root
			t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
				ok(t, 3, func(p transport.Proc) error {
					w := p.World()
					var in []float64
					if w.Index() == root {
						in = []float64{3, 1, 4, 1, 5}
					}
					got, err := w.Bcast(root, in)
					if err != nil {
						return err
					}
					want := []float64{3, 1, 4, 1, 5}
					return expectVec(fmt.Sprintf("rank %d bcast", w.Index()), got, want)
				})
			})
		}
	})

	t.Run("Reduce", func(t *testing.T) {
		ok(t, 4, func(p transport.Proc) error {
			w := p.World()
			in := []float64{float64(w.Index()), 1}
			got, err := w.Reduce(1, in)
			if err != nil {
				return err
			}
			if w.Index() == 1 {
				return expectVec("reduce", got, []float64{0 + 1 + 2 + 3, 4})
			}
			if got != nil {
				return fmt.Errorf("non-root reduce returned %v", got)
			}
			return nil
		})
	})

	t.Run("Allreduce", func(t *testing.T) {
		ok(t, 4, func(p transport.Proc) error {
			w := p.World()
			got, err := w.Allreduce([]float64{1, float64(w.Index())})
			if err != nil {
				return err
			}
			return expectVec("allreduce", got, []float64{4, 6})
		})
	})

	t.Run("AllgatherUnequal", func(t *testing.T) {
		// Rank i contributes i+1 elements; the concatenation is in
		// member order on every rank.
		ok(t, 3, func(p transport.Proc) error {
			w := p.World()
			in := make([]float64, w.Index()+1)
			for j := range in {
				in[j] = float64(10*w.Index() + j)
			}
			got, err := w.Allgather(in)
			if err != nil {
				return err
			}
			want := []float64{0, 10, 11, 20, 21, 22}
			return expectVec("allgather", got, want)
		})
	})

	t.Run("Transpose", func(t *testing.T) {
		ok(t, 4, func(p transport.Proc) error {
			w := p.World()
			partner := (w.Index() + 2) % 4
			got, err := w.Transpose(partner, []float64{float64(w.Index() * 100)})
			if err != nil {
				return err
			}
			return expectVec("transpose", got, []float64{float64(partner * 100)})
		})
	})

	t.Run("TransposeSelf", func(t *testing.T) {
		ok(t, 2, func(p transport.Proc) error {
			got, err := p.World().Transpose(p.World().Index(), []float64{42})
			if err != nil {
				return err
			}
			return expectVec("self-transpose", got, []float64{42})
		})
	})

	t.Run("SplitColorsAndKeys", func(t *testing.T) {
		// 6 ranks → two colors (evens, odds); keys reverse the order
		// within each group.
		ok(t, 6, func(p transport.Proc) error {
			w := p.World()
			color := w.Index() % 2
			key := -w.Index() // reverse order
			sub, err := w.Split(color, key)
			if err != nil {
				return err
			}
			if sub.Size() != 3 {
				return fmt.Errorf("split size %d, want 3", sub.Size())
			}
			// Highest parent index sorts first under the negated key.
			wantGlobal := []int{4 - 2*0, 2, 0}
			if color == 1 {
				wantGlobal = []int{5, 3, 1}
			}
			for i, g := range wantGlobal {
				if sub.GlobalRank(i) != g {
					return fmt.Errorf("color %d member %d: global %d, want %d", color, i, sub.GlobalRank(i), g)
				}
			}
			// The child communicator must route data independently of
			// the parent: an allreduce over the group sums group
			// members only.
			got, err := sub.Allreduce([]float64{float64(w.Index())})
			if err != nil {
				return err
			}
			want := []float64{0 + 2 + 4}
			if color == 1 {
				want = []float64{1 + 3 + 5}
			}
			return expectVec("split allreduce", got, want)
		})
	})

	t.Run("SubgroupMembership", func(t *testing.T) {
		ok(t, 4, func(p transport.Proc) error {
			w := p.World()
			sub := w.Subgroup([]int{3, 1})
			switch w.Index() {
			case 1, 3:
				if sub == nil {
					return fmt.Errorf("rank %d: member got nil subgroup", w.Index())
				}
				if sub.Size() != 2 {
					return fmt.Errorf("subgroup size %d", sub.Size())
				}
				wantIdx := 1
				if w.Index() == 3 {
					wantIdx = 0
				}
				if sub.Index() != wantIdx {
					return fmt.Errorf("rank %d: subgroup index %d, want %d", w.Index(), sub.Index(), wantIdx)
				}
				got, err := sub.Allgather([]float64{float64(w.Index())})
				if err != nil {
					return err
				}
				return expectVec("subgroup allgather", got, []float64{3, 1})
			default:
				if sub != nil {
					return fmt.Errorf("rank %d: non-member got non-nil subgroup", w.Index())
				}
				return nil
			}
		})
	})

	t.Run("NestedSplit", func(t *testing.T) {
		// Split the world, then split the child again; leaf groups of
		// one rank must still run collectives.
		ok(t, 4, func(p transport.Proc) error {
			w := p.World()
			half, err := w.Split(w.Index()/2, w.Index())
			if err != nil {
				return err
			}
			leaf, err := half.Split(half.Index(), 0)
			if err != nil {
				return err
			}
			if leaf.Size() != 1 {
				return fmt.Errorf("leaf size %d", leaf.Size())
			}
			got, err := leaf.Allreduce([]float64{float64(w.Index())})
			if err != nil {
				return err
			}
			return expectVec("leaf allreduce", got, []float64{float64(w.Index())})
		})
	})

	t.Run("CollectiveSequence", func(t *testing.T) {
		// Back-to-back collectives on one communicator must not bleed
		// into each other.
		ok(t, 3, func(p transport.Proc) error {
			w := p.World()
			for round := 0; round < 3; round++ {
				got, err := w.Allreduce([]float64{float64(round)})
				if err != nil {
					return err
				}
				if got[0] != float64(3*round) {
					return fmt.Errorf("round %d: got %v", round, got)
				}
				gathered, err := w.Allgather([]float64{float64(round*10 + w.Index())})
				if err != nil {
					return err
				}
				want := []float64{float64(round * 10), float64(round*10 + 1), float64(round*10 + 2)}
				if err := expectVec("gather round", gathered, want); err != nil {
					return err
				}
			}
			return nil
		})
	})

	t.Run("StatsPopulated", func(t *testing.T) {
		st := ok(t, 2, func(p transport.Proc) error {
			if err := p.Compute(1000); err != nil {
				return err
			}
			_, err := p.World().Allreduce([]float64{1})
			return err
		})
		if st.MaxFlops < 1000 {
			t.Errorf("MaxFlops = %d, want >= 1000", st.MaxFlops)
		}
		if st.TotalMsgs == 0 || st.TotalWords == 0 {
			t.Errorf("traffic counters empty: msgs=%d words=%d", st.TotalMsgs, st.TotalWords)
		}
		if len(st.PerRank) != 2 {
			t.Errorf("PerRank has %d entries, want 2", len(st.PerRank))
		}
	})

	t.Run("ErrorPropagates", func(t *testing.T) {
		// One rank failing must abort the run with its error, even
		// though another rank is blocked in a recv.
		_, err := run(2, 20*time.Second, func(p transport.Proc) error {
			if p.Rank() == 1 {
				return fmt.Errorf("deliberate rank failure")
			}
			_, rerr := p.World().Recv(1, 5)
			return rerr
		})
		if err == nil {
			t.Fatalf("run with failing rank returned nil error")
		}
	})

	t.Run("DeadlineUnblocksRecv", func(t *testing.T) {
		// A recv that can never match must return once the run
		// deadline passes instead of hanging.
		start := time.Now()
		_, err := run(2, 500*time.Millisecond, func(p transport.Proc) error {
			if p.Rank() == 1 {
				_, rerr := p.World().Recv(0, 99)
				return rerr
			}
			return nil
		})
		if err == nil {
			t.Fatalf("stuck recv did not error out")
		}
		if elapsed := time.Since(start); elapsed > 15*time.Second {
			t.Fatalf("deadline took %v to fire", elapsed)
		}
	})
}

func expectVec(what string, got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: got %v, want %v", what, got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			return fmt.Errorf("%s: got %v, want %v", what, got, want)
		}
	}
	return nil
}
