package transport

import "cacqr/internal/obs"

// Traced wraps a rank's Proc so every collective on every communicator
// derived from it records a kind-"collective" span under sp — carrying
// payload bytes and peer count, the α and β terms of one Table V line —
// and so kernel code can find sp via obs.StagesOf to hang stage spans
// on. A nil span returns p unchanged, which keeps both backends
// entirely untouched on the untraced path: tracing is a decorator at
// the run boundary, not a property of a backend.
//
// Point-to-point Send/Recv are forwarded unwrapped: fine-grained
// message spans would dominate the tree (CFR3D's recursion sends
// thousands), and their cost is already visible through the enclosing
// stage spans and the rank's Counters.
func Traced(p Proc, sp *obs.Span) Proc {
	//lint:ignore obssafety the untraced fast path must return the undecorated Proc itself, not a wrapper over a nil span
	if p == nil || sp == nil {
		return p
	}
	return &tracedProc{Proc: p, sp: sp}
}

type tracedProc struct {
	Proc
	sp *obs.Span
}

// TraceSpan exposes the rank span through obs.SpanCarrier.
func (t *tracedProc) TraceSpan() *obs.Span { return t.sp }

func (t *tracedProc) World() Comm {
	return &tracedComm{Comm: t.Proc.World(), proc: t}
}

type tracedComm struct {
	Comm
	proc *tracedProc
}

// Proc returns the traced handle, so grid/kernel code reached through
// comm.Proc() sees the span too.
func (c *tracedComm) Proc() Proc { return c.proc }

// collective opens one collective span; done closes it. words is the
// payload length in float64 words (8 bytes each).
func (c *tracedComm) collective(op string, words int) func() {
	sp := c.proc.sp.Collective(op)
	sp.SetInt("bytes", int64(words)*8)
	sp.SetInt("peers", int64(c.Comm.Size()))
	return sp.End
}

func (c *tracedComm) Barrier() error {
	done := c.collective("barrier", 0)
	defer done()
	return c.Comm.Barrier()
}

func (c *tracedComm) Bcast(root int, data []float64) ([]float64, error) {
	done := c.collective("bcast", len(data))
	defer done()
	return c.Comm.Bcast(root, data)
}

func (c *tracedComm) Reduce(root int, data []float64) ([]float64, error) {
	done := c.collective("reduce", len(data))
	defer done()
	return c.Comm.Reduce(root, data)
}

func (c *tracedComm) Allreduce(data []float64) ([]float64, error) {
	done := c.collective("allreduce", len(data))
	defer done()
	return c.Comm.Allreduce(data)
}

func (c *tracedComm) Allgather(data []float64) ([]float64, error) {
	done := c.collective("allgather", len(data))
	defer done()
	return c.Comm.Allgather(data)
}

func (c *tracedComm) Transpose(partner int, data []float64) ([]float64, error) {
	done := c.collective("transpose", len(data))
	defer done()
	return c.Comm.Transpose(partner, data)
}

func (c *tracedComm) Split(color, key int) (Comm, error) {
	sub, err := c.Comm.Split(color, key)
	if err != nil || sub == nil {
		return sub, err
	}
	return &tracedComm{Comm: sub, proc: c.proc}, nil
}

func (c *tracedComm) Subgroup(indices []int) Comm {
	sub := c.Comm.Subgroup(indices)
	if sub == nil {
		return nil
	}
	return &tracedComm{Comm: sub, proc: c.proc}
}
