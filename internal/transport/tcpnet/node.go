package tcpnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cacqr/internal/transport"
)

// ErrDeadline is returned by blocking operations once the job deadline
// has passed.
var ErrDeadline = errors.New("tcpnet: job deadline exceeded")

// meshMsg is one received data-plane message awaiting a matching Recv.
type meshMsg struct {
	commID uint64
	src    int // global rank of sender
	tag    int
	data   []float64
}

// node is one rank's end of the full mesh: the per-peer connections,
// the mailbox incoming frames demultiplex into, and the wire-byte
// counter. It is shared by the rank goroutine, the per-peer reader and
// writer goroutines, and whoever triggers failure (control-connection
// monitor, context watcher).
type node struct {
	rank     int
	np       int
	deadline time.Time // zero = none

	peers []*peerConn // indexed by rank; nil at self

	mu    sync.Mutex
	cond  *sync.Cond
	queue []meshMsg
	err   error // first failure; once set every operation returns it

	bytes    atomic.Int64 // raw bytes sent + received on mesh conns
	failOnce sync.Once
	writers  sync.WaitGroup
}

// peerConn is one mesh connection with an asynchronous writer, giving
// Send the buffered (enqueue-and-return) semantics the Comm contract
// requires even over a synchronous byte stream.
type peerConn struct {
	conn   net.Conn
	out    chan []byte
	failed atomic.Bool
}

// outboundDepth is the per-peer queue of encoded frames awaiting the
// writer. Enqueueing blocks when it is full — natural backpressure —
// and the writer's deadline guarantees the block is bounded.
const outboundDepth = 256

func newNode(rank, np int, deadline time.Time) *node {
	n := &node{rank: rank, np: np, deadline: deadline, peers: make([]*peerConn, np)}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// attach records a mesh connection to peer rank r. The reader and
// writer goroutines start in start(), once the whole mesh is wired —
// fail() may run concurrently with bootstrap (a peer dies while we are
// still dialing the rest), so peers mutate only under the mailbox lock.
func (n *node) attach(r int, conn net.Conn) {
	pc := &peerConn{conn: conn, out: make(chan []byte, outboundDepth)}
	n.mu.Lock()
	failed := n.err != nil
	n.peers[r] = pc
	n.mu.Unlock()
	if failed {
		pc.failed.Store(true)
		conn.Close()
	}
}

// start launches the reader and writer goroutines of every attached
// peer.
func (n *node) start() {
	n.mu.Lock()
	peers := append([]*peerConn(nil), n.peers...)
	n.mu.Unlock()
	for _, pc := range peers {
		if pc == nil {
			continue
		}
		n.writers.Add(1)
		go n.writeLoop(pc)
		go n.readLoop(pc)
	}
}

func (n *node) writeLoop(pc *peerConn) {
	defer n.writers.Done()
	for frame := range pc.out {
		if pc.failed.Load() {
			continue // drain so enqueuers never block on a dead peer
		}
		if !n.deadline.IsZero() {
			pc.conn.SetWriteDeadline(n.deadline)
		}
		wrote, err := pc.conn.Write(frame)
		n.bytes.Add(int64(wrote))
		if err != nil {
			pc.failed.Store(true)
			n.fail(fmt.Errorf("tcpnet: write to peer: %w", err))
		}
	}
}

func (n *node) readLoop(pc *peerConn) {
	for {
		msg, wire, err := readMeshFrame(pc.conn)
		if err != nil {
			// EOF (and its local mirror, reading a conn we closed
			// ourselves) means the peer finished and shut down its
			// mesh — benign, everything it sent was delivered first.
			// Anything else is a failed peer.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				n.fail(fmt.Errorf("tcpnet: read from peer: %w", err))
			}
			return
		}
		n.bytes.Add(wire)
		n.post(msg)
	}
}

// post delivers a message to the mailbox.
func (n *node) post(msg meshMsg) {
	n.mu.Lock()
	n.queue = append(n.queue, msg)
	n.cond.Broadcast()
	n.mu.Unlock()
}

// fail marks the node failed with err: all pending and future
// operations return it, and the mesh connections are closed to unblock
// in-flight reads and writes.
func (n *node) fail(err error) {
	n.failOnce.Do(func() {
		n.mu.Lock()
		n.err = err
		n.cond.Broadcast()
		peers := append([]*peerConn(nil), n.peers...)
		n.mu.Unlock()
		for _, pc := range peers {
			if pc != nil {
				pc.failed.Store(true)
				pc.conn.Close()
			}
		}
	})
}

// errNow reports the node failure, if any.
func (n *node) errNow() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// shutdown flushes every queued outbound frame, then closes the mesh
// connections. Called after the rank body returns: its final sends may
// still be queued, and peers mid-collective are waiting on them.
func (n *node) shutdown() {
	for _, pc := range n.peers {
		if pc != nil {
			close(pc.out)
		}
	}
	n.writers.Wait()
	for _, pc := range n.peers {
		if pc != nil {
			pc.conn.Close()
		}
	}
}

// send enqueues one message for global rank dst (buffered semantics; a
// send to self posts straight to the mailbox).
func (n *node) send(commID uint64, dst, tag int, data []float64) error {
	if err := n.errNow(); err != nil {
		return err
	}
	if dst == n.rank {
		payload := make([]float64, len(data))
		copy(payload, data)
		n.post(meshMsg{commID: commID, src: n.rank, tag: tag, data: payload})
		return nil
	}
	n.peers[dst].out <- encodeMeshFrame(commID, n.rank, tag, data)
	return nil
}

// recvMatch blocks until a message with the given communicator, global
// source rank and tag is available, honoring the job deadline.
func (n *node) recvMatch(commID uint64, src, tag int) ([]float64, error) {
	var timedOut atomic.Bool
	if !n.deadline.IsZero() {
		d := time.Until(n.deadline)
		if d <= 0 {
			return nil, ErrDeadline
		}
		t := time.AfterFunc(d, func() {
			timedOut.Store(true)
			n.cond.Broadcast()
		})
		defer t.Stop()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.err != nil {
			return nil, n.err
		}
		for i, m := range n.queue {
			if m.commID == commID && m.src == src && m.tag == tag {
				n.queue = append(n.queue[:i], n.queue[i+1:]...)
				return m.data, nil
			}
		}
		if timedOut.Load() {
			return nil, ErrDeadline
		}
		n.cond.Wait()
	}
}

// proc is the rank's transport.Proc. Msgs/Words/Flops are what the
// algorithm charged through the Comm (actual traffic for point-to-point
// and collective data movement), Bytes is measured wire traffic, Time
// is wall-clock seconds since the node came up.
type proc struct {
	n     *node
	world *comm
	start time.Time

	msgs, words, flops int64
	phase              string
	phases             map[string]transport.Counters
}

func newProc(n *node) *proc {
	p := &proc{n: n, start: time.Now()}
	ranks := make([]int, n.np)
	for i := range ranks {
		ranks[i] = i
	}
	p.world = &comm{p: p, id: worldCommID, ranks: ranks, index: n.rank}
	return p
}

func (p *proc) Rank() int             { return p.n.rank }
func (p *proc) Size() int             { return p.n.np }
func (p *proc) World() transport.Comm { return p.world }

// Compute counts local flops. It also surfaces node failure, so
// compute-bound loops notice a dead peer or a cancellation promptly.
func (p *proc) Compute(flops int64) error {
	if flops < 0 {
		panic("tcpnet: negative flop count")
	}
	if err := p.n.errNow(); err != nil {
		return err
	}
	p.flops += flops
	p.chargePhase(0, 0, flops)
	return nil
}

func (p *proc) ChargeComm(alphaUnits, words int64) {
	if alphaUnits < 0 || words < 0 {
		panic("tcpnet: negative communication charge")
	}
	p.msgs += alphaUnits
	p.words += words
	p.chargePhase(alphaUnits, words, 0)
}

func (p *proc) SetPhase(label string) (prev string) {
	prev = p.phase
	p.phase = label
	return prev
}

func (p *proc) chargePhase(msgs, words, flops int64) {
	if p.phase == "" {
		return
	}
	if p.phases == nil {
		p.phases = make(map[string]transport.Counters)
	}
	c := p.phases[p.phase]
	c.Msgs += msgs
	c.Words += words
	c.Flops += flops
	p.phases[p.phase] = c
}

func (p *proc) Counters() transport.Counters {
	return transport.Counters{
		Msgs:  p.msgs,
		Words: p.words,
		Flops: p.flops,
		Bytes: p.n.bytes.Load(),
		Time:  time.Since(p.start).Seconds(),
	}
}
