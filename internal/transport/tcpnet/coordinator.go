package tcpnet

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cacqr/internal/transport"
)

// Coordinator runs distributed jobs as rank 0 across a set of worker
// processes. The zero value plus Workers is ready to use; one
// Coordinator can run many jobs (serially or concurrently — each job
// gets its own listener and mesh).
type Coordinator struct {
	// Workers are the listen addresses of the worker processes; worker
	// i becomes rank i+1. Empty means single-process jobs (np = 1).
	Workers []string
	// Bind is the local address the coordinator listens on for mesh
	// connections back from the workers. Default "127.0.0.1:0"; set it
	// to an externally reachable address for cross-host workers.
	Bind string
	// Advertise overrides the address workers dial for rank 0 (when
	// the bind address is not reachable as-is, e.g. behind NAT).
	// Default: the bound listener's address.
	Advertise string
	// DialTimeout bounds worker dials and mesh formation when the
	// job context carries no deadline. Default 10s.
	DialTimeout time.Duration
}

// NP returns the number of ranks a job will run on.
func (c *Coordinator) NP() int { return 1 + len(c.Workers) }

// Run executes one distributed job: body runs as rank 0 in this
// process, and each worker runs its registered handler with
// payload(rank) as input. It returns the aggregated statistics of all
// ranks — counters measured, not modeled. ctx's deadline becomes the
// job deadline on every rank; cancellation aborts every rank promptly.
// payload may be nil when workers need no per-rank input.
func (c *Coordinator) Run(ctx context.Context, payload func(rank int) []byte, body func(p transport.Proc) error) (*transport.Stats, error) {
	np := c.NP()
	deadline, _ := ctx.Deadline()
	dialTimeout := c.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}

	jobID, err := newJobID()
	if err != nil {
		return nil, err
	}
	n := newNode(0, np, deadline)
	ctrls := make([]net.Conn, np) // ctrls[0] unused

	if np > 1 {
		bind := c.Bind
		if bind == "" {
			bind = "127.0.0.1:0"
		}
		ln, lerr := net.Listen("tcp", bind)
		if lerr != nil {
			return nil, fmt.Errorf("tcpnet: coordinator listen: %w", lerr)
		}
		defer ln.Close()
		advertise := c.Advertise
		if advertise == "" {
			advertise = ln.Addr().String()
		}
		addrs := append([]string{advertise}, c.Workers...)

		bucket := newMeshBucket()
		go acceptMesh(ln, jobID, bucket)
		defer bucket.drain()

		// Submit the job to every worker before forming the mesh:
		// workers dial rank 0 (and each other) only after they have
		// their header.
		hdrDeadline := int64(0)
		if !deadline.IsZero() {
			hdrDeadline = deadline.UnixNano()
		}
		for r := 1; r < np; r++ {
			conn, derr := net.DialTimeout("tcp", c.Workers[r-1], dialTimeout)
			if derr != nil {
				closeAll(ctrls)
				return nil, fmt.Errorf("tcpnet: dialing worker %s: %w", c.Workers[r-1], derr)
			}
			var blob []byte
			if payload != nil {
				blob = payload(r)
			}
			conn.SetWriteDeadline(time.Now().Add(dialTimeout))
			if _, werr := conn.Write([]byte{preambleCtrl}); werr == nil {
				err = writeJSONFrame(conn, jobHeader{
					JobID: jobID, NP: np, Rank: r, Addrs: addrs,
					Deadline: hdrDeadline, Payload: blob,
				})
			} else {
				err = werr
			}
			conn.SetWriteDeadline(time.Time{})
			if err != nil {
				conn.Close()
				closeAll(ctrls)
				return nil, fmt.Errorf("tcpnet: submitting to worker %s: %w", c.Workers[r-1], err)
			}
			ctrls[r] = conn
		}

		// Rank 0 dials no one; every worker dials us.
		bootDeadline := deadline
		if bootDeadline.IsZero() {
			bootDeadline = time.Now().Add(dialTimeout)
		}
		for r := 1; r < np; r++ {
			conn, terr := bucket.take(r, bootDeadline)
			if terr != nil {
				closeAll(ctrls)
				n.fail(terr)
				n.shutdown()
				return nil, terr
			}
			n.attach(r, conn)
		}
		n.start()
	}

	// abort tears the job down from the coordinator side: fail the
	// local node and drop the control connections, which trips every
	// worker's coordinator monitor.
	var abortOnce sync.Once
	abort := func(cause error) {
		abortOnce.Do(func() {
			n.fail(cause)
			closeAll(ctrls)
		})
	}

	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			abort(ctx.Err())
		case <-watchDone:
		}
	}()

	// Collect worker results as they arrive; a worker error or a
	// dropped worker aborts the rest of the job immediately.
	results := make([]jobResult, np)
	workerErrs := make([]error, np)
	var collectors sync.WaitGroup
	for r := 1; r < np; r++ {
		collectors.Add(1)
		go func(r int) {
			defer collectors.Done()
			var res jobResult
			if rerr := readJSONFrame(ctrls[r], &res); rerr != nil {
				workerErrs[r] = fmt.Errorf("tcpnet: worker %s (rank %d) vanished: %w", c.Workers[r-1], r, rerr)
				abort(workerErrs[r])
				return
			}
			if res.Err != "" {
				workerErrs[r] = fmt.Errorf("tcpnet: rank %d: %s", r, res.Err)
				abort(workerErrs[r])
			}
			results[r] = res
		}(r)
	}

	p := newProc(n)
	bodyErr := runBody(func() error { return body(p) })
	n.shutdown()
	if bodyErr != nil {
		abort(bodyErr)
	}
	collectors.Wait()
	closeAll(ctrls)

	st := &transport.Stats{PerRank: make([]transport.Counters, np)}
	st.PerRank[0] = p.Counters()
	st.Accumulate(st.PerRank[0])
	mergePhases(st, p.phases)
	for r := 1; r < np; r++ {
		st.PerRank[r] = results[r].Counters
		st.Accumulate(st.PerRank[r])
		mergePhases(st, results[r].Phases)
	}

	if ctxErr := ctx.Err(); ctxErr != nil {
		return st, ctxErr
	}
	if bodyErr != nil {
		return st, bodyErr
	}
	for r := 1; r < np; r++ {
		if workerErrs[r] != nil {
			return st, workerErrs[r]
		}
	}
	return st, nil
}

// acceptMesh feeds a coordinator listener's incoming mesh connections
// into the job's bucket (ignoring anything that is not a mesh hello for
// this job).
func acceptMesh(ln net.Listener, jobID string, bucket *meshBucket) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
			var pre [1]byte
			if _, err := io.ReadFull(conn, pre[:]); err != nil || pre[0] != preambleMesh {
				conn.Close()
				return
			}
			var hello meshHello
			if err := readJSONFrame(conn, &hello); err != nil || hello.JobID != jobID {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			bucket.offer(hello.Rank, conn)
		}(conn)
	}
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// mergePhases folds one rank's phase counters into the stats as
// per-phase maxima, matching the simulated backend's convention.
func mergePhases(st *transport.Stats, phases map[string]transport.Counters) {
	for label, c := range phases {
		if st.Phases == nil {
			st.Phases = make(map[string]transport.Counters)
		}
		agg := st.Phases[label]
		if c.Msgs > agg.Msgs {
			agg.Msgs = c.Msgs
		}
		if c.Words > agg.Words {
			agg.Words = c.Words
		}
		if c.Flops > agg.Flops {
			agg.Flops = c.Flops
		}
		st.Phases[label] = agg
	}
}

// newJobID produces a collision-resistant job identifier.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("tcpnet: job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
