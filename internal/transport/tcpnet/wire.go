package tcpnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"cacqr/internal/transport"
)

// Connection preamble bytes: the first byte on every connection says
// what the stream carries.
const (
	preambleCtrl byte = 'C' // coordinator → worker job submission
	preambleMesh byte = 'M' // rank ↔ rank data-plane connection
	preamblePing byte = 'P' // liveness probe; the peer answers pingAck
)

const pingAck byte = 'O'

// jobHeader is the control message a coordinator sends to each worker
// to start a job.
type jobHeader struct {
	JobID string `json:"job_id"`
	NP    int    `json:"np"`
	Rank  int    `json:"rank"`
	// Addrs maps rank → dial address; Addrs[0] is the coordinator's
	// mesh listener.
	Addrs []string `json:"addrs"`
	// Deadline is the job deadline in Unix nanoseconds; 0 means none.
	Deadline int64 `json:"deadline,omitempty"`
	// Payload is opaque to the transport; the application puts the
	// job spec and this rank's input data there.
	Payload []byte `json:"payload,omitempty"`
}

// jobResult is the worker's reply on the control connection once its
// rank body has finished.
type jobResult struct {
	Err      string                        `json:"err,omitempty"`
	Counters transport.Counters            `json:"counters"`
	Phases   map[string]transport.Counters `json:"phases,omitempty"`
}

// meshHello identifies a data-plane connection: which job it belongs to
// and which rank dialed.
type meshHello struct {
	JobID string `json:"job_id"`
	Rank  int    `json:"rank"`
}

// maxJSONFrame bounds control-plane messages (the payload carries a
// rank's input block, so allow large frames).
const maxJSONFrame = 1 << 30

// writeJSONFrame writes a length-prefixed JSON message.
func writeJSONFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("tcpnet: encode: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readJSONFrame reads a length-prefixed JSON message into v.
func readJSONFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxJSONFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// Mesh data frames: a fixed header followed by count float64s.
//
//	[8B commID][4B src][4B tag][4B count][count × 8B float64]
//
// tag is encoded as int32 two's complement (internal collective tags
// are negative).
const meshFrameHeader = 8 + 4 + 4 + 4

// maxMeshElems bounds a single data frame (2 GiB of float64s).
const maxMeshElems = 1 << 28

// encodeMeshFrame serializes one data-plane message into a fresh buffer.
func encodeMeshFrame(commID uint64, src, tag int, data []float64) []byte {
	buf := make([]byte, meshFrameHeader+8*len(data))
	binary.BigEndian.PutUint64(buf[0:], commID)
	binary.BigEndian.PutUint32(buf[8:], uint32(int32(src)))
	binary.BigEndian.PutUint32(buf[12:], uint32(int32(tag)))
	binary.BigEndian.PutUint32(buf[16:], uint32(len(data)))
	for i, v := range data {
		binary.BigEndian.PutUint64(buf[meshFrameHeader+8*i:], math.Float64bits(v))
	}
	return buf
}

// readMeshFrame reads one data-plane message, returning the decoded
// fields and the total bytes consumed from the wire.
func readMeshFrame(r io.Reader) (msg meshMsg, wireBytes int64, err error) {
	var hdr [meshFrameHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return msg, 0, err
	}
	msg.commID = binary.BigEndian.Uint64(hdr[0:])
	msg.src = int(int32(binary.BigEndian.Uint32(hdr[8:])))
	msg.tag = int(int32(binary.BigEndian.Uint32(hdr[12:])))
	count := binary.BigEndian.Uint32(hdr[16:])
	if count > maxMeshElems {
		return msg, 0, fmt.Errorf("tcpnet: data frame of %d elements exceeds limit", count)
	}
	body := make([]byte, 8*count)
	if _, err = io.ReadFull(r, body); err != nil {
		return msg, 0, fmt.Errorf("tcpnet: truncated data frame: %w", err)
	}
	msg.data = make([]float64, count)
	for i := range msg.data {
		msg.data[i] = math.Float64frombits(binary.BigEndian.Uint64(body[8*i:]))
	}
	return msg, int64(meshFrameHeader + 8*int(count)), nil
}
