package tcpnet

import (
	"fmt"
	"hash/fnv"
	"sort"

	"cacqr/internal/transport"
)

// Internal tags for collectives, outside the (non-negative) user tag
// space. Successive collectives on one communicator stay ordered
// because the mailbox is FIFO per (comm, src, tag).
const (
	tagBarrierIn  = -101
	tagBarrierOut = -102
	tagBcast      = -103
	tagReduce     = -104
	tagGather     = -105
	tagTranspose  = -106
)

// worldCommID identifies the all-ranks communicator; child ids are
// derived from it deterministically on every member.
var worldCommID = hashCommID("world")

func hashCommID(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// comm implements transport.Comm over a node's mesh. Like the simulated
// backend, a value is one rank's handle onto the logical communicator;
// all members derive identical ids for the same Split/Subgroup call
// sequence, which is what makes matching work with no registry.
type comm struct {
	p     *proc
	id    uint64
	ranks []int // global ranks of members, in communicator order
	index int   // this rank's position within ranks

	nsplits int // per-member count of child communicators created
}

func (c *comm) Size() int            { return len(c.ranks) }
func (c *comm) Index() int           { return c.index }
func (c *comm) GlobalRank(i int) int { return c.ranks[i] }
func (c *comm) Proc() transport.Proc { return c.p }

// Split partitions the communicator MPI_Comm_split-style. The (color,
// key) pairs are exchanged via Allgather so every member computes every
// group; the child id is a hash of (parent id, call sequence, color),
// identical on all members of the group.
func (c *comm) Split(color, key int) (transport.Comm, error) {
	local := []float64{float64(color), float64(key), float64(c.index)}
	all, err := c.Allgather(local)
	if err != nil {
		return nil, err
	}
	type entry struct{ color, key, index int }
	var group []entry
	for i := 0; i < c.Size(); i++ {
		e := entry{int(all[3*i]), int(all[3*i+1]), int(all[3*i+2])}
		if e.color == color {
			group = append(group, e)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].index < group[j].index
	})
	ranks := make([]int, len(group))
	idx := -1
	for i, e := range group {
		ranks[i] = c.ranks[e.index]
		if e.index == c.index {
			idx = i
		}
	}
	seq := c.nsplits
	c.nsplits++
	id := hashCommID(fmt.Sprintf("%d/%d/%d", c.id, seq, color))
	return &comm{p: c.p, id: id, ranks: ranks, index: idx}, nil
}

// Subgroup creates a communicator from an explicit ordered list of
// parent indices without communication; non-members receive nil.
func (c *comm) Subgroup(indices []int) transport.Comm {
	seq := c.nsplits
	c.nsplits++
	id := hashCommID(fmt.Sprintf("%d/%d/g%v", c.id, seq, indices))
	idx := -1
	ranks := make([]int, len(indices))
	for i, pi := range indices {
		if pi < 0 || pi >= len(c.ranks) {
			panic(fmt.Sprintf("tcpnet: Subgroup index %d out of range", pi))
		}
		ranks[i] = c.ranks[pi]
		if pi == c.index {
			idx = i
		}
	}
	if idx == -1 {
		return nil
	}
	return &comm{p: c.p, id: id, ranks: ranks, index: idx}
}

// Send enqueues data for member dst (buffered). The sender is charged
// one message and the payload words — measured traffic, the same cost
// fields the simulated backend models.
func (c *comm) Send(dst, tag int, data []float64) error {
	if err := c.sendRaw(dst, tag, data); err != nil {
		return err
	}
	c.p.ChargeComm(1, int64(len(data)))
	return nil
}

// Recv blocks until a message from member src with the given tag
// arrives.
func (c *comm) Recv(src, tag int) ([]float64, error) {
	got, err := c.recvRaw(src, tag)
	if err != nil {
		return nil, err
	}
	c.p.ChargeComm(1, int64(len(got)))
	return got, nil
}

// SendRecv exchanges messages with a partner. Deadlock-free because
// sends are buffered; charged as one full-duplex exchange.
func (c *comm) SendRecv(partner, tag int, data []float64) ([]float64, error) {
	if err := c.sendRaw(partner, tag, data); err != nil {
		return nil, err
	}
	got, err := c.recvRaw(partner, tag)
	if err != nil {
		return nil, err
	}
	w := int64(len(data))
	if r := int64(len(got)); r > w {
		w = r
	}
	c.p.ChargeComm(1, w)
	return got, nil
}

func (c *comm) sendRaw(dst, tag int, data []float64) error {
	if dst < 0 || dst >= len(c.ranks) {
		return fmt.Errorf("tcpnet: send to invalid rank %d of %d", dst, len(c.ranks))
	}
	return c.p.n.send(c.id, c.ranks[dst], tag, data)
}

func (c *comm) recvRaw(src, tag int) ([]float64, error) {
	if src < 0 || src >= len(c.ranks) {
		return nil, fmt.Errorf("tcpnet: recv from invalid rank %d of %d", src, len(c.ranks))
	}
	return c.p.n.recvMatch(c.id, c.ranks[src], tag)
}

// Barrier gathers zero-length tokens at member 0 and releases everyone.
func (c *comm) Barrier() error {
	if c.Size() == 1 {
		return c.p.n.errNow()
	}
	if c.index == 0 {
		for i := 1; i < c.Size(); i++ {
			if _, err := c.Recv(i, tagBarrierIn); err != nil {
				return err
			}
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.Send(i, tagBarrierOut, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, tagBarrierIn, nil); err != nil {
		return err
	}
	_, err := c.Recv(0, tagBarrierOut)
	return err
}

// Bcast distributes root's data to every member.
func (c *comm) Bcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= len(c.ranks) {
		return nil, fmt.Errorf("tcpnet: bcast from invalid root %d of %d", root, len(c.ranks))
	}
	if c.index == root {
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.Send(i, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, c.p.n.errNow()
	}
	return c.Recv(root, tagBcast)
}

// Reduce sums the members' equal-length vectors onto root. Partial sums
// accumulate in member order on the root, so the result is
// deterministic for a given communicator shape.
func (c *comm) Reduce(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= len(c.ranks) {
		return nil, fmt.Errorf("tcpnet: reduce to invalid root %d of %d", root, len(c.ranks))
	}
	if c.index != root {
		return nil, c.Send(root, tagReduce, data)
	}
	sum := make([]float64, len(data))
	copy(sum, data)
	for i := 0; i < c.Size(); i++ {
		if i == root {
			continue
		}
		got, err := c.Recv(i, tagReduce)
		if err != nil {
			return nil, err
		}
		if len(got) != len(sum) {
			return nil, fmt.Errorf("tcpnet: reduce length mismatch: %d vs %d", len(got), len(sum))
		}
		for j, v := range got {
			sum[j] += v
		}
	}
	return sum, nil
}

// Allreduce sums on member 0 and broadcasts the result.
func (c *comm) Allreduce(data []float64) ([]float64, error) {
	sum, err := c.Reduce(0, data)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, sum)
}

// Allgather concatenates the members' (possibly unequal) blocks in
// member order on member 0 and broadcasts the concatenation.
func (c *comm) Allgather(data []float64) ([]float64, error) {
	if c.Size() == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out, c.p.n.errNow()
	}
	if c.index != 0 {
		if err := c.Send(0, tagGather, data); err != nil {
			return nil, err
		}
		return c.Recv(0, tagBcast)
	}
	blocks := make([][]float64, c.Size())
	blocks[0] = data
	total := len(data)
	for i := 1; i < c.Size(); i++ {
		got, err := c.Recv(i, tagGather)
		if err != nil {
			return nil, err
		}
		blocks[i] = got
		total += len(got)
	}
	out := make([]float64, 0, total)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return c.Bcast(0, out)
}

// Transpose swaps payloads with a partner member.
func (c *comm) Transpose(partner int, data []float64) ([]float64, error) {
	if partner == c.index {
		out := make([]float64, len(data))
		copy(out, data)
		return out, c.p.n.errNow()
	}
	return c.SendRecv(partner, tagTranspose, data)
}
