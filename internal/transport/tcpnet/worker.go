package tcpnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cacqr/internal/transport"
)

// Handler runs one rank's share of a job. payload is the opaque blob
// the coordinator attached for this rank (job spec + input block in the
// root package's encoding). The handler's error is reported back to the
// coordinator verbatim.
type Handler func(p transport.Proc, payload []byte) error

// handshakeTimeout bounds how long a freshly accepted connection may
// take to identify itself, and how long mesh formation may wait for
// jobs with no deadline.
const handshakeTimeout = 30 * time.Second

// meshBucket parks mesh connections for one job until the participant
// that owns them claims each peer rank. Mesh dials race the control
// header, so either side may arrive first.
type meshBucket struct {
	mu    sync.Mutex
	cond  *sync.Cond
	conns map[int]net.Conn // dialing rank → connection
}

func newMeshBucket() *meshBucket {
	b := &meshBucket{conns: make(map[int]net.Conn)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *meshBucket) offer(rank int, conn net.Conn) {
	b.mu.Lock()
	if old, ok := b.conns[rank]; ok {
		old.Close() // duplicate hello; keep the newest
	}
	b.conns[rank] = conn
	b.cond.Broadcast()
	b.mu.Unlock()
}

// take blocks until the connection dialed by rank arrives, or the
// deadline passes.
func (b *meshBucket) take(rank int, deadline time.Time) (net.Conn, error) {
	var timedOut atomic.Bool
	d := time.Until(deadline)
	if d <= 0 {
		return nil, ErrDeadline
	}
	t := time.AfterFunc(d, func() {
		timedOut.Store(true)
		b.cond.Broadcast()
	})
	defer t.Stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if conn, ok := b.conns[rank]; ok {
			delete(b.conns, rank)
			return conn, nil
		}
		if timedOut.Load() {
			return nil, fmt.Errorf("tcpnet: mesh connection from rank %d never arrived: %w", rank, ErrDeadline)
		}
		b.cond.Wait()
	}
}

// drain closes any unclaimed connections.
func (b *meshBucket) drain() {
	b.mu.Lock()
	for r, conn := range b.conns {
		conn.Close()
		delete(b.conns, r)
	}
	b.mu.Unlock()
}

// meshRegistry routes incoming mesh connections to their job's bucket,
// creating the bucket on demand (the mesh conn may beat the control
// header, or vice versa).
type meshRegistry struct {
	mu      sync.Mutex
	buckets map[string]*meshBucket
}

func newMeshRegistry() *meshRegistry {
	return &meshRegistry{buckets: make(map[string]*meshBucket)}
}

func (r *meshRegistry) bucket(jobID string) *meshBucket {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buckets[jobID]
	if !ok {
		b = newMeshBucket()
		r.buckets[jobID] = b
	}
	return b
}

func (r *meshRegistry) drop(jobID string) {
	r.mu.Lock()
	b := r.buckets[jobID]
	delete(r.buckets, jobID)
	r.mu.Unlock()
	if b != nil {
		b.drain()
	}
}

// Serve accepts connections on ln and runs jobs with h until the
// listener is closed. Each control connection runs one job; jobs run
// concurrently if a coordinator (or several) submits them. This is the
// body of a `cacqrd worker` process.
func Serve(ln net.Listener, h Handler) error {
	reg := newMeshRegistry()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, reg, h)
	}
}

// serveConn dispatches one accepted connection by preamble.
func serveConn(conn net.Conn, reg *meshRegistry, h Handler) {
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var pre [1]byte
	if _, err := io.ReadFull(conn, pre[:]); err != nil {
		conn.Close()
		return
	}
	switch pre[0] {
	case preamblePing:
		conn.Write([]byte{pingAck})
		conn.Close()
	case preambleMesh:
		var hello meshHello
		if err := readJSONFrame(conn, &hello); err != nil {
			conn.Close()
			return
		}
		conn.SetReadDeadline(time.Time{})
		reg.bucket(hello.JobID).offer(hello.Rank, conn)
	case preambleCtrl:
		var hdr jobHeader
		if err := readJSONFrame(conn, &hdr); err != nil {
			conn.Close()
			return
		}
		conn.SetReadDeadline(time.Time{})
		runWorkerJob(conn, reg, h, hdr)
	default:
		conn.Close()
	}
}

// runWorkerJob executes one job on this worker: form the mesh, run the
// handler, report counters and error on the control connection.
func runWorkerJob(ctrl net.Conn, reg *meshRegistry, h Handler, hdr jobHeader) {
	defer ctrl.Close()
	defer reg.drop(hdr.JobID)

	var deadline time.Time
	if hdr.Deadline != 0 {
		deadline = time.Unix(0, hdr.Deadline)
	}
	report := func(res jobResult) {
		ctrl.SetWriteDeadline(time.Now().Add(handshakeTimeout))
		writeJSONFrame(ctrl, res)
	}
	if hdr.Rank <= 0 || hdr.Rank >= hdr.NP || len(hdr.Addrs) != hdr.NP {
		report(jobResult{Err: fmt.Sprintf("tcpnet: malformed job header (rank %d, np %d, %d addrs)", hdr.Rank, hdr.NP, len(hdr.Addrs))})
		return
	}

	n := newNode(hdr.Rank, hdr.NP, deadline)
	if err := buildMesh(n, hdr.JobID, hdr.Addrs, reg.bucket(hdr.JobID)); err != nil {
		n.fail(err)
		n.shutdown()
		report(jobResult{Err: err.Error()})
		return
	}

	// If the coordinator goes away mid-job (cancellation, crash), its
	// control connection drops; it never sends anything after the
	// header, so any read completion before we report means abort.
	monitorDone := make(chan struct{})
	go func() {
		var b [1]byte
		_, err := ctrl.Read(b[:])
		select {
		case <-monitorDone:
		default:
			n.fail(fmt.Errorf("tcpnet: coordinator connection lost: %w", err))
		}
	}()

	p := newProc(n)
	err := runBody(func() error { return h(p, hdr.Payload) })
	n.shutdown()
	close(monitorDone)

	res := jobResult{Counters: p.Counters(), Phases: p.phases}
	if err != nil {
		res.Err = err.Error()
	}
	report(res)
}

// runBody invokes a rank body, converting panics to errors so a bad job
// cannot take down the worker process.
func runBody(body func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("tcpnet: rank body panicked: %v\n%s", rec, debug.Stack())
		}
	}()
	return body()
}

// buildMesh completes rank n.rank's connections: dial every lower rank,
// claim the parked connections from every higher rank.
func buildMesh(n *node, jobID string, addrs []string, bucket *meshBucket) error {
	bootDeadline := n.deadline
	if bootDeadline.IsZero() {
		bootDeadline = time.Now().Add(handshakeTimeout)
	}
	for j := 0; j < n.rank; j++ {
		conn, err := dialMesh(addrs[j], jobID, n.rank, bootDeadline)
		if err != nil {
			return fmt.Errorf("tcpnet: dialing rank %d at %s: %w", j, addrs[j], err)
		}
		n.attach(j, conn)
	}
	for j := n.rank + 1; j < n.np; j++ {
		conn, err := bucket.take(j, bootDeadline)
		if err != nil {
			return err
		}
		n.attach(j, conn)
	}
	n.start()
	return nil
}

// dialMesh opens a data-plane connection to a peer and identifies
// itself.
func dialMesh(addr, jobID string, rank int, deadline time.Time) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
	if err != nil {
		return nil, err
	}
	conn.SetWriteDeadline(deadline)
	if _, err := conn.Write([]byte{preambleMesh}); err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeJSONFrame(conn, meshHello{JobID: jobID, Rank: rank}); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	return conn, nil
}

// Ping checks that a worker is listening at addr.
func Ping(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte{preamblePing}); err != nil {
		return err
	}
	var b [1]byte
	if _, err := io.ReadFull(conn, b[:]); err != nil {
		return err
	}
	if b[0] != pingAck {
		return fmt.Errorf("tcpnet: unexpected ping reply %q", b[0])
	}
	return nil
}
