package tcpnet_test

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"cacqr/internal/transport"
	"cacqr/internal/transport/conformancetest"
	"cacqr/internal/transport/tcpnet"
)

// startWorkers brings up n in-process workers on loopback listeners,
// each running body for every rank it is handed. The returned stop
// function closes the listeners.
func startWorkers(t *testing.T, n int, h tcpnet.Handler) (addrs []string, stop func()) {
	t.Helper()
	var lns []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
		go tcpnet.Serve(ln, h)
	}
	return addrs, func() {
		for _, ln := range lns {
			ln.Close()
		}
	}
}

// TestTransportConformance runs the backend-independent transport
// contract over real TCP connections between in-process workers.
func TestTransportConformance(t *testing.T) {
	conformancetest.Run(t, func(np int, timeout time.Duration, body func(p transport.Proc) error) (*transport.Stats, error) {
		addrs, stop := startWorkers(t, np-1, func(p transport.Proc, payload []byte) error {
			return body(p)
		})
		defer stop()
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		coord := &tcpnet.Coordinator{Workers: addrs}
		return coord.Run(ctx, nil, body)
	})
}

func TestSingleProcessJob(t *testing.T) {
	coord := &tcpnet.Coordinator{}
	st, err := coord.Run(context.Background(), nil, func(p transport.Proc) error {
		if p.Size() != 1 || p.Rank() != 0 {
			return fmt.Errorf("unexpected shape: rank %d of %d", p.Rank(), p.Size())
		}
		got, err := p.World().Allreduce([]float64{7})
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != 7 {
			return fmt.Errorf("allreduce of one: %v", got)
		}
		return p.Compute(5)
	})
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	if st.MaxFlops != 5 {
		t.Errorf("MaxFlops = %d, want 5", st.MaxFlops)
	}
}

func TestPing(t *testing.T) {
	addrs, stop := startWorkers(t, 1, func(p transport.Proc, payload []byte) error { return nil })
	defer stop()
	if err := tcpnet.Ping(addrs[0], 2*time.Second); err != nil {
		t.Fatalf("ping live worker: %v", err)
	}
	stop()
	if err := tcpnet.Ping(addrs[0], 500*time.Millisecond); err == nil {
		t.Fatalf("ping of closed worker succeeded")
	}
}

func TestPayloadDelivery(t *testing.T) {
	addrs, stop := startWorkers(t, 2, func(p transport.Proc, payload []byte) error {
		want := fmt.Sprintf("payload-for-%d", p.Rank())
		if string(payload) != want {
			return fmt.Errorf("rank %d got payload %q, want %q", p.Rank(), payload, want)
		}
		return nil
	})
	defer stop()
	coord := &tcpnet.Coordinator{Workers: addrs}
	_, err := coord.Run(context.Background(),
		func(rank int) []byte { return []byte(fmt.Sprintf("payload-for-%d", rank)) },
		func(p transport.Proc) error { return nil })
	if err != nil {
		t.Fatalf("payload run: %v", err)
	}
}

func TestContextCancelAbortsRun(t *testing.T) {
	addrs, stop := startWorkers(t, 1, func(p transport.Proc, payload []byte) error {
		// Block in a recv that will never match; only abort can free it.
		_, err := p.World().Recv(0, 42)
		return err
	})
	defer stop()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	coord := &tcpnet.Coordinator{Workers: addrs}
	start := time.Now()
	_, err := coord.Run(ctx, nil, func(p transport.Proc) error {
		// Also stuck in an unmatchable recv; cancellation must free it.
		_, rerr := p.World().Recv(0, 41)
		return rerr
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestBytesCountersPopulated(t *testing.T) {
	addrs, stop := startWorkers(t, 2, func(p transport.Proc, payload []byte) error {
		_, err := p.World().Allreduce(make([]float64, 256))
		return err
	})
	defer stop()
	coord := &tcpnet.Coordinator{Workers: addrs}
	st, err := coord.Run(context.Background(), nil, func(p transport.Proc) error {
		_, err := p.World().Allreduce(make([]float64, 256))
		return err
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Every rank moved at least its 256-element vector over the wire.
	for r, c := range st.PerRank {
		if c.Bytes < 256*8 {
			t.Errorf("rank %d Bytes = %d, want >= %d", r, c.Bytes, 256*8)
		}
	}
	if st.TotalBytes < 3*256*8 {
		t.Errorf("TotalBytes = %d", st.TotalBytes)
	}
}

func TestWorkerErrorReported(t *testing.T) {
	addrs, stop := startWorkers(t, 1, func(p transport.Proc, payload []byte) error {
		return errors.New("synthetic worker explosion")
	})
	defer stop()
	coord := &tcpnet.Coordinator{Workers: addrs}
	_, err := coord.Run(context.Background(), nil, func(p transport.Proc) error {
		// Rank 0 waits on the worker; the abort must free it.
		_, rerr := p.World().Recv(1, 3)
		return rerr
	})
	if err == nil || !strings.Contains(err.Error(), "synthetic worker explosion") {
		t.Fatalf("worker error not surfaced: %v", err)
	}
}
