// Package tcpnet is the real inter-process transport backend: P ranks
// are OS processes connected by a full mesh of TCP connections, all
// implementing the same transport.Comm/Proc interface the simulated
// runtime (internal/simmpi) implements — which is what lets one body of
// distributed algorithm code run unchanged on either.
//
// # Topology and bootstrap
//
// A run has one coordinator (rank 0 — the process that holds the input
// and wants the answer, e.g. the cacqrd daemon) and NP−1 workers
// (cacqrd worker processes), each listening on one TCP address. Per
// job:
//
//  1. The coordinator dials every worker's listen address and sends a
//     control header: job id, that worker's rank, the full rank→address
//     table, the job deadline, and an opaque payload (the root package
//     puts the serialized job spec and the rank's input block there).
//  2. Every participant then completes the mesh under the rendezvous
//     rule "rank i dials every rank j < i, and accepts from every
//     j > i", identifying itself with a hello frame (job id + rank).
//     A worker's single listener serves both roles — control
//     connections and mesh connections carry a one-byte preamble — and
//     mesh connections that arrive before their job's control header
//     are parked in a rendezvous registry until the job claims them.
//  3. Each participant runs the job body against its tcpnet Proc; the
//     workers report their final cost counters (and any error) back on
//     the control connection, and the coordinator folds them into the
//     run's transport.Stats.
//
// # Wire format
//
// Every message is length-delimited. Mesh data frames carry
// (communicator id, source rank, tag, element count) followed by the
// float64 payload, so receivers demultiplex into a mailbox exactly the
// way simmpi's simulated mailboxes match messages — same tag-matching,
// same FIFO-per-(comm,src,tag) ordering. Communicator ids for Split and
// Subgroup are derived deterministically from the parent id and call
// sequence on every member with no extra communication.
//
// # Deadlines and accounting
//
// The job deadline bounds every blocking operation: dials, control
// reads, mesh sends (should a peer stop draining) and mailbox waits.
// A dead peer or an expired deadline fails the node, and every pending
// and subsequent operation on it returns the failure. Counters report
// actual traffic: messages and 8-byte words through each rank's Comm,
// plus raw bytes on the wire (framing included) — the same
// cost-accounting fields the simulated backend reports, measured
// instead of modeled.
package tcpnet
