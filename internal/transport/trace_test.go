package transport_test

import (
	"context"
	"fmt"
	"testing"

	"cacqr/internal/obs"
	"cacqr/internal/simmpi"
	"cacqr/internal/transport"
)

// Traced must record one collective span per collective call — with
// payload bytes (8 per word) and peer count — on every communicator
// derived from the wrapped Proc, including Split products, and must
// expose the rank span through the obs.SpanCarrier interface so kernel
// code can hang stage spans on it.
func TestTracedCollectiveSpans(t *testing.T) {
	const np = 4
	tr := obs.NewTracer(obs.TracerOptions{})
	trace, _ := tr.Start(context.Background(), "run")
	rankSpans := make([]*obs.Span, np)
	for i := range rankSpans {
		rankSpans[i] = trace.Root().Rank(fmt.Sprintf("rank-%d", i))
	}

	if _, err := simmpi.Run(np, func(sp *simmpi.Proc) error {
		p := transport.Traced(sp, rankSpans[sp.Rank()])

		//lint:ignore obssafety the test asserts the traced proc actually carries a span, which is the point
		if st := obs.StagesOf(p); st == nil {
			return fmt.Errorf("rank %d: traced proc is not a SpanCarrier", sp.Rank())
		}
		w := p.World()
		if got := w.Proc(); got != p {
			return fmt.Errorf("rank %d: world comm does not return the traced proc", sp.Rank())
		}

		if _, err := w.Bcast(0, make([]float64, 128)); err != nil {
			return err
		}
		if _, err := w.Allreduce(make([]float64, 64)); err != nil {
			return err
		}
		// A derived communicator must stay traced.
		sub, err := w.Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		if got := sub.Proc(); got != p {
			return fmt.Errorf("rank %d: split comm lost the traced proc", sp.Rank())
		}
		_, err = sub.Allreduce(make([]float64, 16))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for _, sp := range rankSpans {
		sp.End()
	}
	trace.Finish()

	td, ok := tr.Get(trace.ID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(td.Root.Children) != np {
		t.Fatalf("root has %d rank spans, want %d", len(td.Root.Children), np)
	}
	// Every rank sees the same collective sequence; bytes are the
	// payload each rank handed in, 8 bytes per float64 word.
	want := []struct {
		op    string
		bytes int64
		peers int64
	}{
		{"bcast", 128 * 8, np},
		{"allreduce", 64 * 8, np},
		{"allreduce", 16 * 8, np / 2},
	}
	for _, rank := range td.Root.Children {
		if rank.Kind != obs.KindRank {
			t.Fatalf("%s: kind %q, want rank", rank.Name, rank.Kind)
		}
		if len(rank.Children) != len(want) {
			t.Fatalf("%s: %d collective spans, want %d", rank.Name, len(rank.Children), len(want))
		}
		for i, w := range want {
			c := rank.Children[i]
			if c.Kind != obs.KindCollective || c.Name != w.op {
				t.Fatalf("%s child %d = %s/%s, want collective/%s", rank.Name, i, c.Kind, c.Name, w.op)
			}
			if got := c.Attrs["bytes"]; got != w.bytes {
				t.Fatalf("%s %s: bytes = %v, want %d", rank.Name, w.op, got, w.bytes)
			}
			if got := c.Attrs["peers"]; got != w.peers {
				t.Fatalf("%s %s: peers = %v, want %d", rank.Name, w.op, got, w.peers)
			}
		}
	}
}

// A nil span must disable the decorator entirely: Traced returns the
// Proc unchanged, so the untraced path pays nothing.
func TestTracedNilSpanIsIdentity(t *testing.T) {
	if _, err := simmpi.Run(1, func(sp *simmpi.Proc) error {
		p := transport.Traced(sp, nil)
		if p != transport.Proc(sp) {
			return fmt.Errorf("Traced(p, nil) wrapped anyway: %T", p)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
