package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package: the unit analyzers run
// over. In-package test files are included (the float-compare and
// determinism invariants bind tests too); external `package foo_test`
// files are loaded as their own Package with path "<path>_test".
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the slice of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath    string
	Dir           string
	GoFiles       []string
	CgoFiles      []string
	TestGoFiles   []string
	XTestGoFiles  []string
}

// goList enumerates the packages matching patterns via the go command,
// which is the authority on build constraints and module layout. It
// must run inside the module (any directory under the module root).
func goList(patterns ...string) ([]listEntry, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// newInfo allocates the types.Info maps every analyzer may consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// parseFiles parses the named files (with comments — directives live
// there) from dir into fset.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckFiles type-checks already-parsed files as one package under
// path. The analysistest runner uses it directly on fixture files; the
// loader uses it for every listed package. imp is shared so the source
// importer's cache amortizes across packages (nil = fresh importer).
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	if imp == nil {
		imp = importer.ForCompiler(fset, "source", nil)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load enumerates, parses, and type-checks the packages matching
// patterns (e.g. "./..."). It returns one Package per listed package
// (test files folded in) plus one per external test package.
func Load(patterns ...string) ([]*Package, error) {
	entries, err := goList(patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, e := range entries {
		if len(e.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", e.ImportPath)
		}
		names := append(append([]string{}, e.GoFiles...), e.TestGoFiles...)
		if len(names) > 0 {
			files, err := parseFiles(fset, e.Dir, names)
			if err != nil {
				return nil, err
			}
			pkg, err := CheckFiles(fset, e.ImportPath, files, imp)
			if err != nil {
				return nil, err
			}
			pkg.Dir = e.Dir
			pkgs = append(pkgs, pkg)
		}
		if len(e.XTestGoFiles) > 0 {
			files, err := parseFiles(fset, e.Dir, e.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkg, err := CheckFiles(fset, e.ImportPath+"_test", files, imp)
			if err != nil {
				return nil, err
			}
			pkg.Dir = e.Dir
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}
