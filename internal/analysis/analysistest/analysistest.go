// Package analysistest runs analyzers over fixture packages and checks
// the diagnostics against `// want "regexp"` comments in the fixture
// source, in the manner of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go. Each fixture
// package is parsed and type-checked with an importer that resolves
// sibling fixture packages first (so a fixture can `import "obs"` and
// get <testdata>/src/obs) and falls back to the standard library.
// Diagnostics are produced by the same driver the cacqrlint binary
// uses — directive validation, AppliesTo scoping, and //lint
// suppression all apply — so a fixture proves end-to-end behavior, not
// just the analyzer's Run function.
//
// A want comment asserts a diagnostic on its own line whose message
// matches the quoted regular expression:
//
//	x := runtime.NumCPU() // want "bypasses the Workers knob"
//
// Several quoted patterns in one comment assert several diagnostics on
// that line. A fixture line with no want comment asserts the absence of
// diagnostics on it.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cacqr/internal/analysis"
)

// Run loads each named fixture package from <testdata>/src and applies
// the analyzers through the real driver, failing t on any mismatch
// between reported diagnostics and the fixtures' want comments. It
// returns the diagnostics for tests that assert more than positions.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) []analysis.Diagnostic {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.RunPackages(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
	return diags
}

// Load parses and type-checks fixture packages without running any
// analyzer, for tests that assert on the driver's raw diagnostics
// (e.g. directive-validation cases whose findings cannot carry a
// same-line want comment).
func Load(t *testing.T, testdata string, pkgPaths ...string) []*analysis.Package {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// loader loads fixture packages, caching so that two fixtures importing
// the same sibling share one types.Package (types identity matters:
// *obs.Span in the importer and importee must be the same type).
type loader struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*analysis.Package
	std  types.Importer
}

func newLoader(src string) *loader {
	fset := token.NewFileSet()
	return &loader{
		src:  src,
		fset: fset,
		pkgs: map[string]*analysis.Package{},
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

// load parses and type-checks the fixture package at <src>/<path>.
func (ld *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	pkg, err := analysis.CheckFiles(ld.fset, path, files, ld)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	ld.pkgs[path] = pkg
	return pkg, nil
}

// Import resolves an import inside a fixture: sibling fixture packages
// win, everything else goes to the standard-library source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ld.src, path)); err == nil && st.IsDir() {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// want is one expected diagnostic: a pattern anchored to a fixture line.
type want struct {
	file    string // base name, for error messages
	full    string // absolute path, for matching
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantRe extracts the quoted patterns of a `// want "p1" "p2"` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans every fixture comment for want annotations.
func collectWants(t *testing.T, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ms := wantRe.FindAllStringSubmatch(c.Text[idx:], -1)
					if len(ms) == 0 {
						t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, &want{
							file:    filepath.Base(pos.Filename),
							full:    pos.Filename,
							line:    pos.Line,
							pattern: m[1],
							re:      re,
						})
					}
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched want covering d as matched.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.full != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
