package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Lint directives. Two forms, both requiring a justification so an
// opt-out reads as a decision, not an accident:
//
//	//lint:allow <analyzer> <justification>   — whole file
//	//lint:ignore <analyzer> <justification>  — the directive's line and
//	                                            the line below it
//
// The driver validates every directive: an unknown analyzer name or a
// missing justification is reported as a "directive" diagnostic, so a
// typo cannot silently disable nothing (or worse, look like it
// disabled something).

const directivePrefix = "//lint:"

// directives is the parsed suppression state of one file.
type directives struct {
	// allowed maps analyzer name → true for file-scope opt-outs.
	allowed map[string]bool
	// ignored maps analyzer name → set of suppressed lines.
	ignored map[string]map[int]bool
}

// suppresses reports whether a diagnostic from analyzer at line is
// switched off in this file.
func (d *directives) suppresses(analyzer string, line int) bool {
	if d == nil {
		return false
	}
	if d.allowed[analyzer] {
		return true
	}
	return d.ignored[analyzer][line]
}

// parseDirectives scans one file's comments, returning its suppression
// state and reporting malformed or unknown directives via report.
// known maps valid analyzer names (the driver passes the registry).
func parseDirectives(fset *token.FileSet, file *ast.File, known map[string]bool, report func(pos token.Pos, format string, args ...any)) *directives {
	d := &directives{allowed: map[string]bool{}, ignored: map[string]map[int]bool{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(c.Pos(), "malformed lint directive %q: want //lint:allow or //lint:ignore", text)
				continue
			}
			verb := fields[0]
			args := fields[1:]
			// The verb may be glued to its argument only via the
			// documented "verb name" form; anything else is malformed.
			switch verb {
			case "allow", "ignore":
			default:
				report(c.Pos(), "unknown lint directive verb %q (want allow or ignore)", verb)
				continue
			}
			if len(args) == 0 {
				report(c.Pos(), "lint directive %q names no analyzer", text)
				continue
			}
			name := args[0]
			if !known[name] {
				report(c.Pos(), "lint directive names unknown analyzer %q", name)
				continue
			}
			if len(args) < 2 {
				report(c.Pos(), "lint directive for %q has no justification — say why", name)
				continue
			}
			switch verb {
			case "allow":
				d.allowed[name] = true
			case "ignore":
				line := fset.Position(c.Pos()).Line
				if d.ignored[name] == nil {
					d.ignored[name] = map[int]bool{}
				}
				d.ignored[name][line] = true
				d.ignored[name][line+1] = true
			}
		}
	}
	return d
}
