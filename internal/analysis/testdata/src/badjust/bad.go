// Package badjust holds a directive with no justification: the driver
// must report the directive AND keep the analyzer armed.
package badjust

//lint:allow floatcompare

func cmp(a, b float64) bool { return a == b }
