// Package directives proves the driver validates lint directives: a
// typo cannot silently disable nothing.
package directives

//lint:allow nosuchanalyzer because reasons // want "unknown analyzer"

//lint:frobnicate floatcompare because reasons // want "unknown lint directive verb"

//lint:ignore floatcompare the next line is sanctioned by this fixture
func suppressed(a, b float64) bool { return a == b }

func unsuppressed(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}
