// Package serve is a muguard fixture standing in for internal/serve:
// fields annotated `guarded by mu` may only be touched holding the
// mutex.
package serve

import "sync"

type server struct {
	mu    sync.Mutex
	hits  int64 // guarded by mu
	limit int
}

func (s *server) good() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

func (s *server) bad() int64 {
	return s.hits // want "not held"
}

func (s *server) unguardedFieldIsFree() int {
	return s.limit
}

func (s *server) staleAfterUnlock() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	s.hits++ // want "not held"
}

func (s *server) branchesMerge(b bool) int64 {
	s.mu.Lock()
	if b {
		s.hits++
	} else {
		s.hits--
	}
	defer s.mu.Unlock()
	return s.hits
}

type dangling struct {
	n int // guarded by lock // want "no sync.Mutex"
}
