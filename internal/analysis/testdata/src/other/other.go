// Package other sits outside every scoped analyzer's AppliesTo: its
// bare go statement must not be flagged.
package other

func fanOut(fn func()) {
	go fn()
}
