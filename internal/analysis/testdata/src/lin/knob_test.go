package lin

import "runtime"

// Test files are exempt: sweeping Workers across NumCPU and spinning
// harness goroutines is how the knob's invariance gets verified.
func helperForTests() int {
	go func() {}()
	return runtime.NumCPU()
}
