// Package lin is a workersknob fixture standing in for internal/lin:
// kernel parallelism must come from the Workers knob.
package lin

import "runtime"

// Workers is the fixture's stand-in for the sanctioned knob.
var Workers int

func bypasses(work []func()) {
	n := runtime.NumCPU() // want "bypasses the Workers knob"
	_ = n
	for _, w := range work {
		go w() // want "bare go statement"
	}
}

func sanctioned(work []func()) {
	n := Workers
	if n < 1 {
		n = 1
	}
	for _, w := range work {
		w()
	}
	_ = n
}
