// Package errwrap is an errwrap fixture: fmt.Errorf formatting an
// error must wrap it with %w.
package errwrap

import "fmt"

func flattens(err error) error {
	return fmt.Errorf("context: %v", err) // want "without %w"
}

func wraps(err error) error {
	return fmt.Errorf("context: %w", err)
}

func wrapsBoth(a, b error) error {
	return fmt.Errorf("%w and %w", a, b)
}

func wrapsOneOfTwo(a, b error) error {
	return fmt.Errorf("%w and %v", a, b) // want "without %w"
}

func stringsAreFine(msg string) error {
	return fmt.Errorf("context: %s", msg)
}
