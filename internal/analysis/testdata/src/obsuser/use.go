// Package obsuser is the outside-obs half of the obssafety fixture:
// instrumented code must call span methods unconditionally, never
// branch on nil.
package obsuser

import "obs"

func record(sp *obs.Span) {
	if sp != nil { // want "nil-safe by contract"
		sp.SetInt("m", 1)
	}
	sp.SetInt("n", 2)
}

func fine(sp *obs.Span) {
	sp.SetInt("k", 3)
	sp.End()
}
