// Package testmat is a deterministicgen fixture standing in for the
// generator packages: output must be a pure function of (seed,
// position).
package testmat

import "math/rand"

func unseeded() float64 {
	return rand.Float64() // want "global math/rand state"
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func fromMap(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want "map iteration order"
		out = append(out, v)
	}
	return out
}

func fromSlice(s []float64) []float64 {
	out := make([]float64, 0, len(s))
	out = append(out, s...)
	return out
}
