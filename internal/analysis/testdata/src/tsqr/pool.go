// Package tsqr is a workersknob fixture: a file-scope allow directive
// opts the sanctioned pool file out wholesale.
package tsqr

//lint:allow workersknob this file is the fixture's sanctioned worker pool

func spawn(fn func()) {
	go fn()
}
