// Package floats is a floatcompare fixture.
package floats

import "math"

func equal(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func notEqual(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

func tolerant(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func ints(a, b int) bool {
	return a == b
}
