package floatallow

func sibling(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}
