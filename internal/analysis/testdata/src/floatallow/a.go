// Package floatallow proves the file scope of //lint:allow: this file
// opts in to bitwise comparison, its sibling b.go does not.
package floatallow

//lint:allow floatcompare bit equality is this fixture file's contract

func bitEqual(a, b float64) bool {
	return a == b
}
