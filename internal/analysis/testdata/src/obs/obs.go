// Package obs is an obssafety fixture standing in for internal/obs:
// every method on *Span must be nil-safe, so the receiver needs a nil
// guard before any field access.
package obs

// Span is the fixture's nil-safe span.
type Span struct {
	name string
	vals map[string]int64
}

// SetInt guards the receiver before touching fields.
func (s *Span) SetInt(k string, v int64) {
	if s == nil {
		return
	}
	s.vals[k] = v
}

// Name forgets the guard.
func (s *Span) Name() string {
	return s.name // want "touches receiver fields before"
}

// End delegates to a guarded method; the callee carries the guard.
func (s *Span) End() {
	s.SetInt("done", 1)
}

// Len's compound guard is safe: short-circuit evaluation protects the
// field access on the right of the ||.
func (s *Span) Len() int {
	if s == nil || len(s.vals) == 0 {
		return 0
	}
	return len(s.vals)
}
