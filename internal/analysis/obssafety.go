package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// obssafety enforces both sides of the obs nil-safety contract
// (PR 8's design constraint: an untraced request carries nil pointers
// end to end and pays essentially nothing):
//
//   - outside internal/obs, code must not compare *obs.Span, *obs.Trace,
//     *obs.Tracer, or *obs.Stages against nil. The API is nil-safe
//     precisely so instrumented code never branches on "is tracing on";
//     a nil check reintroduces the branch, and the next author copies
//     it into a hot path.
//   - inside internal/obs, a pointer-receiver method on one of those
//     types must guard the receiver (`if s == nil { ... }`) before
//     touching its fields. Delegating to another method on the receiver
//     is fine — the callee carries the guard.
var ObsSafety = &Analyzer{
	Name: "obssafety",
	Doc:  "obs spans are nil-safe: no nil checks outside internal/obs, receiver guards inside it",
	Run:  runObsSafety,
}

// nilSafeTypes are the obs types whose methods promise nil-safety
// (the package doc's "every method on *Span, *Stages, *Trace, and
// *Tracer is nil-safe").
var nilSafeTypes = map[string]bool{
	"Span": true, "Trace": true, "Tracer": true, "Stages": true,
}

// isObsPackage matches the real package and fixture stand-ins.
func isObsPackage(path string) bool {
	return path == "cacqr/internal/obs" || path == "obs" || strings.HasSuffix(path, "/obs")
}

// isNilSafeObsPtr reports whether t is a pointer to one of the obs
// nil-safe named types.
func isNilSafeObsPtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return isObsPackage(named.Obj().Pkg().Path()) && nilSafeTypes[named.Obj().Name()]
}

func runObsSafety(pass *Pass) error {
	if isObsPackage(pass.Pkg.Path()) {
		return runObsReceiverGuards(pass)
	}
	return runObsNilChecks(pass)
}

// runObsNilChecks flags nil comparisons of nil-safe obs pointers
// outside the obs package.
func runObsNilChecks(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			var other ast.Expr
			switch {
			case isNilIdent(pass.TypesInfo, be.X):
				other = be.Y
			case isNilIdent(pass.TypesInfo, be.Y):
				other = be.X
			default:
				return true
			}
			if t := pass.TypesInfo.Types[other].Type; t != nil && isNilSafeObsPtr(t) {
				pass.Reportf(be.Pos(), "obs spans are nil-safe by contract; call the method unconditionally instead of branching on nil")
			}
			return true
		})
	}
	return nil
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// runObsReceiverGuards checks, inside the obs package, that pointer
// receiver methods on nil-safe types guard the receiver before any
// field access.
func runObsReceiverGuards(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recvType := fd.Recv.List[0].Type
			star, ok := recvType.(*ast.StarExpr)
			if !ok {
				continue
			}
			base := star.X
			if idx, ok := base.(*ast.IndexExpr); ok { // generic receiver
				base = idx.X
			}
			id, ok := base.(*ast.Ident)
			if !ok || !nilSafeTypes[id.Name] {
				continue
			}
			if len(fd.Recv.List[0].Names) == 0 {
				continue // receiver unnamed, hence unused
			}
			recvObj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			if recvObj == nil {
				continue
			}
			if pos, bad := fieldAccessBeforeGuard(pass, fd.Body.List, recvObj); bad {
				pass.Reportf(pos, "method on nil-safe *%s touches receiver fields before the `if %s == nil` guard", id.Name, recvObj.Name())
			}
		}
	}
	return nil
}

// fieldAccessBeforeGuard scans stmts in order: a nil-receiver guard
// ends the scan clean; a receiver field access before one is reported.
func fieldAccessBeforeGuard(pass *Pass, stmts []ast.Stmt, recv types.Object) (token.Pos, bool) {
	for _, st := range stmts {
		if isNilReceiverGuard(pass, st, recv) {
			return token.NoPos, false
		}
		var badPos token.Pos
		ast.Inspect(st, func(n ast.Node) bool {
			if badPos.IsValid() {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, ok := pass.TypesInfo.Selections[sel]
			if !ok || selInfo.Kind() != types.FieldVal {
				return true
			}
			if x, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[x] == recv {
				badPos = sel.Pos()
			}
			return true
		})
		if badPos.IsValid() {
			return badPos, true
		}
	}
	return token.NoPos, false
}

// isNilReceiverGuard matches `if recv == nil { ... }` (either operand
// order), including compound guards like `if recv == nil || other`
// where short-circuit evaluation protects the right-hand side — the
// leftmost || operand must be the nil test.
func isNilReceiverGuard(pass *Pass, st ast.Stmt, recv types.Object) bool {
	ifst, ok := st.(*ast.IfStmt)
	if !ok || ifst.Init != nil {
		return false
	}
	cond := ifst.Cond
	// Walk down the left spine of a || chain: `a == nil || b || c`
	// parses as `((a == nil || b) || c)`.
	for {
		be, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if be.Op == token.LOR {
			cond = be.X
			continue
		}
		break
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == recv
	}
	return (isRecv(be.X) && isNilIdent(pass.TypesInfo, be.Y)) ||
		(isRecv(be.Y) && isNilIdent(pass.TypesInfo, be.X))
}
