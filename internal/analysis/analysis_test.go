package analysis_test

import (
	"strings"
	"testing"

	"cacqr/internal/analysis"
	"cacqr/internal/analysis/analysistest"
)

// suite picks analyzers from the registry by name.
func suite(t *testing.T, names ...string) []*analysis.Analyzer {
	t.Helper()
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			t.Fatalf("no analyzer named %q in the registry", n)
		}
		out = append(out, a)
	}
	return out
}

func TestWorkersKnob(t *testing.T) {
	// lin: firing (NumCPU, go stmt) plus a _test.go exemption; tsqr: a
	// file-scope allow; other: out of the analyzer's scope entirely.
	analysistest.Run(t, "testdata", suite(t, "workersknob"), "lin", "tsqr", "other")
}

func TestDeterministicGen(t *testing.T) {
	analysistest.Run(t, "testdata", suite(t, "deterministicgen"), "testmat")
}

func TestObsSafety(t *testing.T) {
	// obs: receiver-guard mode; obsuser: nil-check mode via the fixture
	// import "obs".
	analysistest.Run(t, "testdata", suite(t, "obssafety"), "obs", "obsuser")
}

func TestMuGuard(t *testing.T) {
	analysistest.Run(t, "testdata", suite(t, "muguard"), "serve")
}

func TestFloatCompare(t *testing.T) {
	analysistest.Run(t, "testdata", suite(t, "floatcompare"), "floats")
}

// TestFloatCompareAllowBindsPerFile proves a file-scope allow
// suppresses exactly the file that carries it: a.go's comparison stays
// silent, b.go's identical comparison in the same package still fires.
func TestFloatCompareAllowBindsPerFile(t *testing.T) {
	diags := analysistest.Run(t, "testdata", suite(t, "floatcompare"), "floatallow")
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic (b.go only), got %d: %v", len(diags), diags)
	}
	if base := diags[0].Pos.Filename; !strings.HasSuffix(base, "b.go") {
		t.Fatalf("diagnostic landed in %s, want b.go", base)
	}
}

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, "testdata", suite(t, "errwrap"), "errwrap")
}

// TestDirectiveValidation proves malformed directives are findings
// themselves: unknown analyzer names and unknown verbs get flagged
// (want comments in the fixture), while a well-formed line-scope
// ignore suppresses exactly its line and the next.
func TestDirectiveValidation(t *testing.T) {
	analysistest.Run(t, "testdata", suite(t, "floatcompare"), "directives")
}

// TestDirectiveRequiresJustification: an allow with no justification is
// reported AND does not disarm the analyzer — the file's comparison
// still fires. (This case cannot carry a same-line want comment: the
// want text would itself become the justification.)
func TestDirectiveRequiresJustification(t *testing.T) {
	pkgs := analysistest.Load(t, "testdata", "badjust")
	diags, err := analysis.RunPackages(pkgs, suite(t, "floatcompare"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (directive + comparison), got %d: %v", len(diags), diags)
	}
	var sawDirective, sawCompare bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			sawDirective = true
			if !strings.Contains(d.Message, "no justification") {
				t.Errorf("directive diagnostic %q does not mention the missing justification", d.Message)
			}
		case "floatcompare":
			sawCompare = true
		}
	}
	if !sawDirective || !sawCompare {
		t.Fatalf("want one directive and one floatcompare diagnostic, got %v", diags)
	}
}

// TestRegistry pins the suite's shape: every analyzer is named,
// documented, and runnable.
func TestRegistry(t *testing.T) {
	all := analysis.All()
	if len(all) != 6 {
		t.Fatalf("registry has %d analyzers, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
