package analysis

// All returns the full suite in reporting order. cmd/cacqrlint and the
// CI lint job run exactly this set.
func All() []*Analyzer {
	return []*Analyzer{
		WorkersKnob,
		DeterministicGen,
		ObsSafety,
		MuGuard,
		FloatCompare,
		ErrWrap,
	}
}
