package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatcompare: ==/!= on floating-point operands is almost always a
// rounding bug waiting to happen in a numerical codebase — two
// mathematically equal results differ in the last ulp and the branch
// flips. Comparisons should use a tolerance (math.Abs(a-b) <= tol).
//
// The exception is real and sanctioned: the bitwise-equality invariants
// this repo leans on (parallel kernels bit-identical to serial,
// generator replay bit-identical across passes) genuinely mean ==. A
// file that means bits opts in with
//
//	//lint:allow floatcompare <why bit equality is the contract here>
var FloatCompare = &Analyzer{
	Name: "floatcompare",
	Doc:  "no ==/!= on floating-point operands; use tolerances or opt the file in for bitwise checks",
	Run:  runFloatCompare,
}

func runFloatCompare(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo, be.X) || isFloat(pass.TypesInfo, be.Y) {
				pass.Reportf(be.Pos(), "floating-point %s comparison; use a tolerance (math.Abs(a-b) <= tol) or opt the file in with //lint:allow floatcompare if bit equality is the contract", be.Op)
			}
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat,
		types.Complex64, types.Complex128, types.UntypedComplex:
		return true
	}
	return false
}
