package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// workersknob: the kernel packages' parallelism comes from the Workers
// knob, dispatched through the one sanctioned worker pool
// (internal/lin/parallel.go, which opts out with //lint:allow). Any
// other runtime.NumCPU() read or bare `go` statement in internal/lin,
// internal/core, or internal/tsqr bypasses the knob: a caller that set
// Workers=1 for bitwise reproducibility (or a server capping kernel
// goroutines per rank) would silently fan out anyway.
var WorkersKnob = &Analyzer{
	Name: "workersknob",
	Doc:  "kernel parallelism must come from the Workers knob, not runtime.NumCPU or bare go statements",
	AppliesTo: func(pkgPath string) bool {
		return pathIn(pkgPath, "cacqr/internal/lin", "cacqr/internal/core", "cacqr/internal/tsqr")
	},
	Run: runWorkersKnob,
}

func runWorkersKnob(pass *Pass) error {
	for _, f := range pass.Files {
		// Tests are exempt: sweeping Workers ∈ {1, 4, NumCPU} and
		// spinning harness goroutines is how the knob's bit-invariance
		// is *verified*, not a bypass of it.
		if name := pass.Fset.Position(f.Package).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "bare go statement fans out outside the Workers pool; dispatch through the sanctioned pool so the Workers knob stays authoritative")
			case *ast.CallExpr:
				if isPkgFunc(pass.TypesInfo, n, "runtime", "NumCPU") {
					pass.Reportf(n.Pos(), "runtime.NumCPU bypasses the Workers knob; take the worker count from Workers")
				}
			}
			return true
		})
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkg.name (resolved through the type checker, so aliases and shadowing
// don't fool it).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	// Package-level function: no receiver, declared in pkg.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkg
}
