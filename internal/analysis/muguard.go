package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// muguard: struct fields annotated `// guarded by <mu>` may only be
// read or written while the sibling mutex is held. The check is a
// simple intraprocedural lock-state walk: within one function body it
// tracks which `<expr>.<mu>` mutexes are held (Lock/RLock acquire,
// Unlock/RUnlock release, deferred unlocks keep the mutex held to the
// end), branching conservatively — an if-branch that terminates
// (return/panic) does not leak its lock state past the branch, and a
// function literal starts with nothing held, because nothing says when
// it runs.
//
// This is exactly the discipline serve.Server's Stats rebuild (PR 8)
// established by hand: every request-level counter under ONE mutex so
// the snapshot invariants (Lookups == Hits+Misses, Misses ==
// Batched+Leads) hold at any instant. The annotation turns that
// hand-audit into a mechanical one.
var MuGuard = &Analyzer{
	Name: "muguard",
	Doc:  "fields annotated `// guarded by mu` may only be accessed holding the mutex",
	AppliesTo: func(pkgPath string) bool {
		return pathIn(pkgPath, "cacqr/internal/serve")
	},
	Run: runMuGuard,
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo is the annotation table for one package: field object →
// name of the mutex field in the same struct that guards it.
type guardInfo map[types.Object]string

func runMuGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, guards: guards}
			w.walkStmts(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// collectGuards finds `// guarded by <mu>` field annotations, checking
// that the named mutex is a sync.Mutex/RWMutex field of the same
// struct (a dangling annotation is itself reported — it promises a
// protection that cannot exist).
func collectGuards(pass *Pass) guardInfo {
	guards := guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			muFields := map[string]bool{}
			for _, fld := range st.Fields.List {
				t := pass.TypesInfo.Types[fld.Type].Type
				if t != nil && isMutexType(t) {
					for _, name := range fld.Names {
						muFields[name.Name] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				mu := annotatedMutex(fld)
				if mu == "" {
					continue
				}
				if !muFields[mu] {
					pass.Reportf(fld.Pos(), "field annotated `guarded by %s` but the struct has no sync.Mutex/RWMutex field %q", mu, mu)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotatedMutex extracts the mutex name from a field's doc or trailing
// comment.
func annotatedMutex(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockWalker carries the per-function state of the intraprocedural
// walk. held maps "<rootExpr>.<mu>" keys to true while that mutex is
// known held on every path reaching the current statement.
type lockWalker struct {
	pass   *Pass
	guards guardInfo
}

// walkStmts analyzes stmts in order, mutating held, and returns whether
// the sequence terminates (ends in return or panic), so callers can
// avoid merging dead lock state past a branch.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) (terminates bool) {
	for _, st := range stmts {
		if w.walkStmt(st, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(st ast.Stmt, held map[string]bool) (terminates bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, op := w.lockOp(call); op != "" {
				w.checkExprs(call.Args, held)
				switch op {
				case "lock":
					held[key] = true
				case "unlock":
					delete(held, key)
				}
				return false
			}
			if isPanicCall(w.pass.TypesInfo, call) {
				w.checkExprs(call.Args, held)
				return true
			}
		}
		w.checkNode(st.X, held)
	case *ast.DeferStmt:
		if key, op := w.lockOp(st.Call); op == "unlock" {
			// Deferred unlock: the mutex stays held for the rest of the
			// function body.
			_ = key
			return false
		}
		// Other deferred calls (including closures) run at an unknown
		// lock state; analyze closure bodies with nothing held.
		w.checkNode(st.Call, map[string]bool{})
	case *ast.ReturnStmt:
		w.checkExprs(st.Results, held)
		return true
	case *ast.AssignStmt:
		w.checkExprs(st.Rhs, held)
		w.checkExprs(st.Lhs, held)
	case *ast.IncDecStmt:
		w.checkNode(st.X, held)
	case *ast.BlockStmt:
		return w.walkStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.checkNode(st.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := w.walkStmts(st.Body.List, thenHeld)
		var elseHeld map[string]bool
		elseTerm := false
		if st.Else != nil {
			elseHeld = copyHeld(held)
			elseTerm = w.walkStmt(st.Else, elseHeld)
		} else {
			elseHeld = held
		}
		// Merge: keep only mutexes held on every live path.
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			replaceHeld(held, intersect(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.checkNode(st.Cond, held)
		}
		body := copyHeld(held)
		w.walkStmts(st.Body.List, body)
		if st.Post != nil {
			w.walkStmt(st.Post, body)
		}
	case *ast.RangeStmt:
		w.checkNode(st.X, held)
		body := copyHeld(held)
		w.walkStmts(st.Body.List, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			w.checkNode(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.checkExprs(cc.List, held)
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.walkStmt(st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sub := copyHeld(held)
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, sub)
				}
				w.walkStmts(cc.Body, sub)
			}
		}
	case *ast.GoStmt:
		// The goroutine runs at an unknown time: analyze with nothing
		// held.
		w.checkNode(st.Call, map[string]bool{})
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	case *ast.SendStmt:
		w.checkNode(st.Chan, held)
		w.checkNode(st.Value, held)
	case *ast.DeclStmt:
		w.checkNode(st, held)
	case *ast.BranchStmt:
		// break/continue/goto: treat as terminating this straight-line
		// sequence so lock state does not leak past the jump.
		return true
	default:
		if st != nil {
			w.checkNode(st, held)
		}
	}
	return false
}

// lockOp recognizes `<expr>.<mu>.Lock()` / `.Unlock()` (and the RW
// variants), returning the held-set key and "lock"/"unlock".
func (w *lockWalker) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if t := w.pass.TypesInfo.Types[muSel].Type; t == nil || !isMutexType(t) {
		return "", ""
	}
	return exprKey(muSel.X) + "." + muSel.Sel.Name, op
}

// checkExprs / checkNode report guarded-field accesses reachable in the
// expression tree while their mutex is not in held. Function literals
// start over with nothing held.
func (w *lockWalker) checkExprs(exprs []ast.Expr, held map[string]bool) {
	for _, e := range exprs {
		w.checkNode(e, held)
	}
}

func (w *lockWalker) checkNode(n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, map[string]bool{})
			return false
		case *ast.SelectorExpr:
			selInfo, ok := w.pass.TypesInfo.Selections[n]
			if !ok || selInfo.Kind() != types.FieldVal {
				return true
			}
			mu, guarded := w.guards[fieldObj(selInfo)]
			if !guarded {
				return true
			}
			key := exprKey(n.X) + "." + mu
			if !held[key] {
				w.pass.Reportf(n.Pos(), "%s is guarded by %s.%s, which is not held here", n.Sel.Name, exprKey(n.X), mu)
			}
		}
		return true
	})
}

// fieldObj resolves the selected field's object, following the
// selection through embedding.
func fieldObj(sel *types.Selection) types.Object { return sel.Obj() }

// exprKey renders the lock-root expression to a stable string key:
// identifiers and dotted paths keep their spelling, anything more
// complex collapses to a placeholder (conservatively distinct from
// everything).
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	default:
		return "<expr>"
	}
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

func copyHeld(h map[string]bool) map[string]bool {
	out := make(map[string]bool, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

func replaceHeld(dst, src map[string]bool) {
	for k := range dst {
		if !src[k] {
			delete(dst, k)
		}
	}
	for k := range src {
		dst[k] = true
	}
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
