package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks could move onto
// the real framework wholesale if the module ever takes the dependency.
type Analyzer struct {
	// Name is the directive-addressable identifier (lowercase, no
	// spaces): `//lint:allow <Name> ...` suppresses this analyzer.
	Name string
	// Doc is the one-line summary cacqrlint -list prints.
	Doc string
	// AppliesTo reports whether the analyzer runs on the package with
	// the given import path. Nil means every package. Scopes match
	// fixture packages by final path segment too (see pathIn), so the
	// analysistest fixtures exercise the same scoping as real runs.
	AppliesTo func(pkgPath string) bool
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way `go vet` does:
// file:line:col: message (analyzer).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, analyzer —
// stable output for CI logs and tests.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathIn reports whether pkgPath is one of the given module package
// paths, matching fixture packages by final path segment too (a
// fixture for internal/lin lives at the synthetic path "lin").
func pathIn(pkgPath string, paths ...string) bool {
	for _, p := range paths {
		if pkgPath == p {
			return true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 && pkgPath == p[i+1:] {
			return true
		}
	}
	return false
}
