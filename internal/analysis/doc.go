// Package analysis is cacqr's static-analysis suite: six custom
// analyzers that mechanically enforce the invariants the rest of the
// repo's correctness rests on, plus the tiny framework they run in.
//
// The invariants are conventions that have each already caused a real
// bug or a hand-audited refactor:
//
//   - workersknob: parallelism in the kernel packages (internal/lin,
//     internal/core, internal/tsqr) must come from the Workers knob via
//     the sanctioned worker pool — no runtime.NumCPU() and no bare
//     `go` fan-out, or the knob threaded through every path since PR 2
//     silently stops meaning anything.
//   - deterministicgen: the generator packages (internal/testmat,
//     internal/stream) must stay bitwise-replayable — no global
//     math/rand state and no map-iteration-ordered output, because the
//     streaming tier's two-pass TSQR regenerates its input and the two
//     passes must see identical bits.
//   - obssafety: the obs span API is nil-safe by contract. Outside
//     internal/obs, code must not branch on span/tracer nilness (the
//     whole point is that instrumented code never checks "is tracing
//     on"); inside internal/obs, a pointer-receiver method on a
//     nil-safe type must guard the receiver before touching its fields.
//   - muguard: struct fields annotated `// guarded by mu` may only be
//     accessed while the sibling mutex is held, checked by a simple
//     intraprocedural lock-state walk — the serve.Stats invariants
//     (Lookups == Hits+Misses) depend on it.
//   - floatcompare: no ==/!= on floating-point operands. Kernel code
//     and bitwise-equality tests that genuinely mean bit comparison opt
//     a file in with `//lint:allow floatcompare <why>`.
//   - errwrap: fmt.Errorf with an error argument must use %w, so
//     errors.Is routing (ErrIllConditioned → shifted retry,
//     ErrOverloaded → 503) keeps working through wrapping.
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer,
// Pass, Diagnostic, an analysistest-style fixture runner — but is
// built on the standard library alone (go/ast, go/types, and the
// go/importer source importer), because this module deliberately has
// zero external dependencies. Packages are enumerated with `go list
// -json` and type-checked from source.
//
// Two directives tune the suite, both verified by the driver (an
// unknown analyzer name or a missing justification is itself a
// diagnostic):
//
//	//lint:allow <analyzer> <justification>   — file-scope opt-out
//	//lint:ignore <analyzer> <justification>  — suppresses the same or
//	                                            next line only
//
// cmd/cacqrlint runs the suite over package patterns and exits
// non-zero on any diagnostic; CI runs it over ./... in the lint job.
package analysis
