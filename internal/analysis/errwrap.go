package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// errwrap: fmt.Errorf that formats an error argument must wrap it with
// %w. The serving stack routes on sentinel identity through errors.Is —
// ErrIllConditioned sends a solve to the shifted retry path,
// ErrOverloaded becomes cacqrd's 503 — and a %v/%s in the middle of the
// chain severs that identity silently: everything still reads fine in
// logs, but the routing downgrades to the generic error path.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must use %w so errors.Is keeps working",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(pass.TypesInfo, call.Args[0])
			if !ok {
				return true // dynamic format: nothing to prove either way
			}
			wraps := countVerb(format, 'w')
			errArgs := 0
			for _, arg := range call.Args[1:] {
				t := pass.TypesInfo.Types[arg].Type
				if t == nil {
					continue
				}
				if types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType) {
					errArgs++
				}
			}
			if errArgs > wraps {
				pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; errors.Is/As stop seeing through this wrap — use %%w (or errors.Is-route before flattening)")
			}
			return true
		})
	}
	return nil
}

// constantString resolves e to a compile-time string, following
// concatenation.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	if !strings.HasPrefix(s, `"`) && !strings.HasPrefix(s, "`") {
		return "", false
	}
	out, err := strconv.Unquote(s)
	if err != nil {
		return "", false
	}
	return out, true
}

// countVerb counts %<verb> occurrences, skipping %%.
func countVerb(format string, verb byte) int {
	count := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		// Skip flags/width between % and the verb letter.
		j := i + 1
		for j < len(format) && strings.IndexByte("+-# 0123456789.*[]", format[j]) >= 0 {
			j++
		}
		if j < len(format) && format[j] == verb {
			count++
		}
		i = j
	}
	return count
}
