package analysis

import (
	"go/token"
)

// RunPackages applies analyzers to the loaded packages, honoring each
// analyzer's AppliesTo scope and the per-file //lint directives, and
// validating the directives themselves. Diagnostics come back sorted
// by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runOne(pkg, analyzers, known)
		if err != nil {
			return nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(all)
	return all, nil
}

// Run loads the packages matching patterns and applies analyzers.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers)
}

// runOne applies the suite to one package: parse directives per file
// (reporting malformed ones), run each in-scope analyzer, and drop
// findings a directive covers.
func runOne(pkg *Package, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, error) {
	var out []Diagnostic
	// Suppression state keyed by filename: diagnostics carry a resolved
	// token.Position, so filename+line is the natural join key.
	byFile := map[string]*directives{}
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Package).Filename
		dp := &Pass{
			Analyzer:  directiveAnalyzer,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { out = append(out, d) },
		}
		byFile[fname] = parseDirectives(pkg.Fset, f, known, func(pos token.Pos, format string, args ...any) {
			dp.Reportf(pos, format, args...)
		})
	}
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		name := a.Name
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if byFile[d.Pos.Filename].suppresses(name, d.Pos.Line) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// directiveAnalyzer attributes directive-validation findings; the
// driver validates directives while parsing them, so it has no Run.
var directiveAnalyzer = &Analyzer{
	Name: "directive",
	Doc:  "lint directives must name a known analyzer and carry a justification",
}
