package analysis

import (
	"go/ast"
	"go/types"
)

// deterministicgen: the generator packages must be bitwise-replayable.
// The streaming tier's two-pass TSQR (PR 9) regenerates its input from
// the seed on the second pass, and panel-local replay only works if
// generation is a pure function of (seed, position). Two things break
// that silently:
//
//   - the global math/rand generator (rand.Float64, rand.Intn, ...):
//     shared process-wide state any other goroutine can advance;
//   - iterating a map to produce output: Go randomizes map order per
//     run, so anything derived from the walk order differs run to run.
//
// Seeded generators (rand.New(rand.NewSource(seed))) are the sanctioned
// pattern and are not flagged.
var DeterministicGen = &Analyzer{
	Name: "deterministicgen",
	Doc:  "generator packages must not use global math/rand state or map-iteration order",
	AppliesTo: func(pkgPath string) bool {
		return pathIn(pkgPath, "cacqr/internal/testmat", "cacqr/internal/stream")
	},
	Run: runDeterministicGen,
}

// globalRandFuncs are the math/rand package-level functions that read
// or advance the shared global generator.
var globalRandFuncs = map[string]bool{
	"Float64": true, "Float32": true, "Int": true, "Intn": true,
	"Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Uint32": true, "Uint64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDeterministicGen(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				pkgPath := fn.Pkg().Path()
				if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[fn.Name()] {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
						pass.Reportf(n.Pos(), "global math/rand state breaks bitwise replay; use rand.New(rand.NewSource(seed))")
					}
				}
			case *ast.RangeStmt:
				t := pass.TypesInfo.Types[n.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration order is randomized per run; generator output derived from it is not replayable — iterate sorted keys instead")
				}
			}
			return true
		})
	}
	return nil
}
