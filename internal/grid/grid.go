package grid

import (
	"fmt"

	"cacqr/internal/transport"
)

// Grid is one rank's view of a c × d × c processor grid.
type Grid struct {
	C, D    int // grid dimensions: C × D × C
	X, Y, Z int // this rank's coordinates

	// World spans all C·D·C grid members (the communicator the grid was
	// built over), ordered by linearized coordinates.
	World transport.Comm
	// XComm is Π[:, y, z]: the C ranks varying x. Index = x.
	XComm transport.Comm
	// YComm is Π[x, :, z]: the D ranks varying y. Index = y.
	YComm transport.Comm
	// ZComm is Π[x, y, :]: the C ranks varying z (depth). Index = z.
	ZComm transport.Comm
	// Slice is Π[:, :, z]: the C·D ranks of this rank's 2D slice,
	// ordered y-major (index = y·C + x).
	Slice transport.Comm
	// YGroup is Π[x, c⌊y/c⌋ : c⌊y/c⌋+c−1, z]: the contiguous group of C
	// ranks along y containing this rank (Algorithm 8 line 3).
	// Index = y mod C.
	YGroup transport.Comm
	// YStride is Π[x, y mod c : c : d−1, z]: the D/C ranks along y whose
	// y ≡ this rank's y (mod C) (Algorithm 8 line 4). Index = ⌊y/C⌋.
	YStride transport.Comm
	// Cube is the c × c × c subcube containing this rank (Algorithm 8
	// line 6), on which CFR3D and MM3D execute.
	Cube *Cube
	// Group is ⌊y/C⌋: which subcube along the y dimension this rank
	// belongs to, in [0, D/C).
	Group int
}

// Cube is one rank's view of an E × E × E cubic grid (a subcube of a
// Grid, or a standalone 3D grid).
type Cube struct {
	E       int // cube edge
	X, Y, Z int // coordinates within the cube

	// Comm spans all E³ cube members, ordered x + E·(y + E·z).
	Comm transport.Comm
	// XComm, YComm, ZComm vary one coordinate each (sizes E).
	XComm, YComm, ZComm transport.Comm
	// Slice is the cube's 2D slice Π[:, :, z] (E² ranks, index y·E + x).
	Slice transport.Comm
}

// New builds a c × d × c grid over the first c·d·c members of comm.
// Every member of comm must call New with the same arguments; members
// beyond c·d·c receive a nil grid (they still participate in communicator
// construction bookkeeping, which is local). Requires c ≥ 1, d ≥ 1, and
// c | d so the subcube partition of Algorithm 8 exists.
func New(comm transport.Comm, c, d int) (*Grid, error) {
	if c < 1 || d < 1 {
		return nil, fmt.Errorf("grid: invalid dimensions c=%d d=%d", c, d)
	}
	if d%c != 0 {
		return nil, fmt.Errorf("grid: c=%d must divide d=%d for the subcube partition", c, d)
	}
	p := c * d * c
	if comm.Size() < p {
		return nil, fmt.Errorf("grid: need %d ranks for a %dx%dx%d grid, have %d", p, c, d, c, comm.Size())
	}

	rank := comm.Index()
	inGrid := rank < p

	// Coordinates of this rank (valid only when inGrid).
	x := rank % c
	y := (rank / c) % d
	z := rank / (c * d)

	g := &Grid{C: c, D: d, X: x, Y: y, Z: z}

	lin := func(x, y, z int) int { return x + c*(y+d*z) }

	// All communicators are built with Subgroup, which is collective in
	// bookkeeping but communication-free: every rank enumerates every
	// group in the same order.
	world := make([]int, p)
	for i := range world {
		world[i] = i
	}
	if w := comm.Subgroup(world); w != nil {
		g.World = w
	}

	// X communicators: one per (y, z).
	for zz := 0; zz < c; zz++ {
		for yy := 0; yy < d; yy++ {
			idx := make([]int, c)
			for xx := 0; xx < c; xx++ {
				idx[xx] = lin(xx, yy, zz)
			}
			if cm := comm.Subgroup(idx); cm != nil {
				g.XComm = cm
			}
		}
	}
	// Y communicators: one per (x, z).
	for zz := 0; zz < c; zz++ {
		for xx := 0; xx < c; xx++ {
			idx := make([]int, d)
			for yy := 0; yy < d; yy++ {
				idx[yy] = lin(xx, yy, zz)
			}
			if cm := comm.Subgroup(idx); cm != nil {
				g.YComm = cm
			}
		}
	}
	// Z (depth) communicators: one per (x, y).
	for yy := 0; yy < d; yy++ {
		for xx := 0; xx < c; xx++ {
			idx := make([]int, c)
			for zz := 0; zz < c; zz++ {
				idx[zz] = lin(xx, yy, zz)
			}
			if cm := comm.Subgroup(idx); cm != nil {
				g.ZComm = cm
			}
		}
	}
	// Slices: one per z, ordered y-major.
	for zz := 0; zz < c; zz++ {
		idx := make([]int, 0, c*d)
		for yy := 0; yy < d; yy++ {
			for xx := 0; xx < c; xx++ {
				idx = append(idx, lin(xx, yy, zz))
			}
		}
		if cm := comm.Subgroup(idx); cm != nil {
			g.Slice = cm
		}
	}
	// Contiguous y-groups of size c: one per (x, z, group).
	ngroups := d / c
	for zz := 0; zz < c; zz++ {
		for gg := 0; gg < ngroups; gg++ {
			for xx := 0; xx < c; xx++ {
				idx := make([]int, c)
				for yy := 0; yy < c; yy++ {
					idx[yy] = lin(xx, gg*c+yy, zz)
				}
				if cm := comm.Subgroup(idx); cm != nil {
					g.YGroup = cm
				}
			}
		}
	}
	// Strided y-groups (step c): one per (x, z, y mod c).
	for zz := 0; zz < c; zz++ {
		for rr := 0; rr < c; rr++ {
			for xx := 0; xx < c; xx++ {
				idx := make([]int, ngroups)
				for gg := 0; gg < ngroups; gg++ {
					idx[gg] = lin(xx, gg*c+rr, zz)
				}
				if cm := comm.Subgroup(idx); cm != nil {
					g.YStride = cm
				}
			}
		}
	}
	// Subcubes: one per group, each an E=c cube over y ∈ [g·c, g·c+c).
	for gg := 0; gg < ngroups; gg++ {
		idx := make([]int, 0, c*c*c)
		for zz := 0; zz < c; zz++ {
			for yy := 0; yy < c; yy++ {
				for xx := 0; xx < c; xx++ {
					idx = append(idx, lin(xx, gg*c+yy, zz))
				}
			}
		}
		cube := buildCube(comm, idx, c)
		if cube != nil {
			g.Cube = cube
		}
	}

	if !inGrid {
		return nil, nil
	}
	g.Group = y / c
	return g, nil
}

// NewCube builds a standalone E × E × E cubic grid over the first E³
// members of comm (the paper's 3D grid for 3D-CQR2; also used directly by
// MM3D and CFR3D tests). Members beyond E³ receive nil.
func NewCube(comm transport.Comm, e int) (*Cube, error) {
	if e < 1 {
		return nil, fmt.Errorf("grid: invalid cube edge %d", e)
	}
	if comm.Size() < e*e*e {
		return nil, fmt.Errorf("grid: need %d ranks for an edge-%d cube, have %d", e*e*e, e, comm.Size())
	}
	idx := make([]int, e*e*e)
	for i := range idx {
		idx[i] = i
	}
	return buildCube(comm, idx, e), nil
}

// buildCube constructs cube communicators over the given parent indices
// (length e³, ordered x + e·(y + e·z)). All parent ranks must call it;
// non-members get nil.
func buildCube(comm transport.Comm, idx []int, e int) *Cube {
	lin := func(x, y, z int) int { return idx[x+e*(y+e*z)] }

	var cb Cube
	cb.E = e
	member := false

	if cm := comm.Subgroup(idx); cm != nil {
		cb.Comm = cm
		member = true
		r := cm.Index()
		cb.X = r % e
		cb.Y = (r / e) % e
		cb.Z = r / (e * e)
	}
	for zz := 0; zz < e; zz++ {
		for yy := 0; yy < e; yy++ {
			row := make([]int, e)
			for xx := 0; xx < e; xx++ {
				row[xx] = lin(xx, yy, zz)
			}
			if cm := comm.Subgroup(row); cm != nil {
				cb.XComm = cm
			}
		}
	}
	for zz := 0; zz < e; zz++ {
		for xx := 0; xx < e; xx++ {
			col := make([]int, e)
			for yy := 0; yy < e; yy++ {
				col[yy] = lin(xx, yy, zz)
			}
			if cm := comm.Subgroup(col); cm != nil {
				cb.YComm = cm
			}
		}
	}
	for yy := 0; yy < e; yy++ {
		for xx := 0; xx < e; xx++ {
			depth := make([]int, e)
			for zz := 0; zz < e; zz++ {
				depth[zz] = lin(xx, yy, zz)
			}
			if cm := comm.Subgroup(depth); cm != nil {
				cb.ZComm = cm
			}
		}
	}
	for zz := 0; zz < e; zz++ {
		sl := make([]int, 0, e*e)
		for yy := 0; yy < e; yy++ {
			for xx := 0; xx < e; xx++ {
				sl = append(sl, lin(xx, yy, zz))
			}
		}
		if cm := comm.Subgroup(sl); cm != nil {
			cb.Slice = cm
		}
	}
	if !member {
		return nil
	}
	return &cb
}

// TransposePartner returns the index within Slice of the rank at the
// transposed coordinates (y, x, z) — the partner for the paper's
// Transpose collective on a cyclic distribution.
func (cb *Cube) TransposePartner() int {
	return cb.X*cb.E + cb.Y
}
