package grid

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cacqr/internal/simmpi"
)

func runGrid(t *testing.T, c, d int, body func(p *simmpi.Proc, g *Grid) error) {
	t.Helper()
	_, err := simmpi.RunWithOptions(c*d*c, simmpi.Options{Timeout: 30 * time.Second}, func(p *simmpi.Proc) error {
		g, err := New(p.World(), c, d)
		if err != nil {
			return err
		}
		return body(p, g)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatesRoundTrip(t *testing.T) {
	runGrid(t, 2, 4, func(p *simmpi.Proc, g *Grid) error {
		want := g.X + g.C*(g.Y+g.D*g.Z)
		if p.Rank() != want {
			return fmt.Errorf("rank %d linearizes to %d", p.Rank(), want)
		}
		if g.X < 0 || g.X >= 2 || g.Y < 0 || g.Y >= 4 || g.Z < 0 || g.Z >= 2 {
			return fmt.Errorf("coords out of range: (%d,%d,%d)", g.X, g.Y, g.Z)
		}
		return nil
	})
}

func TestCommunicatorSizesAndIndices(t *testing.T) {
	runGrid(t, 2, 4, func(p *simmpi.Proc, g *Grid) error {
		checks := []struct {
			name      string
			comm      interface{ Size() int }
			size, idx int
		}{
			{"XComm", g.XComm, 2, g.X},
			{"YComm", g.YComm, 4, g.Y},
			{"ZComm", g.ZComm, 2, g.Z},
			{"Slice", g.Slice, 8, g.Y*2 + g.X},
			{"YGroup", g.YGroup, 2, g.Y % 2},
			{"YStride", g.YStride, 2, g.Y / 2},
		}
		for _, c := range checks {
			if c.comm == nil {
				return fmt.Errorf("%s missing", c.name)
			}
			if c.comm.Size() != c.size {
				return fmt.Errorf("%s size %d, want %d", c.name, c.comm.Size(), c.size)
			}
		}
		if g.XComm.Index() != g.X || g.YComm.Index() != g.Y || g.ZComm.Index() != g.Z {
			return errors.New("per-dimension comm index mismatch")
		}
		if g.Slice.Index() != g.Y*g.C+g.X {
			return fmt.Errorf("slice index %d", g.Slice.Index())
		}
		if g.YGroup.Index() != g.Y%g.C || g.YStride.Index() != g.Y/g.C {
			return errors.New("y-group indexing mismatch")
		}
		return nil
	})
}

func TestXCommConnectsCorrectRanks(t *testing.T) {
	// Allgathering ranks along XComm must yield ranks that differ only
	// in x.
	runGrid(t, 2, 2, func(p *simmpi.Proc, g *Grid) error {
		got, err := g.XComm.Allgather([]float64{float64(p.Rank())})
		if err != nil {
			return err
		}
		for xx := 0; xx < g.C; xx++ {
			want := xx + g.C*(g.Y+g.D*g.Z)
			if int(got[xx]) != want {
				return fmt.Errorf("XComm member %d is rank %v, want %d", xx, got[xx], want)
			}
		}
		return nil
	})
}

func TestZCommConnectsDepth(t *testing.T) {
	runGrid(t, 2, 2, func(p *simmpi.Proc, g *Grid) error {
		got, err := g.ZComm.Allgather([]float64{float64(p.Rank())})
		if err != nil {
			return err
		}
		for zz := 0; zz < g.C; zz++ {
			want := g.X + g.C*(g.Y+g.D*zz)
			if int(got[zz]) != want {
				return fmt.Errorf("ZComm member %d is rank %v, want %d", zz, got[zz], want)
			}
		}
		return nil
	})
}

func TestYGroupAndStridePartitionY(t *testing.T) {
	// c=2, d=4: y-groups are {0,1} and {2,3}; strides are {0,2} and {1,3}.
	runGrid(t, 2, 4, func(p *simmpi.Proc, g *Grid) error {
		got, err := g.YGroup.Allgather([]float64{float64(g.Y)})
		if err != nil {
			return err
		}
		base := (g.Y / 2) * 2
		if int(got[0]) != base || int(got[1]) != base+1 {
			return fmt.Errorf("y-group members %v, want {%d,%d}", got, base, base+1)
		}
		got, err = g.YStride.Allgather([]float64{float64(g.Y)})
		if err != nil {
			return err
		}
		r := g.Y % 2
		if int(got[0]) != r || int(got[1]) != r+2 {
			return fmt.Errorf("y-stride members %v, want {%d,%d}", got, r, r+2)
		}
		return nil
	})
}

func TestSubcubeMembership(t *testing.T) {
	runGrid(t, 2, 4, func(p *simmpi.Proc, g *Grid) error {
		if g.Cube == nil {
			return errors.New("missing subcube")
		}
		if g.Cube.E != g.C {
			return fmt.Errorf("cube edge %d, want %d", g.Cube.E, g.C)
		}
		if g.Cube.Comm.Size() != 8 {
			return fmt.Errorf("cube size %d", g.Cube.Comm.Size())
		}
		// Cube coords: x and z match grid, y is y mod c.
		if g.Cube.X != g.X || g.Cube.Z != g.Z || g.Cube.Y != g.Y%g.C {
			return fmt.Errorf("cube coords (%d,%d,%d) vs grid (%d,%d,%d)",
				g.Cube.X, g.Cube.Y, g.Cube.Z, g.X, g.Y, g.Z)
		}
		if g.Group != g.Y/g.C {
			return fmt.Errorf("group %d, want %d", g.Group, g.Y/g.C)
		}
		// All members of my cube share my group: allgather groups.
		got, err := g.Cube.Comm.Allgather([]float64{float64(g.Group)})
		if err != nil {
			return err
		}
		for _, v := range got {
			if int(v) != g.Group {
				return fmt.Errorf("cube mixes groups: %v", got)
			}
		}
		return nil
	})
}

func TestCubeSliceAndTransposePartner(t *testing.T) {
	runGrid(t, 2, 2, func(p *simmpi.Proc, g *Grid) error {
		cb := g.Cube
		if cb.Slice.Size() != 4 {
			return fmt.Errorf("cube slice size %d", cb.Slice.Size())
		}
		if cb.Slice.Index() != cb.Y*cb.E+cb.X {
			return fmt.Errorf("cube slice index %d", cb.Slice.Index())
		}
		// Exchange coordinates with the transpose partner and verify
		// they are swapped.
		partner := cb.TransposePartner()
		got, err := cb.Slice.Transpose(partner, []float64{float64(cb.X), float64(cb.Y)})
		if err != nil {
			return err
		}
		if int(got[0]) != cb.Y || int(got[1]) != cb.X {
			return fmt.Errorf("partner coords (%v,%v), want (%d,%d)", got[0], got[1], cb.Y, cb.X)
		}
		return nil
	})
}

func TestStandaloneCube(t *testing.T) {
	_, err := simmpi.RunWithOptions(8, simmpi.Options{Timeout: 30 * time.Second}, func(p *simmpi.Proc) error {
		cb, err := NewCube(p.World(), 2)
		if err != nil {
			return err
		}
		if cb == nil {
			return errors.New("nil cube for member rank")
		}
		lin := cb.X + 2*(cb.Y+2*cb.Z)
		if lin != p.Rank() {
			return fmt.Errorf("cube linearization %d vs rank %d", lin, p.Rank())
		}
		if cb.XComm.Size() != 2 || cb.YComm.Size() != 2 || cb.ZComm.Size() != 2 {
			return errors.New("cube comm sizes wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateGrids(t *testing.T) {
	// 1×1×1 grid: everything size 1.
	runGrid(t, 1, 1, func(p *simmpi.Proc, g *Grid) error {
		if g.XComm.Size() != 1 || g.YComm.Size() != 1 || g.ZComm.Size() != 1 {
			return errors.New("1x1x1 comm sizes wrong")
		}
		return nil
	})
	// 1×d×1 grid: the paper's 1D grid.
	runGrid(t, 1, 4, func(p *simmpi.Proc, g *Grid) error {
		if g.YComm.Size() != 4 || g.XComm.Size() != 1 {
			return errors.New("1D grid comm sizes wrong")
		}
		if g.Cube.Comm.Size() != 1 {
			return fmt.Errorf("1D grid cube size %d", g.Cube.Comm.Size())
		}
		return nil
	})
}

func TestNewRejectsBadShapes(t *testing.T) {
	_, err := simmpi.RunWithOptions(8, simmpi.Options{Timeout: 10 * time.Second}, func(p *simmpi.Proc) error {
		if _, err := New(p.World(), 0, 1); err == nil {
			return errors.New("c=0 accepted")
		}
		if _, err := New(p.World(), 2, 3); err == nil {
			return errors.New("c∤d accepted")
		}
		if _, err := New(p.World(), 4, 4); err == nil {
			return errors.New("oversized grid accepted")
		}
		if _, err := NewCube(p.World(), 3); err == nil {
			return errors.New("oversized cube accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtraRanksGetNilGrid(t *testing.T) {
	// 10 ranks, 2x2x2 grid: ranks 8,9 must get nil and not deadlock.
	_, err := simmpi.RunWithOptions(10, simmpi.Options{Timeout: 30 * time.Second}, func(p *simmpi.Proc) error {
		g, err := New(p.World(), 2, 2)
		if err != nil {
			return err
		}
		if p.Rank() < 8 && g == nil {
			return fmt.Errorf("rank %d should be in grid", p.Rank())
		}
		if p.Rank() >= 8 && g != nil {
			return fmt.Errorf("rank %d should be outside grid", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
