// Package grid builds the tunable c × d × c processor grids of the
// CA-CQR2 paper on top of simmpi communicators: per-dimension
// communicators, 2D slices, the contiguous and strided y-subgroups of
// Algorithm 8, and the c × c × c subcubes on which CFR3D and MM3D run.
//
// Rank (x, y, z) of a c × d × c grid linearizes as x + c·(y + d·z), with
// x ∈ [0, c), y ∈ [0, d), z ∈ [0, c). The paper's 3D grid is the special
// case d = c, and its 1D grid is c = 1.
//
// Data on a grid is laid out by the cyclic distribution of package dist:
// matrix rows cycle over the y dimension, columns over x, and blocks are
// replicated across the depth dimension z.
package grid
