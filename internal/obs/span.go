// Package obs is the dependency-free tracing and metrics subsystem
// behind cacqr's observability surface: per-request span trees recording
// the pipeline's decomposition (admission → plan lookup → κ estimation →
// execution → per-pass kernel stages → per-collective transfers), a
// small counter/gauge/histogram registry with Prometheus text
// exposition, and runtime/trace task/region annotation of kernel stages.
//
// The design constraint is the disabled path: a Server without a Tracer
// must pay essentially nothing. Every method on *Span, *Stages, *Trace,
// and *Tracer is nil-safe — the untraced request path carries nil
// pointers end to end and each instrumentation site is a nil check —
// so tracing can be threaded through the hot path unconditionally.
//
// The span stages mirror the paper's cost decomposition: each collective
// span carries its payload bytes and peer count (the α and β terms of
// one Table V line), each stage span its wall time (the γ term), and
// each rank span the transport's measured Counters — the measured data
// the ROADMAP's self-calibrating planner will fit α-β-γ from.
package obs

import (
	"context"
	"runtime/trace"
	"sync"
	"time"
)

// Span kinds. Kinds drive metric aggregation on Trace finish: stages
// feed the per-stage latency histograms, collectives the per-op byte
// counters, ranks the wire-byte totals. Plain Child spans are structure
// only.
const (
	KindStage      = "stage"
	KindCollective = "collective"
	KindRank       = "rank"
)

// spanLimit is the shared span budget of one trace: a hostile or
// pathological request (thousands of collectives) must not grow a trace
// without bound. Past the budget, Child returns nil — which, by
// nil-safety, silently disables deeper instrumentation — and the drop
// is counted.
type spanLimit struct {
	mu      sync.Mutex
	left    int
	dropped int64
}

func (l *spanLimit) take() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.left <= 0 {
		l.dropped++
		return false
	}
	l.left--
	return true
}

func (l *spanLimit) droppedCount() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Span is one timed node of a trace tree. All methods are nil-safe:
// calling them on a nil *Span is a no-op (Child returns nil), so
// instrumented code never branches on "is tracing on". A Span is safe
// for concurrent use — simulated ranks add children to the same run
// span from many goroutines.
type Span struct {
	mu       sync.Mutex
	name     string
	kind     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    map[string]any
	children []*Span
	limit    *spanLimit
	region   *trace.Region
}

func newSpan(name, kind string, limit *spanLimit) *Span {
	s := &Span{name: name, kind: kind, start: time.Now(), limit: limit}
	if trace.IsEnabled() {
		// runtime/trace regions must start and end on one goroutine;
		// every instrumentation site in this repo creates and ends its
		// span on the goroutine doing the work, so this holds.
		s.region = trace.StartRegion(context.Background(), name)
	}
	return s
}

// Child adds and returns a generic child span, or nil when the
// receiver is nil, already ended, or the trace's span budget is spent.
func (s *Span) Child(name string) *Span { return s.child(name, "") }

// Stage adds a kind-"stage" child: one timed phase of the pipeline
// (plan lookup, κ estimation, a kernel stage). Aggregated into the
// cacqr_stage_seconds histogram on finish.
func (s *Span) Stage(name string) *Span { return s.child(name, KindStage) }

// Collective adds a kind-"collective" child: one transport collective,
// expected to carry "bytes" and "peers" attrs. Aggregated into the
// per-op collective counters on finish.
func (s *Span) Collective(name string) *Span { return s.child(name, KindCollective) }

// Rank adds a kind-"rank" child: one rank's share of a distributed run,
// expected to carry the transport Counters as attrs. Aggregated into
// the wire-byte totals on finish.
func (s *Span) Rank(name string) *Span { return s.child(name, KindRank) }

func (s *Span) child(name, kind string) *Span {
	if s == nil {
		return nil
	}
	if s.limit != nil && !s.limit.take() {
		return nil
	}
	c := newSpan(name, kind, s.limit)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetInt, SetFloat, SetStr, and SetBool attach one attribute. No-ops on
// nil spans.
func (s *Span) SetInt(key string, v int64)     { s.setAttr(key, v) }
func (s *Span) SetFloat(key string, v float64) { s.setAttr(key, v) }
func (s *Span) SetStr(key, v string)           { s.setAttr(key, v) }
func (s *Span) SetBool(key string, v bool)     { s.setAttr(key, v) }

func (s *Span) setAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End fixes the span's duration. Idempotent; no-op on nil spans. A span
// never ended keeps running until its trace finishes (Data reports the
// elapsed time so far).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
		if s.region != nil {
			s.region.End()
			s.region = nil
		}
	}
	s.mu.Unlock()
}

// Duration reports the span's duration: final if ended, elapsed so far
// otherwise. 0 on nil spans.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Attr returns one attribute value (nil when absent or the span is nil).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// SpanData is the JSON-ready snapshot of one span, served by
// /v1/trace/{id}.
type SpanData struct {
	Name     string         `json:"name"`
	Kind     string         `json:"kind,omitempty"`
	Start    int64          `json:"start_unix_nano"`
	Duration int64          `json:"duration_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanData     `json:"children,omitempty"`
}

// Data snapshots the span subtree. Safe to call while the tree is still
// being built; unfinished spans report their elapsed time so far. A nil
// span reports the zero SpanData.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	d := SpanData{
		Name:     s.name,
		Kind:     s.kind,
		Start:    s.start.UnixNano(),
		Duration: int64(s.dur),
	}
	if !s.ended {
		d.Duration = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	if len(children) > 0 {
		d.Children = make([]SpanData, len(children))
		for i, c := range children {
			d.Children[i] = c.Data()
		}
	}
	return d
}

// walk visits the span subtree depth-first. Used by metric aggregation
// on finish; the tree is read-only by then.
func (s *Span) walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	s.mu.Lock()
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		c.walk(fn)
	}
}

// ctxKey carries the active span through context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sp as the active span. A nil span
// returns ctx unchanged, so the untraced path allocates nothing.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span, or nil — which, by nil-safety,
// turns all downstream instrumentation into no-ops.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// SpanCarrier is the optional interface instrumented layers probe for:
// a transport Proc wrapped by transport.Traced exposes its rank span
// through it, which is how kernel code deep inside internal/core finds
// where to hang stage spans without any signature changes.
type SpanCarrier interface {
	TraceSpan() *Span
}

// Stages tracks a sequence of non-overlapping stage spans under one
// parent: Enter ends the current stage and opens the next, Done ends
// the last. A nil *Stages no-ops throughout, so kernel code calls it
// unconditionally.
type Stages struct {
	parent *Span
	cur    *Span
}

// NewStages returns a stage sequencer under parent (nil parent → nil,
// and every call on the result no-ops).
func NewStages(parent *Span) *Stages {
	if parent == nil {
		return nil
	}
	return &Stages{parent: parent}
}

// StagesOf probes v (typically a transport.Proc) for a carried span and
// returns a stage sequencer under it, or nil when v carries none — the
// single line that turns an untraced kernel invocation into a no-op.
func StagesOf(v any) *Stages {
	if c, ok := v.(SpanCarrier); ok {
		return NewStages(c.TraceSpan())
	}
	return nil
}

// Enter closes the current stage (if any) and opens a new one.
func (st *Stages) Enter(name string) {
	if st == nil {
		return
	}
	st.cur.End()
	st.cur = st.parent.Stage(name)
}

// Done closes the current stage. Idempotent.
func (st *Stages) Done() {
	if st == nil {
		return
	}
	st.cur.End()
	st.cur = nil
}
