package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cacqr/internal/hist"
)

// Label is one metric label pair. Build with L.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry is a small metric registry — counters, scrape-time
// gauge/counter functions, and summary-style histograms built on
// hist.Window — exposable in Prometheus text format and as a flat JSON
// snapshot. All methods are nil-safe: a nil *Registry accepts
// registrations and observations as no-ops (Counter and Histogram
// return nil, themselves valid no-op receivers), which is what keeps
// the untraced, metrics-free configuration branch-free at call sites.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

type family struct {
	name, help, typ string // typ: "counter", "gauge", "summary"

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	val    atomic.Int64
	fn     func() float64 // scrape-time value (GaugeFunc/CounterFunc)
	win    *hist.Window   // summary only
}

// Counter is a monotonically increasing int64 series. Nil-safe.
type Counter struct{ s *series }

// Add increments the counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.s.val.Add(delta)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.s.val.Load()
}

// Histogram is a sliding-window latency summary series (p50/p95/p99
// plus lifetime count and sum), exposed as a Prometheus summary.
// Nil-safe.
type Histogram struct{ s *series }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.s.win.Observe(d)
}

// ObserveSeconds records one duration given in seconds.
func (h *Histogram) ObserveSeconds(sec float64) {
	if h == nil {
		return
	}
	h.s.win.Observe(time.Duration(sec * float64(time.Second)))
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter series for name+labels, creating family
// and series on first use. Help and labels must be used consistently
// for one name.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.family(name, help, "counter").seriesFor(renderLabels(labels), nil, 0)
	return &Counter{s: s}
}

// Histogram returns the summary series for name+labels, creating it on
// first use with the default hist window.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.family(name, help, "summary").seriesFor(renderLabels(labels), nil, hist.DefaultWindow)
	return &Histogram{s: s}
}

// GaugeFunc registers a gauge evaluated at scrape time — how cacqrd
// exposes live serve-layer state (queue depth, in-flight ranks, fuse
// occupancy) without double bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.family(name, help, "gauge").seriesFor(renderLabels(labels), fn, 0)
}

// CounterFunc registers a counter evaluated at scrape time, for
// cumulative counts owned elsewhere (the serve layer's hit/miss
// ledger).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.family(name, help, "counter").seriesFor(renderLabels(labels), fn, 0)
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

func (f *family) seriesFor(labels string, fn func() float64, window int) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels, fn: fn}
		if f.typ == "summary" {
			s.win = hist.New(window)
		}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// renderLabels renders a Prometheus label suffix: {a="x",b="y"},
// sorted by key so the same label set always maps to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices extra pairs into a rendered label suffix — how
// summary quantile labels join the series' own labels.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, counter and gauge samples,
// and summaries as quantile series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		labelOrder := make([]string, len(f.order))
		copy(labelOrder, f.order)
		serieses := make([]*series, len(labelOrder))
		for i, ls := range labelOrder {
			serieses[i] = f.series[ls]
		}
		f.mu.Unlock()
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range serieses {
			switch {
			case s.win != nil:
				sum := s.win.Summary()
				for _, q := range [...]struct {
					q string
					v float64
				}{{"0.5", sum.P50}, {"0.95", sum.P95}, {"0.99", sum.P99}} {
					fmt.Fprintf(w, "%s%s %g\n", f.name, mergeLabels(s.labels, `quantile="`+q.q+`"`), q.v)
				}
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, s.labels, sum.Sum)
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, sum.Count)
			case s.fn != nil:
				fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.fn())
			default:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.val.Load())
			}
		}
	}
}

// Snapshot flattens the registry into a JSON-ready map: scalar series
// keyed by name+labels, summaries as hist.Summary values. This is what
// cacqrd folds into /stats.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		for _, ls := range f.order {
			s := f.series[ls]
			key := f.name + ls
			switch {
			case s.win != nil:
				out[key] = s.win.Summary()
			case s.fn != nil:
				out[key] = s.fn()
			default:
				out[key] = s.val.Load()
			}
		}
		f.mu.Unlock()
	}
	return out
}
