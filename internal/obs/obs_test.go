package obs

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"context"
	"strings"
	"testing"
	"time"
)

// The disabled path is a contract, not a convention: every operation on
// nil tracers, traces, spans, stages, and registries must no-op without
// panicking, because the untraced hot path calls all of them
// unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	trace, ctx := tr.Start(context.Background(), "req")
	if trace != nil {
		t.Fatal("nil tracer produced a trace")
	}
	if trace.ID() != "" || trace.Root() != nil {
		t.Fatal("nil trace leaked identity")
	}
	trace.Finish()
	if _, ok := tr.Get("x"); ok {
		t.Fatal("nil tracer returned a trace")
	}
	if tr.Metrics() != nil {
		t.Fatal("nil tracer returned a registry")
	}

	var sp *Span
	if c := sp.Child("c"); c != nil {
		t.Fatal("nil span produced a child")
	}
	sp.Stage("s").SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	if sp.Duration() != 0 || sp.Attr("k") != nil {
		t.Fatal("nil span carried state")
	}
	if d := sp.Data(); d.Name != "" || len(d.Children) != 0 {
		t.Fatal("nil span produced data")
	}

	var st *Stages
	st.Enter("a")
	st.Done()
	if got := StagesOf(42); got != nil {
		t.Fatal("StagesOf on a non-carrier returned a sequencer")
	}

	if got := FromContext(ctx); got != nil {
		t.Fatal("untraced context carried a span")
	}
	if got := ContextWith(ctx, nil); got != ctx {
		t.Fatal("ContextWith(nil) should return ctx unchanged")
	}

	var reg *Registry
	reg.Counter("c", "h").Add(1)
	reg.Histogram("h", "h").Observe(time.Second)
	reg.GaugeFunc("g", "h", func() float64 { return 1 })
	reg.WritePrometheus(&strings.Builder{})
	if reg.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
}

func TestTraceLifecycle(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	trace, ctx := tr.Start(context.Background(), "factorize")
	if trace == nil || trace.ID() == "" {
		t.Fatal("default tracer should sample every request")
	}
	root := FromContext(ctx)
	if root == nil || root != trace.Root() {
		t.Fatal("ctx does not carry the root span")
	}
	s1 := root.Stage("plan")
	s1.SetBool("cache_hit", true)
	time.Sleep(time.Millisecond)
	s1.End()
	c1 := root.Collective("allreduce")
	c1.SetInt("bytes", 2048)
	c1.End()
	trace.Finish()

	td, ok := tr.Get(trace.ID())
	if !ok {
		t.Fatalf("finished trace %s not retained", trace.ID())
	}
	if len(td.Root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(td.Root.Children))
	}
	plan := td.Root.Children[0]
	if plan.Name != "plan" || plan.Kind != KindStage {
		t.Fatalf("first child = %+v", plan)
	}
	if plan.Duration < int64(time.Millisecond) {
		t.Fatalf("plan stage duration %dns, want ≥ 1ms", plan.Duration)
	}
	if plan.Attrs["cache_hit"] != true {
		t.Fatalf("plan attrs = %v", plan.Attrs)
	}
	if td.Root.Duration < plan.Duration {
		t.Fatal("root shorter than its child")
	}

	// The finished tree must have aggregated into the registry.
	var b strings.Builder
	tr.Metrics().WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		`cacqr_stage_seconds{stage="plan",quantile="0.5"}`,
		`cacqr_collectives_total{op="allreduce"} 1`,
		`cacqr_collective_payload_bytes_total{op="allreduce"} 2048`,
		"# TYPE cacqr_stage_seconds summary",
		"cacqr_stage_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSampling(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleEvery: 3})
	sampled := 0
	for i := 0; i < 9; i++ {
		trace, _ := tr.Start(context.Background(), "r")
		if trace != nil {
			sampled++
			trace.Finish()
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 at 1-in-3", sampled)
	}
	off := NewTracer(TracerOptions{SampleEvery: -1})
	if trace, _ := off.Start(context.Background(), "r"); trace != nil {
		t.Fatal("negative sampling still traced")
	}
}

func TestRetentionRingBounded(t *testing.T) {
	tr := NewTracer(TracerOptions{Retain: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		trace, _ := tr.Start(context.Background(), "r")
		trace.Finish()
		ids = append(ids, trace.ID())
	}
	if got := tr.TraceIDs(); len(got) != 2 || got[0] != ids[3] || got[1] != ids[4] {
		t.Fatalf("ring = %v, want last two of %v", got, ids)
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := tr.Get(ids[4]); !ok {
		t.Fatal("latest trace not retrievable")
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(TracerOptions{MaxSpans: 4})
	trace, _ := tr.Start(context.Background(), "r")
	root := trace.Root()
	made := 0
	for i := 0; i < 10; i++ {
		if c := root.Child("c"); c != nil {
			made++
			c.End()
		}
	}
	if made != 3 { // root consumed 1 of the 4
		t.Fatalf("made %d children under a 4-span cap, want 3", made)
	}
	trace.Finish()
	td, _ := tr.Get(trace.ID())
	if td.DroppedSpans != 7 {
		t.Fatalf("dropped %d, want 7", td.DroppedSpans)
	}
}

type fakeCarrier struct{ sp *Span }

func (f fakeCarrier) TraceSpan() *Span { return f.sp }

func TestStagesSequencing(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	trace, _ := tr.Start(context.Background(), "r")
	st := StagesOf(fakeCarrier{sp: trace.Root()})
	if st == nil {
		t.Fatal("carrier with span produced nil stages")
	}
	st.Enter("a")
	st.Enter("b")
	st.Done()
	st.Done() // idempotent
	trace.Finish()
	td, _ := tr.Get(trace.ID())
	if n := len(td.Root.Children); n != 2 {
		t.Fatalf("stages produced %d children, want 2", n)
	}
	for i, name := range []string{"a", "b"} {
		if c := td.Root.Children[i]; c.Name != name || c.Kind != KindStage {
			t.Fatalf("child %d = %+v", i, c)
		}
	}
	if StagesOf(fakeCarrier{}) != nil {
		t.Fatal("carrier without span should yield nil stages")
	}
}

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", L("variant", "cqr2"), L("hit", "true")).Add(2)
	r.Counter("reqs_total", "requests", L("hit", "true"), L("variant", "cqr2")).Add(1)
	r.GaugeFunc("depth", "queue depth", func() float64 { return 7 })
	r.Histogram("lat", "latency").Observe(250 * time.Millisecond)

	// Label order must not fork series.
	if got := r.Counter("reqs_total", "requests", L("variant", "cqr2"), L("hit", "true")).Value(); got != 3 {
		t.Fatalf("series forked by label order: %d", got)
	}
	snap := r.Snapshot()
	if snap[`reqs_total{hit="true",variant="cqr2"}`] != int64(3) {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["depth"] != 7.0 {
		t.Fatalf("gauge snapshot = %v", snap["depth"])
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{hit="true",variant="cqr2"} 3`,
		"# TYPE depth gauge",
		"depth 7",
		`lat{quantile="0.99"} 0.25`,
		"lat_count 1",
		"lat_sum 0.25",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// The gated perf pair serve-submit-traced/untraced guards the request
// path; this benchmark pins the micro contract it rests on — a nil
// span is nanoseconds, no allocation.
func BenchmarkNilSpanOverhead(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sp.Stage("plan")
		c.SetBool("cache_hit", true)
		c.End()
	}
}
