package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"runtime/trace"
	"sync"
	"sync/atomic"
)

// Defaults for TracerOptions zero values.
const (
	// DefaultRetain is how many finished traces the ring keeps for
	// /v1/trace/{id}.
	DefaultRetain = 64
	// DefaultMaxSpans caps the spans of one trace.
	DefaultMaxSpans = 4096
)

// TracerOptions configure NewTracer. The zero value samples every
// request, retains DefaultRetain finished traces, caps each at
// DefaultMaxSpans spans, and aggregates into a private Registry.
type TracerOptions struct {
	// SampleEvery traces 1 in N requests (0 or 1 = every request;
	// negative = none, though metrics derived outside traces still
	// flow). Untraced requests return a nil Trace from Start — free by
	// nil-safety.
	SampleEvery int
	// Retain bounds the finished-trace ring (0 = DefaultRetain).
	Retain int
	// MaxSpans bounds each trace's span count (0 = DefaultMaxSpans).
	MaxSpans int
	// Metrics receives the aggregated series (nil = a fresh Registry,
	// reachable via Tracer.Metrics).
	Metrics *Registry
}

// Tracer samples requests into bounded span trees and aggregates
// finished trees into its metrics Registry. All methods are nil-safe:
// a nil *Tracer is the disabled tracer, and every operation on it (and
// on the nil Traces it hands out) is a no-op.
type Tracer struct {
	sampleEvery int
	maxSpans    int
	metrics     *Registry

	seq      atomic.Int64 // sampling counter
	idSeq    atomic.Int64
	idPrefix string

	mu     sync.Mutex
	retain int
	ring   []*Trace // oldest first
	byID   map[string]*Trace
}

// Trace is one sampled request: a root span plus the runtime/trace task
// covering it. Nil-safe throughout.
type Trace struct {
	id     string
	root   *Span
	limit  *spanLimit
	task   *trace.Task
	tracer *Tracer
}

// NewTracer builds a Tracer.
func NewTracer(o TracerOptions) *Tracer {
	if o.Retain <= 0 {
		o.Retain = DefaultRetain
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = DefaultMaxSpans
	}
	if o.Metrics == nil {
		o.Metrics = NewRegistry()
	}
	var pfx [4]byte
	rand.Read(pfx[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	return &Tracer{
		sampleEvery: o.SampleEvery,
		maxSpans:    o.MaxSpans,
		metrics:     o.Metrics,
		idPrefix:    hex.EncodeToString(pfx[:]),
		retain:      o.Retain,
		byID:        make(map[string]*Trace, o.Retain),
	}
}

// Metrics returns the tracer's registry (nil for a nil tracer — itself
// a valid, no-op Registry receiver).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Start samples one request. When sampled it returns the new Trace and
// a ctx carrying the root span (so downstream layers find it with
// FromContext); otherwise — nil tracer, negative sampling, or this
// request not being the 1-in-N — it returns (nil, ctx) unchanged.
func (t *Tracer) Start(ctx context.Context, name string) (*Trace, context.Context) {
	if t == nil || t.sampleEvery < 0 {
		return nil, ctx
	}
	if n := t.seq.Add(1); t.sampleEvery > 1 && (n-1)%int64(t.sampleEvery) != 0 {
		return nil, ctx
	}
	tr := &Trace{
		id:     fmt.Sprintf("%s-%06x", t.idPrefix, t.idSeq.Add(1)),
		limit:  &spanLimit{left: t.maxSpans},
		tracer: t,
	}
	if trace.IsEnabled() {
		var tctx context.Context
		tctx, tr.task = trace.NewTask(ctx, name)
		ctx = tctx
	}
	tr.limit.take() // the root span counts against the budget
	tr.root = newSpan(name, "", tr.limit)
	tr.root.SetStr("trace_id", tr.id)
	return tr, ContextWith(ctx, tr.root)
}

// ID returns the trace's identifier ("" for nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Root returns the trace's root span (nil for nil).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Finish ends the root span and runtime/trace task, folds the tree into
// the tracer's metrics, and retains the trace for /v1/trace/{id}.
// No-op on nil.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.root.End()
	if tr.task != nil {
		tr.task.End()
	}
	t := tr.tracer
	t.metrics.aggregate(tr.root)
	t.mu.Lock()
	if len(t.ring) >= t.retain {
		evict := t.ring[0]
		t.ring = t.ring[1:]
		delete(t.byID, evict.id)
	}
	t.ring = append(t.ring, tr)
	t.byID[tr.id] = tr
	t.mu.Unlock()
}

// TraceData is the JSON-ready form of one retained trace.
type TraceData struct {
	ID           string   `json:"id"`
	Root         SpanData `json:"root"`
	DroppedSpans int64    `json:"dropped_spans,omitempty"`
}

// Get returns a retained trace by ID.
func (t *Tracer) Get(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	tr, ok := t.byID[id]
	t.mu.Unlock()
	if !ok {
		return TraceData{}, false
	}
	return TraceData{ID: tr.id, Root: tr.root.Data(), DroppedSpans: tr.limit.droppedCount()}, true
}

// TraceIDs lists the retained trace IDs, oldest first.
func (t *Tracer) TraceIDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, len(t.ring))
	for i, tr := range t.ring {
		ids[i] = tr.id
	}
	return ids
}

// aggregate folds one finished span tree into the registry's series:
// stage spans into per-stage latency summaries, collective spans into
// per-op count/byte counters, rank spans into wire-byte totals, and the
// root into the end-to-end latency summary.
func (r *Registry) aggregate(root *Span) {
	if r == nil || root == nil {
		return
	}
	r.Histogram("cacqr_request_trace_seconds",
		"End-to-end latency of traced requests.").ObserveSeconds(root.Duration().Seconds())
	root.walk(func(s *Span) {
		switch s.kind {
		case KindStage:
			r.Histogram("cacqr_stage_seconds",
				"Wall time per pipeline stage of traced requests.",
				L("stage", s.name)).ObserveSeconds(s.Duration().Seconds())
		case KindCollective:
			r.Counter("cacqr_collectives_total",
				"Collective operations observed by traced requests.",
				L("op", s.name)).Add(1)
			if b, ok := s.Attr("bytes").(int64); ok {
				r.Counter("cacqr_collective_payload_bytes_total",
					"Payload bytes through collectives of traced requests.",
					L("op", s.name)).Add(b)
			}
		case KindRank:
			if b, ok := s.Attr("bytes").(int64); ok {
				r.Counter("cacqr_wire_bytes_total",
					"Wire bytes attributed to ranks of traced requests.").Add(b)
			}
		}
	})
}
