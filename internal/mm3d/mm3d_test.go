package mm3d

import (
	"fmt"
	"testing"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// runCube executes body on an e³-rank cube.
func runCube(t *testing.T, e int, body func(p *simmpi.Proc, cb *grid.Cube) error) *simmpi.Stats {
	t.Helper()
	st, err := simmpi.RunWithOptions(e*e*e, simmpi.Options{Timeout: 60 * time.Second}, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), e)
		if err != nil {
			return err
		}
		return body(p, cb)
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// localOf extracts the cyclic block of g for this cube rank.
func localOf(g *lin.Matrix, cb *grid.Cube) (*lin.Matrix, error) {
	d, err := dist.FromGlobal(g, cb.E, cb.E, cb.Y, cb.X)
	if err != nil {
		return nil, err
	}
	return d.Local, nil
}

func TestMultiplyMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ e, m, n, k int }{
		{1, 4, 4, 4},
		{2, 8, 8, 8},
		{2, 16, 8, 4},
		{2, 6, 4, 10},
		{4, 16, 16, 16},
	} {
		t.Run(fmt.Sprintf("e%d_%dx%dx%d", tc.e, tc.m, tc.n, tc.k), func(t *testing.T) {
			a := lin.RandomMatrix(tc.m, tc.n, 1)
			b := lin.RandomMatrix(tc.n, tc.k, 2)
			want := lin.MatMul(a, b)
			runCube(t, tc.e, func(p *simmpi.Proc, cb *grid.Cube) error {
				al, err := localOf(a, cb)
				if err != nil {
					return err
				}
				bl, err := localOf(b, cb)
				if err != nil {
					return err
				}
				cl, err := Multiply(cb, al, bl, 1)
				if err != nil {
					return err
				}
				wl, err := localOf(want, cb)
				if err != nil {
					return err
				}
				if !cl.EqualWithin(wl, 1e-10) {
					return fmt.Errorf("rank %d: local product mismatch", p.Rank())
				}
				return nil
			})
		})
	}
}

func TestMultiplyTallOperand(t *testing.T) {
	// CA-CQR passes A blocks whose rows are distributed over d ≠ e; MM3D
	// must only care that column distributions line up. Emulate by
	// slicing rows of a tall A across cube-y with a taller local block.
	const e, m, n = 2, 32, 8
	a := lin.RandomMatrix(m, n, 3)
	b := lin.RandomMatrix(n, n, 4)
	want := lin.MatMul(a, b)
	const d = 4 // rows distributed over d process rows, 2 groups of e
	runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
		// Each cube owns group g of row indices ≡ {g·e + Y mod d}; here
		// emulate group 0: rows ≡ cb.Y (mod d).
		ad, err := dist.FromGlobal(a, d, e, cb.Y, cb.X)
		if err != nil {
			return err
		}
		bl, err := localOf(b, cb)
		if err != nil {
			return err
		}
		cl, err := Multiply(cb, ad.Local, bl, 1)
		if err != nil {
			return err
		}
		wd, err := dist.FromGlobal(want, d, e, cb.Y, cb.X)
		if err != nil {
			return err
		}
		if !cl.EqualWithin(wd.Local, 1e-10) {
			return fmt.Errorf("rank %d: tall product mismatch", p.Rank())
		}
		return nil
	})
}

func TestMultiplyInnerDimMismatch(t *testing.T) {
	_, err := simmpi.RunWithOptions(1, simmpi.Options{Timeout: 10 * time.Second}, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), 1)
		if err != nil {
			return err
		}
		_, err = Multiply(cb, lin.NewMatrix(2, 3), lin.NewMatrix(4, 2), 1)
		if err == nil {
			return fmt.Errorf("mismatched inner dims accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyCostFormula(t *testing.T) {
	// Table I: MM3D on P procs for m×n by n×k costs
	//   α: O(log P) — two bcasts (2·log₂E each) + one allreduce (2·log₂E)
	//   β: (mn + nk + mk)/P^{2/3} words (up to the 2× collective factor)
	//   γ: 2mnk/P flops.
	const e, m, n, k = 2, 16, 16, 16
	a := lin.RandomMatrix(m, n, 5)
	b := lin.RandomMatrix(n, k, 6)
	st := runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
		al, err := localOf(a, cb)
		if err != nil {
			return err
		}
		bl, err := localOf(b, cb)
		if err != nil {
			return err
		}
		_, err = Multiply(cb, al, bl, 1)
		return err
	})
	p := e * e * e
	wantFlops := lin.GemmFlops(m, n, k) / int64(p)
	if st.MaxFlops != wantFlops {
		t.Fatalf("per-rank flops %d, want %d", st.MaxFlops, wantFlops)
	}
	// α cost: bcast A (2log e) + bcast B (2log e) + allreduce (2log e).
	wantMsgs := int64(6) // e=2: 2+2+2
	if st.MaxMsgs != wantMsgs {
		t.Fatalf("per-rank α units %d, want %d", st.MaxMsgs, wantMsgs)
	}
	// β cost: 2·(mn + nk)/e² (bcasts) + 2·mk/e² (allreduce).
	wantWords := int64(2 * (m*n + n*k + m*k) / (e * e))
	if st.MaxWords != wantWords {
		t.Fatalf("per-rank β units %d, want %d", st.MaxWords, wantWords)
	}
}

func TestMultiplyTriHalvesFlopCharge(t *testing.T) {
	// MultiplyTri produces the same numbers as Multiply but charges the
	// TRMM rate (half the GEMM flops); communication is identical.
	const e, n = 2, 8
	a := lin.RandomMatrix(n, n, 13)
	b := lin.RandomMatrix(n, n, 14)
	run := func(tri bool) (*simmpi.Stats, *lin.Matrix) {
		var out *lin.Matrix
		st, err := simmpi.RunWithOptions(e*e*e, simmpi.Options{
			Cost:    simmpi.CostParams{Alpha: 1, Beta: 1, Gamma: 1},
			Timeout: 60 * time.Second,
		}, func(p *simmpi.Proc) error {
			cb, err := grid.NewCube(p.World(), e)
			if err != nil {
				return err
			}
			al, err := localOf(a, cb)
			if err != nil {
				return err
			}
			bl, err := localOf(b, cb)
			if err != nil {
				return err
			}
			var c *lin.Matrix
			if tri {
				c, err = MultiplyTri(cb, al, bl, 1)
			} else {
				c, err = Multiply(cb, al, bl, 1)
			}
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				out = c
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st, out
	}
	full, cFull := run(false)
	tri, cTri := run(true)
	if !cFull.EqualWithin(cTri, 0) {
		t.Fatal("MultiplyTri changes the numerical result")
	}
	if tri.MaxFlops*2 != full.MaxFlops {
		t.Fatalf("tri flops %d should be half of %d", tri.MaxFlops, full.MaxFlops)
	}
	if tri.MaxWords != full.MaxWords || tri.MaxMsgs != full.MaxMsgs {
		t.Fatal("MultiplyTri altered communication cost")
	}
}

func TestTransposeMatchesGlobal(t *testing.T) {
	for _, e := range []int{1, 2, 4} {
		g := lin.RandomMatrix(8*e, 8*e, 7)
		gt := g.T()
		runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
			l, err := localOf(g, cb)
			if err != nil {
				return err
			}
			got, err := Transpose(cb, l)
			if err != nil {
				return err
			}
			want, err := localOf(gt, cb)
			if err != nil {
				return err
			}
			if !got.EqualWithin(want, 0) {
				return fmt.Errorf("rank %d: transpose mismatch", p.Rank())
			}
			return nil
		})
	}
}

func TestTransposeRejectsNonSquareLocal(t *testing.T) {
	_, err := simmpi.RunWithOptions(1, simmpi.Options{Timeout: 10 * time.Second}, func(p *simmpi.Proc) error {
		cb, err := grid.NewCube(p.World(), 1)
		if err != nil {
			return err
		}
		if _, err := Transpose(cb, lin.NewMatrix(2, 3)); err == nil {
			return fmt.Errorf("non-square transpose accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyIsReplicatedAcrossSlices(t *testing.T) {
	// After MM3D, all depth-peers must hold identical C blocks.
	const e = 2
	a := lin.RandomMatrix(8, 8, 8)
	b := lin.RandomMatrix(8, 8, 9)
	runCube(t, e, func(p *simmpi.Proc, cb *grid.Cube) error {
		al, err := localOf(a, cb)
		if err != nil {
			return err
		}
		bl, err := localOf(b, cb)
		if err != nil {
			return err
		}
		cl, err := Multiply(cb, al, bl, 1)
		if err != nil {
			return err
		}
		sum, err := cb.ZComm.Allreduce(dist.Flatten(cl))
		if err != nil {
			return err
		}
		// If replicated, the depth-sum is e × the local block.
		for i, v := range dist.Flatten(cl) {
			if diff := sum[i] - float64(e)*v; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("rank %d: slices disagree at %d", p.Rank(), i)
			}
		}
		return nil
	})
}
