// Package mm3d implements the paper's Algorithm 1: a 3D SUMMA variant
// over a cubic processor grid in which both operands live cyclically
// distributed on every 2D slice and the product is Allreduced over the
// depth dimension so each slice again holds a replicated copy. It also
// provides the distributed Transpose used by CFR3D.
package mm3d

import (
	"fmt"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
)

// Multiply computes C = A·B over the cube (Algorithm 1).
//
// aLocal is this rank's cyclic block of A: its columns are A's columns
// distributed over the cube's x dimension; its rows may be any row
// distribution that is identical across slices (CFR3D passes square
// cyclic blocks; CA-CQR passes tall blocks whose rows are spread over the
// full d dimension). bLocal is the cyclic block of B over (y, x). Both
// operands must be replicated on every slice. The result has aLocal's
// rows and bLocal's columns and is replicated on every slice.
//
//	line 1: Bcast A along Π[:, y, z] with root x = z
//	line 2: Bcast B along Π[x, :, z] with root y = z
//	line 3: local multiply
//	line 4: Allreduce along Π[x, y, :]
//
// workers bounds the goroutines the local multiply may use on top of the
// simulated rank's own goroutine (≤ 1 = serial, the default for
// simulated grids where the ranks already saturate the host). It changes
// wall-clock only: results and charged flops are identical.
func Multiply(cb *grid.Cube, aLocal, bLocal *lin.Matrix, workers int) (*lin.Matrix, error) {
	return multiply(cb, aLocal, bLocal, false, workers)
}

// MultiplyTri is Multiply for a triangular right operand (R⁻¹, or a
// triangular × triangular product): identical communication, but the
// local multiply is charged at the TRMM rate (half the GEMM flops).
func MultiplyTri(cb *grid.Cube, aLocal, bLocal *lin.Matrix, workers int) (*lin.Matrix, error) {
	return multiply(cb, aLocal, bLocal, true, workers)
}

func multiply(cb *grid.Cube, aLocal, bLocal *lin.Matrix, triangular bool, workers int) (*lin.Matrix, error) {
	if aLocal.Cols != bLocal.Rows {
		return nil, fmt.Errorf("mm3d: inner dimensions %d and %d differ", aLocal.Cols, bLocal.Rows)
	}
	p := cb.Comm.Proc()

	var aRoot []float64
	if cb.X == cb.Z {
		aRoot = dist.Flatten(aLocal)
	}
	wFlat, err := cb.XComm.Bcast(cb.Z, aRoot)
	if err != nil {
		return nil, err
	}
	w, err := dist.Unflatten(aLocal.Rows, aLocal.Cols, wFlat)
	if err != nil {
		return nil, err
	}

	var bRoot []float64
	if cb.Y == cb.Z {
		bRoot = dist.Flatten(bLocal)
	}
	yFlat, err := cb.YComm.Bcast(cb.Z, bRoot)
	if err != nil {
		return nil, err
	}
	y, err := dist.Unflatten(bLocal.Rows, bLocal.Cols, yFlat)
	if err != nil {
		return nil, err
	}

	if workers < 1 {
		workers = 1
	}
	z := lin.NewMatrix(w.Rows, y.Cols)
	lin.GemmParallel(workers, false, false, 1, w, y, 0, z)
	flops := lin.GemmFlops(w.Rows, y.Cols, w.Cols)
	if triangular {
		// One operand is triangular: a TRMM-class multiply touches half
		// the elements, which is how the paper's 4mn² + (5/3)n³ critical
		// path counts the Q = A·R⁻¹ and R₂·R₁ steps.
		flops /= 2
	}
	if err := p.Compute(flops); err != nil {
		return nil, err
	}

	cFlat, err := cb.ZComm.Allreduce(dist.Flatten(z))
	if err != nil {
		return nil, err
	}
	return dist.Unflatten(z.Rows, z.Cols, cFlat)
}

// Transpose returns this rank's cyclic block of the global transpose of a
// square matrix: the transpose-partner's block, locally transposed (the
// paper's Transpose(A, Π[y, x, z]) step, cost δ(P)(α + n·β)). The operand
// must be square globally, so local blocks are square too.
func Transpose(cb *grid.Cube, local *lin.Matrix) (*lin.Matrix, error) {
	if local.Rows != local.Cols {
		return nil, fmt.Errorf("mm3d: transpose needs square local blocks, got %dx%d", local.Rows, local.Cols)
	}
	got, err := cb.Slice.Transpose(cb.TransposePartner(), dist.Flatten(local))
	if err != nil {
		return nil, err
	}
	m, err := dist.Unflatten(local.Rows, local.Cols, got)
	if err != nil {
		return nil, err
	}
	return m.T(), nil
}
