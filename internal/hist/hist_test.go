package hist

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"sync"
	"testing"
	"time"
)

// Known inputs → exact nearest-rank quantiles. With 1..100 ms observed,
// rank ⌈q·100⌉ is exactly the q-th percentile value in ms.
func TestQuantilesExactOnHundredValues(t *testing.T) {
	w := New(128)
	for i := 1; i <= 100; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	s := w.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	for _, c := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", s.P50, 0.050},
		{"p95", s.P95, 0.095},
		{"p99", s.P99, 0.099},
	} {
		if c.got != c.want {
			t.Fatalf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// Nearest-rank boundary cases on tiny windows: every quantile of a
// single observation is that observation; with two, p50 is the lower.
func TestQuantilesTinyWindows(t *testing.T) {
	w := New(8)
	w.Observe(40 * time.Millisecond)
	s := w.Summary()
	if s.P50 != 0.040 || s.P95 != 0.040 || s.P99 != 0.040 {
		t.Fatalf("single-value summary %+v", s)
	}
	w.Observe(80 * time.Millisecond)
	s = w.Summary()
	if s.P50 != 0.040 {
		t.Fatalf("p50 of {40ms, 80ms} = %v, want 0.040 (rank ⌈0.5·2⌉ = 1)", s.P50)
	}
	if s.P99 != 0.080 {
		t.Fatalf("p99 of {40ms, 80ms} = %v, want 0.080", s.P99)
	}
}

func TestEmptyWindowIsAllZeros(t *testing.T) {
	if s := New(16).Summary(); s != (Summary{}) {
		t.Fatalf("empty window summary %+v, want zero value", s)
	}
}

// The ring must retain only the newest size observations while Count
// keeps the lifetime total.
func TestWindowEvictsOldest(t *testing.T) {
	w := New(4)
	for i := 1; i <= 10; i++ {
		w.Observe(time.Duration(i) * time.Second)
	}
	s := w.Summary()
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
	// Window holds {7, 8, 9, 10}s: p50 is rank 2 = 8s, p99 is rank 4 = 10s.
	if s.P50 != 8 || s.P99 != 10 {
		t.Fatalf("windowed quantiles %+v, want p50=8 p99=10", s)
	}
}

func TestDefaultWindowSize(t *testing.T) {
	w := New(0)
	if len(w.buf) != DefaultWindow {
		t.Fatalf("New(0) window = %d, want %d", len(w.buf), DefaultWindow)
	}
}

// Histogram recording is the hot path of every served request; it must
// be safe under arbitrary concurrency (run with -race in CI).
func TestConcurrentObserveAndSummary(t *testing.T) {
	w := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Observe(time.Duration(g*200+i) * time.Microsecond)
				if i%50 == 0 {
					w.Summary()
				}
			}
		}(g)
	}
	wg.Wait()
	if s := w.Summary(); s.Count != 1600 {
		t.Fatalf("count = %d, want 1600", s.Count)
	}
}
