// Package hist provides the bounded sliding-window latency histograms
// behind serve.Stats: per-key p50/p95/p99 over the most recent
// observations, with strictly bounded memory no matter how long the
// server runs. Quantiles use the nearest-rank definition on the window's
// sorted values — deterministic, exact for known inputs, and free of
// interpolation surprises in tests and dashboards.
package hist

import (
	"sort"
	"sync"
	"time"
)

// DefaultWindow is the per-key observation window when New is handed a
// non-positive size.
const DefaultWindow = 1024

// Window is a concurrency-safe ring buffer of the most recent latency
// observations. The zero value is not usable; create with New.
type Window struct {
	mu    sync.Mutex
	buf   []float64 // seconds; ring of the last len(buf) observations
	next  int       // ring cursor
	fill  int       // populated entries, ≤ len(buf)
	count int64     // total observations ever, for throughput accounting
	sum   float64   // total seconds ever, for Prometheus summary _sum
}

// New returns a window retaining the latest size observations
// (non-positive = DefaultWindow).
func New(size int) *Window {
	if size <= 0 {
		size = DefaultWindow
	}
	return &Window{buf: make([]float64, size)}
}

// Observe records one request latency.
func (w *Window) Observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d.Seconds()
	w.next = (w.next + 1) % len(w.buf)
	if w.fill < len(w.buf) {
		w.fill++
	}
	w.count++
	w.sum += d.Seconds()
	w.mu.Unlock()
}

// Summary is the JSON-ready quantile snapshot surfaced by /stats.
// Quantiles are in seconds; Count is the total number of observations
// ever recorded and Sum their total in seconds (the quantiles cover
// only the retained window, Count/Sum the window's whole lifetime —
// exactly the Prometheus summary-type split).
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary snapshots the window. An empty window reports all zeros.
func (w *Window) Summary() Summary {
	w.mu.Lock()
	n := w.fill
	vals := make([]float64, n)
	copy(vals, w.buf[:n])
	count := w.count
	sum := w.sum
	w.mu.Unlock()
	if n == 0 {
		return Summary{}
	}
	sort.Float64s(vals)
	return Summary{
		Count: count,
		Sum:   sum,
		P50:   nearestRank(vals, 50),
		P95:   nearestRank(vals, 95),
		P99:   nearestRank(vals, 99),
	}
}

// nearestRank returns the pct-percentile of sorted vals by the
// nearest-rank definition: the value at 1-based rank ⌈pct·n/100⌉. The
// rank is computed in integer arithmetic so the boundary cases (n a
// multiple of 100/gcd) cannot be pushed off by float rounding.
func nearestRank(sorted []float64, pct int) float64 {
	n := len(sorted)
	rank := (n*pct + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
