package costmodel

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"testing"
	"testing/quick"
)

func randCost(seed int64) Cost {
	s := uint64(seed)
	next := func() int64 {
		s = s*6364136223846793005 + 1442695040888963407
		return int64(s >> 40)
	}
	return Cost{Msgs: next(), Words: next(), Flops: next(), UpdateFlops: next(), PanelFlops: next()}
}

func TestCostAddCommutative(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := randCost(s1), randCost(s2)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostAddAssociative(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a, b, c := randCost(s1), randCost(s2), randCost(s3)
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostScaleDistributes(t *testing.T) {
	f := func(s1, s2 int64, k uint8) bool {
		a, b := randCost(s1), randCost(s2)
		kk := int64(k)
		return a.Add(b).Scale(kk) == a.Scale(kk).Add(b.Scale(kk))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostTotalFlops(t *testing.T) {
	c := Cost{Flops: 1, UpdateFlops: 2, PanelFlops: 4}
	if c.TotalFlops() != 7 {
		t.Fatalf("TotalFlops = %d", c.TotalFlops())
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCollectiveCostEdgeCases(t *testing.T) {
	// Single-member communicators are free.
	for name, c := range map[string]Cost{
		"bcast":     Bcast(100, 1),
		"reduce":    Reduce(100, 1),
		"allreduce": Allreduce(100, 1),
		"allgather": Allgather(100, 1),
		"transpose": Transpose(100, 1),
	} {
		if c != (Cost{}) {
			t.Fatalf("%s on P=1 not free: %v", name, c)
		}
	}
	// Two members: one doubling round.
	if got := Allgather(10, 2); got.Msgs != 1 || got.Words != 10 {
		t.Fatalf("allgather P=2: %v", got)
	}
	if got := Bcast(10, 2); got.Msgs != 2 || got.Words != 20 {
		t.Fatalf("bcast P=2: %v", got)
	}
}

func TestMachineTimeComposition(t *testing.T) {
	m := Machine{AlphaSec: 1, InjBandwidth: 8, PeakNodeFlops: 1, PPN: 1, Duplex: 1,
		GemmEff: 1, UpdateEff: 0.5, PanelEff: 0.25}
	// β = 8·1/8 = 1 s/word; γ = 1; γ_upd = 2; γ_panel = 4.
	c := Cost{Msgs: 1, Words: 2, Flops: 3, UpdateFlops: 4, PanelFlops: 5}
	want := 1.0 + 2.0 + 3.0 + 8.0 + 20.0
	if got := m.Time(c); got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
}

func TestGFlopsPerNodeUsesHouseholderCount(t *testing.T) {
	m := Machine{AlphaSec: 1, InjBandwidth: 8, PeakNodeFlops: 1, PPN: 1, Duplex: 1,
		GemmEff: 1, UpdateEff: 1, PanelEff: 1}
	// Cost of exactly 1 second.
	c := Cost{Flops: 1}
	gf := m.GFlopsPerNode(c, 100, 10, 2)
	want := (2*100*10*10 - 2*10*10*10/3.0) / 1.0 / 2.0 / 1e9
	if diff := gf - want; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("GFlopsPerNode = %v, want %v", gf, want)
	}
	if m.GFlopsPerNode(Cost{}, 100, 10, 2) != 0 {
		t.Fatal("zero-cost should report 0")
	}
}
