// Package costmodel evaluates the paper's α-β-γ cost analysis exactly.
//
// Every algorithm in this repository charges its communication through the
// simmpi collectives (whose costs are the paper's §II-B butterfly
// formulas) and its computation through the lin flop counters. The
// functions here mirror those charges arithmetically, line by line, so
// that
//
//  1. tests can assert that a real distributed run's measured counters
//     equal the model's prediction (validating the recurrences behind the
//     paper's Tables II–VI), and
//  2. the model, once validated at laptop scale, can be evaluated at the
//     paper's scale (matrices up to 2²⁵×2¹³, 65536 processes) to
//     regenerate every figure on the Stampede2 and Blue Waters machine
//     models.
package costmodel

import "fmt"

// Cost is a per-processor cost vector along the critical path, in the
// paper's units: Msgs α-units (message latencies), Words β-units (words
// moved), and floating point operations. Flops are split into a BLAS-3
// class (matrix multiply-dominated work, runs near the machine's GEMM
// rate) and a panel class (the memory-bound vector work inside
// Householder panel factorizations, which runs at a much lower rate —
// the reason the paper's §IV observes CholeskyQR2 achieving a 2–4×
// higher fraction of peak).
type Cost struct {
	Msgs  int64
	Words int64
	// Flops is the large-block BLAS-3 class (the CQR family's big GEMM,
	// SYRK and TRMM operations).
	Flops int64
	// UpdateFlops is the blocked trailing-update class: BLAS-3 work on
	// nb-wide panels, which runs well below the large-block rate.
	UpdateFlops int64
	// PanelFlops is the memory-bound vector class inside Householder
	// panel factorizations.
	PanelFlops int64
	// IOOps is the disk tier's latency class: sequential I/O operations
	// (panel reads/writes) on the critical path, each paying the
	// machine's δ seek-plus-dispatch latency. Zero for every in-core
	// algorithm; only the out-of-core streaming variants charge it.
	IOOps int64
	// IOBytes is the disk tier's bandwidth class: bytes streamed to or
	// from storage, paid at the machine's disk bandwidth.
	IOBytes int64
}

// Add accumulates o into c.
func (c Cost) Add(o Cost) Cost {
	return Cost{c.Msgs + o.Msgs, c.Words + o.Words,
		c.Flops + o.Flops, c.UpdateFlops + o.UpdateFlops, c.PanelFlops + o.PanelFlops,
		c.IOOps + o.IOOps, c.IOBytes + o.IOBytes}
}

// Scale multiplies every component by k.
func (c Cost) Scale(k int64) Cost {
	return Cost{k * c.Msgs, k * c.Words, k * c.Flops, k * c.UpdateFlops, k * c.PanelFlops,
		k * c.IOOps, k * c.IOBytes}
}

// TotalFlops returns all flop classes combined.
func (c Cost) TotalFlops() int64 { return c.Flops + c.UpdateFlops + c.PanelFlops }

func (c Cost) String() string {
	s := fmt.Sprintf("Cost{α:%d β:%d γ:%d γ_upd:%d γ_panel:%d",
		c.Msgs, c.Words, c.Flops, c.UpdateFlops, c.PanelFlops)
	if c.IOOps != 0 || c.IOBytes != 0 {
		s += fmt.Sprintf(" io:%d ioB:%d", c.IOOps, c.IOBytes)
	}
	return s + "}"
}

// log2Ceil mirrors simmpi's ⌈log₂ p⌉.
func log2Ceil(p int) int64 {
	var l int64
	for v := 1; v < p; v <<= 1 {
		l++
	}
	return l
}

// delta mirrors the paper's δ(x).
func delta(p int) int64 {
	if p <= 1 {
		return 0
	}
	return 1
}

// Collective costs, mirroring internal/simmpi exactly.

// Bcast is T_Bcast(n, P) = 2·log₂P·α + 2n·δ(P)·β.
func Bcast(n int64, p int) Cost {
	if p <= 1 {
		return Cost{}
	}
	return Cost{Msgs: 2 * log2Ceil(p), Words: 2 * n * delta(p)}
}

// Reduce is T_Reduce(n, P) = 2·log₂P·α + 2n·δ(P)·β.
func Reduce(n int64, p int) Cost {
	if p <= 1 {
		return Cost{}
	}
	return Cost{Msgs: 2 * log2Ceil(p), Words: 2 * n * delta(p)}
}

// Allreduce is T_Allreduce(n, P) = 2·log₂P·α + 2n·δ(P)·β.
func Allreduce(n int64, p int) Cost {
	if p <= 1 {
		return Cost{}
	}
	return Cost{Msgs: 2 * log2Ceil(p), Words: 2 * n * delta(p)}
}

// Allgather is T_Allgather(n, P) = log₂P·α + n·δ(P)·β with n the total
// gathered size.
func Allgather(total int64, p int) Cost {
	if p <= 1 {
		return Cost{}
	}
	return Cost{Msgs: log2Ceil(p), Words: total * delta(p)}
}

// Transpose is T_Transp(n, P) = δ(P)·(α + n·β).
func Transpose(n int64, p int) Cost {
	if p <= 1 {
		return Cost{}
	}
	return Cost{Msgs: 1, Words: n}
}
