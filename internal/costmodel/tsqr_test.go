package costmodel

import (
	"testing"
	"time"

	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
	"cacqr/internal/tsqr"
)

func TestTSQRModelMatchesRun(t *testing.T) {
	for _, tc := range []struct{ p, m, n int }{
		{1, 16, 4},
		{2, 16, 4},
		{4, 64, 8},
		{8, 64, 4},
	} {
		a := lin.RandomMatrix(tc.m, tc.n, int64(tc.p))
		st, err := simmpi.RunWithOptions(tc.p, simmpi.Options{
			Cost:    simmpi.CostParams{Alpha: 1, Beta: 1, Gamma: 1},
			Timeout: 60 * time.Second,
		}, func(pr *simmpi.Proc) error {
			local := a.View(pr.Rank()*(tc.m/tc.p), 0, tc.m/tc.p, tc.n).Clone()
			_, _, err := tsqr.Factor(pr.World(), local, tc.m, tc.n, 1)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := TSQR(tc.m, tc.n, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxMsgs != want.Msgs || st.MaxWords != want.Words || st.MaxFlops != want.TotalFlops() {
			t.Fatalf("P=%d %dx%d: run (α=%d β=%d γ=%d) vs model %v",
				tc.p, tc.m, tc.n, st.MaxMsgs, st.MaxWords, st.MaxFlops, want)
		}
	}
}

func TestTSQRVersusCQR2Tradeoff(t *testing.T) {
	// The reference-[4] tradeoff in the tall-skinny regime: TSQR's
	// critical path carries a log P chain of n³-sized factorizations,
	// while 1D-CQR2's redundant CholInv does not grow with P.
	const mloc, n = 1 << 14, 64
	tsqrGrowth := []int64{}
	cqr2Growth := []int64{}
	for _, p := range []int{16, 256, 4096} {
		m := mloc * p
		tq, err := TSQR(m, n, p)
		if err != nil {
			t.Fatal(err)
		}
		cq, err := OneDCQR2(m, n, p)
		if err != nil {
			t.Fatal(err)
		}
		tsqrGrowth = append(tsqrGrowth, tq.TotalFlops())
		cqr2Growth = append(cqr2Growth, cq.TotalFlops())
	}
	if tsqrGrowth[2] <= tsqrGrowth[0] {
		t.Fatal("TSQR critical-path flops should grow with P")
	}
	if cqr2Growth[2] != cqr2Growth[0] {
		t.Fatalf("1D-CQR2 per-rank flops should be P-independent at fixed m/P: %v", cqr2Growth)
	}
}

func TestTSQRValidation(t *testing.T) {
	if _, err := TSQR(10, 4, 3); err == nil {
		t.Fatal("indivisible m accepted")
	}
	if _, err := TSQR(8, 4, 4); err == nil {
		t.Fatal("short local blocks accepted")
	}
}
