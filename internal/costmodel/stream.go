package costmodel

import "fmt"

// Out-of-core sequential TSQR (Demmel–Grigori–Hoemmen–Langou, arXiv
// 0809.2407 §4 / 0808.2664): the tall matrix is streamed as row panels
// of panelRows×n, each factored in core, with the n×n R factors merged
// through a left-deep chain of small stacked QRs. Only one panel plus
// the R-reduction chain is resident, so the footprint is Θ(b·n + k·n²)
// words instead of Θ(m·n) — the algorithm the planner routes to when no
// in-core variant fits the memory budget. The charges here mirror
// internal/stream's driver arithmetically, panel by panel, the same
// contract the in-core rows keep with simmpi's measured counters.

// streamSchedule is the panel decomposition shared by the cost and
// memory models and (by construction) the stream driver: ⌊m/b⌋ full
// panels plus one remainder panel. A remainder shorter than n cannot be
// panel-factored to an n×n R; the driver merges it raw via one
// (n+rem)×n stacked Householder QR.
func streamSchedule(m, n, b int) (full, rem int, err error) {
	if m < 1 || n < 1 || m < n {
		return 0, 0, fmt.Errorf("costmodel: stream shape %dx%d (need m ≥ n ≥ 1)", m, n)
	}
	if b < n {
		return 0, 0, fmt.Errorf("costmodel: stream panel rows %d < n=%d", b, n)
	}
	if b > m {
		b = m
	}
	return m / b, m % b, nil
}

// StreamTSQR prices the out-of-core streaming TSQR of an m×n matrix in
// panels of panelRows rows on one process: per-panel CholeskyQR2 flops,
// the R-merge chain's small Householder QRs, and — when writeQ — the
// coefficient down-sweep plus the second streaming pass that re-reads
// the panels and writes the explicit Q. I/O is charged on the disk
// tier: one IOOp per panel touch and 8·m·n IOBytes per full pass over
// the matrix (one read pass for R only; two reads and one write when Q
// is written back). No communication: α = β = 0.
func StreamTSQR(m, n, panelRows int, writeQ bool) (Cost, error) {
	full, rem, err := streamSchedule(m, n, panelRows)
	if err != nil {
		return Cost{}, err
	}
	nn := int64(n)
	b := int64(panelRows)
	if b > int64(m) {
		b = int64(m)
	}
	cqr2 := func(r int64) int64 { return 4*r*nn*nn + 5*nn*nn*nn/3 }
	hqr := func(r int64) int64 { return 2*r*nn*nn - 2*nn*nn*nn/3 }
	gemm := func(r int64) int64 { return 2 * r * nn * nn }

	panels := int64(full)
	qrPanels := int64(full) // panels that get their own CholeskyQR2
	var c Cost
	c.Flops += qrPanels * cqr2(b)
	if rem > 0 {
		panels++
		if rem >= n {
			qrPanels++
			c.Flops += cqr2(int64(rem))
		} else {
			c.Flops += hqr(nn + int64(rem)) // raw merge of the short tail
		}
	}
	if qrPanels > 1 {
		c.Flops += (qrPanels - 1) * hqr(2*nn) // R-merge chain
	}
	bytesPerPass := 8 * int64(m) * nn
	c.IOOps += panels
	c.IOBytes += bytesPerPass
	if writeQ {
		// Coefficient down-sweep: two n×n GEMMs per chain node (the raw
		// node's bottom block is rem×n).
		if qrPanels > 1 {
			c.Flops += (qrPanels - 1) * 2 * gemm(nn)
		}
		if rem > 0 && rem < n {
			c.Flops += gemm(int64(rem)) + gemm(nn)
		}
		// Second pass: re-read each panel, recompute its Q, apply the
		// n×n coefficient, write the Q panel out (the raw tail's rows
		// were already produced by the down-sweep).
		c.Flops += int64(full) * (cqr2(b) + gemm(b))
		if rem >= n {
			c.Flops += cqr2(int64(rem)) + gemm(int64(rem))
		}
		c.IOOps += 2 * panels
		c.IOBytes += 2 * bytesPerPass
	}
	return c, nil
}

// StreamTSQRMemory returns the modeled peak resident words of the
// streaming driver: the live panel with its factorization workspace
// (~4·b·n: panel, its Q, the CholeskyQR clone, the applied output),
// the R-merge chain's stacked tree factors (≤ 2n² each), the per-panel
// coefficient blocks of the Q down-sweep (n² each), and the small s/R/
// stacked workspaces. This is the bound the driver's own accounting is
// tested against — and the number the planner compares to MemBudget.
func StreamTSQRMemory(m, n, panelRows int) (int64, error) {
	full, rem, err := streamSchedule(m, n, panelRows)
	if err != nil {
		return 0, err
	}
	b := int64(panelRows)
	if b > int64(m) {
		b = int64(m)
	}
	nn := int64(n)
	panels := int64(full)
	if rem > 0 {
		panels++
	}
	tree := int64(0)
	if panels > 1 {
		tree = (panels - 1) * 2 * nn * nn
	}
	return 4*b*nn + tree + panels*nn*nn + 4*nn*nn, nil
}
