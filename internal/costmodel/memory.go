package costmodel

import "fmt"

// Memory-footprint model for the paper's §III-B claim: CA-CQR2's
// per-process footprint is Θ(mn/(dc) + n²/c²) words, and §IV's
// observation that "the parameter c determines the memory footprint
// overhead; the more replication being used (c), the larger the expected
// communication improvement (√c)".

// CACQR2Memory returns the peak per-process words held by the CA-CQR2
// implementation on a c×d×c grid, counted from the buffers the
// implementation actually keeps live:
//
//	A, W (broadcast copy), Q          — 3 · mn/(dc)
//	X, Z (Gram blocks), L, Y, R, MM3D temporaries — 7 · n²/c²
func CACQR2Memory(m, n int, prm CACQRParams) (int64, error) {
	c, d := prm.C, prm.D
	if c < 1 || d < c {
		return 0, fmt.Errorf("costmodel: invalid grid c=%d d=%d", c, d)
	}
	if m%d != 0 || n%c != 0 {
		return 0, fmt.Errorf("costmodel: %dx%d not divisible by grid %dx%d", m, n, d, c)
	}
	mloc := int64(m / d)
	nloc := int64(n / c)
	return 3*mloc*nloc + 7*nloc*nloc, nil
}

// PGEQRFMemory returns the baseline's per-process words: the local
// block-cyclic matrix plus a replicated panel and update workspace.
func PGEQRFMemory(m, n, pr, pc, nb int) (int64, error) {
	if m%pr != 0 || n%nb != 0 {
		return 0, fmt.Errorf("costmodel: pgeqrf shape %dx%d grid %dx%d nb %d", m, n, pr, pc, nb)
	}
	mloc := int64(m / pr)
	nlocMax := int64((n/nb + pc - 1) / pc * nb)
	panel := mloc*int64(nb) + int64(nb*nb)
	return mloc*nlocMax + 2*panel, nil
}
