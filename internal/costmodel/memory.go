package costmodel

import "fmt"

// Memory-footprint model for the paper's §III-B claim: CA-CQR2's
// per-process footprint is Θ(mn/(dc) + n²/c²) words, and §IV's
// observation that "the parameter c determines the memory footprint
// overhead; the more replication being used (c), the larger the expected
// communication improvement (√c)".

// CACQR2Memory returns the peak per-process words held by the CA-CQR2
// implementation on a c×d×c grid, counted from the buffers the
// implementation actually keeps live:
//
//	A, W (broadcast copy), Q          — 3 · mn/(dc)
//	X, Z (Gram blocks), L, Y, R, MM3D temporaries — 7 · n²/c²
func CACQR2Memory(m, n int, prm CACQRParams) (int64, error) {
	c, d := prm.C, prm.D
	if c < 1 || d < c {
		return 0, fmt.Errorf("costmodel: invalid grid c=%d d=%d", c, d)
	}
	if m%d != 0 || n%c != 0 {
		return 0, fmt.Errorf("costmodel: %dx%d not divisible by grid %dx%d", m, n, d, c)
	}
	mloc := int64(m / d)
	nloc := int64(n / c)
	return 3*mloc*nloc + 7*nloc*nloc, nil
}

// OneDCQR2Memory returns the peak per-process words held by the 1D
// CholeskyQR2 implementation (Algorithm 7) on p processors, counted from
// the buffers core.OneDCQR2 keeps live:
//
//	A, Q₁, Q (row blocks)        — 3 · mn/p
//	X, Z, L, Y, R                — 5 · n²
//
// p = 1 is the sequential footprint.
func OneDCQR2Memory(m, n, p int) (int64, error) {
	if p < 1 {
		return 0, fmt.Errorf("costmodel: invalid processor count %d", p)
	}
	if m%p != 0 {
		return 0, fmt.Errorf("costmodel: m=%d not divisible by P=%d", m, p)
	}
	mloc := int64(m / p)
	nn := int64(n)
	return 3*mloc*nn + 5*nn*nn, nil
}

// OneDShiftedCQR3Memory returns the peak per-process words of the
// distributed shifted CholeskyQR3 (core.OneDShiftedCQR3) on p
// processors: the OneDCQR2 footprint plus one extra live row block (the
// shifted pass's Q₁, still held while CQR2 refines it) and the extra R₁
// factor:
//
//	A, Q₁, Q₂, Q (row blocks)   — 4 · mn/p
//	X, Z, L, Y, R₁, R₂₃, R      — 6 · n² (rounded up from CQR2's 5)
func OneDShiftedCQR3Memory(m, n, p int) (int64, error) {
	base, err := OneDCQR2Memory(m, n, p)
	if err != nil {
		return 0, err
	}
	mloc := int64(m / p)
	nn := int64(n)
	return base + mloc*nn + nn*nn, nil
}

// TSQRMemory returns the peak per-process words of the binary-tree TSQR
// (internal/tsqr) on p processors: the local block, its Householder Q,
// and the assembled output block (3 · mn/p), plus the up-sweep path of
// at most log₂p stacked 2n×n tree factors and the small n×n workspaces
// (stacked pair, B, R): (2·log₂p + 5) · n².
func TSQRMemory(m, n, p int) (int64, error) {
	if p < 1 || m%p != 0 || m/p < n {
		return 0, fmt.Errorf("costmodel: tsqr shape m=%d n=%d P=%d", m, n, p)
	}
	mloc := int64(m / p)
	nn := int64(n)
	return 3*mloc*nn + (2*log2Ceil(p)+5)*nn*nn, nil
}

// BlockedTSQRMemory returns the peak per-process words of the blocked
// TSQR (tsqr.BlockedFactor) on p processors: the local block, its
// working copy, and the accumulated Q (3 · mn/p), the replicated n×n R,
// the widest panel's own tree footprint (TSQRMemory of the m×b panel),
// and the BGS2 coefficient strips (3 · b·(n−b): partial, allreduced
// coefficients, and the accumulated off-diagonal R block).
func BlockedTSQRMemory(m, n, b, p int) (int64, error) {
	if b < 1 || n%b != 0 {
		return 0, fmt.Errorf("costmodel: blocked-tsqr panel width %d does not divide n=%d", b, n)
	}
	panel, err := TSQRMemory(m, b, p)
	if err != nil {
		return 0, err
	}
	mloc := int64(m / p)
	nn := int64(n)
	bb := int64(b)
	return 3*mloc*nn + nn*nn + panel + 3*bb*(nn-bb), nil
}

// PanelCACQR2Memory returns the peak per-process words of the panel-wise
// variant: the full local block, its in-place trailing copy, and the
// accumulated Q (3 · mn/(dc)), the n²/c² local R block, plus the widest
// panel factorization's own footprint (CACQR2Memory of the m×b panel)
// and the trailing-product strip (2 · (b/c)·(n/c)).
func PanelCACQR2Memory(m, n, b int, prm CACQRParams) (int64, error) {
	c, d := prm.C, prm.D
	if b < 1 || b%c != 0 || n%b != 0 {
		return 0, fmt.Errorf("costmodel: panel width %d incompatible with c=%d, n=%d", b, c, n)
	}
	panel, err := CACQR2Memory(m, b, prm)
	if err != nil {
		return 0, err
	}
	mloc := int64(m / d)
	nloc := int64(n / c)
	bloc := int64(b / c)
	return 3*mloc*nloc + nloc*nloc + panel + 2*bloc*nloc, nil
}

// PGEQRFMemory returns the baseline's per-process words: the local
// block-cyclic matrix plus a replicated panel and update workspace.
func PGEQRFMemory(m, n, pr, pc, nb int) (int64, error) {
	if m%pr != 0 || n%nb != 0 {
		return 0, fmt.Errorf("costmodel: pgeqrf shape %dx%d grid %dx%d nb %d", m, n, pr, pc, nb)
	}
	mloc := int64(m / pr)
	nlocMax := int64((n/nb + pc - 1) / pc * nb)
	panel := mloc*int64(nb) + int64(nb*nb)
	return mloc*nlocMax + 2*panel, nil
}
