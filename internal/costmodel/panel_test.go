package costmodel

import (
	"testing"
	"time"

	"cacqr/internal/core"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func TestPanelCACQR2ModelMatchesRun(t *testing.T) {
	for _, tc := range []struct{ c, d, m, n, b int }{
		{1, 2, 16, 16, 4},
		{2, 2, 32, 32, 8},
		{2, 4, 32, 16, 8},
	} {
		a := lin.RandomMatrix(tc.m, tc.n, int64(tc.b))
		st, err := simmpi.RunWithOptions(tc.c*tc.d*tc.c, simmpi.Options{
			Cost:    simmpi.CostParams{Alpha: 1, Beta: 1, Gamma: 1},
			Timeout: 240 * time.Second,
		}, func(p *simmpi.Proc) error {
			g, err := grid.New(p.World(), tc.c, tc.d)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, tc.d, tc.c, g.Y, g.X)
			if err != nil {
				return err
			}
			_, _, err = core.PanelCACQR2(g, ad.Local, tc.m, tc.n, tc.b, core.Params{})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := PanelCACQR2(tc.m, tc.n, tc.b, CACQRParams{C: tc.c, D: tc.d})
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxMsgs != want.Msgs || st.MaxWords != want.Words || st.MaxFlops != want.TotalFlops() {
			t.Fatalf("c=%d d=%d %dx%d b=%d: run (α=%d β=%d γ=%d) vs model %v",
				tc.c, tc.d, tc.m, tc.n, tc.b, st.MaxMsgs, st.MaxWords, st.MaxFlops, want)
		}
	}
}

func TestPanelVariantReducesFlopOverhead(t *testing.T) {
	// The §V claim: for near-square matrices, subpanel processing cuts
	// the CholeskyQR2 flop overhead from ~4mn² toward Householder's
	// ~2mn².
	const m, n = 1 << 13, 1 << 13
	prm := CACQRParams{C: 8, D: 8} // P = 512
	plain, err := CACQR2(m, n, prm)
	if err != nil {
		t.Fatal(err)
	}
	panel, err := PanelCACQR2(m, n, n/16, prm)
	if err != nil {
		t.Fatal(err)
	}
	if panel.TotalFlops() >= plain.TotalFlops() {
		t.Fatalf("panel flops %d not below plain %d", panel.TotalFlops(), plain.TotalFlops())
	}
	ratio := float64(panel.TotalFlops()) / float64(plain.TotalFlops())
	if ratio > 0.75 {
		t.Fatalf("panel variant saved only %.0f%%, expected ≥25%%", 100*(1-ratio))
	}
	// The price: more synchronization.
	if panel.Msgs <= plain.Msgs {
		t.Fatalf("panel variant should pay more latency: %d vs %d", panel.Msgs, plain.Msgs)
	}
}

func TestPanelModelValidation(t *testing.T) {
	if _, err := PanelCACQR2(16, 8, 3, CACQRParams{C: 2, D: 2}); err == nil {
		t.Fatal("c∤b accepted")
	}
	if _, err := PanelCACQR2(16, 8, 5, CACQRParams{C: 1, D: 2}); err == nil {
		t.Fatal("b∤n accepted")
	}
}

func TestCACQR2MemoryModel(t *testing.T) {
	// The §IV claim: c controls the memory-footprint overhead — the
	// matrix copies term mn/(dc) = c·mn/P grows linearly in c. Probe it
	// in the tall-skinny regime where that term dominates.
	{
		const m, n, p = 1 << 24, 1 << 6, 1 << 12
		var prev int64
		for c := 1; c <= 16; c *= 2 {
			d := p / (c * c)
			mem, err := CACQR2Memory(m, n, CACQRParams{C: c, D: d})
			if err != nil {
				t.Fatal(err)
			}
			if c > 1 && mem <= prev {
				t.Fatalf("c=%d: memory %d not above c=%d's %d (replication overhead)", c, mem, c/2, prev)
			}
			prev = mem
		}
	}
	// And the footprint formula itself: 3·mn/(dc) + 7·n²/c² words.
	const m, n = 1 << 20, 1 << 12
	mem, err := CACQR2Memory(m, n, CACQRParams{C: 4, D: 256})
	if err != nil {
		t.Fatal(err)
	}
	base := int64(m/256)*int64(n/4)*3 + 7*int64(n/4)*int64(n/4)
	if mem != base {
		t.Fatalf("memory %d, want %d", mem, base)
	}
	if _, err := CACQR2Memory(10, 10, CACQRParams{C: 3, D: 3}); err == nil {
		t.Fatal("indivisible shape accepted")
	}
}

func TestPGEQRFMemoryModel(t *testing.T) {
	mem, err := PGEQRFMemory(1<<20, 1<<12, 1<<10, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if mem <= 0 {
		t.Fatal("empty footprint")
	}
	if _, err := PGEQRFMemory(10, 8, 3, 2, 4); err == nil {
		t.Fatal("indivisible shape accepted")
	}
}
