package costmodel

import "fmt"

// Per-algorithm cost recurrences. Each function mirrors the corresponding
// implementation's charging, line by line; the validation tests assert
// exact equality between these predictions and instrumented runs.

// MM3D is Algorithm 1 on an edge-e cube with local operand blocks
// aR×aC (A) and aC×bC (B): two broadcasts, a local multiply, and a depth
// Allreduce (Table I row MM3D).
func MM3D(aR, aC, bC int64, e int) Cost {
	c := Bcast(aR*aC, e)
	c = c.Add(Bcast(aC*bC, e))
	c = c.Add(Cost{Flops: 2 * aR * bC * aC})
	c = c.Add(Allreduce(aR*bC, e))
	return c
}

// MM3DTri is MM3D with a triangular operand: same communication, TRMM
// flop rate (half of GEMM).
func MM3DTri(aR, aC, bC int64, e int) Cost {
	c := MM3D(aR, aC, bC, e)
	c.Flops -= aR * bC * aC
	return c
}

// CFR3DOptions mirror cfr3d.Options.
type CFR3DOptions struct {
	BaseSize     int
	InverseDepth int
}

// CFR3D is Algorithm 3 on an n×n matrix over an edge-e cube, mirroring
// cfr3d.Factor including its base-size defaulting and rounding.
func CFR3D(n, e int, opts CFR3DOptions) Cost {
	var total Cost
	for _, c := range CFR3DLines(n, e, opts) {
		total = total.Add(c)
	}
	return total
}

// CFR3DLines decomposes the CFR3D cost by Algorithm 3 line, the
// decomposition Table II reports. Keys are "<line>:<operation>"; the
// recursive calls (lines 5 and 11) are folded into the leaf lines they
// expand to.
func CFR3DLines(n, e int, opts CFR3DOptions) map[string]Cost {
	base := opts.BaseSize
	if base <= 0 {
		base = n / (e * e)
		if base < e {
			base = e
		}
	}
	if base%e != 0 && base != n {
		base += e - base%e
	}
	lines := make(map[string]Cost)
	cfr3dRec(n, e, base, 0, opts.InverseDepth, lines)
	return lines
}

func addLine(lines map[string]Cost, key string, c Cost) {
	if lines != nil {
		lines[key] = lines[key].Add(c)
	}
}

func cfr3dRec(n, e, base, depth, invDepth int, lines map[string]Cost) Cost {
	if n <= base || (n/2)%e != 0 || n%2 != 0 {
		// Base case: slice Allgather of the full n×n panel plus the
		// redundant CholInv.
		ag := Allgather(int64(n)*int64(n), e*e)
		ci := Cost{Flops: 2*int64(n)*int64(n)*int64(n)/3 + int64(n)*int64(n)*int64(n)/3}
		addLine(lines, "2:Allgather(base)", ag)
		addLine(lines, "3:CholInv(base)", ci)
		return ag.Add(ci)
	}
	half := int64(n / (2 * e)) // local quadrant edge
	blk := half * half

	c := cfr3dRec(n/2, e, base, depth+1, invDepth, lines) // line 5: A11
	// Lines 6–7: L21 = A21·L11⁻ᵀ, by direct multiply or by blocked
	// substitution when the top invDepth−depth−1 levels of Y11 were not
	// formed (mirrors cfr3d.applyLinvT).
	c = c.Add(applyLinvTCost(half, half, e, invDepth-depth-1, lines))
	t8 := Transpose(blk, e*e)
	addLine(lines, "8:Transpose(L21)", t8)
	m9 := MM3D(half, half, half, e)
	addLine(lines, "9:MM3D(U)", m9)
	ax := Cost{Flops: 2 * blk}
	addLine(lines, "10:axpy(A22-U)", ax)
	c = c.Add(t8).Add(m9).Add(ax)
	c = c.Add(cfr3dRec(n/2, e, base, depth+1, invDepth, lines)) // line 11
	if depth >= invDepth {                                      // lines 12–14
		m12 := MM3D(half, half, half, e)
		addLine(lines, "12:MM3D(L21*Y11)", m12)
		ng := Cost{Flops: blk}
		addLine(lines, "13:negate(Y22)", ng)
		m14 := MM3D(half, half, half, e)
		addLine(lines, "14:MM3D(Y21)", m14)
		c = c.Add(m12).Add(ng).Add(m14)
	}
	return c
}

// applyLinvTCost mirrors cfr3d.applyLinvT for square aR×lRows blocks.
func applyLinvTCost(aR, lRows int64, e, k int, lines map[string]Cost) Cost {
	if k <= 0 || lRows < 2 || lRows%2 != 0 {
		t := Transpose(lRows*lRows, e*e)
		addLine(lines, "6:Transpose(Y11)", t)
		m := MM3D(aR, lRows, lRows, e)
		addLine(lines, "7:MM3D(L21)", m)
		return t.Add(m)
	}
	half := lRows / 2
	c := applyLinvTCost(aR, half, e, k-1, lines)
	t := Transpose(half*half, e*e)
	addLine(lines, "6:Transpose(Y11)", t)
	m := MM3D(aR, half, half, e)
	ax := Cost{Flops: 2 * aR * half}
	addLine(lines, "7:MM3D(L21)", m.Add(ax))
	c = c.Add(t).Add(m).Add(ax)
	return c.Add(applyLinvTCost(aR, half, e, k-1, lines))
}

// CACQRParams mirror core.Params plus the grid shape.
type CACQRParams struct {
	C, D         int
	BaseSize     int
	InverseDepth int
}

// CACQR is Algorithm 8 for an m×n matrix on a c×d×c grid (Table V).
func CACQR(m, n int, prm CACQRParams) (Cost, error) {
	c, d := prm.C, prm.D
	if m%d != 0 || n%c != 0 {
		return Cost{}, fmt.Errorf("costmodel: %dx%d not divisible by grid %dx%d", m, n, d, c)
	}
	mloc := int64(m / d)
	nloc := int64(n / c)

	out := Bcast(mloc*nloc, c)               // line 1
	out.Flops += mloc * nloc * nloc          // line 2 (SYRK rate)
	out = out.Add(Reduce(nloc*nloc, c))      // line 3
	out = out.Add(Allreduce(nloc*nloc, d/c)) // line 4
	out = out.Add(Bcast(nloc*nloc, c))       // line 5 (depth)
	out = out.Add(CFR3D(n, c, CFR3DOptions{  // line 7
		BaseSize: prm.BaseSize, InverseDepth: prm.InverseDepth}))
	out = out.Add(applyRInvCost(mloc, nloc, c, prm.InverseDepth)) // line 8
	out = out.Add(Transpose(nloc*nloc, c*c))                      // R = Lᵀ
	return out, nil
}

// applyRInvCost mirrors core.applyRInv.
func applyRInvCost(aRows, lRows int64, e int, invDepth int) Cost {
	if invDepth <= 0 || lRows < 2 || lRows%2 != 0 {
		c := Transpose(lRows*lRows, e*e)
		return c.Add(MM3DTri(aRows, lRows, lRows, e))
	}
	half := lRows / 2
	c := applyRInvCost(aRows, half, e, invDepth-1)
	c = c.Add(Transpose(half*half, e*e))
	c = c.Add(MM3D(aRows, half, half, e))
	c.Flops += 2 * aRows * half // axpy
	c = c.Add(applyRInvCost(aRows, half, e, invDepth-1))
	return c
}

// CACQR2 is Algorithm 9: two CA-CQR passes plus R = R₂·R₁ over the
// subcube (Table VI).
func CACQR2(m, n int, prm CACQRParams) (Cost, error) {
	one, err := CACQR(m, n, prm)
	if err != nil {
		return Cost{}, err
	}
	nloc := int64(n / prm.C)
	return one.Scale(2).Add(MM3DTri(nloc, nloc, nloc, prm.C)), nil
}

// OneDCQR is Algorithm 6 on a 1D grid of p processors (Table III).
func OneDCQR(m, n, p int) (Cost, error) {
	if m%p != 0 {
		return Cost{}, fmt.Errorf("costmodel: m=%d not divisible by P=%d", m, p)
	}
	mloc, nn := int64(m/p), int64(n)
	c := Cost{Flops: mloc * nn * nn} // line 1: syrk
	c = c.Add(Allreduce(nn*nn, p))   // line 2
	c.Flops += 2*nn*nn*nn/3 + nn*nn*nn/3
	c.Flops += mloc * nn * nn // line 4 (TRMM rate)
	return c, nil
}

// OneDCQR2 is Algorithm 7 (Table IV).
func OneDCQR2(m, n, p int) (Cost, error) {
	one, err := OneDCQR(m, n, p)
	if err != nil {
		return Cost{}, err
	}
	nn := int64(n)
	c := one.Scale(2)
	c.Flops += nn * nn * nn / 3 // R = R₂·R₁
	return c, nil
}

// OneDShiftedCQR3 models core.OneDShiftedCQR3: one shifted CholeskyQR
// pass (whose charges are exactly OneDCQR's — the diagonal shift is O(n)
// uncharged local work on the already-replicated Gram matrix), then
// OneDCQR2 on the result, then the local triangular product R = R₂₃·R₁
// ((1/3)n³ flops). ~1.5× OneDCQR2's cost, stable to κ ≈ 1/ε.
func OneDShiftedCQR3(m, n, p int) (Cost, error) {
	one, err := OneDCQR(m, n, p)
	if err != nil {
		return Cost{}, err
	}
	two, err := OneDCQR2(m, n, p)
	if err != nil {
		return Cost{}, err
	}
	c := one.Add(two)
	nn := int64(n)
	c.Flops += nn * nn * nn / 3 // R = R₂₃·R₁
	return c, nil
}

// PanelCACQR2 models core.PanelCACQR2: panel-wise CA-CQR2 with
// Householder-style trailing updates (the paper's §V subpanel proposal).
// Per panel of width b: one CA-CQR2 of the m×b panel, then the
// Gram-pattern product R_k,rest = Q_kᵀ·A_rest, the MM3D trailing update,
// and a local axpy.
func PanelCACQR2(m, n, b int, prm CACQRParams) (Cost, error) {
	c, d := prm.C, prm.D
	if b < 1 || b%c != 0 || n%b != 0 {
		return Cost{}, fmt.Errorf("costmodel: panel width %d incompatible with c=%d, n=%d", b, c, n)
	}
	if m%d != 0 {
		return Cost{}, fmt.Errorf("costmodel: m=%d not divisible by d=%d", m, d)
	}
	mloc := int64(m / d)
	bloc := int64(b / c)
	var total Cost
	np := n / b
	for k := 0; k < np; k++ {
		pc, err := CACQR2(m, b, prm)
		if err != nil {
			return Cost{}, err
		}
		total = total.Add(pc)
		restLoc := int64(n-(k+1)*b) / int64(c)
		if restLoc == 0 {
			continue
		}
		// gramProduct: Bcast Q strip, local product, reduce chain.
		total = total.Add(Bcast(mloc*bloc, c))
		total.Flops += 2 * bloc * restLoc * mloc
		total = total.Add(Reduce(bloc*restLoc, c))
		total = total.Add(Allreduce(bloc*restLoc, d/c))
		total = total.Add(Bcast(bloc*restLoc, c))
		// Trailing update.
		total = total.Add(MM3D(mloc, bloc, restLoc, c))
		total.Flops += 2 * mloc * restLoc
	}
	return total, nil
}

// TSQR models the binary-tree Tall-Skinny QR with explicit Q formation
// (internal/tsqr) on a 1D grid of p processors: a local Householder QR,
// log₂p up-sweep rounds (each a 2n×n QR on the survivor), the matching
// down-sweep (two n³ multiplies per level on the survivor), an R
// broadcast, and the final local Q assembly. The returned cost is the
// busiest rank's (rank 0, which participates in every tree level) —
// exactly the per-rank maximum the runtime measures.
func TSQR(m, n, p int) (Cost, error) {
	if m%p != 0 || m/p < n {
		return Cost{}, fmt.Errorf("costmodel: tsqr shape m=%d n=%d P=%d", m, n, p)
	}
	nn := int64(n)
	mloc := int64(m / p)
	hhQR := func(rows int64) int64 { return 2*rows*nn*nn - 2*nn*nn*nn/3 }

	levels := log2Ceil(p)
	c := Cost{Flops: hhQR(mloc)}
	// Up-sweep recv + down-sweep send on rank 0, one of each per level.
	c.Msgs += 2 * levels
	c.Words += 2 * levels * nn * nn
	c.Flops += levels * (hhQR(2*nn) + 2*2*nn*nn*nn)
	// R broadcast.
	c = c.Add(Bcast(nn*nn, p))
	// Final Q assembly.
	c.Flops += 2 * mloc * nn * nn
	return c, nil
}

// BlockedTSQR models tsqr.BlockedFactor on a 1D grid of p processors:
// per width-b panel, one reduction-tree TSQR of the m×b panel (the TSQR
// recurrence above, which is the busiest rank's cost), then — for the
// trailing columns — two BGS2 reorthogonalization passes, each a local
// b×rest projection (2·(m/p)·b·rest flops), an Allreduce of the b·rest
// coefficient block, and the local rank-b update (2·(m/p)·rest·b flops).
// Mirrors the implementation's charges exactly, so e2e runs measure this
// prediction plus only the final Q gather.
func BlockedTSQR(m, n, b, p int) (Cost, error) {
	if b < 1 || n%b != 0 {
		return Cost{}, fmt.Errorf("costmodel: blocked-tsqr panel width %d does not divide n=%d", b, n)
	}
	if m%p != 0 || m/p < b {
		return Cost{}, fmt.Errorf("costmodel: blocked-tsqr shape m=%d b=%d P=%d", m, b, p)
	}
	mloc := int64(m / p)
	var c Cost
	np := n / b
	for k := 0; k < np; k++ {
		pc, err := TSQR(m, b, p)
		if err != nil {
			return Cost{}, err
		}
		c = c.Add(pc)
		rest := int64(n - (k+1)*b)
		if rest == 0 {
			continue
		}
		// Two BGS2 passes: project, Allreduce, update.
		c.Flops += 2 * (2 * int64(b) * rest * mloc)
		c = c.Add(Allreduce(int64(b)*rest, p).Scale(2))
		c.Flops += 2 * (2 * mloc * rest * int64(b))
	}
	return c, nil
}

// PGEQRF models the ScaLAPACK baseline's critical path on a pr×pc grid
// with panel width nb, mirroring internal/pgeqrf: per panel, the column
// factorization's 2 allreduces per column plus the T-formation allreduce
// (column communicator), the V/T row broadcast, and the trailing-update
// allreduce. Panel flop work (vector-level, memory bound) is charged to
// the PanelFlops class; blocked trailing updates to the BLAS-3 class.
//
// Because panels rotate around process columns but remain sequentially
// dependent, the critical path sums every panel's cost (unlike the
// uniform CQR algorithms where per-rank counters suffice).
func PGEQRF(m, n, pr, pc, nb int) (Cost, error) {
	if m%pr != 0 || n%nb != 0 {
		return Cost{}, fmt.Errorf("costmodel: pgeqrf shape %dx%d grid %dx%d nb %d", m, n, pr, pc, nb)
	}
	var c Cost
	np := n / nb
	for k := 0; k < np; k++ {
		// Active local height of this panel: rows at or below the
		// diagonal, ≈ (m − k·nb)/pr.
		rows := int64(m-k*nb) / int64(pr)
		if rows < 1 {
			rows = 1
		}
		nb64 := int64(nb)

		// Panel factorization: per column one 2-word allreduce (norm +
		// pivot), and for all but the last column an allreduce of the
		// remaining-column dot products (nb−1−jj words).
		c = c.Add(Allreduce(2, pr).Scale(nb64))
		if nb > 1 {
			c = c.Add(Cost{Msgs: Allreduce(1, pr).Msgs * (nb64 - 1),
				Words: 2 * (nb64 * (nb64 - 1) / 2) * delta(pr)})
		}
		// Vector-level panel flops: ~4·rows per remaining column per
		// reflector ⇒ ~2·rows·nb² total, memory bound.
		c.PanelFlops += 2 * rows * nb64 * nb64
		// T formation: Gram allreduce + small local work.
		c = c.Add(Allreduce(nb64*nb64, pr))
		c.UpdateFlops += 2 * rows * nb64 * nb64 // VᵀV

		// Row broadcast of V, T, taus.
		c = c.Add(Bcast(rows*nb64+nb64*nb64+nb64, pc))

		// Trailing update over the local share of the remaining columns.
		width := int64(n-(k+1)*nb) / int64(pc)
		if width > 0 {
			c.UpdateFlops += 2 * rows * width * nb64 // W = VᵀC
			c = c.Add(Allreduce(nb64*width, pr))
			c.UpdateFlops += 2 * nb64 * nb64 * width // TᵀW
			c.UpdateFlops += 2 * rows * width * nb64 // C −= V·(TᵀW)
		}
	}
	return c, nil
}
