package costmodel

import "testing"

func TestOneDShiftedCQR3Composition(t *testing.T) {
	// The row is one shifted pass (charged exactly as OneDCQR), the
	// CQR2 refinement, and the final (1/3)n³ triangular product —
	// mirroring core.OneDShiftedCQR3's Compute calls line by line.
	const m, n, p = 1024, 64, 8
	got, err := OneDShiftedCQR3(m, n, p)
	if err != nil {
		t.Fatal(err)
	}
	one, err := OneDCQR(m, n, p)
	if err != nil {
		t.Fatal(err)
	}
	two, err := OneDCQR2(m, n, p)
	if err != nil {
		t.Fatal(err)
	}
	want := one.Add(two)
	want.Flops += int64(n) * int64(n) * int64(n) / 3
	if got != want {
		t.Fatalf("OneDShiftedCQR3 = %v, want %v", got, want)
	}
	// ~1.5× CQR2 in flops, identical α scaling class.
	if got.Flops <= two.Flops || got.Flops >= 2*two.Flops {
		t.Fatalf("shifted flops %d not in (1, 2)× CQR2's %d", got.Flops, two.Flops)
	}
	if _, err := OneDShiftedCQR3(100, 64, 8); err == nil {
		t.Fatal("indivisible m accepted")
	}
}

func TestOneDShiftedCQR3Memory(t *testing.T) {
	const m, n, p = 1024, 64, 8
	shifted, err := OneDShiftedCQR3Memory(m, n, p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := OneDCQR2Memory(m, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if extra := shifted - base; extra != int64(m/p)*int64(n)+int64(n)*int64(n) {
		t.Fatalf("shifted footprint adds %d words, want one row block + one n²", extra)
	}
	if _, err := OneDShiftedCQR3Memory(100, 64, 8); err == nil {
		t.Fatal("indivisible m accepted")
	}
}

func TestBlockedTSQRReducesToPlainAtFullWidth(t *testing.T) {
	// b = n is a single panel with no trailing update: the blocked
	// recurrence must collapse to the plain TSQR row exactly.
	const m, n, p = 1024, 64, 8
	blocked, err := BlockedTSQR(m, n, n, p)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := TSQR(m, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if blocked != plain {
		t.Fatalf("BlockedTSQR(b=n) = %v, want plain %v", blocked, plain)
	}
}

func TestBlockedTSQRHandSum(t *testing.T) {
	// Two panels, hand-summed: 2 tree factorizations of the m×b panel
	// plus one BGS2 round (two passes of project + Allreduce + update).
	const m, n, b, p = 256, 32, 16, 4
	got, err := BlockedTSQR(m, n, b, p)
	if err != nil {
		t.Fatal(err)
	}
	panel, err := TSQR(m, b, p)
	if err != nil {
		t.Fatal(err)
	}
	want := panel.Scale(2)
	mloc := int64(m / p)
	rest := int64(n - b)
	want.Flops += 2 * (2 * int64(b) * rest * mloc) // projections
	want = want.Add(Allreduce(int64(b)*rest, p).Scale(2))
	want.Flops += 2 * (2 * mloc * rest * int64(b)) // updates
	if got != want {
		t.Fatalf("BlockedTSQR = %v, want %v", got, want)
	}
}

func TestBlockedTSQRErrors(t *testing.T) {
	if _, err := BlockedTSQR(256, 32, 5, 4); err == nil {
		t.Fatal("b ∤ n accepted")
	}
	if _, err := BlockedTSQR(256, 32, 0, 4); err == nil {
		t.Fatal("b = 0 accepted")
	}
	if _, err := BlockedTSQR(256, 32, 128, 4); err == nil {
		t.Fatal("b > m/p accepted")
	}
	if _, err := BlockedTSQR(100, 32, 16, 8); err == nil {
		t.Fatal("p ∤ m accepted")
	}
	if _, err := BlockedTSQRMemory(256, 32, 5, 4); err == nil {
		t.Fatal("memory: b ∤ n accepted")
	}
}

func TestBlockedTSQRMemoryDominatesPanelTree(t *testing.T) {
	const m, n, b, p = 256, 64, 16, 8
	mem, err := BlockedTSQRMemory(m, n, b, p)
	if err != nil {
		t.Fatal(err)
	}
	panel, err := TSQRMemory(m, b, p)
	if err != nil {
		t.Fatal(err)
	}
	if mem <= panel {
		t.Fatalf("blocked footprint %d not above its panel tree %d", mem, panel)
	}
	// The full-width working set (3 row blocks + R) must be included.
	if floor := 3*int64(m/p)*int64(n) + int64(n)*int64(n); mem < floor {
		t.Fatalf("blocked footprint %d below working-set floor %d", mem, floor)
	}
}
