package costmodel

import (
	"testing"
	"time"

	"cacqr/internal/core"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// TestCACQRPerLineMeasuredMatchesModel is the strongest validation of
// Table V: the implementation annotates each Algorithm 8 step with a
// simmpi phase, and the measured per-phase counters must equal the
// model's per-line decomposition exactly, line by line.
func TestCACQRPerLineMeasuredMatchesModel(t *testing.T) {
	const c, d, m, n = 2, 4, 32, 8
	a := lin.RandomMatrix(m, n, 31)
	st, err := simmpi.RunWithOptions(c*d*c, simmpi.Options{
		Cost:    simmpi.CostParams{Alpha: 1, Beta: 1, Gamma: 1},
		Timeout: 120 * time.Second,
	}, func(p *simmpi.Proc) error {
		g, err := grid.New(p.World(), c, d)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		_, _, err = core.CACQR(g, ad.Local, m, n, core.Params{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Phases) == 0 {
		t.Fatal("no phases recorded")
	}

	mloc, nloc := int64(m/d), int64(n/c)
	want := map[string]Cost{
		"1:Bcast(A)":       Bcast(mloc*nloc, c),
		"2:MM(WtA)":        {Flops: mloc * nloc * nloc},
		"3:Reduce":         Reduce(nloc*nloc, c),
		"4:Allreduce":      Allreduce(nloc*nloc, d/c),
		"5:Bcast(Z,depth)": Bcast(nloc*nloc, c),
		"7:CFR3D":          CFR3D(n, c, CFR3DOptions{}),
		"8:MM3D(Q)+Transp": Transpose(nloc*nloc, c*c).
			Add(MM3DTri(mloc, nloc, nloc, c)).
			Add(Transpose(nloc*nloc, c*c)),
	}
	for label, w := range want {
		got, ok := st.Phases[label]
		if !ok {
			t.Fatalf("phase %q missing (have %v)", label, keys(st.Phases))
		}
		if got.Msgs != w.Msgs || got.Words != w.Words || got.Flops != w.TotalFlops() {
			t.Errorf("%s: measured (α=%d β=%d γ=%d) vs model (α=%d β=%d γ=%d)",
				label, got.Msgs, got.Words, got.Flops, w.Msgs, w.Words, w.TotalFlops())
		}
	}
	if len(st.Phases) != len(want) {
		t.Fatalf("unexpected extra phases: %v", keys(st.Phases))
	}
}

func keys(m map[string]simmpi.Counters) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
