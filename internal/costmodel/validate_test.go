package costmodel

import (
	"math"
	"testing"
	"time"

	"cacqr/internal/cfr3d"
	"cacqr/internal/core"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/mm3d"
	"cacqr/internal/pgeqrf"
	"cacqr/internal/simmpi"
)

// These tests close the loop the reproduction depends on: the analytic
// model (used at paper scale for the figures) must match instrumented
// runs of the real algorithms at laptop scale. For the uniform CQR-family
// algorithms the per-rank maxima are exact; for PGEQRF, whose panels
// rotate, the model predicts the critical-path virtual time within a
// small tolerance.

func runRanks(t *testing.T, np int, body func(p *simmpi.Proc) error) *simmpi.Stats {
	t.Helper()
	st, err := simmpi.RunWithOptions(np, simmpi.Options{
		Cost:    simmpi.CostParams{Alpha: 1, Beta: 1, Gamma: 1},
		Timeout: 240 * time.Second,
	}, body)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMM3DModelMatchesRun(t *testing.T) {
	for _, tc := range []struct{ e, m, n, k int }{{1, 4, 4, 4}, {2, 8, 8, 8}, {2, 16, 8, 4}, {4, 16, 16, 16}} {
		a := lin.RandomMatrix(tc.m, tc.n, 1)
		b := lin.RandomMatrix(tc.n, tc.k, 2)
		st := runRanks(t, tc.e*tc.e*tc.e, func(p *simmpi.Proc) error {
			cb, err := grid.NewCube(p.World(), tc.e)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, tc.e, tc.e, cb.Y, cb.X)
			if err != nil {
				return err
			}
			bd, err := dist.FromGlobal(b, tc.e, tc.e, cb.Y, cb.X)
			if err != nil {
				return err
			}
			_, err = mm3d.Multiply(cb, ad.Local, bd.Local, 1)
			return err
		})
		want := MM3D(int64(tc.m/tc.e), int64(tc.n/tc.e), int64(tc.k/tc.e), tc.e)
		if st.MaxMsgs != want.Msgs || st.MaxWords != want.Words || st.MaxFlops != want.TotalFlops() {
			t.Fatalf("e=%d %dx%dx%d: run (α=%d β=%d γ=%d) vs model %v",
				tc.e, tc.m, tc.n, tc.k, st.MaxMsgs, st.MaxWords, st.MaxFlops, want)
		}
	}
}

func TestCFR3DModelMatchesRun(t *testing.T) {
	// Validates the Table II recurrence structure.
	for _, tc := range []struct{ e, n, base, inv int }{
		{1, 8, 2, 0},
		{2, 8, 2, 0},
		{2, 16, 4, 0},
		{2, 16, 16, 0},
		{2, 32, 4, 1},
		{2, 32, 4, 2},
		{4, 16, 4, 0},
	} {
		a := lin.RandomSPD(tc.n, int64(tc.n))
		st := runRanks(t, tc.e*tc.e*tc.e, func(p *simmpi.Proc) error {
			cb, err := grid.NewCube(p.World(), tc.e)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, tc.e, tc.e, cb.Y, cb.X)
			if err != nil {
				return err
			}
			_, err = cfr3d.Factor(cb, ad.Local, tc.n, cfr3d.Options{BaseSize: tc.base, InverseDepth: tc.inv})
			return err
		})
		want := CFR3D(tc.n, tc.e, CFR3DOptions{BaseSize: tc.base, InverseDepth: tc.inv})
		if st.MaxMsgs != want.Msgs || st.MaxWords != want.Words || st.MaxFlops != want.TotalFlops() {
			t.Fatalf("e=%d n=%d base=%d inv=%d: run (α=%d β=%d γ=%d) vs model %v",
				tc.e, tc.n, tc.base, tc.inv, st.MaxMsgs, st.MaxWords, st.MaxFlops, want)
		}
	}
}

func TestOneDCQRModelMatchesRun(t *testing.T) {
	// Validates Tables III and IV.
	const np, m, n = 4, 64, 8
	a := lin.RandomMatrix(m, n, 3)
	st := runRanks(t, np, func(p *simmpi.Proc) error {
		local := a.View(p.Rank()*(m/np), 0, m/np, n).Clone()
		_, _, err := core.OneDCQR(p.World(), local, m, n, 0)
		return err
	})
	want, err := OneDCQR(m, n, np)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxMsgs != want.Msgs || st.MaxWords != want.Words || st.MaxFlops != want.TotalFlops() {
		t.Fatalf("run (α=%d β=%d γ=%d) vs model %v", st.MaxMsgs, st.MaxWords, st.MaxFlops, want)
	}

	st2 := runRanks(t, np, func(p *simmpi.Proc) error {
		local := a.View(p.Rank()*(m/np), 0, m/np, n).Clone()
		_, _, err := core.OneDCQR2(p.World(), local, m, n, 0)
		return err
	})
	want2, err := OneDCQR2(m, n, np)
	if err != nil {
		t.Fatal(err)
	}
	if st2.MaxMsgs != want2.Msgs || st2.MaxWords != want2.Words || st2.MaxFlops != want2.TotalFlops() {
		t.Fatalf("CQR2 run (α=%d β=%d γ=%d) vs model %v", st2.MaxMsgs, st2.MaxWords, st2.MaxFlops, want2)
	}
}

func TestCACQRModelMatchesRun(t *testing.T) {
	// Validates Tables V and VI across grid shapes and InverseDepth.
	for _, tc := range []struct{ c, d, m, n, inv int }{
		{1, 4, 32, 4, 0},
		{2, 2, 16, 8, 0},
		{2, 4, 32, 8, 0},
		{2, 4, 64, 16, 1},
		{2, 8, 64, 8, 0},
	} {
		a := lin.RandomMatrix(tc.m, tc.n, int64(tc.c+tc.d))
		st := runRanks(t, tc.c*tc.d*tc.c, func(p *simmpi.Proc) error {
			g, err := grid.New(p.World(), tc.c, tc.d)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, tc.d, tc.c, g.Y, g.X)
			if err != nil {
				return err
			}
			_, _, err = core.CACQR(g, ad.Local, tc.m, tc.n, core.Params{InverseDepth: tc.inv})
			return err
		})
		want, err := CACQR(tc.m, tc.n, CACQRParams{C: tc.c, D: tc.d, InverseDepth: tc.inv})
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxMsgs != want.Msgs || st.MaxWords != want.Words || st.MaxFlops != want.TotalFlops() {
			t.Fatalf("c=%d d=%d %dx%d inv=%d: run (α=%d β=%d γ=%d) vs model %v",
				tc.c, tc.d, tc.m, tc.n, tc.inv, st.MaxMsgs, st.MaxWords, st.MaxFlops, want)
		}
	}
}

func TestCACQR2ModelMatchesRun(t *testing.T) {
	for _, tc := range []struct{ c, d, m, n int }{
		{2, 4, 32, 8},
		{2, 2, 16, 8},
	} {
		a := lin.RandomMatrix(tc.m, tc.n, 7)
		st := runRanks(t, tc.c*tc.d*tc.c, func(p *simmpi.Proc) error {
			g, err := grid.New(p.World(), tc.c, tc.d)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, tc.d, tc.c, g.Y, g.X)
			if err != nil {
				return err
			}
			_, _, err = core.CACQR2(g, ad.Local, tc.m, tc.n, core.Params{})
			return err
		})
		want, err := CACQR2(tc.m, tc.n, CACQRParams{C: tc.c, D: tc.d})
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxMsgs != want.Msgs || st.MaxWords != want.Words || st.MaxFlops != want.TotalFlops() {
			t.Fatalf("c=%d d=%d: run (α=%d β=%d γ=%d) vs model %v",
				tc.c, tc.d, st.MaxMsgs, st.MaxWords, st.MaxFlops, want)
		}
	}
}

func TestPGEQRFModelMatchesRunTime(t *testing.T) {
	// Panels rotate around process columns, so validate against the
	// critical-path virtual time rather than per-rank counters.
	for _, tc := range []struct{ pr, pc, m, n, nb int }{
		{2, 2, 32, 16, 4},
		{4, 2, 64, 32, 8},
		{2, 1, 32, 16, 4},
	} {
		a := lin.RandomMatrix(tc.m, tc.n, 11)
		st := runRanks(t, tc.pr*tc.pc, func(p *simmpi.Proc) error {
			g, err := pgeqrf.NewGrid(p.World(), tc.pr, tc.pc)
			if err != nil {
				return err
			}
			am, err := pgeqrf.NewMatrix(g, a, tc.nb)
			if err != nil {
				return err
			}
			_, err = pgeqrf.Factor(am)
			return err
		})
		want, err := PGEQRF(tc.m, tc.n, tc.pr, tc.pc, tc.nb)
		if err != nil {
			t.Fatal(err)
		}
		// With α=β=γ=1 the model time is just the component sum.
		modelTime := float64(want.Msgs + want.Words + want.TotalFlops())
		if rel := math.Abs(st.Time-modelTime) / modelTime; rel > 0.25 {
			t.Fatalf("pr=%d pc=%d %dx%d nb=%d: run time %.0f vs model %.0f (rel %.2f)",
				tc.pr, tc.pc, tc.m, tc.n, tc.nb, st.Time, modelTime, rel)
		}
	}
}

func TestUniformAlgorithmsTimeDecomposition(t *testing.T) {
	// For the uniform CA-CQR2, the virtual time must equal
	// α·Msgs + β·Words + γ·Flops of the per-rank maxima (the same rank
	// attains all three), confirming Time is exactly the paper's cost
	// expression.
	const c, d, m, n = 2, 4, 32, 8
	a := lin.RandomMatrix(m, n, 13)
	st := runRanks(t, c*d*c, func(p *simmpi.Proc) error {
		g, err := grid.New(p.World(), c, d)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		_, _, err = core.CACQR2(g, ad.Local, m, n, core.Params{})
		return err
	})
	sum := float64(st.MaxMsgs + st.MaxWords + st.MaxFlops)
	if math.Abs(st.Time-sum)/sum > 1e-9 {
		t.Fatalf("time %.0f differs from cost decomposition %.0f", st.Time, sum)
	}
}

func TestModelScalesDownCommunicationWithC(t *testing.T) {
	// Table I shape check at fixed P: raising c (more replication)
	// lowers the bandwidth cost for square-ish matrices.
	const m, n = 1 << 14, 1 << 12
	w1, err := CACQR2(m, n, CACQRParams{C: 2, D: 128}) // P = 512
	if err != nil {
		t.Fatal(err)
	}
	w2, err := CACQR2(m, n, CACQRParams{C: 8, D: 8}) // P = 512
	if err != nil {
		t.Fatal(err)
	}
	if w2.Words >= w1.Words {
		t.Fatalf("c=8 words %d not below c=2 words %d", w2.Words, w1.Words)
	}
	if w2.Msgs <= w1.Msgs {
		t.Fatalf("c=8 msgs %d not above c=2 msgs %d (synchronization tradeoff)", w2.Msgs, w1.Msgs)
	}
}
