package costmodel

// Machine models of the two evaluation platforms (§IV-B). Peak rates,
// injection bandwidths, and processes-per-node come from the paper; the
// latency and the two efficiency factors are calibrated so that absolute
// Gigaflops/s/node magnitudes land in the ranges the paper reports (see
// EXPERIMENTS.md). The figure *shapes* — who wins where, crossover
// locations — are driven by the cost ratios, not by this calibration.
type Machine struct {
	Name string
	// AlphaSec is the per-message latency in seconds.
	AlphaSec float64
	// InjBandwidth is the per-node injection bandwidth in bytes/second.
	InjBandwidth float64
	// PeakNodeFlops is the per-node peak in flop/s.
	PeakNodeFlops float64
	// PPN is MPI processes per node.
	PPN int
	// Duplex credits full-duplex links, send/receive overlap, and the
	// pipelining of production MPI large-message collectives (which
	// approach 1·n·β where the butterfly bound charges 2·n·β):
	// effective bandwidth is InjBandwidth·Duplex.
	Duplex float64
	// GemmEff is the achieved fraction of peak for large-block BLAS-3
	// work (the CQR family's operations).
	GemmEff float64
	// UpdateEff is the achieved fraction of peak for nb-wide blocked
	// trailing updates (PGEQRF's BLAS-3 work on skinny panels).
	UpdateEff float64
	// PanelEff is the achieved fraction of peak for the memory-bound
	// vector work inside Householder panels (≪ UpdateEff; this is why
	// the paper's §IV observes CholeskyQR2 running at a 2–4× higher
	// fraction of peak than PGEQRF).
	PanelEff float64
	// DeltaSec is the disk tier's per-I/O-operation latency in seconds
	// (seek plus dispatch of one sequential panel read/write against the
	// parallel filesystem). Only the out-of-core streaming variants
	// charge this class; a machine specified without a disk tier (0)
	// simply prices I/O latency as free.
	DeltaSec float64
	// DiskBandwidth is the per-process sustained sequential bandwidth to
	// storage in bytes/second. 0 means "no disk tier modeled": IOBytes
	// are then priced as free rather than dividing by zero.
	DiskBandwidth float64
}

// Stampede2 is the TACC KNL system: 4200 nodes, >3 Tflop/s/node, Intel
// Omni-Path fat tree at 12.5 GB/s injection, 64 MPI processes per node
// in the paper's runs. Its peak-flops-to-bandwidth ratio is ~8× Blue
// Waters', the architectural trend CA-CQR2 exploits.
var Stampede2 = Machine{
	Name:          "Stampede2",
	AlphaSec:      2.5e-6,
	InjBandwidth:  12.5e9,
	PeakNodeFlops: 3.0e12,
	PPN:           64,
	Duplex:        4,
	GemmEff:       0.50,
	UpdateEff:     0.10,
	PanelEff:      0.010,
	// Lustre /scratch: ~ms-class dispatch latency per panel-sized
	// sequential read, ~2 GB/s sustained per process when streaming.
	DeltaSec:      1e-3,
	DiskBandwidth: 2e9,
}

// BlueWaters is the NCSA Cray XE system: 313 Gflop/s XE nodes, Gemini 3D
// torus at 9.6 GB/s injection, 16 processes per node.
var BlueWaters = Machine{
	Name:          "BlueWaters",
	AlphaSec:      1.5e-6,
	InjBandwidth:  9.6e9,
	PeakNodeFlops: 313e9,
	PPN:           16,
	Duplex:        4,
	GemmEff:       0.45,
	UpdateEff:     0.30,
	PanelEff:      0.030,
	// The older Sonexion scratch: similar latency class, about half
	// Stampede2's streaming bandwidth per process.
	DeltaSec:      1e-3,
	DiskBandwidth: 1e9,
}

// BetaSec is the per-word (8-byte) transfer time per process: node
// injection bandwidth (credited for duplex overlap) is shared by the PPN
// processes.
func (m Machine) BetaSec() float64 {
	return 8.0 * float64(m.PPN) / (m.InjBandwidth * m.Duplex)
}

// GammaSec is the per-flop time per process for large-block BLAS-3 work.
func (m Machine) GammaSec() float64 {
	return float64(m.PPN) / (m.PeakNodeFlops * m.GemmEff)
}

// GammaUpdateSec is the per-flop time for blocked trailing updates.
func (m Machine) GammaUpdateSec() float64 {
	return float64(m.PPN) / (m.PeakNodeFlops * m.UpdateEff)
}

// GammaPanelSec is the per-flop time per process for memory-bound panel
// work.
func (m Machine) GammaPanelSec() float64 {
	return float64(m.PPN) / (m.PeakNodeFlops * m.PanelEff)
}

// Time converts a critical-path cost into seconds on this machine,
// including the disk tier's δ-latency and bandwidth terms when the
// machine models one.
func (m Machine) Time(c Cost) float64 {
	t := float64(c.Msgs)*m.AlphaSec +
		float64(c.Words)*m.BetaSec() +
		float64(c.Flops)*m.GammaSec() +
		float64(c.UpdateFlops)*m.GammaUpdateSec() +
		float64(c.PanelFlops)*m.GammaPanelSec() +
		float64(c.IOOps)*m.DeltaSec
	if m.DiskBandwidth > 0 {
		t += float64(c.IOBytes) / m.DiskBandwidth
	}
	return t
}

// GFlopsPerNode converts a cost into the paper's reported metric: the
// Householder flop count 2mn² − (2/3)n³ divided by execution time and
// node count, in Gflop/s (the extra CholeskyQR2 computation is
// deliberately not credited, matching §IV-C).
func (m Machine) GFlopsPerNode(c Cost, mRows, nCols, nodes int) float64 {
	t := m.Time(c)
	if t <= 0 {
		return 0
	}
	mm, nn := float64(mRows), float64(nCols)
	useful := 2*mm*nn*nn - 2*nn*nn*nn/3
	return useful / t / float64(nodes) / 1e9
}
