// Package pgeqrf is the evaluation baseline: a ScaLAPACK-PGEQRF-style 2D
// parallel Householder QR factorization. It reproduces the communication
// pattern whose cost the paper compares CA-CQR2 against — per panel, a
// sequence of column-communicator allreduces during the panel
// factorization, a row-communicator broadcast of the reflector panel, and
// a column-communicator allreduce in the compact-WY trailing update —
// and performs the classic 2mn² − (2/3)n³ Householder flops.
//
// Layout: the m×n matrix lives on a pr × pc process grid with
// element-cyclic rows (global row i on process row i mod pr) and
// block-cyclic columns of width nb (panel k on process column k mod pc),
// i.e. a ScaLAPACK (MB=1, NB=nb) distribution.
package pgeqrf
