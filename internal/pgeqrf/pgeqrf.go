package pgeqrf

//lint:allow floatcompare exact zero tests are structural fast paths and bit-identity is the kernel contract, not data tolerance checks

import (
	"fmt"
	"math"

	"cacqr/internal/lin"
	"cacqr/internal/transport"
)

// Grid is a pr × pc process grid for the 2D algorithm. Ranks linearize
// as prow + pr·pcol.
type Grid struct {
	PR, PC   int
	Row, Col int
	World    transport.Comm // all pr·pc members
	ColComm  transport.Comm // fixed pcol, varying prow (size pr); index = prow
	RowComm  transport.Comm // fixed prow, varying pcol (size pc); index = pcol
	proc     transport.Proc
}

// NewGrid builds the process grid over the first pr·pc members of comm;
// members beyond that receive nil.
func NewGrid(comm transport.Comm, pr, pc int) (*Grid, error) {
	if pr < 1 || pc < 1 {
		return nil, fmt.Errorf("pgeqrf: invalid grid %dx%d", pr, pc)
	}
	if comm.Size() < pr*pc {
		return nil, fmt.Errorf("pgeqrf: need %d ranks, have %d", pr*pc, comm.Size())
	}
	rank := comm.Index()
	g := &Grid{PR: pr, PC: pc, Row: rank % pr, Col: rank / pr, proc: comm.Proc()}

	all := make([]int, pr*pc)
	for i := range all {
		all[i] = i
	}
	if w := comm.Subgroup(all); w != nil {
		g.World = w
	}
	for pcol := 0; pcol < pc; pcol++ {
		idx := make([]int, pr)
		for prow := 0; prow < pr; prow++ {
			idx[prow] = prow + pr*pcol
		}
		if cm := comm.Subgroup(idx); cm != nil {
			g.ColComm = cm
		}
	}
	for prow := 0; prow < pr; prow++ {
		idx := make([]int, pc)
		for pcol := 0; pcol < pc; pcol++ {
			idx[pcol] = prow + pr*pcol
		}
		if cm := comm.Subgroup(idx); cm != nil {
			g.RowComm = cm
		}
	}
	if rank >= pr*pc {
		return nil, nil
	}
	return g, nil
}

// Matrix is one process's piece of the (MB=1, NB=nb) distributed matrix:
// local rows are the global rows ≡ Row (mod PR); local column groups are
// the width-nb panels ≡ Col (mod PC), stored panel-contiguous.
type Matrix struct {
	G      *Grid
	M, N   int
	NB     int
	Panels []int // global panel indices owned, ascending
	Local  *lin.Matrix
}

// NewMatrix distributes an m×n global matrix (replicated input) over the
// grid. Requires pr | m and nb | n.
func NewMatrix(g *Grid, global *lin.Matrix, nb int) (*Matrix, error) {
	loc, err := LocalBlock(global, g.Row+g.PR*g.Col, g.PR, g.PC, nb)
	if err != nil {
		return nil, err
	}
	return NewMatrixLocal(g, loc, global.Rows, global.Cols, nb)
}

// ownedPanels lists the global panel indices a process column owns under
// the (MB=1, NB=nb) cyclic layout, ascending.
func ownedPanels(n, nb, col, pc int) []int {
	var panels []int
	for k := col; k < n/nb; k += pc {
		panels = append(panels, k)
	}
	return panels
}

// LocalBlock extracts rank's local block of the layout NewMatrix
// distributes: rows ≡ rank%pr (mod pr), width-nb panels ≡ rank/pr
// (mod pc), panel-contiguous. Pure data movement with no grid or
// communicator, so a coordinator can stage per-rank inputs before a
// distributed run.
func LocalBlock(global *lin.Matrix, rank, pr, pc, nb int) (*lin.Matrix, error) {
	m, n := global.Rows, global.Cols
	if m%pr != 0 {
		return nil, fmt.Errorf("pgeqrf: m=%d not divisible by pr=%d", m, pr)
	}
	if nb < 1 || n%nb != 0 {
		return nil, fmt.Errorf("pgeqrf: block size %d does not divide n=%d", nb, n)
	}
	row, col := rank%pr, rank/pr
	panels := ownedPanels(n, nb, col, pc)
	mloc := m / pr
	loc := lin.NewMatrix(mloc, len(panels)*nb)
	for s, k := range panels {
		for li := 0; li < mloc; li++ {
			gi := li*pr + row
			for jj := 0; jj < nb; jj++ {
				loc.Set(li, s*nb+jj, global.At(gi, k*nb+jj))
			}
		}
	}
	return loc, nil
}

// NewMatrixLocal wraps an already-extracted local block (LocalBlock's
// layout) for a rank of the grid — the entry point when the input
// arrives pre-sharded rather than replicated.
func NewMatrixLocal(g *Grid, local *lin.Matrix, m, n, nb int) (*Matrix, error) {
	if m%g.PR != 0 {
		return nil, fmt.Errorf("pgeqrf: m=%d not divisible by pr=%d", m, g.PR)
	}
	if nb < 1 || n%nb != 0 {
		return nil, fmt.Errorf("pgeqrf: block size %d does not divide n=%d", nb, n)
	}
	panels := ownedPanels(n, nb, g.Col, g.PC)
	if local.Rows != m/g.PR || local.Cols != len(panels)*nb {
		return nil, fmt.Errorf("pgeqrf: local block is %dx%d, want %dx%d",
			local.Rows, local.Cols, m/g.PR, len(panels)*nb)
	}
	return &Matrix{G: g, M: m, N: n, NB: nb, Panels: panels, Local: local}, nil
}

// localSlot returns the local panel slot of global panel k, or -1.
func (a *Matrix) localSlot(k int) int {
	if k%a.G.PC != a.G.Col {
		return -1
	}
	s := (k - a.G.Col) / a.G.PC
	if s >= len(a.Panels) {
		return -1
	}
	return s
}

// Factors holds the distributed factored form: R in place of the upper
// triangle and the Householder panel data needed to apply Q.
type Factors struct {
	A    *Matrix
	Taus []float64 // n reflector coefficients, replicated
	// panels holds, per panel k, the active rows of the broadcast V
	// (rows at/below the panel's top, this rank's share) and the
	// compact-WY T factor — what ApplyQT needs.
	panels []storedPanel
}

// storedPanel is the per-rank remnant of one factored panel.
type storedPanel struct {
	vAct *lin.Matrix // (mloc − li0) × nb active reflector rows
	t    *lin.Matrix // nb × nb upper-triangular T
	li0  int         // first active local row
}

// Factor computes the QR factorization in place (the PGEQRF analog).
func Factor(a *Matrix) (*Factors, error) {
	g := a.G
	p := g.proc
	m, n, nb := a.M, a.N, a.NB
	if m < n {
		return nil, fmt.Errorf("pgeqrf: requires m ≥ n, got %dx%d", m, n)
	}
	mloc := a.Local.Rows
	np := n / nb
	taus := make([]float64, n)
	panels := make([]storedPanel, 0, np)

	for k := 0; k < np; k++ {
		owner := k % g.PC
		j0 := k * nb

		// Panel V: full local height, nb columns (zeros above the
		// global diagonal); replicated row-wise after the broadcast.
		var v *lin.Matrix
		var t *lin.Matrix // upper-triangular T of the compact WY form
		panelTaus := make([]float64, nb)

		if g.Col == owner {
			slot := a.localSlot(k)
			if slot < 0 {
				return nil, fmt.Errorf("pgeqrf: internal panel ownership error")
			}
			pan := a.Local.View(0, slot*nb, mloc, nb)
			v = lin.NewMatrix(mloc, nb)
			for jj := 0; jj < nb; jj++ {
				jg := j0 + jj // global pivot row/column
				// Partial squared norm below the diagonal and pivot
				// element, combined in one allreduce.
				li0 := firstLocalRow(jg+1, g.Row, g.PR)
				var sigma float64
				for li := li0; li < mloc; li++ {
					x := pan.At(li, jj)
					sigma += x * x
				}
				buf := []float64{sigma, 0}
				pivotOwner := jg % g.PR
				var pivLi int
				if g.Row == pivotOwner {
					pivLi = jg / g.PR
					buf[1] = pan.At(pivLi, jj)
				}
				red, err := g.ColComm.Allreduce(buf)
				if err != nil {
					return nil, err
				}
				sigma, x0 := red[0], red[1]

				var tau, beta float64
				if sigma == 0 {
					tau, beta = 0, x0
				} else {
					beta = -math.Copysign(math.Sqrt(x0*x0+sigma), x0)
					tau = (beta - x0) / beta
				}
				taus[jg] = tau
				panelTaus[jj] = tau

				// Form v (unit at the pivot) and zero the column below
				// the diagonal; the pivot position receives beta.
				scale := x0 - beta
				for li := li0; li < mloc; li++ {
					if tau != 0 {
						v.Set(li, jj, pan.At(li, jj)/scale)
					}
					pan.Set(li, jj, 0)
				}
				if g.Row == pivotOwner {
					v.Set(pivLi, jj, 1)
					pan.Set(pivLi, jj, beta)
				}
				if err := p.Compute(int64(3 * (mloc - li0))); err != nil {
					return nil, err
				}

				// Apply the reflector to the remaining panel columns:
				// w = vᵀ·pan[:, jj+1:], allreduced over the column comm.
				rest := nb - jj - 1
				if rest > 0 && tau != 0 {
					w := make([]float64, rest)
					for li := li0; li < mloc; li++ {
						vi := v.At(li, jj)
						if vi == 0 {
							continue
						}
						for cc := 0; cc < rest; cc++ {
							w[cc] += vi * pan.At(li, jj+1+cc)
						}
					}
					if g.Row == pivotOwner {
						for cc := 0; cc < rest; cc++ {
							w[cc] += pan.At(pivLi, jj+1+cc)
						}
					}
					wr, err := g.ColComm.Allreduce(w)
					if err != nil {
						return nil, err
					}
					for li := li0; li < mloc; li++ {
						vi := v.At(li, jj)
						if vi == 0 {
							continue
						}
						for cc := 0; cc < rest; cc++ {
							pan.Set(li, jj+1+cc, pan.At(li, jj+1+cc)-tau*vi*wr[cc])
						}
					}
					if g.Row == pivotOwner {
						for cc := 0; cc < rest; cc++ {
							pan.Set(pivLi, jj+1+cc, pan.At(pivLi, jj+1+cc)-tau*wr[cc])
						}
					}
					if err := p.Compute(int64(4 * (mloc - li0 + 1) * rest)); err != nil {
						return nil, err
					}
				}
			}

			// Form T from the allreduced Gram matrix of V (PDLARFT).
			li0p := firstLocalRow(j0, g.Row, g.PR)
			vAct := v.View(li0p, 0, mloc-li0p, nb)
			gram := lin.NewMatrix(nb, nb)
			lin.Gemm(true, false, 1, vAct, vAct, 0, gram)
			if err := p.Compute(lin.GemmFlops(nb, nb, vAct.Rows)); err != nil {
				return nil, err
			}
			gFlat, err := g.ColComm.Allreduce(flatten(gram))
			if err != nil {
				return nil, err
			}
			gramAll := lin.FromSlice(nb, nb, gFlat)
			t = formT(gramAll, panelTaus)
		} else {
			// Non-owner columns participate in nothing during the panel
			// factorization (their column comm is a different group).
		}

		// Broadcast only the active part of V (rows at or below the
		// panel's top row — entries above are zero) plus T and the
		// taus along the row communicator. All members of a process
		// row share the same active height.
		li0k := firstLocalRow(j0, g.Row, g.PR)
		var payload []float64
		if v != nil {
			payload = packPanel(v.View(li0k, 0, mloc-li0k, nb), t, panelTaus, nb)
		}
		got, err := g.RowComm.Bcast(owner, payload)
		if err != nil {
			return nil, err
		}
		vAct, tGot, panelTaus := unpackPanel(got, mloc-li0k, nb)
		t = tGot
		copy(taus[j0:j0+nb], panelTaus)
		panels = append(panels, storedPanel{vAct: vAct, t: t, li0: li0k})

		// Trailing update on locally owned panels to the right, over
		// the active rows only:
		// C ← (I − V·T·Vᵀ)·C via W = Tᵀ·(Vᵀ·C), C ← C − V·W.
		var cols []int
		for _, kk := range a.Panels {
			if kk > k {
				cols = append(cols, kk)
			}
		}
		if len(cols) > 0 {
			width := len(cols) * nb
			rows := mloc - li0k
			c := trailingView(a, cols)
			cAct := c.View(li0k, 0, rows, width)
			w := lin.NewMatrix(nb, width)
			lin.Gemm(true, false, 1, vAct, cAct, 0, w)
			if err := p.Compute(lin.GemmFlops(nb, width, rows)); err != nil {
				return nil, err
			}
			wFlat, err := g.ColComm.Allreduce(flatten(w))
			if err != nil {
				return nil, err
			}
			wAll := lin.FromSlice(nb, width, wFlat)
			tw := lin.NewMatrix(nb, width)
			lin.Gemm(true, false, 1, t, wAll, 0, tw)
			lin.Gemm(false, false, -1, vAct, tw, 1, cAct)
			if err := p.Compute(lin.GemmFlops(nb, width, nb) + lin.GemmFlops(rows, width, nb)); err != nil {
				return nil, err
			}
			writeTrailing(a, cols, c)
		}
	}
	return &Factors{A: a, Taus: taus, panels: panels}, nil
}

// ApplyQT applies Qᵀ to a right-hand side distributed like A's rows: each
// rank passes its m/pr × nrhs block of B (element-cyclic rows) and
// receives the same block of Qᵀ·B. This is PDORMQR's pattern: per panel,
// W = Tᵀ·(VᵀB) with a column-communicator allreduce, then B −= V·W —
// and it is how least-squares solves use the factored form.
func (f *Factors) ApplyQT(b *lin.Matrix) (*lin.Matrix, error) {
	a := f.A
	g := a.G
	if b.Rows != a.Local.Rows {
		return nil, fmt.Errorf("pgeqrf: rhs has %d local rows, want %d", b.Rows, a.Local.Rows)
	}
	out := b.Clone()
	for _, pan := range f.panels {
		rows := pan.vAct.Rows
		if rows == 0 {
			continue
		}
		nb := pan.vAct.Cols
		act := out.View(pan.li0, 0, rows, out.Cols)
		w := lin.NewMatrix(nb, out.Cols)
		lin.Gemm(true, false, 1, pan.vAct, act, 0, w)
		if err := g.proc.Compute(lin.GemmFlops(nb, out.Cols, rows)); err != nil {
			return nil, err
		}
		wFlat, err := g.ColComm.Allreduce(flatten(w))
		if err != nil {
			return nil, err
		}
		wAll := lin.FromSlice(nb, out.Cols, wFlat)
		tw := lin.NewMatrix(nb, out.Cols)
		lin.Gemm(true, false, 1, pan.t, wAll, 0, tw)
		lin.Gemm(false, false, -1, pan.vAct, tw, 1, act)
		if err := g.proc.Compute(lin.GemmFlops(nb, out.Cols, nb) + lin.GemmFlops(rows, out.Cols, nb)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ApplyQ applies Q to a right-hand side distributed like A's rows —
// the inverse of ApplyQT: panels run in reverse order and each applies
// the block reflector I − V·T·Vᵀ (W = T·(VᵀB) instead of Tᵀ·(VᵀB)).
// Applying it to the distributed identity's first n columns forms the
// explicit reduced Q (the PDORGQR pattern), which is how the public
// FactorizePlan entry point turns the factored form into the package's
// (Q, R) contract.
func (f *Factors) ApplyQ(b *lin.Matrix) (*lin.Matrix, error) {
	a := f.A
	g := a.G
	if b.Rows != a.Local.Rows {
		return nil, fmt.Errorf("pgeqrf: rhs has %d local rows, want %d", b.Rows, a.Local.Rows)
	}
	out := b.Clone()
	for i := len(f.panels) - 1; i >= 0; i-- {
		pan := f.panels[i]
		rows := pan.vAct.Rows
		if rows == 0 {
			continue
		}
		nb := pan.vAct.Cols
		act := out.View(pan.li0, 0, rows, out.Cols)
		w := lin.NewMatrix(nb, out.Cols)
		lin.Gemm(true, false, 1, pan.vAct, act, 0, w)
		if err := g.proc.Compute(lin.GemmFlops(nb, out.Cols, rows)); err != nil {
			return nil, err
		}
		wFlat, err := g.ColComm.Allreduce(flatten(w))
		if err != nil {
			return nil, err
		}
		wAll := lin.FromSlice(nb, out.Cols, wFlat)
		tw := lin.NewMatrix(nb, out.Cols)
		lin.Gemm(false, false, 1, pan.t, wAll, 0, tw)
		lin.Gemm(false, false, -1, pan.vAct, tw, 1, act)
		if err := g.proc.Compute(lin.GemmFlops(nb, out.Cols, nb) + lin.GemmFlops(rows, out.Cols, nb)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GatherR assembles the n×n upper-triangular factor on every rank by a
// world allreduce of each process's contributions (a test/output path,
// not part of the timed algorithm).
func (f *Factors) GatherR() (*lin.Matrix, error) {
	a := f.A
	g := a.G
	n, nb := a.N, a.NB
	r := lin.NewMatrix(n, n)
	for s, k := range a.Panels {
		for jj := 0; jj < nb; jj++ {
			gj := k*nb + jj
			for li := 0; li < a.Local.Rows; li++ {
				gi := li*g.PR + g.Row
				if gi <= gj && gi < n {
					r.Set(gi, gj, a.Local.At(li, s*nb+jj))
				}
			}
		}
	}
	flat, err := g.World.Allreduce(flatten(r))
	if err != nil {
		return nil, err
	}
	return lin.FromSlice(n, n, flat), nil
}

// firstLocalRow returns the first local row index whose global row ≥ g0.
func firstLocalRow(g0, row, pr int) int {
	if g0 <= row {
		return 0
	}
	return (g0 - row + pr - 1) / pr
}

// formT builds the nb×nb upper-triangular compact-WY factor from the
// full Gram matrix G = VᵀV and the taus: T[j][j] = tau_j,
// T[0:j, j] = −tau_j · T[0:j, 0:j] · G[0:j, j].
func formT(gram *lin.Matrix, taus []float64) *lin.Matrix {
	nb := len(taus)
	t := lin.NewMatrix(nb, nb)
	for j := 0; j < nb; j++ {
		t.Set(j, j, taus[j])
		for i := 0; i < j; i++ {
			var s float64
			for k := i; k < j; k++ {
				s += t.At(i, k) * gram.At(k, j)
			}
			t.Set(i, j, -taus[j]*s)
		}
	}
	return t
}

func flatten(m *lin.Matrix) []float64 {
	out := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out[i*m.Cols:(i+1)*m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

func packPanel(vAct, t *lin.Matrix, taus []float64, nb int) []float64 {
	out := make([]float64, 0, vAct.Rows*nb+nb*nb+nb)
	out = append(out, flatten(vAct)...)
	out = append(out, flatten(t)...)
	out = append(out, taus...)
	return out
}

// unpackPanel splits a broadcast payload into the active rows of V, the
// T factor, and the taus.
func unpackPanel(data []float64, rows, nb int) (vAct, t *lin.Matrix, taus []float64) {
	vAct = lin.FromSlice(rows, nb, data[:rows*nb])
	t = lin.FromSlice(nb, nb, data[rows*nb:rows*nb+nb*nb])
	taus = append([]float64(nil), data[rows*nb+nb*nb:]...)
	return vAct, t, taus
}

// trailingView copies the locally owned trailing panels into one dense
// working matrix (columns ordered by ascending global panel).
func trailingView(a *Matrix, cols []int) *lin.Matrix {
	nb := a.NB
	c := lin.NewMatrix(a.Local.Rows, len(cols)*nb)
	for i, k := range cols {
		s := a.localSlot(k)
		c.View(0, i*nb, c.Rows, nb).CopyFrom(a.Local.View(0, s*nb, c.Rows, nb))
	}
	return c
}

func writeTrailing(a *Matrix, cols []int, c *lin.Matrix) {
	nb := a.NB
	for i, k := range cols {
		s := a.localSlot(k)
		a.Local.View(0, s*nb, c.Rows, nb).CopyFrom(c.View(0, i*nb, c.Rows, nb))
	}
}
