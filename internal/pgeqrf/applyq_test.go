package pgeqrf

import (
	"fmt"
	"testing"

	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// TestApplyQInvertsApplyQT: Q·(Qᵀ·B) must round-trip B — the two
// application orders are exact inverses up to roundoff, for every
// distributed right-hand side and across grid shapes.
func TestApplyQInvertsApplyQT(t *testing.T) {
	const m, n, nb, nrhs = 64, 16, 4, 3
	a := lin.RandomMatrix(m, n, 31)
	b := lin.RandomMatrix(m, nrhs, 32)
	for _, g := range []struct{ pr, pc int }{{1, 1}, {4, 1}, {2, 2}, {4, 2}} {
		g := g
		t.Run(fmt.Sprintf("%dx%d", g.pr, g.pc), func(t *testing.T) {
			runGrid(t, g.pr, g.pc, func(p *simmpi.Proc, gr *Grid) error {
				am, err := NewMatrix(gr, a, nb)
				if err != nil {
					return err
				}
				f, err := Factor(am)
				if err != nil {
					return err
				}
				mloc := am.Local.Rows
				bLoc := lin.NewMatrix(mloc, nrhs)
				for li := 0; li < mloc; li++ {
					gi := li*gr.PR + gr.Row
					for j := 0; j < nrhs; j++ {
						bLoc.Set(li, j, b.At(gi, j))
					}
				}
				qtb, err := f.ApplyQT(bLoc)
				if err != nil {
					return err
				}
				back, err := f.ApplyQ(qtb)
				if err != nil {
					return err
				}
				if !back.EqualWithin(bLoc, 1e-12) {
					return fmt.Errorf("Q·QᵀB does not round-trip B")
				}
				return nil
			})
		})
	}
}

// TestApplyQFormsExplicitQ: applying Q to the distributed identity's
// first n columns yields the reduced orthonormal factor — Q·R must
// reproduce A and QᵀQ must be the identity, on a genuinely 2D grid.
func TestApplyQFormsExplicitQ(t *testing.T) {
	const m, n, nb, pr, pc = 64, 16, 4, 4, 2
	a := lin.RandomMatrix(m, n, 33)
	runGrid(t, pr, pc, func(p *simmpi.Proc, g *Grid) error {
		am, err := NewMatrix(g, a, nb)
		if err != nil {
			return err
		}
		f, err := Factor(am)
		if err != nil {
			return err
		}
		r, err := f.GatherR()
		if err != nil {
			return err
		}
		mloc := am.Local.Rows
		e := lin.NewMatrix(mloc, n)
		for li := 0; li < mloc; li++ {
			if gi := li*g.PR + g.Row; gi < n {
				e.Set(li, gi, 1)
			}
		}
		qLoc, err := f.ApplyQ(e)
		if err != nil {
			return err
		}
		// Reassemble the global Q from this rank's rows (every process
		// column computes the same rows redundantly).
		q := lin.NewMatrix(m, n)
		for li := 0; li < mloc; li++ {
			gi := li*g.PR + g.Row
			for j := 0; j < n; j++ {
				q.Set(gi, j, qLoc.At(li, j))
			}
		}
		flat, err := g.World.Allreduce(flatten(q))
		if err != nil {
			return err
		}
		qAll := lin.FromSlice(m, n, flat)
		qAll.Scale(1.0 / float64(g.PC)) // PC process columns each contributed
		if p.Rank() != 0 {
			return nil
		}
		if orth := lin.OrthogonalityError(qAll); orth > 1e-13 {
			return fmt.Errorf("explicit Q orthogonality %g", orth)
		}
		if resid := lin.ResidualNorm(a, qAll, r); resid > 1e-13 {
			return fmt.Errorf("explicit Q residual %g", resid)
		}
		return nil
	})
}

// TestApplyQShapeMismatch: a wrong local row count must error, not
// panic.
func TestApplyQShapeMismatch(t *testing.T) {
	const m, n, nb = 32, 8, 4
	a := lin.RandomMatrix(m, n, 35)
	runGrid(t, 2, 1, func(p *simmpi.Proc, g *Grid) error {
		am, err := NewMatrix(g, a, nb)
		if err != nil {
			return err
		}
		f, err := Factor(am)
		if err != nil {
			return err
		}
		if _, err := f.ApplyQ(lin.NewMatrix(am.Local.Rows+1, 2)); err == nil {
			return fmt.Errorf("mismatched rhs accepted")
		}
		return nil
	})
}
