package pgeqrf

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func runGrid(t *testing.T, pr, pc int, body func(p *simmpi.Proc, g *Grid) error) *simmpi.Stats {
	t.Helper()
	st, err := simmpi.RunWithOptions(pr*pc, simmpi.Options{Timeout: 240 * time.Second}, func(p *simmpi.Proc) error {
		g, err := NewGrid(p.World(), pr, pc)
		if err != nil {
			return err
		}
		return body(p, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// signNormalize flips rows of R so diagonals are non-negative, making
// Householder R comparable with the sign-normalized reference.
func signNormalize(r *lin.Matrix) *lin.Matrix {
	out := r.Clone()
	for i := 0; i < out.Rows; i++ {
		if out.At(i, i) < 0 {
			for j := i; j < out.Cols; j++ {
				out.Set(i, j, -out.At(i, j))
			}
		}
	}
	return out
}

func checkAgainstSequential(a *lin.Matrix, f *Factors) error {
	r, err := f.GatherR()
	if err != nil {
		return err
	}
	if !r.IsUpperTriangular(1e-10) {
		return errors.New("R not upper triangular")
	}
	_, rSeq, err := lin.QR(a)
	if err != nil {
		return err
	}
	got := signNormalize(r)
	if !got.EqualWithin(rSeq, 1e-8*(1+lin.MaxAbs(rSeq))) {
		return errors.New("R differs from sequential Householder R")
	}
	return nil
}

func TestFactorMatchesSequentialR(t *testing.T) {
	for _, tc := range []struct{ pr, pc, m, n, nb int }{
		{1, 1, 12, 8, 4},
		{2, 1, 16, 8, 4},
		{1, 2, 16, 8, 4},
		{2, 2, 32, 16, 4},
		{4, 2, 32, 16, 8},
		{2, 2, 24, 12, 2},
		{4, 4, 64, 32, 4},
	} {
		t.Run(fmt.Sprintf("%dx%d_%dx%d_nb%d", tc.pr, tc.pc, tc.m, tc.n, tc.nb), func(t *testing.T) {
			a := lin.RandomMatrix(tc.m, tc.n, int64(tc.m*tc.pr+tc.n))
			runGrid(t, tc.pr, tc.pc, func(p *simmpi.Proc, g *Grid) error {
				am, err := NewMatrix(g, a, tc.nb)
				if err != nil {
					return err
				}
				f, err := Factor(am)
				if err != nil {
					return err
				}
				return checkAgainstSequential(a, f)
			})
		})
	}
}

func TestGramPreservation(t *testing.T) {
	// QᵀQ = I implies RᵀR = AᵀA — an orthogonality check that needs no
	// explicit Q.
	const pr, pc, m, n, nb = 2, 2, 40, 12, 4
	a := lin.RandomMatrix(m, n, 7)
	gram := lin.SyrkNew(a)
	runGrid(t, pr, pc, func(p *simmpi.Proc, g *Grid) error {
		am, err := NewMatrix(g, a, nb)
		if err != nil {
			return err
		}
		f, err := Factor(am)
		if err != nil {
			return err
		}
		r, err := f.GatherR()
		if err != nil {
			return err
		}
		rtr := lin.NewMatrix(n, n)
		lin.Gemm(true, false, 1, r, r, 0, rtr)
		if !rtr.EqualWithin(gram, 1e-9*(1+lin.MaxAbs(gram))) {
			return errors.New("RᵀR ≠ AᵀA: Q not orthogonal")
		}
		return nil
	})
}

func TestFactorFlopsNearHouseholderCount(t *testing.T) {
	// The summed flops must track 2mn² − (2/3)n³ within bookkeeping
	// slack (panel-edge terms), confirming the baseline pays the
	// Householder cost the paper normalizes by.
	const pr, pc, m, n, nb = 2, 2, 64, 32, 8
	a := lin.RandomMatrix(m, n, 9)
	st := runGrid(t, pr, pc, func(p *simmpi.Proc, g *Grid) error {
		am, err := NewMatrix(g, a, nb)
		if err != nil {
			return err
		}
		_, err = Factor(am)
		return err
	})
	want := float64(lin.HouseholderQRFlops(m, n))
	got := float64(st.TotalFlops)
	if got < 0.5*want || got > 2.5*want {
		t.Fatalf("total flops %g implausible vs Householder %g", got, want)
	}
}

func TestCommunicationPattern(t *testing.T) {
	// Per panel: the owner column performs ~2·nb column allreduces; the
	// row bcast moves the V panel. With more process columns the α cost
	// per rank must not grow (panels rotate) while pure 1D column grids
	// skip row bcasts entirely.
	const m, n, nb = 32, 16, 4
	a := lin.RandomMatrix(m, n, 11)
	run := func(pr, pc int) *simmpi.Stats {
		return runGrid(t, pr, pc, func(p *simmpi.Proc, g *Grid) error {
			am, err := NewMatrix(g, a, nb)
			if err != nil {
				return err
			}
			_, err = Factor(am)
			return err
		})
	}
	oneCol := run(4, 1)
	if oneCol.MaxWords == 0 || oneCol.MaxMsgs == 0 {
		t.Fatal("1-column grid should still allreduce over rows")
	}
	twoCol := run(2, 2)
	if twoCol.MaxMsgs == 0 {
		t.Fatal("2D grid lost its messages")
	}
}

func TestRejectsBadShapes(t *testing.T) {
	runGrid(t, 2, 1, func(p *simmpi.Proc, g *Grid) error {
		// m not divisible by pr.
		if _, err := NewMatrix(g, lin.RandomMatrix(7, 4, 1), 2); err == nil {
			return errors.New("indivisible m accepted")
		}
		// nb does not divide n.
		if _, err := NewMatrix(g, lin.RandomMatrix(8, 6, 1), 4); err == nil {
			return errors.New("indivisible nb accepted")
		}
		// m < n.
		am, err := NewMatrix(g, lin.RandomMatrix(4, 8, 1), 4)
		if err != nil {
			return err
		}
		if _, err := Factor(am); err == nil {
			return errors.New("wide matrix accepted")
		}
		return nil
	})
}

func TestNewGridValidation(t *testing.T) {
	_, err := simmpi.RunWithOptions(4, simmpi.Options{Timeout: 10 * time.Second}, func(p *simmpi.Proc) error {
		if _, err := NewGrid(p.World(), 0, 2); err == nil {
			return errors.New("pr=0 accepted")
		}
		if _, err := NewGrid(p.World(), 3, 2); err == nil {
			return errors.New("oversized grid accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// rowBlock extracts the element-cyclic row block of a dense matrix for a
// grid row (the RHS layout ApplyQT expects).
func rowBlock(g *lin.Matrix, pr, row int) *lin.Matrix {
	out := lin.NewMatrix(g.Rows/pr, g.Cols)
	for li := 0; li < out.Rows; li++ {
		for j := 0; j < g.Cols; j++ {
			out.Set(li, j, g.At(li*pr+row, j))
		}
	}
	return out
}

func TestApplyQTRecoversR(t *testing.T) {
	// Qᵀ·A must equal [R; 0] — the defining property of the factored
	// form, and a direct orthogonality check on the implicit Q.
	const pr, pc, m, n, nb = 2, 2, 24, 8, 4
	a := lin.RandomMatrix(m, n, 21)
	runGrid(t, pr, pc, func(p *simmpi.Proc, g *Grid) error {
		am, err := NewMatrix(g, a, nb)
		if err != nil {
			return err
		}
		f, err := Factor(am)
		if err != nil {
			return err
		}
		qtA, err := f.ApplyQT(rowBlock(a, pr, g.Row))
		if err != nil {
			return err
		}
		r, err := f.GatherR()
		if err != nil {
			return err
		}
		for li := 0; li < qtA.Rows; li++ {
			gi := li*pr + g.Row
			for j := 0; j < n; j++ {
				want := 0.0
				if gi < n {
					want = r.At(gi, j)
				}
				if d := qtA.At(li, j) - want; d > 1e-9 || d < -1e-9 {
					return errors.New("QᵀA does not match [R; 0]")
				}
			}
		}
		return nil
	})
}

func TestApplyQTLeastSquares(t *testing.T) {
	// Solve min ‖Ax − b‖ with the factored form: x = R⁻¹ (QᵀB)[0:n].
	const pr, pc, m, n, nb = 2, 2, 32, 4, 2
	a := lin.RandomMatrix(m, n, 22)
	xTrue := []float64{1, -2, 3, -4}
	bGlob := lin.NewMatrix(m, 1)
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xTrue[j]
		}
		bGlob.Set(i, 0, s)
	}
	runGrid(t, pr, pc, func(p *simmpi.Proc, g *Grid) error {
		am, err := NewMatrix(g, a, nb)
		if err != nil {
			return err
		}
		f, err := Factor(am)
		if err != nil {
			return err
		}
		qtb, err := f.ApplyQT(rowBlock(bGlob, pr, g.Row))
		if err != nil {
			return err
		}
		r, err := f.GatherR()
		if err != nil {
			return err
		}
		// Gather the first n entries of Qᵀb (rows gi < n).
		contrib := make([]float64, n)
		for li := 0; li < qtb.Rows; li++ {
			if gi := li*pr + g.Row; gi < n {
				contrib[gi] = qtb.At(li, 0)
			}
		}
		full, err := g.World.Allreduce(contrib)
		if err != nil {
			return err
		}
		// The column comm replicates contributions pc times.
		x := make([]float64, n)
		for j := n - 1; j >= 0; j-- {
			s := full[j] / float64(pc)
			for k := j + 1; k < n; k++ {
				s -= r.At(j, k) * x[k]
			}
			x[j] = s / r.At(j, j)
		}
		for j := range x {
			if d := x[j] - xTrue[j]; d > 1e-9 || d < -1e-9 {
				return errors.New("least-squares solution wrong")
			}
		}
		return nil
	})
}

func TestApplyQTValidation(t *testing.T) {
	runGrid(t, 2, 1, func(p *simmpi.Proc, g *Grid) error {
		am, err := NewMatrix(g, lin.RandomMatrix(8, 4, 23), 2)
		if err != nil {
			return err
		}
		f, err := Factor(am)
		if err != nil {
			return err
		}
		if _, err := f.ApplyQT(lin.NewMatrix(3, 1)); err == nil {
			return errors.New("mismatched rhs accepted")
		}
		return nil
	})
}

func TestTallSkinnyAndNearSquare(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{128, 4}, {32, 32}} {
		a := lin.RandomMatrix(tc.m, tc.n, int64(tc.m))
		runGrid(t, 2, 2, func(p *simmpi.Proc, g *Grid) error {
			am, err := NewMatrix(g, a, 2)
			if err != nil {
				return err
			}
			f, err := Factor(am)
			if err != nil {
				return err
			}
			return checkAgainstSequential(a, f)
		})
	}
}
