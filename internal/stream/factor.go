package stream

import (
	"fmt"
	"io"

	"cacqr/internal/core"
	"cacqr/internal/lin"
)

// Options configures a streaming factorization.
type Options struct {
	// PanelRows is the number of rows per in-core panel (must be ≥ n;
	// clamped to m). This is the knob that trades resident memory for
	// per-panel efficiency.
	PanelRows int
	// Workers bounds the goroutines of the in-core kernels (0 =
	// GOMAXPROCS, 1 = serial).
	Workers int
	// Shifted forces every panel through ShiftedCQR3. When false, each
	// panel tries CholeskyQR2 first and escalates to ShiftedCQR3 only if
	// the panel's Gram matrix is not numerically positive definite.
	Shifted bool
}

// Result carries the streamed factorization outputs and the driver's
// own resource accounting. Flops and MaxResidentWords follow the same
// charging conventions as costmodel.StreamTSQR / StreamTSQRMemory, so
// the model can be validated against a real run.
type Result struct {
	// R is the n×n upper-triangular factor with non-negative diagonal.
	R *lin.Matrix
	// Panels is how many row panels the source yielded.
	Panels int
	// PanelRows is the (clamped) panel height actually used.
	PanelRows int
	// ShiftedPanels counts panels factored via ShiftedCQR3 (forced or
	// escalated).
	ShiftedPanels int
	// Flops is the charged flop count (model conventions: CQR2Flops per
	// panel, HouseholderQRFlops per merge, GemmFlops for the Q sweep).
	Flops int64
	// MaxResidentWords is the peak number of float64 words the driver
	// held at once — the quantity bounded by costmodel.StreamTSQRMemory.
	MaxResidentWords int64
	// ReadBytes / WrittenBytes / IOOps count source reads and sink
	// writes in the cost model's units (8 bytes per word, one op per
	// panel touch).
	ReadBytes    int64
	WrittenBytes int64
	IOOps        int64
}

// accountant tracks the driver's resident float64 words so the peak can
// be compared against the memory model.
type accountant struct{ cur, peak int64 }

func (a *accountant) alloc(words int64) {
	a.cur += words
	if a.cur > a.peak {
		a.peak = a.cur
	}
}

func (a *accountant) free(words int64) { a.cur -= words }

// chainNode is one merge of the left-deep R-reduction chain: the
// orthonormal factor of one stacked QR, split into the n×n block that
// multiplies everything above and the block that multiplies the new
// panel (n×n normally; rows×n for a raw short panel merged without its
// own panel QR).
type chainNode struct {
	top    *lin.Matrix
	bottom *lin.Matrix
	raw    bool
}

func (nd chainNode) words() int64 {
	return int64(nd.top.Rows+nd.bottom.Rows) * int64(nd.top.Cols)
}

// Factorize runs the out-of-core sequential TSQR over src: pass 1
// streams row panels, factoring each with CholeskyQR2 (escalating to
// ShiftedCQR3 on ill-conditioning) and merging the n×n R factors
// through a chain of small stacked Householder QRs. When sink is
// non-nil, a coefficient down-sweep and a second streaming pass over
// src reconstruct the explicit Q panel by panel into sink. At no point
// is more than one panel (plus the O(k·n²) reduction chain) resident.
func Factorize(src Source, sink Sink, opts Options) (*Result, error) {
	m, n := src.Dims()
	if m < 1 || n < 1 || m < n {
		return nil, fmt.Errorf("stream: shape %dx%d (need m ≥ n ≥ 1)", m, n)
	}
	b := opts.PanelRows
	if b < n {
		return nil, fmt.Errorf("stream: panel rows %d < n=%d", b, n)
	}
	if b > m {
		b = m
	}

	res := &Result{PanelRows: b}
	var acct accountant
	nn := int64(n)

	// Pass 1: panel QRs and the left-deep R-merge chain.
	var s *lin.Matrix // running n×n R of everything consumed so far
	var nodes []chainNode
	var shifted []bool // per panel; meaningless for raw panels
	rows := 0
	for {
		p, err := src.Next(b)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Panels++
		res.IOOps++
		res.ReadBytes += 8 * int64(p.Rows) * nn
		rows += p.Rows
		if p.Rows >= n {
			acct.alloc(4 * int64(p.Rows) * nn)
			_, r, sh, err := panelQR(p, opts)
			acct.free(4 * int64(p.Rows) * nn)
			if err != nil {
				return nil, fmt.Errorf("stream: panel %d: %w", res.Panels-1, err)
			}
			shifted = append(shifted, sh)
			if sh {
				res.ShiftedPanels++
			}
			res.Flops += chargePanel(p.Rows, n, sh)
			acct.alloc(nn * nn) // r
			if s == nil {
				s = r
				continue
			}
			nd, s2, err := mergeR(s, r, &acct)
			if err != nil {
				return nil, err
			}
			acct.free(2 * nn * nn) // old s and r absorbed
			s = s2
			nd.raw = false
			nodes = append(nodes, nd)
			res.Flops += lin.HouseholderQRFlops(2*n, n)
		} else {
			// Short panel: no in-core QR is possible, so its raw rows are
			// merged directly via one (n+rows)×n stacked Householder QR.
			if s == nil {
				return nil, fmt.Errorf("stream: first panel has %d < n=%d rows", p.Rows, n)
			}
			shifted = append(shifted, false)
			acct.alloc(int64(p.Rows) * nn)
			nd, s2, err := mergeR(s, p, &acct)
			if err != nil {
				return nil, err
			}
			acct.free(nn*nn + int64(p.Rows)*nn) // old s; raw rows absorbed
			s = s2
			nd.raw = true
			nodes = append(nodes, nd)
			res.Flops += lin.HouseholderQRFlops(n+p.Rows, n)
		}
	}
	if s == nil {
		return nil, fmt.Errorf("stream: source yielded no rows")
	}
	if rows != m {
		return nil, fmt.Errorf("stream: source yielded %d of %d rows", rows, m)
	}
	res.R = s

	if sink == nil {
		res.MaxResidentWords = acct.peak
		return res, nil
	}

	// Down-sweep: propagate the identity from the top of the chain back
	// down, producing each panel's n×n coefficient block C_i such that
	// Q = diag(Q_0 … Q_{k-1}) · [C_0; …; C_{k-1}] (a raw panel's block is
	// rows×n and already IS its slice of Q).
	coeffs := make([]*lin.Matrix, res.Panels)
	bmat := lin.Identity(n)
	acct.alloc(nn * nn)
	for j := len(nodes) - 1; j >= 0; j-- {
		nd := nodes[j]
		c := lin.MatMulParallel(opts.Workers, nd.bottom, bmat)
		acct.alloc(int64(c.Rows) * nn)
		coeffs[j+1] = c
		b2 := lin.MatMulParallel(opts.Workers, nd.top, bmat)
		acct.alloc(nn * nn)
		acct.free(nn * nn) // previous bmat
		bmat = b2
		if nd.raw {
			res.Flops += lin.GemmFlops(nd.bottom.Rows, n, n) + lin.GemmFlops(n, n, n)
		} else {
			res.Flops += 2 * lin.GemmFlops(n, n, n)
		}
	}
	coeffs[0] = bmat
	// The chain factors are no longer needed; only the coefficients are.
	for _, nd := range nodes {
		acct.free(nd.words())
	}
	nodes = nil

	// Pass 2: re-read each panel, deterministically recompute its Q with
	// the same kernel choice as pass 1, and emit Q_i·C_i. Raw panels'
	// rows of Q were already produced by the down-sweep.
	if err := src.Reset(); err != nil {
		return nil, fmt.Errorf("stream: reset for Q pass: %w", err)
	}
	for i := 0; i < res.Panels; i++ {
		p, err := src.Next(b)
		if err != nil {
			return nil, fmt.Errorf("stream: re-reading panel %d: %w", i, err)
		}
		res.IOOps++
		res.ReadBytes += 8 * int64(p.Rows) * nn
		ci := coeffs[i]
		var out *lin.Matrix
		if ci.Rows == p.Rows && p.Rows < n {
			out = ci // raw panel: coefficient block is its Q slice
		} else {
			acct.alloc(3 * int64(p.Rows) * nn)
			q, _, _, err := panelQRWith(p, shifted[i], opts)
			acct.free(3 * int64(p.Rows) * nn)
			if err != nil {
				return nil, fmt.Errorf("stream: panel %d Q pass: %w", i, err)
			}
			acct.alloc(int64(p.Rows) * nn)
			out = lin.MatMulParallel(opts.Workers, q, ci)
			res.Flops += chargePanel(p.Rows, n, shifted[i]) + lin.GemmFlops(p.Rows, n, n)
		}
		if err := sink.Append(out); err != nil {
			return nil, fmt.Errorf("stream: writing Q panel %d: %w", i, err)
		}
		res.IOOps++
		res.WrittenBytes += 8 * int64(p.Rows) * nn
		if out != ci {
			acct.free(int64(p.Rows) * nn)
		}
		acct.free(int64(ci.Rows) * nn)
		coeffs[i] = nil
	}
	res.MaxResidentWords = acct.peak
	return res, nil
}

// panelQR factors one panel, trying CholeskyQR2 first (unless Shifted
// forces escalation) and falling back to ShiftedCQR3 when the panel's
// Gram matrix is not numerically positive definite.
func panelQR(p *lin.Matrix, opts Options) (q, r *lin.Matrix, usedShifted bool, err error) {
	if opts.Shifted {
		return panelQRWith(p, true, opts)
	}
	q, r, err = core.CholeskyQR2(p, opts.Workers)
	if err == nil {
		return q, r, false, nil
	}
	return panelQRWith(p, true, opts)
}

// panelQRWith runs the named kernel, with no fallback — pass 2 replays
// exactly the choice pass 1 recorded so both passes see the same Q.
func panelQRWith(p *lin.Matrix, useShifted bool, opts Options) (q, r *lin.Matrix, usedShifted bool, err error) {
	if useShifted {
		q, r, err = core.ShiftedCQR3(p, opts.Workers)
		return q, r, true, err
	}
	q, r, err = core.CholeskyQR2(p, opts.Workers)
	return q, r, false, err
}

// mergeR stacks top (the running n×n R) above bottom (a new n×n R, or
// a raw short panel) and QR-factors the stack, returning the chain node
// and the new running R. lin.QR sign-normalizes, so the final R always
// carries a non-negative diagonal.
func mergeR(top, bottom *lin.Matrix, acct *accountant) (chainNode, *lin.Matrix, error) {
	n := top.Cols
	st := lin.NewMatrix(top.Rows+bottom.Rows, n)
	acct.alloc(int64(st.Rows) * int64(n))
	st.View(0, 0, top.Rows, n).CopyFrom(top)
	st.View(top.Rows, 0, bottom.Rows, n).CopyFrom(bottom)
	q, r, err := lin.QR(st)
	if err != nil {
		return chainNode{}, nil, fmt.Errorf("stream: R-merge: %w", err)
	}
	acct.alloc(int64(q.Rows)*int64(n) + int64(n)*int64(n))
	acct.free(int64(st.Rows) * int64(n))
	nd := chainNode{
		top:    q.View(0, 0, top.Rows, n),
		bottom: q.View(top.Rows, 0, bottom.Rows, n),
	}
	return nd, r, nil
}

// chargePanel is the modeled flop charge for one panel factorization:
// CQR2Flops for the plain path; the shifted path adds one extra
// CholeskyQR-shaped pass (Syrk + CholInv + Trmm) and the final
// triangular R-merge.
func chargePanel(rows, n int, usedShifted bool) int64 {
	f := lin.CQR2Flops(rows, n)
	if usedShifted {
		f += lin.SyrkFlops(rows, n) + lin.CholFlops(n) + lin.TriInvFlops(n) +
			lin.TrsmFlops(rows, n) + lin.GemmFlops(n, n, n)
	}
	return f
}
