// Package stream factors matrices bigger than memory: the out-of-core
// sequential TSQR of the CAQR papers (Demmel–Grigori–Hoemmen–Langou,
// arXiv 0809.2407 / 0808.2664). The tall m×n matrix arrives as row
// panels from a Source, each panel is factored in core with the
// existing CholeskyQR2/ShiftedCQR3 kernels, and the n×n R factors are
// merged through a left-deep chain of small stacked Householder QRs —
// so only one panel plus the R-reduction chain is ever resident. A
// second streaming pass over the same Source reconstructs the explicit
// Q panel by panel into an optional Sink.
//
// Sources and sinks are deliberately io.Reader-shaped: Dense-backed
// (views over an in-memory matrix), file-backed (a little-endian binary
// panel format), and generator-backed (the deterministic RandomMatrix
// sequence, so a daemon can stream a "gen" workload without ever
// holding it).
package stream

import (
	"fmt"
	"io"

	"cacqr/internal/lin"
)

// Source yields consecutive row panels of an m×n matrix, top to
// bottom. Next returns at most max rows; io.EOF signals exhaustion.
// Reset rewinds to the first row — required only when the driver must
// make a second pass (Q write-back).
type Source interface {
	// Dims returns the full matrix shape (m, n).
	Dims() (m, n int)
	// Next returns the next panel of at most max rows (max ≥ 1). The
	// returned matrix is only valid until the following Next call; the
	// driver copies what it must keep. Returns io.EOF when no rows
	// remain.
	Next(max int) (*lin.Matrix, error)
	// Reset rewinds the source to the first row.
	Reset() error
}

// Sink accepts consecutive row panels of the output matrix, top to
// bottom.
type Sink interface {
	Append(panel *lin.Matrix) error
}

// DenseSource streams an in-memory matrix as row-panel views — the
// zero-copy adapter the planner's dispatch path uses when an in-memory
// matrix is routed to the streaming variant.
type DenseSource struct {
	a   *lin.Matrix
	row int
}

// NewDenseSource wraps a (not copied) as a Source.
func NewDenseSource(a *lin.Matrix) *DenseSource { return &DenseSource{a: a} }

// Dims implements Source.
func (s *DenseSource) Dims() (int, int) { return s.a.Rows, s.a.Cols }

// Next implements Source, returning views into the backing matrix.
func (s *DenseSource) Next(max int) (*lin.Matrix, error) {
	if max < 1 {
		return nil, fmt.Errorf("stream: panel size %d", max)
	}
	if s.row >= s.a.Rows {
		return nil, io.EOF
	}
	r := s.a.Rows - s.row
	if r > max {
		r = max
	}
	v := s.a.View(s.row, 0, r, s.a.Cols)
	s.row += r
	return v, nil
}

// Reset implements Source.
func (s *DenseSource) Reset() error {
	s.row = 0
	return nil
}

// DenseSink assembles appended panels into one in-memory matrix —
// the adapter behind returning an explicit Q from the public API.
type DenseSink struct {
	m   *lin.Matrix
	row int
}

// NewDenseSink allocates a sink for an m×n output.
func NewDenseSink(m, n int) *DenseSink { return &DenseSink{m: lin.NewMatrix(m, n)} }

// Append implements Sink.
func (s *DenseSink) Append(panel *lin.Matrix) error {
	if panel.Cols != s.m.Cols {
		return fmt.Errorf("stream: panel width %d, want %d", panel.Cols, s.m.Cols)
	}
	if s.row+panel.Rows > s.m.Rows {
		return fmt.Errorf("stream: sink overflow at row %d + %d > %d", s.row, panel.Rows, s.m.Rows)
	}
	s.m.View(s.row, 0, panel.Rows, panel.Cols).CopyFrom(panel)
	s.row += panel.Rows
	return nil
}

// Matrix returns the assembled output (valid once every panel has been
// appended).
func (s *DenseSink) Matrix() *lin.Matrix { return s.m }

// Rows reports how many rows have been appended so far.
func (s *DenseSink) Rows() int { return s.row }

// Drain copies every panel of src into snk, panelRows rows at a time —
// the plain pump behind spilling a source to disk or materializing one
// in memory.
func Drain(src Source, snk Sink, panelRows int) error {
	if panelRows < 1 {
		panelRows = 4096
	}
	for {
		p, err := src.Next(panelRows)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := snk.Append(p); err != nil {
			return err
		}
	}
}
