package stream

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// validFileBytes builds a well-formed m×n matrix file in memory.
func validFileBytes(m, n int) []byte {
	var buf bytes.Buffer
	if err := writeFileHeader(&buf, m, n); err != nil {
		panic(err)
	}
	var b [8]byte
	for i := 0; i < m*n; i++ {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(i)))
		buf.Write(b[:])
	}
	return buf.Bytes()
}

// FuzzReadMatrixFile feeds arbitrary bytes to OpenFile. The contract
// under test: a malformed file errors — it never panics and never
// makes the reader allocate buffers sized by fictitious header dims —
// and a file that opens cleanly drains exactly the m×n it declared.
func FuzzReadMatrixFile(f *testing.F) {
	valid := validFileBytes(3, 2)
	f.Add(valid)
	f.Add(valid[:headerSize])   // header only, all data missing
	f.Add(valid[:headerSize-3]) // truncated header
	f.Add(append([]byte("NOTMAGIC"), valid[8:]...))

	huge := validFileBytes(1, 1) // header claims 2^40 rows, file has 8 bytes
	binary.LittleEndian.PutUint64(huge[8:16], 1<<40)
	f.Add(huge)
	zero := validFileBytes(1, 1)
	binary.LittleEndian.PutUint64(zero[8:16], 0)
	f.Add(zero)
	neg := validFileBytes(1, 1) // n = -1
	binary.LittleEndian.PutUint64(neg[16:24], ^uint64(0))
	f.Add(neg)
	overflow := validFileBytes(1, 1) // m·n·8 overflows int64
	binary.LittleEndian.PutUint64(overflow[8:16], 1<<62)
	binary.LittleEndian.PutUint64(overflow[16:24], 1<<62)
	f.Add(overflow)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.mat")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		src, err := OpenFile(path)
		if err != nil {
			return // malformed input must error, and did
		}
		defer src.Close()
		m, n := src.Dims()
		rows := 0
		for {
			p, err := src.Next(64)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("validated %dx%d file failed at row %d: %v", m, n, rows, err)
			}
			if p.Cols != n || p.Rows < 1 {
				t.Fatalf("panel %dx%d from a %dx%d file", p.Rows, p.Cols, m, n)
			}
			rows += p.Rows
		}
		if rows != m {
			t.Fatalf("drained %d rows, want %d", rows, m)
		}
	})
}
