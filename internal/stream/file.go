package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"cacqr/internal/lin"
)

// File-backed panels: a tiny self-describing binary format so matrices
// bigger than memory can live on disk between passes. Layout is the
// 8-byte magic, two little-endian int64 dims, then m·n little-endian
// float64 values row-major — sequential-scan friendly, which is the
// access pattern both streaming passes make.

const fileMagic = "CACQRSTM"

// headerSize is magic + m + n.
const headerSize = 8 + 8 + 8

// WriteFileHeader writes the format header for an m×n matrix.
func writeFileHeader(w io.Writer, m, n int) error {
	var hdr [headerSize]byte
	copy(hdr[:8], fileMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(n))
	_, err := w.Write(hdr[:])
	return err
}

func readFileHeader(r io.Reader) (m, n int, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("stream: reading matrix header: %w", err)
	}
	if string(hdr[:8]) != fileMagic {
		return 0, 0, fmt.Errorf("stream: bad matrix file magic %q", hdr[:8])
	}
	m = int(int64(binary.LittleEndian.Uint64(hdr[8:16])))
	n = int(int64(binary.LittleEndian.Uint64(hdr[16:24])))
	if m < 1 || n < 1 {
		return 0, 0, fmt.Errorf("stream: bad matrix file dims %dx%d", m, n)
	}
	return m, n, nil
}

// checkFileSize validates the header's dims against the bytes actually
// on disk, so a malformed or truncated header can never make a reader
// allocate panel buffers sized by fictitious dimensions. The product is
// checked in uint64 before int64 math can overflow.
func checkFileSize(size int64, m, n int) error {
	if size < headerSize {
		return fmt.Errorf("stream: matrix file of %d bytes is shorter than its header", size)
	}
	elems := uint64(m) * uint64(n)
	if uint64(m) != 0 && elems/uint64(m) != uint64(n) ||
		elems > (uint64(1<<63-1)-headerSize)/8 {
		return fmt.Errorf("stream: matrix file dims %dx%d overflow", m, n)
	}
	if want := int64(headerSize) + 8*int64(elems); size != want {
		return fmt.Errorf("stream: matrix file is %d bytes, want %d for %dx%d", size, want, m, n)
	}
	return nil
}

// FileSource streams panels from a matrix file written by FileSink (or
// WriteFile). Panels are read sequentially through one buffered reader;
// Reset seeks back to the first data byte, so the driver's two passes
// cost two sequential scans.
type FileSource struct {
	f    *os.File
	br   *bufio.Reader
	m, n int
	row  int
	buf  []byte
}

// OpenFile opens path as a panel source.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	m, n, err := readFileHeader(br)
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := checkFileSize(st.Size(), m, n); err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{f: f, br: br, m: m, n: n}, nil
}

// Dims implements Source.
func (s *FileSource) Dims() (int, int) { return s.m, s.n }

// Next implements Source.
func (s *FileSource) Next(max int) (*lin.Matrix, error) {
	if max < 1 {
		return nil, fmt.Errorf("stream: panel size %d", max)
	}
	if s.row >= s.m {
		return nil, io.EOF
	}
	r := s.m - s.row
	if r > max {
		r = max
	}
	need := r * s.n * 8
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	buf := s.buf[:need]
	if _, err := io.ReadFull(s.br, buf); err != nil {
		return nil, fmt.Errorf("stream: reading rows %d..%d: %w", s.row, s.row+r, err)
	}
	p := lin.NewMatrix(r, s.n)
	for i := range p.Data {
		p.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	s.row += r
	return p, nil
}

// Reset implements Source, seeking back to the first data row.
func (s *FileSource) Reset() error {
	if _, err := s.f.Seek(headerSize, io.SeekStart); err != nil {
		return err
	}
	s.br.Reset(s.f)
	s.row = 0
	return nil
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// FileSink writes appended panels to a matrix file readable by
// OpenFile. Close validates that exactly m rows arrived.
type FileSink struct {
	f    *os.File
	bw   *bufio.Writer
	m, n int
	row  int
	buf  []byte
}

// CreateFile creates path as a panel sink for an m×n matrix.
func CreateFile(path string, m, n int) (*FileSink, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("stream: bad sink dims %dx%d", m, n)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := writeFileHeader(bw, m, n); err != nil {
		f.Close()
		return nil, err
	}
	return &FileSink{f: f, bw: bw, m: m, n: n}, nil
}

// Append implements Sink.
func (s *FileSink) Append(panel *lin.Matrix) error {
	if panel.Cols != s.n {
		return fmt.Errorf("stream: panel width %d, want %d", panel.Cols, s.n)
	}
	if s.row+panel.Rows > s.m {
		return fmt.Errorf("stream: sink overflow at row %d + %d > %d", s.row, panel.Rows, s.m)
	}
	need := panel.Rows * s.n * 8
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	buf := s.buf[:need]
	for i := 0; i < panel.Rows; i++ {
		for j := 0; j < panel.Cols; j++ {
			binary.LittleEndian.PutUint64(buf[8*(i*s.n+j):], math.Float64bits(panel.At(i, j)))
		}
	}
	if _, err := s.bw.Write(buf); err != nil {
		return err
	}
	s.row += panel.Rows
	return nil
}

// Close flushes and closes the file, failing if the row count is short.
func (s *FileSink) Close() error {
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	if s.row != s.m {
		return fmt.Errorf("stream: sink closed after %d of %d rows", s.row, s.m)
	}
	return nil
}

// WriteFile spills an entire source to path — the helper tests and the
// CLI use to materialize file-backed fixtures.
func WriteFile(path string, src Source, panelRows int) error {
	m, n := src.Dims()
	snk, err := CreateFile(path, m, n)
	if err != nil {
		return err
	}
	if err := Drain(src, snk, panelRows); err != nil {
		snk.f.Close()
		return err
	}
	return snk.Close()
}
