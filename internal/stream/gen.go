package stream

import (
	"fmt"
	"io"
	"math/rand"

	"cacqr/internal/lin"
)

// GenSource streams the deterministic random matrix that
// lin.RandomMatrix(m, n, seed) would materialize, one panel at a time —
// the source behind a daemon's over-limit "gen" requests, which must
// stay O(panel) resident however large the requested shape. The RNG
// fills row-major exactly like RandomMatrix, so at any feasible size the
// streamed matrix is bitwise-identical to the in-core one.
type GenSource struct {
	m, n int
	seed int64
	rng  *rand.Rand
	row  int
}

// NewGenSource builds the generator source for an m×n matrix.
func NewGenSource(m, n int, seed int64) (*GenSource, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("stream: bad generator dims %dx%d", m, n)
	}
	s := &GenSource{m: m, n: n, seed: seed}
	s.Reset()
	return s, nil
}

// Dims implements Source.
func (s *GenSource) Dims() (int, int) { return s.m, s.n }

// Next implements Source.
func (s *GenSource) Next(max int) (*lin.Matrix, error) {
	if max < 1 {
		return nil, fmt.Errorf("stream: panel size %d", max)
	}
	if s.row >= s.m {
		return nil, io.EOF
	}
	r := s.m - s.row
	if r > max {
		r = max
	}
	p := lin.NewMatrix(r, s.n)
	for i := range p.Data {
		p.Data[i] = 2*s.rng.Float64() - 1
	}
	s.row += r
	return p, nil
}

// Reset implements Source, restarting the deterministic sequence.
func (s *GenSource) Reset() error {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.row = 0
	return nil
}
