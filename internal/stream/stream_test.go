package stream

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"io"
	"math"
	"path/filepath"
	"testing"

	"cacqr/internal/core"
	"cacqr/internal/costmodel"
	"cacqr/internal/lin"
)

func maxDiff(a, b *lin.Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var d float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if e := math.Abs(a.At(i, j) - b.At(i, j)); e > d {
				d = e
			}
		}
	}
	return d
}

func orthErr(q *lin.Matrix) float64 {
	g := lin.SyrkNew(q)
	var d float64
	for i := 0; i < g.Rows; i++ {
		for j := 0; j <= i; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e := math.Abs(g.At(i, j) - want); e > d {
				d = e
			}
		}
	}
	return d
}

// The tentpole property: streaming TSQR must reproduce the in-core
// CholeskyQR2 factorization (R to 1e-13 after sign normalization —
// which both sides already guarantee — and a Q that is orthonormal and
// reproduces A) across uneven panel schedules: panels that don't divide
// m, a short tail shorter than n, panel = n exactly, and the degenerate
// single-panel case.
func TestStreamingMatchesInCore(t *testing.T) {
	cases := []struct {
		name       string
		m, n, rows int
	}{
		{"even-split", 512, 16, 128},
		{"uneven-split", 500, 16, 128},     // tail of 116 ≥ n
		{"short-tail", 517, 16, 128},       // tail of 5 < n: raw merge path
		{"panel-equals-n", 100, 16, 16},    // maximal chain depth
		{"single-panel", 300, 16, 1 << 20}, // degenerate: whole matrix in one panel
		{"wide-ish", 256, 48, 96},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := lin.RandomMatrix(tc.m, tc.n, 7)
			qRef, rRef, err := core.CholeskyQR2(a, 0)
			if err != nil {
				t.Fatalf("in-core reference: %v", err)
			}
			snk := NewDenseSink(tc.m, tc.n)
			res, err := Factorize(NewDenseSource(a), snk, Options{PanelRows: tc.rows})
			if err != nil {
				t.Fatalf("Factorize: %v", err)
			}
			if d := maxDiff(res.R, rRef); d > 1e-13*float64(tc.m) {
				t.Errorf("R mismatch: max |ΔR| = %g", d)
			}
			q := snk.Matrix()
			if d := orthErr(q); d > 1e-13 {
				t.Errorf("streamed Q not orthonormal: %g", d)
			}
			// Q must reproduce A: ‖A − Q·R‖ small relative to ‖A‖ ~ 1.
			qr := lin.MatMul(q, res.R)
			if d := maxDiff(qr, a); d > 1e-12*float64(tc.n) {
				t.Errorf("‖A − QR‖ = %g", d)
			}
			// And match the reference Q (same sign convention both sides).
			if d := maxDiff(q, qRef); d > 1e-12 {
				t.Errorf("Q mismatch vs in-core: %g", d)
			}
			wantPanels := tc.m / min(tc.rows, tc.m)
			if tc.m%min(tc.rows, tc.m) != 0 {
				wantPanels++
			}
			if res.Panels != wantPanels {
				t.Errorf("Panels = %d, want %d", res.Panels, wantPanels)
			}
		})
	}
}

// κ-sweep: moderately conditioned panels stream through plain CQR2;
// once κ(A) is beyond what CholeskyQR2 handles, the per-panel kernels
// must escalate to ShiftedCQR3 and still deliver an orthonormal Q with
// a small residual.
func TestStreamingCondSweep(t *testing.T) {
	m, n, rows := 600, 12, 150
	for _, cond := range []float64{1e2, 1e6, 1e9, 1e12} {
		a := lin.RandomWithCond(m, n, cond, 3)
		forceShift := !core.CanCQR2Handle(cond)
		snk := NewDenseSink(m, n)
		res, err := Factorize(NewDenseSource(a), snk, Options{PanelRows: rows, Shifted: forceShift})
		if err != nil {
			t.Fatalf("cond=%g: %v", cond, err)
		}
		if forceShift && res.ShiftedPanels != res.Panels {
			t.Errorf("cond=%g: %d/%d panels shifted, want all", cond, res.ShiftedPanels, res.Panels)
		}
		q := snk.Matrix()
		if d := orthErr(q); d > 1e-12 {
			t.Errorf("cond=%g: streamed Q orthogonality error %g", cond, d)
		}
		qr := lin.MatMul(q, res.R)
		if d := maxDiff(qr, a); d > 1e-11 {
			t.Errorf("cond=%g: ‖A − QR‖ = %g", cond, d)
		}
	}
}

// The driver's flop accounting must agree exactly with the cost model's
// StreamTSQR charge on the plain (unshifted) path — same contract the
// distributed kernels keep with simmpi's measured counters.
func TestStreamingFlopsMatchModel(t *testing.T) {
	for _, tc := range []struct {
		m, n, rows int
		writeQ     bool
	}{
		{512, 16, 128, false},
		{512, 16, 128, true},
		{500, 16, 128, true},  // long tail
		{517, 16, 128, true},  // raw short tail
		{517, 16, 128, false}, // raw short tail, R only
		{300, 16, 1 << 20, true},
	} {
		a := lin.RandomMatrix(tc.m, tc.n, 11)
		var snk Sink
		if tc.writeQ {
			snk = NewDenseSink(tc.m, tc.n)
		}
		res, err := Factorize(NewDenseSource(a), snk, Options{PanelRows: tc.rows})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := costmodel.StreamTSQR(tc.m, tc.n, tc.rows, tc.writeQ)
		if err != nil {
			t.Fatalf("model: %v", err)
		}
		if res.ShiftedPanels != 0 {
			t.Fatalf("%+v: unexpected shifted escalation", tc)
		}
		if res.Flops != want.Flops {
			t.Errorf("%+v: driver flops %d != model %d", tc, res.Flops, want.Flops)
		}
		if res.IOOps != want.IOOps {
			t.Errorf("%+v: driver IO ops %d != model %d", tc, res.IOOps, want.IOOps)
		}
		if got := res.ReadBytes + res.WrittenBytes; got != want.IOBytes {
			t.Errorf("%+v: driver IO bytes %d != model %d", tc, got, want.IOBytes)
		}
	}
}

// The whole point of streaming: resident memory stays within the
// modeled footprint — one panel plus the R-reduction chain — which for
// a tall matrix is far below the m·n words the in-core path needs.
func TestStreamingResidentMemoryBounded(t *testing.T) {
	m, n, rows := 4096, 32, 256
	a := lin.RandomMatrix(m, n, 5)
	snk := NewDenseSink(m, n)
	res, err := Factorize(NewDenseSource(a), snk, Options{PanelRows: rows})
	if err != nil {
		t.Fatal(err)
	}
	budget, err := costmodel.StreamTSQRMemory(m, n, rows)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxResidentWords > budget {
		t.Errorf("resident %d words exceeds modeled %d", res.MaxResidentWords, budget)
	}
	if full := int64(m) * int64(n); res.MaxResidentWords >= full {
		t.Errorf("resident %d words not below in-core %d — streaming bought nothing", res.MaxResidentWords, full)
	}
}

// File round-trip: spill a matrix to the binary panel format, stream
// the factorization from disk with Q written to a file sink, and check
// the on-disk Q against the in-core factorization.
func TestFileSourceSinkRoundTrip(t *testing.T) {
	m, n, rows := 700, 24, 160
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.mat")
	qPath := filepath.Join(dir, "q.mat")
	a := lin.RandomMatrix(m, n, 9)
	if err := WriteFile(aPath, NewDenseSource(a), rows); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	src, err := OpenFile(aPath)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer src.Close()
	if gm, gn := src.Dims(); gm != m || gn != n {
		t.Fatalf("file dims %dx%d, want %dx%d", gm, gn, m, n)
	}
	snk, err := CreateFile(qPath, m, n)
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	res, err := Factorize(src, snk, Options{PanelRows: rows})
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if err := snk.Close(); err != nil {
		t.Fatalf("sink close: %v", err)
	}
	_, rRef, err := core.CholeskyQR2(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(res.R, rRef); d > 1e-13*float64(m) {
		t.Errorf("R mismatch through files: %g", d)
	}
	// Read the streamed Q back and verify it reconstructs A.
	qsrc, err := OpenFile(qPath)
	if err != nil {
		t.Fatalf("reopen Q: %v", err)
	}
	defer qsrc.Close()
	q := lin.NewMatrix(m, n)
	row := 0
	for {
		p, err := qsrc.Next(rows)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		q.View(row, 0, p.Rows, n).CopyFrom(p)
		row += p.Rows
	}
	if row != m {
		t.Fatalf("Q file has %d rows, want %d", row, m)
	}
	qr := lin.MatMul(q, res.R)
	if d := maxDiff(qr, a); d > 1e-12*float64(n) {
		t.Errorf("on-disk Q: ‖A − QR‖ = %g", d)
	}
}

// GenSource must replay lin.RandomMatrix's sequence bitwise, panel by
// panel, across Reset.
func TestGenSourceMatchesRandomMatrix(t *testing.T) {
	m, n := 333, 7
	want := lin.RandomMatrix(m, n, 42)
	src, err := NewGenSource(m, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got := lin.NewMatrix(m, n)
		row := 0
		for {
			p, err := src.Next(50)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got.View(row, 0, p.Rows, n).CopyFrom(p)
			row += p.Rows
		}
		if row != m {
			t.Fatalf("pass %d: %d rows, want %d", pass, row, m)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("pass %d: entry %d differs: %g vs %g", pass, i, got.Data[i], want.Data[i])
			}
		}
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

// Bad inputs fail loudly rather than silently truncating.
func TestStreamingErrors(t *testing.T) {
	a := lin.RandomMatrix(64, 8, 1)
	if _, err := Factorize(NewDenseSource(a), nil, Options{PanelRows: 4}); err == nil {
		t.Error("panel rows < n accepted")
	}
	wide := lin.RandomMatrix(4, 8, 1)
	if _, err := Factorize(NewDenseSource(wide), nil, Options{PanelRows: 8}); err == nil {
		t.Error("m < n accepted")
	}
	if _, err := costmodel.StreamTSQR(64, 8, 4, false); err == nil {
		t.Error("model accepted panel rows < n")
	}
	if _, err := costmodel.StreamTSQRMemory(4, 8, 8); err == nil {
		t.Error("memory model accepted m < n")
	}
}
