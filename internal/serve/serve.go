// Package serve is the long-lived factorization service behind
// cacqr.Server and cmd/cacqrd: the piece the ROADMAP's north star names.
// The paper's observation is that the right (c, d, variant) choice
// depends on the matrix shape, the machine, and the conditioning — but
// not on the matrix *values* — so a serving process handling heavy
// traffic should make that choice once per workload shape and amortize
// it. This package implements exactly that amortization:
//
//   - a bounded LRU of planner decisions keyed by plan.CacheKey
//     (shape, processor budget, machine, memory budget, legend knobs,
//     and the κ-bucket of the condition estimate — see plan.KappaBucket),
//     with cumulative hit/miss/eviction counters;
//   - request batching: concurrent same-key requests admitted within a
//     small window share ONE plan lookup (the first arrival leads, the
//     rest join) and then execute concurrently;
//   - a global simulated-rank budget: each executing request holds as
//     many tokens as its plan has ranks, so a burst of 3D-grid requests
//     cannot oversubscribe the host with P goroutines each — the budget
//     bounds total in-flight simulated ranks, not requests.
//
// The package is deliberately matrix-free: it plans, caches, batches,
// and gates, while the caller (cacqr.Server) supplies the executor that
// runs a plan against actual data. That keeps the dependency direction
// internal/serve → internal/plan with no cycle through the root package.
//
// All request-level counters — lookups, hits, misses, leads, batch
// joins, evictions — live under ONE mutex with the cache itself, and
// Stats reads them in one acquisition, so the invariants
// Lookups == Hits + Misses and Misses == Batched + Leads hold in every
// snapshot, concurrent traffic or not.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cacqr/internal/hist"
	"cacqr/internal/obs"
	"cacqr/internal/plan"
)

// DefaultCacheEntries bounds the plan LRU when Config.CacheEntries = 0.
const DefaultCacheEntries = 128

// DefaultBatchWindow is the same-key admission window when
// Config.BatchWindow = 0: long enough to catch a traffic burst, short
// enough to be invisible next to a simulated factorization.
const DefaultBatchWindow = 2 * time.Millisecond

// DefaultRankBudget bounds total in-flight simulated ranks when
// Config.RankBudget = 0.
const DefaultRankBudget = 256

// DefaultMaxPending bounds admitted-but-unfinished request units when
// Config.MaxPending = 0. Past it, requests fail fast with ErrOverloaded.
const DefaultMaxPending = 1024

// maxLatencyKeys bounds the per-key histogram map: a hostile traffic mix
// of unbounded distinct shapes must not grow server memory without
// bound. Eviction is crude (an arbitrary key); per-key latency tracking
// is best-effort observability, not an accounting ledger.
const maxLatencyKeys = 4096

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("serve: server is closed")

// Config tunes a Server. The zero value selects the defaults above.
type Config struct {
	// CacheEntries bounds the plan LRU (0 = DefaultCacheEntries).
	CacheEntries int
	// BatchWindow is how long the first request for an uncached key
	// waits for same-key followers before planning (0 =
	// DefaultBatchWindow, negative = plan immediately).
	BatchWindow time.Duration
	// RankBudget bounds the total simulated ranks in flight across all
	// executing requests (0 = DefaultRankBudget). A plan needing more
	// ranks than the whole budget runs alone, holding the full budget.
	RankBudget int
	// MaxPending bounds admitted-but-unfinished request units (0 =
	// DefaultMaxPending). The bound is enforced by refusal, never by
	// queueing: a request that would exceed it gets ErrOverloaded
	// immediately, while everything already admitted runs to completion.
	MaxPending int
	// FuseWindow is how long the first DoFused request for a key waits
	// for same-key followers before sealing the group and executing it
	// as one fused batch (0 or negative = execute immediately; fusing
	// then only catches requests that arrive while a leader is between
	// admission and seal).
	FuseWindow time.Duration
	// LatencyWindow is the per-key sliding window size for the latency
	// histograms (0 = hist.DefaultWindow).
	LatencyWindow int
	// Plan produces the decision for one (already κ-bucketed) request
	// (nil = plan.Best).
	Plan func(plan.Request) (plan.Plan, error)
}

// Stats is a snapshot of a Server's counters. All request-level
// counters are read under one lock acquisition, so the invariants
// Lookups == Hits + Misses and Misses == Batched + Leads hold in every
// snapshot.
type Stats struct {
	// Requests is the number of request units admitted (a DoBatch of n
	// counts n).
	Requests int64
	// Lookups counts plan-resolution attempts in request units; every
	// unit is either a Hit (the plan came from the cache) or a Miss.
	// Misses split into Batched units (joined an in-flight same-key
	// lookup) and Leads units (led a fresh planner run). Evictions
	// counts LRU evictions; Entries is the current cache population.
	Lookups, Hits, Misses int64
	Evictions             int64
	Entries               int
	// Planned counts actual planner invocations (one per lead,
	// regardless of how many units the lead carried); Batched counts
	// units that shared an in-flight lookup instead of planning; Leads
	// counts the units carried by leads.
	Planned, Batched, Leads int64
	// InFlightRanks is the number of simulated-rank tokens currently
	// held by executing requests; RankBudget is the bound.
	InFlightRanks, RankBudget int
	// Overloaded counts requests refused at admission (ErrOverloaded);
	// Pending is the request units currently admitted and unfinished;
	// MaxPending is the bound they were checked against.
	Overloaded          int64
	Pending, MaxPending int
	// FusedBatches counts fused executions (DoBatch calls plus sealed
	// DoFused groups); FusedRequests counts the request units they
	// carried; FuseOccupancy is the payloads currently waiting in open
	// (unsealed) fuse windows.
	FusedBatches, FusedRequests int64
	FuseOccupancy               int
	// Latencies maps plan.CacheKey strings to per-key latency quantiles
	// over the most recent LatencyWindow observations.
	Latencies map[string]hist.Summary
}

// HitRate is the fraction of admitted requests that avoided a planner
// invocation (cache hits plus batch joins). 0 when no requests yet.
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits+s.Batched) / float64(s.Requests)
}

// Server is the concurrency-safe plan-caching service. Create with New,
// submit with Do, retire with Close.
type Server struct {
	cfg  Config
	gate *rankGate
	adm  *admission

	// mu guards the cache, the request-level counters, the latency
	// histogram map, and the inflight/fusing maps — one lock, so Stats
	// snapshots are internally consistent.
	mu       sync.Mutex
	cache    *planCache                   // guarded by mu
	closed   bool                         // guarded by mu
	closing  chan struct{}                // closed by Close; wakes batch/fuse windows (immutable after New)
	inflight map[plan.CacheKey]*batch     // guarded by mu
	fusing   map[plan.CacheKey]*fuseGroup // guarded by mu
	wg       sync.WaitGroup

	requests                    int64                   // guarded by mu
	lookups, hits, misses       int64                   // guarded by mu
	evictions                   int64                   // guarded by mu
	planned, batched, leads     int64                   // guarded by mu
	fusedBatches, fusedRequests int64                   // guarded by mu
	hists                       map[string]*hist.Window // guarded by mu
}

// batch is one in-flight plan lookup that same-key requests share.
type batch struct {
	done chan struct{} // closed when plan/err are set
	plan plan.Plan
	err  error
}

// New builds a Server from the config (zero value = all defaults).
func New(cfg Config) *Server {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = DefaultBatchWindow
	}
	if cfg.RankBudget <= 0 {
		cfg.RankBudget = DefaultRankBudget
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.LatencyWindow <= 0 {
		cfg.LatencyWindow = hist.DefaultWindow
	}
	if cfg.Plan == nil {
		cfg.Plan = plan.Best
	}
	return &Server{
		cfg:      cfg,
		cache:    newPlanCache(cfg.CacheEntries),
		gate:     newRankGate(cfg.RankBudget),
		adm:      newAdmission(cfg.MaxPending),
		closing:  make(chan struct{}),
		inflight: make(map[plan.CacheKey]*batch),
		fusing:   make(map[plan.CacheKey]*fuseGroup),
		hists:    make(map[string]*hist.Window),
	}
}

// Do resolves a plan for the request — from cache, from an in-flight
// same-key lookup, or by planning fresh at the request's κ-bucket edge —
// and then runs exec(plan) under the global rank budget. It reports the
// plan, whether it came from the cache or a shared lookup (hit), and
// exec's error. Requests past the pending bound are refused with
// ErrOverloaded. ctx cancellation unblocks every wait on the way in —
// batch-window joins and the rank gate — and is the executor's to honor
// once exec starts (nil ctx = context.Background()). A span carried on
// ctx (obs.FromContext) gets "plan" and "gate" stage children; without
// one, the instrumentation is free. Safe for arbitrary concurrent use.
func (s *Server) Do(ctx context.Context, req plan.Request, exec func(plan.Plan) error) (plan.Plan, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.adm.admit(1) {
		return plan.Plan{}, false, ErrOverloaded
	}
	defer s.adm.done(1)
	if err := s.enter(1); err != nil {
		return plan.Plan{}, false, err
	}
	defer s.wg.Done()
	start := time.Now()
	sp := obs.FromContext(ctx)

	key := plan.KeyFor(req)
	ps := sp.Stage("plan")
	p, hit, err := s.resolve(ctx, key, req, 1, true)
	ps.SetBool("cache_hit", hit)
	ps.End()
	if err != nil {
		return plan.Plan{}, false, err
	}
	if exec != nil {
		gs := sp.Stage("gate")
		held, gerr := s.gate.acquire(ctx, p.Procs)
		gs.End()
		if gerr != nil {
			return plan.Plan{}, false, gerr
		}
		err = exec(p)
		s.gate.release(held)
	}
	s.observe(key, time.Since(start), 1)
	return p, hit, err
}

// DoBatch is Do for a caller-assembled batch of n same-key requests
// executed as ONE fused run: n admission units, one plan resolution (no
// batch-window wait — the batch is already assembled), one rank-gate
// acquisition, one exec call, n latency observations. exec runs the
// whole batch; per-item failures are the caller's to track.
func (s *Server) DoBatch(ctx context.Context, req plan.Request, n int, exec func(plan.Plan) error) (plan.Plan, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return plan.Plan{}, false, fmt.Errorf("serve: DoBatch of %d requests", n)
	}
	if !s.adm.admit(n) {
		return plan.Plan{}, false, ErrOverloaded
	}
	defer s.adm.done(n)
	if err := s.enter(int64(n)); err != nil {
		return plan.Plan{}, false, err
	}
	defer s.wg.Done()
	start := time.Now()
	sp := obs.FromContext(ctx)

	key := plan.KeyFor(req)
	ps := sp.Stage("plan")
	p, hit, err := s.resolve(ctx, key, req, int64(n), false)
	ps.SetBool("cache_hit", hit)
	ps.End()
	if err != nil {
		return plan.Plan{}, false, err
	}
	if exec != nil {
		gs := sp.Stage("gate")
		held, gerr := s.gate.acquire(ctx, p.Procs)
		gs.End()
		if gerr != nil {
			return plan.Plan{}, false, gerr
		}
		err = exec(p)
		s.gate.release(held)
	}
	s.mu.Lock()
	s.fusedBatches++
	s.fusedRequests += int64(n)
	s.mu.Unlock()
	s.observe(key, time.Since(start), n)
	return p, hit, err
}

// enter registers units admitted request units with the close
// accounting: Close waits for every entered request, and nothing enters
// after it. The caller must pair a successful enter with wg.Done.
func (s *Server) enter(units int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.requests += units
	s.wg.Add(1)
	return nil
}

// resolve produces the plan for key — from cache, by riding an in-flight
// same-key lookup (counted as units batched requests), or by leading a
// fresh lookup at the κ-bucket's conservative edge. wait gates the
// leader's batch-window sleep; joins and fused batches skip it. A
// canceled ctx abandons a join wait (the in-flight lookup itself keeps
// going for its other riders). The boolean reports whether the plan came
// from cache or a shared lookup.
//
// The cache consult and its outcome counters update in ONE critical
// section, so Lookups == Hits + Misses and Misses == Batched + Leads
// hold at every instant a Stats snapshot could be taken.
func (s *Server) resolve(ctx context.Context, key plan.CacheKey, req plan.Request, units int64, wait bool) (plan.Plan, bool, error) {
	s.mu.Lock()
	s.lookups += units
	if p, ok := s.cache.Get(key); ok {
		s.hits += units
		s.mu.Unlock()
		return p, true, nil
	}
	s.misses += units
	if b, joined := s.inflight[key]; joined {
		// Ride the in-flight lookup.
		s.batched += units
		s.mu.Unlock()
		select {
		case <-b.done:
		case <-ctx.Done():
			return plan.Plan{}, false, ctx.Err()
		}
		if b.err != nil {
			return plan.Plan{}, false, b.err
		}
		return b.plan, true, nil
	}
	// Lead a new lookup: wait the batch window for followers, then plan
	// once at the bucket's conservative edge.
	b := &batch{done: make(chan struct{})}
	s.inflight[key] = b
	s.leads += units
	s.planned++
	s.mu.Unlock()
	if wait && s.cfg.BatchWindow > 0 {
		s.pause(ctx, s.cfg.BatchWindow)
	}
	b.plan, b.err = s.cfg.Plan(plan.Bucketed(req))
	s.mu.Lock()
	if b.err == nil {
		s.evictions += int64(s.cache.Put(key, b.plan))
	}
	delete(s.inflight, key)
	s.mu.Unlock()
	close(b.done)
	return b.plan, false, b.err
}

// pause sleeps for d or until Close or ctx cancellation, whichever comes
// first — batch and fuse windows must not delay shutdown, hold back a
// draining window, or outlive their request.
func (s *Server) pause(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.closing:
	case <-ctx.Done():
	}
}

// observe records n request latencies of duration d under the key's
// histogram, creating it on first use (bounded by maxLatencyKeys). The
// map is consulted under s.mu; the ring itself has its own lock, so
// recording does not serialize requests against each other.
func (s *Server) observe(key plan.CacheKey, d time.Duration, n int) {
	ks := key.String()
	s.mu.Lock()
	w, ok := s.hists[ks]
	if !ok {
		if len(s.hists) >= maxLatencyKeys {
			for k := range s.hists {
				delete(s.hists, k)
				break
			}
		}
		w = hist.New(s.cfg.LatencyWindow)
		s.hists[ks] = w
	}
	s.mu.Unlock()
	for i := 0; i < n; i++ {
		w.Observe(d)
	}
}

// Stats snapshots the counters. Everything request-level — lookup
// ledger, cache population, fuse occupancy, latency summaries — is read
// under one s.mu acquisition, so the documented invariants hold in the
// returned snapshot.
func (s *Server) Stats() Stats {
	inFlight, budget := s.gate.usage()
	pending, maxPending, overloaded := s.adm.usage()
	s.mu.Lock()
	defer s.mu.Unlock()
	lat := make(map[string]hist.Summary, len(s.hists))
	for k, w := range s.hists {
		lat[k] = w.Summary()
	}
	occupancy := 0
	for _, g := range s.fusing {
		if !g.sealed {
			occupancy += len(g.payloads)
		}
	}
	return Stats{
		Requests:      s.requests,
		Lookups:       s.lookups,
		Hits:          s.hits,
		Misses:        s.misses,
		Evictions:     s.evictions,
		Entries:       s.cache.Len(),
		Planned:       s.planned,
		Batched:       s.batched,
		Leads:         s.leads,
		InFlightRanks: inFlight,
		RankBudget:    budget,
		Overloaded:    overloaded,
		Pending:       pending,
		MaxPending:    maxPending,
		FusedBatches:  s.fusedBatches,
		FusedRequests: s.fusedRequests,
		FuseOccupancy: occupancy,
		Latencies:     lat,
	}
}

// Close refuses new requests, wakes any open batch/fuse windows so
// partially-filled ones drain immediately, and waits for in-flight
// requests to finish. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closing)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
