// Package serve is the long-lived factorization service behind
// cacqr.Server and cmd/cacqrd: the piece the ROADMAP's north star names.
// The paper's observation is that the right (c, d, variant) choice
// depends on the matrix shape, the machine, and the conditioning — but
// not on the matrix *values* — so a serving process handling heavy
// traffic should make that choice once per workload shape and amortize
// it. This package implements exactly that amortization:
//
//   - a bounded LRU of planner decisions keyed by plan.CacheKey
//     (shape, processor budget, machine, memory budget, legend knobs,
//     and the κ-bucket of the condition estimate — see plan.KappaBucket),
//     with cumulative hit/miss/eviction counters;
//   - request batching: concurrent same-key requests admitted within a
//     small window share ONE plan lookup (the first arrival leads, the
//     rest join) and then execute concurrently;
//   - a global simulated-rank budget: each executing request holds as
//     many tokens as its plan has ranks, so a burst of 3D-grid requests
//     cannot oversubscribe the host with P goroutines each — the budget
//     bounds total in-flight simulated ranks, not requests.
//
// The package is deliberately matrix-free: it plans, caches, batches,
// and gates, while the caller (cacqr.Server) supplies the executor that
// runs a plan against actual data. That keeps the dependency direction
// internal/serve → internal/plan with no cycle through the root package.
package serve

import (
	"errors"
	"sync"
	"time"

	"cacqr/internal/plan"
)

// DefaultCacheEntries bounds the plan LRU when Config.CacheEntries = 0.
const DefaultCacheEntries = 128

// DefaultBatchWindow is the same-key admission window when
// Config.BatchWindow = 0: long enough to catch a traffic burst, short
// enough to be invisible next to a simulated factorization.
const DefaultBatchWindow = 2 * time.Millisecond

// DefaultRankBudget bounds total in-flight simulated ranks when
// Config.RankBudget = 0.
const DefaultRankBudget = 256

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("serve: server is closed")

// Config tunes a Server. The zero value selects the defaults above.
type Config struct {
	// CacheEntries bounds the plan LRU (0 = DefaultCacheEntries).
	CacheEntries int
	// BatchWindow is how long the first request for an uncached key
	// waits for same-key followers before planning (0 =
	// DefaultBatchWindow, negative = plan immediately).
	BatchWindow time.Duration
	// RankBudget bounds the total simulated ranks in flight across all
	// executing requests (0 = DefaultRankBudget). A plan needing more
	// ranks than the whole budget runs alone, holding the full budget.
	RankBudget int
	// Plan produces the decision for one (already κ-bucketed) request
	// (nil = plan.Best).
	Plan func(plan.Request) (plan.Plan, error)
}

// Stats is a snapshot of a Server's counters.
type Stats struct {
	// Requests is the number of Do calls admitted.
	Requests int64
	// Hits and Misses count plan-cache lookups; Evictions counts LRU
	// evictions; Entries is the current cache population.
	Hits, Misses, Evictions int64
	Entries                 int
	// Planned counts actual planner invocations; Batched counts
	// requests that shared an in-flight lookup instead of planning
	// (Misses = Planned + Batched when no plan call failed).
	Planned, Batched int64
	// InFlightRanks is the number of simulated-rank tokens currently
	// held by executing requests; RankBudget is the bound.
	InFlightRanks, RankBudget int
}

// HitRate is the fraction of admitted requests that avoided a planner
// invocation (cache hits plus batch joins). 0 when no requests yet.
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits+s.Batched) / float64(s.Requests)
}

// Server is the concurrency-safe plan-caching service. Create with New,
// submit with Do, retire with Close.
type Server struct {
	cfg   Config
	cache *planCache
	gate  *rankGate

	mu       sync.Mutex
	closed   bool
	inflight map[plan.CacheKey]*batch
	wg       sync.WaitGroup

	requests, planned, batched int64
}

// batch is one in-flight plan lookup that same-key requests share.
type batch struct {
	done chan struct{} // closed when plan/err are set
	plan plan.Plan
	err  error
}

// New builds a Server from the config (zero value = all defaults).
func New(cfg Config) *Server {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = DefaultBatchWindow
	}
	if cfg.RankBudget <= 0 {
		cfg.RankBudget = DefaultRankBudget
	}
	if cfg.Plan == nil {
		cfg.Plan = plan.Best
	}
	return &Server{
		cfg:      cfg,
		cache:    newPlanCache(cfg.CacheEntries),
		gate:     newRankGate(cfg.RankBudget),
		inflight: make(map[plan.CacheKey]*batch),
	}
}

// Do resolves a plan for the request — from cache, from an in-flight
// same-key lookup, or by planning fresh at the request's κ-bucket edge —
// and then runs exec(plan) under the global rank budget. It reports the
// plan, whether it came from the cache or a shared lookup (hit), and
// exec's error. Safe for arbitrary concurrent use.
func (s *Server) Do(req plan.Request, exec func(plan.Plan) error) (plan.Plan, bool, error) {
	key := plan.KeyFor(req)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return plan.Plan{}, false, ErrClosed
	}
	s.requests++
	s.wg.Add(1)
	defer s.wg.Done()

	p, ok := s.cache.Get(key)
	hit := ok
	if !ok {
		if b, joined := s.inflight[key]; joined {
			// Ride the in-flight lookup.
			s.batched++
			s.mu.Unlock()
			<-b.done
			if b.err != nil {
				return plan.Plan{}, false, b.err
			}
			p, hit = b.plan, true
		} else {
			// Lead a new lookup: wait the batch window for followers,
			// then plan once at the bucket's conservative edge.
			b := &batch{done: make(chan struct{})}
			s.inflight[key] = b
			s.planned++
			s.mu.Unlock()
			if s.cfg.BatchWindow > 0 {
				time.Sleep(s.cfg.BatchWindow)
			}
			b.plan, b.err = s.cfg.Plan(plan.Bucketed(req))
			if b.err == nil {
				s.cache.Put(key, b.plan)
			}
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			close(b.done)
			if b.err != nil {
				return plan.Plan{}, false, b.err
			}
			p = b.plan
		}
	} else {
		s.mu.Unlock()
	}

	if exec == nil {
		return p, hit, nil
	}
	held := s.gate.acquire(p.Procs)
	defer s.gate.release(held)
	return p, hit, exec(p)
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	hits, misses, evictions, entries := s.cache.snapshot()
	inFlight, budget := s.gate.usage()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Requests:      s.requests,
		Hits:          hits,
		Misses:        misses,
		Evictions:     evictions,
		Entries:       entries,
		Planned:       s.planned,
		Batched:       s.batched,
		InFlightRanks: inFlight,
		RankBudget:    budget,
	}
}

// Close refuses new requests and waits for in-flight ones to finish.
// Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}
