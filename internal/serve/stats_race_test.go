package serve

import (
	"context"
	"sync"
	"testing"
)

// Regression: Stats used to gather counters under three separate locks
// (cache mutex, histogram mutex, server mutex), so a scrape racing
// with resolve could observe Lookups ≠ Hits+Misses — a torn snapshot.
// All counters now live under one Server.mu acquisition; this test
// hammers Do from many goroutines while scraping Stats concurrently
// and asserts the accounting invariants hold in every single snapshot.
// Run under -race it also guards the lock discipline itself.
func TestStatsSnapshotInvariants(t *testing.T) {
	s := New(Config{CacheEntries: 4, BatchWindow: -1})
	defer s.Close()

	const workers, iters = 8, 200
	shapes := []int{256, 512, 1024, 2048, 4096, 8192}

	var traffic, scrapers sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers: every snapshot, mid-traffic, must be self-consistent.
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if st.Lookups != st.Hits+st.Misses {
					t.Errorf("torn snapshot: Lookups %d != Hits %d + Misses %d",
						st.Lookups, st.Hits, st.Misses)
					return
				}
				if st.Misses != st.Batched+st.Leads {
					t.Errorf("torn snapshot: Misses %d != Batched %d + Leads %d",
						st.Misses, st.Batched, st.Leads)
					return
				}
				if st.Lookups > st.Requests {
					t.Errorf("torn snapshot: Lookups %d > Requests %d", st.Lookups, st.Requests)
					return
				}
			}
		}()
	}
	// Traffic: repeated keys for hits, a rotating cold key for
	// misses/evictions through the 4-entry cache.
	for g := 0; g < workers; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			for i := 0; i < iters; i++ {
				m := shapes[(g+i)%len(shapes)]
				if _, _, err := s.Do(context.Background(), req(m, 8, 4, 0), nil); err != nil {
					t.Errorf("Do: %v", err)
					return
				}
			}
		}(g)
	}
	// Stop scrapers only after traffic drains.
	traffic.Wait()
	close(stop)
	scrapers.Wait()

	st := s.Stats()
	if st.Requests != workers*iters {
		t.Fatalf("Requests = %d, want %d", st.Requests, workers*iters)
	}
	if st.Lookups != st.Requests {
		t.Fatalf("final Lookups = %d, want %d", st.Lookups, st.Requests)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("traffic mix did not exercise both paths: %+v", st)
	}
}
