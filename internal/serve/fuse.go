package serve

import (
	"context"
	"fmt"
	"time"

	"cacqr/internal/obs"
	"cacqr/internal/plan"
)

// Fused execution: where the batch window in resolve shares one PLAN
// lookup among same-key requests, DoFused goes one step further and
// shares one EXECUTION. The first request for a key opens a fuse window;
// same-key requests arriving inside it join the group; when the window
// closes the leader runs the whole group as one fused batch (one rank
// gate acquisition, one strided-kernel sweep) and distributes per-item
// results. This is the streaming counterpart of DoBatch for callers that
// submit one request at a time.

// fuseGroup is one open-or-executing fuse window. payloads/sealed are
// guarded by Server.mu until sealed; after seal only the leader touches
// the group until done closes, then everything is read-only.
type fuseGroup struct {
	done     chan struct{} // closed when plan/hit/err/errs are final
	payloads []any
	sealed   bool

	plan plan.Plan
	hit  bool
	err  error   // group-level failure (planning); overrides errs
	errs []error // per-payload results from lead, index-aligned
}

// DoFused admits one request carrying payload, fuses it with concurrent
// same-key requests inside Config.FuseWindow, and has the group's leader
// execute all payloads in one lead call under one rank-gate acquisition.
// lead receives the group's payloads in arrival order and returns
// index-aligned per-payload errors (nil = all succeeded); each caller
// gets its own entry. Close seals open windows immediately, so a
// partially-filled group drains rather than waiting out its window. A
// joiner whose ctx cancels abandons its wait (the leader still executes
// its payload; the result is discarded); a leader whose ctx cancels
// before it holds the rank gate fails the whole group.
func (s *Server) DoFused(ctx context.Context, req plan.Request, payload any, lead func(p plan.Plan, payloads []any) []error) (plan.Plan, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.adm.admit(1) {
		return plan.Plan{}, false, ErrOverloaded
	}
	defer s.adm.done(1)
	if err := s.enter(1); err != nil {
		return plan.Plan{}, false, err
	}
	defer s.wg.Done()
	start := time.Now()
	sp := obs.FromContext(ctx)
	key := plan.KeyFor(req)

	s.mu.Lock()
	if g, ok := s.fusing[key]; ok && !g.sealed {
		// Join the open window; the leader executes for us.
		idx := len(g.payloads)
		g.payloads = append(g.payloads, payload)
		s.mu.Unlock()
		js := sp.Stage("fuse-join")
		select {
		case <-g.done:
		case <-ctx.Done():
			js.End()
			return plan.Plan{}, false, ctx.Err()
		}
		js.End()
		s.observe(key, time.Since(start), 1)
		if g.err != nil {
			return plan.Plan{}, false, g.err
		}
		return g.plan, g.hit, g.errs[idx]
	}
	// Lead a new window.
	g := &fuseGroup{done: make(chan struct{}), payloads: []any{payload}}
	s.fusing[key] = g
	s.mu.Unlock()

	if s.cfg.FuseWindow > 0 {
		s.pause(ctx, s.cfg.FuseWindow)
	}

	s.mu.Lock()
	g.sealed = true
	delete(s.fusing, key)
	n := len(g.payloads)
	s.fusedBatches++
	s.fusedRequests += int64(n)
	s.mu.Unlock()

	// One plan resolution for the group (no second window — the fuse
	// window already played that role), then one fused execution.
	ps := sp.Stage("plan")
	g.plan, g.hit, g.err = s.resolve(ctx, key, req, int64(n), false)
	ps.SetBool("cache_hit", g.hit)
	ps.End()
	if g.err == nil {
		gs := sp.Stage("gate")
		held, gerr := s.gate.acquire(ctx, g.plan.Procs)
		gs.End()
		if gerr != nil {
			g.err = gerr
		} else {
			g.errs = lead(g.plan, g.payloads)
			s.gate.release(held)
			if g.errs == nil {
				g.errs = make([]error, n)
			} else if len(g.errs) != n {
				g.err = fmt.Errorf("serve: fused lead returned %d results for %d payloads", len(g.errs), n)
			}
		}
	}
	close(g.done)
	s.observe(key, time.Since(start), 1)
	if g.err != nil {
		return plan.Plan{}, false, g.err
	}
	return g.plan, g.hit, g.errs[0]
}
