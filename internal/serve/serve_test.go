package serve

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cacqr/internal/plan"
)

func req(m, n, procs int, cond float64) plan.Request {
	return plan.Request{M: m, N: n, Procs: procs, CondEst: cond}
}

func TestCacheHitMissEviction(t *testing.T) {
	var planCalls int64
	s := New(Config{
		CacheEntries: 2,
		BatchWindow:  -1,
		Plan: func(r plan.Request) (plan.Plan, error) {
			atomic.AddInt64(&planCalls, 1)
			return plan.Best(r)
		},
	})
	defer s.Close()

	shapes := []plan.Request{req(256, 8, 4, 0), req(512, 8, 4, 0), req(1024, 8, 4, 0)}

	// First pass: three distinct keys through a 2-entry cache — all miss.
	for _, r := range shapes {
		if _, hit, err := s.Do(context.Background(), r, nil); err != nil || hit {
			t.Fatalf("first submission of %dx%d: hit=%v err=%v", r.M, r.N, hit, err)
		}
	}
	st := s.Stats()
	if st.Misses != 3 || st.Hits != 0 || st.Planned != 3 {
		t.Fatalf("after cold pass: %+v", st)
	}
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("LRU bound not enforced: %+v", st)
	}

	// shapes[0] was evicted (least recently used): a re-submit misses and
	// plans again; shapes[2] is resident and hits.
	if _, hit, err := s.Do(context.Background(), shapes[0], nil); err != nil || hit {
		t.Fatalf("evicted key should miss: hit=%v err=%v", hit, err)
	}
	if _, hit, err := s.Do(context.Background(), shapes[2], nil); err != nil || !hit {
		t.Fatalf("resident key should hit: hit=%v err=%v", hit, err)
	}
	st = s.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Planned != 4 || st.Evictions != 2 {
		t.Fatalf("after warm pass: %+v", st)
	}
	if got := atomic.LoadInt64(&planCalls); got != st.Planned {
		t.Fatalf("planner invoked %d times, stats say %d", got, st.Planned)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("hit rate %v, want > 0", st.HitRate())
	}
}

func TestGetPromotesRecency(t *testing.T) {
	s := New(Config{CacheEntries: 2, BatchWindow: -1})
	defer s.Close()
	a, b, c := req(256, 8, 2, 0), req(512, 8, 2, 0), req(1024, 8, 2, 0)
	for _, r := range []plan.Request{a, b} {
		if _, _, err := s.Do(context.Background(), r, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b becomes LRU, then insert c: b must be the eviction.
	if _, hit, _ := s.Do(context.Background(), a, nil); !hit {
		t.Fatal("a should be resident")
	}
	if _, _, err := s.Do(context.Background(), c, nil); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := s.Do(context.Background(), a, nil); !hit {
		t.Fatal("a was evicted despite being most recently used")
	}
	if _, hit, _ := s.Do(context.Background(), b, nil); hit {
		t.Fatal("b survived eviction despite being least recently used")
	}
}

func TestKappaBucketsShareAndSplitCacheLines(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()
	// Same decade → one plan line; different decade → another.
	if _, hit, err := s.Do(context.Background(), req(4096, 64, 8, 2e9), nil); err != nil || hit {
		t.Fatalf("cold κ=2e9: hit=%v err=%v", hit, err)
	}
	if _, hit, err := s.Do(context.Background(), req(4096, 64, 8, 9e9), nil); err != nil || !hit {
		t.Fatalf("κ=9e9 should share κ=2e9's bucket: hit=%v err=%v", hit, err)
	}
	if _, hit, err := s.Do(context.Background(), req(4096, 64, 8, 2e10), nil); err != nil || hit {
		t.Fatalf("κ=2e10 is a different bucket: hit=%v err=%v", hit, err)
	}
	// The cached ill-conditioned plan must not be the plain CQR2 family.
	p, _, err := s.Do(context.Background(), req(4096, 64, 8, 5e9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Variant == plan.OneD || p.Variant == plan.Sequential || p.Variant == plan.CACQR2 {
		t.Fatalf("κ=5e9 served a plain-CQR2 plan: %v", p)
	}
}

func TestBatchingSharesOnePlanLookup(t *testing.T) {
	var planCalls int64
	release := make(chan struct{})
	s := New(Config{
		BatchWindow: 20 * time.Millisecond,
		Plan: func(r plan.Request) (plan.Plan, error) {
			atomic.AddInt64(&planCalls, 1)
			<-release // hold the lookup open so followers must join it
			return plan.Best(r)
		},
	})
	defer s.Close()

	const followers = 8
	var wg sync.WaitGroup
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.Do(context.Background(), req(2048, 16, 4, 0), nil)
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let everyone enqueue
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt64(&planCalls); got != 1 {
		t.Fatalf("burst of %d same-key requests made %d plan calls, want 1", followers, got)
	}
	st := s.Stats()
	if st.Planned != 1 || st.Batched != followers-1 {
		t.Fatalf("batch accounting: %+v", st)
	}
}

func TestPlanErrorPropagatesToWholeBatch(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	s := New(Config{
		BatchWindow: -1,
		Plan:        func(plan.Request) (plan.Plan, error) { calls++; return plan.Plan{}, boom },
	})
	defer s.Close()
	if _, _, err := s.Do(context.Background(), req(128, 8, 2, 0), nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Failed lookups must not be cached: the next request plans again.
	if _, _, err := s.Do(context.Background(), req(128, 8, 2, 0), nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("planner called %d times, want 2 (errors are not cached)", calls)
	}
}

func TestRankBudgetBoundsConcurrentExecution(t *testing.T) {
	const budget = 8
	s := New(Config{RankBudget: budget, BatchWindow: -1})
	defer s.Close()

	var inFlight, peak int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// 256×8 over ≤4 ranks: every plan holds ≥1 token, most hold 4.
			_, _, err := s.Do(context.Background(), req(256, 8, 4, 0), func(p plan.Plan) error {
				cur := atomic.AddInt64(&inFlight, int64(p.Procs))
				for {
					old := atomic.LoadInt64(&peak)
					if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				atomic.AddInt64(&inFlight, -int64(p.Procs))
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := atomic.LoadInt64(&peak); p > budget {
		t.Fatalf("peak in-flight simulated ranks %d exceeded budget %d", p, budget)
	}
	if st := s.Stats(); st.InFlightRanks != 0 {
		t.Fatalf("tokens leaked: %+v", st)
	}
}

func TestOversizedPlanStillRuns(t *testing.T) {
	s := New(Config{RankBudget: 2, BatchWindow: -1})
	defer s.Close()
	ran := false
	// 1024×8 over ≤16 ranks can choose a plan wider than the budget of 2;
	// the gate clamps instead of deadlocking.
	_, _, err := s.Do(context.Background(), req(1024, 8, 16, 0), func(p plan.Plan) error { ran = true; return nil })
	if err != nil || !ran {
		t.Fatalf("oversized plan: ran=%v err=%v", ran, err)
	}
}

func TestConcurrentMixedShapeSubmission(t *testing.T) {
	s := New(Config{CacheEntries: 4})
	defer s.Close()
	shapes := []plan.Request{
		req(256, 8, 4, 0),
		req(512, 16, 4, 0),
		req(1024, 8, 8, 1e10),
		req(2048, 16, 8, 0),
	}
	const perShape = 6
	var wg sync.WaitGroup
	var execs int64
	for round := 0; round < perShape; round++ {
		for _, r := range shapes {
			wg.Add(1)
			go func(r plan.Request) {
				defer wg.Done()
				_, _, err := s.Do(context.Background(), r, func(plan.Plan) error {
					atomic.AddInt64(&execs, 1)
					return nil
				})
				if err != nil {
					t.Errorf("%dx%d: %v", r.M, r.N, err)
				}
			}(r)
		}
	}
	wg.Wait()
	st := s.Stats()
	want := int64(len(shapes) * perShape)
	if st.Requests != want || atomic.LoadInt64(&execs) != want {
		t.Fatalf("requests %d execs %d, want %d", st.Requests, execs, want)
	}
	// 4 distinct keys in a 4-entry cache: exactly 4 planner calls, the
	// rest hits or batch joins.
	if st.Planned != int64(len(shapes)) {
		t.Fatalf("planned %d, want %d: %+v", st.Planned, len(shapes), st)
	}
	if st.Hits+st.Batched != want-int64(len(shapes)) {
		t.Fatalf("amortization accounting off: %+v", st)
	}
}

func TestExecErrorsDoNotPoisonCache(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()
	boom := errors.New("exec failed")
	if _, _, err := s.Do(context.Background(), req(256, 8, 2, 0), func(plan.Plan) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want exec error", err)
	}
	// The plan itself was fine — the retry hits the cache.
	if _, hit, err := s.Do(context.Background(), req(256, 8, 2, 0), nil); err != nil || !hit {
		t.Fatalf("retry: hit=%v err=%v", hit, err)
	}
}

func TestCloseRefusesAndDrains(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	started := make(chan struct{})
	block := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Do(context.Background(), req(256, 8, 2, 0), func(plan.Plan) error {
			close(started)
			<-block
			return nil
		})
		done <- err
	}()
	<-started
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a request was executing")
	case <-time.After(10 * time.Millisecond):
	}
	close(block)
	<-closed
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
	if _, _, err := s.Do(context.Background(), req(256, 8, 2, 0), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestStatsString(t *testing.T) {
	// HitRate on the zero value must not divide by zero.
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("zero-stats hit rate %v", r)
	}
	_ = fmt.Sprintf("%+v", Stats{Requests: 1})
}
