package serve

import (
	"container/list"
	"sync"

	"cacqr/internal/plan"
)

// planCache is a bounded LRU of planner decisions keyed by
// plan.CacheKey. It is safe for concurrent use; Get promotes, Put
// inserts-or-refreshes and evicts the least recently used entry past
// capacity. Hit/miss/eviction counters are cumulative over the cache's
// lifetime.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[plan.CacheKey]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  plan.CacheKey
	plan plan.Plan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[plan.CacheKey]*list.Element, capacity),
	}
}

func (c *planCache) Get(k plan.CacheKey) (plan.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return plan.Plan{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

func (c *planCache) Put(k plan.CacheKey, p plan.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, plan: p})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// snapshot returns the cumulative counters and current entry count.
func (c *planCache) snapshot() (hits, misses, evictions int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len()
}
