package serve

import (
	"container/list"

	"cacqr/internal/plan"
)

// planCache is a bounded LRU of planner decisions keyed by
// plan.CacheKey. It is NOT concurrency-safe and keeps no counters: the
// owning Server serializes access under its own mutex and maintains the
// hit/miss/eviction ledger there, so a cache consult and the counter it
// updates are one atomic step — a concurrent Stats scrape can never
// observe a hit/miss pair mid-update.
type planCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[plan.CacheKey]*list.Element
}

type cacheEntry struct {
	key  plan.CacheKey
	plan plan.Plan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[plan.CacheKey]*list.Element, capacity),
	}
}

// Get returns the cached plan for k, promoting it to most recently
// used.
func (c *planCache) Get(k plan.CacheKey) (plan.Plan, bool) {
	el, ok := c.entries[k]
	if !ok {
		return plan.Plan{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// Put inserts-or-refreshes k and reports how many entries were evicted
// to stay within capacity.
func (c *planCache) Put(k plan.CacheKey, p plan.Plan) (evicted int) {
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).plan = p
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, plan: p})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// Len is the current population.
func (c *planCache) Len() int { return c.order.Len() }
