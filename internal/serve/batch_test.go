package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cacqr/internal/plan"
)

// Saturating the pending bound must refuse promptly with ErrOverloaded —
// no queueing, no deadlock — while every admitted request completes.
func TestOverloadRefusesPromptlyWithoutDroppingWork(t *testing.T) {
	const maxPending = 4
	release := make(chan struct{})
	s := New(Config{BatchWindow: -1, MaxPending: maxPending})
	defer s.Close()

	var started sync.WaitGroup
	var execDone int64
	errCh := make(chan error, maxPending)
	for i := 0; i < maxPending; i++ {
		started.Add(1)
		go func() {
			_, _, err := s.Do(context.Background(), req(256, 8, 4, 0), func(plan.Plan) error {
				started.Done()
				<-release
				atomic.AddInt64(&execDone, 1)
				return nil
			})
			errCh <- err
		}()
	}
	started.Wait() // all maxPending slots held by executing requests

	// The next request must fail fast, not wait for capacity.
	t0 := time.Now()
	_, _, err := s.Do(context.Background(), req(256, 8, 4, 0), nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Do: err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("overload refusal took %v, want prompt", d)
	}
	st := s.Stats()
	if st.Overloaded != 1 || st.Pending != maxPending || st.MaxPending != maxPending {
		t.Fatalf("under saturation: %+v", st)
	}

	// DoBatch respects the same bound in units.
	if _, _, err := s.DoBatch(context.Background(), req(256, 8, 4, 0), 1, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated DoBatch: err = %v, want ErrOverloaded", err)
	}

	// No dropped in-flight work: every admitted request completes.
	close(release)
	for i := 0; i < maxPending; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	if got := atomic.LoadInt64(&execDone); got != maxPending {
		t.Fatalf("%d of %d admitted execs ran", got, maxPending)
	}
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("pending = %d after drain", st.Pending)
	}
}

// A batch larger than the whole bound must be refused outright rather
// than admitted partially.
func TestDoBatchLargerThanBoundIsRefused(t *testing.T) {
	s := New(Config{BatchWindow: -1, MaxPending: 8})
	defer s.Close()
	if _, _, err := s.DoBatch(context.Background(), req(256, 8, 4, 0), 9, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized batch: err = %v, want ErrOverloaded", err)
	}
	if _, _, err := s.DoBatch(context.Background(), req(256, 8, 4, 0), 8, nil); err != nil {
		t.Fatalf("exact-fit batch: %v", err)
	}
}

// DoBatch: one plan resolution and one exec for n request units, with
// the counters and histograms accounting for all n.
func TestDoBatchSharesOnePlanAndExec(t *testing.T) {
	var planCalls, execCalls int64
	s := New(Config{
		BatchWindow: -1,
		Plan: func(r plan.Request) (plan.Plan, error) {
			atomic.AddInt64(&planCalls, 1)
			return plan.Best(r)
		},
	})
	defer s.Close()

	const n = 57
	_, hit, err := s.DoBatch(context.Background(), req(512, 32, 8, 10), n, func(plan.Plan) error {
		atomic.AddInt64(&execCalls, 1)
		return nil
	})
	if err != nil || hit {
		t.Fatalf("cold batch: hit=%v err=%v", hit, err)
	}
	if planCalls != 1 || execCalls != 1 {
		t.Fatalf("planCalls=%d execCalls=%d, want 1 and 1", planCalls, execCalls)
	}
	st := s.Stats()
	if st.Requests != n || st.FusedBatches != 1 || st.FusedRequests != n {
		t.Fatalf("batch accounting: %+v", st)
	}
	key := plan.KeyFor(req(512, 32, 8, 10)).String()
	if lat, ok := st.Latencies[key]; !ok || lat.Count != n {
		t.Fatalf("latency histogram for %q: %+v (ok=%v)", key, lat, ok)
	}
	// A second batch hits the cache.
	if _, hit, err := s.DoBatch(context.Background(), req(512, 32, 8, 10), 3, nil); err != nil || !hit {
		t.Fatalf("warm batch: hit=%v err=%v", hit, err)
	}
	if planCalls != 1 {
		t.Fatalf("warm batch re-planned: planCalls=%d", planCalls)
	}
}

func TestDoBatchRejectsNonPositiveCount(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()
	if _, _, err := s.DoBatch(context.Background(), req(256, 8, 4, 0), 0, nil); err == nil {
		t.Fatal("DoBatch(0) must error")
	}
}

// Concurrent same-key DoFused callers inside one window must share ONE
// lead execution, each receiving its own per-payload error.
func TestDoFusedSharesOneExecution(t *testing.T) {
	var leads int64
	s := New(Config{BatchWindow: -1, FuseWindow: 50 * time.Millisecond})
	defer s.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.DoFused(context.Background(), req(512, 32, 8, 10), i, func(_ plan.Plan, payloads []any) []error {
				atomic.AddInt64(&leads, 1)
				out := make([]error, len(payloads))
				for j, pl := range payloads {
					if pl.(int)%2 == 1 {
						out[j] = fmt.Errorf("odd payload %d", pl)
					}
				}
				return out
			})
		}(i)
	}
	wg.Wait()
	if got := atomic.LoadInt64(&leads); got != 1 {
		t.Fatalf("lead executed %d times, want 1 fused execution", got)
	}
	for i, err := range errs {
		if i%2 == 1 && err == nil {
			t.Fatalf("payload %d: want its per-item error", i)
		}
		if i%2 == 0 && err != nil {
			t.Fatalf("payload %d: unexpected %v", i, err)
		}
	}
	st := s.Stats()
	if st.FusedBatches != 1 || st.FusedRequests != n {
		t.Fatalf("fuse accounting: %+v", st)
	}
}

// Regression: Close must drain a partially-filled fuse window
// immediately instead of waiting out FuseWindow or deadlocking.
func TestCloseDrainsPartialFuseWindow(t *testing.T) {
	s := New(Config{BatchWindow: -1, FuseWindow: time.Hour})
	executed := make(chan int, 1)
	done := make(chan error, 1)
	go func() {
		_, _, err := s.DoFused(context.Background(), req(256, 8, 4, 0), 0, func(_ plan.Plan, payloads []any) []error {
			executed <- len(payloads)
			return nil
		})
		done <- err
	}()
	// Wait until the leader has opened its window.
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		open := len(s.fusing) > 0
		s.mu.Unlock()
		if open {
			break
		}
		select {
		case <-deadline:
			t.Fatal("fuse window never opened")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case n := <-executed:
		if n != 1 {
			t.Fatalf("drained window carried %d payloads, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partially-filled window did not drain on Close")
	}
	if err := <-done; err != nil {
		t.Fatalf("drained request failed: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after drain")
	}
	// And post-close submissions are refused.
	if _, _, err := s.DoFused(context.Background(), req(256, 8, 4, 0), 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close DoFused: err = %v, want ErrClosed", err)
	}
}

// The full concurrent mix — Submit-style Do, DoBatch, DoFused, Stats,
// and a mid-flight Close — exercised for the race detector.
func TestConcurrentBatchFuseStatsClose(t *testing.T) {
	s := New(Config{
		BatchWindow: time.Millisecond,
		FuseWindow:  time.Millisecond,
		MaxPending:  64,
	})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				r := req(256+64*(g%3), 8, 4, 0)
				switch i % 3 {
				case 0:
					s.Do(context.Background(), r, func(plan.Plan) error { return nil })
				case 1:
					s.DoBatch(context.Background(), r, 3, func(plan.Plan) error { return nil })
				default:
					s.DoFused(context.Background(), r, i, func(_ plan.Plan, payloads []any) []error {
						return make([]error, len(payloads))
					})
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				s.Stats()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		s.Close() // close while windows are mid-flight
	}()
	wg.Wait()
	s.Close()
	// Post-close invariant: nothing pending, everything accounted.
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("pending = %d after close", st.Pending)
	}
}
