package serve

import "sync"

// rankGate is a weighted semaphore over simulated-rank tokens: an
// executing request holds as many tokens as its plan has ranks, so the
// total number of simulated-rank goroutines in flight stays bounded by
// the budget no matter how many requests arrive. Requests wanting more
// tokens than the whole budget are clamped to it — they run, but alone.
// FIFO fairness is not guaranteed; small requests may overtake a large
// one that is still waiting for the budget to drain.
type rankGate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail int
	cap   int
}

func newRankGate(budget int) *rankGate {
	g := &rankGate{avail: budget, cap: budget}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until n tokens are available and takes them, returning
// the count actually held (n clamped to the budget, floored at 1).
func (g *rankGate) acquire(n int) int {
	if n < 1 {
		n = 1
	}
	if n > g.cap {
		n = g.cap
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.avail < n {
		g.cond.Wait()
	}
	g.avail -= n
	return n
}

// release returns tokens taken by acquire.
func (g *rankGate) release(n int) {
	g.mu.Lock()
	g.avail += n
	g.mu.Unlock()
	g.cond.Broadcast()
}

// usage reports (held, budget).
func (g *rankGate) usage() (inFlight, budget int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cap - g.avail, g.cap
}
