package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is returned when the server's pending-request bound is
// reached: the request was refused at admission, before any planning or
// queueing, so the caller can shed load or retry with backoff. Nothing
// already admitted is ever dropped.
var ErrOverloaded = errors.New("serve: overloaded: pending-request bound reached")

// admission is the bounded front door: a counter of admitted-but-not-
// finished request units with a hard ceiling. It never queues — a
// request that would push pending past the bound is refused immediately
// with ErrOverloaded. That keeps worst-case memory and latency bounded
// under overload: the alternative (an unbounded cond-wait like the rank
// gate's) converts a traffic spike into an ever-growing queue whose
// every entry eventually times out anyway.
type admission struct {
	mu         sync.Mutex
	pending    int   // guarded by mu
	max        int   // immutable after newAdmission
	overloaded int64 // guarded by mu
}

func newAdmission(max int) *admission {
	return &admission{max: max}
}

// admit reserves n units, reporting false (and counting the refusal)
// when the bound would be exceeded. n is floored at 1.
func (ad *admission) admit(n int) bool {
	if n < 1 {
		n = 1
	}
	ad.mu.Lock()
	defer ad.mu.Unlock()
	if ad.pending+n > ad.max {
		ad.overloaded++
		return false
	}
	ad.pending += n
	return true
}

// done returns units reserved by admit.
func (ad *admission) done(n int) {
	if n < 1 {
		n = 1
	}
	ad.mu.Lock()
	ad.pending -= n
	ad.mu.Unlock()
}

// usage reports (pending, bound, refusals so far).
func (ad *admission) usage() (pending, max int, overloaded int64) {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	return ad.pending, ad.max, ad.overloaded
}

// rankGate is a weighted semaphore over simulated-rank tokens: an
// executing request holds as many tokens as its plan has ranks, so the
// total number of simulated-rank goroutines in flight stays bounded by
// the budget no matter how many requests arrive. Requests wanting more
// tokens than the whole budget are clamped to it — they run, but alone.
// FIFO fairness is not guaranteed; small requests may overtake a large
// one that is still waiting for the budget to drain.
type rankGate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail int // guarded by mu
	cap   int // immutable after newRankGate
}

func newRankGate(budget int) *rankGate {
	g := &rankGate{avail: budget, cap: budget}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until n tokens are available and takes them, returning
// the count actually held (n clamped to the budget, floored at 1). A
// canceled ctx abandons the wait with the context's error; no tokens are
// held on error.
func (g *rankGate) acquire(ctx context.Context, n int) (int, error) {
	if n < 1 {
		n = 1
	}
	if n > g.cap {
		n = g.cap
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	// Wake the cond wait when the context fires; taking the lock before
	// broadcasting pins waiters inside Wait so the wakeup cannot be lost.
	stop := context.AfterFunc(ctx, func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.cond.Broadcast()
	})
	defer stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.avail < n {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		g.cond.Wait()
	}
	g.avail -= n
	return n, nil
}

// release returns tokens taken by acquire.
func (g *rankGate) release(n int) {
	g.mu.Lock()
	g.avail += n
	g.mu.Unlock()
	g.cond.Broadcast()
}

// usage reports (held, budget).
func (g *rankGate) usage() (inFlight, budget int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cap - g.avail, g.cap
}
