package perf

import (
	"context"
	"net"
	"strconv"
	"time"

	"cacqr"
	"cacqr/internal/lin"
	"cacqr/internal/plan"
	"cacqr/internal/serve"
	"cacqr/internal/simmpi"
	"cacqr/internal/transport"
	"cacqr/internal/transport/tcpnet"
)

// Suite returns the fixed benchmark suite. Every case is deterministic
// (fixed seeds and shapes); quick selects smaller CI-sized instances of
// the same workloads, so quick and full reports are internally
// consistent but not comparable with each other.
//
// The factorization shapes mirror the paper's experiment families:
// a tall-skinny 1D grid (c = 1), the tunable c × d × c grid, and the
// binary-tree TSQR baseline, alongside the sequential CholeskyQR2 and
// the local level-3 kernels everything above is built from.
func Suite(quick bool, workers int) []Case {
	// Kernel shapes: tall-output GEMM (the Q = A·R⁻¹ apply shape), the
	// Gram SYRK, and the triangular solve.
	gm, gn, gk := 1024, 1024, 64
	sm, sn := 4096, 256
	// Factorization shapes (m, n, grid):
	seqM, seqN := 16384, 128
	d1M, d1N, d1P := 16384, 64, 16
	d3M, d3N, d3C, d3D := 4096, 128, 2, 8
	tsM, tsN, tsP := 16384, 64, 16
	// Planner shapes: the overhead case plans a paper-scale shape (pure
	// arithmetic, no simulation); the auto case runs the planner plus
	// the planned factorization at the cacqr2-3d shape's scale.
	plM, plN, plP := 1<<20, 1<<10, 4096
	auP := d3C * d3D * d3C
	if quick {
		gm, gn, gk = 512, 512, 64
		sm, sn = 1024, 128
		seqM, seqN = 2048, 64
		d1M, d1N, d1P = 4096, 32, 8
		d3M, d3N, d3C, d3D = 1024, 64, 2, 4
		tsM, tsN, tsP = 4096, 32, 8
		plM, plN, plP = 1<<18, 256, 512
		auP = d3C * d3D * d3C
	}

	ga := lin.RandomMatrix(gm, gk, 201)
	gb := lin.RandomMatrix(gk, gn, 202)
	gc := lin.NewMatrix(gm, gn)
	sa := lin.RandomMatrix(sm, sn, 203)
	sc := lin.NewMatrix(sn, sn)
	ta := upperFromGram(sn, 204)
	tb := lin.RandomMatrix(sm, sn, 205)

	seqA := cacqr.RandomMatrix(seqM, seqN, 206)
	// The streaming pair for seq-cqr2: same matrix, factored out-of-core
	// in m/8 row panels with Q written to a dense sink. Its Flops column
	// is the stream model's total (panel CQR2s both passes, merge QRs,
	// down-sweep, Q applies), so the ns/flop of the two rows is directly
	// comparable.
	stB := seqM / 8
	streamCost, err := cacqr.ModelStreamTSQR(seqM, seqN, stB, true)
	if err != nil {
		panic("perf: stream model rejected the suite shape: " + err.Error())
	}
	d1A := cacqr.RandomMatrix(d1M, d1N, 207)
	d3A := cacqr.RandomMatrix(d3M, d3N, 208)
	tsA := cacqr.RandomMatrix(tsM, tsN, 209)
	// The condition-estimator case measures what AutoFactorize pays per
	// request when no CondEst hint is given, on the expensive path: at
	// κ=1e10 the Gram route's Cholesky fails and the estimator runs its
	// Householder-QR fallback (2mn²) — the worst case a caller sees.
	// The shifted case is the stable three-pass fallback the
	// condition-aware router dispatches for κ ≳ 10⁷.
	ceA := lin.RandomWithCond(sm, sn, 1e10, 210)
	shA := cacqr.RandomWithCond(d1M, d1N, 1e10, 211)
	opts := cacqr.Options{Workers: workers}
	// Serving-layer fixtures: the internal plan-caching server for the
	// pure lookup case and the public server for the end-to-end case.
	// Batch windows are off — the suite measures lookup and execution
	// cost, not admission latency — and Measure's warm-up op populates
	// each cache before timing starts.
	planServer := serve.New(serve.Config{BatchWindow: -1})
	submitServer, err := cacqr.NewServer(cacqr.ServerOptions{Procs: auP, BatchWindow: -1, Options: opts})
	if err != nil {
		panic("perf: server options invalid by construction: " + err.Error())
	}
	// The traced twin of submitServer: every request sampled, a small
	// retention ring so the suite doesn't accumulate span trees.
	tracedOpts := opts
	tracedOpts.Tracer = cacqr.NewTracer(cacqr.TracerOptions{SampleEvery: 1, Retain: 4})
	tracedServer, err := cacqr.NewServer(cacqr.ServerOptions{Procs: auP, BatchWindow: -1, Options: tracedOpts})
	if err != nil {
		panic("perf: server options invalid by construction: " + err.Error())
	}
	// Throughput-mode fixtures: a flood of same-shape small QRs, driven
	// once as per-request Submits and once as one fused SubmitBatch. The
	// ratio of these two rows is the batched mode's throughput multiplier
	// (the CondEst hint routes both paths into the CQR2 family).
	nbB, bM, bN, bP := 256, 512, 32, 8
	if quick {
		nbB, bM, bN = 64, 256, 16
	}
	batchReqs := make([]cacqr.SubmitRequest, nbB)
	for i := range batchReqs {
		batchReqs[i] = cacqr.SubmitRequest{A: cacqr.RandomMatrix(bM, bN, int64(300+i)), Procs: bP, CondEst: 10}
	}
	batchServer, err := cacqr.NewServer(cacqr.ServerOptions{Procs: bP, BatchWindow: -1, Options: opts})
	if err != nil {
		panic("perf: server options invalid by construction: " + err.Error())
	}
	// Transport fixtures: the same 4-rank Allreduce once on the simulated
	// runtime and once across in-process TCP workers (loopback listeners
	// that live for the process). The pair prices the real-transport
	// overhead — framing, syscalls, goroutine handoff — against the
	// simulation's zero-cost data movement at identical charged traffic.
	arN, arP := 1<<16, 4
	if quick {
		arN = 1 << 14
	}
	arVec := make([]float64, arN)
	for i := range arVec {
		arVec[i] = float64(i%1024) / 1024
	}
	arBody := func(p transport.Proc) error {
		_, err := p.World().Allreduce(arVec)
		return err
	}
	arAddrs := make([]string, arP-1)
	for i := range arAddrs {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			panic("perf: transport fixture listen: " + lerr.Error())
		}
		arAddrs[i] = ln.Addr().String()
		go tcpnet.Serve(ln, func(p transport.Proc, _ []byte) error { return arBody(p) })
	}
	arCoord := &tcpnet.Coordinator{Workers: arAddrs}

	nameSz := func(base string, dims ...int) string {
		s := base
		for _, d := range dims {
			s += "-" + itoa(d)
		}
		return s
	}

	return []Case{
		{
			Name:  nameSz("gemm-blocked", gm, gn, gk),
			Flops: lin.GemmFlops(gm, gn, gk),
			Run: func() (Stats, error) {
				lin.Gemm(false, false, 1, ga, gb, 0, gc)
				return Stats{}, nil
			},
		},
		{
			Name:  nameSz("gemm-parallel", gm, gn, gk),
			Flops: lin.GemmFlops(gm, gn, gk),
			Run: func() (Stats, error) {
				lin.GemmParallel(0, false, false, 1, ga, gb, 0, gc)
				return Stats{}, nil
			},
		},
		{
			Name:  nameSz("syrk-parallel", sm, sn),
			Flops: lin.SyrkFlops(sm, sn),
			Run: func() (Stats, error) {
				lin.SyrkParallel(0, 1, sa, 0, sc)
				return Stats{}, nil
			},
		},
		{
			Name:  nameSz("trsm-parallel", sm, sn),
			Flops: lin.TrsmFlops(sm, sn),
			Run: func() (Stats, error) {
				x := tb.Clone()
				lin.TrsmParallel(0, lin.Right, lin.Upper, false, ta, x)
				return Stats{}, nil
			},
		},
		{
			Name:  nameSz("seq-cqr2", seqM, seqN),
			Flops: lin.CQR2Flops(seqM, seqN),
			Run: func() (Stats, error) {
				_, _, err := cacqr.CholeskyQR2(seqA)
				return Stats{}, err
			},
		},
		{
			// In-core vs out-of-core at the same shape: this row versus
			// seq-cqr2 is the streaming tax — two passes over the source,
			// the R-chain merges, and the panel-Q recomputation — paid for
			// a peak resident footprint of one panel plus the R-tree
			// instead of the whole matrix.
			Name:  nameSz("stream-tsqr", seqM, seqN) + "-b" + itoa(stB),
			Flops: streamCost.TotalFlops(),
			Run: func() (Stats, error) {
				_, err := cacqr.FactorizeStreaming(
					cacqr.SourceFromDense(seqA), cacqr.SinkToDense(),
					cacqr.Options{Workers: workers, PanelRows: stB})
				return Stats{}, err
			},
		},
		{
			Name:  nameSz("cacqr2-1d", d1M, d1N) + "-p" + itoa(d1P),
			Flops: lin.CQR2Flops(d1M, d1N),
			Run: func() (Stats, error) {
				res, err := cacqr.FactorizeOnGrid(d1A, cacqr.GridSpec{C: 1, D: d1P}, opts)
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: res.Stats.Msgs, Words: res.Stats.Words}, nil
			},
		},
		{
			Name:  nameSz("cacqr2-3d", d3M, d3N) + "-c" + itoa(d3C) + "-d" + itoa(d3D),
			Flops: lin.CQR2Flops(d3M, d3N),
			Run: func() (Stats, error) {
				res, err := cacqr.FactorizeOnGrid(d3A, cacqr.GridSpec{C: d3C, D: d3D}, opts)
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: res.Stats.Msgs, Words: res.Stats.Words}, nil
			},
		},
		{
			Name:  nameSz("tsqr", tsM, tsN) + "-p" + itoa(tsP),
			Flops: lin.HouseholderQRFlops(tsM, tsN),
			Run: func() (Stats, error) {
				res, err := cacqr.FactorizeTSQR(tsA, tsP, 0, opts)
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: res.Stats.Msgs, Words: res.Stats.Words}, nil
			},
		},
		{
			// The condition-aware router's fallback: distributed shifted
			// CholeskyQR3 at the 1D shape and rank count, on an input
			// plain CQR2 cannot factor (κ=1e10). ~1.5× the cacqr2-1d
			// row's flops is the price of unconditional-ish stability.
			Name:  nameSz("shifted-cqr3", d1M, d1N) + "-p" + itoa(d1P),
			Flops: 3 * lin.CQR2Flops(d1M, d1N) / 2,
			Run: func() (Stats, error) {
				res, err := cacqr.FactorizeShifted1D(shA, d1P, opts)
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: res.Stats.Msgs, Words: res.Stats.Words}, nil
			},
		},
		{
			// Condition-estimator overhead on the ill-conditioned path:
			// the Gram SYRK + 50 power iterations, then the
			// Householder-QR fallback once the Gram Cholesky fails.
			Name:  nameSz("cond-estimate", sm, sn),
			Flops: lin.SyrkFlops(sm, sn) + lin.HouseholderQRFlops(sm, sn),
			Run: func() (Stats, error) {
				lin.EstimateCond(ceA, 50)
				return Stats{}, nil
			},
		},
		{
			// Planner overhead: enumerate + rank every variant and grid
			// for a paper-scale shape. Pure cost-model arithmetic — this
			// is what a future serving layer would pay per request.
			Name: nameSz("plan-grid", plM, plN) + "-p" + itoa(plP),
			Run: func() (Stats, error) {
				_, err := cacqr.PlanGrid(plM, plN, plP, cacqr.Options{})
				return Stats{}, err
			},
		},
		{
			// Planned vs fixed grid: AutoFactorize at the cacqr2-3d
			// case's shape and rank count, so the two rows' ns/op and
			// communication can be compared directly in the report.
			Name:  nameSz("cacqr2-auto", d3M, d3N) + "-p" + itoa(auP),
			Flops: lin.CQR2Flops(d3M, d3N),
			Run: func() (Stats, error) {
				res, err := cacqr.AutoFactorize(d3A, auP, opts)
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: res.Stats.Msgs, Words: res.Stats.Words}, nil
			},
		},
		{
			// Fresh planning per request: what a serving layer without a
			// plan cache would pay on every arrival of this shape — the
			// same enumeration the plan-grid case times, at the serving
			// layer's κ-bucketed request.
			Name: nameSz("serve-plan-fresh", plM, plN) + "-p" + itoa(plP),
			Run: func() (Stats, error) {
				_, err := plan.Best(plan.Bucketed(plan.Request{M: plM, N: plN, Procs: plP}))
				return Stats{}, err
			},
		},
		{
			// The cached path for the identical request: one LRU lookup
			// through internal/serve (the warm-up op populates the
			// cache). The fresh-vs-cached ratio of these two rows is the
			// serving layer's per-request planning amortization.
			Name: nameSz("serve-plan-cached", plM, plN) + "-p" + itoa(plP),
			Run: func() (Stats, error) {
				_, _, err := planServer.Do(context.Background(), plan.Request{M: plM, N: plN, Procs: plP}, nil)
				return Stats{}, err
			},
		},
		{
			// End to end through the public server at the cacqr2-auto
			// case's shape and budget: Submit pays the per-request
			// condition estimate and the factorization, but answers the
			// plan from cache — compare with the cacqr2-auto row, which
			// re-plans every request.
			Name:  nameSz("serve-submit-untraced", d3M, d3N) + "-p" + itoa(auP),
			Flops: lin.CQR2Flops(d3M, d3N),
			Run: func() (Stats, error) {
				res, err := submitServer.Submit(cacqr.SubmitRequest{A: d3A})
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: res.Stats.Msgs, Words: res.Stats.Words}, nil
			},
		},
		{
			// The identical request through a server whose tracer samples
			// every request: condest/plan/gate/execute stages, per-rank
			// spans, per-collective spans, metrics aggregation. Against
			// serve-submit-untraced this row prices full instrumentation;
			// the untraced row against its own baseline gates that the
			// nil-tracer fast path stays free.
			Name:  nameSz("serve-submit-traced", d3M, d3N) + "-p" + itoa(auP),
			Flops: lin.CQR2Flops(d3M, d3N),
			Run: func() (Stats, error) {
				res, err := tracedServer.Submit(cacqr.SubmitRequest{A: d3A})
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: res.Stats.Msgs, Words: res.Stats.Words}, nil
			},
		},
		{
			// The throughput-mode baseline: the same flood of small QRs,
			// one Submit per request — each paying its own plan-cache
			// lookup, gate admission, and goroutine-pool spin-up.
			Name:  nameSz("serve-sequential-submits", nbB, bM, bN),
			Flops: int64(nbB) * lin.CQR2Flops(bM, bN),
			Run: func() (Stats, error) {
				for i := range batchReqs {
					if _, err := batchServer.Submit(batchReqs[i]); err != nil {
						return Stats{}, err
					}
				}
				return Stats{}, nil
			},
		},
		{
			// The fused path for the identical flood: one SubmitBatch —
			// one plan resolution and one strided BatchSYRK/BatchGEMM
			// sweep per CholeskyQR pass for the whole batch. This row
			// versus serve-sequential-submits is the ISSUE's ≥2×
			// throughput acceptance gate.
			Name:  nameSz("serve-batch-fused", nbB, bM, bN),
			Flops: int64(nbB) * lin.CQR2Flops(bM, bN),
			Run: func() (Stats, error) {
				for _, it := range batchServer.SubmitBatch(batchReqs) {
					if it.Err != nil {
						return Stats{}, it.Err
					}
				}
				return Stats{}, nil
			},
		},
		{
			// One 4-rank Allreduce on the simulated runtime: the charged
			// traffic is model cost only, data never moves.
			Name: nameSz("transport-sim-allreduce", arN) + "-p" + itoa(arP),
			Run: func() (Stats, error) {
				st, err := simmpi.Run(arP, func(p *simmpi.Proc) error { return arBody(p) })
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: st.MaxMsgs, Words: st.MaxWords}, nil
			},
		},
		{
			// The identical Allreduce across TCP workers: same charged
			// traffic, but the vector really crosses sockets — this row
			// versus transport-sim-allreduce is the per-collective price
			// of the real transport.
			Name: nameSz("transport-tcp-allreduce", arN) + "-p" + itoa(arP),
			Run: func() (Stats, error) {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				st, err := arCoord.Run(ctx, func(int) []byte { return nil }, arBody)
				if err != nil {
					return Stats{}, err
				}
				return Stats{Msgs: st.MaxMsgs, Words: st.MaxWords, Bytes: st.MaxBytes}, nil
			},
		},
	}
}

// upperFromGram builds a well-conditioned n×n upper-triangular solve
// target (the Cholesky factor of a Gram matrix plus a diagonal shift).
func upperFromGram(n int, seed int64) *lin.Matrix {
	t := lin.RandomMatrix(n, n, seed)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				v := t.At(i, j)
				if v < 0 {
					v = -v
				}
				t.Set(i, j, 2+v)
			case j < i:
				t.Set(i, j, 0)
			default:
				t.Set(i, j, t.At(i, j)*0.5/float64(n))
			}
		}
	}
	return t
}

func itoa(v int) string { return strconv.Itoa(v) }
