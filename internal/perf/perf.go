// Package perf is the reproducible performance harness behind cmd/bench:
// a fixed suite of paper-shape factorizations and kernel workloads, each
// measured into a machine-readable result (ns/op, GFLOP/s, and — for the
// distributed cases — the per-processor communication actually charged
// by the simulated runtime). Suites are deterministic: fixed seeds,
// fixed shapes, and kernels whose parallel execution is bitwise
// identical to serial, so run-to-run differences are wall-clock only.
//
// The emitted report (BENCH_results.json) is the PR-over-PR perf
// trajectory: CI regenerates it on every push, uploads it as an
// artifact, and fails when a case regresses past the tolerance against
// the checked-in BENCH_baseline.json.
package perf

import (
	"fmt"
	"runtime"
	"time"
)

// Stats is the communication a distributed case charged, in the paper's
// per-processor critical-path units. Zero for sequential cases. Bytes,
// when set, is measured wire traffic (TCP transport cases); otherwise
// bytes_communicated is derived as 8·Words.
type Stats struct {
	Msgs  int64
	Words int64
	Bytes int64
}

// Case is one suite entry: a named workload, its model flop count per
// operation (for GFLOP/s), and a Run closure performing one operation.
type Case struct {
	Name  string
	Flops int64
	Run   func() (Stats, error)
}

// Result is the measurement of one Case, shaped for BENCH_results.json.
type Result struct {
	Name       string  `json:"name"`
	Iters      int     `json:"iters"`
	NsPerOp    float64 `json:"ns_per_op"`
	GFlops     float64 `json:"gflops"`
	FlopsPerOp int64   `json:"flops_per_op"`
	MsgsPerOp  int64   `json:"msgs_per_proc"`
	WordsPerOp int64   `json:"words_per_proc"`
	BytesComm  int64   `json:"bytes_communicated"`
}

// Report is the full suite outcome plus enough host metadata to judge
// whether two reports are comparable.
type Report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Quick      bool     `json:"quick"`
	Workers    int      `json:"workers"`
	Results    []Result `json:"results"`
}

// Schema identifies the report layout; bump on incompatible change.
const Schema = "cacqr/bench/v1"

// Measure times one case: a warm-up op, then whole operations until
// minTime has elapsed (capped at maxIters). NsPerOp is the MINIMUM
// single-op time, not the mean: the minimum estimates the workload's
// floor and shrugs off scheduler noise on shared CI runners, which a
// 25% regression gate on a mean could never survive. Communication
// stats are taken from the final operation — the suite is
// deterministic, so every operation charges the same amounts.
func Measure(c Case, minTime time.Duration, maxIters int) (Result, error) {
	if maxIters < 1 {
		maxIters = 1
	}
	if _, err := c.Run(); err != nil {
		return Result{}, fmt.Errorf("perf: %s warm-up: %w", c.Name, err)
	}
	var (
		iters   int
		elapsed time.Duration
		best    time.Duration
		stats   Stats
	)
	for iters == 0 || (elapsed < minTime && iters < maxIters) {
		start := time.Now()
		st, err := c.Run()
		if err != nil {
			return Result{}, fmt.Errorf("perf: %s: %w", c.Name, err)
		}
		op := time.Since(start)
		elapsed += op
		if iters == 0 || op < best {
			best = op
		}
		stats = st
		iters++
	}
	ns := float64(best.Nanoseconds())
	res := Result{
		Name:       c.Name,
		Iters:      iters,
		NsPerOp:    ns,
		FlopsPerOp: c.Flops,
		MsgsPerOp:  stats.Msgs,
		WordsPerOp: stats.Words,
		BytesComm:  stats.Words * 8,
	}
	if stats.Bytes != 0 {
		res.BytesComm = stats.Bytes
	}
	if ns > 0 {
		res.GFlops = float64(c.Flops) / ns
	}
	return res, nil
}

// RunSuite measures the fixed suite. quick selects the CI-sized shapes;
// workers is the Options.Workers knob handed to the factorization cases
// (kernel cases exercise both serial and parallel paths explicitly).
// Progress lines go through logf when non-nil.
func RunSuite(quick bool, workers int, logf func(format string, args ...any)) (*Report, error) {
	minTime := time.Second
	maxIters := 20
	if quick {
		minTime = 300 * time.Millisecond
		maxIters = 10
	}
	cases := Suite(quick, workers)
	rep := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Workers:    workers,
	}
	for _, c := range cases {
		res, err := Measure(c, minTime, maxIters)
		if err != nil {
			return nil, err
		}
		if logf != nil {
			logf("%-32s %12.0f ns/op  %7.2f GFLOP/s  %10d bytes comm", res.Name, res.NsPerOp, res.GFlops, res.BytesComm)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
