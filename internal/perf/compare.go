package perf

import "fmt"

// Regression is one case that slowed past the tolerance versus baseline.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	Ratio      float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx)", r.Name, r.CurrentNs, r.BaselineNs, r.Ratio)
}

// MinGatedNs is the baseline ns/op below which a case is reported but
// never gated: sub-100µs latency probes (the cached plan lookup sits at
// ~250 ns) live at the scale of timer overhead and scheduler noise on a
// shared runner, where a 25% relative gate would flake without any real
// regression. Every compute case in the suite is well above this floor.
const MinGatedNs = 100_000

// Compare matches current results against baseline by case name and
// returns the cases whose ns/op exceeded baseline·tolerance, plus the
// baseline case names absent from the current report (a renamed or
// dropped case silently losing coverage should be visible, not fatal).
// Cases whose baseline is under MinGatedNs are never flagged — they are
// latency probes too fast for a stable relative gate. Baselines
// recorded in a different mode (quick vs full) share no case names, so
// everything lands in missing — callers should treat a fully missing
// baseline as a configuration error.
func Compare(baseline, current *Report, tolerance float64) (regs []Regression, missing []string) {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		if b.NsPerOp >= MinGatedNs && c.NsPerOp > b.NsPerOp*tolerance {
			regs = append(regs, Regression{
				Name:       b.Name,
				BaselineNs: b.NsPerOp,
				CurrentNs:  c.NsPerOp,
				Ratio:      c.NsPerOp / b.NsPerOp,
			})
		}
	}
	return regs, missing
}
