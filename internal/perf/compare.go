package perf

import "fmt"

// Regression is one case that slowed past the tolerance versus baseline.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	Ratio      float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx)", r.Name, r.CurrentNs, r.BaselineNs, r.Ratio)
}

// Compare matches current results against baseline by case name and
// returns the cases whose ns/op exceeded baseline·tolerance, plus the
// baseline case names absent from the current report (a renamed or
// dropped case silently losing coverage should be visible, not fatal).
// Baselines recorded in a different mode (quick vs full) share no case
// names, so everything lands in missing — callers should treat a fully
// missing baseline as a configuration error.
func Compare(baseline, current *Report, tolerance float64) (regs []Regression, missing []string) {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*tolerance {
			regs = append(regs, Regression{
				Name:       b.Name,
				BaselineNs: b.NsPerOp,
				CurrentNs:  c.NsPerOp,
				Ratio:      c.NsPerOp / b.NsPerOp,
			})
		}
	}
	return regs, missing
}
