package perf

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestMeasureCountsAndStats(t *testing.T) {
	calls := 0
	c := Case{
		Name:  "stub",
		Flops: 1000,
		Run: func() (Stats, error) {
			calls++
			return Stats{Msgs: 3, Words: 7}, nil
		},
	}
	res, err := Measure(c, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Zero minTime: one warm-up call plus exactly one measured iter.
	if calls != 2 || res.Iters != 1 {
		t.Fatalf("calls=%d iters=%d, want 2 and 1", calls, res.Iters)
	}
	if res.MsgsPerOp != 3 || res.WordsPerOp != 7 || res.BytesComm != 56 {
		t.Fatalf("stats not carried through: %+v", res)
	}
	if res.FlopsPerOp != 1000 {
		t.Fatalf("flops %d", res.FlopsPerOp)
	}
}

func TestMeasurePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Measure(Case{Name: "bad", Run: func() (Stats, error) { return Stats{}, boom }}, time.Millisecond, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSuiteNamesUniqueAndRunnable(t *testing.T) {
	for _, quick := range []bool{true, false} {
		seen := map[string]bool{}
		for _, c := range Suite(quick, 0) {
			if seen[c.Name] {
				t.Fatalf("duplicate case name %q (quick=%v)", c.Name, quick)
			}
			seen[c.Name] = true
			// The planner-overhead, serve-plan, and transport cases are
			// latency measurements with no flop model; every compute case
			// must have one.
			if c.Flops <= 0 && !strings.HasPrefix(c.Name, "plan") && !strings.HasPrefix(c.Name, "serve-plan") && !strings.HasPrefix(c.Name, "transport-") {
				t.Fatalf("case %q has no flop count", c.Name)
			}
		}
	}
}

// TestQuickSuiteSmoke runs each quick case exactly once end to end: the
// suite must produce valid measurements, and the distributed cases must
// report the communication the simulated runtime charged.
func TestQuickSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite takes a few seconds")
	}
	for _, c := range Suite(true, 0) {
		res, err := Measure(c, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if res.NsPerOp <= 0 || (res.FlopsPerOp > 0 && res.GFlops <= 0) {
			t.Fatalf("%s: implausible measurement %+v", c.Name, res)
		}
		if strings.HasPrefix(c.Name, "cacq") || strings.HasPrefix(c.Name, "tsqr") {
			if res.BytesComm <= 0 {
				t.Fatalf("%s: distributed case reported no communication", c.Name)
			}
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: Schema, GoVersion: "go1.21", GOOS: "linux", GOARCH: "amd64",
		NumCPU: 4, GoMaxProcs: 4, Quick: true,
		Results: []Result{{Name: "x", Iters: 2, NsPerOp: 1.5e6, GFlops: 2.5, FlopsPerOp: 100, MsgsPerOp: 1, WordsPerOp: 2, BytesComm: 16}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0] != rep.Results[0] || back.Schema != Schema {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Schema: Schema, Results: []Result{
		{Name: "a", NsPerOp: 1e6},
		{Name: "b", NsPerOp: 1e6},
		{Name: "gone", NsPerOp: 1e6},
		{Name: "probe", NsPerOp: 250}, // under MinGatedNs: never gated
	}}
	cur := &Report{Schema: Schema, Results: []Result{
		{Name: "a", NsPerOp: 1.20e6},  // within 25%
		{Name: "b", NsPerOp: 1.26e6},  // regressed
		{Name: "probe", NsPerOp: 900}, // 3.6× "slower", but a latency probe
		{Name: "new", NsPerOp: 50},
	}}
	regs, missing := Compare(base, cur, 1.25)
	if len(regs) != 1 || regs[0].Name != "b" {
		t.Fatalf("regs = %+v", regs)
	}
	if regs[0].Ratio < 1.25 || regs[0].Ratio > 1.27 {
		t.Fatalf("ratio = %v", regs[0].Ratio)
	}
	if len(missing) != 1 || missing[0] != "gone" {
		t.Fatalf("missing = %v", missing)
	}
}

// TestServedPlanCheaperThanFresh pins the serving layer's reason to
// exist: answering a repeated workload shape from the plan cache must
// beat re-running the planner's enumeration. The two paths differ by
// orders of magnitude (an LRU lookup vs pricing every variant and
// grid), so a 2× margin is conservative enough to survive CI noise.
func TestServedPlanCheaperThanFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock")
	}
	var fresh, cached *Result
	for _, c := range Suite(true, 0) {
		c := c
		switch {
		case strings.HasPrefix(c.Name, "serve-plan-fresh"):
			res, err := Measure(c, 50*time.Millisecond, 10)
			if err != nil {
				t.Fatal(err)
			}
			fresh = &res
		case strings.HasPrefix(c.Name, "serve-plan-cached"):
			res, err := Measure(c, 50*time.Millisecond, 10)
			if err != nil {
				t.Fatal(err)
			}
			cached = &res
		}
	}
	if fresh == nil || cached == nil {
		t.Fatal("serve-plan suite cases missing")
	}
	if cached.NsPerOp*2 > fresh.NsPerOp {
		t.Fatalf("cached plan lookup %.0f ns/op is not cheaper than fresh planning %.0f ns/op",
			cached.NsPerOp, fresh.NsPerOp)
	}
}
