package perf

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestMeasureCountsAndStats(t *testing.T) {
	calls := 0
	c := Case{
		Name:  "stub",
		Flops: 1000,
		Run: func() (Stats, error) {
			calls++
			return Stats{Msgs: 3, Words: 7}, nil
		},
	}
	res, err := Measure(c, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Zero minTime: one warm-up call plus exactly one measured iter.
	if calls != 2 || res.Iters != 1 {
		t.Fatalf("calls=%d iters=%d, want 2 and 1", calls, res.Iters)
	}
	if res.MsgsPerOp != 3 || res.WordsPerOp != 7 || res.BytesComm != 56 {
		t.Fatalf("stats not carried through: %+v", res)
	}
	if res.FlopsPerOp != 1000 {
		t.Fatalf("flops %d", res.FlopsPerOp)
	}
}

func TestMeasurePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Measure(Case{Name: "bad", Run: func() (Stats, error) { return Stats{}, boom }}, time.Millisecond, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSuiteNamesUniqueAndRunnable(t *testing.T) {
	for _, quick := range []bool{true, false} {
		seen := map[string]bool{}
		for _, c := range Suite(quick, 0) {
			if seen[c.Name] {
				t.Fatalf("duplicate case name %q (quick=%v)", c.Name, quick)
			}
			seen[c.Name] = true
			// The planner-overhead case is a latency measurement with no
			// flop model; every compute case must have one.
			if c.Flops <= 0 && !strings.HasPrefix(c.Name, "plan") {
				t.Fatalf("case %q has no flop count", c.Name)
			}
		}
	}
}

// TestQuickSuiteSmoke runs each quick case exactly once end to end: the
// suite must produce valid measurements, and the distributed cases must
// report the communication the simulated runtime charged.
func TestQuickSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite takes a few seconds")
	}
	for _, c := range Suite(true, 0) {
		res, err := Measure(c, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if res.NsPerOp <= 0 || (res.FlopsPerOp > 0 && res.GFlops <= 0) {
			t.Fatalf("%s: implausible measurement %+v", c.Name, res)
		}
		if strings.HasPrefix(c.Name, "cacq") || strings.HasPrefix(c.Name, "tsqr") {
			if res.BytesComm <= 0 {
				t.Fatalf("%s: distributed case reported no communication", c.Name)
			}
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: Schema, GoVersion: "go1.21", GOOS: "linux", GOARCH: "amd64",
		NumCPU: 4, GoMaxProcs: 4, Quick: true,
		Results: []Result{{Name: "x", Iters: 2, NsPerOp: 1.5e6, GFlops: 2.5, FlopsPerOp: 100, MsgsPerOp: 1, WordsPerOp: 2, BytesComm: 16}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0] != rep.Results[0] || back.Schema != Schema {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Schema: Schema, Results: []Result{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "gone", NsPerOp: 100},
	}}
	cur := &Report{Schema: Schema, Results: []Result{
		{Name: "a", NsPerOp: 120}, // within 25%
		{Name: "b", NsPerOp: 126}, // regressed
		{Name: "new", NsPerOp: 50},
	}}
	regs, missing := Compare(base, cur, 1.25)
	if len(regs) != 1 || regs[0].Name != "b" {
		t.Fatalf("regs = %+v", regs)
	}
	if regs[0].Ratio < 1.25 || regs[0].Ratio > 1.27 {
		t.Fatalf("ratio = %v", regs[0].Ratio)
	}
	if len(missing) != 1 || missing[0] != "gone" {
		t.Fatalf("missing = %v", missing)
	}
}
