package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cacqr/internal/lin"
)

func TestCholeskyQRBasics(t *testing.T) {
	for _, sh := range []struct{ m, n int }{{1, 1}, {8, 8}, {40, 10}, {100, 3}} {
		a := lin.RandomMatrix(sh.m, sh.n, int64(sh.m+sh.n))
		q, r, err := CholeskyQR(a, 1)
		if err != nil {
			t.Fatalf("%dx%d: %v", sh.m, sh.n, err)
		}
		if !r.IsUpperTriangular(1e-14) {
			t.Fatalf("%dx%d: R not upper triangular", sh.m, sh.n)
		}
		if e := lin.ResidualNorm(a, q, r); e > 1e-12 {
			t.Fatalf("%dx%d: residual %g", sh.m, sh.n, e)
		}
		if e := lin.OrthogonalityError(q); e > 1e-10 {
			t.Fatalf("%dx%d: orthogonality %g on well-conditioned input", sh.m, sh.n, e)
		}
	}
}

func TestCholeskyQRRejectsWide(t *testing.T) {
	if _, _, err := CholeskyQR(lin.NewMatrix(3, 5), 1); !errors.Is(err, lin.ErrShape) {
		t.Fatalf("got %v", err)
	}
}

func TestCholeskyQR2MatchesHouseholder(t *testing.T) {
	a := lin.RandomWithCond(60, 12, 1e4, 3)
	q, r, err := CholeskyQR2(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	qh, rh, err := lin.QR(a)
	if err != nil {
		t.Fatal(err)
	}
	// R is unique with positive diagonal, so both must agree.
	if !r.EqualWithin(rh, 1e-8*lin.MaxAbs(rh)*60) {
		t.Fatal("CQR2 R differs from Householder R")
	}
	if !q.EqualWithin(qh, 1e-8) {
		t.Fatal("CQR2 Q differs from Householder Q")
	}
}

func TestOrthogonalityDegradation(t *testing.T) {
	// The §I stability story: one pass loses orthogonality like κ², two
	// passes restore it to machine precision for κ ≲ 1/√ε.
	const m, n = 80, 10
	for _, cond := range []float64{1e2, 1e4, 1e6} {
		a := lin.RandomWithCond(m, n, cond, 42)
		q1, _, err := CholeskyQR(a, 1)
		if err != nil {
			t.Fatalf("κ=%g: %v", cond, err)
		}
		q2, _, err := CholeskyQR2(a, 1)
		if err != nil {
			t.Fatalf("κ=%g: %v", cond, err)
		}
		e1 := lin.OrthogonalityError(q1)
		e2 := lin.OrthogonalityError(q2)
		if e2 > 1e-12 {
			t.Fatalf("κ=%g: CQR2 orthogonality %g not at machine precision", cond, e2)
		}
		if cond >= 1e4 && e1 < 100*e2 {
			t.Fatalf("κ=%g: single-pass error %g should dwarf two-pass %g", cond, e1, e2)
		}
	}
	// Single-pass error must grow roughly like κ².
	aLo := lin.RandomWithCond(m, n, 1e2, 7)
	aHi := lin.RandomWithCond(m, n, 1e5, 7)
	qLo, _, err := CholeskyQR(aLo, 1)
	if err != nil {
		t.Fatal(err)
	}
	qHi, _, err := CholeskyQR(aHi, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lin.OrthogonalityError(qHi) < 1e2*lin.OrthogonalityError(qLo) {
		t.Fatalf("orthogonality loss does not grow with κ²: %g vs %g",
			lin.OrthogonalityError(qHi), lin.OrthogonalityError(qLo))
	}
}

func TestCholeskyQRFailsBeyondSqrtEps(t *testing.T) {
	// A singular matrix (zero column) makes the Gram matrix exactly
	// rank-deficient: CholeskyQR must fail cleanly, never panic.
	a := lin.RandomMatrix(60, 12, 5)
	for i := 0; i < 60; i++ {
		a.Set(i, 7, 0)
	}
	if _, _, err := CholeskyQR(a, 1); !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("got %v, want ErrIllConditioned", err)
	}
	// At κ ≈ 1e9 (κ² ≫ 1/ε) CholeskyQR either fails or returns a badly
	// non-orthogonal Q — it must never silently look accurate.
	b := lin.RandomWithCond(60, 12, 1e9, 5)
	q, _, err := CholeskyQR(b, 1)
	if err == nil {
		if e := lin.OrthogonalityError(q); e < 1e-4 {
			t.Fatalf("κ=1e9 single-pass orthogonality %g is implausibly good", e)
		}
	}
}

func TestShiftedCQR3HandlesIllConditioned(t *testing.T) {
	// The three-pass shifted variant must succeed where CQR2 fails.
	a := lin.RandomWithCond(60, 12, 1e9, 5)
	q, r, err := ShiftedCQR3(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := lin.OrthogonalityError(q); e > 1e-10 {
		t.Fatalf("shifted CQR3 orthogonality %g", e)
	}
	if e := lin.ResidualNorm(a, q, r); e > 1e-8 {
		t.Fatalf("shifted CQR3 residual %g", e)
	}
	if !r.IsUpperTriangular(1e-12 * lin.MaxAbs(r)) {
		t.Fatal("shifted CQR3 R not upper triangular")
	}
}

func TestShiftedCholeskyQRAlwaysFactors(t *testing.T) {
	// Even a rank-deficient matrix must pass the shifted first step.
	a := lin.NewMatrix(20, 5)
	for i := 0; i < 20; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 4, float64(i))
	}
	q, r, err := ShiftedCholeskyQR(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := lin.ResidualNorm(a, q, r); e > 1e-6 {
		t.Fatalf("shifted residual %g", e)
	}
}

func TestShiftedCholeskyQRZeroMatrix(t *testing.T) {
	// The all-zero matrix has no positive shift to offer; the shifted
	// variant must fail cleanly rather than divide by zero.
	if _, _, err := ShiftedCholeskyQR(lin.NewMatrix(6, 3), 1); !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("got %v, want ErrIllConditioned", err)
	}
	if _, _, err := ShiftedCholeskyQR(lin.NewMatrix(2, 3), 1); !errors.Is(err, lin.ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestCholeskyQR2Property(t *testing.T) {
	// Property over random seeds: residual and orthogonality at machine
	// precision for generic inputs.
	f := func(seed int64) bool {
		a := lin.RandomMatrix(24, 6, seed)
		q, r, err := CholeskyQR2(a, 1)
		if err != nil {
			return false
		}
		return lin.OrthogonalityError(q) < 1e-12 && lin.ResidualNorm(a, q, r) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCanCQR2Handle(t *testing.T) {
	if !CanCQR2Handle(1e3) {
		t.Fatal("κ=1e3 should be fine")
	}
	if CanCQR2Handle(1e8) {
		t.Fatal("κ=1e8 exceeds 1/√ε threshold")
	}
	if CanCQR2Handle(math.Inf(1)) {
		t.Fatal("κ=∞ accepted")
	}
}
