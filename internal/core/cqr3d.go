package core

import (
	"fmt"

	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/transport"
)

// ThreeDCQR2 is the paper's 3D-CQR2 (§III-A): CA-CQR2 specialized to the
// cubic grid c = d = P^{1/3}, the variant best suited to square-ish
// matrices. It builds the e×e×e grid over the first e³ members of comm
// and runs Algorithm 9 on it.
//
// aLocal is this rank's m/e × n/e cyclic block (rows over y, columns
// over x, replicated across depth z). Ranks outside the grid receive
// nil results.
func ThreeDCQR2(comm transport.Comm, aLocal *lin.Matrix, m, n, e int, prm Params) (qLocal, rLocal *lin.Matrix, err error) {
	g, err := grid.New(comm, e, e)
	if err != nil {
		return nil, nil, fmt.Errorf("core: 3D grid: %w", err)
	}
	if g == nil {
		return nil, nil, nil
	}
	return CACQR2(g, aLocal, m, n, prm)
}
