package core

import (
	"fmt"

	"cacqr/internal/dist"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// OneDCQR is the existing parallel 1D CholeskyQR (Algorithm 6) over a 1D
// grid of P processors: each rank owns an m/P × n row block of A.
//
//	line 1: X = Syrk(Π⟨A⟩)           (local, (m/P)·n² flops)
//	line 2: Z = Allreduce(X, Π)      (n² words)
//	line 3: Rᵀ, R⁻ᵀ = CholInv(Z)     (redundant, n³ flops)
//	line 4: Π⟨Q⟩ = MM(Π⟨A⟩, R⁻¹)     (local, 2(m/P)·n² flops)
//
// Returns this rank's Q block and the replicated n × n R.
//
// workers bounds the goroutines the rank's local level-3 kernels may
// use (≤ 1 = serial, the right default for simulated grids). Results
// are identical for any value.
func OneDCQR(comm *simmpi.Comm, aLocal *lin.Matrix, m, n, workers int) (qLocal, r *lin.Matrix, err error) {
	if workers < 1 {
		workers = 1
	}
	p := comm.Proc()
	np := comm.Size()
	if m%np != 0 {
		return nil, nil, fmt.Errorf("core: m=%d not divisible by P=%d", m, np)
	}
	if aLocal.Rows != m/np || aLocal.Cols != n {
		return nil, nil, fmt.Errorf("core: local block %dx%d, want %dx%d", aLocal.Rows, aLocal.Cols, m/np, n)
	}

	x := lin.SyrkNewParallel(workers, aLocal)
	if err := p.Compute(lin.SyrkFlops(aLocal.Rows, n)); err != nil {
		return nil, nil, err
	}

	zFlat, err := comm.Allreduce(dist.Flatten(x))
	if err != nil {
		return nil, nil, err
	}
	z, err := dist.Unflatten(n, n, zFlat)
	if err != nil {
		return nil, nil, err
	}

	l, y, err := lin.CholInv(z)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrIllConditioned, err)
	}
	if err := p.Compute(lin.CholFlops(n) + lin.TriInvFlops(n)); err != nil {
		return nil, nil, err
	}

	// Q = A·(L⁻¹)ᵀ = A·R⁻¹, charged at the TRMM rate (R⁻¹ triangular),
	// matching the paper's 4mn² + (5/3)n³ critical-path count.
	qLocal = lin.NewMatrix(aLocal.Rows, n)
	lin.GemmParallel(workers, false, true, 1, aLocal, y, 0, qLocal)
	if err := p.Compute(lin.TrsmFlops(aLocal.Rows, n)); err != nil {
		return nil, nil, err
	}
	return qLocal, l.T(), nil
}

// OneDCQR2 is Algorithm 7: two OneDCQR passes and a local triangular
// product R = R₂·R₁ ((1/3)n³ flops).
func OneDCQR2(comm *simmpi.Comm, aLocal *lin.Matrix, m, n, workers int) (qLocal, r *lin.Matrix, err error) {
	q1, r1, err := OneDCQR(comm, aLocal, m, n, workers)
	if err != nil {
		return nil, nil, err
	}
	q, r2, err := OneDCQR(comm, q1, m, n, workers)
	if err != nil {
		return nil, nil, err
	}
	r = r2.Clone()
	lin.Trmm(lin.Right, lin.Upper, false, r1, r)
	if err := comm.Proc().Compute(lin.TriInvFlops(n)); err != nil { // (1/3)n³
		return nil, nil, err
	}
	return q, r, nil
}
