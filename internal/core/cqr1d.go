package core

import (
	"fmt"

	"cacqr/internal/dist"
	"cacqr/internal/lin"
	"cacqr/internal/obs"
	"cacqr/internal/transport"
)

// OneDCQR is the existing parallel 1D CholeskyQR (Algorithm 6) over a 1D
// grid of P processors: each rank owns an m/P × n row block of A.
//
//	line 1: X = Syrk(Π⟨A⟩)           (local, (m/P)·n² flops)
//	line 2: Z = Allreduce(X, Π)      (n² words)
//	line 3: Rᵀ, R⁻ᵀ = CholInv(Z)     (redundant, n³ flops)
//	line 4: Π⟨Q⟩ = MM(Π⟨A⟩, R⁻¹)     (local, 2(m/P)·n² flops)
//
// Returns this rank's Q block and the replicated n × n R.
//
// workers bounds the goroutines the rank's local level-3 kernels may
// use (≤ 1 = serial, the right default for simulated grids). Results
// are identical for any value.
func OneDCQR(comm transport.Comm, aLocal *lin.Matrix, m, n, workers int) (qLocal, r *lin.Matrix, err error) {
	return oneDCholeskyQR(comm, aLocal, m, n, workers, false)
}

// oneDCholeskyQR is the shared body of the plain and shifted 1D
// CholeskyQR passes. The only difference is the shifted variant's
// diagonal shift s·I applied to the replicated Gram matrix before the
// Cholesky factorization (Fukaya et al., the paper's reference [3]):
// s = 11·(m·n + n·(n+1))·ε·‖A‖₂², bounded above via the Frobenius norm,
// which is the trace of the already-Allreduced Gram matrix — no extra
// communication and only O(n) uncharged local work. Keeping one body
// keeps the cost charging in one place, so the "measured γ == predicted
// γ" contract can never diverge between the two variants.
func oneDCholeskyQR(comm transport.Comm, aLocal *lin.Matrix, m, n, workers int, shifted bool) (qLocal, r *lin.Matrix, err error) {
	if workers < 1 {
		workers = 1
	}
	p := comm.Proc()
	np := comm.Size()
	if m%np != 0 {
		return nil, nil, fmt.Errorf("core: m=%d not divisible by P=%d", m, np)
	}
	if aLocal.Rows != m/np || aLocal.Cols != n {
		return nil, nil, fmt.Errorf("core: local block %dx%d, want %dx%d", aLocal.Rows, aLocal.Cols, m/np, n)
	}

	// Stage spans mirror the paper's per-line cost decomposition; a rank
	// without a trace span gets a nil *Stages and every call no-ops.
	stg := obs.StagesOf(p)
	defer stg.Done()

	stg.Enter("gram-syrk")
	x := lin.SyrkNewParallel(workers, aLocal)
	if err := p.Compute(lin.SyrkFlops(aLocal.Rows, n)); err != nil {
		return nil, nil, err
	}

	stg.Enter("gram-allreduce")
	zFlat, err := comm.Allreduce(dist.Flatten(x))
	if err != nil {
		return nil, nil, err
	}
	z, err := dist.Unflatten(n, n, zFlat)
	if err != nil {
		return nil, nil, err
	}

	if shifted {
		// ‖A‖₂² ≤ ‖A‖_F² = trace(AᵀA); the shift only needs an upper
		// bound, and the global trace is free once the Gram matrix is
		// replicated.
		norm2sq := 0.0
		for i := 0; i < n; i++ {
			if d := z.At(i, i); d > 0 {
				norm2sq += d
			}
		}
		s := 11 * float64(m*n+n*(n+1)) * lin.Eps * norm2sq
		for i := 0; i < n; i++ {
			z.Set(i, i, z.At(i, i)+s)
		}
	}

	stg.Enter("cholesky")
	l, y, err := lin.CholInv(z)
	if err != nil {
		if shifted {
			return nil, nil, fmt.Errorf("%w: shifted Gram still indefinite: %w", ErrIllConditioned, err)
		}
		return nil, nil, fmt.Errorf("%w: %w", ErrIllConditioned, err)
	}
	if err := p.Compute(lin.CholFlops(n) + lin.TriInvFlops(n)); err != nil {
		return nil, nil, err
	}

	// Q = A·(L⁻¹)ᵀ = A·R⁻¹, charged at the TRMM rate (R⁻¹ triangular),
	// matching the paper's 4mn² + (5/3)n³ critical-path count.
	stg.Enter("q-update")
	qLocal = lin.NewMatrix(aLocal.Rows, n)
	lin.GemmParallel(workers, false, true, 1, aLocal, y, 0, qLocal)
	if err := p.Compute(lin.TrsmFlops(aLocal.Rows, n)); err != nil {
		return nil, nil, err
	}
	return qLocal, l.T(), nil
}

// OneDCQR2 is Algorithm 7: two OneDCQR passes and a local triangular
// product R = R₂·R₁ ((1/3)n³ flops).
func OneDCQR2(comm transport.Comm, aLocal *lin.Matrix, m, n, workers int) (qLocal, r *lin.Matrix, err error) {
	q1, r1, err := OneDCQR(comm, aLocal, m, n, workers)
	if err != nil {
		return nil, nil, err
	}
	q, r2, err := OneDCQR(comm, q1, m, n, workers)
	if err != nil {
		return nil, nil, err
	}
	r, err = foldR(comm, r2, r1)
	if err != nil {
		return nil, nil, err
	}
	return q, r, nil
}

// foldR computes the replicated triangular product R = R₂·R₁ that
// closes every multi-pass CholeskyQR variant, charging the (1/3)n³
// flops the paper counts for it.
func foldR(comm transport.Comm, r2, r1 *lin.Matrix) (*lin.Matrix, error) {
	r := r2.Clone()
	lin.Trmm(lin.Right, lin.Upper, false, r1, r)
	if err := comm.Proc().Compute(lin.TriInvFlops(r1.Rows)); err != nil { // (1/3)n³
		return nil, err
	}
	return r, nil
}
