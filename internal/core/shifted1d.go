package core

import (
	"cacqr/internal/lin"
	"cacqr/internal/transport"
)

// OneDShiftedCQR is the shifted CholeskyQR pass (Fukaya et al., the
// paper's reference [3]) on a 1D grid of P processors, each owning an
// m/P × n row block of A: OneDCQR with the Gram matrix shifted to
// AᵀA + s·I before the Cholesky factorization (see oneDCholeskyQR for
// the shift and its cost accounting, which is identical to the plain
// pass — the OneDShiftedCQR3 cost-model row reuses the OneDCQR
// recurrence).
//
// The shifted Gram matrix is positive definite for any A, so this pass
// essentially never fails; the resulting Q is far from orthogonal but
// has condition number small enough (≈ √(‖A‖²/s) ≲ ε^{-1/2}) for
// CholeskyQR2 to finish the job.
func OneDShiftedCQR(comm transport.Comm, aLocal *lin.Matrix, m, n, workers int) (qLocal, r *lin.Matrix, err error) {
	return oneDCholeskyQR(comm, aLocal, m, n, workers, true)
}

// OneDShiftedCQR3 is the distributed shifted CholeskyQR3: one shifted
// pass to tame the conditioning, then OneDCQR2 on the result and the
// local triangular product R = R₂₃·R₁ ((1/3)n³ flops). It succeeds for
// κ(A) far beyond plain (1D-)CQR2's ~ε^{-1/2} breakdown, at ~1.5× the
// flops — the planner's condition-aware fallback for ill-conditioned
// tall matrices.
func OneDShiftedCQR3(comm transport.Comm, aLocal *lin.Matrix, m, n, workers int) (qLocal, r *lin.Matrix, err error) {
	q1, r1, err := OneDShiftedCQR(comm, aLocal, m, n, workers)
	if err != nil {
		return nil, nil, err
	}
	q, r23, err := OneDCQR2(comm, q1, m, n, workers)
	if err != nil {
		return nil, nil, err
	}
	r, err = foldR(comm, r23, r1)
	if err != nil {
		return nil, nil, err
	}
	return q, r, nil
}
