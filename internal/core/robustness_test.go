package core

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func TestCACQR2SurvivesRankFailure(t *testing.T) {
	// A rank failing mid-algorithm (injected at its first Compute) must
	// abort the whole run with the injected error — no deadlock, no
	// partial success.
	const c, d, m, n = 2, 2, 32, 8
	a := lin.RandomMatrix(m, n, 21)
	for _, failRank := range []int{0, 3, 7} {
		_, err := simmpi.RunWithOptions(c*d*c, simmpi.Options{
			FailEnabled: true, FailRank: failRank, Timeout: 60 * time.Second,
		}, func(p *simmpi.Proc) error {
			g, err := grid.New(p.World(), c, d)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
			if err != nil {
				return err
			}
			_, _, err = CACQR2(g, ad.Local, m, n, Params{})
			return err
		})
		if !errors.Is(err, simmpi.ErrInjectedFailure) {
			t.Fatalf("failRank=%d: got %v, want injected failure", failRank, err)
		}
	}
}

func TestCACQR2DeepInverseDepth(t *testing.T) {
	// InverseDepth beyond the recursion depth must still be correct: the
	// blocked solve descends to base-case-granularity inverse blocks,
	// whose leading principal sub-blocks are exact inverses.
	const c, d, m, n = 2, 4, 64, 16
	a := lin.RandomMatrix(m, n, 23)
	for _, inv := range []int{3, 5, 10} {
		inv := inv
		t.Run(fmt.Sprintf("InverseDepth%d", inv), func(t *testing.T) {
			runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
				ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
				if err != nil {
					return err
				}
				q, r, err := CACQR2(g, ad.Local, m, n, Params{InverseDepth: inv})
				if err != nil {
					return err
				}
				return verifyQR(g, a, q, r, m, n, 1e-9)
			})
		})
	}
}

func TestCACQR2PropertyRandomSeeds(t *testing.T) {
	// Property: for any seed, the distributed factorization satisfies
	// A = Q·R with orthonormal Q, matching the sequential reference R.
	const c, d, m, n = 1, 4, 32, 4
	f := func(seed int64) bool {
		a := lin.RandomMatrix(m, n, seed)
		ok := true
		_, err := simmpi.RunWithOptions(c*d*c, simmpi.Options{Timeout: 60 * time.Second}, func(p *simmpi.Proc) error {
			g, err := grid.New(p.World(), c, d)
			if err != nil {
				return err
			}
			ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
			if err != nil {
				return err
			}
			q, r, err := CACQR2(g, ad.Local, m, n, Params{})
			if err != nil {
				return err
			}
			if e := verifyQR(g, a, q, r, m, n, 1e-9); e != nil && p.Rank() == 0 {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCACQR2ModerateConditioning(t *testing.T) {
	// κ = 1e6 is inside CQR2's stated regime: the distributed result
	// must reach machine-precision orthogonality.
	const c, d, m, n = 2, 4, 64, 8
	a := lin.RandomWithCond(m, n, 1e6, 25)
	runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		qL, rL, err := CACQR2(g, ad.Local, m, n, Params{})
		if err != nil {
			return err
		}
		q, err := dist.Gather(g.Slice, qL, m, n, d, c)
		if err != nil {
			return err
		}
		if e := lin.OrthogonalityError(q); e > 1e-12 {
			return fmt.Errorf("orthogonality %g at κ=1e6", e)
		}
		_ = rL
		return nil
	})
}

func TestOneDCQR2AgreesWithCACQR2C1(t *testing.T) {
	// The c=1 CA grid and the dedicated 1D algorithm implement the same
	// mathematics: their R factors must agree to roundoff.
	const p, m, n = 4, 32, 4
	a := lin.RandomMatrix(m, n, 27)
	var r1d *lin.Matrix
	_, err := simmpi.RunWithOptions(p, simmpi.Options{Timeout: 60 * time.Second}, func(pr *simmpi.Proc) error {
		// Note: 1D uses blocked rows; CA uses cyclic rows. R is
		// row-layout independent.
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		_, r, err := OneDCQR2(pr.World(), local, m, n, 0)
		if err != nil {
			return err
		}
		if pr.Rank() == 0 {
			r1d = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	runGrid(t, 1, p, func(pr *simmpi.Proc, g *grid.Grid) error {
		ad, err := dist.FromGlobal(a, p, 1, g.Y, g.X)
		if err != nil {
			return err
		}
		_, rL, err := CACQR2(g, ad.Local, m, n, Params{})
		if err != nil {
			return err
		}
		r, err := dist.Gather(g.Cube.Slice, rL, n, n, 1, 1)
		if err != nil {
			return err
		}
		if !r.EqualWithin(r1d, 1e-10) {
			return errors.New("c=1 CA-CQR2 R differs from 1D-CQR2 R")
		}
		return nil
	})
}
