package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

func run1D(t *testing.T, np int, body func(p *simmpi.Proc) error) *simmpi.Stats {
	t.Helper()
	st, err := simmpi.RunWithOptions(np, simmpi.Options{Timeout: 120 * time.Second}, body)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// rowBlock returns rank r's m/np × n contiguous row block.
func rowBlock(a *lin.Matrix, np, r int) *lin.Matrix {
	rows := a.Rows / np
	return a.View(r*rows, 0, rows, a.Cols).Clone()
}

func TestOneDCQRFactors(t *testing.T) {
	const np, m, n = 4, 32, 6
	a := lin.RandomMatrix(m, n, 1)
	run1D(t, np, func(p *simmpi.Proc) error {
		q, r, err := OneDCQR(p.World(), rowBlock(a, np, p.Rank()), m, n, 0)
		if err != nil {
			return err
		}
		if !r.IsUpperTriangular(1e-12) {
			return errors.New("R not upper triangular")
		}
		// Locally check the block equation A_i = Q_i R.
		qr := lin.MatMul(q, r)
		if !qr.EqualWithin(rowBlock(a, np, p.Rank()), 1e-10) {
			return errors.New("local block residual too large")
		}
		return nil
	})
}

func TestOneDCQR2MatchesSequential(t *testing.T) {
	const np, m, n = 8, 64, 8
	a := lin.RandomMatrix(m, n, 2)
	_, rSeq, err := CholeskyQR2(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	run1D(t, np, func(p *simmpi.Proc) error {
		q, r, err := OneDCQR2(p.World(), rowBlock(a, np, p.Rank()), m, n, 0)
		if err != nil {
			return err
		}
		if !r.EqualWithin(rSeq, 1e-9) {
			return errors.New("R differs from sequential CholeskyQR2")
		}
		// Assemble Q by allgather of row blocks (blocked layout).
		flat, err := p.World().Allgather(dist.Flatten(q))
		if err != nil {
			return err
		}
		qFull, err := dist.Unflatten(m, n, flat)
		if err != nil {
			return err
		}
		if e := lin.OrthogonalityError(qFull); e > 1e-11 {
			return fmt.Errorf("orthogonality %g", e)
		}
		if e := lin.ResidualNorm(a, qFull, r); e > 1e-11 {
			return fmt.Errorf("residual %g", e)
		}
		return nil
	})
}

func TestOneDCQRCostTableIII(t *testing.T) {
	// Table III: syrk (m/P)n² + allreduce(n², P) + CholInv(n) + MM 2(m/P)n².
	const np, m, n = 4, 64, 8
	a := lin.RandomMatrix(m, n, 3)
	st := run1D(t, np, func(p *simmpi.Proc) error {
		_, _, err := OneDCQR(p.World(), rowBlock(a, np, p.Rank()), m, n, 0)
		return err
	})
	wantFlops := lin.SyrkFlops(m/np, n) + lin.CholFlops(n) + lin.TriInvFlops(n) + lin.TrsmFlops(m/np, n)
	if st.MaxFlops != wantFlops {
		t.Fatalf("flops %d, want %d", st.MaxFlops, wantFlops)
	}
	// Allreduce of n² words: 2·log₂P α + 2n² β.
	if st.MaxMsgs != 2*2 {
		t.Fatalf("α units %d, want 4", st.MaxMsgs)
	}
	if st.MaxWords != 2*n*n {
		t.Fatalf("β units %d, want %d", st.MaxWords, 2*n*n)
	}
}

func TestOneDCQRRejectsIndivisible(t *testing.T) {
	run1D(t, 3, func(p *simmpi.Proc) error {
		if _, _, err := OneDCQR(p.World(), lin.NewMatrix(3, 2), 10, 2, 0); err == nil {
			return errors.New("indivisible m accepted")
		}
		return nil
	})
}

func TestOneDCQR2SingleRank(t *testing.T) {
	// P=1 degenerates to sequential CQR2.
	const m, n = 20, 5
	a := lin.RandomMatrix(m, n, 4)
	qSeq, rSeq, err := CholeskyQR2(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	run1D(t, 1, func(p *simmpi.Proc) error {
		q, r, err := OneDCQR2(p.World(), a.Clone(), m, n, 0)
		if err != nil {
			return err
		}
		if !q.EqualWithin(qSeq, 1e-12) || !r.EqualWithin(rSeq, 1e-12) {
			return errors.New("P=1 does not match sequential")
		}
		return nil
	})
}
