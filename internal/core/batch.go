package core

import (
	"fmt"

	"cacqr/internal/lin"
)

// Batched CholeskyQR drivers: the throughput mode for floods of
// same-shape small/medium factorizations. The CA-CQR2 insight — amortize
// the Gram/Cholesky work's fixed costs across blocks — applies to
// traffic too: a batch window of 512×32 regressions should cost one
// fused BatchSYRK/BatchGEMM sweep per pass, not one goroutine-pool
// spin-up per request. Parallelism comes from the batch dimension (items
// spread over the shared worker pool), while each item runs exactly the
// serial kernel sequence of CholeskyQR2/ShiftedCQR3 — so per-item
// results are bitwise identical to the sequential drivers, which are in
// turn bitwise invariant in Workers.

// BatchedCQR2 factors every matrix in as (all the same m×n shape, m ≥ n)
// by two fused CholeskyQR passes: one BatchSYRK for all Gram matrices,
// then one pooled sweep of per-item CholInv plus the in-place triangular
// Q update — per pass, for the whole batch. Results are bitwise identical to
// calling CholeskyQR2(as[i], 1) per item. Failures are per item: an
// ill-conditioned member gets errs[i] (wrapping ErrIllConditioned) and
// nil factors without disturbing its batch-mates. workers bounds the
// pool fan-out (0 = GOMAXPROCS).
func BatchedCQR2(as []*lin.Matrix, workers int) (qs, rs []*lin.Matrix, errs []error) {
	return batchedQR(as, workers, false)
}

// BatchedShiftedCQR3 is the batched three-pass shifted variant: a fused
// shifted CholeskyQR pass to tame the conditioning, then the two fused
// CholeskyQR2 passes — the throughput mode's route for κ ≳ 10⁷ buckets.
// Per item it is bitwise identical to ShiftedCQR3(as[i], 1).
func BatchedShiftedCQR3(as []*lin.Matrix, workers int) (qs, rs []*lin.Matrix, errs []error) {
	return batchedQR(as, workers, true)
}

// batchedQR is the shared fused driver: a shifted or plain first pass,
// then the CholeskyQR2 tail, then the per-item triangular R combination.
func batchedQR(as []*lin.Matrix, workers int, shifted bool) (qs, rs []*lin.Matrix, errs []error) {
	b := len(as)
	qs, rs, errs = make([]*lin.Matrix, b), make([]*lin.Matrix, b), make([]error, b)
	if b == 0 {
		return qs, rs, errs
	}
	if as[0].Rows < as[0].Cols {
		for i := range errs {
			errs[i] = lin.ErrShape
		}
		return qs, rs, errs
	}
	a := lin.SlabFrom(as) // panics on mixed shapes: batches are same-key by construction

	// Two fused CholeskyQR passes — three when the first is shifted.
	q := a
	var passRs [][]*lin.Matrix
	passes := 2
	if shifted {
		passes = 3
	}
	for p := 0; p < passes; p++ {
		var rp []*lin.Matrix
		q, rp = batchedPass(q, workers, shifted && p == 0, errs)
		passRs = append(passRs, rp)
	}

	// Per-item combination, one pool dispatch: R = R_last···R_1, exactly
	// the Trmm sequence of the sequential drivers (innermost pass last).
	// Q factors are handed out as views into the slab (one allocation for
	// the whole batch, disjoint lanes per item) — cloning them would add
	// a full batch-sized copy to the throughput path for nothing, since
	// the slab has no other owner after this returns.
	lin.BatchApply(workers, b, func(i int) {
		if errs[i] != nil {
			return
		}
		r := passRs[passes-1][i].Clone()
		for p := passes - 2; p >= 0; p-- {
			lin.Trmm(lin.Right, lin.Upper, false, passRs[p][i], r)
		}
		qs[i] = q.Item(i)
		rs[i] = r
	})
	return qs, rs, errs
}

// batchedPass runs one fused CholeskyQR pass over the slab: BatchSYRK
// for every Gram matrix (accumulating into the freshly zeroed w slab
// with beta=1, bitwise identical to the sequential beta=0
// zero-then-accumulate minus the redundant clear), then one pooled
// per-item sweep doing CholInv (with the Fukaya shift first when
// shifted) and the in-place triangular Q update A_i := A_i·(L⁻¹)ᵀ —
// the same Trmm the sequential drivers apply, so lanes stay bitwise
// identical to CholeskyQR(as[i], 1). Updating lanes in place keeps the
// throughput path to one m×n slab for the whole pipeline: no per-pass Q
// slab allocation, and A_i is still cache-hot from its Gram computation
// when its Q update runs. Items whose Cholesky breaks down get errs[i]
// set and keep their (finite) lane contents; later passes skip them.
func batchedPass(a *lin.Slab, workers int, shifted bool, errs []error) (q *lin.Slab, rts []*lin.Matrix) {
	b, m, n := a.Batch, a.Rows, a.Cols
	w := lin.NewSlab(b, n, n)
	lin.BatchSYRK(workers, 1, a, 1, w)
	rts = make([]*lin.Matrix, b)
	lin.BatchApply(workers, b, func(i int) {
		if errs[i] != nil {
			return
		}
		wi := w.Item(i)
		if shifted {
			// The Fukaya et al. shift, exactly as ShiftedCholeskyQR
			// computes it: s = 11·(mn + n(n+1))·ε·‖A‖₂² with the Gram
			// trace as the norm bound.
			norm2sq := 0.0
			for d := 0; d < n; d++ {
				if v := wi.At(d, d); v > 0 {
					norm2sq += v
				}
			}
			s := 11 * float64(m*n+n*(n+1)) * lin.Eps * norm2sq
			for d := 0; d < n; d++ {
				wi.Set(d, d, wi.At(d, d)+s)
			}
		}
		l, y, err := lin.CholInv(wi)
		if err != nil {
			if shifted {
				errs[i] = fmt.Errorf("%w: shifted Gram still indefinite: %w", ErrIllConditioned, err)
			} else {
				errs[i] = fmt.Errorf("%w: %w", ErrIllConditioned, err)
			}
			return
		}
		lin.Trmm(lin.Right, lin.Lower, true, y, a.Item(i))
		rts[i] = l.T()
	})
	return a, rts
}
