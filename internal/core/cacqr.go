package core

import (
	"fmt"

	"cacqr/internal/cfr3d"
	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/mm3d"
	"cacqr/internal/obs"
)

// Params tune the CA-CQR2 algorithm the way the paper's experiment
// legends do.
type Params struct {
	// InverseDepth is the last recursive level at which CFR3D forms the
	// explicit triangular inverse (legend parameter InverseDepth). 0
	// computes the full inverse; k > 0 leaves the top k levels to a
	// blocked substitution in the Q = A·R⁻¹ step, saving flops at the
	// price of extra MM3D synchronizations.
	InverseDepth int
	// BaseSize is CFR3D's n_o (0 = the bandwidth-optimal default).
	BaseSize int
	// Workers bounds the goroutines each rank's local level-3 kernels may
	// use (≤ 1 = serial). Simulated grids already run one goroutine per
	// rank, so the default of 1 avoids oversubscribing the host; raise it
	// when ranks are few and matrices large. Results are identical for
	// any value.
	Workers int
}

// localWorkers resolves the Params knob for per-rank kernels: anything
// below 1 means serial.
func (p Params) localWorkers() int {
	if p.Workers < 1 {
		return 1
	}
	return p.Workers
}

// CACQR runs Algorithm 8 over a c × d × c grid: one CholeskyQR pass whose
// Gram-matrix work runs on d/c independent subcubes.
//
// aLocal is this rank's m/d × n/c block of A (rows cyclic over y, columns
// cyclic over x), replicated on every depth slice z. The returned Q block
// has the same distribution as A; the returned R block is the n × n
// upper factor distributed cyclically over the rank's subcube slice
// (rows over cube-y, columns over x) and replicated across depth and
// across subcubes.
func CACQR(g *grid.Grid, aLocal *lin.Matrix, m, n int, prm Params) (qLocal, rLocal *lin.Matrix, err error) {
	if err := checkShapes(g, aLocal, m, n); err != nil {
		return nil, nil, err
	}
	p := g.World.Proc()
	c, d := g.C, g.D

	// Line 1: Bcast A along Π[:, y, z] from root x = z; W is the block
	// of the processor column x = z. Each step runs under a simmpi
	// phase labeled with its Table V line, so measured per-line costs
	// can be checked against the model's decomposition — and, when this
	// rank carries a trace span, under a stage span with the same label.
	stg := obs.StagesOf(p)
	defer stg.Done()
	stg.Enter("1:Bcast(A)")
	defer p.SetPhase(p.SetPhase("1:Bcast(A)"))
	var aRoot []float64
	if g.X == g.Z {
		aRoot = dist.Flatten(aLocal)
	}
	wFlat, err := g.XComm.Bcast(g.Z, aRoot)
	if err != nil {
		return nil, nil, err
	}
	w, err := dist.Unflatten(m/d, n/c, wFlat)
	if err != nil {
		return nil, nil, err
	}

	// Line 2: X = Wᵀ·A. Charged at the SYRK rate (m/d)·(n/c)²: the
	// paper's 4mn² + (5/3)n³ critical path counts the Gram-matrix work
	// symmetrically, as its implementation's BLAS calls do.
	stg.Enter("2:MM(WtA)")
	p.SetPhase("2:MM(WtA)")
	x := lin.NewMatrix(n/c, n/c)
	lin.GemmParallel(prm.localWorkers(), true, false, 1, w, aLocal, 0, x)
	if err := p.Compute(lin.SyrkFlops(m/d, n/c)); err != nil {
		return nil, nil, err
	}

	// Line 3: Reduce within the contiguous y-group onto root offset z.
	stg.Enter("3:Reduce")
	p.SetPhase("3:Reduce")
	xFlat := dist.Flatten(x)
	yFlat, err := g.YGroup.Reduce(g.Z, xFlat)
	if err != nil {
		return nil, nil, err
	}

	// Line 4: Allreduce across the strided y-groups. Only the groups
	// whose offset equals z hold partial sums; the rest contribute
	// zeros and their result is discarded by the depth broadcast.
	stg.Enter("4:Allreduce")
	p.SetPhase("4:Allreduce")
	contrib := yFlat
	if contrib == nil {
		contrib = make([]float64, len(xFlat))
	}
	zFlat, err := g.YStride.Allreduce(contrib)
	if err != nil {
		return nil, nil, err
	}

	// Line 5: Bcast along depth from root z = y mod c, giving every
	// slice of every subcube the cyclic block of Z = AᵀA.
	stg.Enter("5:Bcast(Z,depth)")
	p.SetPhase("5:Bcast(Z,depth)")
	var zRoot []float64
	if g.Z == g.Y%c {
		zRoot = zFlat
	}
	zOut, err := g.ZComm.Bcast(g.Y%c, zRoot)
	if err != nil {
		return nil, nil, err
	}
	zBlock, err := dist.Unflatten(n/c, n/c, zOut)
	if err != nil {
		return nil, nil, err
	}

	// Lines 6–7: CFR3D on the subcube: Z = Rᵀ·R with L = Rᵀ, Y = L⁻¹.
	stg.Enter("7:CFR3D")
	p.SetPhase("7:CFR3D")
	res, err := cfr3d.Factor(g.Cube, zBlock, n, cfr3d.Options{
		BaseSize: prm.BaseSize, InverseDepth: prm.InverseDepth, Workers: prm.localWorkers(),
	})
	if err != nil {
		return nil, nil, err
	}

	// Line 8: Q = A·R⁻¹ over the subcube (blocked substitution when the
	// top inverse levels were skipped), plus the transpose that yields
	// the caller's R = Lᵀ block.
	stg.Enter("8:MM3D(Q)+Transp")
	p.SetPhase("8:MM3D(Q)+Transp")
	qLocal, err = applyRInv(g.Cube, aLocal, res.L, res.Y, prm.InverseDepth, prm.localWorkers())
	if err != nil {
		return nil, nil, err
	}
	rLocal, err = mm3d.Transpose(g.Cube, res.L)
	if err != nil {
		return nil, nil, err
	}
	return qLocal, rLocal, nil
}

// CACQR2 runs Algorithm 9: two CA-CQR passes and R = R₂·R₁ by MM3D over
// the subcube.
func CACQR2(g *grid.Grid, aLocal *lin.Matrix, m, n int, prm Params) (qLocal, rLocal *lin.Matrix, err error) {
	q1, r1, err := CACQR(g, aLocal, m, n, prm)
	if err != nil {
		return nil, nil, err
	}
	q, r2, err := CACQR(g, q1, m, n, prm)
	if err != nil {
		return nil, nil, err
	}
	r, err := mm3d.MultiplyTri(g.Cube, r2, r1, prm.localWorkers()) // triangular × triangular
	if err != nil {
		return nil, nil, err
	}
	return q, r, nil
}

// applyRInv computes Q = A·R⁻¹ where R = Lᵀ and y holds L⁻¹ complete
// below invDepth recursion levels. At invDepth = 0 this is a single MM3D
// with R⁻¹ = Yᵀ (Algorithm 8 line 8). For invDepth > 0 it performs the
// §III-A blocked substitution: split R = [R11 R12; 0 R22], solve
// Q1 = A1·R11⁻¹, update A2' = A2 − Q1·R12, solve Q2 = A2'·R22⁻¹.
func applyRInv(cb *grid.Cube, aLocal, l, y *lin.Matrix, invDepth, workers int) (*lin.Matrix, error) {
	if invDepth <= 0 || l.Rows < 2 || l.Rows%2 != 0 {
		rinv, err := mm3d.Transpose(cb, y)
		if err != nil {
			return nil, err
		}
		return mm3d.MultiplyTri(cb, aLocal, rinv, workers) // R⁻¹ is triangular
	}
	p := cb.Comm.Proc()
	half := l.Rows / 2
	l11 := l.View(0, 0, half, half).Clone()
	l21 := l.View(half, 0, half, half).Clone()
	l22 := l.View(half, half, half, half).Clone()
	y11 := y.View(0, 0, half, half).Clone()
	y22 := y.View(half, half, half, half).Clone()

	ha := aLocal.Cols / 2
	a1 := aLocal.View(0, 0, aLocal.Rows, ha).Clone()
	a2 := aLocal.View(0, ha, aLocal.Rows, ha).Clone()

	q1, err := applyRInv(cb, a1, l11, y11, invDepth-1, workers)
	if err != nil {
		return nil, err
	}

	// R12 = L21ᵀ; A2' = A2 − Q1·R12.
	r12, err := mm3d.Transpose(cb, l21)
	if err != nil {
		return nil, err
	}
	t, err := mm3d.Multiply(cb, q1, r12, workers)
	if err != nil {
		return nil, err
	}
	a2.Sub(t)
	if err := p.Compute(lin.AxpyFlops(a2.Rows, a2.Cols)); err != nil {
		return nil, err
	}

	q2, err := applyRInv(cb, a2, l22, y22, invDepth-1, workers)
	if err != nil {
		return nil, err
	}

	out := lin.NewMatrix(aLocal.Rows, aLocal.Cols)
	out.View(0, 0, out.Rows, ha).CopyFrom(q1)
	out.View(0, ha, out.Rows, ha).CopyFrom(q2)
	return out, nil
}

func checkShapes(g *grid.Grid, aLocal *lin.Matrix, m, n int) error {
	if g == nil {
		return fmt.Errorf("core: rank outside the processor grid")
	}
	if m < n {
		return fmt.Errorf("core: CA-CQR requires m ≥ n, got %dx%d", m, n)
	}
	if m%g.D != 0 || n%g.C != 0 {
		return fmt.Errorf("core: %dx%d matrix not divisible by %dx%d grid blocks", m, n, g.D, g.C)
	}
	if aLocal.Rows != m/g.D || aLocal.Cols != n/g.C {
		return fmt.Errorf("core: local block %dx%d, want %dx%d", aLocal.Rows, aLocal.Cols, m/g.D, n/g.C)
	}
	return nil
}
