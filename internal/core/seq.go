// Package core implements the paper's contribution: the CholeskyQR family
// of QR factorization algorithms, from the sequential building blocks
// (Algorithms 4–5) through the existing 1D parallelization (Algorithms
// 6–7) to the new communication-avoiding CA-CQR2 over a tunable c × d × c
// processor grid (Algorithms 8–9), plus the shifted CholeskyQR3 extension
// the paper's conclusion points to.
//
// All parallel variants run on the simmpi runtime, so every invocation
// yields both a numerical result and exact per-processor α-β-γ cost
// measurements.
package core

import (
	"errors"
	"fmt"
	"math"

	"cacqr/internal/lin"
)

// ErrIllConditioned is returned when CholeskyQR's Gram matrix is not
// numerically positive definite, which happens when κ(A)² overflows the
// precision (the §I condition κ(A) ≲ 1/√ε).
var ErrIllConditioned = errors.New("core: matrix too ill-conditioned for CholeskyQR (try ShiftedCQR3)")

// CholeskyQR computes the reduced factorization A = Q·R by one CholeskyQR
// pass (Algorithm 4): W = AᵀA, R = chol(W)ᵀ, Q = A·R⁻¹. The orthogonality
// error of Q grows as Θ(κ(A)²·ε); the residual stays O(ε).
//
// workers bounds the goroutines the level-3 kernels may use (0 =
// GOMAXPROCS, 1 = serial); results are identical for any value.
func CholeskyQR(a *lin.Matrix, workers int) (q, r *lin.Matrix, err error) {
	if a.Rows < a.Cols {
		return nil, nil, lin.ErrShape
	}
	w := lin.SyrkNewParallel(workers, a)
	l, y, err := lin.CholInv(w)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrIllConditioned, err)
	}
	// Q = A·R⁻¹ = A·(L⁻¹)ᵀ, applied as a triangular multiply: Y = L⁻¹ is
	// lower triangular, so the dense GEMM formulation would spend half its
	// flops multiplying by exact zeros.
	q = a.Clone()
	lin.TrmmParallel(workers, lin.Right, lin.Lower, true, y, q)
	return q, l.T(), nil
}

// CholeskyQR2 computes A = Q·R by two CholeskyQR passes (Algorithm 5).
// When κ(A) ≲ 1/√ε, Q is orthogonal to working accuracy — as good as
// Householder QR.
func CholeskyQR2(a *lin.Matrix, workers int) (q, r *lin.Matrix, err error) {
	q1, r1, err := CholeskyQR(a, workers)
	if err != nil {
		return nil, nil, err
	}
	q, r2, err := CholeskyQR(q1, workers)
	if err != nil {
		return nil, nil, err
	}
	r = r2.Clone()
	lin.Trmm(lin.Right, lin.Upper, false, r1, r) // R = R2·R1
	return q, r, nil
}

// ShiftedCholeskyQR performs one CholeskyQR pass on the shifted Gram
// matrix AᵀA + sI, which is positive definite for any A when the shift
// follows Fukaya et al. (the paper's reference [3]):
// s = 11·(m·n + n·(n+1))·ε·‖A‖₂². The resulting Q is far from orthogonal
// but has condition number small enough for CholeskyQR2 to finish the
// job.
func ShiftedCholeskyQR(a *lin.Matrix, workers int) (q, r *lin.Matrix, err error) {
	if a.Rows < a.Cols {
		return nil, nil, lin.ErrShape
	}
	m, n := a.Rows, a.Cols
	w := lin.SyrkNewParallel(workers, a)
	// ‖A‖₂² ≤ ‖A‖_F²; the bound only needs an upper estimate.
	norm2sq := 0.0
	for i := 0; i < n; i++ {
		if d := w.At(i, i); d > 0 {
			norm2sq += d
		}
	}
	s := 11 * float64(m*n+n*(n+1)) * lin.Eps * norm2sq
	for i := 0; i < n; i++ {
		w.Set(i, i, w.At(i, i)+s)
	}
	l, y, err := lin.CholInv(w)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: shifted Gram still indefinite: %w", ErrIllConditioned, err)
	}
	q = a.Clone()
	lin.TrmmParallel(workers, lin.Right, lin.Lower, true, y, q)
	return q, l.T(), nil
}

// ShiftedCQR3 is the unconditionally stable three-pass variant the
// paper's §V highlights as future work: one shifted CholeskyQR pass to
// tame the conditioning, then CholeskyQR2 on the result. It succeeds for
// κ(A) up to ~1/ε where plain CQR2 breaks down at ~1/√ε.
func ShiftedCQR3(a *lin.Matrix, workers int) (q, r *lin.Matrix, err error) {
	q1, r1, err := ShiftedCholeskyQR(a, workers)
	if err != nil {
		return nil, nil, err
	}
	q, r23, err := CholeskyQR2(q1, workers)
	if err != nil {
		return nil, nil, err
	}
	r = r23.Clone()
	lin.Trmm(lin.Right, lin.Upper, false, r1, r) // R = (R3·R2)·R1
	return q, r, nil
}

// CanCQR2Handle reports the §I stability criterion: CholeskyQR2 delivers
// Householder-level orthogonality when κ(A) = O(1/√ε).
func CanCQR2Handle(cond float64) bool {
	return cond < 1/math.Sqrt(lin.Eps)/8
}
