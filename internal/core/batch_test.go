package core

import (
	"errors"
	"runtime"
	"testing"

	"cacqr/internal/lin"
)

func batchInputs(b, m, n int, seed int64) []*lin.Matrix {
	as := make([]*lin.Matrix, b)
	for i := range as {
		as[i] = lin.RandomMatrix(m, n, seed+int64(i))
	}
	return as
}

// The fused drivers' headline contract: per item, results are bitwise
// identical to the sequential drivers with workers=1 — for any batch
// size and any pool fan-out.
func TestBatchedCQR2BitwiseMatchesSequential(t *testing.T) {
	for _, batch := range []int{1, 3, 17} {
		for _, sh := range []struct{ m, n int }{{12, 4}, {96, 24}, {512, 32}} {
			as := batchInputs(batch, sh.m, sh.n, 40)
			for _, w := range []int{1, 4, runtime.NumCPU()} {
				qs, rs, errs := BatchedCQR2(as, w)
				for i := 0; i < batch; i++ {
					if errs[i] != nil {
						t.Fatalf("batch=%d shape=%dx%d workers=%d item %d: %v",
							batch, sh.m, sh.n, w, i, errs[i])
					}
					wantQ, wantR, err := CholeskyQR2(as[i], 1)
					if err != nil {
						t.Fatalf("serial reference failed: %v", err)
					}
					if !qs[i].Equal(wantQ) || !rs[i].Equal(wantR) {
						t.Fatalf("batch=%d shape=%dx%d workers=%d item %d differs from CholeskyQR2",
							batch, sh.m, sh.n, w, i)
					}
				}
			}
		}
	}
}

func TestBatchedShiftedCQR3BitwiseMatchesSequential(t *testing.T) {
	for _, batch := range []int{1, 5} {
		as := make([]*lin.Matrix, batch)
		for i := range as {
			// Conditioning beyond plain CQR2's regime: exactly the traffic
			// the shifted route exists for.
			as[i] = lin.RandomWithCond(128, 16, 1e9, int64(70+i))
		}
		for _, w := range []int{1, 4, runtime.NumCPU()} {
			qs, rs, errs := BatchedShiftedCQR3(as, w)
			for i := 0; i < batch; i++ {
				if errs[i] != nil {
					t.Fatalf("batch=%d workers=%d item %d: %v", batch, w, i, errs[i])
				}
				wantQ, wantR, err := ShiftedCQR3(as[i], 1)
				if err != nil {
					t.Fatalf("serial reference failed: %v", err)
				}
				if !qs[i].Equal(wantQ) || !rs[i].Equal(wantR) {
					t.Fatalf("batch=%d workers=%d item %d differs from ShiftedCQR3", batch, w, i)
				}
			}
		}
	}
}

// Failures are per item: one ill-conditioned member must not disturb its
// batch-mates or poison the shared slab sweep.
func TestBatchedCQR2IsolatesIllConditionedItems(t *testing.T) {
	as := []*lin.Matrix{
		lin.RandomMatrix(64, 8, 1),
		lin.RandomWithCond(64, 8, 1e12, 2), // κ² overflows the precision
		lin.RandomMatrix(64, 8, 3),
	}
	qs, rs, errs := BatchedCQR2(as, 4)
	if errs[1] == nil || !errors.Is(errs[1], ErrIllConditioned) {
		t.Fatalf("ill-conditioned item error = %v, want ErrIllConditioned", errs[1])
	}
	if qs[1] != nil || rs[1] != nil {
		t.Fatal("failed item must have nil factors")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("healthy item %d: %v", i, errs[i])
		}
		wantQ, wantR, err := CholeskyQR2(as[i], 1)
		if err != nil {
			t.Fatalf("serial reference failed: %v", err)
		}
		if !qs[i].Equal(wantQ) || !rs[i].Equal(wantR) {
			t.Fatalf("healthy item %d disturbed by its failed batch-mate", i)
		}
	}
}

func TestBatchedCQR2EdgeCases(t *testing.T) {
	qs, rs, errs := BatchedCQR2(nil, 4)
	if len(qs) != 0 || len(rs) != 0 || len(errs) != 0 {
		t.Fatal("empty batch must return empty slices")
	}
	// m < n is rejected per item, matching the sequential driver.
	_, _, errs = BatchedCQR2([]*lin.Matrix{lin.RandomMatrix(3, 5, 1), lin.RandomMatrix(3, 5, 2)}, 1)
	for i, err := range errs {
		if !errors.Is(err, lin.ErrShape) {
			t.Fatalf("item %d: err = %v, want ErrShape", i, err)
		}
	}
}
