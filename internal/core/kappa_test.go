package core

//lint:allow floatcompare tests assert bitwise reproducibility, which is this library's documented contract

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
	"cacqr/internal/testmat"
)

// The κ-sweep property tests: every stability claim the condition-aware
// planner routes on is asserted here against matrices with exactly
// prescribed condition numbers (testmat's scaled SVD composition).
//
// The theory under test (§I and Fukaya et al., the paper's ref. [3]):
//   - CholeskyQR2 reaches O(ε) orthogonality while κ ≲ ε^{-1/2} ≈ 1e7
//     and breaks down (indefinite Gram matrix) well beyond it.
//   - ShiftedCQR3 extends the regime to κ ≲ 1/(8·√(11(mn+n²))·ε)
//     (≈ 1e12 at these shapes): the shifted pass maps κ(A) to
//     ≈ √(11(mn+n²)ε)·κ(A), which CQR2 then finishes.
//   - The residual ‖A−QR‖/‖A‖ stays O(ε) whenever the factorization
//     completes at all (CholeskyQR is backward stable).

const (
	sweepM, sweepN = 256, 32
	orthTol        = 1e-12
	residTol       = 1e-12
)

func TestKappaSweepCholeskyQR2(t *testing.T) {
	for _, kappa := range testmat.Kappas {
		a := testmat.WithCond(sweepM, sweepN, kappa, 42)
		q, r, err := CholeskyQR2(a, 0)
		switch {
		case kappa <= 1e5:
			// Comfortably inside the regime: must match Householder.
			if err != nil {
				t.Fatalf("κ=%g: CQR2 failed: %v", kappa, err)
			}
			orth, resid := testmat.Measure(a, q, r)
			if orth > orthTol || resid > residTol {
				t.Fatalf("κ=%g: CQR2 orth=%g resid=%g", kappa, orth, resid)
			}
		case kappa >= 1e12:
			// κ²ε ≫ 1: the Gram matrix is numerically indefinite. Either
			// the factorization errors (the expected path) or whatever it
			// returns has lost orthogonality — it must not silently
			// produce a good-looking Q.
			if err == nil {
				if orth := lin.OrthogonalityError(q); orth <= 1e-8 {
					t.Fatalf("κ=%g: CQR2 unexpectedly delivered orth=%g", kappa, orth)
				}
			} else if !errors.Is(err, ErrIllConditioned) {
				t.Fatalf("κ=%g: wrong error class: %v", kappa, err)
			}
		}
		// κ=1e8 sits on the breakdown boundary (κ²ε ≈ 2): whether the
		// Cholesky survives is seed luck, so only the planner's refusal
		// to route there is asserted (plan package tests).
	}
}

func TestKappaSweepShiftedCQR3(t *testing.T) {
	for _, kappa := range testmat.Kappas {
		if kappa > 1e12 {
			continue // beyond the one-shift regime at this shape
		}
		a := testmat.WithCond(sweepM, sweepN, kappa, 42)
		q, r, err := ShiftedCQR3(a, 0)
		if err != nil {
			t.Fatalf("κ=%g: ShiftedCQR3 failed: %v", kappa, err)
		}
		orth, resid := testmat.Measure(a, q, r)
		if orth > orthTol || resid > residTol {
			t.Fatalf("κ=%g: ShiftedCQR3 orth=%g resid=%g", kappa, orth, resid)
		}
	}
}

func TestKappaShiftedCQR3RegimeBoundary(t *testing.T) {
	// Beyond κ ≈ 1/(8√(11(mn+n²))·ε) one shifted pass cannot tame the
	// conditioning: the refinement's CholeskyQR2 must report the
	// ill-conditioning rather than fabricate a Q.
	a := testmat.WithCond(sweepM, sweepN, 1e15, 42)
	q, _, err := ShiftedCQR3(a, 0)
	if err == nil {
		if orth := lin.OrthogonalityError(q); orth <= 1e-8 {
			t.Fatalf("κ=1e15: one-shift CQR3 unexpectedly delivered orth=%g", orth)
		}
	} else if !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("κ=1e15: wrong error class: %v", err)
	}
}

func TestKappaOneDShiftedCQR3Distributed(t *testing.T) {
	// The distributed 1D shifted CQR3 must deliver the same robustness
	// as the sequential one at κ = 1e10 (far beyond plain CQR2), and the
	// replicated R must agree with the sequential run's to roundoff.
	const p, m, n = 4, 256, 32
	kappa := 1e10
	a := testmat.WithCond(m, n, kappa, 7)
	qSeq, rSeq, err := ShiftedCQR3(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = qSeq
	var rDist *lin.Matrix
	var orth, resid float64
	_, err = simmpi.RunWithOptions(p, simmpi.Options{Timeout: 60 * time.Second}, func(pr *simmpi.Proc) error {
		local := a.View(pr.Rank()*(m/p), 0, m/p, n).Clone()
		qL, r, err := OneDShiftedCQR3(pr.World(), local, m, n, 0)
		if err != nil {
			return err
		}
		// Assemble Q on rank 0 by stacking the blocked rows.
		flat, err := pr.World().Allgather(flatten(qL))
		if err != nil {
			return err
		}
		if pr.Rank() == 0 {
			q := lin.FromSlice(m, n, flat)
			orth, resid = testmat.Measure(a, q, r)
			rDist = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if orth > orthTol || resid > residTol {
		t.Fatalf("κ=%g distributed: orth=%g resid=%g", kappa, orth, resid)
	}
	if !rDist.EqualWithin(rSeq, 1e-9) {
		t.Fatal("distributed shifted R differs from the sequential reference")
	}
}

func TestKappaOneDShiftedCQR3ErrorPaths(t *testing.T) {
	a := testmat.WithCond(64, 8, 10, 1)
	_, err := simmpi.RunWithOptions(3, simmpi.Options{Timeout: 30 * time.Second}, func(pr *simmpi.Proc) error {
		_, _, err := OneDShiftedCQR3(pr.World(), a.View(0, 0, 21, 8), 64, 8, 0)
		return err
	})
	if err == nil {
		t.Fatal("indivisible m accepted")
	}
	_, err = simmpi.RunWithOptions(2, simmpi.Options{Timeout: 30 * time.Second}, func(pr *simmpi.Proc) error {
		_, _, err := OneDShiftedCQR3(pr.World(), a.View(0, 0, 16, 8), 64, 8, 0)
		return err
	})
	if err == nil {
		t.Fatal("wrong local block shape accepted")
	}
}

func TestKappaSweepWorkersInvariance(t *testing.T) {
	// The Workers knob must not change a single bit of the shifted
	// path's factors — ill-conditioned inputs are exactly where parallel
	// reassociation would first show.
	a := testmat.WithCond(sweepM, sweepN, 1e9, 13)
	q1, r1, err := ShiftedCQR3(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	q4, r4, err := ShiftedCQR3(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1.Data {
		if q1.Data[i] != q4.Data[i] {
			t.Fatalf("Workers=4 changed Q at %d", i)
		}
	}
	for i := range r1.Data {
		if r1.Data[i] != r4.Data[i] {
			t.Fatalf("Workers=4 changed R at %d", i)
		}
	}
}

// flatten is a row-major copy helper for the Allgather above.
func flatten(m *lin.Matrix) []float64 {
	out := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out[i*m.Cols:(i+1)*m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// TestKappaTable logs the κ-vs-orthogonality table the README's
// "Numerical robustness" section reproduces (visible with -v).
func TestKappaTable(t *testing.T) {
	t.Logf("%-8s %-14s %-14s %-14s", "κ", "CQR2", "ShiftedCQR3", "Householder")
	cell := func(q *lin.Matrix, err error) string {
		if err != nil {
			return "breakdown"
		}
		return fmt.Sprintf("%.1e", lin.OrthogonalityError(q))
	}
	for _, kappa := range testmat.Kappas {
		a := testmat.WithCond(sweepM, sweepN, kappa, 42)
		q2, _, err2 := CholeskyQR2(a, 0)
		q3, _, err3 := ShiftedCQR3(a, 0)
		qh, _, errh := lin.QR(a)
		t.Logf("%-8.0e %-14s %-14s %-14s", kappa, cell(q2, err2), cell(q3, err3), cell(qh, errh))
	}
}
