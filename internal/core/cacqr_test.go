package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// runGrid executes body on a c×d×c grid.
func runGrid(t *testing.T, c, d int, body func(p *simmpi.Proc, g *grid.Grid) error) *simmpi.Stats {
	t.Helper()
	st, err := simmpi.RunWithOptions(c*d*c, simmpi.Options{Timeout: 240 * time.Second}, func(p *simmpi.Proc) error {
		g, err := grid.New(p.World(), c, d)
		if err != nil {
			return err
		}
		return body(p, g)
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// verifyQR gathers the distributed Q and R and checks the factorization
// of a against the sequential reference.
func verifyQR(g *grid.Grid, a *lin.Matrix, qLocal, rLocal *lin.Matrix, m, n int, tol float64) error {
	q, err := dist.Gather(g.Slice, qLocal, m, n, g.D, g.C)
	if err != nil {
		return err
	}
	r, err := dist.Gather(g.Cube.Slice, rLocal, n, n, g.C, g.C)
	if err != nil {
		return err
	}
	if !r.IsUpperTriangular(tol * float64(n)) {
		return fmt.Errorf("R not upper triangular")
	}
	if e := lin.ResidualNorm(a, q, r); e > tol {
		return fmt.Errorf("residual %g > %g", e, tol)
	}
	if e := lin.OrthogonalityError(q); e > tol {
		return fmt.Errorf("orthogonality %g > %g", e, tol)
	}
	return nil
}

func TestCACQRSinglePass(t *testing.T) {
	// One CA-CQR pass: backward stable, Q near-orthogonal for small κ.
	const c, d, m, n = 2, 4, 32, 8
	a := lin.RandomMatrix(m, n, 1)
	runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		q, r, err := CACQR(g, ad.Local, m, n, Params{})
		if err != nil {
			return err
		}
		return verifyQR(g, a, q, r, m, n, 1e-8)
	})
}

func TestCACQR2AcrossGridShapes(t *testing.T) {
	// The tunable grid must produce correct factorizations across its
	// whole range: 1D (c=1), 3D (c=d), and intermediate shapes.
	for _, tc := range []struct{ c, d, m, n int }{
		{1, 1, 12, 4},  // sequential corner
		{1, 4, 32, 4},  // 1D grid
		{1, 8, 64, 8},  // deeper 1D grid
		{2, 2, 16, 8},  // 3D grid (c = d)
		{2, 4, 32, 8},  // tunable: two subcubes
		{2, 8, 64, 8},  // four subcubes
		{4, 4, 64, 16}, // larger 3D grid, P = 64
	} {
		t.Run(fmt.Sprintf("c%d_d%d_%dx%d", tc.c, tc.d, tc.m, tc.n), func(t *testing.T) {
			a := lin.RandomMatrix(tc.m, tc.n, int64(tc.c*100+tc.d))
			runGrid(t, tc.c, tc.d, func(p *simmpi.Proc, g *grid.Grid) error {
				ad, err := dist.FromGlobal(a, tc.d, tc.c, g.Y, g.X)
				if err != nil {
					return err
				}
				q, r, err := CACQR2(g, ad.Local, tc.m, tc.n, Params{})
				if err != nil {
					return err
				}
				return verifyQR(g, a, q, r, tc.m, tc.n, 1e-9)
			})
		})
	}
}

func TestCACQR2MatchesSequentialR(t *testing.T) {
	// R (positive diagonal) is unique: the distributed result must agree
	// with sequential CholeskyQR2 up to roundoff.
	const c, d, m, n = 2, 4, 32, 8
	a := lin.RandomMatrix(m, n, 9)
	_, rSeq, err := CholeskyQR2(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		_, rLocal, err := CACQR2(g, ad.Local, m, n, Params{})
		if err != nil {
			return err
		}
		r, err := dist.Gather(g.Cube.Slice, rLocal, n, n, c, c)
		if err != nil {
			return err
		}
		if !r.EqualWithin(rSeq, 1e-9*float64(n)) {
			return fmt.Errorf("distributed R differs from sequential R")
		}
		return nil
	})
}

func TestCACQR2InverseDepthVariants(t *testing.T) {
	// InverseDepth ∈ {0, 1, 2} must all produce valid factorizations of
	// the same matrix (the paper's legend variants).
	const c, d, m, n = 2, 4, 64, 16
	a := lin.RandomMatrix(m, n, 11)
	for inv := 0; inv <= 2; inv++ {
		inv := inv
		t.Run(fmt.Sprintf("InverseDepth%d", inv), func(t *testing.T) {
			runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
				ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
				if err != nil {
					return err
				}
				q, r, err := CACQR2(g, ad.Local, m, n, Params{InverseDepth: inv})
				if err != nil {
					return err
				}
				return verifyQR(g, a, q, r, m, n, 1e-9)
			})
		})
	}
}

func TestCACQR2InverseDepthCostTradeoff(t *testing.T) {
	// Deeper InverseDepth trades flops for synchronization (§III-A): the
	// γ cost must drop and the α cost must rise.
	const c, d, m, n = 2, 2, 64, 32
	a := lin.RandomMatrix(m, n, 13)
	run := func(inv int) *simmpi.Stats {
		return runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
			ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
			if err != nil {
				return err
			}
			_, _, err = CACQR2(g, ad.Local, m, n, Params{InverseDepth: inv, BaseSize: 4})
			return err
		})
	}
	full := run(0)
	lazy := run(2)
	if lazy.MaxFlops >= full.MaxFlops {
		t.Fatalf("InverseDepth=2 flops %d not below InverseDepth=0 flops %d", lazy.MaxFlops, full.MaxFlops)
	}
	if lazy.MaxMsgs <= full.MaxMsgs {
		t.Fatalf("InverseDepth=2 α units %d not above InverseDepth=0 %d", lazy.MaxMsgs, full.MaxMsgs)
	}
}

func TestCACQRShapeValidation(t *testing.T) {
	runGrid(t, 1, 2, func(p *simmpi.Proc, g *grid.Grid) error {
		// m < n.
		if _, _, err := CACQR(g, lin.NewMatrix(2, 8), 4, 8, Params{}); err == nil {
			return errors.New("wide matrix accepted")
		}
		// indivisible m.
		if _, _, err := CACQR(g, lin.NewMatrix(3, 2), 7, 2, Params{}); err == nil {
			return errors.New("indivisible m accepted")
		}
		// local block mismatch.
		if _, _, err := CACQR(g, lin.NewMatrix(5, 2), 8, 2, Params{}); err == nil {
			return errors.New("bad local block accepted")
		}
		return nil
	})
}

func TestCACQR2IllConditionedFailsCleanly(t *testing.T) {
	// An exactly singular input (zero column) must propagate an error
	// from the distributed Cholesky on every rank without deadlock.
	const c, d, m, n = 2, 2, 64, 8
	a := lin.RandomMatrix(m, n, 17)
	for i := 0; i < m; i++ {
		a.Set(i, 3, 0)
	}
	_, err := simmpi.RunWithOptions(c*d*c, simmpi.Options{Timeout: 120 * time.Second}, func(p *simmpi.Proc) error {
		g, err := grid.New(p.World(), c, d)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		_, _, err = CACQR2(g, ad.Local, m, n, Params{})
		if err == nil {
			return errors.New("ill-conditioned matrix accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCACQR2TallAndSkinny(t *testing.T) {
	// Extreme aspect ratio, the CholeskyQR sweet spot.
	const c, d, m, n = 1, 8, 512, 2
	a := lin.RandomMatrix(m, n, 19)
	runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		q, r, err := CACQR2(g, ad.Local, m, n, Params{})
		if err != nil {
			return err
		}
		return verifyQR(g, a, q, r, m, n, 1e-10)
	})
}

func TestCACQR2SquareMatrix(t *testing.T) {
	// m = n exercises the 3D-CQR2 regime.
	const c, d, n = 2, 2, 16
	a := lin.RandomMatrix(n, n, 23)
	runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		q, r, err := CACQR2(g, ad.Local, n, n, Params{})
		if err != nil {
			return err
		}
		return verifyQR(g, a, q, r, n, n, 1e-8)
	})
}
