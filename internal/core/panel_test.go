package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/simmpi"
)

// verifyPanelQR checks the panel factorization against the unique
// positive-diagonal Householder R of the same matrix.
func verifyPanelQR(g *grid.Grid, a *lin.Matrix, qLocal, rLocal *lin.Matrix, m, n int) error {
	q, err := dist.Gather(g.Slice, qLocal, m, n, g.D, g.C)
	if err != nil {
		return err
	}
	r, err := dist.Gather(g.Cube.Slice, rLocal, n, n, g.C, g.C)
	if err != nil {
		return err
	}
	if !r.IsUpperTriangular(1e-9 * float64(n)) {
		return errors.New("R not upper triangular")
	}
	if e := lin.OrthogonalityError(q); e > 1e-9 {
		return fmt.Errorf("orthogonality %g", e)
	}
	if e := lin.ResidualNorm(a, q, r); e > 1e-9 {
		return fmt.Errorf("residual %g", e)
	}
	_, rSeq, err := lin.QR(a)
	if err != nil {
		return err
	}
	if !r.EqualWithin(rSeq, 1e-8*(1+lin.MaxAbs(rSeq))) {
		return errors.New("R differs from the unique Householder R")
	}
	return nil
}

func TestPanelCACQR2NearSquare(t *testing.T) {
	// The target regime: near-square matrices where whole-matrix CQR2's
	// flop overhead is worst.
	for _, tc := range []struct{ c, d, m, n, b int }{
		{1, 2, 16, 16, 4},
		{2, 2, 32, 32, 8},
		{2, 4, 32, 16, 8},
		{2, 2, 24, 24, 8}, // b not a power of two
	} {
		t.Run(fmt.Sprintf("c%d_d%d_%dx%d_b%d", tc.c, tc.d, tc.m, tc.n, tc.b), func(t *testing.T) {
			a := lin.RandomMatrix(tc.m, tc.n, int64(tc.m+tc.b))
			_, err := simmpi.RunWithOptions(tc.c*tc.d*tc.c, simmpi.Options{Timeout: 240 * time.Second}, func(p *simmpi.Proc) error {
				g, err := grid.New(p.World(), tc.c, tc.d)
				if err != nil {
					return err
				}
				ad, err := dist.FromGlobal(a, tc.d, tc.c, g.Y, g.X)
				if err != nil {
					return err
				}
				q, r, err := PanelCACQR2(g, ad.Local, tc.m, tc.n, tc.b, Params{})
				if err != nil {
					return err
				}
				return verifyPanelQR(g, a, q, r, tc.m, tc.n)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPanelCACQR2FullWidthEqualsPlain(t *testing.T) {
	// b = n is a single panel: identical results to plain CA-CQR2.
	const c, d, m, n = 2, 4, 32, 8
	a := lin.RandomMatrix(m, n, 3)
	runGrid(t, c, d, func(p *simmpi.Proc, g *grid.Grid) error {
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		qp, rp, err := PanelCACQR2(g, ad.Local, m, n, n, Params{})
		if err != nil {
			return err
		}
		q, r, err := CACQR2(g, ad.Local, m, n, Params{})
		if err != nil {
			return err
		}
		if !qp.EqualWithin(q, 1e-12) || !rp.EqualWithin(r, 1e-12) {
			return errors.New("b=n does not match plain CA-CQR2")
		}
		return nil
	})
}

func TestPanelCACQR2Validation(t *testing.T) {
	runGrid(t, 2, 2, func(p *simmpi.Proc, g *grid.Grid) error {
		a := lin.NewMatrix(8, 4) // local block for m=16, n=8
		if _, _, err := PanelCACQR2(g, a, 16, 8, 3, Params{}); err == nil {
			return errors.New("c∤b accepted")
		}
		if _, _, err := PanelCACQR2(g, a, 16, 8, 6, Params{}); err == nil {
			return errors.New("b∤n accepted")
		}
		if _, _, err := PanelCACQR2(g, a, 16, 8, 0, Params{}); err == nil {
			return errors.New("b=0 accepted")
		}
		return nil
	})
}

func TestPanelCACQR2IllConditionedPanelFails(t *testing.T) {
	// A zero column inside a later panel must surface an error naming
	// the panel, on every rank, without deadlock.
	const c, d, m, n, b = 2, 2, 32, 8, 4
	a := lin.RandomMatrix(m, n, 5)
	for i := 0; i < m; i++ {
		a.Set(i, 6, 0) // panel 1
	}
	_, err := simmpi.RunWithOptions(c*d*c, simmpi.Options{Timeout: 120 * time.Second}, func(p *simmpi.Proc) error {
		g, err := grid.New(p.World(), c, d)
		if err != nil {
			return err
		}
		ad, err := dist.FromGlobal(a, d, c, g.Y, g.X)
		if err != nil {
			return err
		}
		_, _, err = PanelCACQR2(g, ad.Local, m, n, b, Params{})
		if err == nil {
			return errors.New("singular panel accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThreeDCQR2(t *testing.T) {
	const e, m, n = 2, 16, 8
	a := lin.RandomMatrix(m, n, 9)
	_, err := simmpi.RunWithOptions(e*e*e, simmpi.Options{Timeout: 120 * time.Second}, func(p *simmpi.Proc) error {
		ad, err := dist.FromGlobal(a, e, e, (p.Rank()/e)%e, p.Rank()%e)
		if err != nil {
			return err
		}
		q, r, err := ThreeDCQR2(p.World(), ad.Local, m, n, e, Params{})
		if err != nil {
			return err
		}
		if q == nil || r == nil {
			return errors.New("nil results for grid member")
		}
		// Verify the local Q block matches a fresh grid run.
		g, err := grid.New(p.World(), e, e)
		if err != nil {
			return err
		}
		return verifyQR(g, a, q, r, m, n, 1e-9)
	})
	if err != nil {
		t.Fatal(err)
	}
}
