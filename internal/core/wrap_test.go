package core

import (
	"errors"
	"testing"

	"cacqr/internal/lin"
)

// Regression for the error chains the errwrap analyzer surfaced: the
// ill-conditioned wrappers used "%w: %v", which kept ErrIllConditioned
// routable but flattened the Cholesky breakdown underneath it —
// errors.Is(err, lin.ErrNotPositiveDefinite) silently went false, so a
// caller could not distinguish "Gram indefinite" from any other
// planner/kernel failure inside the ill-conditioned path.
func TestIllConditionedKeepsCholeskyCause(t *testing.T) {
	// Rank-deficient input: column 1 is twice column 0, so the Gram
	// matrix is exactly singular and Cholesky must break down.
	a := lin.NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1))
	}
	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"CholeskyQR", func() error { _, _, err := CholeskyQR(a, 1); return err }},
		{"CholeskyQR2", func() error { _, _, err := CholeskyQR2(a, 1); return err }},
	} {
		err := tc.run()
		if err == nil {
			t.Fatalf("%s factored a rank-deficient matrix without error", tc.name)
		}
		if !errors.Is(err, ErrIllConditioned) {
			t.Errorf("%s: %v does not wrap ErrIllConditioned", tc.name, err)
		}
		if !errors.Is(err, lin.ErrNotPositiveDefinite) {
			t.Errorf("%s: %v severed the Cholesky cause — errors.Is(err, lin.ErrNotPositiveDefinite) = false", tc.name, err)
		}
	}
}

// The batched path carries the same chain per item.
func TestBatchedIllConditionedKeepsCause(t *testing.T) {
	good := lin.NewMatrix(4, 2)
	bad := lin.NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		good.Set(i, 0, float64(i+1))
		good.Set(i, 1, float64((i*i)%5)+1)
		bad.Set(i, 0, float64(i+1))
		bad.Set(i, 1, 2*float64(i+1))
	}
	_, _, errs := BatchedCQR2([]*lin.Matrix{good, bad}, 1)
	if errs[0] != nil {
		t.Fatalf("well-conditioned member failed: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("rank-deficient member factored without error")
	}
	if !errors.Is(errs[1], ErrIllConditioned) || !errors.Is(errs[1], lin.ErrNotPositiveDefinite) {
		t.Fatalf("batched error %v lost part of its chain", errs[1])
	}
}
