package core

import (
	"fmt"

	"cacqr/internal/dist"
	"cacqr/internal/grid"
	"cacqr/internal/lin"
	"cacqr/internal/mm3d"
)

// PanelCACQR2 implements the paper's §V future-work proposal: "a CA-CQR2
// algorithm that operates on subpanels to reduce computation cost
// overhead ... for near-square matrices".
//
// The matrix is processed in column panels of width b. Each panel is
// factored by CA-CQR2 (tall-skinny, where CholeskyQR2's flop overhead is
// mild), then the trailing columns are updated Householder-style:
//
//	for each panel k:
//	    Q_k, R_kk = CA-CQR2(A_k)                  (Algorithm 9)
//	    R_k,rest  = Q_kᵀ · A_rest                 (Gram-pattern product)
//	    A_rest   -= Q_k · R_k,rest                (MM3D per subcube)
//
// Whole-matrix CA-CQR2 pays ~4mn² flops versus Householder's 2mn²; the
// panel variant pays ~2mn² + O(mnb), halving the overhead when b ≪ n.
// The price is more synchronization (n/b panel factorizations in
// sequence) — the same tradeoff axis as the paper's other knobs.
//
// Requires c | b and b | n. b = n degenerates to plain CA-CQR2.
func PanelCACQR2(g *grid.Grid, aLocal *lin.Matrix, m, n, b int, prm Params) (qLocal, rLocal *lin.Matrix, err error) {
	if err := checkShapes(g, aLocal, m, n); err != nil {
		return nil, nil, err
	}
	if b < 1 || b%g.C != 0 || n%b != 0 {
		return nil, nil, fmt.Errorf("core: panel width %d must satisfy c | b and b | n (c=%d, n=%d)", b, g.C, n)
	}
	c := g.C
	bloc := b / c          // local columns per panel
	work := aLocal.Clone() // trailing matrix, updated in place
	q := lin.NewMatrix(aLocal.Rows, aLocal.Cols)
	r := lin.NewMatrix(n/c, n/c) // n×n cyclic block over the subcube slice

	np := n / b
	for k := 0; k < np; k++ {
		panel := work.View(0, k*bloc, work.Rows, bloc).Clone()
		qk, rkk, err := CACQR2(g, panel, m, b, prm)
		if err != nil {
			return nil, nil, fmt.Errorf("core: panel %d: %w", k, err)
		}
		q.View(0, k*bloc, q.Rows, bloc).CopyFrom(qk)
		// R_kk occupies global rows/cols [k·b, (k+1)·b); with c | b its
		// cyclic block lands at local offset k·b/c in the n×n block.
		r.View(k*bloc, k*bloc, bloc, bloc).CopyFrom(rkk)

		restLoc := work.Cols - (k+1)*bloc
		if restLoc == 0 {
			continue
		}
		rest := work.View(0, (k+1)*bloc, work.Rows, restLoc)

		// R_k,rest = Q_kᵀ·A_rest via the Algorithm 8 Gram pattern.
		rkRest, err := gramProduct(g, qk, rest.Clone(), b, restLoc*c, prm.localWorkers())
		if err != nil {
			return nil, nil, fmt.Errorf("core: panel %d trailing product: %w", k, err)
		}
		r.View(k*bloc, (k+1)*bloc, bloc, restLoc).CopyFrom(rkRest)

		// A_rest -= Q_k · R_k,rest over the subcube.
		upd, err := mm3d.Multiply(g.Cube, qk, rkRest, prm.localWorkers())
		if err != nil {
			return nil, nil, fmt.Errorf("core: panel %d trailing update: %w", k, err)
		}
		rest.Sub(upd)
		if err := g.World.Proc().Compute(lin.AxpyFlops(rest.Rows, rest.Cols)); err != nil {
			return nil, nil, err
		}
	}
	return q, r, nil
}

// gramProduct computes C = Qᵀ·B for row-distributed Q (m×bq) and B
// (m×nb) whose local blocks are qLoc (m/d × bq/c) and bLoc (m/d × nb/c),
// both replicated over depth. The result is the bq×nb matrix distributed
// cyclically over each subcube slice (rows over cube-y, columns over x)
// and replicated across depth and subcubes — the Algorithm 8 lines 1–5
// communication pattern with Q in place of A's left operand.
func gramProduct(g *grid.Grid, qLoc, bLoc *lin.Matrix, bq, nb, workers int) (*lin.Matrix, error) {
	p := g.World.Proc()
	c := g.C

	var qRoot []float64
	if g.X == g.Z {
		qRoot = dist.Flatten(qLoc)
	}
	wFlat, err := g.XComm.Bcast(g.Z, qRoot)
	if err != nil {
		return nil, err
	}
	w, err := dist.Unflatten(qLoc.Rows, qLoc.Cols, wFlat)
	if err != nil {
		return nil, err
	}

	x := lin.NewMatrix(bq/c, nb/c)
	lin.GemmParallel(workers, true, false, 1, w, bLoc, 0, x)
	if err := p.Compute(lin.GemmFlops(bq/c, nb/c, qLoc.Rows)); err != nil {
		return nil, err
	}

	xFlat := dist.Flatten(x)
	yFlat, err := g.YGroup.Reduce(g.Z, xFlat)
	if err != nil {
		return nil, err
	}
	contrib := yFlat
	if contrib == nil {
		contrib = make([]float64, len(xFlat))
	}
	zFlat, err := g.YStride.Allreduce(contrib)
	if err != nil {
		return nil, err
	}
	var zRoot []float64
	if g.Z == g.Y%c {
		zRoot = zFlat
	}
	out, err := g.ZComm.Bcast(g.Y%c, zRoot)
	if err != nil {
		return nil, err
	}
	return dist.Unflatten(bq/c, nb/c, out)
}
