// Serving: drive mixed-shape, mixed-κ traffic through the plan-caching
// factorization service and watch the planning cost amortize.
//
// The ROADMAP's north star is a long-lived process serving heavy
// factorization/least-squares traffic. The expensive per-request choice
// — which (c, d, variant) to run — depends only on the workload's shape,
// machine, budget, and κ-bucket, so cacqr.Server makes it once per
// distinct key and answers the rest from an LRU. This example fires
// three shapes × two conditioning regimes concurrently, repeats each,
// and prints per-workload routing plus throughput and the cache-hit
// rate. It then switches to throughput mode: the same flood of
// same-shape requests submitted one at a time versus one SubmitBatch
// call, which fuses the whole group into strided batch kernels — and
// closes with the per-key latency quantiles the server accumulated.
//
//	go run ./examples/serving            # in-process cacqr.Server
//	go run ./examples/serving -addr http://127.0.0.1:8377 -rounds 1
//	                                     # same traffic over HTTP to cacqrd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	cacqr "cacqr"
)

type workload struct {
	name string
	m, n int
	cond float64 // >1: prescribed κ₂; else well-conditioned
}

var workloads = []workload{
	{"tall-skinny", 512, 8, 0},
	{"tall-skinny κ=1e10", 512, 8, 1e10},
	{"rectangular", 256, 16, 0},
	{"rectangular κ=1e10", 256, 16, 1e10},
	{"blocky", 128, 32, 0},
	{"blocky κ=1e10", 128, 32, 1e10},
}

func main() {
	addr := flag.String("addr", "", "cacqrd base URL (empty = in-process cacqr.Server)")
	rounds := flag.Int("rounds", 4, "requests per workload")
	procs := flag.Int("procs", 8, "per-request planning budget")
	flag.Parse()
	if *addr != "" {
		if err := driveHTTP(*addr, *rounds, *procs); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := driveInProcess(*rounds, *procs); err != nil {
		log.Fatal(err)
	}
}

func driveInProcess(rounds, procs int) error {
	srv, err := cacqr.NewServer(cacqr.ServerOptions{Procs: procs})
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Printf("firing %d workloads × %d rounds concurrently through cacqr.Server (procs ≤ %d)\n\n",
		len(workloads), rounds, procs)
	type line struct {
		variant string
		grid    string
		hits    int
	}
	var mu sync.Mutex
	routes := make(map[string]*line)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i, w := range workloads {
			wg.Add(1)
			go func(w workload, seed int64) {
				defer wg.Done()
				var a *cacqr.Dense
				if w.cond > 1 {
					a = cacqr.RandomWithCond(w.m, w.n, w.cond, seed)
				} else {
					a = cacqr.RandomMatrix(w.m, w.n, seed)
				}
				b := make([]float64, w.m)
				for i := range b {
					b[i] = float64(i%7) - 3
				}
				res, err := srv.Submit(cacqr.SubmitRequest{A: a, B: b, CondEst: w.cond})
				if err != nil {
					log.Fatalf("%s: %v", w.name, err)
				}
				mu.Lock()
				l, ok := routes[w.name]
				if !ok {
					l = &line{variant: string(res.Plan.Variant), grid: res.Plan.GridString()}
					routes[w.name] = l
				}
				if res.PlanCacheHit {
					l.hits++
				}
				mu.Unlock()
			}(w, int64(1000+r*len(workloads)+i))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	names := make([]string, 0, len(routes))
	for name := range routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l := routes[name]
		fmt.Printf("  %-22s → %-13s %-8s plan cached on %d/%d requests\n",
			name, l.variant, l.grid, l.hits, rounds)
	}
	st := srv.Stats()
	total := len(workloads) * rounds
	fmt.Printf("\n%d solves in %v — %.0f req/s\n", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("plan cache: %d hits, %d misses (%d planned, %d batched), %d evictions, %d entries\n",
		st.Hits, st.Misses, st.Planned, st.Batched, st.Evictions, st.Entries)
	fmt.Printf("cache-hit rate: %.0f%% — the planner ran once per (shape, κ-bucket), not once per request\n",
		100*st.HitRate())
	if st.HitRate() <= 0 {
		return fmt.Errorf("expected repeated same-key traffic to hit the plan cache")
	}
	return driveBatched(srv, procs)
}

// driveBatched floods the server with one same-shape workload, first one
// Submit at a time and then as a single SubmitBatch — the throughput
// mode that fuses the group into strided batch kernels — and prints the
// speedup plus the per-key latency quantiles.
func driveBatched(srv *cacqr.Server, procs int) error {
	const nb, m, n = 64, 512, 32
	reqs := make([]cacqr.SubmitRequest, nb)
	for i := range reqs {
		reqs[i] = cacqr.SubmitRequest{A: cacqr.RandomMatrix(m, n, int64(5000+i)), Procs: procs, CondEst: 10}
	}
	fmt.Printf("\nthroughput mode: %d × %d×%d factorizations, per-request vs fused batch\n", nb, m, n)

	start := time.Now()
	for i := range reqs {
		if _, err := srv.Submit(reqs[i]); err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
	}
	perReq := time.Since(start)

	start = time.Now()
	for i, it := range srv.SubmitBatch(reqs) {
		if it.Err != nil {
			return fmt.Errorf("batch item %d: %w", i, it.Err)
		}
	}
	fused := time.Since(start)

	fmt.Printf("  per-request Submit loop: %8v  (%.0f req/s)\n",
		perReq.Round(time.Millisecond), float64(nb)/perReq.Seconds())
	fmt.Printf("  one SubmitBatch call:    %8v  (%.0f req/s) — %.1fx\n",
		fused.Round(time.Millisecond), float64(nb)/fused.Seconds(), float64(perReq)/float64(fused))

	st := srv.Stats()
	fmt.Printf("  fused: %d batches covering %d requests\n\nper-key latency quantiles:\n", st.FusedBatches, st.FusedRequests)
	keys := make([]string, 0, len(st.Latencies))
	for k := range st.Latencies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := st.Latencies[k]
		fmt.Printf("  %-34s n=%-5d p50=%-9v p95=%-9v p99=%v\n", k, s.Count,
			secs(s.P50), secs(s.P95), secs(s.P99))
	}
	return nil
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond)
}

// driveHTTP fires one workload sweep at a running cacqrd and prints the
// wire responses — the round-trip CI smokes.
func driveHTTP(base string, rounds, procs int) error {
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}
	resp.Body.Close() //nolint:errcheck
	for r := 0; r < rounds; r++ {
		for i, w := range workloads {
			b := make([]float64, w.m)
			for i := range b {
				b[i] = float64(i%7) - 3
			}
			body, err := json.Marshal(map[string]any{
				"m": w.m, "n": w.n,
				"gen":     map[string]any{"seed": 1000 + r*len(workloads) + i, "cond": w.cond},
				"b":       b,
				"procs":   procs,
				"condest": w.cond,
			})
			if err != nil {
				return err
			}
			resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("%s: %w", w.name, err)
			}
			var out struct {
				Variant      string  `json:"variant"`
				Grid         string  `json:"grid"`
				PlanCacheHit bool    `json:"plan_cache_hit"`
				CondEst      float64 `json:"cond_est"`
				Error        string  `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close() //nolint:errcheck
			if err != nil {
				return fmt.Errorf("%s: decoding response: %w", w.name, err)
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s: HTTP %d: %s", w.name, resp.StatusCode, out.Error)
			}
			fmt.Printf("  %-22s → %-13s %-8s cached=%v κ≈%.1g\n",
				w.name, out.Variant, out.Grid, out.PlanCacheHit, out.CondEst)
		}
	}
	var stats map[string]any
	resp, err = client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	fmt.Printf("\ndaemon stats: %v\n", stats)
	return nil
}
