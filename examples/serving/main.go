// Serving: drive mixed-shape, mixed-κ traffic through the plan-caching
// factorization service and watch the planning cost amortize.
//
// The ROADMAP's north star is a long-lived process serving heavy
// factorization/least-squares traffic. The expensive per-request choice
// — which (c, d, variant) to run — depends only on the workload's shape,
// machine, budget, and κ-bucket, so cacqr.Server makes it once per
// distinct key and answers the rest from an LRU. This example fires
// three shapes × two conditioning regimes concurrently, repeats each,
// and prints per-workload routing plus throughput and the cache-hit
// rate.
//
//	go run ./examples/serving            # in-process cacqr.Server
//	go run ./examples/serving -addr http://127.0.0.1:8377 -rounds 1
//	                                     # same traffic over HTTP to cacqrd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	cacqr "cacqr"
)

type workload struct {
	name string
	m, n int
	cond float64 // >1: prescribed κ₂; else well-conditioned
}

var workloads = []workload{
	{"tall-skinny", 512, 8, 0},
	{"tall-skinny κ=1e10", 512, 8, 1e10},
	{"rectangular", 256, 16, 0},
	{"rectangular κ=1e10", 256, 16, 1e10},
	{"blocky", 128, 32, 0},
	{"blocky κ=1e10", 128, 32, 1e10},
}

func main() {
	addr := flag.String("addr", "", "cacqrd base URL (empty = in-process cacqr.Server)")
	rounds := flag.Int("rounds", 4, "requests per workload")
	procs := flag.Int("procs", 8, "per-request planning budget")
	flag.Parse()
	if *addr != "" {
		if err := driveHTTP(*addr, *rounds, *procs); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := driveInProcess(*rounds, *procs); err != nil {
		log.Fatal(err)
	}
}

func driveInProcess(rounds, procs int) error {
	srv, err := cacqr.NewServer(cacqr.ServerOptions{Procs: procs})
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Printf("firing %d workloads × %d rounds concurrently through cacqr.Server (procs ≤ %d)\n\n",
		len(workloads), rounds, procs)
	type line struct {
		variant string
		grid    string
		hits    int
	}
	var mu sync.Mutex
	routes := make(map[string]*line)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i, w := range workloads {
			wg.Add(1)
			go func(w workload, seed int64) {
				defer wg.Done()
				var a *cacqr.Dense
				if w.cond > 1 {
					a = cacqr.RandomWithCond(w.m, w.n, w.cond, seed)
				} else {
					a = cacqr.RandomMatrix(w.m, w.n, seed)
				}
				b := make([]float64, w.m)
				for i := range b {
					b[i] = float64(i%7) - 3
				}
				res, err := srv.Submit(cacqr.SubmitRequest{A: a, B: b, CondEst: w.cond})
				if err != nil {
					log.Fatalf("%s: %v", w.name, err)
				}
				mu.Lock()
				l, ok := routes[w.name]
				if !ok {
					l = &line{variant: string(res.Plan.Variant), grid: res.Plan.GridString()}
					routes[w.name] = l
				}
				if res.PlanCacheHit {
					l.hits++
				}
				mu.Unlock()
			}(w, int64(1000+r*len(workloads)+i))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	names := make([]string, 0, len(routes))
	for name := range routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l := routes[name]
		fmt.Printf("  %-22s → %-13s %-8s plan cached on %d/%d requests\n",
			name, l.variant, l.grid, l.hits, rounds)
	}
	st := srv.Stats()
	total := len(workloads) * rounds
	fmt.Printf("\n%d solves in %v — %.0f req/s\n", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("plan cache: %d hits, %d misses (%d planned, %d batched), %d evictions, %d entries\n",
		st.Hits, st.Misses, st.Planned, st.Batched, st.Evictions, st.Entries)
	fmt.Printf("cache-hit rate: %.0f%% — the planner ran once per (shape, κ-bucket), not once per request\n",
		100*st.HitRate())
	if st.HitRate() <= 0 {
		return fmt.Errorf("expected repeated same-key traffic to hit the plan cache")
	}
	return nil
}

// driveHTTP fires one workload sweep at a running cacqrd and prints the
// wire responses — the round-trip CI smokes.
func driveHTTP(base string, rounds, procs int) error {
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}
	resp.Body.Close() //nolint:errcheck
	for r := 0; r < rounds; r++ {
		for i, w := range workloads {
			b := make([]float64, w.m)
			for i := range b {
				b[i] = float64(i%7) - 3
			}
			body, err := json.Marshal(map[string]any{
				"m": w.m, "n": w.n,
				"gen":     map[string]any{"seed": 1000 + r*len(workloads) + i, "cond": w.cond},
				"b":       b,
				"procs":   procs,
				"condest": w.cond,
			})
			if err != nil {
				return err
			}
			resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("%s: %w", w.name, err)
			}
			var out struct {
				Variant      string  `json:"variant"`
				Grid         string  `json:"grid"`
				PlanCacheHit bool    `json:"plan_cache_hit"`
				CondEst      float64 `json:"cond_est"`
				Error        string  `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close() //nolint:errcheck
			if err != nil {
				return fmt.Errorf("%s: decoding response: %w", w.name, err)
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s: HTTP %d: %s", w.name, resp.StatusCode, out.Error)
			}
			fmt.Printf("  %-22s → %-13s %-8s cached=%v κ≈%.1g\n",
				w.name, out.Variant, out.Grid, out.PlanCacheHit, out.CondEst)
		}
	}
	var stats map[string]any
	resp, err = client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	fmt.Printf("\ndaemon stats: %v\n", stats)
	return nil
}
