// Quickstart: factor a tall-skinny matrix with CholeskyQR2, sequentially
// and on a simulated 2×4×2 processor grid, and verify both results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cacqr "cacqr"
)

func main() {
	const m, n = 1024, 32
	a := cacqr.RandomMatrix(m, n, 7)

	// Sequential CholeskyQR2.
	q, r, err := cacqr.CholeskyQR2(a)
	if err != nil {
		log.Fatalf("sequential factorization failed: %v", err)
	}
	fmt.Printf("sequential CholeskyQR2 of a %dx%d matrix:\n", m, n)
	fmt.Printf("  orthogonality ‖QᵀQ−I‖_F = %.2e\n", cacqr.OrthogonalityError(q))
	fmt.Printf("  residual ‖A−QR‖/‖A‖     = %.2e\n", cacqr.ResidualNorm(a, q, r))

	// The same factorization over a simulated c×d×c grid (P = 16 ranks),
	// with exact α-β-γ cost accounting.
	spec := cacqr.GridSpec{C: 2, D: 4}
	res, err := cacqr.FactorizeOnGrid(a, spec, cacqr.Options{})
	if err != nil {
		log.Fatalf("distributed factorization failed: %v", err)
	}
	fmt.Printf("\nCA-CQR2 on a %dx%dx%d grid (%d simulated ranks):\n",
		spec.C, spec.D, spec.C, spec.Procs())
	fmt.Printf("  orthogonality ‖QᵀQ−I‖_F = %.2e\n", cacqr.OrthogonalityError(res.Q))
	fmt.Printf("  residual ‖A−QR‖/‖A‖     = %.2e\n", cacqr.ResidualNorm(a, res.Q, res.R))
	fmt.Printf("  per-processor cost: %d message latencies, %d words, %d flops\n",
		res.Stats.Msgs, res.Stats.Words, res.Stats.Flops)
	fmt.Printf("  critical-path virtual time: %.3g s\n", res.Stats.Time)

	// The R factors agree (R with positive diagonal is unique).
	var maxDiff float64
	for i := range r.Data {
		if d := r.Data[i] - res.R.Data[i]; d > maxDiff || -d > maxDiff {
			if d < 0 {
				d = -d
			}
			maxDiff = d
		}
	}
	fmt.Printf("\nmax |R_seq − R_grid| = %.2e\n", maxDiff)
}
