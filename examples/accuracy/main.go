// Accuracy study: how the CholeskyQR family degrades with the condition
// number of the input, and how the shifted three-pass variant restores
// unconditional stability — the paper's §I stability discussion and §V
// extension, runnable.
//
//	go run ./examples/accuracy
package main

import (
	"fmt"
)

import cacqr "cacqr"

func main() {
	const m, n = 200, 24
	fmt.Printf("orthogonality error ‖QᵀQ−I‖_F of a %dx%d factorization\n\n", m, n)
	fmt.Printf("%-10s  %-14s  %-14s  %-14s\n", "kappa(A)", "CholeskyQR2", "ShiftedCQR3", "Householder")

	for _, kappa := range []float64{1e2, 1e4, 1e6, 1e8, 1e10, 1e12} {
		a := cacqr.RandomWithCond(m, n, kappa, int64(kappa))

		cqr2 := "failed"
		if q, _, err := cacqr.CholeskyQR2(a); err == nil {
			cqr2 = fmt.Sprintf("%.2e", cacqr.OrthogonalityError(q))
		}
		scqr3 := "failed"
		if q, _, err := cacqr.ShiftedCQR3(a); err == nil {
			scqr3 = fmt.Sprintf("%.2e", cacqr.OrthogonalityError(q))
		}
		hh := "failed"
		if q, _, err := cacqr.HouseholderQR(a); err == nil {
			hh = fmt.Sprintf("%.2e", cacqr.OrthogonalityError(q))
		}
		fmt.Printf("%-10.0e  %-14s  %-14s  %-14s\n", kappa, cqr2, scqr3, hh)
	}

	fmt.Println("\nCholeskyQR2 matches Householder up to kappa ~ 1/sqrt(eps) ≈ 1e8;")
	fmt.Println("the shifted CQR3 extension stays stable far beyond (paper §V, ref [3]).")
}
