// Autotune: let the cost-model planner pick the grid and algorithm
// variant across the paper's matrix-shape regimes.
//
// The paper's central knob is the c × d × c grid: c = 1 is the 1D
// algorithm (best for very tall matrices), c = d is the 3D algorithm
// (best near square), and the right interpolation depends on shape,
// processor count, and machine constants. PlanGrid automates the choice
// the paper's Tables I–VI discussion makes by hand: this example plans
// three shapes at Stampede2 scale (pure arithmetic — no simulation) and
// shows the chosen c moving from 1 toward d as the matrix fills out,
// then runs one planned factorization end to end at laptop scale.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	cacqr "cacqr"
)

func main() {
	const procs = 4096 // 64 Stampede2 nodes × 64 processes
	shapes := []struct {
		name string
		m, n int
	}{
		{"very tall (2²⁵×2⁶)", 1 << 25, 1 << 6},
		{"moderately rectangular (2²⁰×2¹⁰)", 1 << 20, 1 << 10},
		{"near-square (2¹⁵×2¹³)", 1 << 15, 1 << 13},
	}

	fmt.Printf("planning on %s, ≤%d ranks:\n\n", cacqr.Stampede2.Name, procs)
	for _, s := range shapes {
		plans, err := cacqr.PlanGrid(s.m, s.n, procs, cacqr.Options{})
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		best := plans[0]
		fmt.Printf("%s\n", s.name)
		fmt.Printf("  chosen: %-14s grid %-10s c=%d  predicted %.3gs\n",
			best.Variant, best.GridString(), best.C, best.Seconds)
		fmt.Printf("          α=%d β=%d γ=%d, %d words/rank\n",
			best.Cost.Msgs, best.Cost.Words, best.Cost.TotalFlops(), best.MemWords)
		fmt.Printf("          %s\n", best.Rationale)
		// The runner-up shows what the planner traded away.
		if len(plans) > 1 {
			up := plans[1]
			fmt.Printf("  runner-up: %s %s (%.3gs)\n", up.Variant, up.GridString(), up.Seconds)
		}
		fmt.Println()
	}
	fmt.Println("the chosen c moves from 1 (pure 1D) toward d as the matrix approaches square —")
	fmt.Println("replication buys √c less bandwidth per rank exactly when the Gram matrix dominates.")

	// End to end at laptop scale: the planner chooses, the simulated
	// grid executes, and the measured cost matches the prediction.
	const m, n, p = 1024, 64, 16
	a := cacqr.RandomMatrix(m, n, 7)
	res, err := cacqr.AutoFactorize(a, p, cacqr.Options{})
	if err != nil {
		log.Fatalf("auto factorization failed: %v", err)
	}
	fmt.Printf("\nAutoFactorize %dx%d on ≤%d ranks: chose %s %s\n",
		m, n, p, res.Plan.Variant, res.Plan.GridString())
	fmt.Printf("  orthogonality ‖QᵀQ−I‖_F = %.2e\n", cacqr.OrthogonalityError(res.Q))
	fmt.Printf("  residual ‖A−QR‖/‖A‖     = %.2e\n", cacqr.ResidualNorm(a, res.Q, res.R))
	fmt.Printf("  predicted γ=%d flops, measured γ=%d\n", res.Plan.Cost.TotalFlops(), res.Stats.Flops)
	fmt.Printf("  predicted β=%d words, measured β=%d (difference is the final Q gather)\n",
		res.Plan.Cost.Words, res.Stats.Words)

	// Condition-aware routing: the same shape, but ill-conditioned.
	// CholeskyQR2's Gram matrix squares κ, so at κ=1e10 the plain family
	// cannot deliver orthogonality — the planner detects this (here via
	// an explicit hint; leave CondEst unset and AutoFactorize measures
	// one by power iteration) and routes to the shifted three-pass
	// variant instead.
	ill := cacqr.RandomWithCond(m, n, 1e10, 8)
	if _, _, err := cacqr.CholeskyQR2(ill); err != nil {
		fmt.Printf("\nκ=1e10 input: plain CholeskyQR2 fails (%v)\n", err)
	}
	resIll, err := cacqr.AutoFactorize(ill, p, cacqr.Options{CondEst: 1e10})
	if err != nil {
		log.Fatalf("condition-aware factorization failed: %v", err)
	}
	fmt.Printf("AutoFactorize with CondEst=1e10: chose %s %s\n",
		resIll.Plan.Variant, resIll.Plan.GridString())
	fmt.Printf("  orthogonality ‖QᵀQ−I‖_F = %.2e (predicted ≤ %.0e)\n",
		cacqr.OrthogonalityError(resIll.Q), resIll.Plan.PredOrth)
}
