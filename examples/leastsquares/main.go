// Least squares: fit a degree-5 polynomial to 4096 noisy samples by
// solving the overdetermined system min ‖A·x − b‖₂ with CA-CQR2 — the
// very-overdetermined workload the paper's introduction motivates.
//
// Given A = Q·R, the solution is x = R⁻¹·Qᵀ·b.
//
//	go run ./examples/leastsquares
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	cacqr "cacqr"
)

const (
	samples = 4096
	degree  = 5
	cols    = degree + 1
)

// truth is the polynomial the noisy data is drawn from.
func truth(t float64) float64 {
	return 2 - 1.5*t + 0.8*t*t - 0.3*t*t*t + 0.05*t*t*t*t - 0.01*t*t*t*t*t
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Vandermonde design matrix over t ∈ [-1, 1] and noisy observations.
	a := cacqr.NewDense(samples, cols)
	b := make([]float64, samples)
	for i := 0; i < samples; i++ {
		t := -1 + 2*float64(i)/float64(samples-1)
		pw := 1.0
		for j := 0; j < cols; j++ {
			a.Set(i, j, pw)
			pw *= t
		}
		b[i] = truth(t) + 0.01*rng.NormFloat64()
	}

	// Factor the tall-skinny design matrix on a simulated 2×8×2 grid
	// (32 ranks), as a cluster deployment would.
	res, err := cacqr.FactorizeOnGrid(a, cacqr.GridSpec{C: 2, D: 8}, cacqr.Options{})
	if err != nil {
		log.Fatalf("factorization failed: %v", err)
	}
	q, r := res.Q, res.R

	// x = R⁻¹ (Qᵀ b): first the projections, then back substitution.
	qtb := make([]float64, cols)
	for j := 0; j < cols; j++ {
		var s float64
		for i := 0; i < samples; i++ {
			s += q.At(i, j) * b[i]
		}
		qtb[j] = s
	}
	x := make([]float64, cols)
	for j := cols - 1; j >= 0; j-- {
		s := qtb[j]
		for k := j + 1; k < cols; k++ {
			s -= r.At(j, k) * x[k]
		}
		x[j] = s / r.At(j, j)
	}

	fmt.Println("polynomial least-squares fit via CA-CQR2 (32 simulated ranks):")
	want := []float64{2, -1.5, 0.8, -0.3, 0.05, -0.01}
	fmt.Printf("  %-6s %-12s %-12s\n", "coef", "recovered", "true")
	var worst float64
	for j := 0; j < cols; j++ {
		fmt.Printf("  t^%d    %+.6f    %+.4f\n", j, x[j], want[j])
		if d := math.Abs(x[j] - want[j]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max coefficient error: %.2e (noise floor ~1e-3)\n", worst)
	fmt.Printf("per-processor cost: %d msgs, %d words, %d flops\n",
		res.Stats.Msgs, res.Stats.Words, res.Stats.Flops)

	// Residual sanity: ‖A·x − b‖ should sit at the noise level.
	var rss float64
	for i := 0; i < samples; i++ {
		var pred float64
		for j := 0; j < cols; j++ {
			pred += a.At(i, j) * x[j]
		}
		rss += (pred - b[i]) * (pred - b[i])
	}
	fmt.Printf("RMS residual: %.4f (noise σ = 0.01)\n", math.Sqrt(rss/float64(samples)))
}
