// Scaling study: use the validated cost model to choose the best
// processor-grid shape for a QR factorization on a Stampede2-like
// machine, and compare CA-CQR2 against the ScaLAPACK-style baseline —
// the deployment question the paper's evaluation answers.
//
//	go run ./examples/scaling [-m rows] [-n cols]
package main

import (
	"flag"
	"fmt"
)

import cacqr "cacqr"

func main() {
	m := flag.Int("m", 1<<21, "matrix rows")
	n := flag.Int("n", 1<<12, "matrix columns")
	flag.Parse()

	mach := cacqr.Stampede2
	fmt.Printf("predicted QR performance for a %d x %d matrix on %s (%d processes/node)\n\n",
		*m, *n, mach.Name, mach.PPN)
	fmt.Printf("%-8s  %-22s  %-12s  %-22s  %-10s\n",
		"nodes", "best CA-CQR2 grid", "GF/s/node", "best ScaLAPACK grid", "GF/s/node")

	for _, nodes := range []int{64, 128, 256, 512, 1024} {
		procs := mach.PPN * nodes

		bestCQ, cqLabel := 0.0, "-"
		for c := 1; c*c*c <= procs; c *= 2 {
			d := procs / (c * c)
			if d < c || d%c != 0 || *m%d != 0 || *n%c != 0 {
				continue
			}
			for inv := 0; inv <= 1; inv++ {
				cost, err := cacqr.ModelCACQR2(*m, *n, cacqr.GridSpec{C: c, D: d},
					cacqr.Options{InverseDepth: inv})
				if err != nil {
					continue
				}
				if gf := cacqr.PredictGFlopsPerNode(mach, cost, *m, *n, nodes); gf > bestCQ {
					bestCQ = gf
					cqLabel = fmt.Sprintf("c=%d d=%d inv=%d", c, d, inv)
				}
			}
		}

		bestSC, scLabel := 0.0, "-"
		for _, nb := range []int{16, 32, 64} {
			for pr := 1; pr <= procs; pr *= 2 {
				pc := procs / pr
				if pc < 1 || *m%pr != 0 || *n%nb != 0 || pc*nb > *n {
					continue
				}
				cost, err := cacqr.ModelPGEQRF(*m, *n, pr, pc, nb)
				if err != nil {
					continue
				}
				if gf := cacqr.PredictGFlopsPerNode(mach, cost, *m, *n, nodes); gf > bestSC {
					bestSC = gf
					scLabel = fmt.Sprintf("pr=%d pc=%d nb=%d", pr, pc, nb)
				}
			}
		}

		fmt.Printf("%-8d  %-22s  %-12.1f  %-22s  %-10.1f\n",
			nodes, cqLabel, bestCQ, scLabel, bestSC)
	}

	fmt.Println("\nlarger c trades extra synchronization and flops for less communication;")
	fmt.Println("the winning c grows with node count, as in the paper's Figures 6-7.")
}
